type t =
  | Inject of Net.Packet.t
  | Deliver of Net.Packet.t
  | Enqueue of { link : Net.Link.t; pkt : Net.Packet.t; qlen : int }
  | Drop of { link : Net.Link.t; pkt : Net.Packet.t }
  | Depart of { link : Net.Link.t; pkt : Net.Packet.t; qlen : int }
  | Fault of { link : Net.Link.t; label : string; pkt : Net.Packet.t }
  | Send of { conn : int; pkt : Net.Packet.t }
  | Cwnd of { conn : int; cwnd : float; ssthresh : float }
  | Loss of { conn : int; reason : string }
  | Ack_tx of { conn : int; ackno : int; delayed : bool; dup : bool }

let label = function
  | Inject _ -> "inject"
  | Deliver _ -> "deliver"
  | Enqueue _ -> "enqueue"
  | Drop _ -> "drop"
  | Depart _ -> "depart"
  | Fault _ -> "fault"
  | Send _ -> "send"
  | Cwnd _ -> "cwnd"
  | Loss _ -> "loss"
  | Ack_tx _ -> "ack_tx"

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_pkt buf (p : Net.Packet.t) =
  Printf.bprintf buf ",\"id\":%d,\"conn\":%d,\"kind\":\"%s\",\"seq\":%d" p.id
    p.conn
    (Net.Packet.kind_to_string p.kind)
    p.seq;
  if p.retransmit then Buffer.add_string buf ",\"rexmt\":true"

let add_link buf link =
  Printf.bprintf buf ",\"link\":\"%s\"" (escape (Net.Link.name link))

let to_jsonl ~time ev =
  let buf = Buffer.create 96 in
  Printf.bprintf buf "{\"t\":%.9g,\"ev\":\"%s\"" time (label ev);
  (match ev with
   | Inject p | Deliver p -> add_pkt buf p
   | Enqueue { link; pkt; qlen } | Depart { link; pkt; qlen } ->
     add_link buf link;
     add_pkt buf pkt;
     Printf.bprintf buf ",\"qlen\":%d" qlen
   | Drop { link; pkt } ->
     add_link buf link;
     add_pkt buf pkt
   | Fault { link; label; pkt } ->
     add_link buf link;
     Printf.bprintf buf ",\"fault\":\"%s\"" (escape label);
     add_pkt buf pkt
   | Send { conn = _; pkt } -> add_pkt buf pkt
   | Cwnd { conn; cwnd; ssthresh } ->
     Printf.bprintf buf ",\"conn\":%d,\"cwnd\":%.9g,\"ssthresh\":%.9g" conn
       cwnd ssthresh
   | Loss { conn; reason } ->
     Printf.bprintf buf ",\"conn\":%d,\"reason\":\"%s\"" conn (escape reason)
   | Ack_tx { conn; ackno; delayed; dup } ->
     Printf.bprintf buf ",\"conn\":%d,\"ackno\":%d,\"delayed\":%b,\"dup\":%b"
       conn ackno delayed dup);
  Buffer.add_char buf '}';
  Buffer.contents buf
