type t =
  | Inject of Net.Packet.t
  | Deliver of Net.Packet.t
  | Enqueue of { link : Net.Link.t; pkt : Net.Packet.t; qlen : int }
  | Drop of { link : Net.Link.t; pkt : Net.Packet.t }
  | Depart of { link : Net.Link.t; pkt : Net.Packet.t; qlen : int }
  | Fault of { link : Net.Link.t; label : string; pkt : Net.Packet.t }
  | Send of { conn : int; pkt : Net.Packet.t }
  | Cwnd of { conn : int; cwnd : float; ssthresh : float }
  | Loss of { conn : int; reason : string }
  | Ack_tx of { conn : int; ackno : int; delayed : bool; dup : bool }

let label = function
  | Inject _ -> "inject"
  | Deliver _ -> "deliver"
  | Enqueue _ -> "enqueue"
  | Drop _ -> "drop"
  | Depart _ -> "depart"
  | Fault _ -> "fault"
  | Send _ -> "send"
  | Cwnd _ -> "cwnd"
  | Loss _ -> "loss"
  | Ack_tx _ -> "ack_tx"
