(** Streaming log-bucket quantile sketch (DDSketch-style): bounded
    relative error in fixed memory, so RTT / flow-completion-time
    percentiles scale to 10^4+ flows without storing samples.

    {b Accuracy.} For positive values above 1e-12, [quantile] returns an
    estimate within relative error [alpha] of the exact sample quantile
    (the sorted sample at 0-based index [floor (q * (count - 1))]), up
    to floating-point rounding of the logarithm mapping.  [q = 0] and
    [q = 1] are exact (the true min / max are tracked on the side).
    Values at or below 1e-12 — including zero and negatives — fall into
    a single underflow bucket estimated by the observed minimum.

    {b Memory.} At most [max_buckets] live buckets (plus the underflow
    bucket); one bucket spans a [gamma = (1+alpha)/(1-alpha)] ratio, so
    the default 2048 buckets at [alpha = 0.01] cover ~17 decades before
    the lowest two buckets start collapsing ([collapsed] reports it).

    {b Determinism.} Integer bucket counts, a sorted walk, and
    count-addition merging: the same samples always yield the same
    estimates, bit for bit — required by the byte-identical
    online/offline flow-summary guarantee. *)

type t

val default_alpha : float
(** 0.01: one-percent relative error. *)

val create : ?alpha:float -> ?max_buckets:int -> unit -> t
(** @raise Invalid_argument unless [alpha] is in (0, 1) and
    [max_buckets >= 2]. *)

val add : t -> float -> unit
(** @raise Invalid_argument on nan. *)

val merge : into:t -> t -> unit
(** Add every sample of the second sketch into [into].
    @raise Invalid_argument when the two sketches differ in [alpha]. *)

val alpha : t -> float
val count : t -> int
val is_empty : t -> bool
val sum : t -> float
val mean : t -> float option
val min : t -> float option
val max : t -> float option

val collapsed : t -> bool
(** The bucket cap forced low-tail collapsing: low quantiles may exceed
    the error bound (high quantiles keep it). *)

val quantile : t -> float -> float option
(** [quantile t q] for [q] in [0, 1]; [None] when empty.
    @raise Invalid_argument on nan or out-of-range [q]. *)
