type setup = {
  metrics : bool;
  series_dt : float option;
  btrace : Tracer.sink option;
  flight : int option;
  flight_sink : Tracer.sink;
  flowstats : bool;
}

let setup ?(metrics = true) ?series_dt ?btrace ?flight ?flight_sink
    ?(flowstats = false) () =
  let flight_sink =
    match flight_sink with Some s -> s | None -> prerr_string
  in
  { metrics; series_dt; btrace; flight; flight_sink; flowstats }

let disabled = setup ~metrics:false ()

let is_enabled s =
  s.metrics || s.btrace <> None || s.flight <> None || s.flowstats

type t = {
  registry : Metrics.t option;
  recorder : Metrics.recorder option;
  tr : Tracer.t option;
  fs : Flowstats.t option;
  flight_sink : Tracer.sink;
  mutable flight_dumped : bool;
}

(* Buffer occupancies land in the single digits to low hundreds in every
   scenario the paper studies; a coarse log-ish grid is plenty to read
   the distribution's shape off a snapshot. *)
let qlen_bounds = [| 0.; 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128. |]

let copt registry name =
  match registry with
  | Some reg -> Some (Metrics.counter reg name)
  | None -> None

let bump = function Some c -> Metrics.incr c | None -> ()
let emit tr ev = match tr with Some tr -> Tracer.emit tr ev | None -> ()

let fault_label : Net.Link.fault_event -> string = function
  | Net.Link.Fault_drop label -> label
  | Net.Link.Fault_duplicate -> "duplicate"
  | Net.Link.Fault_delay _ -> "delay"

let wire_link ~sim ~registry ~tr link =
  (match tr with Some tr -> Tracer.declare_link tr link | None -> ());
  let pfx = "link." ^ Net.Link.name link in
  (match registry with
   | Some reg ->
     Metrics.gauge_fn reg (pfx ^ ".qlen") (fun () ->
         float_of_int (Net.Link.queue_length link));
     Metrics.gauge_fn reg (pfx ^ ".busy_time") (fun () ->
         Net.Link.busy_time link ~now:(Engine.Sim.now sim));
     let meter = Trace.Util_meter.start link ~now:(Engine.Sim.now sim) in
     Metrics.gauge_fn reg (pfx ^ ".utilization") (fun () ->
         Trace.Util_meter.utilization meter ~now:(Engine.Sim.now sim))
   | None -> ());
  let enq = copt registry (pfx ^ ".enq") in
  let drop = copt registry (pfx ^ ".drop") in
  let dep = copt registry (pfx ^ ".dep") in
  let dep_bytes = copt registry (pfx ^ ".dep_bytes") in
  let faults = copt registry (pfx ^ ".faults") in
  let qhist =
    match registry with
    | Some reg ->
      Some (Metrics.histogram reg (pfx ^ ".qlen_hist") ~bounds:qlen_bounds)
    | None -> None
  in
  Net.Link.on_enqueue link (fun _time pkt qlen ->
      bump enq;
      (match qhist with
       | Some h -> Metrics.observe h (float_of_int qlen)
       | None -> ());
      emit tr (Event.Enqueue { link; pkt; qlen }));
  Net.Link.on_drop link (fun _time pkt ->
      bump drop;
      emit tr (Event.Drop { link; pkt }));
  Net.Link.on_depart link (fun _time pkt qlen ->
      bump dep;
      (match dep_bytes with
       | Some c -> Metrics.add c pkt.Net.Packet.size
       | None -> ());
      emit tr (Event.Depart { link; pkt; qlen }));
  Net.Link.on_fault link (fun _time fe pkt ->
      bump faults;
      emit tr (Event.Fault { link; label = fault_label fe; pkt }))

let wire_conn ~registry ~tr ~fs (cid, conn) =
  let cfg = Tcp.Connection.config conn in
  (match tr with
   | Some tr ->
     Tracer.declare_conn_meta tr cid ~start_time:cfg.Tcp.Config.start_time
       ~flow_size:cfg.Tcp.Config.flow_size
   | None -> ());
  (match fs with
   | Some fs ->
     Flowstats.register fs ~conn:cid ~start_time:cfg.Tcp.Config.start_time
       ~flow_size:cfg.Tcp.Config.flow_size
   | None -> ());
  let s = Tcp.Connection.sender conn in
  let r = Tcp.Connection.receiver conn in
  let pfx = Printf.sprintf "conn.%d" cid in
  (match registry with
   | Some reg ->
     Metrics.gauge_fn reg (pfx ^ ".cwnd") (fun () -> Tcp.Sender.cwnd s);
     Metrics.gauge_fn reg (pfx ^ ".ssthresh") (fun () ->
         Tcp.Sender.ssthresh s);
     Metrics.gauge_fn reg (pfx ^ ".retransmits") (fun () ->
         float_of_int (Tcp.Sender.retransmits s))
   | None -> ());
  let cuts = copt registry (pfx ^ ".cwnd_cuts") in
  let touts = copt registry (pfx ^ ".timeouts") in
  let frexmt = copt registry (pfx ^ ".fast_rexmt") in
  let sends = copt registry (pfx ^ ".sends") in
  let acks = copt registry (pfx ^ ".acks") in
  let delacks = copt registry (pfx ^ ".delayed_acks") in
  let dupacks = copt registry (pfx ^ ".dup_acks") in
  (* cwnd is covered by a snapshot-time gauge; the hook serves tracing
     and the per-flow extrema. *)
  (match (tr, fs) with
   | (None, None) -> ()
   | _ ->
     Tcp.Sender.on_cwnd s (fun _time ~cwnd ~ssthresh ->
         (match fs with
          | Some fs -> Flowstats.record_cwnd fs ~conn:cid ~cwnd
          | None -> ());
         emit tr (Event.Cwnd { conn = cid; cwnd; ssthresh })));
  Tcp.Sender.on_loss s (fun _time reason ->
      bump cuts;
      (match reason with
       | Tcp.Sender.Timeout -> bump touts
       | Tcp.Sender.Dup_ack -> bump frexmt);
      (match fs with
       | Some fs -> Flowstats.record_loss fs ~conn:cid
       | None -> ());
      emit tr
        (Event.Loss
           { conn = cid;
             reason =
               (match reason with
                | Tcp.Sender.Timeout -> "timeout"
                | Tcp.Sender.Dup_ack -> "dup_ack");
           }));
  Tcp.Sender.on_send s (fun time pkt ->
      bump sends;
      (match fs with
       | Some fs ->
         Flowstats.record_send fs ~time ~conn:cid ~seq:pkt.Net.Packet.seq
           ~retransmit:pkt.Net.Packet.retransmit
       | None -> ());
      emit tr (Event.Send { conn = cid; pkt }));
  Tcp.Receiver.on_ack_sent r (fun _time ~ackno ~delayed ~dup ->
      bump acks;
      if delayed then bump delacks;
      if dup then bump dupacks;
      emit tr (Event.Ack_tx { conn = cid; ackno; delayed; dup }))

let attach setup ~net ~conns =
  let sim = Net.Network.sim net in
  let tr =
    if setup.btrace <> None || setup.flight <> None then
      let flight =
        Option.map (fun capacity -> Flight.create ~capacity) setup.flight
      in
      Some (Tracer.create ?btrace:setup.btrace ?flight sim)
    else None
  in
  let fs = if setup.flowstats then Some (Flowstats.create ()) else None in
  let registry = if setup.metrics then Some (Metrics.create ()) else None in
  (match registry with
   | Some reg ->
     Metrics.gauge_fn reg "sim.events" (fun () ->
         float_of_int (Engine.Sim.events_run sim));
     Metrics.gauge_fn reg "sim.queue_depth" (fun () ->
         float_of_int (Engine.Sim.queue_length sim))
   | None -> ());
  let injected = copt registry "net.injected" in
  let delivered = copt registry "net.delivered" in
  if registry <> None || tr <> None || fs <> None then begin
    Net.Network.on_inject net (fun _time p ->
        bump injected;
        emit tr (Event.Inject p));
    Net.Network.on_deliver net (fun _time p ->
        bump delivered;
        (match fs with
         | Some fs -> (
           (* Stamp with [Sim.now] like the tracer does, so the offline
              fold over the trace sees bit-identical times. *)
           match p.Net.Packet.kind with
           | Net.Packet.Data ->
             Flowstats.record_data_delivered fs ~conn:p.Net.Packet.conn
               ~bytes:p.Net.Packet.size
           | Net.Packet.Ack ->
             Flowstats.record_ack_delivered fs ~time:(Engine.Sim.now sim)
               ~conn:p.Net.Packet.conn ~ackno:p.Net.Packet.seq)
         | None -> ());
        emit tr (Event.Deliver p));
    List.iter (wire_link ~sim ~registry ~tr) (Net.Network.links net);
    List.iter (wire_conn ~registry ~tr ~fs) conns
  end;
  (* The recorder snapshots whatever is registered at creation time, so it
     must come after all of the wiring above. *)
  let recorder =
    match (registry, setup.series_dt) with
    | Some reg, Some dt -> Some (Metrics.record reg sim ~dt)
    | _ -> None
  in
  { registry; recorder; tr; fs; flight_sink = setup.flight_sink;
    flight_dumped = false }

let flight t = Option.bind t.tr Tracer.flight

let dump_flight t ~reason =
  match flight t with
  | Some f ->
    Flight.dump f ~reason ~render:Tracer.render_flight t.flight_sink
  | None -> ()

let flight_text t ~reason =
  match flight t with
  | Some f ->
    let buf = Buffer.create 4096 in
    Flight.dump f ~reason ~render:Tracer.render_flight
      (Buffer.add_string buf);
    Some (Buffer.contents buf)
  | None -> None

let arm_report t report =
  Validate.Report.on_violation report (fun v ->
      if not t.flight_dumped then begin
        t.flight_dumped <- true;
        dump_flight t
          ~reason:
            (Printf.sprintf "validate: %s (%s) at t=%.6f: %s"
               v.Validate.Report.checker v.Validate.Report.subject
               v.Validate.Report.time v.Validate.Report.detail)
      end)

let finish t = match t.tr with Some tr -> Tracer.finish tr | None -> ()
let metrics t = t.registry
let tracer t = t.tr
let flowstats t = t.fs

let final_metrics t =
  match t.registry with Some reg -> Metrics.snapshot reg | None -> []

let series t =
  match t.recorder with
  | Some r -> Metrics.recorder_series r
  | None -> []

let metrics_json t =
  match t.registry with Some reg -> Metrics.to_json reg | None -> "{}"

let events_traced t =
  match t.tr with Some tr -> Tracer.events_emitted tr | None -> 0
