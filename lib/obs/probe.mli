(** Probe: wires the observability pillars ({!Metrics}, {!Tracer},
    {!Flight}) into a live simulation through the model's existing
    monitor hooks.

    A probe is configured with a {!setup} value and attached once, after
    the network and connections exist but before [Sim.run].  The probe
    only installs a hook when at least one consumer (metrics registry or
    trace sink) wants the corresponding events, so a disabled pillar
    costs nothing — not even an empty-closure call, because the model's
    hook lists stay empty and the zero-hook fast path is taken. *)

type setup

(** Build a configuration.

    - [metrics] (default [true]): register counters / gauges /
      histograms for the simulator, every link, and every connection.
    - [series_dt]: additionally sample every metric each [series_dt]
      simulated seconds into step series (see {!Metrics.record}).
    - [jsonl] / [chrome]: trace sinks (see {!Tracer.create}).
    - [flight]: keep a flight-recorder ring of the last [n] trace lines.
    - [flight_sink] (default stderr): where {!dump_flight} writes. *)
val setup :
  ?metrics:bool ->
  ?series_dt:float ->
  ?jsonl:Tracer.sink ->
  ?chrome:Tracer.sink ->
  ?flight:int ->
  ?flight_sink:Tracer.sink ->
  unit ->
  setup

(** A setup with everything off; attaching it installs no hooks. *)
val disabled : setup

(** Does this setup observe anything at all? *)
val is_enabled : setup -> bool

type t

(** Install hooks per the setup.  [conns] pairs each connection id with
    its connection; ids are used in metric names and trace tracks. *)
val attach :
  setup -> net:Net.Network.t -> conns:(int * Tcp.Connection.t) list -> t

(** Dump the flight recorder on the first violation recorded in the
    report (subsequent violations do not re-dump). *)
val arm_report : t -> Validate.Report.t -> unit

(** Dump the flight ring to the configured sink, if a ring exists. *)
val dump_flight : t -> reason:string -> unit

(** Close trace outputs (Chrome file footer).  Idempotent. *)
val finish : t -> unit

val metrics : t -> Metrics.t option
val tracer : t -> Tracer.t option
val flight : t -> Flight.t option

(** Final scalar snapshot of every metric ([[]] without a registry). *)
val final_metrics : t -> (string * float) list

(** Recorded per-metric step series ([[]] without [series_dt]). *)
val series : t -> (string * Trace.Series.t) list

(** Deterministic JSON object of the final snapshot (["{}"] without a
    registry). *)
val metrics_json : t -> string

(** Events emitted to trace sinks (0 without a tracer). *)
val events_traced : t -> int
