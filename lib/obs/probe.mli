(** Probe: wires the observability pillars ({!Metrics}, {!Tracer},
    {!Flight}) into a live simulation through the model's existing
    monitor hooks.

    A probe is configured with a {!setup} value and attached once, after
    the network and connections exist but before [Sim.run].  The probe
    only installs a hook when at least one consumer (metrics registry or
    trace sink) wants the corresponding events, so a disabled pillar
    costs nothing — not even an empty-closure call, because the model's
    hook lists stay empty and the zero-hook fast path is taken. *)

type setup

(** Build a configuration.

    - [metrics] (default [true]): register counters / gauges /
      histograms for the simulator, every link, and every connection.
    - [series_dt]: additionally sample every metric each [series_dt]
      simulated seconds into step series (see {!Metrics.record}).
    - [btrace]: binary trace sink (see {!Tracer.create}); convert
      offline with {!Btrace} or [netsim trace export].
    - [flight]: keep a flight-recorder ring of the last [n] events.
    - [flight_sink] (default stderr): where {!dump_flight} writes.
    - [flowstats] (default [false]): per-flow accounting registry
      ({!Flowstats}) fed from the same hooks; zero cost when off. *)
val setup :
  ?metrics:bool ->
  ?series_dt:float ->
  ?btrace:Tracer.sink ->
  ?flight:int ->
  ?flight_sink:Tracer.sink ->
  ?flowstats:bool ->
  unit ->
  setup

(** A setup with everything off; attaching it installs no hooks. *)
val disabled : setup

(** Does this setup observe anything at all? *)
val is_enabled : setup -> bool

type t

(** Install hooks per the setup.  [conns] pairs each connection id with
    its connection; ids are used in metric names and trace tracks. *)
val attach :
  setup -> net:Net.Network.t -> conns:(int * Tcp.Connection.t) list -> t

(** Dump the flight recorder on the first violation recorded in the
    report (subsequent violations do not re-dump). *)
val arm_report : t -> Validate.Report.t -> unit

(** Dump the flight ring to the configured sink, if a ring exists. *)
val dump_flight : t -> reason:string -> unit

(** Rendered flight-ring postmortem (banner + JSONL lines), or [None]
    without a ring — what crash bundles embed as [flight.txt]. *)
val flight_text : t -> reason:string -> string option

(** Flush buffered binary trace records to the sink.  Idempotent; runs
    on both success and exception paths of {!Core.Runner.run}. *)
val finish : t -> unit

val metrics : t -> Metrics.t option
val tracer : t -> Tracer.t option
val flowstats : t -> Flowstats.t option
val flight : t -> Tracer.flight_record Flight.t option

(** Final scalar snapshot of every metric ([[]] without a registry). *)
val final_metrics : t -> (string * float) list

(** Recorded per-metric step series ([[]] without [series_dt]). *)
val series : t -> (string * Trace.Series.t) list

(** Deterministic JSON object of the final snapshot (["{}"] without a
    registry). *)
val metrics_json : t -> string

(** Events emitted to trace sinks (0 without a tracer). *)
val events_traced : t -> int
