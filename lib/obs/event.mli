(** Typed structured-trace events: the packet lifecycle through the
    network plus TCP state transitions.  Events are constructed only when
    a {!Tracer} sink is installed; the disabled path never sees them.

    Events reference live model objects (packets are recycled through
    free-lists), so they are only valid during the emitting hook call —
    anything that outlives the hook ({!Btrace} records, the {!Flight}
    ring) copies the fields it needs. *)

type t =
  | Inject of Net.Packet.t  (** packet entered the network at its source *)
  | Deliver of Net.Packet.t  (** packet handed to a transport endpoint *)
  | Enqueue of { link : Net.Link.t; pkt : Net.Packet.t; qlen : int }
  | Drop of { link : Net.Link.t; pkt : Net.Packet.t }
  | Depart of { link : Net.Link.t; pkt : Net.Packet.t; qlen : int }
      (** serialization finished; [qlen] is the post-departure occupancy *)
  | Fault of { link : Net.Link.t; label : string; pkt : Net.Packet.t }
  | Send of { conn : int; pkt : Net.Packet.t }  (** sender transmitted *)
  | Cwnd of { conn : int; cwnd : float; ssthresh : float }
  | Loss of { conn : int; reason : string }  (** ["timeout"] / ["dup_ack"] *)
  | Ack_tx of { conn : int; ackno : int; delayed : bool; dup : bool }

(** Short event-kind tag, e.g. ["enqueue"]; also the JSONL ["ev"] value. *)
val label : t -> string
