type counter = int ref
type gauge = float array (* 1 cell; flat array avoids boxing on store *)

type histogram = {
  bounds : float array; (* strictly increasing upper bounds *)
  counts : int array; (* length bounds + 1; last is overflow *)
}

type cell =
  | Counter of counter
  | Gauge of gauge
  | Gauge_fn of (unit -> float)
  | Histogram of histogram

type metric = { name : string; cell : cell }

type t = {
  mutable metrics : metric list; (* newest first *)
  names : (string, unit) Hashtbl.t;
}

let create () = { metrics = []; names = Hashtbl.create 32 }
let size t = List.length t.metrics

let register t name cell =
  if Hashtbl.mem t.names name then
    invalid_arg (Printf.sprintf "Metrics: duplicate metric %S" name);
  Hashtbl.add t.names name ();
  t.metrics <- { name; cell } :: t.metrics

let counter t name =
  let c = ref 0 in
  register t name (Counter c);
  c

let gauge t name =
  let g = [| 0. |] in
  register t name (Gauge g);
  g

let gauge_fn t name f = register t name (Gauge_fn f)

let histogram t name ~bounds =
  let n = Array.length bounds in
  if n = 0 then invalid_arg "Metrics.histogram: empty bounds";
  for i = 1 to n - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Metrics.histogram: bounds must be strictly increasing"
  done;
  let h = { bounds = Array.copy bounds; counts = Array.make (n + 1) 0 } in
  register t name (Histogram h);
  h

let incr (c : counter) = Stdlib.incr c
let add (c : counter) n = c := !c + n
let counter_value (c : counter) = !c
let set (g : gauge) v = g.(0) <- v
let gauge_value (g : gauge) = g.(0)

(* Linear scan: bucket counts are small (a handful of bounds), so this
   beats binary search and stays branch-predictable. *)
let observe h v =
  let n = Array.length h.bounds in
  let i = ref 0 in
  while !i < n && v > h.bounds.(!i) do
    Stdlib.incr i
  done;
  h.counts.(!i) <- h.counts.(!i) + 1

(* %g keeps bucket-bound names stable and short (0.5, 10, 1e+06). *)
let bound_name name b = Printf.sprintf "%s.le_%g" name b

let snapshot t =
  List.concat_map
    (fun m ->
      match m.cell with
      | Counter c -> [ (m.name, float_of_int !c) ]
      | Gauge g -> [ (m.name, g.(0)) ]
      | Gauge_fn f -> [ (m.name, f ()) ]
      | Histogram h ->
        let n = Array.length h.bounds in
        let cumulative = ref 0 in
        let buckets =
          List.init n (fun i ->
              cumulative := !cumulative + h.counts.(i);
              (bound_name m.name h.bounds.(i), float_of_int !cumulative))
        in
        let total = !cumulative + h.counts.(n) in
        buckets
        @ [
            (m.name ^ ".le_inf", float_of_int total);
            (m.name ^ ".count", float_of_int total);
          ])
    (List.rev t.metrics)

let find t name =
  List.assoc_opt name (snapshot t)

let float_json f =
  if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Json.float_repr f

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) -> Printf.sprintf "\"%s\":%s" (escape k) (float_json v))
         (snapshot t))
  ^ "}"

(* ------------------------------------------------------------------ *)
(* Periodic recording                                                  *)
(* ------------------------------------------------------------------ *)

(* The sample path walks two preallocated arrays fixed at [record]
   time — the cells in registration order and one series per expanded
   name — so a tick allocates nothing beyond the series' own amortized
   growth (no snapshot lists, no name strings). *)
type recorder = {
  sim : Engine.Sim.t;
  dt : float;
  cells : cell array; (* registration order, fixed *)
  names : string array; (* expanded, registration order *)
  series : Trace.Series.t array; (* parallel to [names] *)
  timer : Engine.Sim.Timer.timer;
}

let sample r =
  let now = Engine.Sim.now r.sim in
  let j = ref 0 in
  let push v =
    Trace.Series.add r.series.(!j) ~time:now ~value:v;
    incr j
  in
  Array.iter
    (fun cell ->
      match cell with
      | Counter c -> push (float_of_int !c)
      | Gauge g -> push g.(0)
      | Gauge_fn f -> push (f ())
      | Histogram h ->
        let n = Array.length h.bounds in
        let cumulative = ref 0 in
        for i = 0 to n - 1 do
          cumulative := !cumulative + h.counts.(i);
          push (float_of_int !cumulative)
        done;
        let total = float_of_int (!cumulative + h.counts.(n)) in
        push total;
        push total)
    r.cells

let record t sim ~dt =
  if Float.is_nan dt || dt <= 0. then
    invalid_arg "Metrics.record: dt must be positive";
  let names = Array.of_list (List.map fst (snapshot t)) in
  let r =
    {
      sim;
      dt;
      cells = Array.of_list (List.rev_map (fun m -> m.cell) t.metrics);
      names;
      series = Array.map (fun _ -> Trace.Series.create ()) names;
      timer = Engine.Sim.Timer.create sim (fun () -> ());
    }
  in
  Engine.Sim.Timer.set_action r.timer (fun () ->
      sample r;
      Engine.Sim.Timer.set r.timer ~delay:r.dt);
  sample r;
  Engine.Sim.Timer.set r.timer ~delay:dt;
  r

let recorder_series r =
  List.init (Array.length r.names) (fun i -> (r.names.(i), r.series.(i)))
