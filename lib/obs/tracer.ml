type sink = string -> unit

type flight_record = float * Btrace.ev

type t = {
  sim : Engine.Sim.t;
  writer : Btrace.writer option;
  flight : flight_record Flight.t option;
  link_cache : (int, Btrace.link) Hashtbl.t;
  mutable emitted : int;
  mutable finished : bool;
}

let create ?btrace ?flight sim =
  {
    sim;
    writer = Option.map (fun s -> Btrace.writer s) btrace;
    flight;
    link_cache = Hashtbl.create 8;
    emitted = 0;
    finished = false;
  }

let link_of t l =
  let id = Net.Link.id l in
  match Hashtbl.find_opt t.link_cache id with
  | Some pl -> pl
  | None ->
    let pl = Btrace.plain_link l in
    Hashtbl.add t.link_cache id pl;
    pl

let declare_link t link =
  ignore (link_of t link : Btrace.link);
  match t.writer with
  | Some w -> Btrace.declare_link w link
  | None -> ()

let declare_conn t conn =
  match t.writer with Some w -> Btrace.declare_conn w conn | None -> ()

let declare_conn_meta t conn ~start_time ~flow_size =
  match t.writer with
  | Some w -> Btrace.declare_conn_meta w conn ~start_time ~flow_size
  | None -> ()

let emit t ev =
  let time = Engine.Sim.now t.sim in
  t.emitted <- t.emitted + 1;
  (match t.writer with Some w -> Btrace.event w ~time ev | None -> ());
  match t.flight with
  | Some f ->
    (* The ring outlives the emitting hook, so it stores a plain copy;
       the live packet in [ev] is recycled as soon as the hook returns. *)
    Flight.record f (time, Btrace.plain_ev ~link_of:(link_of t) ev)
  | None -> ()

let events_emitted t = t.emitted
let flight t = t.flight

let render_flight (time, ev) = Btrace.jsonl_line ~time ev

let finish t =
  if not t.finished then begin
    t.finished <- true;
    match t.writer with Some w -> Btrace.flush w | None -> ()
  end

let with_file_sink path f =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () ->
      (* Flush-and-close even when [f] raises, so everything the writer
         handed to the sink reaches the file; the binary reader recovers
         every complete record from such a prefix. *)
      try
        flush oc;
        close_out oc
      with Sys_error _ -> ())
    (fun () -> f (output_string oc))
