type sink = string -> unit

type t = {
  sim : Engine.Sim.t;
  jsonl : sink option;
  chrome : sink option;
  flight : Flight.t option;
  mutable emitted : int;
  mutable chrome_records : int; (* comma discipline in the JSON array *)
  mutable finished : bool;
}

(* ------------------------------------------------------------------ *)
(* Chrome trace_event plumbing                                         *)
(* ------------------------------------------------------------------ *)

(* One process, one thread ("track" in Perfetto) per link and per
   connection.  Counter tracks (queue depth, cwnd) get their own lanes
   automatically from their event names. *)
let pid = 1
let link_tid link = 2 + Net.Link.id link
let conn_tid conn = 1001 + conn

let chrome_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let chrome_record t record =
  match t.chrome with
  | None -> ()
  | Some write ->
    write (if t.chrome_records = 0 then "\n" else ",\n");
    t.chrome_records <- t.chrome_records + 1;
    write record

let meta t ~tid ~name =
  chrome_record t
    (Printf.sprintf
       "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\
        \"args\":{\"name\":\"%s\"}}"
       pid tid (chrome_escape name))

let create ?jsonl ?chrome ?flight sim =
  let t =
    { sim; jsonl; chrome; flight; emitted = 0; chrome_records = 0;
      finished = false }
  in
  (match chrome with
   | None -> ()
   | Some write ->
     write "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
     chrome_record t
       (Printf.sprintf
          "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\
           \"args\":{\"name\":\"netsim\"}}"
          pid));
  t

let declare_link t link =
  meta t ~tid:(link_tid link) ~name:("link " ^ Net.Link.name link)

let declare_conn t conn =
  meta t ~tid:(conn_tid conn) ~name:(Printf.sprintf "conn %d" conn)

let instant t ~time ~tid ~name =
  chrome_record t
    (Printf.sprintf
       "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\
        \"pid\":%d,\"tid\":%d}"
       (chrome_escape name) (1e6 *. time) pid tid)

let counter t ~time ~name ~args =
  chrome_record t
    (Printf.sprintf
       "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":%d,\"args\":{%s}}"
       (chrome_escape name) (1e6 *. time) pid args)

let queue_counter t ~time link qlen =
  counter t ~time
    ~name:("queue " ^ Net.Link.name link)
    ~args:(Printf.sprintf "\"packets\":%d" qlen)

let pkt_name (p : Net.Packet.t) =
  Printf.sprintf "%s seq=%d%s"
    (Net.Packet.kind_to_string p.kind)
    p.seq
    (if p.retransmit then " rexmt" else "")

let chrome_emit t ~time ev =
  match (ev : Event.t) with
  | Inject p -> instant t ~time ~tid:(conn_tid p.conn) ~name:("inject " ^ pkt_name p)
  | Deliver p ->
    instant t ~time ~tid:(conn_tid p.conn) ~name:("deliver " ^ pkt_name p)
  | Enqueue { link; pkt = _; qlen } -> queue_counter t ~time link qlen
  | Drop { link; pkt } ->
    instant t ~time ~tid:(link_tid link) ~name:("drop " ^ pkt_name pkt)
  | Depart { link; pkt; qlen } ->
    (* The departure marks the end of serialization: render the whole
       serialization interval as a complete ("X") slice on the link's
       track, so Perfetto shows the transmitter's duty cycle directly. *)
    let tx = Net.Link.tx_time link ~bytes:pkt.Net.Packet.size in
    chrome_record t
      (Printf.sprintf
         "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\
          \"pid\":%d,\"tid\":%d,\"args\":{\"conn\":%d,\"seq\":%d,\"id\":%d}}"
         (chrome_escape (pkt_name pkt))
         (1e6 *. (time -. tx))
         (1e6 *. tx) pid (link_tid link) pkt.Net.Packet.conn
         pkt.Net.Packet.seq pkt.Net.Packet.id);
    queue_counter t ~time link qlen
  | Fault { link; label; pkt } ->
    instant t ~time ~tid:(link_tid link)
      ~name:(Printf.sprintf "fault:%s %s" label (pkt_name pkt))
  | Send { conn; pkt } ->
    instant t ~time ~tid:(conn_tid conn) ~name:("send " ^ pkt_name pkt)
  | Cwnd { conn; cwnd; ssthresh } ->
    counter t ~time
      ~name:(Printf.sprintf "cwnd conn-%d" conn)
      ~args:
        (Printf.sprintf "\"cwnd\":%.9g,\"ssthresh\":%.9g" cwnd ssthresh)
  | Loss { conn; reason } ->
    instant t ~time ~tid:(conn_tid conn) ~name:("loss:" ^ reason)
  | Ack_tx { conn; ackno; delayed; dup } ->
    instant t ~time ~tid:(conn_tid conn)
      ~name:
        (Printf.sprintf "ack %d%s%s" ackno
           (if delayed then " delayed" else "")
           (if dup then " dup" else ""))

let emit t ev =
  let time = Engine.Sim.now t.sim in
  t.emitted <- t.emitted + 1;
  (match (t.jsonl, t.flight) with
   | None, None -> ()
   | jsonl, flight ->
     let line = Event.to_jsonl ~time ev in
     (match jsonl with
      | Some write ->
        write line;
        write "\n"
      | None -> ());
     (match flight with Some f -> Flight.record f line | None -> ()));
  if t.chrome <> None then chrome_emit t ~time ev

let events_emitted t = t.emitted
let flight t = t.flight

let finish t =
  if not t.finished then begin
    t.finished <- true;
    match t.chrome with None -> () | Some write -> write "\n]}\n"
  end

let with_file_sink path f =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () ->
      (* Flush-and-close even when [f] raises: channel buffering cuts
         lines at arbitrary byte boundaries, so an unflushed buffer at
         abort time would leave a torn JSONL file. *)
      try
        flush oc;
        close_out oc
      with Sys_error _ -> ())
    (fun () -> f (output_string oc))
