(* Crash-bundle file plumbing: a bundle is a plain directory of small
   files, written best-effort (a failure to persist a postmortem must
   never mask the failure being reported).  The semantic layer — what
   goes in meta.json, how scenario.bin is produced — lives in
   [Core.Crash]; this module only knows about bytes and paths. *)

let meta_file = "meta.json"
let scenario_file = "scenario.bin"
let flight_file = "flight.txt"
let metrics_file = "metrics.json"

let rec mkdirs dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdirs parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.is_directory dir -> ()
  end

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content)

let write ~dir ~meta_json ~scenario_blob ?flight_text ?metrics_json () =
  try
    mkdirs dir;
    write_file (Filename.concat dir meta_file) meta_json;
    write_file (Filename.concat dir scenario_file) scenario_blob;
    (match flight_text with
     | Some text -> write_file (Filename.concat dir flight_file) text
     | None -> ());
    (match metrics_json with
     | Some json -> write_file (Filename.concat dir metrics_file) json
     | None -> ());
    Ok dir
  with
  | Sys_error msg -> Error msg
  | e -> Error (Printexc.to_string e)

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try Ok (really_input_string ic (in_channel_length ic))
        with End_of_file | Sys_error _ ->
          Error ("unreadable file: " ^ path))

let load ~dir =
  match read_file (Filename.concat dir meta_file) with
  | Error _ as e -> e
  | Ok meta -> (
    match read_file (Filename.concat dir scenario_file) with
    | Error _ as e -> e
    | Ok blob -> Ok (meta, blob))

let load_meta ~dir = read_file (Filename.concat dir meta_file)

let load_scenario_blob ~dir = read_file (Filename.concat dir scenario_file)
