(** Crash-bundle file plumbing.

    A bundle is a plain directory:
    {v
    <dir>/meta.json      what happened (rendered by the caller)
    <dir>/scenario.bin   opaque scenario blob (Marshal, by the caller)
    <dir>/flight.txt     flight-recorder postmortem (optional)
    <dir>/metrics.json   final metrics snapshot (optional)
    v}

    This module moves bytes; the semantic layer (meta rendering,
    scenario marshaling, replay) is [Core.Crash] and [netsim replay].
    Writes are best-effort: every failure comes back as [Error] so a
    failed postmortem never masks the crash being reported. *)

val meta_file : string
val scenario_file : string
val flight_file : string
val metrics_file : string

(** Write a bundle into [dir] (created, parents included, if needed;
    existing files are overwritten — bundle naming is the caller's
    concern).  [flight_text] is the pre-rendered flight-recorder
    postmortem (see {!Probe.flight_text}). *)
val write :
  dir:string ->
  meta_json:string ->
  scenario_blob:string ->
  ?flight_text:string ->
  ?metrics_json:string ->
  unit ->
  (string, string) result

(** [(meta_json, scenario_blob)] of the bundle at [dir]. *)
val load : dir:string -> (string * string, string) result

val load_meta : dir:string -> (string, string) result
val load_scenario_blob : dir:string -> (string, string) result
