type t = {
  ring : string array;
  mutable total : int; (* ever recorded; next slot is total mod capacity *)
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Flight.create: capacity must be >= 1";
  { ring = Array.make capacity ""; total = 0 }

let capacity t = Array.length t.ring
let length t = min t.total (Array.length t.ring)
let total t = t.total

let record t line =
  t.ring.(t.total mod Array.length t.ring) <- line;
  t.total <- t.total + 1

let entries t =
  let cap = Array.length t.ring in
  let n = length t in
  let first = t.total - n in
  List.init n (fun i -> t.ring.((first + i) mod cap))

let dump t ~reason write =
  let n = length t in
  write
    (Printf.sprintf
       "=== flight recorder: %s (last %d of %d events) ===\n" reason n
       t.total);
  List.iter
    (fun line ->
      write line;
      write "\n")
    (entries t);
  write "=== end flight recorder ===\n"
