(* Invariants:
     0 <= cursor < capacity          (next slot to write)
     0 <= filled <= capacity         (slots holding live entries)
     total >= filled                 (saturates at max_int, never wraps)
   Slot arithmetic uses only [cursor], which is reset with an explicit
   compare — [total mod capacity] would go negative (and [entries] would
   index out of bounds) if the int ever wrapped past max_int. *)
type 'a t = {
  ring : 'a option array;
  mutable cursor : int;
  mutable filled : int;
  mutable total : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Flight.create: capacity must be >= 1";
  { ring = Array.make capacity None; cursor = 0; filled = 0; total = 0 }

let capacity t = Array.length t.ring
let length t = t.filled
let total t = t.total

let record t x =
  t.ring.(t.cursor) <- Some x;
  t.cursor <- (if t.cursor + 1 = Array.length t.ring then 0 else t.cursor + 1);
  if t.filled < Array.length t.ring then t.filled <- t.filled + 1;
  if t.total < max_int then t.total <- t.total + 1

(* Test hook for the wrap boundary: pretend [n] entries were ever
   recorded without touching the ring contents. *)
let force_total t n =
  if n < t.filled then invalid_arg "Flight.force_total: below filled";
  t.total <- n

let entries t =
  let cap = Array.length t.ring in
  let first = (t.cursor - t.filled + cap) mod cap in
  List.init t.filled (fun i ->
      match t.ring.((first + i) mod cap) with
      | Some x -> x
      | None -> assert false (* filled counts only written slots *))

let dump t ~reason ~render write =
  write
    (Printf.sprintf
       "=== flight recorder: %s (last %d of %d events) ===\n" reason t.filled
       t.total);
  List.iter
    (fun x ->
      write (render x);
      write "\n")
    (entries t);
  write "=== end flight recorder ===\n"
