type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Bad of string

(* Recursive-descent parser over (string, position ref).  Only the JSON
   subset this repo emits needs to round-trip, but the grammar below is
   the full one minus exotic number forms rejected by float_of_string. *)

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then begin
      pos := !pos + m;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' ->
           if !pos + 4 > n then fail "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           pos := !pos + 4;
           let code =
             try int_of_string ("0x" ^ hex)
             with _ -> fail "bad \\u escape"
           in
           (* Decode to UTF-8; the traces only ever emit control chars. *)
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char buf
               (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
         | _ -> fail "unknown escape");
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok v
  with Bad msg -> Error msg

(* Shortest decimal representation that round-trips through
   [float_of_string].  %.9g (the historical trace format) is tried
   first so values it already encodes exactly keep their old spelling;
   %.17g always round-trips IEEE doubles, so the fallback terminates. *)
let float_repr f =
  let try_prec p =
    let s = Printf.sprintf "%.*g" p f in
    if float_of_string s = f then Some s else None
  in
  match try_prec 9 with
  | Some s -> s
  | None -> (
    match try_prec 12 with
    | Some s -> s
    | None -> (
      match try_prec 15 with
      | Some s -> s
      | None -> Printf.sprintf "%.17g" f))

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num f -> Some f | _ -> None
let to_string = function Str s -> Some s | _ -> None

let validate_jsonl ?(key = "t") text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno last count = function
    | [] -> Ok count
    | "" :: rest -> go (lineno + 1) last count rest (* trailing newline *)
    | line :: rest -> (
      match parse line with
      | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
      | Ok (Obj _ as obj) -> (
        match Option.bind (member key obj) to_float with
        | None ->
          Error (Printf.sprintf "line %d: missing numeric %S field" lineno key)
        | Some time ->
          if time < last then
            Error
              (Printf.sprintf "line %d: %S went backwards (%g after %g)"
                 lineno key time last)
          else go (lineno + 1) time (count + 1) rest)
      | Ok _ -> Error (Printf.sprintf "line %d: not a JSON object" lineno))
  in
  go 1 neg_infinity 0 lines
