(** Flight recorder: a bounded ring of the most recent trace lines.

    The recorder keeps the last [capacity] rendered JSONL lines so that
    when something goes wrong mid-run — an invariant checker fires, a
    fault experiment diverges, [Sim.run] raises — the events leading up
    to the failure can be dumped as a postmortem instead of being lost
    with the process. *)

type t

(** @raise Invalid_argument if [capacity < 1]. *)
val create : capacity:int -> t

val capacity : t -> int

(** Entries currently held (at most [capacity]). *)
val length : t -> int

(** Total entries ever recorded, including overwritten ones. *)
val total : t -> int

val record : t -> string -> unit

(** Held entries, oldest first. *)
val entries : t -> string list

(** [dump t ~reason write] sends a postmortem to [write]: a banner naming
    [reason] and how many of the total events are shown, then each held
    line, oldest first, each terminated with a newline. *)
val dump : t -> reason:string -> (string -> unit) -> unit
