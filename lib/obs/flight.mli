(** Flight recorder: a bounded ring of the most recent trace records.

    The recorder keeps the last [capacity] entries so that when
    something goes wrong mid-run — an invariant checker fires, a fault
    experiment diverges, [Sim.run] raises — the events leading up to
    the failure can be dumped as a postmortem instead of being lost
    with the process.

    Entries are plain values copied in at record time; the ring never
    holds live model objects (packets are recycled through free-lists,
    so retaining one past the emitting hook would alias recycled
    state).

    Slot selection uses an explicit wrapping cursor, never
    [total mod capacity]: [total] only reports how many entries were
    ever recorded and saturates at [max_int] instead of wrapping
    negative. *)

type 'a t

(** @raise Invalid_argument if [capacity < 1]. *)
val create : capacity:int -> 'a t

val capacity : 'a t -> int

(** Entries currently held (at most [capacity]). *)
val length : 'a t -> int

(** Total entries ever recorded, including overwritten ones.
    Saturates at [max_int]. *)
val total : 'a t -> int

val record : 'a t -> 'a -> unit

(** Test hook: overwrite the ever-recorded count (ring contents are
    untouched) to exercise the saturation boundary.
    @raise Invalid_argument if [n] is less than {!length}. *)
val force_total : 'a t -> int -> unit

(** Held entries, oldest first. *)
val entries : 'a t -> 'a list

(** [dump t ~reason ~render write] sends a postmortem to [write]: a
    banner naming [reason] and how many of the total events are shown,
    then each held entry through [render], oldest first, each
    terminated with a newline. *)
val dump : 'a t -> reason:string -> render:('a -> string) -> (string -> unit) -> unit
