(* Compact binary trace encoding.

   File layout: a 5-byte header ("NSBT" magic + version byte), then a
   flat sequence of records.  Every record is a tag byte followed by a
   tag-specific payload:

     0x00 string-def   varint sid, varint length, raw bytes
     0x01 link-def     varint link id, varint name sid, f64 bandwidth
     0x02 conn-def     varint conn id
     0x03 conn-meta    varint conn id, f64 start_time,
                       varint (flow_size + 1; 0 = infinite)   [since v2]
     0x10..0x19 event  varint64 zigzag(delta of Int64.bits_of_float t),
                       then the event payload below

   Integers are unsigned LEB128 varints (OCaml ints encode their 63-bit
   pattern, so even a negative field round-trips in <= 9 bytes); floats
   that must round-trip bit-exactly (cwnd, ssthresh, bandwidth) are raw
   little-endian IEEE bits.  Event times are monotone, so consecutive
   [bits_of_float] values are close and the zigzag delta usually fits a
   few bytes.

   Strings (link names, fault labels, loss reasons) are interned: the
   writer emits a string-def the first time a string appears and varint
   ids afterwards, so the steady-state hot path never copies a string.

   The writer appends records to one preallocated segment buffer and
   hands it to the sink only when full (or on [flush]) — zero
   formatting, zero per-event syscalls.  The reader is torn-tolerant: a
   file cut mid-record (crash before the last flush) yields every
   complete record plus a description of the torn tail. *)

let magic = "NSBT"

(* v2 added the conn-meta record (0x03); everything else is unchanged,
   so the reader accepts both versions. *)
let version = 2
let min_version = 1

let tag_string = 0x00
let tag_link = 0x01
let tag_conn = 0x02
let tag_conn_meta = 0x03
let tag_inject = 0x10
let tag_deliver = 0x11
let tag_enqueue = 0x12
let tag_drop = 0x13
let tag_depart = 0x14
let tag_fault = 0x15
let tag_send = 0x16
let tag_cwnd = 0x17
let tag_loss = 0x18
let tag_ack_tx = 0x19

(* ------------------------------------------------------------------ *)
(* Plain decoded data: no live model objects (packets are recycled
   through free-lists, so a decoded/archived event must copy fields).   *)
(* ------------------------------------------------------------------ *)

type pkt = {
  id : int;
  conn : int;
  kind : Net.Packet.kind;
  seq : int;
  retransmit : bool;
  size : int;
}

type link = { link_id : int; link_name : string; bandwidth : float }

type ev =
  | Inject of pkt
  | Deliver of pkt
  | Enqueue of { link : link; pkt : pkt; qlen : int }
  | Drop of { link : link; pkt : pkt }
  | Depart of { link : link; pkt : pkt; qlen : int }
  | Fault of { link : link; label : string; pkt : pkt }
  | Send of { conn : int; pkt : pkt }
  | Cwnd of { conn : int; cwnd : float; ssthresh : float }
  | Loss of { conn : int; reason : string }
  | Ack_tx of { conn : int; ackno : int; delayed : bool; dup : bool }

type item =
  | Def_link of link
  | Def_conn of int
  | Def_conn_meta of { conn : int; start_time : float; flow_size : int option }
  | Event of float * ev

type file = { file_version : int; items : item list; torn : string option }

let ev_label = function
  | Inject _ -> "inject"
  | Deliver _ -> "deliver"
  | Enqueue _ -> "enqueue"
  | Drop _ -> "drop"
  | Depart _ -> "depart"
  | Fault _ -> "fault"
  | Send _ -> "send"
  | Cwnd _ -> "cwnd"
  | Loss _ -> "loss"
  | Ack_tx _ -> "ack_tx"

let plain_pkt (p : Net.Packet.t) =
  {
    id = p.id;
    conn = p.conn;
    kind = p.kind;
    seq = p.seq;
    retransmit = p.retransmit;
    size = p.size;
  }

let plain_link l =
  {
    link_id = Net.Link.id l;
    link_name = Net.Link.name l;
    bandwidth = Net.Link.bandwidth l;
  }

let plain_ev ~link_of (ev : Event.t) =
  match ev with
  | Event.Inject p -> Inject (plain_pkt p)
  | Event.Deliver p -> Deliver (plain_pkt p)
  | Event.Enqueue { link; pkt; qlen } ->
    Enqueue { link = link_of link; pkt = plain_pkt pkt; qlen }
  | Event.Drop { link; pkt } ->
    Drop { link = link_of link; pkt = plain_pkt pkt }
  | Event.Depart { link; pkt; qlen } ->
    Depart { link = link_of link; pkt = plain_pkt pkt; qlen }
  | Event.Fault { link; label; pkt } ->
    Fault { link = link_of link; label; pkt = plain_pkt pkt }
  | Event.Send { conn; pkt } -> Send { conn; pkt = plain_pkt pkt }
  | Event.Cwnd { conn; cwnd; ssthresh } -> Cwnd { conn; cwnd; ssthresh }
  | Event.Loss { conn; reason } -> Loss { conn; reason }
  | Event.Ack_tx { conn; ackno; delayed; dup } ->
    Ack_tx { conn; ackno; delayed; dup }

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

type writer = {
  sink : string -> unit;
  seg : Bytes.t;
  mutable pos : int;
  strings : (string, int) Hashtbl.t;
  mutable next_sid : int;
  mutable prev_bits : int64;
}

let flush w =
  if w.pos > 0 then begin
    w.sink (Bytes.sub_string w.seg 0 w.pos);
    w.pos <- 0
  end

(* Upper bound on one record's encoding: tag (1) + time varint (<= 10)
   + three int varints (<= 9 each) + packet (<= 37) + qlen (<= 9).
   [event] reserves this once per record, so the field writers below
   skip per-byte capacity checks — and segments always hand off at
   record boundaries, which keeps crash truncation record-aligned. *)
let max_record = 80

let ensure w n = if w.pos + n > Bytes.length w.seg then flush w

(* Unchecked writers: callers must [ensure] the total first.  They
   thread [pos] as a value instead of re-reading the mutable field —
   without flambda, cross-call field loads/stores on every byte are a
   measurable share of the per-event cost; this way the encoder's
   position stays in a register across one record and [w.pos] is
   touched once per record. *)
let put_byte seg pos b =
  Bytes.unsafe_set seg pos (Char.unsafe_chr (b land 0xff));
  pos + 1

let rec put_varint seg pos n =
  if n land lnot 0x7f = 0 then put_byte seg pos n
  else put_varint seg (put_byte seg pos ((n land 0x7f) lor 0x80)) (n lsr 7)

let rec put_varint64 seg pos (n : int64) =
  if Int64.unsigned_compare n 0x80L < 0 then
    put_byte seg pos (Int64.to_int n)
  else
    put_varint64 seg
      (put_byte seg pos (Int64.to_int (Int64.logand n 0x7fL) lor 0x80))
      (Int64.shift_right_logical n 7)

let put_f64 seg pos f =
  Bytes.set_int64_le seg pos (Int64.bits_of_float f);
  pos + 8

let put_raw w s =
  let len = String.length s in
  if w.pos + len > Bytes.length w.seg then flush w;
  if len > Bytes.length w.seg then w.sink s
  else begin
    Bytes.blit_string s 0 w.seg w.pos len;
    w.pos <- w.pos + len
  end

let writer ?(segment = 256 * 1024) sink =
  if segment < 2 * max_record then
    invalid_arg "Btrace.writer: segment too small";
  let w =
    {
      sink;
      seg = Bytes.create segment;
      pos = 0;
      strings = Hashtbl.create 32;
      next_sid = 0;
      prev_bits = 0L;
    }
  in
  put_raw w magic;
  ensure w 1;
  w.pos <- put_byte w.seg w.pos version;
  w

let intern w s =
  match Hashtbl.find_opt w.strings s with
  | Some sid -> sid
  | None ->
    let sid = w.next_sid in
    w.next_sid <- sid + 1;
    Hashtbl.add w.strings s sid;
    ensure w 19;
    let pos = put_byte w.seg w.pos tag_string in
    let pos = put_varint w.seg pos sid in
    w.pos <- put_varint w.seg pos (String.length s);
    put_raw w s;
    sid

let declare_link w l =
  let name_sid = intern w (Net.Link.name l) in
  ensure w 27;
  let seg = w.seg in
  let pos = put_byte seg w.pos tag_link in
  let pos = put_varint seg pos (Net.Link.id l) in
  let pos = put_varint seg pos name_sid in
  w.pos <- put_f64 seg pos (Net.Link.bandwidth l)

let declare_conn w conn =
  ensure w 10;
  let pos = put_byte w.seg w.pos tag_conn in
  w.pos <- put_varint w.seg pos conn

let declare_conn_meta w conn ~start_time ~flow_size =
  ensure w 27;
  let seg = w.seg in
  let pos = put_byte seg w.pos tag_conn_meta in
  let pos = put_varint seg pos conn in
  let pos = put_f64 seg pos start_time in
  w.pos <-
    put_varint seg pos (match flow_size with None -> 0 | Some n -> n + 1)

let zigzag d = Int64.logxor (Int64.shift_left d 1) (Int64.shift_right d 63)

let unzigzag z =
  Int64.logxor
    (Int64.shift_right_logical z 1)
    (Int64.neg (Int64.logand z 1L))

(* Time deltas overwhelmingly fit a native int: consecutive event times
   share sign and exponent, so the bit deltas are small.  The native
   zigzag (sign bit is bit 62) produces the exact same bytes as the
   int64 zigzag for any delta in (-2^61, 2^61); only the first event
   after [prev_bits = 0] and exponent-crossing jumps take the boxed
   int64 path.  Without flambda every Int64 intermediate is a heap
   allocation, so this halves the per-event allocation count. *)
let native_min = Int64.neg 0x2000000000000000L
let native_max = 0x2000000000000000L

let put_time w seg pos time =
  let bits = Int64.bits_of_float time in
  let delta = Int64.sub bits w.prev_bits in
  w.prev_bits <- bits;
  if Int64.compare delta native_min > 0 && Int64.compare delta native_max < 0
  then begin
    let d = Int64.to_int delta in
    put_varint seg pos ((d lsl 1) lxor (d asr 62))
  end
  else put_varint64 seg pos (zigzag delta)

let put_pkt seg pos (p : Net.Packet.t) =
  let pos = put_varint seg pos p.id in
  let pos = put_varint seg pos p.conn in
  let pos =
    put_byte seg pos
      ((match p.kind with Net.Packet.Data -> 0 | Net.Packet.Ack -> 1)
      lor (if p.retransmit then 2 else 0))
  in
  let pos = put_varint seg pos p.seq in
  put_varint seg pos p.size

let event w ~time (ev : Event.t) =
  ensure w max_record;
  let seg = w.seg in
  w.pos <-
    (match ev with
     | Event.Inject p ->
       let pos = put_byte seg w.pos tag_inject in
       let pos = put_time w seg pos time in
       put_pkt seg pos p
     | Event.Deliver p ->
       let pos = put_byte seg w.pos tag_deliver in
       let pos = put_time w seg pos time in
       put_pkt seg pos p
     | Event.Enqueue { link; pkt; qlen } ->
       let pos = put_byte seg w.pos tag_enqueue in
       let pos = put_time w seg pos time in
       let pos = put_varint seg pos (Net.Link.id link) in
       let pos = put_pkt seg pos pkt in
       put_varint seg pos qlen
     | Event.Drop { link; pkt } ->
       let pos = put_byte seg w.pos tag_drop in
       let pos = put_time w seg pos time in
       let pos = put_varint seg pos (Net.Link.id link) in
       put_pkt seg pos pkt
     | Event.Depart { link; pkt; qlen } ->
       let pos = put_byte seg w.pos tag_depart in
       let pos = put_time w seg pos time in
       let pos = put_varint seg pos (Net.Link.id link) in
       let pos = put_pkt seg pos pkt in
       put_varint seg pos qlen
     | Event.Fault { link; label; pkt } ->
       (* Interning may emit a string-def record, so resolve the id
          before the event's own tag byte goes out — and re-reserve,
          since the def may have moved [pos]. *)
       let sid = intern w label in
       ensure w max_record;
       let pos = put_byte seg w.pos tag_fault in
       let pos = put_time w seg pos time in
       let pos = put_varint seg pos (Net.Link.id link) in
       let pos = put_varint seg pos sid in
       put_pkt seg pos pkt
     | Event.Send { conn; pkt } ->
       let pos = put_byte seg w.pos tag_send in
       let pos = put_time w seg pos time in
       let pos = put_varint seg pos conn in
       put_pkt seg pos pkt
     | Event.Cwnd { conn; cwnd; ssthresh } ->
       let pos = put_byte seg w.pos tag_cwnd in
       let pos = put_time w seg pos time in
       let pos = put_varint seg pos conn in
       let pos = put_f64 seg pos cwnd in
       put_f64 seg pos ssthresh
     | Event.Loss { conn; reason } ->
       let sid = intern w reason in
       ensure w max_record;
       let pos = put_byte seg w.pos tag_loss in
       let pos = put_time w seg pos time in
       let pos = put_varint seg pos conn in
       put_varint seg pos sid
     | Event.Ack_tx { conn; ackno; delayed; dup } ->
       let pos = put_byte seg w.pos tag_ack_tx in
       let pos = put_time w seg pos time in
       let pos = put_varint seg pos conn in
       let pos = put_varint seg pos ackno in
       put_byte seg pos ((if delayed then 1 else 0) lor if dup then 2 else 0))

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

exception Torn of string

let read data =
  let n = String.length data in
  if n < 5 || String.sub data 0 4 <> magic then
    Error "not a netsim binary trace (bad magic)"
  else
    let file_version = Char.code data.[4] in
    if file_version < min_version || file_version > version then
      Error
        (Printf.sprintf
           "unsupported binary trace version %d (expected %d..%d)"
           file_version min_version version)
    else begin
      let pos = ref 5 in
      let torn msg = raise (Torn msg) in
      let read_byte () =
        if !pos >= n then torn "truncated";
        let b = Char.code data.[!pos] in
        incr pos;
        b
      in
      let read_varint () =
        let rec go shift acc =
          let b = read_byte () in
          let acc = acc lor ((b land 0x7f) lsl shift) in
          if b < 0x80 then acc
          else if shift >= 56 then torn "varint too long"
          else go (shift + 7) acc
        in
        go 0 0
      in
      let read_varint64 () =
        let rec go shift acc =
          let b = read_byte () in
          let acc =
            Int64.logor acc
              (Int64.shift_left (Int64.of_int (b land 0x7f)) shift)
          in
          if b < 0x80 then acc
          else if shift >= 63 then torn "varint too long"
          else go (shift + 7) acc
        in
        go 0 0L
      in
      let read_f64 () =
        if !pos + 8 > n then torn "truncated";
        let bits = String.get_int64_le data !pos in
        pos := !pos + 8;
        Int64.float_of_bits bits
      in
      let strings : (int, string) Hashtbl.t = Hashtbl.create 32 in
      let links : (int, link) Hashtbl.t = Hashtbl.create 8 in
      let string_of_sid sid =
        match Hashtbl.find_opt strings sid with
        | Some s -> s
        | None -> torn (Printf.sprintf "undefined string id %d" sid)
      in
      let link_of_id id =
        match Hashtbl.find_opt links id with
        | Some l -> l
        | None -> torn (Printf.sprintf "undefined link id %d" id)
      in
      let read_pkt () =
        let id = read_varint () in
        let conn = read_varint () in
        let flags = read_byte () in
        let seq = read_varint () in
        let size = read_varint () in
        {
          id;
          conn;
          kind =
            (if flags land 1 = 0 then Net.Packet.Data else Net.Packet.Ack);
          retransmit = flags land 2 <> 0;
          seq;
          size;
        }
      in
      let prev_bits = ref 0L in
      let read_time () =
        let bits = Int64.add !prev_bits (unzigzag (read_varint64 ())) in
        prev_bits := bits;
        Int64.float_of_bits bits
      in
      let items = ref [] in
      let count = ref 0 in
      let torn_msg = ref None in
      (try
         while !pos < n do
           let start = !pos in
           (try
              let tag = read_byte () in
              if tag = tag_string then begin
                let sid = read_varint () in
                let len = read_varint () in
                if len < 0 || !pos + len > n then torn "truncated string";
                Hashtbl.replace strings sid (String.sub data !pos len);
                pos := !pos + len
              end
              else if tag = tag_link then begin
                let link_id = read_varint () in
                let link_name = string_of_sid (read_varint ()) in
                let bandwidth = read_f64 () in
                let l = { link_id; link_name; bandwidth } in
                Hashtbl.replace links link_id l;
                items := Def_link l :: !items
              end
              else if tag = tag_conn then
                items := Def_conn (read_varint ()) :: !items
              else if tag = tag_conn_meta then begin
                let conn = read_varint () in
                let start_time = read_f64 () in
                let flow_size =
                  match read_varint () with 0 -> None | n -> Some (n - 1)
                in
                items := Def_conn_meta { conn; start_time; flow_size } :: !items
              end
              else begin
                let time = read_time () in
                let ev =
                  if tag = tag_inject then Inject (read_pkt ())
                  else if tag = tag_deliver then Deliver (read_pkt ())
                  else if tag = tag_enqueue then begin
                    let link = link_of_id (read_varint ()) in
                    let pkt = read_pkt () in
                    Enqueue { link; pkt; qlen = read_varint () }
                  end
                  else if tag = tag_drop then begin
                    let link = link_of_id (read_varint ()) in
                    Drop { link; pkt = read_pkt () }
                  end
                  else if tag = tag_depart then begin
                    let link = link_of_id (read_varint ()) in
                    let pkt = read_pkt () in
                    Depart { link; pkt; qlen = read_varint () }
                  end
                  else if tag = tag_fault then begin
                    let link = link_of_id (read_varint ()) in
                    let label = string_of_sid (read_varint ()) in
                    Fault { link; label; pkt = read_pkt () }
                  end
                  else if tag = tag_send then begin
                    let conn = read_varint () in
                    Send { conn; pkt = read_pkt () }
                  end
                  else if tag = tag_cwnd then begin
                    let conn = read_varint () in
                    let cwnd = read_f64 () in
                    Cwnd { conn; cwnd; ssthresh = read_f64 () }
                  end
                  else if tag = tag_loss then begin
                    let conn = read_varint () in
                    Loss { conn; reason = string_of_sid (read_varint ()) }
                  end
                  else if tag = tag_ack_tx then begin
                    let conn = read_varint () in
                    let ackno = read_varint () in
                    let flags = read_byte () in
                    Ack_tx
                      {
                        conn;
                        ackno;
                        delayed = flags land 1 <> 0;
                        dup = flags land 2 <> 0;
                      }
                  end
                  else torn (Printf.sprintf "unknown record tag 0x%02x" tag)
                in
                items := Event (time, ev) :: !items
              end;
              incr count
            with Torn msg ->
              torn_msg :=
                Some
                  (Printf.sprintf
                     "torn record at byte %d: %s (%d complete records \
                      recovered)"
                     start msg !count);
              raise Exit)
         done
       with Exit -> ());
      Ok { file_version; items = List.rev !items; torn = !torn_msg }
    end

(* ------------------------------------------------------------------ *)
(* Offline formatters                                                  *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_pkt buf (p : pkt) =
  Printf.bprintf buf ",\"id\":%d,\"conn\":%d,\"kind\":\"%s\",\"seq\":%d" p.id
    p.conn
    (Net.Packet.kind_to_string p.kind)
    p.seq;
  if p.retransmit then Buffer.add_string buf ",\"rexmt\":true"

let add_link buf (l : link) =
  Printf.bprintf buf ",\"link\":\"%s\"" (escape l.link_name)

let jsonl_line ~time ev =
  let buf = Buffer.create 96 in
  Printf.bprintf buf "{\"t\":%s,\"ev\":\"%s\"" (Json.float_repr time)
    (ev_label ev);
  (match ev with
   | Inject p | Deliver p -> add_pkt buf p
   | Enqueue { link; pkt; qlen } | Depart { link; pkt; qlen } ->
     add_link buf link;
     add_pkt buf pkt;
     Printf.bprintf buf ",\"qlen\":%d" qlen
   | Drop { link; pkt } ->
     add_link buf link;
     add_pkt buf pkt
   | Fault { link; label; pkt } ->
     add_link buf link;
     Printf.bprintf buf ",\"fault\":\"%s\"" (escape label);
     add_pkt buf pkt
   | Send { conn = _; pkt } -> add_pkt buf pkt
   | Cwnd { conn; cwnd; ssthresh } ->
     Printf.bprintf buf ",\"conn\":%d,\"cwnd\":%s,\"ssthresh\":%s" conn
       (Json.float_repr cwnd) (Json.float_repr ssthresh)
   | Loss { conn; reason } ->
     Printf.bprintf buf ",\"conn\":%d,\"reason\":\"%s\"" conn (escape reason)
   | Ack_tx { conn; ackno; delayed; dup } ->
     Printf.bprintf buf ",\"conn\":%d,\"ackno\":%d,\"delayed\":%b,\"dup\":%b"
       conn ackno delayed dup);
  Buffer.add_char buf '}';
  Buffer.contents buf

let export_jsonl items sink =
  List.iter
    (function
      | Def_link _ | Def_conn _ | Def_conn_meta _ -> ()
      | Event (time, ev) ->
        sink (jsonl_line ~time ev);
        sink "\n")
    items

(* Chrome trace_event rendering: one process, one thread ("track" in
   Perfetto) per link and per connection; counter tracks (queue depth,
   cwnd) get their own lanes from their event names.  The output must
   stay byte-identical to what the old online chrome sink produced. *)

let pid = 1
let link_tid (l : link) = 2 + l.link_id
let conn_tid conn = 1001 + conn

let pkt_name (p : pkt) =
  Printf.sprintf "%s seq=%d%s"
    (Net.Packet.kind_to_string p.kind)
    p.seq
    (if p.retransmit then " rexmt" else "")

let export_chrome items sink =
  sink "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let records = ref 0 in
  let record s =
    sink (if !records = 0 then "\n" else ",\n");
    incr records;
    sink s
  in
  let meta ~tid ~name =
    record
      (Printf.sprintf
         "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\
          \"args\":{\"name\":\"%s\"}}"
         pid tid (escape name))
  in
  let instant ~time ~tid ~name =
    record
      (Printf.sprintf
         "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\
          \"pid\":%d,\"tid\":%d}"
         (escape name) (1e6 *. time) pid tid)
  in
  let counter ~time ~name ~args =
    record
      (Printf.sprintf
         "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":%d,\"args\":{%s}}"
         (escape name) (1e6 *. time) pid args)
  in
  let queue_counter ~time (l : link) qlen =
    counter ~time
      ~name:("queue " ^ l.link_name)
      ~args:(Printf.sprintf "\"packets\":%d" qlen)
  in
  record
    (Printf.sprintf
       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\
        \"args\":{\"name\":\"netsim\"}}"
       pid);
  List.iter
    (function
      | Def_link l -> meta ~tid:(link_tid l) ~name:("link " ^ l.link_name)
      | Def_conn c -> meta ~tid:(conn_tid c) ~name:(Printf.sprintf "conn %d" c)
      | Def_conn_meta { conn = c; _ } ->
        meta ~tid:(conn_tid c) ~name:(Printf.sprintf "conn %d" c)
      | Event (time, ev) -> (
        match ev with
        | Inject p ->
          instant ~time ~tid:(conn_tid p.conn) ~name:("inject " ^ pkt_name p)
        | Deliver p ->
          instant ~time ~tid:(conn_tid p.conn) ~name:("deliver " ^ pkt_name p)
        | Enqueue { link; pkt = _; qlen } -> queue_counter ~time link qlen
        | Drop { link; pkt } ->
          instant ~time ~tid:(link_tid link) ~name:("drop " ^ pkt_name pkt)
        | Depart { link; pkt; qlen } ->
          (* The departure marks the end of serialization: render the
             whole serialization interval as a complete ("X") slice on
             the link's track, so Perfetto shows the transmitter's duty
             cycle directly. *)
          let tx =
            if link.bandwidth > 0. then
              8. *. float_of_int pkt.size /. link.bandwidth
            else 0.
          in
          record
            (Printf.sprintf
               "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\
                \"pid\":%d,\"tid\":%d,\"args\":{\"conn\":%d,\"seq\":%d,\
                \"id\":%d}}"
               (escape (pkt_name pkt))
               (1e6 *. (time -. tx))
               (1e6 *. tx) pid (link_tid link) pkt.conn pkt.seq pkt.id);
          queue_counter ~time link qlen
        | Fault { link; label; pkt } ->
          instant ~time ~tid:(link_tid link)
            ~name:(Printf.sprintf "fault:%s %s" label (pkt_name pkt))
        | Send { conn; pkt } ->
          instant ~time ~tid:(conn_tid conn) ~name:("send " ^ pkt_name pkt)
        | Cwnd { conn; cwnd; ssthresh } ->
          counter ~time
            ~name:(Printf.sprintf "cwnd conn-%d" conn)
            ~args:
              (Printf.sprintf "\"cwnd\":%s,\"ssthresh\":%s"
                 (Json.float_repr cwnd) (Json.float_repr ssthresh))
        | Loss { conn; reason } ->
          instant ~time ~tid:(conn_tid conn) ~name:("loss:" ^ reason)
        | Ack_tx { conn; ackno; delayed; dup } ->
          instant ~time ~tid:(conn_tid conn)
            ~name:
              (Printf.sprintf "ack %d%s%s" ackno
                 (if delayed then " delayed" else "")
                 (if dup then " dup" else ""))))
    items;
  sink "\n]}\n"

(* ------------------------------------------------------------------ *)
(* Validation (tracecheck on the binary directly)                      *)
(* ------------------------------------------------------------------ *)

type audit = {
  audit_version : int;
  audit_events : int;
  audit_links : int;
  audit_conns : int;
  audit_torn : string option;
  audit_errors : string list;
}

let contains_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i =
    i + n <= h && (String.sub haystack i n = needle || go (i + 1))
  in
  n = 0 || go 0

let ev_conn = function
  | Inject p | Deliver p -> p.conn
  | Enqueue { pkt; _ } | Drop { pkt; _ } | Depart { pkt; _ }
  | Fault { pkt; _ } ->
    pkt.conn
  | Send { conn; _ } | Cwnd { conn; _ } | Loss { conn; _ }
  | Ack_tx { conn; _ } ->
    conn

(* Decode and audit: every event must reference a declared connection
   (link and string references are enforced by the decoder itself — an
   undefined id stops the walk with a torn note naming it), and event
   times must be non-decreasing.  A torn tail from a plain truncation is
   reported but is not an error (crash traces are valid prefixes); a
   torn note caused by a dangling reference or an unknown tag is. *)
let validate data =
  match read data with
  | Error msg -> Error msg
  | Ok { file_version; items; torn } ->
    let conns = Hashtbl.create 8 in
    let links = ref 0 in
    let events = ref 0 in
    let missing = Hashtbl.create 8 in
    let errors = ref [] in
    let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
    let prev_time = ref neg_infinity in
    List.iter
      (fun item ->
        match item with
        | Def_link _ -> incr links
        | Def_conn c -> Hashtbl.replace conns c ()
        | Def_conn_meta { conn; _ } -> Hashtbl.replace conns conn ()
        | Event (time, ev) ->
          incr events;
          let c = ev_conn ev in
          if not (Hashtbl.mem conns c) && not (Hashtbl.mem missing c) then begin
            Hashtbl.add missing c ();
            err "event %d (%s at t=%s) references undeclared conn %d"
              !events (ev_label ev) (Json.float_repr time) c
          end;
          if time < !prev_time then
            err "time goes backwards at event %d: %s -> %s" !events
              (Json.float_repr !prev_time)
              (Json.float_repr time);
          prev_time := time)
      items;
    (match torn with
     | Some msg
       when contains_substring msg "undefined"
            || contains_substring msg "unknown record tag" ->
       err "torn tail reports a broken reference: %s" msg
     | _ -> ());
    Ok
      {
        audit_version = file_version;
        audit_events = !events;
        audit_links = !links;
        audit_conns = Hashtbl.length conns;
        audit_torn = torn;
        audit_errors = List.rev !errors;
      }
