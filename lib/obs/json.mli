(** Minimal JSON reader — just enough to validate and inspect the files
    this library writes (JSONL traces, Chrome traces, metrics snapshots)
    without pulling a JSON dependency into the toolchain. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Parse one complete JSON value; trailing whitespace is allowed,
    trailing garbage is an error. *)
val parse : string -> (t, string) result

(** Shortest decimal representation of [f] that parses back to exactly
    the same double: [%.9g] when that round-trips (keeping historical
    trace spellings stable), widening through [%.12g] / [%.15g] to
    [%.17g], which always round-trips.  Not JSON-safe for nan/inf —
    callers must handle non-finite values themselves. *)
val float_repr : float -> string

(** Field of an object ([None] for a missing key or a non-object). *)
val member : string -> t -> t option

val to_float : t -> float option
val to_string : t -> string option

(** Validate a JSONL stream: every line parses as a JSON object carrying
    a numeric [key] field, and those values are non-decreasing.
    Returns the number of lines, or an error naming the first offending
    line (1-based). *)
val validate_jsonl : ?key:string -> string -> (int, string) result
