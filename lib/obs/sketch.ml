(* Streaming log-bucket quantile sketch (DDSketch-style).

   Values are mapped to geometric buckets: value [v > min_value] lands in
   bucket [ceil (log v / log gamma)] where [gamma = (1+alpha)/(1-alpha)].
   Every value mapping to bucket [i] lies in (gamma^(i-1), gamma^i], so
   the midpoint estimate [2 gamma^i / (gamma+1)] is within relative error
   [alpha] of any of them — and therefore of the exact sample at any rank
   whose value fell in that bucket.  Memory is bounded: at most
   [max_buckets] live buckets; exceeding the cap collapses the two lowest
   buckets into one (accuracy degrades only at the far low tail, and
   [collapsed] reports that it happened).

   The exact minimum and maximum are tracked on the side, so quantile
   estimates are clamped into the observed range and q = 0 / q = 1 are
   exact.  Values at or below [min_value] (including zero and negatives,
   which the log mapping cannot represent) are counted in a dedicated
   underflow bucket estimated by the observed minimum.

   Everything is deterministic: bucket contents are integer counts, the
   quantile walk sorts bucket indices, and merging is count addition —
   the same samples in the same order always produce the same answers,
   which the byte-identical online/offline flow summaries rely on. *)

type t = {
  alpha : float;
  gamma : float;
  log_gamma : float;
  max_buckets : int;
  buckets : (int, int) Hashtbl.t;
  mutable underflow : int;  (* values <= min_value *)
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable collapsed : bool;
}

(* Below this the log mapping would need huge negative indices; the
   simulator's time-like quantities (RTTs, FCTs, seconds) never get
   near it. *)
let min_value = 1e-12

let default_alpha = 0.01

let create ?(alpha = default_alpha) ?(max_buckets = 2048) () =
  if not (alpha > 0. && alpha < 1.) then
    invalid_arg "Sketch.create: alpha must be in (0, 1)";
  if max_buckets < 2 then invalid_arg "Sketch.create: max_buckets < 2";
  let gamma = (1. +. alpha) /. (1. -. alpha) in
  {
    alpha;
    gamma;
    log_gamma = log gamma;
    max_buckets;
    buckets = Hashtbl.create 64;
    underflow = 0;
    count = 0;
    sum = 0.;
    min_v = infinity;
    max_v = neg_infinity;
    collapsed = false;
  }

let alpha t = t.alpha
let count t = t.count
let sum t = t.sum
let is_empty t = t.count = 0
let collapsed t = t.collapsed
let min t = if t.count = 0 then None else Some t.min_v
let max t = if t.count = 0 then None else Some t.max_v

let mean t = if t.count = 0 then None else Some (t.sum /. float_of_int t.count)

let sorted_keys t =
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.buckets [] in
  List.sort compare keys

(* Merge the two lowest buckets so the table never exceeds
   [max_buckets]: the low tail loses resolution, the quantiles people
   actually read (p50 and up) keep the full guarantee. *)
let collapse_lowest t =
  match sorted_keys t with
  | k0 :: k1 :: _ ->
    let c0 = try Hashtbl.find t.buckets k0 with Not_found -> 0 in
    let c1 = try Hashtbl.find t.buckets k1 with Not_found -> 0 in
    Hashtbl.remove t.buckets k0;
    Hashtbl.replace t.buckets k1 (c0 + c1);
    t.collapsed <- true
  | _ -> ()

let bump t key by =
  (match Hashtbl.find_opt t.buckets key with
   | Some c -> Hashtbl.replace t.buckets key (c + by)
   | None ->
     Hashtbl.add t.buckets key by;
     if Hashtbl.length t.buckets > t.max_buckets then collapse_lowest t);
  t.count <- t.count + by

let key_of t v = int_of_float (Float.ceil (log v /. t.log_gamma))

let add t v =
  if Float.is_nan v then invalid_arg "Sketch.add: nan";
  if v > min_value && v < infinity then bump t (key_of t v) 1
  else begin
    t.underflow <- t.underflow + 1;
    t.count <- t.count + 1
  end;
  t.sum <- t.sum +. v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let merge ~into src =
  if into.alpha <> src.alpha then
    invalid_arg "Sketch.merge: sketches built with different alpha";
  Hashtbl.iter (fun k c -> bump into k c) src.buckets;
  into.underflow <- into.underflow + src.underflow;
  into.count <- into.count + src.underflow;
  into.sum <- into.sum +. src.sum;
  if src.min_v < into.min_v then into.min_v <- src.min_v;
  if src.max_v > into.max_v then into.max_v <- src.max_v;
  if src.collapsed then into.collapsed <- true

let clamp t v =
  if v < t.min_v then t.min_v else if v > t.max_v then t.max_v else v

let quantile t q =
  if Float.is_nan q || q < 0. || q > 1. then
    invalid_arg "Sketch.quantile: q outside [0, 1]";
  if t.count = 0 then None
  else if q <= 0. then Some t.min_v
  else if q >= 1. then Some t.max_v
  else begin
    (* Same rank convention the tests use on the exact side: the value
       at (0-based) index [floor (q * (count - 1))] of the sorted
       samples. *)
    let rank = int_of_float (q *. float_of_int (t.count - 1)) in
    if rank < t.underflow then Some t.min_v
    else begin
      let cum = ref t.underflow in
      let found = ref None in
      List.iter
        (fun k ->
          if !found = None then begin
            cum := !cum + Hashtbl.find t.buckets k;
            if !cum > rank then found := Some k
          end)
        (sorted_keys t);
      match !found with
      | None -> Some t.max_v  (* unreachable: counts sum to [count] *)
      | Some k ->
        let est =
          2. *. exp (float_of_int k *. t.log_gamma) /. (t.gamma +. 1.)
        in
        Some (clamp t est)
    end
  end
