(** Structured event tracer: fans each {!Event.t} out to the installed
    sinks — a JSONL stream, a Chrome [trace_event] file (loadable in
    Perfetto / [chrome://tracing]), and/or a {!Flight} ring.

    A sink is just [string -> unit]; callers hand in
    [output_string oc] or [Buffer.add_string buf].  With no sinks
    installed nothing is formatted; installers (see {!Probe}) only hook
    the simulation at all when at least one sink exists, so the
    zero-sink run pays nothing. *)

type sink = string -> unit

type t

val create :
  ?jsonl:sink -> ?chrome:sink -> ?flight:Flight.t -> Engine.Sim.t -> t

(** Declare one Perfetto track per link / per connection (thread-name
    metadata records).  Call before the corresponding events are emitted;
    no-ops without a chrome sink. *)
val declare_link : t -> Net.Link.t -> unit

val declare_conn : t -> int -> unit

(** Stamp the event with the current simulated time and write it to every
    sink. *)
val emit : t -> Event.t -> unit

(** Events emitted so far (across all sinks). *)
val events_emitted : t -> int

val flight : t -> Flight.t option

(** Write the Chrome file's closing bracket.  Idempotent; JSONL needs no
    finalization. *)
val finish : t -> unit

(** [with_file_sink path f] opens [path], passes [output_string oc] to
    [f], and — via [Fun.protect] — flushes and closes the channel on
    every exit path, including exceptions.  A traced run that crashes
    mid-simulation therefore leaves a parseable JSONL prefix (whole
    lines), never a file torn mid-line by channel buffering. *)
val with_file_sink : string -> (sink -> 'a) -> 'a
