(** Structured event tracer: stamps each {!Event.t} with simulated time
    and hands it to the binary {!Btrace} writer and/or a {!Flight} ring.

    The hot path does zero formatting and zero per-event syscalls: the
    writer appends fixed-width binary records to a preallocated segment
    buffer and the sink sees only large batches.  Text formats (JSONL,
    Chrome trace) are produced offline from the binary stream — see
    {!Btrace.export_jsonl} / {!Btrace.export_chrome} and the
    [netsim trace export] subcommand.

    A sink is just [string -> unit]; callers hand in [output_string oc]
    or [Buffer.add_string buf].  With no sink and no ring installed
    nothing is recorded; installers (see {!Probe}) only hook the
    simulation at all when a consumer exists, so the zero-sink run pays
    nothing. *)

type sink = string -> unit

(** What the flight ring stores: event time plus a plain-data copy of
    the event (live packets are recycled after the emitting hook). *)
type flight_record = float * Btrace.ev

type t

val create :
  ?btrace:sink -> ?flight:flight_record Flight.t -> Engine.Sim.t -> t

(** Declare a link / connection in the binary stream (and prime the
    tracer's plain-link cache).  Call before the corresponding events
    are emitted. *)
val declare_link : t -> Net.Link.t -> unit

val declare_conn : t -> int -> unit

(** Like {!declare_conn}, but writes a conn-meta record carrying the
    flow's start time and size, which offline analytics
    ([netsim trace stats]) recover. *)
val declare_conn_meta :
  t -> int -> start_time:float -> flow_size:int option -> unit

(** Stamp the event with the current simulated time, append its binary
    record, and copy it into the flight ring if one is armed. *)
val emit : t -> Event.t -> unit

(** Events emitted so far. *)
val events_emitted : t -> int

val flight : t -> flight_record Flight.t option

(** Render one flight-ring record as its JSONL line (for postmortem
    dumps). *)
val render_flight : flight_record -> string

(** Flush the binary writer's segment buffer to the sink.  Idempotent;
    must run on every exit path (the {!Core.Runner} calls it on both
    success and exception unwinds). *)
val finish : t -> unit

(** [with_file_sink path f] opens [path] (binary mode), passes
    [output_string oc] to [f], and — via [Fun.protect] — flushes and
    closes the channel on every exit path, including exceptions.
    Callers must still {!finish} the tracer inside [f]'s protection if
    they want the last partial segment on disk; a crash between batches
    leaves a prefix from which {!Btrace.read} recovers every complete
    record. *)
val with_file_sink : string -> (sink -> 'a) -> 'a
