(** Per-flow accounting: delivered bytes, retransmits, RTT samples,
    cwnd extrema and flow-completion time for every connection, plus
    aggregate fairness and distribution views.

    The registry is array-backed and free-listed like the engine's
    pools: registering a flow takes a slot, {!release} returns it, and
    the steady-state accounting path allocates nothing.  RTT and FCT
    distributions go through {!Sketch}, so memory stays bounded at
    10^4+ flows.

    The same [record_*] accounting functions are driven online (from
    {!Probe} hooks during a run) and offline (from {!feed} folding a
    decoded binary trace); they mirror the sender's own bookkeeping —
    including Karn's algorithm for RTT sampling — so the two paths
    agree {e bit-for-bit}: {!to_json} of a live run equals {!to_json}
    of its own trace, byte for byte. *)

type t

val create : unit -> t

(** Relative-error bound of every reported percentile
    ({!Sketch.default_alpha}). *)
val alpha : float

(** Take a slot for [conn].  Registering an already-registered conn
    only refreshes the metadata (counters are kept).
    @raise Invalid_argument on a negative conn id. *)
val register : t -> conn:int -> start_time:float -> flow_size:int option -> unit

(** Return [conn]'s slot to the free list; unknown conns are ignored. *)
val release : t -> conn:int -> unit

val flow_count : t -> int

(** {2 Accounting}

    Events for unregistered connections are ignored. *)

(** A data-packet transmission ({!Event.Send}).  A first transmission
    starts the RTT timer when none is running; a retransmission counts
    and clears it (Karn). *)
val record_send :
  t -> time:float -> conn:int -> seq:int -> retransmit:bool -> unit

(** A data packet reaching the receiver ({!Event.Deliver}, Data). *)
val record_data_delivered : t -> conn:int -> bytes:int -> unit

(** A cumulative ACK reaching the sender ({!Event.Deliver}, Ack; the
    ackno travels in the packet's [seq] field).  Samples the RTT when
    the ACK covers the timed sequence, records completion when it
    covers a sized flow. *)
val record_ack_delivered : t -> time:float -> conn:int -> ackno:int -> unit

(** A loss signal ({!Event.Loss}): counts, and clears the RTT timer. *)
val record_loss : t -> conn:int -> unit

(** A cwnd change ({!Event.Cwnd}): tracks the extrema. *)
val record_cwnd : t -> conn:int -> cwnd:float -> unit

(** {2 Offline}

    Fold one decoded binary-trace record: conn-defs register flows
    (bare v1 conn-defs with [start_time = 0.], infinite size), events
    dispatch to the [record_*] functions above, everything else is
    skipped. *)
val feed : t -> Btrace.item -> unit

(** {2 Views} *)

type stats = {
  s_conn : int;
  s_start_time : float;
  s_flow_size : int option;
  s_delivered_pkts : int;  (** data packets that reached the receiver *)
  s_delivered_bytes : int;
  s_data_sends : int;  (** first transmissions *)
  s_retransmits : int;
  s_loss_events : int;
  s_acked_pkts : int;  (** highest cumulative ackno seen *)
  s_rtt_samples : int;
  s_rtt_min : float option;
  s_rtt_mean : float option;
  s_rtt_max : float option;
  s_rtt_p50 : float option;
  s_rtt_p99 : float option;
  s_cwnd_min : float option;
  s_cwnd_max : float option;
  s_fct : float option;
      (** completion time - start time, sized flows only *)
  s_throughput : float option;  (** delivered bytes / fct, completed only *)
}

val stats : t -> conn:int -> stats option

(** Every live flow, in connection-id order. *)
val all : t -> stats list

(** Jain's fairness index over per-flow delivered bytes ([None] when no
    flows; 1.0 when nothing was delivered at all). *)
val jain : t -> float option

(** Cross-flow distribution quantiles (completed flows for FCT; every
    RTT sample of every flow for RTT). *)
val fct_quantile : t -> float -> float option

val rtt_quantile : t -> float -> float option

(** {2 JSON}

    Deterministic encodings: fixed key order, shortest round-trip
    floats ([null] for absent values).  {!to_json} is the
    online/offline identity artifact — a trailing newline included, so
    the CLI can write it to a file verbatim. *)

val flow_json : stats -> string
val to_json : t -> string
