(* Per-flow accounting registry.

   One mutable record per connection, held in an array-backed,
   free-listed pool (like the engine's link/host pools): registering a
   flow takes a slot, releasing it returns the slot, and the steady-state
   accounting path allocates nothing — every update is an int/float store
   into an existing record (the only amortized allocation is a new
   quantile-sketch bucket on first use).

   The same record_* functions are driven from two sources that must
   agree bit-for-bit:

     online   {!Probe} hooks during a live run
     offline  {!feed} folding the decoded records of a binary trace

   so the accounting mirrors the sender's own bookkeeping exactly — in
   particular Karn's algorithm for RTT sampling:

     - a first-transmission Send starts the timer when none is running
       (the sender sets [timing] in [send_one] under the same condition)
     - any Loss and any retransmitted Send clear the timer (the sender
       clears [timing] in [handle_loss] and before every hole
       retransmission; by the time a retransmitted packet's Send hook
       fires the sender's timer is already clear, so clearing here too is
       a faithful no-op that keeps the mirror robust)
     - a cumulative ACK past the timed sequence samples
       [deliver_time - send_time] and clears the timer (the sender
       samples at the same simulation instant the ACK is delivered)

   Delivered data, retransmit counts and flow-completion times follow the
   same discipline: an ACK record carries the cumulative ackno in its
   [seq] field, completion fires when the ackno covers a sized flow.
   Since every input (event times, cwnd values, packet sizes) travels
   through the binary trace bit-exactly, the offline fold reproduces the
   online summary byte for byte. *)

let alpha = Sketch.default_alpha

type flow = {
  conn : int;
  mutable start_time : float;
  mutable flow_size : int option;  (* packets; None = infinite source *)
  mutable delivered_pkts : int;
  mutable delivered_bytes : int;
  mutable data_sends : int;
  mutable retransmits : int;
  mutable loss_events : int;
  mutable snd_una : int;
  mutable timing_seq : int;  (* Karn timer mirror; -1 = not timing *)
  mutable timing_sent : float;
  mutable rtt_samples : int;
  mutable rtt_sum : float;
  mutable rtt_min : float;
  mutable rtt_max : float;
  rtt : Sketch.t;
  mutable cwnd_min : float;
  mutable cwnd_max : float;
  mutable completed_at : float;  (* nan = not (yet) complete *)
}

type t = {
  mutable slots : flow option array;
  mutable free : int array;  (* stack of reusable slot indices *)
  mutable free_top : int;
  mutable next_slot : int;  (* high-water mark *)
  mutable index : int array;  (* conn id -> slot, -1 = unregistered *)
  mutable live : int;
}

let create () =
  {
    slots = Array.make 16 None;
    free = Array.make 16 0;
    free_top = 0;
    next_slot = 0;
    index = Array.make 64 (-1);
    live = 0;
  }

let flow_count t = t.live

let grow_index t conn =
  if conn >= Array.length t.index then begin
    let n = Stdlib.max (conn + 1) (2 * Array.length t.index) in
    let bigger = Array.make n (-1) in
    Array.blit t.index 0 bigger 0 (Array.length t.index);
    t.index <- bigger
  end

let fresh_flow conn ~start_time ~flow_size =
  {
    conn;
    start_time;
    flow_size;
    delivered_pkts = 0;
    delivered_bytes = 0;
    data_sends = 0;
    retransmits = 0;
    loss_events = 0;
    snd_una = 0;
    timing_seq = -1;
    timing_sent = 0.;
    rtt_samples = 0;
    rtt_sum = 0.;
    rtt_min = infinity;
    rtt_max = neg_infinity;
    rtt = Sketch.create ~alpha ();
    cwnd_min = infinity;
    cwnd_max = neg_infinity;
    completed_at = nan;
  }

let find t conn =
  if conn < 0 || conn >= Array.length t.index then None
  else
    let slot = Array.unsafe_get t.index conn in
    if slot < 0 then None else Array.unsafe_get t.slots slot

let register t ~conn ~start_time ~flow_size =
  if conn < 0 then invalid_arg "Flowstats.register: negative conn id";
  match find t conn with
  | Some f ->
    (* Re-registration only refreshes metadata (a conn-meta record after
       a bare conn-def); accumulated counters are kept. *)
    f.start_time <- start_time;
    f.flow_size <- flow_size
  | None ->
    grow_index t conn;
    let slot =
      if t.free_top > 0 then begin
        t.free_top <- t.free_top - 1;
        t.free.(t.free_top)
      end
      else begin
        if t.next_slot >= Array.length t.slots then
          t.slots <-
            Array.append t.slots
              (Array.make (Array.length t.slots) None);
        let s = t.next_slot in
        t.next_slot <- s + 1;
        s
      end
    in
    t.slots.(slot) <- Some (fresh_flow conn ~start_time ~flow_size);
    t.index.(conn) <- slot;
    t.live <- t.live + 1

let release t ~conn =
  if conn >= 0 && conn < Array.length t.index then begin
    let slot = t.index.(conn) in
    if slot >= 0 then begin
      t.index.(conn) <- -1;
      t.slots.(slot) <- None;
      if t.free_top >= Array.length t.free then
        t.free <- Array.append t.free (Array.make (Array.length t.free) 0);
      t.free.(t.free_top) <- slot;
      t.free_top <- t.free_top + 1;
      t.live <- t.live - 1
    end
  end

(* ------------------------------------------------------------------ *)
(* Accounting (shared by the online hooks and the offline trace fold)  *)
(* ------------------------------------------------------------------ *)

let record_send t ~time ~conn ~seq ~retransmit =
  match find t conn with
  | None -> ()
  | Some f ->
    if retransmit then begin
      f.retransmits <- f.retransmits + 1;
      f.timing_seq <- -1
    end
    else begin
      f.data_sends <- f.data_sends + 1;
      if f.timing_seq < 0 then begin
        f.timing_seq <- seq;
        f.timing_sent <- time
      end
    end

let record_data_delivered t ~conn ~bytes =
  match find t conn with
  | None -> ()
  | Some f ->
    f.delivered_pkts <- f.delivered_pkts + 1;
    f.delivered_bytes <- f.delivered_bytes + bytes

let record_ack_delivered t ~time ~conn ~ackno =
  match find t conn with
  | None -> ()
  | Some f ->
    if ackno > f.snd_una then begin
      if f.timing_seq >= 0 && ackno > f.timing_seq then begin
        let rtt = time -. f.timing_sent in
        f.rtt_samples <- f.rtt_samples + 1;
        f.rtt_sum <- f.rtt_sum +. rtt;
        if rtt < f.rtt_min then f.rtt_min <- rtt;
        if rtt > f.rtt_max then f.rtt_max <- rtt;
        Sketch.add f.rtt rtt;
        f.timing_seq <- -1
      end;
      f.snd_una <- ackno;
      match f.flow_size with
      | Some n when f.snd_una >= n && Float.is_nan f.completed_at ->
        f.completed_at <- time
      | _ -> ()
    end

let record_loss t ~conn =
  match find t conn with
  | None -> ()
  | Some f ->
    f.loss_events <- f.loss_events + 1;
    f.timing_seq <- -1

let record_cwnd t ~conn ~cwnd =
  match find t conn with
  | None -> ()
  | Some f ->
    if cwnd < f.cwnd_min then f.cwnd_min <- cwnd;
    if cwnd > f.cwnd_max then f.cwnd_max <- cwnd

(* ------------------------------------------------------------------ *)
(* Offline: fold decoded binary-trace records                          *)
(* ------------------------------------------------------------------ *)

let ensure t conn =
  if find t conn = None then
    register t ~conn ~start_time:0. ~flow_size:None

let feed t (item : Btrace.item) =
  match item with
  | Btrace.Def_link _ -> ()
  | Btrace.Def_conn conn -> ensure t conn
  | Btrace.Def_conn_meta { conn; start_time; flow_size } ->
    register t ~conn ~start_time ~flow_size
  | Btrace.Event (time, ev) -> (
    match ev with
    | Btrace.Send { conn; pkt } ->
      record_send t ~time ~conn ~seq:pkt.Btrace.seq
        ~retransmit:pkt.Btrace.retransmit
    | Btrace.Deliver p -> (
      match p.Btrace.kind with
      | Net.Packet.Data ->
        record_data_delivered t ~conn:p.Btrace.conn ~bytes:p.Btrace.size
      | Net.Packet.Ack ->
        record_ack_delivered t ~time ~conn:p.Btrace.conn ~ackno:p.Btrace.seq)
    | Btrace.Loss { conn; _ } -> record_loss t ~conn
    | Btrace.Cwnd { conn; cwnd; _ } -> record_cwnd t ~conn ~cwnd
    | Btrace.Inject _ | Btrace.Enqueue _ | Btrace.Drop _ | Btrace.Depart _
    | Btrace.Fault _ | Btrace.Ack_tx _ ->
      ())

(* ------------------------------------------------------------------ *)
(* Views                                                               *)
(* ------------------------------------------------------------------ *)

type stats = {
  s_conn : int;
  s_start_time : float;
  s_flow_size : int option;
  s_delivered_pkts : int;
  s_delivered_bytes : int;
  s_data_sends : int;
  s_retransmits : int;
  s_loss_events : int;
  s_acked_pkts : int;
  s_rtt_samples : int;
  s_rtt_min : float option;
  s_rtt_mean : float option;
  s_rtt_max : float option;
  s_rtt_p50 : float option;
  s_rtt_p99 : float option;
  s_cwnd_min : float option;
  s_cwnd_max : float option;
  s_fct : float option;
  s_throughput : float option;
}

let finite f = if Float.is_nan f || Float.abs f = infinity then None else Some f

let stats_of_flow f =
  let fct =
    if Float.is_nan f.completed_at then None
    else Some (f.completed_at -. f.start_time)
  in
  {
    s_conn = f.conn;
    s_start_time = f.start_time;
    s_flow_size = f.flow_size;
    s_delivered_pkts = f.delivered_pkts;
    s_delivered_bytes = f.delivered_bytes;
    s_data_sends = f.data_sends;
    s_retransmits = f.retransmits;
    s_loss_events = f.loss_events;
    s_acked_pkts = f.snd_una;
    s_rtt_samples = f.rtt_samples;
    s_rtt_min = finite f.rtt_min;
    s_rtt_mean =
      (if f.rtt_samples = 0 then None
       else Some (f.rtt_sum /. float_of_int f.rtt_samples));
    s_rtt_max = finite f.rtt_max;
    s_rtt_p50 = Sketch.quantile f.rtt 0.5;
    s_rtt_p99 = Sketch.quantile f.rtt 0.99;
    s_cwnd_min = finite f.cwnd_min;
    s_cwnd_max = finite f.cwnd_max;
    s_fct = fct;
    s_throughput =
      (match fct with
       | Some d when d > 0. -> Some (float_of_int f.delivered_bytes /. d)
       | _ -> None);
  }

(* Live flows in connection-id order: the deterministic iteration order
   every aggregate below uses, independent of registration order. *)
let flows t =
  let acc = ref [] in
  for slot = t.next_slot - 1 downto 0 do
    match t.slots.(slot) with Some f -> acc := f :: !acc | None -> ()
  done;
  List.sort (fun a b -> compare a.conn b.conn) !acc

let all t = List.map stats_of_flow (flows t)

let stats t ~conn = Option.map stats_of_flow (find t conn)

let jain t =
  match flows t with
  | [] -> None
  | fs ->
    let shares =
      Array.of_list (List.map (fun f -> float_of_int f.delivered_bytes) fs)
    in
    let total = Array.fold_left ( +. ) 0. shares in
    let squares =
      Array.fold_left (fun acc x -> acc +. (x *. x)) 0. shares
    in
    if squares <= 0. then Some 1.  (* all zero: degenerate but not unfair *)
    else
      Some
        (total *. total
        /. (float_of_int (Array.length shares) *. squares))

let fct_sketch t =
  let sk = Sketch.create ~alpha () in
  List.iter
    (fun f ->
      if not (Float.is_nan f.completed_at) then
        Sketch.add sk (f.completed_at -. f.start_time))
    (flows t);
  sk

let throughput_sketch t =
  let sk = Sketch.create ~alpha () in
  List.iter
    (fun f ->
      match (stats_of_flow f).s_throughput with
      | Some tput -> Sketch.add sk tput
      | None -> ())
    (flows t);
  sk

let rtt_sketch t =
  let sk = Sketch.create ~alpha () in
  List.iter (fun f -> Sketch.merge ~into:sk f.rtt) (flows t);
  sk

let fct_quantile t q = Sketch.quantile (fct_sketch t) q
let rtt_quantile t q = Sketch.quantile (rtt_sketch t) q

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

(* Fixed key order and shortest round-trip floats: equal registries
   encode to equal bytes, which is what the online-vs-offline identity
   check (and CI's trace-analytics smoke) diffs. *)

let fj = function None -> "null" | Some f -> Json.float_repr f
let ij = function None -> "null" | Some n -> string_of_int n

let flow_json (s : stats) =
  Printf.sprintf
    "{\"conn\":%d,\"start_time\":%s,\"flow_size\":%s,\
     \"delivered_pkts\":%d,\"delivered_bytes\":%d,\"acked_pkts\":%d,\
     \"data_sends\":%d,\"retransmits\":%d,\"loss_events\":%d,\
     \"rtt_samples\":%d,\"rtt_min\":%s,\"rtt_mean\":%s,\"rtt_max\":%s,\
     \"rtt_p50\":%s,\"rtt_p99\":%s,\"cwnd_min\":%s,\"cwnd_max\":%s,\
     \"fct\":%s,\"throughput\":%s}"
    s.s_conn
    (Json.float_repr s.s_start_time)
    (ij s.s_flow_size) s.s_delivered_pkts s.s_delivered_bytes s.s_acked_pkts
    s.s_data_sends s.s_retransmits s.s_loss_events s.s_rtt_samples
    (fj s.s_rtt_min) (fj s.s_rtt_mean) (fj s.s_rtt_max) (fj s.s_rtt_p50)
    (fj s.s_rtt_p99) (fj s.s_cwnd_min) (fj s.s_cwnd_max) (fj s.s_fct)
    (fj s.s_throughput)

let aggregate_json t =
  let fs = flows t in
  let completed =
    List.length (List.filter (fun f -> not (Float.is_nan f.completed_at)) fs)
  in
  let sum get = List.fold_left (fun acc f -> acc + get f) 0 fs in
  let fct = fct_sketch t in
  let tput = throughput_sketch t in
  let rtt = rtt_sketch t in
  Printf.sprintf
    "{\"flows\":%d,\"completed\":%d,\"delivered_pkts\":%d,\
     \"delivered_bytes\":%d,\"data_sends\":%d,\"retransmits\":%d,\
     \"loss_events\":%d,\"jain\":%s,\"fct_p50\":%s,\"fct_p99\":%s,\
     \"throughput_p50\":%s,\"throughput_p99\":%s,\"rtt_p50\":%s,\
     \"rtt_p99\":%s}"
    (List.length fs) completed
    (sum (fun f -> f.delivered_pkts))
    (sum (fun f -> f.delivered_bytes))
    (sum (fun f -> f.data_sends))
    (sum (fun f -> f.retransmits))
    (sum (fun f -> f.loss_events))
    (fj (jain t))
    (fj (Sketch.quantile fct 0.5))
    (fj (Sketch.quantile fct 0.99))
    (fj (Sketch.quantile tput 0.5))
    (fj (Sketch.quantile tput 0.99))
    (fj (Sketch.quantile rtt 0.5))
    (fj (Sketch.quantile rtt 0.99))

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"flows\":[";
  List.iteri
    (fun i s ->
      Buffer.add_string buf (if i = 0 then "\n " else ",\n ");
      Buffer.add_string buf (flow_json s))
    (all t);
  Buffer.add_string buf "],\n\"aggregate\":";
  Buffer.add_string buf (aggregate_json t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
