(** Compact binary trace format: the hot-path encoding behind {!Tracer}
    plus the offline reader and JSONL / Chrome-trace formatters.

    {2 Format (version 2)}

    A file is a 5-byte header — the magic bytes ["NSBT"] and one
    version byte — followed by a flat sequence of records.  Each record
    is a tag byte and a tag-specific payload:

    {v
    0x00 string-def   varint sid, varint length, raw bytes
    0x01 link-def     varint link id, varint name sid, f64 bandwidth
    0x02 conn-def     varint conn id
    0x03 conn-meta    varint conn id, f64 start_time,
                      varint (flow_size + 1; 0 = infinite)   [since v2]
    0x10-0x19 event   varint64 zigzag(delta of bits_of_float time),
                      then event-specific fields
    v}

    Version 2 added the conn-meta record so offline analytics can
    recover per-flow start times and sizes; version-1 files remain
    readable.

    Integers are unsigned LEB128 varints; floats that must survive
    bit-exactly (times, cwnd, ssthresh, bandwidth) travel as IEEE-754
    bits, never decimal text.  Strings are interned via string-def
    records, so the steady-state event path writes only small ints.

    The {!writer} batches records into one preallocated segment buffer
    handed to the sink only when full or on {!flush}: zero formatting
    and zero per-event syscalls on the hot path.  {!read} is
    torn-tolerant — a file cut mid-record (crash before the final
    flush) yields every complete record plus a note describing the torn
    tail. *)

val magic : string
val version : int

(** Oldest file version {!read} still accepts. *)
val min_version : int

(** {2 Decoded plain data}

    Decoded events carry copies, never live model objects: packets are
    recycled through free-lists, so archived records must not alias
    them.  [ev] mirrors {!Event.t} field-for-field with links replaced
    by their identity ([link_id] doubles as the Perfetto track id,
    [bandwidth] reconstructs departure slice durations offline). *)

type pkt = {
  id : int;
  conn : int;
  kind : Net.Packet.kind;
  seq : int;
  retransmit : bool;
  size : int;
}

type link = { link_id : int; link_name : string; bandwidth : float }

type ev =
  | Inject of pkt
  | Deliver of pkt
  | Enqueue of { link : link; pkt : pkt; qlen : int }
  | Drop of { link : link; pkt : pkt }
  | Depart of { link : link; pkt : pkt; qlen : int }
  | Fault of { link : link; label : string; pkt : pkt }
  | Send of { conn : int; pkt : pkt }
  | Cwnd of { conn : int; cwnd : float; ssthresh : float }
  | Loss of { conn : int; reason : string }
  | Ack_tx of { conn : int; ackno : int; delayed : bool; dup : bool }

type item =
  | Def_link of link
  | Def_conn of int
  | Def_conn_meta of { conn : int; start_time : float; flow_size : int option }
  | Event of float * ev

type file = {
  file_version : int;
  items : item list;  (** complete records, in stream order *)
  torn : string option;
      (** description of a torn trailing record, if the data ended
          mid-record (all preceding complete records are in [items]) *)
}

(** Short event-kind tag, e.g. ["enqueue"]; the JSONL ["ev"] value. *)
val ev_label : ev -> string

val plain_pkt : Net.Packet.t -> pkt
val plain_link : Net.Link.t -> link

(** Copy a live event to plain data.  [link_of] maps each live link to
    its (shared) plain record — see {!Tracer}'s per-link cache. *)
val plain_ev : link_of:(Net.Link.t -> link) -> Event.t -> ev

(** {2 Writer} *)

type writer

(** [writer sink] starts a binary stream: the header bytes go into the
    segment immediately, records follow.  [segment] is the batch size
    in bytes (default 256 KiB).
    @raise Invalid_argument if [segment] is under two records' worth
    (160 bytes). *)
val writer : ?segment:int -> (string -> unit) -> writer

(** Emit a link-def (and its name's string-def on first sight).  Must
    precede the link's events in the stream. *)
val declare_link : writer -> Net.Link.t -> unit

val declare_conn : writer -> int -> unit

(** Conn-def plus flow metadata (start time, sized-flow length in
    packets, [None] = infinite): one 0x03 record — emit this {e instead
    of} {!declare_conn} when the metadata is known. *)
val declare_conn_meta :
  writer -> int -> start_time:float -> flow_size:int option -> unit

(** Append one event record to the segment buffer. *)
val event : writer -> time:float -> Event.t -> unit

(** Hand buffered bytes to the sink.  Call on every exit path (the
    writer never flushes on its own except when a segment fills). *)
val flush : writer -> unit

(** {2 Reader and offline formatters} *)

(** Decode a complete in-memory trace.  [Error] means the data is not a
    readable binary trace at all (bad magic or unsupported version); a
    torn tail is NOT an error — see {!type-file}. *)
val read : string -> (file, string) result

(** One JSONL object (no trailing newline), byte-identical to the
    historical online JSONL encoding: fixed key order, shortest
    round-trip floats. *)
val jsonl_line : time:float -> ev -> string

(** Render all events as JSONL lines (defs are skipped). *)
val export_jsonl : item list -> (string -> unit) -> unit

(** Render a Chrome [trace_event] JSON file (loadable in Perfetto /
    [chrome://tracing]), byte-identical to the historical online chrome
    sink: link/conn defs become thread-name metadata, departures become
    complete slices spanning the serialization interval. *)
val export_chrome : item list -> (string -> unit) -> unit

(** {2 Validation}

    Reference-integrity and well-formedness audit of a binary trace,
    without converting it first. *)

type audit = {
  audit_version : int;
  audit_events : int;
  audit_links : int;
  audit_conns : int;  (** distinct declared connections *)
  audit_torn : string option;
      (** torn-tail note from the decoder, if any — a plain truncation
          (crash before the final flush) is reported here but is not an
          error *)
  audit_errors : string list;
      (** integrity violations: events referencing a connection never
          declared (by conn-def or conn-meta), event times going
          backwards, or a torn note caused by a dangling string/link
          reference or an unknown record tag *)
}

(** Decode and audit.  [Error] only when the data is not a readable
    binary trace at all (same cases as {!read}); integrity violations
    land in [audit_errors]. *)
val validate : string -> (audit, string) result
