(** Metrics registry: named counters, gauges, and fixed-bucket histograms.

    Cells are flat mutable storage — an [int ref] per counter, a
    one-element float array per gauge (a float field of a mixed record
    would box on every store), an int array per histogram — so the
    increment path allocates nothing.  Registration happens once, at
    attach time; the per-event cost is a bounds check and a store.

    Derived gauges ({!gauge_fn}) are sampled only when a snapshot is
    taken, so wiring one costs nothing during the run.  Snapshots list
    metrics in registration order, which makes their JSON encoding a pure
    function of the registry contents (the sweep determinism diff relies
    on this). *)

type t
type counter
type gauge
type histogram

val create : unit -> t

(** Number of registered metrics (histograms count once). *)
val size : t -> int

(** [counter t name] registers a fresh counter.
    @raise Invalid_argument if [name] is already registered. *)
val counter : t -> string -> counter

(** @raise Invalid_argument if [name] is already registered. *)
val gauge : t -> string -> gauge

(** A gauge computed on demand: [f ()] is called at snapshot time only.
    @raise Invalid_argument if [name] is already registered. *)
val gauge_fn : t -> string -> (unit -> float) -> unit

(** [histogram t name ~bounds] registers a histogram with one bucket per
    upper bound plus an overflow bucket.
    @raise Invalid_argument if [bounds] is empty, not strictly
    increasing, or [name] is already registered. *)
val histogram : t -> string -> bounds:float array -> histogram

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** Record one observation: the count of the first bucket whose upper
    bound is [>= v] (or the overflow bucket) is incremented. *)
val observe : histogram -> float -> unit

(** Scalar view of every metric, in registration order.  A histogram
    expands to cumulative [name.le_<bound>] entries, [name.le_inf], and
    [name.count]. *)
val snapshot : t -> (string * float) list

(** Value of one snapshot entry, by expanded name. *)
val find : t -> string -> float option

(** Deterministic JSON object over {!snapshot}: fixed key order,
    shortest round-trip floats ({!Json.float_repr}), integral values
    printed without a fractional part, non-finite values as [null]. *)
val to_json : t -> string

(** {2 Periodic snapshots into step series}

    A recorder samples every metric registered at attach time on a fixed
    simulated-time cadence, appending to one {!Trace.Series.t} per
    expanded metric name.  The sampling event is pure observation — it
    reads cells and appends to series, never touches model state — so
    enabling it cannot change simulation results.  A tick walks
    preallocated rows fixed at {!record} time (no snapshot lists, no
    name strings), so sampling overhead is just the cell reads and the
    series appends. *)

type recorder

(** [record t sim ~dt] samples immediately and then every [dt] seconds.
    Metrics registered after this call are not recorded.
    @raise Invalid_argument if [dt <= 0] or is NaN. *)
val record : t -> Engine.Sim.t -> dt:float -> recorder

(** The recorded series, in registration order. *)
val recorder_series : recorder -> (string * Trace.Series.t) list
