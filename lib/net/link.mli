(** A simplex link: an output buffer (under a {!Discipline}) plus a
    transmitter.

    The buffer occupancy counts the packet currently being serialized, which
    matches the paper's capacity analysis [C = floor(B + 2P)] (the switch
    buffer of size [B] includes the packet in service).  With the default
    drop-tail FIFO discipline, an arrival to a full buffer is discarded;
    Random Drop and Fair Queueing may instead evict a queued packet.

    Monitor hooks fire synchronously: [on_enqueue] after a packet is
    accepted, [on_drop] when one is discarded (the arrival, or the evicted
    victim), [on_depart] when a packet finishes serialization and leaves
    the queue.  Queue lengths passed to hooks are the lengths {e after}
    the event. *)

type t

(** What the fault-injection layer (lib/faults) did to a packet.  Fired
    through {!on_fault} {e before} the corresponding drop/enqueue hook, so
    invariant checkers can tell an injected fault from a model bug. *)
type fault_event =
  | Fault_drop of string
      (** the packet was discarded by fault injection (the label names the
          fault kind, e.g. ["loss"], ["burst-loss"], ["outage"]) *)
  | Fault_duplicate
      (** the packet is a fault-injected copy about to be offered to the
          buffer (fresh id, same flow fields) *)
  | Fault_delay of float
      (** the packet's delivery is delayed by this many extra seconds of
          jitter beyond the propagation delay *)

(** Verdict of a fault plan's ingress filter for one offered packet. *)
type verdict = [ `Pass | `Drop of string | `Duplicate ]

type counters = {
  mutable enq_data : int;
  mutable enq_ack : int;
  mutable drop_data : int;
  mutable drop_ack : int;
  mutable dep_data : int;
  mutable dep_ack : int;
  mutable dep_bytes : int;
}

(** [create sim ~id ~name ~src ~dst ~bandwidth ~prop_delay ~buffer] makes an
    idle link.  [buffer = None] means an infinite buffer; [discipline]
    selects the gateway queueing discipline (default drop-tail {!Discipline.Fifo}).
    The [deliver] callback (set with {!set_deliver}) receives each packet at
    the far end, [prop_delay] seconds after its serialization completes.
    @raise Invalid_argument if [bandwidth <= 0.], [prop_delay < 0.], or
    [buffer] is [Some b] with [b <= 0]. *)
val create :
  ?discipline:Discipline.kind ->
  Engine.Sim.t ->
  id:int ->
  name:string ->
  src:int ->
  dst:int ->
  bandwidth:float ->
  prop_delay:float ->
  buffer:int option ->
  t

val set_deliver : t -> (Packet.t -> unit) -> unit

(** Offer a packet to the output buffer; returns whether it was accepted. *)
val send : t -> Packet.t -> [ `Ok | `Dropped ]

val id : t -> int
val name : t -> string
val src : t -> int
val dst : t -> int
val bandwidth : t -> float
val prop_delay : t -> float

(** The gateway discipline this link's buffer runs. *)
val discipline : t -> Discipline.kind

(** The configured buffer capacity in packets (including the packet in
    service); [None] means infinite. *)
val capacity : t -> int option

(** Current buffer occupancy (including the packet in service). *)
val queue_length : t -> int

(** Serialization time of [bytes] on this link. *)
val tx_time : t -> bytes:int -> float

(** Cumulative busy (serializing) time up to [now]. *)
val busy_time : t -> now:float -> float

val counters : t -> counters
val total_drops : t -> int

(** Buffer contents, head (in service) first. *)
val contents : t -> Packet.t list

val on_enqueue : t -> (float -> Packet.t -> int -> unit) -> unit
val on_drop : t -> (float -> Packet.t -> unit) -> unit
val on_depart : t -> (float -> Packet.t -> int -> unit) -> unit

(** {2 Fault-plan hook point}

    The fault layer is pay-for-what-you-use: with no plan installed the
    only cost is one [option] check per send and per departure, and no
    state is tracked. *)

(** Install a fault plan.  [ingress] is consulted once per packet offered
    to the link (before the buffer); [extra_delay] once per departing
    packet (extra propagation latency, 0 for none); [clone] must mint a
    copy of a packet with a fresh network-unique id (used for
    [`Duplicate] verdicts; copies bypass the ingress filter). *)
val install_faults :
  t ->
  ingress:(Packet.t -> verdict) ->
  extra_delay:(Packet.t -> float) ->
  clone:(Packet.t -> Packet.t) ->
  unit

val has_faults : t -> bool

(** Take the link down ([true]) or bring it back up ([false]).  Going
    down discards everything in flight — the packet in service, the
    queue, and packets in propagation — as [Fault_drop "outage"] events,
    and every subsequent {!send} is discarded the same way until the link
    comes back up.  Idempotent per direction.
    @raise Invalid_argument if no fault plan is installed. *)
val set_down : t -> bool -> unit

val is_down : t -> bool

(** Observe fault events on this link.  For a fault discard the hook
    fires immediately {e before} the packet's [on_drop] hooks; for a
    duplicate, immediately before the copy's [on_enqueue]/[on_drop]. *)
val on_fault : t -> (float -> fault_event -> Packet.t -> unit) -> unit
