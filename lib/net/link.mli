(** A simplex link: an output buffer (under a {!Discipline}) plus a
    transmitter.

    The buffer occupancy counts the packet currently being serialized, which
    matches the paper's capacity analysis [C = floor(B + 2P)] (the switch
    buffer of size [B] includes the packet in service).  With the default
    drop-tail FIFO discipline, an arrival to a full buffer is discarded;
    Random Drop and Fair Queueing may instead evict a queued packet.

    Monitor hooks fire synchronously: [on_enqueue] after a packet is
    accepted, [on_drop] when one is discarded (the arrival, or the evicted
    victim), [on_depart] when a packet finishes serialization and leaves
    the queue.  Queue lengths passed to hooks are the lengths {e after}
    the event. *)

type t

type counters = {
  mutable enq_data : int;
  mutable enq_ack : int;
  mutable drop_data : int;
  mutable drop_ack : int;
  mutable dep_data : int;
  mutable dep_ack : int;
  mutable dep_bytes : int;
}

(** [create sim ~id ~name ~src ~dst ~bandwidth ~prop_delay ~buffer] makes an
    idle link.  [buffer = None] means an infinite buffer; [discipline]
    selects the gateway queueing discipline (default drop-tail {!Discipline.Fifo}).
    The [deliver] callback (set with {!set_deliver}) receives each packet at
    the far end, [prop_delay] seconds after its serialization completes. *)
val create :
  ?discipline:Discipline.kind ->
  Engine.Sim.t ->
  id:int ->
  name:string ->
  src:int ->
  dst:int ->
  bandwidth:float ->
  prop_delay:float ->
  buffer:int option ->
  t

val set_deliver : t -> (Packet.t -> unit) -> unit

(** Offer a packet to the output buffer; returns whether it was accepted. *)
val send : t -> Packet.t -> [ `Ok | `Dropped ]

val id : t -> int
val name : t -> string
val src : t -> int
val dst : t -> int
val bandwidth : t -> float
val prop_delay : t -> float

(** The gateway discipline this link's buffer runs. *)
val discipline : t -> Discipline.kind

(** The configured buffer capacity in packets (including the packet in
    service); [None] means infinite. *)
val capacity : t -> int option

(** Current buffer occupancy (including the packet in service). *)
val queue_length : t -> int

(** Serialization time of [bytes] on this link. *)
val tx_time : t -> bytes:int -> float

(** Cumulative busy (serializing) time up to [now]. *)
val busy_time : t -> now:float -> float

val counters : t -> counters
val total_drops : t -> int

(** Buffer contents, head (in service) first. *)
val contents : t -> Packet.t list

val on_enqueue : t -> (float -> Packet.t -> int -> unit) -> unit
val on_drop : t -> (float -> Packet.t -> unit) -> unit
val on_depart : t -> (float -> Packet.t -> int -> unit) -> unit
