type kind = Data | Ack

type t = {
  id : int;
  conn : int;
  kind : kind;
  seq : int;
  size : int;
  src : int;
  dst : int;
  born : float;
  retransmit : bool;
}

(* Sentinel for pooled slots (link transmitters, delivery free-lists):
   compared with (==), never offered to a link or counted anywhere. *)
let none =
  {
    id = -1;
    conn = -1;
    kind = Data;
    seq = -1;
    size = 0;
    src = -1;
    dst = -1;
    born = neg_infinity;
    retransmit = false;
  }

let kind_to_string = function Data -> "data" | Ack -> "ack"

let pp ppf p =
  Format.fprintf ppf "#%d conn=%d %s seq=%d %dB %d->%d" p.id p.conn
    (kind_to_string p.kind) p.seq p.size p.src p.dst

let is_data p = p.kind = Data
