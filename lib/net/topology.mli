(** Topology builders for the paper's network configurations (§2.2).

    Defaults follow the paper: bottleneck 50 Kbps with propagation delay
    [tau]; host links 10 Mbps with 0.1 ms propagation; host processing
    0.1 ms per packet; bottleneck buffers of [buffer] packets per outgoing
    port ([None] = infinite); host-side and switch-to-host buffers are
    infinite (they never congest). *)

type params = {
  bottleneck_bw : float;  (** bits/s; paper: 50 Kbps *)
  tau : float;  (** bottleneck propagation delay, s *)
  host_bw : float;  (** bits/s; paper: 10 Mbps *)
  host_delay : float;  (** host-link propagation, s; paper: 0.1 ms *)
  proc_delay : float;  (** per-packet host processing, s; paper: 0.1 ms *)
  buffer : int option;  (** bottleneck buffer, packets *)
  gateway : Discipline.kind;  (** bottleneck queueing discipline *)
}

(** Paper defaults with the given bottleneck delay and buffer; [gateway]
    defaults to drop-tail FIFO (the paper's switches). *)
val params :
  ?gateway:Discipline.kind -> tau:float -> buffer:int option -> unit -> params

(** The Figure-1 dumbbell: Host-1 — Switch-1 — Switch-2 — Host-2. *)
type dumbbell = {
  net : Network.t;
  host1 : int;
  host2 : int;
  switch1 : int;
  switch2 : int;
  fwd : Link.t;  (** bottleneck Switch-1 -> Switch-2 *)
  bwd : Link.t;  (** bottleneck Switch-2 -> Switch-1 *)
}

(** Build the dumbbell and install routes. *)
val dumbbell : Engine.Sim.t -> params -> dumbbell

(** A chain of [num_switches] switches, one host per switch, every
    inter-switch link a bottleneck with [params]' characteristics.  Used
    for the §5 four-switch configuration. *)
type chain = {
  cnet : Network.t;
  hosts : int array;  (** hosts.(i) hangs off switches.(i) *)
  switches : int array;
  trunks : (Link.t * Link.t) array;
      (** trunks.(i) joins switches i and i+1: (right-going, left-going) *)
}

val chain : Engine.Sim.t -> params -> num_switches:int -> chain
