type params = {
  bottleneck_bw : float;
  tau : float;
  host_bw : float;
  host_delay : float;
  proc_delay : float;
  buffer : int option;
  gateway : Discipline.kind;
}

let params ?(gateway = Discipline.Fifo) ~tau ~buffer () =
  {
    bottleneck_bw = Engine.Units.kbps 50.;
    tau;
    host_bw = Engine.Units.mbps 10.;
    host_delay = Engine.Units.ms 0.1;
    proc_delay = Engine.Units.ms 0.1;
    buffer;
    gateway;
  }

type dumbbell = {
  net : Network.t;
  host1 : int;
  host2 : int;
  switch1 : int;
  switch2 : int;
  fwd : Link.t;
  bwd : Link.t;
}

let attach_host net p ~name ~switch =
  let host = Network.add_host net ~name ~proc_delay:p.proc_delay in
  let _ =
    Network.add_duplex net ~src:host ~dst:switch ~bandwidth:p.host_bw
      ~prop_delay:p.host_delay ~buffer:None
  in
  host

let dumbbell sim p =
  let net = Network.create sim in
  let switch1 = Network.add_switch net ~name:"sw1" in
  let switch2 = Network.add_switch net ~name:"sw2" in
  let fwd, bwd =
    Network.add_duplex ~discipline:p.gateway net ~src:switch1 ~dst:switch2
      ~bandwidth:p.bottleneck_bw ~prop_delay:p.tau ~buffer:p.buffer
  in
  let host1 = attach_host net p ~name:"host1" ~switch:switch1 in
  let host2 = attach_host net p ~name:"host2" ~switch:switch2 in
  Routing.compute net;
  { net; host1; host2; switch1; switch2; fwd; bwd }

type chain = {
  cnet : Network.t;
  hosts : int array;
  switches : int array;
  trunks : (Link.t * Link.t) array;
}

let chain sim p ~num_switches =
  if num_switches < 2 then invalid_arg "Topology.chain: need >= 2 switches";
  let net = Network.create sim in
  let switches =
    Array.init num_switches (fun i ->
        Network.add_switch net ~name:(Printf.sprintf "sw%d" (i + 1)))
  in
  let trunks =
    Array.init (num_switches - 1) (fun i ->
        Network.add_duplex ~discipline:p.gateway net ~src:switches.(i)
          ~dst:switches.(i + 1) ~bandwidth:p.bottleneck_bw ~prop_delay:p.tau
          ~buffer:p.buffer)
  in
  let hosts =
    Array.init num_switches (fun i ->
        attach_host net p
          ~name:(Printf.sprintf "host%d" (i + 1))
          ~switch:switches.(i))
  in
  Routing.compute net;
  { cnet = net; hosts; switches; trunks }
