(** Static shortest-path (minimum hop) routing.

    [compute net] fills every node's routing table with, for each host
    destination, the first link of a shortest path.  Ties are broken by
    link-creation order, so routes are deterministic.  Call it once after
    the topology is built. *)

val compute : Network.t -> unit

(** Hop count of the installed route from [src] to [dst], following
    routing tables.  [None] if no route.  Useful for tests. *)
val path_length : Network.t -> src:int -> dst:int -> int option

(** The node ids visited from [src] to [dst] (inclusive of both ends),
    following routing tables.  [None] if no route or a loop is detected. *)
val path : Network.t -> src:int -> dst:int -> int list option
