(** The network: nodes (hosts and switches), links, and packet dispatch.

    Hosts carry transport endpoints (registered per connection id) and add a
    fixed per-packet processing delay on receive.  Switches forward by
    looking up a static routing table (filled in by {!Routing.compute}). *)

type node_kind = Host | Switch

type t

val create : Engine.Sim.t -> t
val sim : t -> Engine.Sim.t

(** [add_host t ~name ~proc_delay] — [proc_delay] is the host processing
    time applied to each received packet (paper: 0.1 ms). *)
val add_host : t -> name:string -> proc_delay:float -> int

val add_switch : t -> name:string -> int

(** [add_link t ~src ~dst ...] creates one simplex link.  [buffer] is the
    output-buffer capacity in packets at [src] for this link ([None] =
    infinite); [discipline] selects the gateway queueing discipline
    (default drop-tail FIFO). *)
val add_link :
  ?discipline:Discipline.kind ->
  t ->
  src:int ->
  dst:int ->
  bandwidth:float ->
  prop_delay:float ->
  buffer:int option ->
  Link.t

(** Two simplex links, one in each direction, with the same parameters.
    Returns [(src_to_dst, dst_to_src)]. *)
val add_duplex :
  ?discipline:Discipline.kind ->
  t ->
  src:int ->
  dst:int ->
  bandwidth:float ->
  prop_delay:float ->
  buffer:int option ->
  Link.t * Link.t

val node_count : t -> int
val node_name : t -> int -> string
val node_kind : t -> int -> node_kind
val links : t -> Link.t list
val out_links : t -> int -> Link.t list

(** Install a route: at [node], packets destined for host [dst] leave on
    [link]. *)
val set_route : t -> node:int -> dst:int -> link:Link.t -> unit

val route : t -> node:int -> dst:int -> Link.t option

(** Register the transport endpoint for connection [conn] on host [host].
    Every packet of that connection arriving at the host is handed to
    [handler] after the host's processing delay. *)
val register_endpoint : t -> host:int -> conn:int -> (Packet.t -> unit) -> unit

(** Inject a packet at its source host: it is routed onto the host's
    outgoing link immediately (transmission then queues as usual). *)
val send_from_host : t -> host:int -> Packet.t -> unit

(** [on_inject t f] observes every packet entering the network via
    {!send_from_host}, before it is offered to the first link (so a packet
    dropped at the first buffer is still observed). *)
val on_inject : t -> (float -> Packet.t -> unit) -> unit

(** [on_deliver t f] observes every packet handed to a host's transport
    endpoint, at the instant the endpoint handler runs (i.e. after the
    host's processing delay). *)
val on_deliver : t -> (float -> Packet.t -> unit) -> unit

(** Fresh unique packet id. *)
val fresh_packet_id : t -> int

(** Build a packet stamped with a fresh id and the current time. *)
val make_packet :
  t ->
  conn:int ->
  kind:Packet.kind ->
  seq:int ->
  size:int ->
  src:int ->
  dst:int ->
  retransmit:bool ->
  Packet.t
