(** Packets exchanged between hosts.

    Following the paper, a connection's data stream is modeled in units of
    maximum-size packets: a data packet carries the sequence number of the
    packet itself, and an ACK carries the cumulative sequence number of the
    next packet the receiver expects. *)

type kind = Data | Ack

type t = {
  id : int;  (** unique per network, for logs *)
  conn : int;  (** owning connection *)
  kind : kind;
  seq : int;
      (** [Data]: index of this packet (0-based).
          [Ack]: next expected data packet (cumulative). *)
  size : int;  (** bytes, including headers *)
  src : int;  (** source host node id *)
  dst : int;  (** destination host node id *)
  born : float;  (** creation time *)
  retransmit : bool;  (** true if this data packet is a retransmission *)
}

(** Sentinel packet for pooled slots (physical-equality comparisons only).
    Never transmit it or count it in any statistic. *)
val none : t

val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit

(** Is this packet of [Data] kind? *)
val is_data : t -> bool
