type node_kind = Host | Switch

type node = {
  node_id : int;
  name : string;
  kind : node_kind;
  proc_delay : float;
  mutable out : Link.t list;
  routes : (int, Link.t) Hashtbl.t;
  endpoints : (int, Packet.t -> unit) Hashtbl.t;
}

(* Host processing delays are modeled with a free-list of arrival cells,
   each owning a persistent timer plus packet/handler slots, so per-packet
   host processing schedules no closure and no handle (see Link's delivery
   free-list for the same pattern on propagation). *)
type arrival = {
  a_timer : Engine.Sim.Timer.timer;
  mutable a_pkt : Packet.t;  (* == Packet.none when the cell is free *)
  mutable a_handler : Packet.t -> unit;
  mutable a_next : arrival;  (* next free cell; the nil cell points to itself *)
}

type t = {
  sim : Engine.Sim.t;
  mutable nodes : node list;  (* reverse order of creation *)
  mutable node_array : node array;  (* rebuilt lazily for O(1) lookup *)
  mutable array_stale : bool;
  mutable all_links : Link.t list;  (* reverse order of creation *)
  mutable next_link_id : int;
  mutable next_packet_id : int;
  mutable inject_hooks : (float -> Packet.t -> unit) list;
  mutable deliver_hooks : (float -> Packet.t -> unit) list;
  mutable free_arrivals : arrival;  (* free-list head; arrival_nil ends it *)
  arrival_nil : arrival;
}

let nop () = ()
let no_handler (_ : Packet.t) = ()

let create sim =
  let nil_timer = Engine.Sim.Timer.create sim nop in
  let rec arrival_nil =
    {
      a_timer = nil_timer;
      a_pkt = Packet.none;
      a_handler = no_handler;
      a_next = arrival_nil;
    }
  in
  {
    sim;
    nodes = [];
    node_array = [||];
    array_stale = false;
    all_links = [];
    next_link_id = 0;
    next_packet_id = 0;
    inject_hooks = [];
    deliver_hooks = [];
    free_arrivals = arrival_nil;
    arrival_nil;
  }

let sim t = t.sim
let on_inject t f = t.inject_hooks <- f :: t.inject_hooks
let on_deliver t f = t.deliver_hooks <- f :: t.deliver_hooks

let fire_inject t p =
  match t.inject_hooks with
  | [] -> ()
  | hooks -> List.iter (fun f -> f (Engine.Sim.now t.sim) p) hooks

let fire_deliver t p =
  match t.deliver_hooks with
  | [] -> ()
  | hooks -> List.iter (fun f -> f (Engine.Sim.now t.sim) p) hooks

let refresh t =
  if t.array_stale then begin
    t.node_array <- Array.of_list (List.rev t.nodes);
    t.array_stale <- false
  end

let node t id =
  refresh t;
  if id < 0 || id >= Array.length t.node_array then
    invalid_arg (Printf.sprintf "Network: unknown node id %d" id);
  t.node_array.(id)

let add_node t ~name ~kind ~proc_delay =
  refresh t;
  let node_id = List.length t.nodes in
  let n =
    {
      node_id;
      name;
      kind;
      proc_delay;
      out = [];
      routes = Hashtbl.create 8;
      endpoints = Hashtbl.create 8;
    }
  in
  t.nodes <- n :: t.nodes;
  t.array_stale <- true;
  node_id

let add_host t ~name ~proc_delay =
  if proc_delay < 0. then invalid_arg "Network.add_host: negative proc_delay";
  add_node t ~name ~kind:Host ~proc_delay

let add_switch t ~name = add_node t ~name ~kind:Switch ~proc_delay:0.

let node_count t =
  refresh t;
  Array.length t.node_array

let node_name t id = (node t id).name
let node_kind t id = (node t id).kind
let links t = List.rev t.all_links
let out_links t id = List.rev (node t id).out

let set_route t ~node:n ~dst ~link = Hashtbl.replace (node t n).routes dst link
let route t ~node:n ~dst = Hashtbl.find_opt (node t n).routes dst

let register_endpoint t ~host ~conn handler =
  let n = node t host in
  if n.kind <> Host then invalid_arg "Network.register_endpoint: not a host";
  Hashtbl.replace n.endpoints conn handler

(* Take an arrival cell from the free-list, growing the pool on demand
   (the high-water mark is the peak number of packets concurrently inside
   host processing). *)
let alloc_arrival t =
  let a = t.free_arrivals in
  if a != t.arrival_nil then begin
    t.free_arrivals <- a.a_next;
    a.a_next <- t.arrival_nil;
    a
  end
  else begin
    let tm = Engine.Sim.Timer.create t.sim nop in
    let a =
      {
        a_timer = tm;
        a_pkt = Packet.none;
        a_handler = no_handler;
        a_next = t.arrival_nil;
      }
    in
    Engine.Sim.Timer.set_action tm (fun () ->
        let p = a.a_pkt and h = a.a_handler in
        a.a_pkt <- Packet.none;
        a.a_handler <- no_handler;
        a.a_next <- t.free_arrivals;
        t.free_arrivals <- a;
        fire_deliver t p;
        h p);
    a
  end

(* Packet arrival at a node, after the link's propagation delay. *)
let rec arrive t node_id (p : Packet.t) =
  let n = node t node_id in
  match n.kind with
  | Switch -> forward t n p
  | Host ->
    if p.dst <> node_id then
      failwith
        (Printf.sprintf "Network: host %s received packet for node %d" n.name
           p.dst);
    let handler =
      match Hashtbl.find_opt n.endpoints p.conn with
      | Some h -> h
      | None ->
        failwith
          (Printf.sprintf "Network: no endpoint for conn %d at host %s" p.conn
             n.name)
    in
    if n.proc_delay > 0. then begin
      let a = alloc_arrival t in
      a.a_pkt <- p;
      a.a_handler <- handler;
      Engine.Sim.Timer.set a.a_timer ~delay:n.proc_delay
    end
    else begin
      fire_deliver t p;
      handler p
    end

and forward _t n (p : Packet.t) =
  match Hashtbl.find_opt n.routes p.dst with
  | None ->
    failwith
      (Printf.sprintf "Network: switch %s has no route to node %d" n.name p.dst)
  | Some link -> ignore (Link.send link p : [ `Ok | `Dropped ])

let add_link ?(discipline = Discipline.Fifo) t ~src ~dst ~bandwidth
    ~prop_delay ~buffer =
  let src_node = node t src in
  let _ = node t dst in
  let id = t.next_link_id in
  t.next_link_id <- id + 1;
  let name =
    Printf.sprintf "%s->%s" (node_name t src) (node_name t dst)
  in
  let link =
    Link.create ~discipline t.sim ~id ~name ~src ~dst ~bandwidth ~prop_delay
      ~buffer
  in
  Link.set_deliver link (fun p -> arrive t dst p);
  src_node.out <- link :: src_node.out;
  t.all_links <- link :: t.all_links;
  link

let add_duplex ?(discipline = Discipline.Fifo) t ~src ~dst ~bandwidth
    ~prop_delay ~buffer =
  let fwd = add_link ~discipline t ~src ~dst ~bandwidth ~prop_delay ~buffer in
  let bwd =
    add_link ~discipline t ~src:dst ~dst:src ~bandwidth ~prop_delay ~buffer
  in
  (fwd, bwd)

let send_from_host t ~host (p : Packet.t) =
  let n = node t host in
  if n.kind <> Host then invalid_arg "Network.send_from_host: not a host";
  match Hashtbl.find_opt n.routes p.dst with
  | None ->
    failwith
      (Printf.sprintf "Network: host %s has no route to node %d" n.name p.dst)
  | Some link ->
    fire_inject t p;
    ignore (Link.send link p : [ `Ok | `Dropped ])

let fresh_packet_id t =
  let id = t.next_packet_id in
  t.next_packet_id <- id + 1;
  id

let make_packet t ~conn ~kind ~seq ~size ~src ~dst ~retransmit =
  {
    Packet.id = fresh_packet_id t;
    conn;
    kind;
    seq;
    size;
    src;
    dst;
    born = Engine.Sim.now t.sim;
    retransmit;
  }
