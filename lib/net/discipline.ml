type kind = Fifo | Random_drop of { seed : int } | Fair_queue

let kind_to_string = function
  | Fifo -> "fifo"
  | Random_drop _ -> "random-drop"
  | Fair_queue -> "fair-queue"

type outcome = Accepted | Rejected | Evicted of Packet.t

type state =
  | Single of Packet.t Queue.t * Engine.Rng.t option
      (* Fifo when rng is None, Random_drop otherwise *)
  | Classes of {
      queues : (int, Packet.t Queue.t) Hashtbl.t;
      round : int Queue.t;  (* classes with packets, in service order *)
      mutable stored : int;
    }

type t = { kind : kind; capacity : int option; state : state }

let create kind ~capacity =
  (match capacity with
   | Some c when c <= 0 ->
     invalid_arg "Discipline.create: capacity must be positive"
   | _ -> ());
  let state =
    match kind with
    | Fifo -> Single (Queue.create (), None)
    | Random_drop { seed } ->
      Single (Queue.create (), Some (Engine.Rng.create ~seed))
    | Fair_queue ->
      Classes { queues = Hashtbl.create 16; round = Queue.create (); stored = 0 }
  in
  { kind; capacity; state }

let kind t = t.kind
let capacity t = t.capacity

let length t =
  match t.state with
  | Single (q, _) -> Queue.length q
  | Classes c -> c.stored

let is_empty t = length t = 0

let full t ~in_service =
  match t.capacity with
  | None -> false
  | Some c -> length t + in_service >= c

(* Remove the element at position [idx] from a queue (O(n)). *)
let remove_at queue idx =
  let keep = Queue.create () in
  let victim = ref None in
  let i = ref 0 in
  Queue.iter
    (fun p ->
      if !i = idx then victim := Some p else Queue.push p keep;
      incr i)
    queue;
  Queue.clear queue;
  Queue.transfer keep queue;
  match !victim with Some p -> p | None -> invalid_arg "Discipline.remove_at"

(* Drop the tail packet of the longest per-connection queue. *)
let evict_from_longest (c : (int, Packet.t Queue.t) Hashtbl.t) =
  let longest = ref None in
  Hashtbl.iter
    (fun conn q ->
      match !longest with
      | Some (_, best) when Queue.length best >= Queue.length q -> ()
      | _ -> if Queue.length q > 0 then longest := Some (conn, q))
    c;
  match !longest with
  | None -> None
  | Some (_conn, q) ->
    let victim = remove_at q (Queue.length q - 1) in
    Some victim

let queue_mem x q = Queue.fold (fun acc y -> acc || y = x) false q

(* A class joins the round-robin ring when it holds packets.  Evictions can
   leave a stale ring entry for an emptied class; dequeue skips those, and
   the membership check here prevents duplicates when the class refills. *)
let ring_add round conn q =
  if Queue.is_empty q && not (queue_mem conn round) then Queue.push conn round

let class_queue c conn =
  match Hashtbl.find_opt c conn with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.add c conn q;
    q

let enqueue t p ~in_service =
  match t.state with
  | Single (q, rng) ->
    if not (full t ~in_service) then begin
      Queue.push p q;
      Accepted
    end
    else begin
      match rng with
      | None -> Rejected  (* drop-tail *)
      | Some rng ->
        (* Random Drop: victim uniform over queued packets + the arrival. *)
        let n = Queue.length q in
        let victim_idx = Engine.Rng.int rng ~bound:(n + 1) in
        if victim_idx = n then Rejected
        else begin
          let victim = remove_at q victim_idx in
          Queue.push p q;
          Evicted victim
        end
    end
  | Classes c ->
    let q = class_queue c.queues p.Packet.conn in
    if not (full t ~in_service) then begin
      ring_add c.round p.Packet.conn q;
      Queue.push p q;
      c.stored <- c.stored + 1;
      Accepted
    end
    else begin
      (* Fair queueing drop policy: penalize the connection using the most
         buffer.  If the arrival's own class is (one of) the longest, the
         arrival is the natural victim. *)
      let arriving_len = Queue.length q in
      let is_longest =
        Hashtbl.fold
          (fun _ other acc -> acc && Queue.length other <= arriving_len)
          c.queues true
      in
      if is_longest then Rejected
      else
        match evict_from_longest c.queues with
        | None -> Rejected
        | Some victim ->
          c.stored <- c.stored - 1;
          ring_add c.round p.Packet.conn q;
          Queue.push p q;
          c.stored <- c.stored + 1;
          Evicted victim
    end

let rec dequeue t =
  match t.state with
  | Single (q, _) -> Queue.take_opt q
  | Classes c ->
    (match Queue.take_opt c.round with
     | None -> None
     | Some conn ->
       (match Hashtbl.find_opt c.queues conn with
        | None -> dequeue t
        | Some q ->
          (match Queue.take_opt q with
           | None -> dequeue t  (* class emptied by an eviction *)
           | Some p ->
             c.stored <- c.stored - 1;
             if not (Queue.is_empty q) then Queue.push conn c.round;
             Some p)))

let contents t =
  match t.state with
  | Single (q, _) -> List.of_seq (Queue.to_seq q)
  | Classes c ->
    (* Round order, then each class front-to-back. *)
    let seen = Hashtbl.create 8 in
    let acc = ref [] in
    Queue.iter
      (fun conn ->
        if not (Hashtbl.mem seen conn) then begin
          Hashtbl.add seen conn ();
          match Hashtbl.find_opt c.queues conn with
          | Some q -> Queue.iter (fun p -> acc := p :: !acc) q
          | None -> ()
        end)
      c.round;
    List.rev !acc
