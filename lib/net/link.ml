type counters = {
  mutable enq_data : int;
  mutable enq_ack : int;
  mutable drop_data : int;
  mutable drop_ack : int;
  mutable dep_data : int;
  mutable dep_ack : int;
  mutable dep_bytes : int;
}

type fault_event =
  | Fault_drop of string
  | Fault_duplicate
  | Fault_delay of float

type verdict = [ `Pass | `Drop of string | `Duplicate ]

type fault_plan = {
  ingress : Packet.t -> verdict;
  extra_delay : Packet.t -> float;
  clone : Packet.t -> Packet.t;
}

type t = {
  sim : Engine.Sim.t;
  id : int;
  name : string;
  src : int;
  dst : int;
  bandwidth : float;
  prop_delay : float;
  queue : Discipline.t;
  mutable in_service : Packet.t option;
  mutable deliver : Packet.t -> unit;
  mutable busy_since : float;
  mutable busy_accum : float;
  counters : counters;
  mutable enqueue_hooks : (float -> Packet.t -> int -> unit) list;
  mutable drop_hooks : (float -> Packet.t -> unit) list;
  mutable depart_hooks : (float -> Packet.t -> int -> unit) list;
  (* Fault injection (lib/faults).  [faults = None] is the default and the
     hot path: a single option check per send/departure.  When a plan is
     installed the link additionally tracks packets in propagation
     ([in_prop]) so an outage can kill everything in flight. *)
  mutable faults : fault_plan option;
  mutable fault_hooks : (float -> fault_event -> Packet.t -> unit) list;
  mutable down : bool;
  mutable tx_handle : Engine.Sim.handle option;
  in_prop : (int, Packet.t * Engine.Sim.handle) Hashtbl.t;
}

let create ?(discipline = Discipline.Fifo) sim ~id ~name ~src ~dst ~bandwidth
    ~prop_delay ~buffer =
  if bandwidth <= 0. then invalid_arg "Link.create: bandwidth must be positive";
  if prop_delay < 0. then invalid_arg "Link.create: negative propagation delay";
  (match buffer with
   | Some b when b <= 0 -> invalid_arg "Link.create: buffer must be positive"
   | _ -> ());
  {
    sim;
    id;
    name;
    src;
    dst;
    bandwidth;
    prop_delay;
    queue = Discipline.create discipline ~capacity:buffer;
    in_service = None;
    deliver = (fun _ -> failwith "Link: deliver callback not set");
    busy_since = 0.;
    busy_accum = 0.;
    counters =
      {
        enq_data = 0;
        enq_ack = 0;
        drop_data = 0;
        drop_ack = 0;
        dep_data = 0;
        dep_ack = 0;
        dep_bytes = 0;
      };
    enqueue_hooks = [];
    drop_hooks = [];
    depart_hooks = [];
    faults = None;
    fault_hooks = [];
    down = false;
    tx_handle = None;
    in_prop = Hashtbl.create 16;
  }

let set_deliver t f = t.deliver <- f
let id t = t.id
let name t = t.name
let src t = t.src
let dst t = t.dst
let bandwidth t = t.bandwidth
let prop_delay t = t.prop_delay
let discipline t = Discipline.kind t.queue
let capacity t = Discipline.capacity t.queue

(* Buffer occupancy includes the packet being serialized, matching the
   paper's capacity analysis C = floor(B + 2P). *)
let queue_length t =
  Discipline.length t.queue + (match t.in_service with Some _ -> 1 | None -> 0)

let counters t = t.counters
let total_drops t = t.counters.drop_data + t.counters.drop_ack

let contents t =
  match t.in_service with
  | Some p -> p :: Discipline.contents t.queue
  | None -> Discipline.contents t.queue

let tx_time t ~bytes = Engine.Units.transmission_time ~bytes ~rate_bps:t.bandwidth

let busy_time t ~now =
  t.busy_accum
  +. (match t.in_service with Some _ -> now -. t.busy_since | None -> 0.)

let on_enqueue t f = t.enqueue_hooks <- f :: t.enqueue_hooks
let on_drop t f = t.drop_hooks <- f :: t.drop_hooks
let on_depart t f = t.depart_hooks <- f :: t.depart_hooks
let on_fault t f = t.fault_hooks <- f :: t.fault_hooks

let fire_fault t event p =
  List.iter (fun f -> f (Engine.Sim.now t.sim) event p) t.fault_hooks

let fire_enqueue t p qlen =
  List.iter (fun f -> f (Engine.Sim.now t.sim) p qlen) t.enqueue_hooks

let fire_drop t p =
  List.iter (fun f -> f (Engine.Sim.now t.sim) p) t.drop_hooks

let fire_depart t p qlen =
  List.iter (fun f -> f (Engine.Sim.now t.sim) p qlen) t.depart_hooks

let count_enq t (p : Packet.t) =
  match p.kind with
  | Packet.Data -> t.counters.enq_data <- t.counters.enq_data + 1
  | Packet.Ack -> t.counters.enq_ack <- t.counters.enq_ack + 1

let count_drop t (p : Packet.t) =
  match p.kind with
  | Packet.Data -> t.counters.drop_data <- t.counters.drop_data + 1
  | Packet.Ack -> t.counters.drop_ack <- t.counters.drop_ack + 1

let rec maybe_start t =
  if t.in_service = None then
    match Discipline.dequeue t.queue with
    | None -> ()
    | Some p ->
      t.in_service <- Some p;
      t.busy_since <- Engine.Sim.now t.sim;
      let tx = tx_time t ~bytes:p.Packet.size in
      t.tx_handle <-
        Some (Engine.Sim.schedule t.sim ~delay:tx (fun () -> finish t p))

and finish t p =
  (match t.in_service with
   | Some head when head == p -> ()
   | _ -> failwith "Link: transmitter out of sync with queue");
  let now = Engine.Sim.now t.sim in
  t.busy_accum <- t.busy_accum +. (now -. t.busy_since);
  t.in_service <- None;
  t.tx_handle <- None;
  (match p.Packet.kind with
   | Packet.Data -> t.counters.dep_data <- t.counters.dep_data + 1
   | Packet.Ack -> t.counters.dep_ack <- t.counters.dep_ack + 1);
  t.counters.dep_bytes <- t.counters.dep_bytes + p.Packet.size;
  fire_depart t p (queue_length t);
  let deliver = t.deliver in
  (match t.faults with
   | None ->
     ignore
       (Engine.Sim.schedule t.sim ~delay:t.prop_delay (fun () -> deliver p)
         : Engine.Sim.handle)
   | Some plan ->
     let extra = plan.extra_delay p in
     if extra > 0. then fire_fault t (Fault_delay extra) p;
     let key = p.Packet.id in
     let h =
       Engine.Sim.schedule t.sim ~delay:(t.prop_delay +. extra) (fun () ->
           Hashtbl.remove t.in_prop key;
           deliver p)
     in
     Hashtbl.replace t.in_prop key (p, h));
  maybe_start t

(* A fault discard never touched the buffer; it is still a drop as far as
   counters and drop observers (conservation, drop logs) are concerned.
   The fault hook fires first so checkers know the coming drop is
   intentional. *)
and fault_discard t p ~label =
  fire_fault t (Fault_drop label) p;
  count_drop t p;
  fire_drop t p

and admit t p =
  let in_service = match t.in_service with Some _ -> 1 | None -> 0 in
  match Discipline.enqueue t.queue p ~in_service with
  | Discipline.Rejected ->
    count_drop t p;
    fire_drop t p;
    `Dropped
  | Discipline.Accepted ->
    count_enq t p;
    fire_enqueue t p (queue_length t);
    maybe_start t;
    `Ok
  | Discipline.Evicted victim ->
    (* The arrival was stored; a previously queued packet paid for it. *)
    count_enq t p;
    count_drop t victim;
    fire_drop t victim;
    fire_enqueue t p (queue_length t);
    maybe_start t;
    `Ok

let send t p =
  match t.faults with
  | None -> admit t p
  | Some plan ->
    if t.down then begin
      fault_discard t p ~label:"outage";
      `Dropped
    end
    else begin
      match plan.ingress p with
      | `Pass -> admit t p
      | `Drop label ->
        fault_discard t p ~label;
        `Dropped
      | `Duplicate ->
        let outcome = admit t p in
        (* The copy is a new wire entity (fresh id); it bypasses the
           ingress filter so duplication cannot cascade. *)
        let copy = plan.clone p in
        fire_fault t Fault_duplicate copy;
        ignore (admit t copy : [ `Ok | `Dropped ]);
        outcome
    end

let install_faults t ~ingress ~extra_delay ~clone =
  t.faults <- Some { ingress; extra_delay; clone }

let has_faults t = t.faults <> None
let is_down t = t.down

let set_down t flag =
  if t.faults = None then
    invalid_arg "Link.set_down: no fault plan installed";
  if flag <> t.down then begin
    t.down <- flag;
    if flag then begin
      (* The cut loses everything in flight: the packet being serialized,
         the queue behind it (flushed in FIFO order, so order-sensitive
         checkers can follow along), and packets already in propagation. *)
      (match t.in_service with
       | Some p ->
         (match t.tx_handle with
          | Some h -> Engine.Sim.cancel h
          | None -> ());
         t.tx_handle <- None;
         t.busy_accum <-
           t.busy_accum +. (Engine.Sim.now t.sim -. t.busy_since);
         t.in_service <- None;
         fault_discard t p ~label:"outage"
       | None -> ());
      let rec drain () =
        match Discipline.dequeue t.queue with
        | Some p ->
          fault_discard t p ~label:"outage";
          drain ()
        | None -> ()
      in
      drain ();
      let propagating =
        Hashtbl.fold (fun _ (p, h) acc -> (p, h) :: acc) t.in_prop []
        |> List.sort (fun (a, _) (b, _) ->
               compare a.Packet.id b.Packet.id)
      in
      Hashtbl.reset t.in_prop;
      List.iter
        (fun (p, h) ->
          Engine.Sim.cancel h;
          fault_discard t p ~label:"outage")
        propagating
    end
    else maybe_start t
  end
