type counters = {
  mutable enq_data : int;
  mutable enq_ack : int;
  mutable drop_data : int;
  mutable drop_ack : int;
  mutable dep_data : int;
  mutable dep_ack : int;
  mutable dep_bytes : int;
}

type fault_event =
  | Fault_drop of string
  | Fault_duplicate
  | Fault_delay of float

type verdict = [ `Pass | `Drop of string | `Duplicate ]

type fault_plan = {
  ingress : Packet.t -> verdict;
  extra_delay : Packet.t -> float;
  clone : Packet.t -> Packet.t;
}

(* The per-packet pipeline is closure-free: the transmitter is one
   persistent [Engine.Sim.Timer] re-armed per serialization, and
   propagation deliveries come from a free-list of [deliv] cells, each
   owning its own persistent timer and a packet slot.  Idle slots hold
   [Packet.none] (physical-equality sentinel) rather than an option so
   the steady state allocates nothing.  The busy meter lives in a flat
   float array because assigning a float field of a mixed record boxes. *)
type t = {
  sim : Engine.Sim.t;
  id : int;
  name : string;
  src : int;
  dst : int;
  bandwidth : float;
  prop_delay : float;
  queue : Discipline.t;
  mutable in_service : Packet.t;  (* == Packet.none when idle *)
  mutable deliver : Packet.t -> unit;
  meter : float array;  (* 0: busy_since; 1: busy_accum *)
  counters : counters;
  mutable enqueue_hooks : (float -> Packet.t -> int -> unit) list;
  mutable drop_hooks : (float -> Packet.t -> unit) list;
  mutable depart_hooks : (float -> Packet.t -> int -> unit) list;
  (* Fault injection (lib/faults).  [faults = None] is the default and the
     hot path: a single option check per send/departure.  When a plan is
     installed the link additionally tracks packets in propagation
     ([in_prop]) so an outage can kill everything in flight; faulted
     departures take the closure-per-packet path since they may carry
     per-packet extra delay. *)
  mutable faults : fault_plan option;
  mutable fault_hooks : (float -> fault_event -> Packet.t -> unit) list;
  mutable down : bool;
  tx_timer : Engine.Sim.Timer.timer;
  mutable free_deliv : deliv;  (* free-list head; deliv_nil terminates *)
  deliv_nil : deliv;
  in_prop : (int, Packet.t * Engine.Sim.handle) Hashtbl.t;
}

and deliv = {
  d_timer : Engine.Sim.Timer.timer;
  mutable d_pkt : Packet.t;  (* == Packet.none when the cell is free *)
  mutable d_next : deliv;  (* next free cell; the nil cell points to itself *)
}

let nop () = ()

(* Builds the record; [create] below ties the tx timer's knot. *)
let make ?(discipline = Discipline.Fifo) sim ~id ~name ~src ~dst ~bandwidth
    ~prop_delay ~buffer =
  if bandwidth <= 0. then invalid_arg "Link.create: bandwidth must be positive";
  if prop_delay < 0. then invalid_arg "Link.create: negative propagation delay";
  (match buffer with
   | Some b when b <= 0 -> invalid_arg "Link.create: buffer must be positive"
   | _ -> ());
  let nil_timer = Engine.Sim.Timer.create sim nop in
  let rec deliv_nil =
    { d_timer = nil_timer; d_pkt = Packet.none; d_next = deliv_nil }
  in
  {
    sim;
    id;
    name;
    src;
    dst;
    bandwidth;
    prop_delay;
    queue = Discipline.create discipline ~capacity:buffer;
    in_service = Packet.none;
    deliver = (fun _ -> failwith "Link: deliver callback not set");
    meter = [| 0.; 0. |];
    counters =
      {
        enq_data = 0;
        enq_ack = 0;
        drop_data = 0;
        drop_ack = 0;
        dep_data = 0;
        dep_ack = 0;
        dep_bytes = 0;
      };
    enqueue_hooks = [];
    drop_hooks = [];
    depart_hooks = [];
    faults = None;
    fault_hooks = [];
    down = false;
    tx_timer = Engine.Sim.Timer.create sim nop;
    free_deliv = deliv_nil;
    deliv_nil;
    in_prop = Hashtbl.create 16;
  }

let set_deliver t f = t.deliver <- f
let id t = t.id
let name t = t.name
let src t = t.src
let dst t = t.dst
let bandwidth t = t.bandwidth
let prop_delay t = t.prop_delay
let discipline t = Discipline.kind t.queue
let capacity t = Discipline.capacity t.queue

(* Buffer occupancy includes the packet being serialized, matching the
   paper's capacity analysis C = floor(B + 2P). *)
let queue_length t =
  Discipline.length t.queue + (if t.in_service != Packet.none then 1 else 0)

let counters t = t.counters
let total_drops t = t.counters.drop_data + t.counters.drop_ack

let contents t =
  if t.in_service != Packet.none then t.in_service :: Discipline.contents t.queue
  else Discipline.contents t.queue

let tx_time t ~bytes = Engine.Units.transmission_time ~bytes ~rate_bps:t.bandwidth

let busy_time t ~now =
  t.meter.(1)
  +. (if t.in_service != Packet.none then now -. t.meter.(0) else 0.)

let on_enqueue t f = t.enqueue_hooks <- f :: t.enqueue_hooks
let on_drop t f = t.drop_hooks <- f :: t.drop_hooks
let on_depart t f = t.depart_hooks <- f :: t.depart_hooks
let on_fault t f = t.fault_hooks <- f :: t.fault_hooks

let fire_fault t event p =
  List.iter (fun f -> f (Engine.Sim.now t.sim) event p) t.fault_hooks

(* Hook arguments (the current time, the post-event queue length) are
   only computed when somebody is listening: the no-observer run pays
   nothing beyond the empty-list check. *)
let fire_enqueue t p =
  match t.enqueue_hooks with
  | [] -> ()
  | hooks ->
    let now = Engine.Sim.now t.sim in
    let qlen = queue_length t in
    List.iter (fun f -> f now p qlen) hooks

let fire_drop t p =
  match t.drop_hooks with
  | [] -> ()
  | hooks ->
    let now = Engine.Sim.now t.sim in
    List.iter (fun f -> f now p) hooks

let fire_depart t p =
  match t.depart_hooks with
  | [] -> ()
  | hooks ->
    let now = Engine.Sim.now t.sim in
    let qlen = queue_length t in
    List.iter (fun f -> f now p qlen) hooks

let count_enq t (p : Packet.t) =
  match p.kind with
  | Packet.Data -> t.counters.enq_data <- t.counters.enq_data + 1
  | Packet.Ack -> t.counters.enq_ack <- t.counters.enq_ack + 1

let count_drop t (p : Packet.t) =
  match p.kind with
  | Packet.Data -> t.counters.drop_data <- t.counters.drop_data + 1
  | Packet.Ack -> t.counters.drop_ack <- t.counters.drop_ack + 1

(* Take a delivery cell from the free-list, growing the pool on demand
   (the pool high-water mark is the peak number of packets concurrently
   in propagation). *)
let alloc_deliv t =
  let d = t.free_deliv in
  if d != t.deliv_nil then begin
    t.free_deliv <- d.d_next;
    d.d_next <- t.deliv_nil;
    d
  end
  else begin
    let tm = Engine.Sim.Timer.create t.sim nop in
    let d = { d_timer = tm; d_pkt = Packet.none; d_next = t.deliv_nil } in
    Engine.Sim.Timer.set_action tm (fun () ->
        let p = d.d_pkt in
        d.d_pkt <- Packet.none;
        d.d_next <- t.free_deliv;
        t.free_deliv <- d;
        t.deliver p);
    d
  end

let rec maybe_start t =
  if t.in_service == Packet.none then
    match Discipline.dequeue t.queue with
    | None -> ()
    | Some p ->
      t.in_service <- p;
      t.meter.(0) <- Engine.Sim.now t.sim;
      Engine.Sim.Timer.set t.tx_timer ~delay:(tx_time t ~bytes:p.Packet.size)

and finish t =
  let p = t.in_service in
  if p == Packet.none then
    failwith "Link: transmitter out of sync with queue";
  let now = Engine.Sim.now t.sim in
  t.meter.(1) <- t.meter.(1) +. (now -. t.meter.(0));
  t.in_service <- Packet.none;
  (match p.Packet.kind with
   | Packet.Data -> t.counters.dep_data <- t.counters.dep_data + 1
   | Packet.Ack -> t.counters.dep_ack <- t.counters.dep_ack + 1);
  t.counters.dep_bytes <- t.counters.dep_bytes + p.Packet.size;
  fire_depart t p;
  (match t.faults with
   | None ->
     let d = alloc_deliv t in
     d.d_pkt <- p;
     Engine.Sim.Timer.set d.d_timer ~delay:t.prop_delay
   | Some plan ->
     let extra = plan.extra_delay p in
     if extra > 0. then fire_fault t (Fault_delay extra) p;
     let key = p.Packet.id in
     let deliver = t.deliver in
     let h =
       Engine.Sim.schedule t.sim ~delay:(t.prop_delay +. extra) (fun () ->
           Hashtbl.remove t.in_prop key;
           deliver p)
     in
     Hashtbl.replace t.in_prop key (p, h));
  maybe_start t

(* A fault discard never touched the buffer; it is still a drop as far as
   counters and drop observers (conservation, drop logs) are concerned.
   The fault hook fires first so checkers know the coming drop is
   intentional. *)
and fault_discard t p ~label =
  fire_fault t (Fault_drop label) p;
  count_drop t p;
  fire_drop t p

and admit t p =
  let in_service = if t.in_service != Packet.none then 1 else 0 in
  match Discipline.enqueue t.queue p ~in_service with
  | Discipline.Rejected ->
    count_drop t p;
    fire_drop t p;
    `Dropped
  | Discipline.Accepted ->
    count_enq t p;
    fire_enqueue t p;
    maybe_start t;
    `Ok
  | Discipline.Evicted victim ->
    (* The arrival was stored; a previously queued packet paid for it. *)
    count_enq t p;
    count_drop t victim;
    fire_drop t victim;
    fire_enqueue t p;
    maybe_start t;
    `Ok

let send t p =
  match t.faults with
  | None -> admit t p
  | Some plan ->
    if t.down then begin
      fault_discard t p ~label:"outage";
      `Dropped
    end
    else begin
      match plan.ingress p with
      | `Pass -> admit t p
      | `Drop label ->
        fault_discard t p ~label;
        `Dropped
      | `Duplicate ->
        let outcome = admit t p in
        (* The copy is a new wire entity (fresh id); it bypasses the
           ingress filter so duplication cannot cascade. *)
        let copy = plan.clone p in
        fire_fault t Fault_duplicate copy;
        ignore (admit t copy : [ `Ok | `Dropped ]);
        outcome
    end

let install_faults t ~ingress ~extra_delay ~clone =
  t.faults <- Some { ingress; extra_delay; clone }

let has_faults t = t.faults <> None
let is_down t = t.down

let set_down t flag =
  if t.faults = None then
    invalid_arg "Link.set_down: no fault plan installed";
  if flag <> t.down then begin
    t.down <- flag;
    if flag then begin
      (* The cut loses everything in flight: the packet being serialized,
         the queue behind it (flushed in FIFO order, so order-sensitive
         checkers can follow along), and packets already in propagation. *)
      (if t.in_service != Packet.none then begin
         let p = t.in_service in
         Engine.Sim.Timer.cancel t.tx_timer;
         t.meter.(1) <-
           t.meter.(1) +. (Engine.Sim.now t.sim -. t.meter.(0));
         t.in_service <- Packet.none;
         fault_discard t p ~label:"outage"
       end);
      let rec drain () =
        match Discipline.dequeue t.queue with
        | Some p ->
          fault_discard t p ~label:"outage";
          drain ()
        | None -> ()
      in
      drain ();
      let propagating =
        Hashtbl.fold (fun _ (p, h) acc -> (p, h) :: acc) t.in_prop []
        |> List.sort (fun (a, _) (b, _) ->
               compare a.Packet.id b.Packet.id)
      in
      Hashtbl.reset t.in_prop;
      List.iter
        (fun (p, h) ->
          Engine.Sim.cancel h;
          fault_discard t p ~label:"outage")
        propagating
    end
    else maybe_start t
  end

(* Tie the transmitter's knot: the tx timer's action needs [t]. *)
let create ?discipline sim ~id ~name ~src ~dst ~bandwidth ~prop_delay ~buffer =
  let t =
    make ?discipline sim ~id ~name ~src ~dst ~bandwidth ~prop_delay ~buffer
  in
  Engine.Sim.Timer.set_action t.tx_timer (fun () -> finish t);
  t
