(* BFS from each node: the first link on a shortest path to every
   reachable host becomes the routing-table entry. *)
let compute net =
  let n = Network.node_count net in
  for src = 0 to n - 1 do
    let visited = Array.make n false in
    let first_link : Link.t option array = Array.make n None in
    visited.(src) <- true;
    let frontier = Queue.create () in
    Queue.push src frontier;
    while not (Queue.is_empty frontier) do
      let u = Queue.pop frontier in
      let step link =
        let v = Link.dst link in
        if not visited.(v) then begin
          visited.(v) <- true;
          (first_link.(v) <-
             (match first_link.(u) with
              | None -> Some link  (* u = src: this link starts the path *)
              | Some l -> Some l));
          Queue.push v frontier
        end
      in
      List.iter step (Network.out_links net u)
    done;
    for dst = 0 to n - 1 do
      if dst <> src && Network.node_kind net dst = Network.Host then
        match first_link.(dst) with
        | Some link -> Network.set_route net ~node:src ~dst ~link
        | None -> ()
    done
  done

let path net ~src ~dst =
  let limit = Network.node_count net + 1 in
  let rec walk u acc steps =
    if steps > limit then None  (* routing loop *)
    else if u = dst then Some (List.rev (u :: acc))
    else
      match Network.route net ~node:u ~dst with
      | None -> None
      | Some link -> walk (Link.dst link) (u :: acc) (steps + 1)
  in
  walk src [] 0

let path_length net ~src ~dst =
  match path net ~src ~dst with
  | None -> None
  | Some nodes -> Some (List.length nodes - 1)
