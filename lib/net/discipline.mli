(** Gateway queueing disciplines.

    The paper's switches are drop-tail FIFO ([Fifo]); the studies it
    contrasts itself with used Random Drop gateways (Hashem; Mankin) and
    Fair Queueing (Demers, Keshav & Shenker).  All three are provided so
    the two-way-traffic phenomena can be examined under each.

    - [Fifo]: single queue; when full, the {e arriving} packet is dropped.
    - [Random_drop]: single FIFO queue; when full, a victim is chosen
      uniformly at random among the queued packets plus the arrival.
      Service order remains FIFO.
    - [Fair_queue]: one FIFO per connection, served round-robin (a
      packet-granularity approximation of bit-by-bit fair queueing); when
      the shared buffer is full, the tail packet of the currently longest
      per-connection queue is dropped.

    The buffer occupancy check counts the packet in service on the
    outgoing link ([~in_service]), preserving the paper's capacity
    analysis [C = floor(B + 2P)]. *)

type kind = Fifo | Random_drop of { seed : int } | Fair_queue

val kind_to_string : kind -> string

type t

(** @raise Invalid_argument if [capacity] is [Some c] with [c <= 0]. *)
val create : kind -> capacity:int option -> t

val kind : t -> kind
val capacity : t -> int option

(** What happened to an arriving packet. *)
type outcome =
  | Accepted  (** stored *)
  | Rejected  (** the arriving packet itself was dropped *)
  | Evicted of Packet.t
      (** the arrival was stored and a previously queued packet dropped *)

(** Offer an arriving packet.  [in_service] is how many packets currently
    occupy the transmitter (0 or 1) and count against the buffer. *)
val enqueue : t -> Packet.t -> in_service:int -> outcome

(** Next packet to transmit, removed from the buffer. *)
val dequeue : t -> Packet.t option

(** Stored packets (excluding any packet in service). *)
val length : t -> int

val is_empty : t -> bool

(** Stored packets in (approximate) service order; for FQ, grouped by
    class in round-robin order. *)
val contents : t -> Packet.t list
