type params = {
  granularity : float;
  min_timeout : float;
  max_timeout : float;
  initial_timeout : float;
  max_backoff : int;
}

let default_params =
  {
    granularity = 0.5;
    min_timeout = 1.0;
    max_timeout = 64.0;
    initial_timeout = 3.0;
    max_backoff = 6;
  }

type t = {
  params : params;
  mutable srtt : float;
  mutable rttvar : float;
  mutable nsamples : int;
  mutable backoff : int;
}

let create params =
  if params.granularity < 0. then invalid_arg "Rto.create: negative granularity";
  if params.min_timeout <= 0. || params.max_timeout < params.min_timeout then
    invalid_arg "Rto.create: bad timeout bounds";
  { params; srtt = 0.; rttvar = 0.; nsamples = 0; backoff = 0 }

let sample t rtt =
  if rtt < 0. || Float.is_nan rtt then invalid_arg "Rto.sample: bad RTT";
  if t.nsamples = 0 then begin
    t.srtt <- rtt;
    t.rttvar <- rtt /. 2.
  end
  else begin
    let err = rtt -. t.srtt in
    t.srtt <- t.srtt +. (err /. 8.);
    t.rttvar <- t.rttvar +. ((Float.abs err -. t.rttvar) /. 4.)
  end;
  t.nsamples <- t.nsamples + 1

let srtt t = if t.nsamples = 0 then None else Some t.srtt
let rttvar t = if t.nsamples = 0 then None else Some t.rttvar

(* Pure float rounding: truncating through [int_of_float] is undefined
   for values outside the native int range, so a huge [x] (e.g. an
   unclamped backoff product) could round to garbage or even negative.
   Above 2^53 ticks the float grid is coarser than the tick anyway and
   [x] is already (representationally) a multiple of [g]. *)
let round_up_to_tick t x =
  let g = t.params.granularity in
  if g <= 0. then x
  else
    let ticks = ceil (x /. g) in
    if Float.is_nan ticks || Float.abs ticks >= 9007199254740992. (* 2^53 *)
    then x
    else g *. ticks

let base_timeout t =
  if t.nsamples = 0 then t.params.initial_timeout
  else begin
    let raw = t.srtt +. (4. *. t.rttvar) in
    let ticked = round_up_to_tick t raw in
    Float.max t.params.min_timeout (Float.min ticked t.params.max_timeout)
  end

let timeout t =
  let scaled = base_timeout t *. Float.of_int (1 lsl t.backoff) in
  Float.min scaled t.params.max_timeout

let backoff t = t.backoff <- min (t.backoff + 1) t.params.max_backoff
let reset_backoff t = t.backoff <- 0
let backoff_count t = t.backoff
let samples t = t.nsamples
