(** A TCP connection: a {!Sender} on the source host and a {!Receiver} on
    the destination host, wired into the network's per-host endpoint
    dispatch.  The connection pre-exists (the paper does not simulate
    set-up); it begins transmitting at [config.start_time] with an
    infinite amount of data to send. *)

type t

(** Create the connection, register its endpoints on both hosts, and
    schedule its start. *)
val create : Net.Network.t -> Config.t -> t

val config : t -> Config.t
val id : t -> int
val sender : t -> Sender.t
val receiver : t -> Receiver.t

val cwnd : t -> float
val ssthresh : t -> float

(** Packets acknowledged end-to-end. *)
val delivered : t -> int

(** Goodput in packets/s over [(t0, t1)], based on acknowledged data. *)
val goodput : t -> t0:float -> t1:float -> delivered_at_t0:int -> float
