(** The sending half of a connection: an infinite (FTP-style) data source
    under window flow control.

    Nonpaced, as in the paper: a data packet is transmitted immediately
    upon receipt of the ACK that opens the window.  Loss recovery is the
    Tahoe go-back-N: on the third duplicate ACK or a retransmission
    timeout the congestion window collapses to one packet and sending
    resumes from the first unacknowledged packet.  Karn's rule is applied
    (no RTT sample spans a retransmission), and the retransmission timer
    backs off exponentially across consecutive timeouts. *)

type t

type loss_reason = Dup_ack | Timeout

val create : Net.Network.t -> Config.t -> t

(** Begin transmitting (called at the connection's start time). *)
val start : t -> unit

(** Handle an arriving ACK packet. *)
val on_ack : t -> Net.Packet.t -> unit

val config : t -> Config.t

(** The running congestion-control instance (named by [config.cc]). *)
val cc : t -> Cc.t

val cwnd : t -> float
val ssthresh : t -> float

(** First unacknowledged packet = number of packets delivered reliably. *)
val snd_una : t -> int

(** Next packet to transmit. *)
val snd_nxt : t -> int

(** Packets currently in flight. *)
val outstanding : t -> int

val rto : t -> Rto.t

(** Distinct data packets handed to the network (first transmissions). *)
val data_sent : t -> int

val retransmits : t -> int
val timeouts : t -> int
val fast_retransmits : t -> int

(** [on_cwnd s f] — [f time ~cwnd ~ssthresh] fires after every change. *)
val on_cwnd : t -> (float -> cwnd:float -> ssthresh:float -> unit) -> unit

(** [on_loss s f] — [f time reason] fires when a loss is detected. *)
val on_loss : t -> (float -> loss_reason -> unit) -> unit

(** [on_send s f] — [f time packet] fires as each data packet is injected. *)
val on_send : t -> (float -> Net.Packet.t -> unit) -> unit

(** For sized flows: has every packet been acknowledged? *)
val completed : t -> bool

(** Completion time of a sized flow, if reached. *)
val completed_at : t -> float option

(** [on_complete s f] — [f time] fires once when a sized flow finishes. *)
val on_complete : t -> (float -> unit) -> unit
