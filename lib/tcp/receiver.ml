type t = {
  net : Net.Network.t;
  sim : Engine.Sim.t;
  config : Config.t;
  mutable rcv_nxt : int;
  above_hole : (int, unit) Hashtbl.t;  (* out-of-order packets held back *)
  mutable delack_pending : bool;
  delack_timer : Engine.Sim.Timer.timer;  (* persistent; re-armed in place *)
  mutable data_received : int;
  mutable out_of_order : int;
  mutable duplicates : int;
  mutable acks_sent : int;
  mutable dup_acks_sent : int;
  mutable last_ack : int;  (* last cumulative number ACKed, -1 if none *)
  mutable ack_hooks :
    (float -> ackno:int -> delayed:bool -> dup:bool -> unit) list;
}

let nop () = ()

let make net config =
  let sim = Net.Network.sim net in
  {
    net;
    sim;
    config;
    rcv_nxt = 0;
    above_hole = Hashtbl.create 64;
    delack_pending = false;
    delack_timer = Engine.Sim.Timer.create sim nop;
    data_received = 0;
    out_of_order = 0;
    duplicates = 0;
    acks_sent = 0;
    dup_acks_sent = 0;
    last_ack = -1;
    ack_hooks = [];
  }

let rcv_nxt t = t.rcv_nxt
let data_received t = t.data_received
let out_of_order t = t.out_of_order
let duplicates t = t.duplicates
let acks_sent t = t.acks_sent
let dup_acks_sent t = t.dup_acks_sent
let buffered t = Hashtbl.length t.above_hole
let on_ack_sent t f = t.ack_hooks <- f :: t.ack_hooks

let cancel_delack t =
  Engine.Sim.Timer.cancel t.delack_timer;
  t.delack_pending <- false

(* [delayed] marks ACKs released by the delayed-ACK timer, as opposed to
   ACKs triggered directly by an arriving packet. *)
let send_ack t ~delayed =
  let dup = t.rcv_nxt = t.last_ack in
  t.acks_sent <- t.acks_sent + 1;
  if dup then t.dup_acks_sent <- t.dup_acks_sent + 1;
  t.last_ack <- t.rcv_nxt;
  (* ACKs travel dst -> src: the receiver's host is the data destination. *)
  let p =
    Net.Network.make_packet t.net ~conn:t.config.Config.conn ~kind:Net.Packet.Ack
      ~seq:t.rcv_nxt ~size:t.config.Config.ack_size
      ~src:t.config.Config.dst_host ~dst:t.config.Config.src_host
      ~retransmit:false
  in
  Net.Network.send_from_host t.net ~host:t.config.Config.dst_host p;
  match t.ack_hooks with
  | [] -> ()
  | hooks ->
    let now = Engine.Sim.now t.sim in
    List.iter (fun f -> f now ~ackno:t.rcv_nxt ~delayed ~dup) hooks

let create net config =
  let t = make net config in
  Engine.Sim.Timer.set_action t.delack_timer (fun () ->
      t.delack_pending <- false;
      send_ack t ~delayed:true);
  t

let ack_now t =
  cancel_delack t;
  send_ack t ~delayed:false

(* Delayed-ACK policy for an in-order arrival: the first packet only marks
   an ACK as owed; the second packet (or the timer) releases it. *)
let ack_in_order t =
  if not t.config.Config.delayed_ack then send_ack t ~delayed:false
  else if t.delack_pending then ack_now t
  else begin
    t.delack_pending <- true;
    Engine.Sim.Timer.set t.delack_timer ~delay:t.config.Config.delack_timeout
  end

let on_data t (p : Net.Packet.t) =
  t.data_received <- t.data_received + 1;
  if p.seq = t.rcv_nxt then begin
    t.rcv_nxt <- t.rcv_nxt + 1;
    while Hashtbl.mem t.above_hole t.rcv_nxt do
      Hashtbl.remove t.above_hole t.rcv_nxt;
      t.rcv_nxt <- t.rcv_nxt + 1
    done;
    ack_in_order t
  end
  else if p.seq > t.rcv_nxt then begin
    t.out_of_order <- t.out_of_order + 1;
    if not (Hashtbl.mem t.above_hole p.seq) then
      Hashtbl.add t.above_hole p.seq ();
    ack_now t  (* duplicate ACK, sent immediately even with delayed ACK *)
  end
  else begin
    t.duplicates <- t.duplicates + 1;
    ack_now t
  end
