(** The congestion-control variant zoo.

    Registers the built-in {!Cc} entries:

    - ["tahoe"], ["tahoe-unmodified"] — the paper's 4.3-Tahoe machine,
      with the modified (1/floor cwnd) or original (1/cwnd) avoidance
      increment; behavior-identical to {!Cong} (pinned by the
      differential test suite).
    - ["reno"], ["reno-unmodified"] — 4.3-Reno fast recovery.
    - ["newreno"] — Reno plus RFC-6582-style partial-ACK recovery: a
      partial ACK retransmits the next hole and deflates by the amount
      acknowledged instead of ending recovery.
    - ["aimd"] — plain AIMD(a, b): +a per window of ACKs,
      cwnd <- b * cwnd on loss (Avrachenkov et al.); [a=1], [b=0.5]
      reproduce Tahoe-without-slow-start-reset dynamics.
    - ["compound"] — a Compound-TCP-style delay+loss hybrid: a Reno
      loss window plus a delay window fed by RTT samples that backs
      off once the estimated self-induced queue exceeds [gamma].
    - ["oracle"] — rate-pinned calibration controller: window =
      rate x min-RTT (the ideal BDP window), deaf to loss.
    - ["fixed"] — the paper's fixed-window flow control (Figures 8-9).

    Registration happens at module initialization; [ensure_registered]
    forces linkage from code that only touches the registry. *)

val ensure_registered : unit -> unit

(** The adaptive entries (everything except ["fixed"] and ["oracle"]),
    for sweep grids and the cross-variant experiment. *)
val adaptive : string list
