type algorithm =
  | Tahoe of { modified_ca : bool }
  | Reno of { modified_ca : bool }
  | Fixed of int

let algorithm_to_string = function
  | Tahoe { modified_ca } ->
    if modified_ca then "tahoe" else "tahoe(original-ca)"
  | Reno { modified_ca } -> if modified_ca then "reno" else "reno(original-ca)"
  | Fixed w -> Printf.sprintf "fixed-%d" w

type t = {
  algorithm : algorithm;
  maxwnd : int;
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable recovering : bool;
}

let initial_state t =
  (match t.algorithm with
   | Tahoe _ | Reno _ -> t.cwnd <- 1.
   | Fixed w -> t.cwnd <- float_of_int w);
  t.ssthresh <- float_of_int t.maxwnd;
  t.recovering <- false

let create ~algorithm ~maxwnd =
  if maxwnd < 2 then invalid_arg "Cong.create: maxwnd must be >= 2";
  (match algorithm with
   | Fixed w when w < 1 -> invalid_arg "Cong.create: fixed window must be >= 1"
   | _ -> ());
  let t = { algorithm; maxwnd; cwnd = 1.; ssthresh = 1.; recovering = false } in
  initial_state t;
  t

let algorithm t = t.algorithm
let maxwnd t = t.maxwnd
let cwnd t = t.cwnd
let ssthresh t = t.ssthresh

let wnd t =
  match t.algorithm with
  (* The fixed window is still subject to the advertised maximum: a
     [Fixed w] with [w > maxwnd] must not overrun the receiver. *)
  | Fixed w -> max 1 (min w t.maxwnd)
  | Tahoe _ | Reno _ ->
    max 1 (int_of_float (Float.min t.cwnd (float_of_int t.maxwnd)))

let in_slow_start t = t.cwnd < t.ssthresh
let in_recovery t = t.recovering

let cap t = if t.cwnd > float_of_int t.maxwnd then t.cwnd <- float_of_int t.maxwnd

let additive_increase t ~modified_ca =
  if t.cwnd < t.ssthresh then t.cwnd <- t.cwnd +. 1.
  else begin
    let divisor = if modified_ca then Float.of_int (wnd t) else t.cwnd in
    t.cwnd <- t.cwnd +. (1. /. divisor);
    (* Accumulating 1/wnd in binary floating point can land a hair below
       the integer (e.g. 9.999999999999996 after nine 1/9 steps), which
       would break the modified algorithm's guarantee that floor(cwnd)
       grows by exactly one per epoch.  Snap when within an ulp-scale
       epsilon. *)
    let nearest = Float.round t.cwnd in
    if Float.abs (t.cwnd -. nearest) < 1e-9 then t.cwnd <- nearest
  end;
  cap t

let on_ack t =
  match t.algorithm with
  | Fixed _ -> ()
  | Tahoe { modified_ca } | Reno { modified_ca } ->
    additive_increase t ~modified_ca

let halve_ssthresh t =
  let half = t.cwnd /. 2. in
  t.ssthresh <- Float.max (Float.min half (float_of_int t.maxwnd)) 2.

let on_timeout t =
  match t.algorithm with
  | Fixed _ -> ()
  | Tahoe _ | Reno _ ->
    halve_ssthresh t;
    t.cwnd <- 1.;
    t.recovering <- false

let on_fast_retransmit t =
  match t.algorithm with
  | Fixed _ -> ()
  | Tahoe _ -> on_timeout t
  | Reno _ ->
    halve_ssthresh t;
    (* Inflate by the three duplicates that triggered the retransmission:
       each signals a packet that left the network. *)
    t.cwnd <- t.ssthresh +. 3.;
    t.recovering <- true;
    cap t

let on_dup_ack t =
  match t.algorithm with
  | Reno _ when t.recovering ->
    t.cwnd <- t.cwnd +. 1.;
    cap t
  | Reno _ | Tahoe _ | Fixed _ -> ()

let on_recovery_exit t =
  match t.algorithm with
  | Reno _ when t.recovering ->
    t.cwnd <- t.ssthresh;
    t.recovering <- false
  | Reno _ | Tahoe _ | Fixed _ -> ()

let reset t = initial_state t
