(** Retransmission-timeout estimation (Jacobson/Karn, BSD 4.3 flavor).

    Smoothed RTT and mean deviation are updated per accepted sample:
    [err = sample - srtt; srtt += err/8; rttvar += (|err| - rttvar)/4],
    and the timeout is [srtt + 4*rttvar], rounded {e up} to the timer
    granularity (BSD used 500 ms ticks) and clamped to
    [\[min_timeout, max_timeout\]].  Retransmission backoff doubles the
    timeout per consecutive timeout (capped) and is cleared when new data
    is acknowledged.  Karn's rule — never sample a retransmitted segment —
    is enforced by the caller ({!Sender}), which simply does not feed
    such samples. *)

type params = {
  granularity : float;  (** timer tick, s; BSD: 0.5 *)
  min_timeout : float;  (** s; BSD: 1.0 *)
  max_timeout : float;  (** s; BSD: 64.0 *)
  initial_timeout : float;  (** before any sample; s *)
  max_backoff : int;  (** max doublings *)
}

val default_params : params

type t

val create : params -> t

(** Feed an RTT measurement (seconds). *)
val sample : t -> float -> unit

val srtt : t -> float option
val rttvar : t -> float option

(** Current timeout including backoff. *)
val timeout : t -> float

(** Double the next timeout (called on expiry). *)
val backoff : t -> unit

(** Clear backoff (called when new data is acknowledged). *)
val reset_backoff : t -> unit

val backoff_count : t -> int

(** Number of samples accepted. *)
val samples : t -> int
