(** The receiving half of a connection.

    Maintains the cumulative sequence state and generates ACKs.  With the
    delayed-ACK option off (the paper's default), every arriving data
    packet triggers an immediate ACK.  With it on, an in-order packet is
    acknowledged only when a second packet arrives (one ACK covers both)
    or when a conservative timer expires — the BSD 4.3 behavior described
    in §2.1/§5.  Out-of-order and duplicate packets always trigger an
    immediate (duplicate) ACK, which is what drives fast retransmit. *)

type t

val create : Net.Network.t -> Config.t -> t

(** Handle an arriving data packet. *)
val on_data : t -> Net.Packet.t -> unit

(** Next expected packet = packets delivered in order so far. *)
val rcv_nxt : t -> int

val data_received : t -> int
val out_of_order : t -> int

(** Data packets that had already been delivered (spurious retransmits). *)
val duplicates : t -> int

val acks_sent : t -> int

(** ACKs that did not advance the cumulative sequence number. *)
val dup_acks_sent : t -> int

(** Packets buffered above a hole right now. *)
val buffered : t -> int

(** [on_ack_sent t f] — [f time ~ackno ~delayed ~dup] fires after each ACK
    is handed to the network.  [delayed] marks ACKs released by the
    delayed-ACK timer; [dup] marks ACKs that did not advance the
    cumulative sequence number. *)
val on_ack_sent :
  t -> (float -> ackno:int -> delayed:bool -> dup:bool -> unit) -> unit
