type t = {
  conn : int;
  src_host : int;
  dst_host : int;
  data_size : int;
  ack_size : int;
  maxwnd : int;
  cc : Cc.spec;
  start_time : float;
  delayed_ack : bool;
  delack_timeout : float;
  dupack_threshold : int;
  loss_detection : bool;
  rto_params : Rto.params;
  pacing : float option;
  flow_size : int option;
  rtt_skew : float;
}

let make ~conn ~src_host ~dst_host ?(data_size = 500) ?(ack_size = 50)
    ?(maxwnd = 1000) ?algorithm ?cc ?(start_time = 0.) ?(delayed_ack = false)
    ?(delack_timeout = 0.2) ?(dupack_threshold = 3) ?(loss_detection = true)
    ?(rto_params = Rto.default_params) ?(pacing = None) ?(flow_size = None)
    ?(rtt_skew = 0.) () =
  if data_size <= 0 then invalid_arg "Config.make: data_size must be positive";
  if ack_size < 0 then invalid_arg "Config.make: negative ack_size";
  if start_time < 0. then invalid_arg "Config.make: negative start_time";
  if dupack_threshold < 1 then
    invalid_arg "Config.make: dupack_threshold must be >= 1";
  (match pacing with
   | Some interval when interval <= 0. ->
     invalid_arg "Config.make: pacing interval must be positive"
   | _ -> ());
  (match flow_size with
   | Some n when n <= 0 -> invalid_arg "Config.make: flow_size must be positive"
   | _ -> ());
  if rtt_skew < 0. then invalid_arg "Config.make: negative rtt_skew";
  let cc =
    match (cc, algorithm) with
    | Some s, _ -> s  (* the spec wins over the legacy variant *)
    | None, Some a -> Cc.spec_of_algorithm a
    | None, None -> Cc.spec "tahoe"
  in
  (* Instantiate once now so a bad spec (unknown name, bad parameter,
     maxwnd < 2) fails the run up front rather than at sender creation. *)
  Cc_zoo.ensure_registered ();
  ignore (Cc.make cc ~maxwnd : Cc.t);
  {
    conn;
    src_host;
    dst_host;
    data_size;
    ack_size;
    maxwnd;
    cc;
    start_time;
    delayed_ack;
    delack_timeout;
    dupack_threshold;
    loss_detection;
    rto_params;
    pacing;
    flow_size;
    rtt_skew;
  }
