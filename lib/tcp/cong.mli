(** Congestion-window state machine.

    Window sizes are measured in units of maximum-size packets.

    [Tahoe] is the BSD 4.3-Tahoe algorithm the paper studies (§2.1):

    - on each ACK of new data:
      [if cwnd < ssthresh then cwnd <- cwnd + 1          (* slow start *)
       else cwnd <- cwnd + 1/cwnd]                       (* cong. avoid *)
    - on detecting a packet loss (3rd duplicate ACK or timeout):
      [ssthresh <- max (min (cwnd/2) maxwnd) 2; cwnd <- 1]

    The paper replaces the avoidance increment by [1 / floor cwnd] so that
    [floor cwnd] grows by exactly one per epoch; that variant is
    [~modified_ca:true] (the default in all paper experiments).

    [Reno] adds 4.3-Reno fast recovery (the successor the paper cites):
    the third duplicate ACK sets [ssthresh] as above but inflates
    [cwnd <- ssthresh + 3], each further duplicate ACK inflates by one
    (every duplicate signals a departure), and the ACK of new data
    deflates [cwnd <- ssthresh].  Timeouts still collapse to 1.

    [Fixed w] is the fixed-window flow control of §4.2/Figures 8-9. *)

type algorithm =
  | Tahoe of { modified_ca : bool }
  | Reno of { modified_ca : bool }
  | Fixed of int

val algorithm_to_string : algorithm -> string

type t

(** [create ~algorithm ~maxwnd] starts in slow start with [cwnd = 1] and
    [ssthresh = maxwnd] (the initial slow start runs until the first
    loss). *)
val create : algorithm:algorithm -> maxwnd:int -> t

val algorithm : t -> algorithm
val maxwnd : t -> int
val cwnd : t -> float
val ssthresh : t -> float

(** The usable window: [floor (min cwnd maxwnd)], at least 1 packet. *)
val wnd : t -> int

(** Is the connection in slow start ([cwnd < ssthresh])? *)
val in_slow_start : t -> bool

(** Is a Reno fast recovery in progress? Always false for Tahoe/Fixed. *)
val in_recovery : t -> bool

(** An ACK of new data arrived outside fast recovery. *)
val on_ack : t -> unit

(** Loss detected by the retransmission timer. *)
val on_timeout : t -> unit

(** Loss detected by the duplicate-ACK threshold. *)
val on_fast_retransmit : t -> unit

(** A duplicate ACK beyond the threshold (Reno window inflation). *)
val on_dup_ack : t -> unit

(** An ACK of new data arrived while in fast recovery (Reno deflation). *)
val on_recovery_exit : t -> unit

(** Reset to the initial state (new connection). *)
val reset : t -> unit
