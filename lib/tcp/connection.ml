type t = { config : Config.t; sender : Sender.t; receiver : Receiver.t }

let create net config =
  let sender = Sender.create net config in
  let receiver = Receiver.create net config in
  let dispatch (p : Net.Packet.t) =
    match p.kind with
    | Net.Packet.Ack -> Sender.on_ack sender p
    | Net.Packet.Data -> Receiver.on_data receiver p
  in
  Net.Network.register_endpoint net ~host:config.Config.src_host
    ~conn:config.Config.conn dispatch;
  Net.Network.register_endpoint net ~host:config.Config.dst_host
    ~conn:config.Config.conn dispatch;
  let sim = Net.Network.sim net in
  ignore
    (Engine.Sim.at sim ~time:config.Config.start_time (fun () ->
         Sender.start sender)
      : Engine.Sim.handle);
  { config; sender; receiver }

let config t = t.config
let id t = t.config.Config.conn
let sender t = t.sender
let receiver t = t.receiver
let cwnd t = Sender.cwnd t.sender
let ssthresh t = Sender.ssthresh t.sender
let delivered t = Sender.snd_una t.sender

let goodput t ~t0 ~t1 ~delivered_at_t0 =
  if t1 <= t0 then invalid_arg "Connection.goodput: empty interval";
  float_of_int (delivered t - delivered_at_t0) /. (t1 -. t0)
