type reason = Fast_retransmit | Timeout

(* ------------------------------------------------------------------ *)
(* Specs                                                               *)
(* ------------------------------------------------------------------ *)

type spec = { name : string; params : (string * float) list }

let spec ?(params = []) name = { name; params }

let spec_of_string s =
  let name, rest =
    match String.index_opt s ':' with
    | None -> (s, "")
    | Some i ->
      (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  in
  let name = String.trim name in
  if name = "" then Error "empty congestion-control name"
  else if rest = "" then Ok { name; params = [] }
  else
    let parse_kv kv =
      match String.index_opt kv '=' with
      | None -> Error (Printf.sprintf "expected k=v, got %S" kv)
      | Some i ->
        let k = String.trim (String.sub kv 0 i) in
        let v = String.trim (String.sub kv (i + 1) (String.length kv - i - 1)) in
        if k = "" then Error (Printf.sprintf "empty parameter name in %S" kv)
        else (
          match float_of_string_opt v with
          | Some f -> Ok (k, f)
          | None -> Error (Printf.sprintf "parameter %s: bad number %S" k v))
    in
    let rec go acc = function
      | [] -> Ok { name; params = List.rev acc }
      | kv :: rest -> (
        match parse_kv kv with
        | Ok p -> go (p :: acc) rest
        | Error _ as e -> e)
    in
    go [] (String.split_on_char ',' rest)

let spec_to_string { name; params } =
  match params with
  | [] -> name
  | _ ->
    name ^ ":"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=%g" k v) params)

let spec_of_algorithm = function
  | Cong.Tahoe { modified_ca = true } -> spec "tahoe"
  | Cong.Tahoe { modified_ca = false } -> spec "tahoe-unmodified"
  | Cong.Reno { modified_ca = true } -> spec "reno"
  | Cong.Reno { modified_ca = false } -> spec "reno-unmodified"
  | Cong.Fixed w -> spec ~params:[ ("w", float_of_int w) ] "fixed"

(* ------------------------------------------------------------------ *)
(* The interface                                                       *)
(* ------------------------------------------------------------------ *)

module type S = sig
  type t

  val id : string
  val describe : string
  val create : maxwnd:int -> params:(string * float) list -> t
  val on_ack : t -> ackno:int -> newly:int -> bool
  val on_dup_ack : t -> unit
  val on_loss : t -> reason -> highest_sent:int -> unit
  val on_send : t -> seq:int -> retransmit:bool -> unit
  val on_rtt_sample : t -> rtt:float -> unit
  val window : t -> int
  val cwnd : t -> float
  val ssthresh : t -> float
  val in_slow_start : t -> bool
  val in_recovery : t -> bool
  val reset : t -> unit
end

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let registry : (string, (module S)) Hashtbl.t = Hashtbl.create 16
let order : string list ref = ref []

let register (module M : S) =
  if Hashtbl.mem registry M.id then
    invalid_arg (Printf.sprintf "Cc.register: duplicate entry %S" M.id);
  Hashtbl.replace registry M.id (module M : S);
  order := M.id :: !order

let find name = Hashtbl.find_opt registry name
let names () = List.rev !order

let zoo () =
  List.map
    (fun name ->
      let (module M : S) = Hashtbl.find registry name in
      (M.id, M.describe))
    (names ())

(* ------------------------------------------------------------------ *)
(* Packed instances                                                    *)
(* ------------------------------------------------------------------ *)

(* One record of closures over the module's own state type: the sender
   stays monomorphic and pays one indirect call per hook.  Built once
   per connection, never on the event hot path. *)
type t = {
  spec : spec;
  maxwnd : int;
  ack : ackno:int -> newly:int -> bool;
  dup_ack : unit -> unit;
  loss : reason -> highest_sent:int -> unit;
  send : seq:int -> retransmit:bool -> unit;
  rtt_sample : rtt:float -> unit;
  window : unit -> int;
  cwnd : unit -> float;
  ssthresh : unit -> float;
  in_slow_start : unit -> bool;
  in_recovery : unit -> bool;
  reset : unit -> unit;
}

let instantiate (module M : S) ~maxwnd ~params =
  if maxwnd < 2 then invalid_arg "Cc.instantiate: maxwnd must be >= 2";
  let st = M.create ~maxwnd ~params in
  {
    spec = { name = M.id; params };
    maxwnd;
    ack = (fun ~ackno ~newly -> M.on_ack st ~ackno ~newly);
    dup_ack = (fun () -> M.on_dup_ack st);
    loss = (fun reason ~highest_sent -> M.on_loss st reason ~highest_sent);
    send = (fun ~seq ~retransmit -> M.on_send st ~seq ~retransmit);
    rtt_sample = (fun ~rtt -> M.on_rtt_sample st ~rtt);
    window = (fun () -> M.window st);
    cwnd = (fun () -> M.cwnd st);
    ssthresh = (fun () -> M.ssthresh st);
    in_slow_start = (fun () -> M.in_slow_start st);
    in_recovery = (fun () -> M.in_recovery st);
    reset = (fun () -> M.reset st);
  }

let make spec ~maxwnd =
  match find spec.name with
  | Some m -> instantiate m ~maxwnd ~params:spec.params
  | None ->
    invalid_arg
      (Printf.sprintf
         "Cc.make: unknown congestion control %S (registered: %s)" spec.name
         (String.concat ", " (names ())))

let spec_of t = t.spec
let name t = t.spec.name
let maxwnd t = t.maxwnd
let on_ack t ~ackno ~newly = t.ack ~ackno ~newly
let on_dup_ack t = t.dup_ack ()
let on_loss t reason ~highest_sent = t.loss reason ~highest_sent
let on_send t ~seq ~retransmit = t.send ~seq ~retransmit
let on_rtt_sample t ~rtt = t.rtt_sample ~rtt
let window t = t.window ()
let cwnd t = t.cwnd ()
let ssthresh t = t.ssthresh ()
let in_slow_start t = t.in_slow_start ()
let in_recovery t = t.in_recovery ()
let reset t = t.reset ()

(* ------------------------------------------------------------------ *)
(* Parameter helpers                                                   *)
(* ------------------------------------------------------------------ *)

let param params key ~default =
  match List.assoc_opt key params with Some v -> v | None -> default

let check_params ~who ~allowed params =
  List.iter
    (fun (k, _) ->
      if not (List.mem k allowed) then
        invalid_arg
          (Printf.sprintf "%s: unknown parameter %S (allowed: %s)" who k
             (if allowed = [] then "none" else String.concat ", " allowed)))
    params;
  (* A repeated key would silently shadow; reject it. *)
  let keys = List.map fst params in
  if List.length (List.sort_uniq compare keys) <> List.length keys then
    invalid_arg (Printf.sprintf "%s: duplicate parameter" who)
