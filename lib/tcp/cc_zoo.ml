(* The built-in congestion-control variants behind the Cc registry.

   The classic entries (tahoe and reno families) re-state the window
   arithmetic of the seed Cong machine rather than wrapping it, so the
   differential test suite (test_cc_differential) is a real check that
   the interface port preserved behavior — a wrapper would make that
   test vacuous.  Keep the two in sync: any change here must keep the
   step-by-step equivalence with Cong. *)

(* ------------------------------------------------------------------ *)
(* Classic 4.3 window arithmetic (Tahoe / Reno / NewReno)               *)
(* ------------------------------------------------------------------ *)

module Classic = struct
  type t = {
    maxwnd : int;
    modified_ca : bool;
    fast_recovery : bool;  (* Reno-style inflation on the 3rd dup ACK *)
    newreno : bool;  (* partial-ACK recovery *)
    mutable cwnd : float;
    mutable ssthresh : float;
    mutable recovering : bool;
    mutable recover : int;  (* NewReno recovery point (highest_sent at loss) *)
  }

  let make ~maxwnd ~modified_ca ~fast_recovery ~newreno =
    {
      maxwnd;
      modified_ca;
      fast_recovery;
      newreno;
      cwnd = 1.;
      ssthresh = float_of_int maxwnd;
      recovering = false;
      recover = -1;
    }

  let reset t =
    t.cwnd <- 1.;
    t.ssthresh <- float_of_int t.maxwnd;
    t.recovering <- false;
    t.recover <- -1

  let window t =
    max 1 (int_of_float (Float.min t.cwnd (float_of_int t.maxwnd)))

  let cap t =
    if t.cwnd > float_of_int t.maxwnd then t.cwnd <- float_of_int t.maxwnd

  let additive_increase t =
    if t.cwnd < t.ssthresh then t.cwnd <- t.cwnd +. 1.
    else begin
      let divisor =
        if t.modified_ca then Float.of_int (window t) else t.cwnd
      in
      t.cwnd <- t.cwnd +. (1. /. divisor);
      (* Snap near-integers (same epsilon as Cong): accumulating 1/wnd
         in binary floating point can land a hair below the integer,
         which would break the modified algorithm's one-per-epoch
         guarantee. *)
      let nearest = Float.round t.cwnd in
      if Float.abs (t.cwnd -. nearest) < 1e-9 then t.cwnd <- nearest
    end;
    cap t

  let halve_ssthresh t =
    t.ssthresh <-
      Float.max (Float.min (t.cwnd /. 2.) (float_of_int t.maxwnd)) 2.

  let on_timeout t =
    halve_ssthresh t;
    t.cwnd <- 1.;
    t.recovering <- false

  let on_loss t (reason : Cc.reason) ~highest_sent =
    match reason with
    | Cc.Timeout -> on_timeout t
    | Cc.Fast_retransmit ->
      if not t.fast_recovery then on_timeout t
      else if t.newreno && t.recovering then
        (* NewReno: dup-ACK bursts inside an ongoing recovery must not
           re-halve (RFC 6582); the sender still retransmits the hole. *)
        ()
      else begin
        halve_ssthresh t;
        t.cwnd <- t.ssthresh +. 3.;
        t.recovering <- true;
        t.recover <- highest_sent;
        cap t
      end

  let on_ack t ~ackno ~newly =
    if t.recovering then
      if t.newreno && ackno <= t.recover then begin
        (* Partial ACK: stay in recovery, deflate by the amount newly
           acknowledged plus one for the hole about to be retransmitted,
           and ask the sender to resend the first unacknowledged
           segment. *)
        t.cwnd <- Float.max (t.cwnd -. float_of_int newly +. 1.) 1.;
        cap t;
        true
      end
      else begin
        t.cwnd <- t.ssthresh;
        t.recovering <- false;
        false
      end
    else begin
      additive_increase t;
      false
    end

  let on_dup_ack t =
    if t.fast_recovery && t.recovering then begin
      t.cwnd <- t.cwnd +. 1.;
      cap t
    end

  let cwnd t = t.cwnd
  let ssthresh t = t.ssthresh
  let in_slow_start t = t.cwnd < t.ssthresh
  let in_recovery t = t.recovering
end

let classic_module ~id_ ~describe_ ~modified_ca ~fast_recovery ~newreno =
  (module struct
    type t = Classic.t

    let id = id_
    let describe = describe_

    let create ~maxwnd ~params =
      Cc.check_params ~who:id ~allowed:[] params;
      Classic.make ~maxwnd ~modified_ca ~fast_recovery ~newreno

    let on_ack = Classic.on_ack
    let on_dup_ack = Classic.on_dup_ack
    let on_loss = Classic.on_loss
    let on_send _ ~seq:_ ~retransmit:_ = ()
    let on_rtt_sample _ ~rtt:_ = ()
    let window = Classic.window
    let cwnd = Classic.cwnd
    let ssthresh = Classic.ssthresh
    let in_slow_start = Classic.in_slow_start
    let in_recovery = Classic.in_recovery
    let reset = Classic.reset
  end : Cc.S)

(* ------------------------------------------------------------------ *)
(* AIMD(a, b) — Avrachenkov et al.                                      *)
(* ------------------------------------------------------------------ *)

module Aimd = struct
  type t = {
    maxwnd : int;
    a : float;  (* additive increment per window of ACKs *)
    b : float;  (* multiplicative decrease factor *)
    mutable cwnd : float;
    mutable ssthresh : float;
  }

  let id = "aimd"

  let describe =
    "AIMD(a,b): +a per window, cwnd*b on loss (a=1, b=0.5)"

  let create ~maxwnd ~params =
    Cc.check_params ~who:id ~allowed:[ "a"; "b" ] params;
    let a = Cc.param params "a" ~default:1. in
    let b = Cc.param params "b" ~default:0.5 in
    if a <= 0. || Float.is_nan a then invalid_arg "aimd: a must be > 0";
    if b <= 0. || b >= 1. || Float.is_nan b then
      invalid_arg "aimd: b must be in (0, 1)";
    { maxwnd; a; b; cwnd = 1.; ssthresh = float_of_int maxwnd }

  let window t =
    max 1 (int_of_float (Float.min t.cwnd (float_of_int t.maxwnd)))

  let cap t =
    if t.cwnd > float_of_int t.maxwnd then t.cwnd <- float_of_int t.maxwnd

  let on_ack t ~ackno:_ ~newly:_ =
    if t.cwnd < t.ssthresh then t.cwnd <- t.cwnd +. 1.
    else t.cwnd <- t.cwnd +. (t.a /. Float.of_int (window t));
    cap t;
    false

  let decrease t =
    t.ssthresh <-
      Float.max (Float.min (t.b *. t.cwnd) (float_of_int t.maxwnd)) 2.

  let on_loss t (reason : Cc.reason) ~highest_sent:_ =
    decrease t;
    match reason with
    | Cc.Timeout -> t.cwnd <- 1.
    | Cc.Fast_retransmit -> t.cwnd <- Float.max (t.b *. t.cwnd) 1.

  let on_dup_ack _ = ()
  let on_send _ ~seq:_ ~retransmit:_ = ()
  let on_rtt_sample _ ~rtt:_ = ()
  let cwnd t = t.cwnd
  let ssthresh t = t.ssthresh
  let in_slow_start t = t.cwnd < t.ssthresh
  let in_recovery _ = false

  let reset t =
    t.cwnd <- 1.;
    t.ssthresh <- float_of_int t.maxwnd
end

(* ------------------------------------------------------------------ *)
(* Compound-style delay+loss hybrid — Ghosh et al.                      *)
(* ------------------------------------------------------------------ *)

module Compound = struct
  (* Effective window = cwnd (Reno loss window) + dwnd (delay window).
     RTT samples estimate the connection's self-induced queue
     diff = window * (1 - base_rtt / rtt); dwnd grows while diff stays
     under [gamma] packets and backs off proportionally above it, so
     the delay component claims spare pipe without standing queue. *)
  type t = {
    maxwnd : int;
    gamma : float;  (* queue target, packets *)
    dalpha : float;  (* dwnd gain per under-target RTT sample *)
    zeta : float;  (* dwnd decay per packet of over-target queue *)
    loss : Classic.t;
    mutable dwnd : float;
    mutable base_rtt : float;
  }

  let id = "compound"

  let describe =
    "delay+loss hybrid: Reno cwnd + delay window with queue target gamma"

  let create ~maxwnd ~params =
    Cc.check_params ~who:id ~allowed:[ "gamma"; "dalpha"; "zeta" ] params;
    let gamma = Cc.param params "gamma" ~default:3. in
    let dalpha = Cc.param params "dalpha" ~default:1. in
    let zeta = Cc.param params "zeta" ~default:0.5 in
    if gamma <= 0. || Float.is_nan gamma then
      invalid_arg "compound: gamma must be > 0";
    if dalpha <= 0. || Float.is_nan dalpha then
      invalid_arg "compound: dalpha must be > 0";
    if zeta <= 0. || Float.is_nan zeta then
      invalid_arg "compound: zeta must be > 0";
    {
      maxwnd;
      gamma;
      dalpha;
      zeta;
      loss =
        Classic.make ~maxwnd ~modified_ca:true ~fast_recovery:true
          ~newreno:false;
      dwnd = 0.;
      base_rtt = infinity;
    }

  let effective t = t.loss.Classic.cwnd +. t.dwnd

  let window t =
    max 1 (int_of_float (Float.min (effective t) (float_of_int t.maxwnd)))

  (* Keep cwnd + dwnd inside the advertised window. *)
  let cap_dwnd t =
    t.dwnd <-
      Float.max 0.
        (Float.min t.dwnd (float_of_int t.maxwnd -. t.loss.Classic.cwnd))

  let on_ack t ~ackno ~newly =
    ignore (Classic.on_ack t.loss ~ackno ~newly : bool);
    cap_dwnd t;
    false

  let on_loss t (reason : Cc.reason) ~highest_sent =
    (* The loss threshold reflects the whole effective window, not just
       the loss component: fold dwnd in before the classic reaction. *)
    (match reason with
     | Cc.Timeout ->
       t.loss.Classic.cwnd <- effective t;
       Classic.on_loss t.loss reason ~highest_sent;
       t.dwnd <- 0.
     | Cc.Fast_retransmit ->
       t.loss.Classic.cwnd <- effective t;
       t.dwnd <- t.dwnd /. 2.;
       Classic.on_loss t.loss reason ~highest_sent);
    cap_dwnd t

  let on_dup_ack t = Classic.on_dup_ack t.loss

  let on_rtt_sample t ~rtt =
    if rtt > 0. then begin
      if rtt < t.base_rtt then t.base_rtt <- rtt;
      let diff = Float.of_int (window t) *. (1. -. (t.base_rtt /. rtt)) in
      if diff < t.gamma then t.dwnd <- t.dwnd +. t.dalpha
      else t.dwnd <- Float.max 0. (t.dwnd -. (t.zeta *. (diff -. t.gamma)));
      cap_dwnd t
    end

  let on_send _ ~seq:_ ~retransmit:_ = ()
  let cwnd t = effective t
  let ssthresh t = t.loss.Classic.ssthresh
  let in_slow_start t = Classic.in_slow_start t.loss
  let in_recovery t = Classic.in_recovery t.loss

  let reset t =
    Classic.reset t.loss;
    t.dwnd <- 0.;
    t.base_rtt <- infinity
end

(* ------------------------------------------------------------------ *)
(* Oracle: rate-pinned BDP window for calibration                       *)
(* ------------------------------------------------------------------ *)

module Oracle = struct
  (* window = rate x min-RTT — the window an omniscient sender would
     pick to fill the pipe without queueing.  Deaf to loss, so a run
     against the oracle isolates what the feedback loop (rather than
     the window size) contributes to a phenomenon. *)
  type t = {
    maxwnd : int;
    rate : float;  (* packets per second *)
    w0 : int;  (* window before the first RTT sample *)
    mutable min_rtt : float;
  }

  let id = "oracle"

  let describe =
    "rate-pinned calibration: window = rate x min-RTT, deaf to loss"

  let create ~maxwnd ~params =
    Cc.check_params ~who:id ~allowed:[ "rate"; "w0" ] params;
    (* Default rate: the paper's 50 Kbps bottleneck in 500 B packets. *)
    let rate = Cc.param params "rate" ~default:12.5 in
    let w0 = int_of_float (Cc.param params "w0" ~default:1.) in
    if rate <= 0. || Float.is_nan rate then
      invalid_arg "oracle: rate must be > 0";
    if w0 < 1 then invalid_arg "oracle: w0 must be >= 1";
    { maxwnd; rate; w0; min_rtt = infinity }

  let window t =
    let w =
      if t.min_rtt = infinity then t.w0
      else int_of_float (Float.round (t.rate *. t.min_rtt))
    in
    max 1 (min w t.maxwnd)

  let on_ack _ ~ackno:_ ~newly:_ = false
  let on_dup_ack _ = ()
  let on_loss _ _ ~highest_sent:_ = ()
  let on_send _ ~seq:_ ~retransmit:_ = ()

  let on_rtt_sample t ~rtt =
    if rtt > 0. && rtt < t.min_rtt then t.min_rtt <- rtt

  let cwnd t = float_of_int (window t)
  let ssthresh t = float_of_int t.maxwnd
  let in_slow_start _ = false
  let in_recovery _ = false
  let reset t = t.min_rtt <- infinity
end

(* ------------------------------------------------------------------ *)
(* Fixed window (Figures 8-9)                                           *)
(* ------------------------------------------------------------------ *)

module Fixed = struct
  type t = { maxwnd : int; w : int }

  let id = "fixed"
  let describe = "fixed window w, no congestion control (Figures 8-9)"

  let create ~maxwnd ~params =
    Cc.check_params ~who:id ~allowed:[ "w" ] params;
    let w = int_of_float (Cc.param params "w" ~default:10.) in
    if w < 1 then invalid_arg "fixed: w must be >= 1";
    { maxwnd; w }

  let window t = max 1 (min t.w t.maxwnd)
  let on_ack _ ~ackno:_ ~newly:_ = false
  let on_dup_ack _ = ()
  let on_loss _ _ ~highest_sent:_ = ()
  let on_send _ ~seq:_ ~retransmit:_ = ()
  let on_rtt_sample _ ~rtt:_ = ()
  let cwnd t = float_of_int t.w
  let ssthresh t = float_of_int t.maxwnd
  let in_slow_start t = t.w < t.maxwnd  (* mirrors Cong: cwnd < ssthresh *)
  let in_recovery _ = false
  let reset _ = ()
end

(* ------------------------------------------------------------------ *)
(* Registration                                                         *)
(* ------------------------------------------------------------------ *)

let adaptive =
  [ "tahoe"; "tahoe-unmodified"; "reno"; "reno-unmodified"; "newreno";
    "aimd"; "compound" ]

let registered =
  lazy
    (List.iter Cc.register
       [
         classic_module ~id_:"tahoe"
           ~describe_:"4.3-Tahoe, modified CA increment (the paper's machine)"
           ~modified_ca:true ~fast_recovery:false ~newreno:false;
         classic_module ~id_:"tahoe-unmodified"
           ~describe_:"4.3-Tahoe with the original 1/cwnd CA increment"
           ~modified_ca:false ~fast_recovery:false ~newreno:false;
         classic_module ~id_:"reno"
           ~describe_:"4.3-Reno fast recovery, modified CA increment"
           ~modified_ca:true ~fast_recovery:true ~newreno:false;
         classic_module ~id_:"reno-unmodified"
           ~describe_:"4.3-Reno with the original 1/cwnd CA increment"
           ~modified_ca:false ~fast_recovery:true ~newreno:false;
         classic_module ~id_:"newreno"
           ~describe_:"Reno + partial-ACK recovery (RFC 6582 style)"
           ~modified_ca:true ~fast_recovery:true ~newreno:true;
         (module Aimd : Cc.S);
         (module Compound : Cc.S);
         (module Oracle : Cc.S);
         (module Fixed : Cc.S);
       ])

let ensure_registered () = Lazy.force registered
let () = ensure_registered ()
