type loss_reason = Dup_ack | Timeout

(* Referencing the zoo here forces its registration side effects to be
   linked into every program that links the sender. *)
let () = Cc_zoo.ensure_registered ()

type t = {
  net : Net.Network.t;
  sim : Engine.Sim.t;
  config : Config.t;
  cc : Cc.t;
  rto : Rto.t;
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable highest_sent : int;  (* largest seq ever transmitted; -1 if none *)
  mutable dup_acks : int;
  timer : Engine.Sim.Timer.timer;
      (* persistent retransmission timer: BSD cancels and restarts it on
         every ACK, so it is re-armed in place rather than reallocated *)
  mutable timing : (int * float) option;  (* (seq, send time) being timed *)
  mutable next_send : float;  (* pacing: earliest permitted injection *)
  pacer : Engine.Sim.Timer.timer;  (* persistent; armed only when pacing *)
  mutable data_sent : int;
  mutable retransmits : int;
  mutable timeouts : int;
  mutable fast_retransmits : int;
  mutable cwnd_hooks : (float -> cwnd:float -> ssthresh:float -> unit) list;
  mutable loss_hooks : (float -> loss_reason -> unit) list;
  mutable send_hooks : (float -> Net.Packet.t -> unit) list;
  mutable completed_at : float option;  (* sized flow fully acknowledged *)
  mutable complete_hooks : (float -> unit) list;
}

let nop () = ()

let make net config =
  let sim = Net.Network.sim net in
  {
    net;
    sim;
    config;
    cc = Cc.make config.Config.cc ~maxwnd:config.Config.maxwnd;
    rto = Rto.create config.Config.rto_params;
    snd_una = 0;
    snd_nxt = 0;
    highest_sent = -1;
    dup_acks = 0;
    timer = Engine.Sim.Timer.create sim nop;
    timing = None;
    next_send = 0.;
    pacer = Engine.Sim.Timer.create sim nop;
    data_sent = 0;
    retransmits = 0;
    timeouts = 0;
    fast_retransmits = 0;
    cwnd_hooks = [];
    loss_hooks = [];
    send_hooks = [];
    completed_at = None;
    complete_hooks = [];
  }

let config t = t.config
let cc t = t.cc
let cwnd t = Cc.cwnd t.cc
let ssthresh t = Cc.ssthresh t.cc
let snd_una t = t.snd_una
let snd_nxt t = t.snd_nxt
let outstanding t = t.snd_nxt - t.snd_una
let rto t = t.rto
let data_sent t = t.data_sent
let retransmits t = t.retransmits
let timeouts t = t.timeouts
let fast_retransmits t = t.fast_retransmits
let on_cwnd t f = t.cwnd_hooks <- f :: t.cwnd_hooks
let on_loss t f = t.loss_hooks <- f :: t.loss_hooks
let on_send t f = t.send_hooks <- f :: t.send_hooks
let on_complete t f = t.complete_hooks <- f :: t.complete_hooks
let completed_at t = t.completed_at
let completed t = t.completed_at <> None

(* Last packet of a sized flow (exclusive), or max_int for infinite data. *)
let flow_limit t =
  match t.config.Config.flow_size with Some n -> n | None -> max_int

let now t = Engine.Sim.now t.sim

let fire_cwnd t =
  let time = now t in
  List.iter
    (fun f -> f time ~cwnd:(Cc.cwnd t.cc) ~ssthresh:(Cc.ssthresh t.cc))
    t.cwnd_hooks

let fire_loss t reason =
  let time = now t in
  List.iter (fun f -> f time reason) t.loss_hooks

let cancel_timer t = Engine.Sim.Timer.cancel t.timer

let rec arm_timer t =
  (* Re-arming in place consumes exactly one sequence number, like the
     cancel-then-schedule it replaces, so event order is unchanged. *)
  if t.config.Config.loss_detection then
    Engine.Sim.Timer.set t.timer ~delay:(Rto.timeout t.rto)
  else cancel_timer t

and on_timeout t =
  if t.snd_una < t.snd_nxt then begin
    t.timeouts <- t.timeouts + 1;
    Rto.backoff t.rto;
    (* BSD zeroes the dup-ACK counter on timeout (but NOT on fast
       retransmit: there the counter keeps climbing past the threshold so
       the remaining duplicate ACKs of the old window cannot re-trigger). *)
    t.dup_acks <- 0;
    handle_loss t Timeout
  end

and handle_loss t reason =
  fire_loss t reason;
  (match reason with
   | Timeout ->
     Cc.on_loss t.cc Cc.Timeout ~highest_sent:t.highest_sent;
     fire_cwnd t;
     t.timing <- None;  (* Karn: no sample spans the retransmission *)
     (* Timeout recovery is go-back-N: resume from the hole. *)
     t.snd_nxt <- t.snd_una;
     try_send t
   | Dup_ack ->
     Cc.on_loss t.cc Cc.Fast_retransmit ~highest_sent:t.highest_sent;
     fire_cwnd t;
     t.timing <- None;
     (* Fast retransmit (both Tahoe and Reno) resends only the missing
        segment and then restores snd_nxt, so the packets that were in
        flight are not transmitted again (their duplicate ACKs must not be
        able to feed another recovery). *)
     let old_nxt = t.snd_nxt in
     send_one t t.snd_una;
     t.snd_nxt <- max old_nxt (t.snd_una + 1);
     (* Reno's inflated window may admit new data during recovery. *)
     try_send t);
  arm_timer t

and try_send t =
  match t.config.Config.pacing with
  | None ->
    (* Nonpaced: inject immediately while the window has room. *)
    let limit = min (t.snd_una + Cc.window t.cc) (flow_limit t) in
    while t.snd_nxt < limit do
      send_one t t.snd_nxt;
      t.snd_nxt <- t.snd_nxt + 1
    done
  | Some interval -> paced_send t interval

(* Paced transmission: at most one data packet per [interval], surplus
   window permission is spent by a self-rescheduling pacer event. *)
and paced_send t interval =
  let limit = min (t.snd_una + Cc.window t.cc) (flow_limit t) in
  if t.snd_nxt < limit then begin
    let now_ = now t in
    if now_ +. 1e-12 >= t.next_send then begin
      send_one t t.snd_nxt;
      t.snd_nxt <- t.snd_nxt + 1;
      t.next_send <- now_ +. interval
    end;
    if t.snd_nxt < limit then arm_pacer t interval
  end

and arm_pacer t _interval =
  (* The pacer's action (tied in [create]) already closes over the
     interval; firing disarms the timer, so [pending] gates re-arming. *)
  if not (Engine.Sim.Timer.pending t.pacer) then
    Engine.Sim.Timer.set t.pacer ~delay:(Float.max 0. (t.next_send -. now t))

and send_one t seq =
  let retransmit = seq <= t.highest_sent in
  if retransmit then t.retransmits <- t.retransmits + 1
  else begin
    t.data_sent <- t.data_sent + 1;
    t.highest_sent <- seq
  end;
  if t.timing = None && not retransmit then t.timing <- Some (seq, now t);
  Cc.on_send t.cc ~seq ~retransmit;
  let p =
    Net.Network.make_packet t.net ~conn:t.config.Config.conn ~kind:Net.Packet.Data
      ~seq ~size:t.config.Config.data_size ~src:t.config.Config.src_host
      ~dst:t.config.Config.dst_host ~retransmit
  in
  let time = now t in
  List.iter (fun f -> f time p) t.send_hooks;
  let inject () =
    Net.Network.send_from_host t.net ~host:t.config.Config.src_host p
  in
  (* A constant per-connection skew stretches this sender's RTT without
     reordering its packets (it models a longer access path). *)
  let skew = t.config.Config.rtt_skew in
  if skew > 0. then
    ignore (Engine.Sim.schedule t.sim ~delay:skew inject : Engine.Sim.handle)
  else inject ();
  if not (Engine.Sim.Timer.pending t.timer) then arm_timer t

let create net config =
  let t = make net config in
  Engine.Sim.Timer.set_action t.timer (fun () -> on_timeout t);
  (match config.Config.pacing with
   | Some interval ->
     Engine.Sim.Timer.set_action t.pacer (fun () -> paced_send t interval)
   | None -> ());
  t

let start t = try_send t

let on_ack t (p : Net.Packet.t) =
  let ackno = p.seq in
  if ackno > t.snd_una then begin
    (* New data acknowledged. *)
    (match t.timing with
     | Some (seq, sent_at) when ackno > seq ->
       let rtt = now t -. sent_at in
       Rto.sample t.rto rtt;
       Cc.on_rtt_sample t.cc ~rtt;
       t.timing <- None
     | _ -> ());
    Rto.reset_backoff t.rto;
    let newly = ackno - t.snd_una in
    t.snd_una <- ackno;
    (* A cumulative ACK during go-back-N recovery can overtake snd_nxt
       (the receiver had buffered the packets above the hole); never send
       below snd_una again. *)
    if t.snd_nxt < t.snd_una then t.snd_nxt <- t.snd_una;
    t.dup_acks <- 0;
    let retransmit_hole = Cc.on_ack t.cc ~ackno ~newly in
    fire_cwnd t;
    if t.snd_una >= t.snd_nxt then cancel_timer t else arm_timer t;
    (match t.config.Config.flow_size with
     | Some n when t.snd_una >= n && t.completed_at = None ->
       t.completed_at <- Some (now t);
       cancel_timer t;
       let time = now t in
       List.iter (fun f -> f time) t.complete_hooks
     | _ -> ());
    (* NewReno-style partial ACK: the controller stays in recovery and
       asks for the next hole to be retransmitted immediately. *)
    if retransmit_hole && t.snd_una < t.snd_nxt then begin
      t.timing <- None;  (* Karn: the retransmission makes samples ambiguous *)
      let old_nxt = t.snd_nxt in
      send_one t t.snd_una;
      t.snd_nxt <- max old_nxt (t.snd_una + 1)
    end;
    try_send t
  end
  else if ackno = t.snd_una && t.snd_nxt > t.snd_una then begin
    t.dup_acks <- t.dup_acks + 1;
    if t.config.Config.loss_detection then begin
      if t.dup_acks = t.config.Config.dupack_threshold then begin
        t.fast_retransmits <- t.fast_retransmits + 1;
        handle_loss t Dup_ack
      end
      else if t.dup_acks > t.config.Config.dupack_threshold
              && Cc.in_recovery t.cc
      then begin
        (* Reno: every further duplicate means a packet left the network;
           inflate and possibly transmit new data. *)
        Cc.on_dup_ack t.cc;
        fire_cwnd t;
        try_send t
      end
    end
  end
(* ackno < snd_una: stale ACK from before a recovery; ignore. *)
