(** Pluggable congestion control.

    The congestion controller is a first-class module: every algorithm
    implements {!S} (window arithmetic only — the sender owns
    retransmission, timers and pacing) and registers itself under a
    string key.  {!Sender} drives whatever instance its {!Config} names,
    so scenarios, sweeps and the CLI can swap algorithms without
    touching the transport machinery.

    A controller is named by a {!spec}: a registry key plus optional
    [k=v] float parameters, written ["name"] or ["name:k=v,k=v"]
    (e.g. ["aimd:a=1,b=0.7"]).  Unknown names and unknown parameter
    keys are rejected at instantiation, so a typo fails the run up
    front rather than silently running Tahoe.

    Window sizes are measured in units of maximum-size packets, as in
    the paper. *)

(** How a loss was detected.  [Fast_retransmit] is the dup-ACK
    threshold; [Timeout] is the retransmission timer (and always
    collapses adaptive controllers to slow start). *)
type reason = Fast_retransmit | Timeout

(** {1 Specs} *)

type spec = { name : string; params : (string * float) list }

val spec : ?params:(string * float) list -> string -> spec

(** Parse ["name"] or ["name:k=v,k=v"].  Purely syntactic — the name
    and keys are checked against the registry by {!make}. *)
val spec_of_string : string -> (spec, string) result

(** Inverse of {!spec_of_string} (parameters in order, [%g] floats). *)
val spec_to_string : spec -> string

(** The spec equivalent of a classic {!Cong.algorithm} variant. *)
val spec_of_algorithm : Cong.algorithm -> spec

(** {1 The module interface} *)

module type S = sig
  type t

  (** Registry key ("tahoe", "newreno", ...). *)
  val id : string

  (** One-line description for the zoo table. *)
  val describe : string

  (** [create ~maxwnd ~params] builds the initial state (slow start
      where applicable).  Must reject unknown parameter keys and
      out-of-range values with [Invalid_argument]. *)
  val create : maxwnd:int -> params:(string * float) list -> t

  (** An ACK of new data arrived: [ackno] is the new cumulative ACK,
      [newly] the number of packets it acknowledges.  Returns [true]
      when the controller remains in a recovery that requires the
      sender to retransmit the first unacknowledged segment (NewReno
      partial-ACK recovery); plain controllers always return [false]. *)
  val on_ack : t -> ackno:int -> newly:int -> bool

  (** A duplicate ACK beyond the fast-retransmit threshold (Reno-style
      window inflation; no-op elsewhere). *)
  val on_dup_ack : t -> unit

  (** Loss detected.  [highest_sent] is the largest sequence number
      transmitted so far (NewReno's recovery point). *)
  val on_loss : t -> reason -> highest_sent:int -> unit

  (** A data packet was handed to the network. *)
  val on_send : t -> seq:int -> retransmit:bool -> unit

  (** A Karn-valid RTT measurement (delay-based controllers). *)
  val on_rtt_sample : t -> rtt:float -> unit

  (** The usable window in whole packets: at least 1, at most the
      advertised [maxwnd]. *)
  val window : t -> int

  (** The continuous window (for traces; the effective total for
      hybrid controllers). *)
  val cwnd : t -> float

  val ssthresh : t -> float
  val in_slow_start : t -> bool
  val in_recovery : t -> bool

  (** Back to the initial state (new connection). *)
  val reset : t -> unit
end

(** {1 Running instances} *)

(** A packed instance: one controller's state behind the hooks. *)
type t

val instantiate : (module S) -> maxwnd:int -> params:(string * float) list -> t

(** Look the spec's name up in the registry and instantiate it.
    Raises [Invalid_argument] (listing the registered names) for an
    unknown name, and whatever the module's [create] raises for bad
    parameters. *)
val make : spec -> maxwnd:int -> t

val spec_of : t -> spec
val name : t -> string
val maxwnd : t -> int
val on_ack : t -> ackno:int -> newly:int -> bool
val on_dup_ack : t -> unit
val on_loss : t -> reason -> highest_sent:int -> unit
val on_send : t -> seq:int -> retransmit:bool -> unit
val on_rtt_sample : t -> rtt:float -> unit
val window : t -> int
val cwnd : t -> float
val ssthresh : t -> float
val in_slow_start : t -> bool
val in_recovery : t -> bool
val reset : t -> unit

(** {1 Registry} *)

(** Raises [Invalid_argument] on a duplicate key. *)
val register : (module S) -> unit

val find : string -> (module S) option

(** Registered keys, in registration order. *)
val names : unit -> string list

(** [(id, describe)] rows, in registration order. *)
val zoo : unit -> (string * string) list

(** {1 Parameter helpers for implementations} *)

(** [param params key ~default]. *)
val param : (string * float) list -> string -> default:float -> float

(** Reject keys outside [allowed] with [Invalid_argument]. *)
val check_params : who:string -> allowed:string list -> (string * float) list -> unit
