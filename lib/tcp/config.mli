(** Per-connection configuration.

    Defaults mirror the paper (§2.2): 500-byte data packets, 50-byte ACKs,
    [maxwnd = 1000] (never binding), delayed-ACK off, 3-dup-ACK fast
    retransmit, BSD-style coarse timers.  Set [loss_detection = false] for
    the fixed-window experiments, where retransmission logic is out of
    scope (infinite buffers, no drops). *)

type t = {
  conn : int;  (** connection id, unique per network *)
  src_host : int;  (** data source host *)
  dst_host : int;  (** data sink host *)
  data_size : int;  (** bytes *)
  ack_size : int;  (** bytes; 0 models the §4.3.3 zero-length-ACK system *)
  maxwnd : int;
  cc : Cc.spec;  (** congestion controller, resolved via the {!Cc} registry *)
  start_time : float;
  delayed_ack : bool;
  delack_timeout : float;  (** s *)
  dupack_threshold : int;
  loss_detection : bool;
  rto_params : Rto.params;
  pacing : float option;
      (** if [Some interval], data packets are never injected closer than
          [interval] seconds apart — the paper's "paced" class of
          algorithms (1, footnote 2).  [None] = nonpaced (BSD behavior). *)
  flow_size : int option;
      (** total packets to transfer; [None] = infinite source (the paper's
          workload).  A sized flow stops sending once every packet is
          acknowledged. *)
  rtt_skew : float;
      (** extra one-way latency (s) added to each data packet this sender
          injects, modeling a longer access path.  The paper's clustering
          analysis "depends in detail on the round-trip times of the
          various connections being identical" (3.1, 5); a nonzero skew
          breaks that assumption. *)
}

(** [?cc] names the congestion controller (default ["tahoe"]); [?algorithm]
    is the legacy closed-variant selector, mapped through
    {!Cc.spec_of_algorithm} and overridden by [?cc] when both are given.
    The spec is instantiated once here, so an unknown name or bad
    parameter raises [Invalid_argument] immediately. *)
val make :
  conn:int ->
  src_host:int ->
  dst_host:int ->
  ?data_size:int ->
  ?ack_size:int ->
  ?maxwnd:int ->
  ?algorithm:Cong.algorithm ->
  ?cc:Cc.spec ->
  ?start_time:float ->
  ?delayed_ack:bool ->
  ?delack_timeout:float ->
  ?dupack_threshold:int ->
  ?loss_detection:bool ->
  ?rto_params:Rto.params ->
  ?pacing:float option ->
  ?flow_size:int option ->
  ?rtt_skew:float ->
  unit ->
  t
