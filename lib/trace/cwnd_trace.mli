(** Records a sender's congestion window (and [ssthresh]) as step series,
    reproducing the cwnd graphs of Figures 2, 5 and 7. *)

type t

val attach : Tcp.Sender.t -> now:float -> t
val cwnd : t -> Series.t
val ssthresh : t -> Series.t

(** The sender's connection id. *)
val conn : t -> int
