type record = {
  time : float;
  conn : int;
  kind : Net.Packet.kind;
  sojourn : float;
}

type t = {
  link : Net.Link.t;
  entered : (int, float) Hashtbl.t;  (* packet id -> enqueue time *)
  mutable records : record list;  (* newest first *)
}

let attach link =
  let t = { link; entered = Hashtbl.create 64; records = [] } in
  Net.Link.on_enqueue link (fun time (p : Net.Packet.t) _qlen ->
      Hashtbl.replace t.entered p.id time);
  Net.Link.on_drop link (fun _time (p : Net.Packet.t) ->
      (* A random-drop or FQ eviction can remove an already-entered packet. *)
      Hashtbl.remove t.entered p.id);
  Net.Link.on_depart link (fun time (p : Net.Packet.t) _qlen ->
      match Hashtbl.find_opt t.entered p.id with
      | None -> ()
      | Some entered ->
        Hashtbl.remove t.entered p.id;
        t.records <-
          { time; conn = p.conn; kind = p.kind; sojourn = time -. entered }
          :: t.records);
  t

let link t = t.link
let records t = List.rev t.records

let in_window t ~t0 ~t1 =
  List.filter (fun r -> r.time >= t0 && r.time < t1) (records t)

let mean_sojourn t ~kind ~t0 ~t1 =
  let matching =
    List.filter (fun r -> r.kind = kind) (in_window t ~t0 ~t1)
  in
  match matching with
  | [] -> None
  | _ ->
    let total = List.fold_left (fun acc r -> acc +. r.sojourn) 0. matching in
    Some (total /. float_of_int (List.length matching))

let effective_pipe_packets t ~data_tx ~t0 ~t1 =
  if data_tx <= 0. then invalid_arg "Sojourn_trace: data_tx must be positive";
  match mean_sojourn t ~kind:Net.Packet.Ack ~t0 ~t1 with
  | None -> None
  | Some mean -> Some (mean /. data_tx)
