(** Records a link's buffer occupancy as a step {!Series}.

    A sample is appended at attach time and after every enqueue and
    departure, exactly reproducing the paper's queue-length graphs
    (including the high-frequency alternation between adjacent values as
    packets arrive and depart). *)

type t

val attach : Net.Link.t -> now:float -> t
val series : t -> Series.t
val link : t -> Net.Link.t

(** Maximum occupancy seen since attach. *)
val peak : t -> int
