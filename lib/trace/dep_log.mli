(** Log of packet departures from a link, the raw material for the
    clustering and ACK-compression analyses (§3.1, §4.2): which
    connection's packet left the bottleneck, of which kind, and when. *)

type record = { time : float; conn : int; kind : Net.Packet.kind; seq : int }

type t

val attach : Net.Link.t -> t
val link : t -> Net.Link.t

(** Departures in chronological order. *)
val records : t -> record list

val in_window : t -> t0:float -> t1:float -> record list
val total : t -> int
