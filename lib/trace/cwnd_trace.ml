type t = { conn : int; cwnd : Series.t; ssthresh : Series.t }

let attach sender ~now =
  let t =
    {
      conn = (Tcp.Sender.config sender).Tcp.Config.conn;
      cwnd = Series.create ();
      ssthresh = Series.create ();
    }
  in
  Series.add t.cwnd ~time:now ~value:(Tcp.Sender.cwnd sender);
  Series.add t.ssthresh ~time:now ~value:(Tcp.Sender.ssthresh sender);
  Tcp.Sender.on_cwnd sender (fun time ~cwnd ~ssthresh ->
      Series.add t.cwnd ~time ~value:cwnd;
      Series.add t.ssthresh ~time ~value:ssthresh);
  t

let cwnd t = t.cwnd
let ssthresh t = t.ssthresh
let conn t = t.conn
