(** Link utilization over a measurement window.

    Utilization is the fraction of wall-clock time the link's transmitter
    is busy — the measure the paper quotes (e.g. "the utilization on the
    line is roughly 91%"). *)

type t

(** Start measuring [link] at time [now]. *)
val start : Net.Link.t -> now:float -> t

val link : t -> Net.Link.t

(** Busy fraction between [start] and [now]; 0 over a zero-width window
    ([now] equal to the start time).
    @raise Invalid_argument if [now] is before the start time. *)
val utilization : t -> now:float -> float

(** Busy seconds between [start] and [now]; 0 over a zero-width window.
    @raise Invalid_argument if [now] is before the start time. *)
val busy_time : t -> now:float -> float
