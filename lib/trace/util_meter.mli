(** Link utilization over a measurement window.

    Utilization is the fraction of wall-clock time the link's transmitter
    is busy — the measure the paper quotes (e.g. "the utilization on the
    line is roughly 91%"). *)

type t

(** Start measuring [link] at time [now]. *)
val start : Net.Link.t -> now:float -> t

val link : t -> Net.Link.t

(** Busy fraction between [start] and [now].
    @raise Invalid_argument if [now] is not after the start time. *)
val utilization : t -> now:float -> float

(** Busy seconds between [start] and [now]. *)
val busy_time : t -> now:float -> float
