type t = { link : Net.Link.t; series : Series.t; mutable peak : int }

let attach link ~now =
  let t = { link; series = Series.create (); peak = Net.Link.queue_length link } in
  Series.add t.series ~time:now ~value:(float_of_int t.peak);
  let record time qlen =
    Series.add t.series ~time ~value:(float_of_int qlen);
    if qlen > t.peak then t.peak <- qlen
  in
  Net.Link.on_enqueue link (fun time _p qlen -> record time qlen);
  Net.Link.on_depart link (fun time _p qlen -> record time qlen);
  t

let series t = t.series
let link t = t.link
let peak t = t.peak
