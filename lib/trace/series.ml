type t = {
  mutable times : float array;
  mutable values : float array;
  mutable len : int;
}

let create () = { times = [||]; values = [||]; len = 0 }

let grow t =
  if t.len = Array.length t.times then begin
    let capacity = max 64 (2 * t.len) in
    let times = Array.make capacity 0. in
    let values = Array.make capacity 0. in
    Array.blit t.times 0 times 0 t.len;
    Array.blit t.values 0 values 0 t.len;
    t.times <- times;
    t.values <- values
  end

let add t ~time ~value =
  if t.len > 0 && time < t.times.(t.len - 1) then
    invalid_arg "Series.add: time went backwards";
  grow t;
  t.times.(t.len) <- time;
  t.values.(t.len) <- value;
  t.len <- t.len + 1

let length t = t.len
let is_empty t = t.len = 0

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Series.get: index out of range";
  (t.times.(i), t.values.(i))

let iter t ~f =
  for i = 0 to t.len - 1 do
    f ~time:t.times.(i) ~value:t.values.(i)
  done

let to_list t =
  let rec collect i acc =
    if i < 0 then acc else collect (i - 1) ((t.times.(i), t.values.(i)) :: acc)
  in
  collect (t.len - 1) []

let of_list samples =
  let t = create () in
  List.iter (fun (time, value) -> add t ~time ~value) samples;
  t

(* Index of the last sample with time <= [time], or -1. *)
let index_at t time =
  if t.len = 0 || time < t.times.(0) then -1
  else begin
    (* Binary search for the rightmost index with times.(i) <= time. *)
    let lo = ref 0 and hi = ref (t.len - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if t.times.(mid) <= time then lo := mid else hi := mid - 1
    done;
    !lo
  end

let value_at t ~time =
  let i = index_at t time in
  if i < 0 then None else Some t.values.(i)

let resample t ~t0 ~t1 ~dt =
  if t.len = 0 then invalid_arg "Series.resample: empty series";
  if dt <= 0. then invalid_arg "Series.resample: dt must be positive";
  if t1 <= t0 then invalid_arg "Series.resample: empty interval";
  let n = int_of_float (ceil ((t1 -. t0) /. dt -. 1e-9)) in
  (* The grid times are non-decreasing in k, so a single merge sweep
     replaces the per-point binary search: [j] tracks the last sample with
     times.(j) <= grid time and only ever moves forward. *)
  let out = Array.make n 0. in
  let j = ref (-1) in
  for k = 0 to n - 1 do
    let time = t0 +. (dt *. float_of_int k) in
    while !j + 1 < t.len && t.times.(!j + 1) <= time do incr j done;
    out.(k) <- (if !j < 0 then t.values.(0) else t.values.(!j))
  done;
  out

let window t ~t0 ~t1 =
  let acc = ref [] in
  for i = t.len - 1 downto 0 do
    if t.times.(i) >= t0 && t.times.(i) < t1 then
      acc := (t.times.(i), t.values.(i)) :: !acc
  done;
  !acc

let min_max t ~t0 ~t1 =
  if t.len = 0 || t.times.(0) > t1 then None
  else begin
    let start = max 0 (index_at t t0) in
    let lo = ref t.values.(start) and hi = ref t.values.(start) in
    let i = ref start in
    while !i < t.len && t.times.(!i) <= t1 do
      let v = t.values.(!i) in
      if v < !lo then lo := v;
      if v > !hi then hi := v;
      incr i
    done;
    Some (!lo, !hi)
  end

let mean t ~t0 ~t1 =
  if t.len = 0 || t.times.(0) > t1 || t1 <= t0 then None
  else begin
    let total = ref 0. in
    let start = max 0 (index_at t t0) in
    let i = ref start in
    let prev_time = ref t0 in
    let prev_value = ref t.values.(start) in
    (* Walk samples strictly inside the window, accumulating value*dt. *)
    incr i;
    while !i < t.len && t.times.(!i) < t1 do
      if t.times.(!i) > t0 then begin
        let time = Float.max t0 t.times.(!i) in
        total := !total +. (!prev_value *. (time -. !prev_time));
        prev_time := time;
        prev_value := t.values.(!i)
      end
      else prev_value := t.values.(!i);
      incr i
    done;
    total := !total +. (!prev_value *. (t1 -. !prev_time));
    Some (!total /. (t1 -. t0))
  end
