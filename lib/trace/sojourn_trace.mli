(** Per-packet queueing delay (sojourn) on a link.

    The paper's explanation of the residual idle time (§4.2, §4.3.1) is
    the {e effective pipe}: "whenever an ACK packet has to wait in a
    queue, the queueing delay has the same effect as increasing the pipe
    size".  This trace records, for each packet that leaves the link, how
    long it spent in the buffer (from acceptance to the end of its
    serialization), so that ACK queueing — and hence the effective pipe —
    can be measured directly. *)

type record = {
  time : float;  (** departure time *)
  conn : int;
  kind : Net.Packet.kind;
  sojourn : float;  (** seconds in the buffer, serialization included *)
}

type t

val attach : Net.Link.t -> t
val link : t -> Net.Link.t

(** Departures in chronological order. *)
val records : t -> record list

val in_window : t -> t0:float -> t1:float -> record list

(** Mean sojourn of packets of [kind] within the window.  [None] if there
    were none. *)
val mean_sojourn :
  t -> kind:Net.Packet.kind -> t0:float -> t1:float -> float option

(** The §4.2 effective-pipe contribution: mean ACK sojourn divided by
    [data_tx] (the data transmission time), i.e. how many extra
    packet-slots of pipe the queued ACKs add.  [None] if no ACKs
    departed. *)
val effective_pipe_packets :
  t -> data_tx:float -> t0:float -> t1:float -> float option
