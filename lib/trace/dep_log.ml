type record = { time : float; conn : int; kind : Net.Packet.kind; seq : int }

type t = { link : Net.Link.t; mutable records : record list (* newest first *) }

let attach link =
  let t = { link; records = [] } in
  Net.Link.on_depart link (fun time (p : Net.Packet.t) _qlen ->
      t.records <- { time; conn = p.conn; kind = p.kind; seq = p.seq } :: t.records);
  t

let link t = t.link
let records t = List.rev t.records

let in_window t ~t0 ~t1 =
  List.filter (fun r -> r.time >= t0 && r.time < t1) (records t)

let total t = List.length t.records
