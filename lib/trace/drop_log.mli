(** Log of packet drops, for loss-synchronization analysis.

    One log can watch several links (e.g. both bottleneck directions). *)

type record = {
  time : float;
  conn : int;
  kind : Net.Packet.kind;
  seq : int;
  link : int;  (** link id where the drop occurred *)
}

type t

val create : unit -> t
val watch : t -> Net.Link.t -> unit
val records : t -> record list

(** Drops in chronological order restricted to [t0 <= time < t1]. *)
val in_window : t -> t0:float -> t1:float -> record list

val total : t -> int
val data_drops : t -> int
val ack_drops : t -> int
