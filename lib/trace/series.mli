(** An event-driven step time series: a sequence of [(time, value)] samples
    where the value holds from its sample time until the next sample.
    Used for queue lengths and congestion windows, which change at discrete
    instants.  Sample times must be non-decreasing. *)

type t

val create : unit -> t

(** Append a sample.  @raise Invalid_argument if [time] precedes the last
    sample. *)
val add : t -> time:float -> value:float -> unit

val length : t -> int
val is_empty : t -> bool

(** [get s i] is the [i]-th sample. @raise Invalid_argument if out of range. *)
val get : t -> int -> float * float

val iter : t -> f:(time:float -> value:float -> unit) -> unit
val to_list : t -> (float * float) list
val of_list : (float * float) list -> t

(** Step-function value at [time]: the last sample at or before [time].
    [None] if [time] precedes the first sample. *)
val value_at : t -> time:float -> float option

(** Evenly resample on [\[t0, t1)] with period [dt] (step semantics).
    Times before the first sample yield the first sample's value.
    @raise Invalid_argument if the series is empty, [dt <= 0], or
    [t1 <= t0]. *)
val resample : t -> t0:float -> t1:float -> dt:float -> float array

(** Extremes of the step function over the window [\[t0, t1\]]; includes the
    value carried into the window.  [None] if the series is empty or starts
    after [t1]. *)
val min_max : t -> t0:float -> t1:float -> (float * float) option

(** Time-weighted mean of the step function over [\[t0, t1\]].
    [None] under the same conditions as {!min_max}. *)
val mean : t -> t0:float -> t1:float -> float option

(** Samples with [t0 <= time < t1], in order. *)
val window : t -> t0:float -> t1:float -> (float * float) list
