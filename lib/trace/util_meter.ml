type t = { link : Net.Link.t; t0 : float; busy0 : float }

let start link ~now = { link; t0 = now; busy0 = Net.Link.busy_time link ~now }
let link t = t.link

let busy_time t ~now =
  if now <= t.t0 then invalid_arg "Util_meter: empty measurement window";
  Net.Link.busy_time t.link ~now -. t.busy0

let utilization t ~now = busy_time t ~now /. (now -. t.t0)
