type t = { link : Net.Link.t; t0 : float; busy0 : float }

let start link ~now = { link; t0 = now; busy0 = Net.Link.busy_time link ~now }
let link t = t.link

let busy_time t ~now =
  if now < t.t0 then invalid_arg "Util_meter: negative measurement window";
  if now = t.t0 then 0.
  else Net.Link.busy_time t.link ~now -. t.busy0

let utilization t ~now =
  match busy_time t ~now with
  | 0. -> 0.
  | busy -> busy /. (now -. t.t0)
