type record = {
  time : float;
  conn : int;
  kind : Net.Packet.kind;
  seq : int;
  link : int;
}

type t = { mutable records : record list (* newest first *) }

let create () = { records = [] }

let watch t link =
  Net.Link.on_drop link (fun time (p : Net.Packet.t) ->
      t.records <-
        { time; conn = p.conn; kind = p.kind; seq = p.seq;
          link = Net.Link.id link }
        :: t.records)

let records t = List.rev t.records

let in_window t ~t0 ~t1 =
  List.filter (fun r -> r.time >= t0 && r.time < t1) (records t)

let total t = List.length t.records

let data_drops t =
  List.length (List.filter (fun r -> r.kind = Net.Packet.Data) t.records)

let ack_drops t =
  List.length (List.filter (fun r -> r.kind = Net.Packet.Ack) t.records)
