(** Discrete-event simulation driver.

    Events are arbitrary [unit -> unit] closures executed at their scheduled
    simulated time.  The clock only moves when the next event is dequeued;
    within a single instant events run in the order they were scheduled.

    {2 Error conventions}

    Every entry point that takes a time-like argument rejects NaN with
    ["Sim.<fn>: NaN <arg>"] and rejects values that would move the clock
    backwards with ["Sim.<fn>: ... is before current time <now>"] (for
    [schedule], a negative delay is reported as
    ["Sim.schedule: negative delay <d>"]). *)

type t

(** A handle on a scheduled event, usable to cancel it (e.g. TCP timers). *)
type handle

val create : unit -> t

(** Current simulated time, in seconds.  Starts at [0.]. *)
val now : t -> float

(** Number of events executed so far. *)
val events_run : t -> int

(** Number of handles currently sitting in the event queue, including
    cancelled ones that have not yet been compacted away.  Exposed so
    tests can assert that cancel-heavy workloads stay bounded. *)
val queue_length : t -> int

(** [on_event t f] registers an observer called with the clock value each
    time a non-cancelled event is about to execute.  Observers run before
    the event's action, in registration order — validate/trace hooks
    rely on running in the order they were installed.  Observers must not
    schedule or cancel events. *)
val on_event : t -> (float -> unit) -> unit

(** [schedule t ~delay f] runs [f] at [now t +. delay].
    @raise Invalid_argument if [delay] is negative or NaN. *)
val schedule : t -> delay:float -> (unit -> unit) -> handle

(** [at t ~time f] runs [f] at absolute [time].
    @raise Invalid_argument if [time] is in the past or NaN. *)
val at : t -> time:float -> (unit -> unit) -> handle

(** Cancel a scheduled event.  Cancelling an already-run or
    already-cancelled event is a no-op.  When the majority of the queue
    is cancelled handles (TCP RTO timers are cancelled and rescheduled on
    every ACK), the queue is compacted in place, so the heap never holds
    more than twice the number of live events (plus a small constant). *)
val cancel : handle -> unit

(** Has this handle's event neither run nor been cancelled yet? *)
val pending : handle -> bool

(** Run events until the event queue empties or the clock would pass
    [until].  Events scheduled exactly at [until] run.  On return [now t]
    is exactly [until].
    @raise Invalid_argument if [until] is before the current time or NaN. *)
val run : t -> until:float -> unit

(** Run every remaining event.  Intended for draining short simulations;
    diverges if events keep scheduling more events forever. *)
val run_to_completion : t -> unit

(** Execute a single event if one is pending at or before [until].
    Returns [false] when nothing was run. *)
val step : t -> until:float -> bool
