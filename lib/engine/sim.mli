(** Discrete-event simulation driver.

    Events are arbitrary [unit -> unit] closures executed at their scheduled
    simulated time.  The clock only moves when the next event is dequeued;
    within a single instant events run in the order they were scheduled.

    Internally every scheduled obligation is a slot in an indexed binary
    heap: cancelling removes it immediately and re-arming a {!Timer}
    re-keys it in place, so the per-event hot path performs no
    allocation (see DESIGN.md, "hot-path allocation model").

    {2 Error conventions}

    Every entry point that takes a time-like argument rejects NaN with
    ["Sim.<fn>: NaN <arg>"] and rejects values that would move the clock
    backwards with ["Sim.<fn>: ... is before current time <now>"] (for
    [schedule] and [Timer.set], a negative delay is reported as
    ["Sim.<fn>: negative delay <d>"]). *)

type t

(** A handle on a scheduled event, usable to cancel it (e.g. TCP timers). *)
type handle

val create : unit -> t

(** Current simulated time, in seconds.  Starts at [0.]. *)
val now : t -> float

(** Number of events executed so far. *)
val events_run : t -> int

(** Number of live events currently in the queue.  Cancelled events are
    removed from the heap immediately, so this is an exact count. *)
val queue_length : t -> int

(** [on_event t f] registers an observer called with the clock value each
    time a non-cancelled event is about to execute.  Observers run before
    the event's action, in registration order — validate/trace hooks
    rely on running in the order they were installed.  Observers must not
    schedule or cancel events. *)
val on_event : t -> (float -> unit) -> unit

(** [schedule t ~delay f] runs [f] at [now t +. delay].
    @raise Invalid_argument if [delay] is negative or NaN. *)
val schedule : t -> delay:float -> (unit -> unit) -> handle

(** [at t ~time f] runs [f] at absolute [time].
    @raise Invalid_argument if [time] is in the past or NaN. *)
val at : t -> time:float -> (unit -> unit) -> handle

(** Cancel a scheduled event: it is removed from the event queue on the
    spot (O(log n), no garbage, no deferred compaction).  Cancelling an
    already-run or already-cancelled event is a no-op. *)
val cancel : handle -> unit

(** Has this handle's event neither run nor been cancelled yet? *)
val pending : handle -> bool

(** {2 Reusable timers}

    A [Timer.timer] is allocated once per owner (a TCP connection's
    retransmission timer, a link's transmitter) and re-armed in place for
    the rest of the run: [Timer.set] on an armed timer mutates its heap
    slot — new time, fresh sequence number — instead of minting a new
    closure and handle, so per-ACK RTO churn allocates nothing.

    Re-arming takes a fresh sequence number at the call site, exactly as
    a cancel + schedule pair would, so same-instant delivery order is
    identical to the closure API's. *)
module Timer : sig
  type timer

  (** [create sim f] makes a disarmed timer that runs [f] when it fires.
      Allocates once; every subsequent [set]/[cancel] is allocation-free. *)
  val create : t -> (unit -> unit) -> timer

  (** Replace the timer's action.  Intended for tying the knot when the
      action must close over a record that contains the timer itself. *)
  val set_action : timer -> (unit -> unit) -> unit

  (** [set tm ~delay] (re-)arms the timer to fire at [now + delay],
      replacing any pending arming.
      @raise Invalid_argument if [delay] is negative or NaN. *)
  val set : timer -> delay:float -> unit

  (** [set_at tm ~time] (re-)arms the timer to fire at absolute [time].
      @raise Invalid_argument if [time] is in the past or NaN. *)
  val set_at : timer -> time:float -> unit

  (** Disarm the timer.  No-op if it is not armed. *)
  val cancel : timer -> unit

  (** Is the timer armed (set, not yet fired, not cancelled)? *)
  val pending : timer -> bool
end

(** Run events until the event queue empties or the clock would pass
    [until].  Events scheduled exactly at [until] run.  On return [now t]
    is exactly [until].
    @raise Invalid_argument if [until] is before the current time or NaN. *)
val run : t -> until:float -> unit

(** Run every remaining event.  Intended for draining short simulations;
    diverges if events keep scheduling more events forever. *)
val run_to_completion : t -> unit

(** {2 Guarded execution (watchdogs)}

    [run_guarded] is [run] with budgets enforced from inside the event
    loop, so a runaway simulation terminates gracefully instead of
    hanging its process.  It is a separate loop: unbudgeted callers of
    {!run} keep the untouched allocation-free hot path. *)

(** Why a guarded run returned. *)
type stop_reason =
  | Completed  (** queue drained or horizon reached — same as {!run} *)
  | Event_budget of int  (** [max_events] reached; payload = events run *)
  | Wall_budget of float
      (** [max_wall] exceeded; payload = elapsed wall seconds *)
  | Stop_requested  (** the [stop] predicate returned [true] *)

val stop_reason_to_string : stop_reason -> string

(** [run_guarded t ~until ?max_events ?max_wall ?wall_clock ?stop ()]
    runs events as {!run} does, returning the reason it stopped.

    - [max_events]: execute at most this many events {e in this call}.
    - [max_wall]: stop once [wall_clock () - start] exceeds this many
      seconds.  [wall_clock] defaults to [Sys.time] (process CPU time);
      pass [Unix.gettimeofday] for wall time — the engine itself stays
      Unix-free.
    - [stop]: cooperative cancellation, polled (like the wall clock)
      every 1024 events.

    On [Completed] the clock lands exactly on [until], as in {!run}; on
    any early stop it stays at the last executed event's time, the
    remaining events stay queued, and the run can be resumed by calling
    [run] or [run_guarded] again.  Event and wall budgets count from
    this call's start, so a resumed run gets a fresh budget.
    @raise Invalid_argument if [until] is before the current time or
    NaN. *)
val run_guarded :
  t ->
  until:float ->
  ?max_events:int ->
  ?max_wall:float ->
  ?wall_clock:(unit -> float) ->
  ?stop:(unit -> bool) ->
  unit ->
  stop_reason

(** Execute a single event if one is pending at or before [until].
    Returns [false] when nothing was run. *)
val step : t -> until:float -> bool
