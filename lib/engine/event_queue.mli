(** Priority queue of timestamped events.

    A binary min-heap keyed on [(time, seq)] where [seq] is a strictly
    increasing insertion counter, so events scheduled for the same instant
    are delivered in insertion order.  Deterministic delivery order is what
    makes simulation runs reproducible. *)

type 'a t

val create : unit -> 'a t

(** [add q ~time x] inserts [x] with priority [time].
    @raise Invalid_argument if [time] is NaN. *)
val add : 'a t -> time:float -> 'a -> unit

(** Remove and return the earliest event, or [None] if empty. *)
val pop : 'a t -> (float * 'a) option

(** Earliest event without removing it. *)
val peek : 'a t -> (float * 'a) option

val length : 'a t -> int
val is_empty : 'a t -> bool

(** Remove all events.  The insertion counter is preserved. *)
val clear : 'a t -> unit

(** Apply [f] to every queued event, in no particular order. *)
val iter : 'a t -> f:(time:float -> 'a -> unit) -> unit
