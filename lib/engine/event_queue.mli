(** Priority queue of timestamped events.

    A binary min-heap keyed on [(time, seq)] where [seq] is a strictly
    increasing insertion counter, so events scheduled for the same instant
    are delivered in insertion order.  Deterministic delivery order is what
    makes simulation runs reproducible. *)

type 'a t

val create : unit -> 'a t

(** [add q ~time x] inserts [x] with priority [time].
    @raise Invalid_argument if [time] is NaN. *)
val add : 'a t -> time:float -> 'a -> unit

(** Remove and return the earliest event, or [None] if empty.  The
    vacated internal slot is cleared, so the queue holds no reference to
    the returned payload afterwards (popped event closures are
    collectable immediately, not when their slot happens to be reused). *)
val pop : 'a t -> (float * 'a) option

(** Earliest event without removing it. *)
val peek : 'a t -> (float * 'a) option

val length : 'a t -> int
val is_empty : 'a t -> bool

(** Remove all events and release the backing storage, so every queued
    payload becomes collectable at once.  The insertion counter is
    preserved. *)
val clear : 'a t -> unit

(** Apply [f] to every queued event, in no particular order. *)
val iter : 'a t -> f:(time:float -> 'a -> unit) -> unit

(** [filter_in_place q ~f] removes every event whose payload fails [f],
    in O(n log n), releasing the removed payloads.  Surviving events keep
    their relative delivery order, including same-time FIFO ties — the
    result is indistinguishable from a queue into which the removed
    events were never inserted.  Used by {!Sim} to compact
    cancelled-but-not-yet-due timer handles. *)
val filter_in_place : 'a t -> f:('a -> bool) -> unit
