(** Unit helpers shared by the network model and experiment configs.

    Times are seconds, sizes are bytes, rates are bits per second —
    everywhere, so conversions happen only through this module. *)

val bits_of_bytes : int -> float

(** Serialization delay of [bytes] on a link of [rate_bps] bits/s.
    @raise Invalid_argument if [rate_bps <= 0.]. *)
val transmission_time : bytes:int -> rate_bps:float -> float

val kbps : float -> float
val mbps : float -> float
val ms : float -> float
val usec : float -> float

(** Bandwidth-delay product in packets, the paper's pipe size
    [P = rate * delay / packet_size]. *)
val pipe_size : rate_bps:float -> delay:float -> packet_bytes:int -> float

(** [pp_time] prints a duration with an adaptive unit (s/ms/us). *)
val pp_time : Format.formatter -> float -> unit
