(* The scheduler is an *indexed* binary min-heap over parallel arrays:

     times : float array     primary key (flat, unboxed)
     seqs  : int array       tie-break key (insertion counter)
     heap  : timer array     payloads; [heap.(i).pos = i] always

   Every scheduled obligation — a one-shot closure from [schedule]/[at]
   or a reusable [Timer] — is a [timer] record that knows its own heap
   index, so cancel and re-arm are O(log n) in-place operations that
   produce no garbage: no closure, no handle record, no heap entry is
   allocated on the per-event hot path.  Re-arming assigns a fresh
   sequence number at the call site, exactly as cancel+schedule used to,
   so (time, seq) delivery order — and with it every golden trace — is
   unchanged.  Cancelled timers leave the heap immediately, which also
   retires the old lazy-compaction machinery: [queue_length] is now the
   exact live event count.

   The clock lives in a 1-element float array rather than a mutable
   float field: a float field of a mixed record is boxed, so assigning
   it on every event would allocate; a flat float array slot does not. *)

type t = {
  clock : float array; (* 1 cell *)
  mutable executed : int;
  mutable times : float array;
  mutable seqs : int array;
  mutable heap : timer array;
  mutable size : int;
  mutable next_seq : int;
  mutable observers : (float -> unit) list;  (* in registration order *)
  sentinel : timer;
      (* fills vacated heap slots so popped timers (and the closures they
         carry) are collectable immediately, not when the slot is reused *)
}

and timer = {
  owner : t;
  mutable action : unit -> unit;
  mutable pos : int;  (* index into the heap arrays, or -1 when disarmed *)
}

type handle = timer

let nop () = ()

let create () =
  let rec t =
    {
      clock = [| 0. |];
      executed = 0;
      times = [||];
      seqs = [||];
      heap = [||];
      size = 0;
      next_seq = 0;
      observers = [];
      sentinel;
    }
  and sentinel = { owner = t; action = nop; pos = -1 } in
  t

let[@inline] now t = t.clock.(0)
let events_run t = t.executed
let queue_length t = t.size

(* Registration is rare and iteration is the hot path, so keep the list
   in registration order (append) rather than reversing on every event:
   validate/trace hooks rely on running in install order. *)
let on_event t f = t.observers <- t.observers @ [ f ]

(* ------------------------------------------------------------------ *)
(* Indexed heap plumbing                                               *)
(* ------------------------------------------------------------------ *)

let initial_capacity = 64

let grow t =
  let cap = Array.length t.heap in
  if t.size = cap then begin
    let ncap = if cap = 0 then initial_capacity else 2 * cap in
    let times = Array.make ncap 0. in
    let seqs = Array.make ncap 0 in
    let heap = Array.make ncap t.sentinel in
    Array.blit t.times 0 times 0 t.size;
    Array.blit t.seqs 0 seqs 0 t.size;
    Array.blit t.heap 0 heap 0 t.size;
    t.times <- times;
    t.seqs <- seqs;
    t.heap <- heap
  end

let[@inline] entry_before t i j =
  let ti = t.times.(i) and tj = t.times.(j) in
  ti < tj || (ti = tj && t.seqs.(i) < t.seqs.(j))

let[@inline] swap t i j =
  let ti = t.times.(i) in
  t.times.(i) <- t.times.(j);
  t.times.(j) <- ti;
  let si = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- si;
  let hi = t.heap.(i) and hj = t.heap.(j) in
  t.heap.(i) <- hj;
  t.heap.(j) <- hi;
  hj.pos <- i;
  hi.pos <- j

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_before t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 in
  if left < t.size then begin
    let smallest = if entry_before t left i then left else i in
    let right = left + 1 in
    let smallest =
      if right < t.size && entry_before t right smallest then right
      else smallest
    in
    if smallest <> i then begin
      swap t smallest i;
      sift_down t smallest
    end
  end

(* Insert a disarmed timer with a fresh sequence number. *)
let arm t tm ~time =
  grow t;
  let i = t.size in
  t.size <- i + 1;
  t.times.(i) <- time;
  t.seqs.(i) <- t.next_seq;
  t.next_seq <- t.next_seq + 1;
  t.heap.(i) <- tm;
  tm.pos <- i;
  sift_up t i

(* Re-key an armed timer in place.  The fresh seq is larger than every
   seq already in the heap, so when the time does not strictly decrease
   the entry can only sink; when it strictly decreases it can only
   rise (its new key is then strictly below both children's). *)
let rekey t tm ~time =
  let i = tm.pos in
  let old_time = t.times.(i) in
  t.times.(i) <- time;
  t.seqs.(i) <- t.next_seq;
  t.next_seq <- t.next_seq + 1;
  if time < old_time then sift_up t i else sift_down t i

(* Remove an armed timer: classic indexed-heap deletion (move the last
   entry into the hole, then restore the heap property in whichever
   direction it is violated). *)
let remove t tm =
  let i = tm.pos in
  tm.pos <- -1;
  let last = t.size - 1 in
  t.size <- last;
  if i < last then begin
    t.times.(i) <- t.times.(last);
    t.seqs.(i) <- t.seqs.(last);
    let moved = t.heap.(last) in
    t.heap.(i) <- moved;
    moved.pos <- i;
    t.heap.(last) <- t.sentinel;
    if i > 0 && entry_before t i ((i - 1) / 2) then sift_up t i
    else sift_down t i
  end
  else t.heap.(last) <- t.sentinel

(* Remove and return the root.  The caller has already read its time. *)
let pop_min t =
  let tm = t.heap.(0) in
  tm.pos <- -1;
  let last = t.size - 1 in
  t.size <- last;
  if last > 0 then begin
    t.times.(0) <- t.times.(last);
    t.seqs.(0) <- t.seqs.(last);
    let moved = t.heap.(last) in
    t.heap.(0) <- moved;
    moved.pos <- 0;
    t.heap.(last) <- t.sentinel;
    sift_down t 0
  end
  else t.heap.(last) <- t.sentinel;
  tm

(* ------------------------------------------------------------------ *)
(* One-shot scheduling (legacy closure API, built on the same timers)   *)
(* ------------------------------------------------------------------ *)

let at t ~time f =
  if Float.is_nan time then invalid_arg "Sim.at: NaN time";
  if time < t.clock.(0) then
    invalid_arg
      (Printf.sprintf "Sim.at: time %g is before current time %g" time
         t.clock.(0));
  let tm = { owner = t; action = f; pos = -1 } in
  arm t tm ~time;
  tm

let schedule t ~delay f =
  if Float.is_nan delay then invalid_arg "Sim.schedule: NaN delay";
  if delay < 0. then
    invalid_arg (Printf.sprintf "Sim.schedule: negative delay %g" delay);
  at t ~time:(t.clock.(0) +. delay) f

let cancel tm = if tm.pos >= 0 then remove tm.owner tm
let pending tm = tm.pos >= 0

(* ------------------------------------------------------------------ *)
(* Reusable timers                                                     *)
(* ------------------------------------------------------------------ *)

module Timer = struct
  type timer = handle

  let create owner action = { owner; action; pos = -1 }
  let set_action tm f = tm.action <- f

  let set_at tm ~time =
    let t = tm.owner in
    if Float.is_nan time then invalid_arg "Sim.Timer.set_at: NaN time";
    if time < t.clock.(0) then
      invalid_arg
        (Printf.sprintf "Sim.Timer.set_at: time %g is before current time %g"
           time t.clock.(0));
    if tm.pos >= 0 then rekey t tm ~time else arm t tm ~time

  let set tm ~delay =
    let t = tm.owner in
    if Float.is_nan delay then invalid_arg "Sim.Timer.set: NaN delay";
    if delay < 0. then
      invalid_arg (Printf.sprintf "Sim.Timer.set: negative delay %g" delay);
    let time = t.clock.(0) +. delay in
    if tm.pos >= 0 then rekey t tm ~time else arm t tm ~time

  let cancel = cancel
  let pending = pending
end

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let execute t tm =
  t.executed <- t.executed + 1;
  (match t.observers with
   | [] -> ()
   | obs ->
     let time = t.clock.(0) in
     List.iter (fun f -> f time) obs);
  tm.action ()

let step t ~until =
  if t.size = 0 then false
  else begin
    let time = t.times.(0) in
    if time > until then false
    else begin
      let tm = pop_min t in
      t.clock.(0) <- time;
      execute t tm;
      true
    end
  end

let run t ~until =
  if Float.is_nan until then invalid_arg "Sim.run: NaN horizon";
  if until < t.clock.(0) then
    invalid_arg
      (Printf.sprintf "Sim.run: horizon %g is before current time %g" until
         t.clock.(0));
  let continue = ref true in
  while !continue do
    if t.size = 0 then continue := false
    else begin
      let time = t.times.(0) in
      if time > until then continue := false
      else begin
        let tm = pop_min t in
        t.clock.(0) <- time;
        execute t tm
      end
    end
  done;
  (* The queue is drained of events at or before [until]; the clock always
     lands exactly on the horizon. *)
  t.clock.(0) <- until

(* ------------------------------------------------------------------ *)
(* Guarded execution (watchdogs)                                       *)
(* ------------------------------------------------------------------ *)

type stop_reason =
  | Completed
  | Event_budget of int
  | Wall_budget of float
  | Stop_requested

let stop_reason_to_string = function
  | Completed -> "completed"
  | Event_budget n -> Printf.sprintf "event budget exhausted (%d events)" n
  | Wall_budget s -> Printf.sprintf "wall-clock budget exhausted (%.3gs)" s
  | Stop_requested -> "stop requested"

(* Wall clock and stop predicate are polled once per [guard_mask + 1]
   events (~0.2 ms of hot-path work); the event budget is a single int
   compare so it is checked every iteration.  This loop is deliberately
   separate from [run]: unbudgeted runs keep the untouched hot path. *)
let guard_mask = 1023

let run_guarded t ~until ?max_events ?max_wall ?(wall_clock = Sys.time)
    ?(stop = fun () -> false) () =
  if Float.is_nan until then invalid_arg "Sim.run_guarded: NaN horizon";
  if until < t.clock.(0) then
    invalid_arg
      (Printf.sprintf "Sim.run_guarded: horizon %g is before current time %g"
         until t.clock.(0));
  let wall0 = match max_wall with Some _ -> wall_clock () | None -> 0. in
  let executed0 = t.executed in
  let reason = ref Completed in
  let continue = ref true in
  while !continue do
    if t.size = 0 then continue := false
    else begin
      let time = t.times.(0) in
      if time > until then continue := false
      else begin
        let ran = t.executed - executed0 in
        (match max_events with
         | Some m when ran >= m ->
           reason := Event_budget ran;
           continue := false
         | _ -> ());
        if !continue && ran land guard_mask = 0 then
          if stop () then begin
            reason := Stop_requested;
            continue := false
          end
          else (
            match max_wall with
            | Some w ->
              let elapsed = wall_clock () -. wall0 in
              if elapsed > w then begin
                reason := Wall_budget elapsed;
                continue := false
              end
            | None -> ());
        if !continue then begin
          let tm = pop_min t in
          t.clock.(0) <- time;
          execute t tm
        end
      end
    end
  done;
  (* On completion the clock lands exactly on the horizon, as in [run];
     on an early stop it stays at the last executed event so the partial
     state is internally consistent and the run can be resumed. *)
  if !reason = Completed then t.clock.(0) <- until;
  !reason

let run_to_completion t =
  while t.size > 0 do
    let time = t.times.(0) in
    let tm = pop_min t in
    t.clock.(0) <- time;
    execute t tm
  done
