type event = { action : unit -> unit; mutable cancelled : bool }

type t = {
  mutable clock : float;
  mutable executed : int;
  queue : handle Event_queue.t;
  mutable observers : (float -> unit) list;  (* in registration order *)
  mutable cancelled_pending : int;
      (* cancelled handles still sitting in [queue]; drives compaction *)
}

and handle = { event : event; mutable fired : bool; sim : t }

let create () =
  {
    clock = 0.;
    executed = 0;
    queue = Event_queue.create ();
    observers = [];
    cancelled_pending = 0;
  }

let now t = t.clock
let events_run t = t.executed
let queue_length t = Event_queue.length t.queue

(* Registration is rare and iteration is the hot path, so keep the list
   in registration order (append) rather than reversing on every event:
   validate/trace hooks rely on running in install order. *)
let on_event t f = t.observers <- t.observers @ [ f ]

let at t ~time f =
  if Float.is_nan time then invalid_arg "Sim.at: NaN time";
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.at: time %g is before current time %g" time t.clock);
  let handle = { event = { action = f; cancelled = false }; fired = false; sim = t } in
  Event_queue.add t.queue ~time handle;
  handle

let schedule t ~delay f =
  if Float.is_nan delay then invalid_arg "Sim.schedule: NaN delay";
  if delay < 0. then
    invalid_arg (Printf.sprintf "Sim.schedule: negative delay %g" delay);
  at t ~time:(t.clock +. delay) f

(* Below this queue length a compaction pass costs more than it frees. *)
let compaction_threshold = 64

let cancel handle =
  if (not handle.fired) && not handle.event.cancelled then begin
    handle.event.cancelled <- true;
    (* TCP retransmission timers are cancelled and rescheduled on every
       ACK, so dead handles would otherwise pile up in the heap until
       their scheduled time (an RTO in the future).  Compact once the
       majority of the queue is dead: amortized O(1) per cancel, and the
       queue length stays within 2x the live event count. *)
    let t = handle.sim in
    t.cancelled_pending <- t.cancelled_pending + 1;
    let len = Event_queue.length t.queue in
    if len >= compaction_threshold && 2 * t.cancelled_pending > len then begin
      Event_queue.filter_in_place t.queue ~f:(fun h -> not h.event.cancelled);
      t.cancelled_pending <- 0
    end
  end

let pending handle = (not handle.fired) && not handle.event.cancelled

let execute t handle =
  handle.fired <- true;
  if handle.event.cancelled then
    (* Popped before compaction claimed it: it no longer counts toward
       the dead fraction of the queue. *)
    t.cancelled_pending <- t.cancelled_pending - 1
  else begin
    t.executed <- t.executed + 1;
    (match t.observers with
     | [] -> ()
     | obs -> List.iter (fun f -> f t.clock) obs);
    handle.event.action ()
  end

let step t ~until =
  match Event_queue.peek t.queue with
  | None -> false
  | Some (time, _) when time > until -> false
  | Some _ ->
    (match Event_queue.pop t.queue with
     | None -> false
     | Some (time, handle) ->
       t.clock <- time;
       execute t handle;
       true)

let run t ~until =
  if Float.is_nan until then invalid_arg "Sim.run: NaN horizon";
  if until < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.run: horizon %g is before current time %g" until
         t.clock);
  while step t ~until do
    ()
  done;
  (* The queue is drained of events at or before [until]; the clock always
     lands exactly on the horizon. *)
  t.clock <- until

let run_to_completion t =
  let continue = ref true in
  while !continue do
    match Event_queue.pop t.queue with
    | None -> continue := false
    | Some (time, handle) ->
      t.clock <- time;
      execute t handle
  done
