type event = { action : unit -> unit; mutable cancelled : bool }
type handle = { event : event; mutable fired : bool }

type t = {
  mutable clock : float;
  mutable executed : int;
  queue : handle Event_queue.t;
  mutable observers : (float -> unit) list;
}

let create () =
  { clock = 0.; executed = 0; queue = Event_queue.create (); observers = [] }

let now t = t.clock
let events_run t = t.executed
let on_event t f = t.observers <- f :: t.observers

let at t ~time f =
  if Float.is_nan time then invalid_arg "Sim.at: NaN time";
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.at: time %g is before current time %g" time t.clock);
  let handle = { event = { action = f; cancelled = false }; fired = false } in
  Event_queue.add t.queue ~time handle;
  handle

let schedule t ~delay f =
  if Float.is_nan delay then invalid_arg "Sim.schedule: NaN delay";
  if delay < 0. then
    invalid_arg (Printf.sprintf "Sim.schedule: negative delay %g" delay);
  at t ~time:(t.clock +. delay) f

let cancel handle = handle.event.cancelled <- true
let pending handle = (not handle.fired) && not handle.event.cancelled

let execute t handle =
  handle.fired <- true;
  if not handle.event.cancelled then begin
    t.executed <- t.executed + 1;
    (match t.observers with
     | [] -> ()
     | obs -> List.iter (fun f -> f t.clock) obs);
    handle.event.action ()
  end

let step t ~until =
  match Event_queue.peek t.queue with
  | None -> false
  | Some (time, _) when time > until -> false
  | Some _ ->
    (match Event_queue.pop t.queue with
     | None -> false
     | Some (time, handle) ->
       t.clock <- time;
       execute t handle;
       true)

let run t ~until =
  if Float.is_nan until then invalid_arg "Sim.run: NaN horizon";
  if until < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.run: horizon %g is before current time %g" until
         t.clock);
  while step t ~until do
    ()
  done;
  (* The queue is drained of events at or before [until]; the clock always
     lands exactly on the horizon. *)
  t.clock <- until

let run_to_completion t =
  let continue = ref true in
  while !continue do
    match Event_queue.pop t.queue with
    | None -> continue := false
    | Some (time, handle) ->
      t.clock <- time;
      execute t handle
  done
