type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

(* splitmix64 step: good statistical quality, trivially reproducible. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let float t =
  (* Use the top 53 bits to build a double in [0, 1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.

let int t ~bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  int_of_float (float t *. float_of_int bound)

let uniform t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.uniform: hi < lo";
  lo +. ((hi -. lo) *. float t)

let exponential t ~mean =
  if mean <= 0. then invalid_arg "Rng.exponential: mean must be positive";
  let u = float t in
  (* [u] is in [0, 1); [1 - u] is in (0, 1] so the log is finite. *)
  -.mean *. log (1. -. u)

let split t =
  let seed = Int64.to_int (next_int64 t) in
  create ~seed
