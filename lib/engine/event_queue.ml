type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  (* [heap.(0 .. size-1)] is a binary min-heap ordered by [(time, seq)].
     Slots at indices >= size always hold [sentinel], never a stale entry:
     a vacated slot that kept pointing at its old entry would keep the
     payload (typically an event closure and everything it captures) alive
     until the slot is overwritten by a later [add] — a space leak under
     timer churn. *)
  mutable size : int;
  mutable next_seq : int;
}

let initial_capacity = 64

(* One sentinel record serves every ['a]: its [payload] field is written
   into slots outside the heap but never read ([peek]/[pop]/[iter] only
   touch indices < size), so the cast cannot be observed.  The entry is a
   mixed float/int/pointer record, hence boxed, hence representable
   uniformly for any ['a]. *)
let sentinel_entry : Obj.t entry =
  { time = neg_infinity; seq = -1; payload = Obj.repr () }

let sentinel () : 'a entry = Obj.magic sentinel_entry

let create () = { heap = [||]; size = 0; next_seq = 0 }

let entry_before a b =
  a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap q i j =
  let tmp = q.heap.(i) in
  q.heap.(i) <- q.heap.(j);
  q.heap.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_before q.heap.(i) q.heap.(parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < q.size && entry_before q.heap.(left) q.heap.(!smallest) then
    smallest := left;
  if right < q.size && entry_before q.heap.(right) q.heap.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let grow q =
  let capacity = Array.length q.heap in
  if q.size = capacity then begin
    let new_capacity = max initial_capacity (2 * capacity) in
    (* Fill with the sentinel, not the incoming entry: filler copies of a
       live entry in slots > size would pin its payload after it pops. *)
    let heap = Array.make new_capacity (sentinel ()) in
    Array.blit q.heap 0 heap 0 q.size;
    q.heap <- heap
  end

let add q ~time payload =
  if Float.is_nan time then invalid_arg "Event_queue.add: NaN time";
  let entry = { time; seq = q.next_seq; payload } in
  q.next_seq <- q.next_seq + 1;
  grow q;
  q.heap.(q.size) <- entry;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let peek q =
  if q.size = 0 then None
  else
    let e = q.heap.(0) in
    Some (e.time, e.payload)

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      q.heap.(q.size) <- sentinel ();
      sift_down q 0
    end
    else q.heap.(0) <- sentinel ();
    Some (top.time, top.payload)
  end

let length q = q.size
let is_empty q = q.size = 0

let clear q =
  (* Drop the whole array rather than sentinel each slot: releases every
     payload in O(1) and lets the capacity rebuild on demand. *)
  q.heap <- [||];
  q.size <- 0

let iter q ~f =
  for i = 0 to q.size - 1 do
    let e = q.heap.(i) in
    f ~time:e.time e.payload
  done

let filter_in_place q ~f =
  let kept = ref [] in
  for i = q.size - 1 downto 0 do
    let e = q.heap.(i) in
    if f e.payload then kept := e :: !kept;
    q.heap.(i) <- sentinel ()
  done;
  let arr = Array.of_list !kept in
  (* A (time, seq)-sorted array is a valid binary min-heap, and keeping
     the original seq numbers preserves same-time FIFO delivery exactly
     as if the removed entries had never been scheduled. *)
  Array.sort
    (fun a b -> if entry_before a b then -1 else if entry_before b a then 1 else 0)
    arr;
  Array.blit arr 0 q.heap 0 (Array.length arr);
  q.size <- Array.length arr
