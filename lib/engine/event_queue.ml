type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  (* [heap.(0 .. size-1)] is a binary min-heap ordered by [(time, seq)]. *)
  mutable size : int;
  mutable next_seq : int;
}

let initial_capacity = 64

let create () = { heap = [||]; size = 0; next_seq = 0 }

let entry_before a b =
  a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap q i j =
  let tmp = q.heap.(i) in
  q.heap.(i) <- q.heap.(j);
  q.heap.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_before q.heap.(i) q.heap.(parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < q.size && entry_before q.heap.(left) q.heap.(!smallest) then
    smallest := left;
  if right < q.size && entry_before q.heap.(right) q.heap.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let grow q entry =
  let capacity = Array.length q.heap in
  if q.size = capacity then begin
    let new_capacity = max initial_capacity (2 * capacity) in
    let heap = Array.make new_capacity entry in
    Array.blit q.heap 0 heap 0 q.size;
    q.heap <- heap
  end

let add q ~time payload =
  if Float.is_nan time then invalid_arg "Event_queue.add: NaN time";
  let entry = { time; seq = q.next_seq; payload } in
  q.next_seq <- q.next_seq + 1;
  grow q entry;
  q.heap.(q.size) <- entry;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let peek q =
  if q.size = 0 then None
  else
    let e = q.heap.(0) in
    Some (e.time, e.payload)

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      sift_down q 0
    end;
    Some (top.time, top.payload)
  end

let length q = q.size
let is_empty q = q.size = 0
let clear q = q.size <- 0

let iter q ~f =
  for i = 0 to q.size - 1 do
    let e = q.heap.(i) in
    f ~time:e.time e.payload
  done
