(** Deterministic pseudo-random number generator (splitmix64).

    Simulation runs must be exactly reproducible across machines, so we do
    not use [Stdlib.Random]'s global state.  Each scenario owns an [Rng.t]
    seeded from its configuration. *)

type t

val create : seed:int -> t

(** Uniform in [\[0, 1)]. *)
val float : t -> float

(** Uniform integer in [\[0, bound)].  @raise Invalid_argument if [bound <= 0]. *)
val int : t -> bound:int -> int

(** Uniform in [\[lo, hi)].  @raise Invalid_argument if [hi < lo]. *)
val uniform : t -> lo:float -> hi:float -> float

(** Exponentially distributed with the given mean.
    @raise Invalid_argument if [mean <= 0]. *)
val exponential : t -> mean:float -> float

(** Derive an independent stream (for per-connection jitter). *)
val split : t -> t
