let bits_of_bytes bytes = 8. *. float_of_int bytes

let transmission_time ~bytes ~rate_bps =
  if rate_bps <= 0. then invalid_arg "Units.transmission_time: rate <= 0";
  bits_of_bytes bytes /. rate_bps

let kbps x = x *. 1_000.
let mbps x = x *. 1_000_000.
let ms x = x /. 1_000.
let usec x = x /. 1_000_000.

let pipe_size ~rate_bps ~delay ~packet_bytes =
  rate_bps *. delay /. bits_of_bytes packet_bytes

let pp_time ppf t =
  if Float.abs t >= 1. then Format.fprintf ppf "%.3fs" t
  else if Float.abs t >= 1e-3 then Format.fprintf ppf "%.3fms" (t *. 1e3)
  else Format.fprintf ppf "%.1fus" (t *. 1e6)
