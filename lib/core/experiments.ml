type speed = Quick | Full

let horizon = function Quick -> (300., 120.) | Full -> (600., 200.)

(* Data transmission time on the 50 Kbps bottleneck: 500 B = 80 ms. *)
let data_tx = 0.08

let fmt = Printf.sprintf

let pct x = fmt "%.1f%%" (100. *. x)

let opt_f = function Some v -> fmt "%.2f" v | None -> "n/a"

(* ------------------------------------------------------------------ *)
(* Scenario constructors                                               *)
(* ------------------------------------------------------------------ *)

let scenario_fig2 speed =
  let duration, warmup = horizon speed in
  Scenario.make ~name:"fig2" ~tau:1.0 ~buffer:(Some 20)
    ~conns:
      (Scenario.stagger ~step:1.0
         [
           Scenario.conn Scenario.Forward;
           Scenario.conn Scenario.Forward;
           Scenario.conn Scenario.Forward;
         ])
    ~duration ~warmup ()

let scenario_oneway_small_pipe speed =
  let duration, warmup = horizon speed in
  Scenario.make ~name:"oneway-small-pipe" ~tau:0.01 ~buffer:(Some 20)
    ~conns:
      (Scenario.stagger ~step:1.0
         [
           Scenario.conn Scenario.Forward;
           Scenario.conn Scenario.Forward;
           Scenario.conn Scenario.Forward;
         ])
    ~duration ~warmup ()

let scenario_fig3 ?(buffer = 30) speed =
  let duration, warmup = horizon speed in
  let one dir = Scenario.conn dir in
  Scenario.make ~name:"fig3" ~tau:0.01 ~buffer:(Some buffer)
    ~conns:
      (Scenario.stagger ~step:0.7
         (List.init 10 (fun i ->
              one (if i < 5 then Scenario.Forward else Scenario.Reverse))))
    ~duration ~warmup ()

let scenario_fig45 ?(buffer = 20) speed =
  let duration, warmup = horizon speed in
  Scenario.make ~name:"fig45" ~tau:0.01 ~buffer:(Some buffer)
    ~conns:
      (Scenario.stagger ~step:1.0
         [ Scenario.conn Scenario.Forward; Scenario.conn Scenario.Reverse ])
    ~duration ~warmup ()

let scenario_fig67 speed =
  let duration, warmup = horizon speed in
  Scenario.make ~name:"fig67" ~tau:1.0 ~buffer:(Some 20)
    ~conns:
      (Scenario.stagger ~step:1.0
         [ Scenario.conn Scenario.Forward; Scenario.conn Scenario.Reverse ])
    ~duration ~warmup ()

let scenario_fixed ?(ack_size = 50) ~tau ~w1 ~w2 speed =
  let duration, warmup =
    match speed with Quick -> (200., 80.) | Full -> (400., 150.)
  in
  Scenario.make
    ~name:(fmt "fixed-w%d-w%d" w1 w2)
    ~tau ~buffer:None
    ~conns:
      [
        Scenario.fixed_conn ~window:w1 ~ack_size ~start_time:0.37
          Scenario.Forward;
        Scenario.fixed_conn ~window:w2 ~ack_size ~start_time:1.91
          Scenario.Reverse;
      ]
    ~duration ~warmup ~sample_dt:0.05 ()

(* ------------------------------------------------------------------ *)
(* Shared measurement helpers                                          *)
(* ------------------------------------------------------------------ *)

let epoch_period epochs =
  match epochs with
  | first :: (_ :: _ as rest) ->
    let last = List.nth rest (List.length rest - 1) in
    Some
      ((last.Analysis.Epochs.start -. first.Analysis.Epochs.start)
      /. float_of_int (List.length rest))
  | _ -> None

let data_clustering (r : Runner.result) dep =
  Analysis.Clustering.coefficient
    (Analysis.Clustering.data_only (Trace.Dep_log.in_window dep ~t0:r.t0 ~t1:r.t1))

let ack_compression (r : Runner.result) dep =
  Analysis.Ackcomp.ack_spacing
    (Trace.Dep_log.in_window dep ~t0:r.t0 ~t1:r.t1)
    ~data_tx

(* ACK clusters ride whichever direction the currently-large window's ACKs
   take; measure both bottleneck directions and report the stronger
   compression. *)
let ack_compression_both (r : Runner.result) =
  let pick a b =
    match (a, b) with
    | Some x, Some y ->
      Some (if x.Analysis.Ackcomp.ratio <= y.Analysis.Ackcomp.ratio then x else y)
    | (Some _ as x), None | None, (Some _ as x) -> x
    | None, None -> None
  in
  pick (ack_compression r r.dep_fwd) (ack_compression r r.dep_bwd)

(* Cluster sizes on a link counting both the data packets and the reverse
   connection's ACKs (each simplex bottleneck link carries one connection's
   data interleaved with the other's ACK clusters). *)
let mixed_cluster_length (r : Runner.result) dep =
  Option.value ~default:0.
    (Analysis.Clustering.mean_run_length
       (Trace.Dep_log.in_window dep ~t0:r.t0 ~t1:r.t1))

let fluctuation (r : Runner.result) qt =
  Analysis.Ackcomp.fluctuation_rate
    (Trace.Queue_trace.series qt)
    ~t0:r.t0 ~t1:r.t1 ~window:(2. *. data_tx) ~threshold:4.

let queue_peak_in_window (r : Runner.result) qt =
  match
    Trace.Series.min_max (Trace.Queue_trace.series qt) ~t0:r.t0 ~t1:r.t1
  with
  | Some (_, hi) -> hi
  | None -> 0.

(* ------------------------------------------------------------------ *)
(* FIG2: one-way baseline                                              *)
(* ------------------------------------------------------------------ *)

let fig2 ?(speed = Full) () =
  let r = Runner.run (scenario_fig2 speed) in
  let r_small = Runner.run (scenario_oneway_small_pipe speed) in
  let epochs = Runner.epochs r in
  let cwnd_phase_01, _ = Runner.cwnd_phase r 0 1 in
  let cwnd_phase_02, _ = Runner.cwnd_phase r 0 2 in
  let checks =
    [
      Report.in_band ~metric:"bottleneck utilization (tau=1s)" ~paper:"~90%"
        ~value:r.util_fwd ~lo:0.80 ~hi:0.97;
      Report.in_band ~metric:"bottleneck utilization (tau=0.01s)"
        ~paper:"~100%" ~value:r_small.util_fwd ~lo:0.97 ~hi:1.0;
      Report.in_band ~metric:"drops per congestion epoch"
        ~paper:"3 (= total acceleration)"
        ~value:(Option.value ~default:0. (Analysis.Epochs.mean_drops epochs))
        ~lo:2.4 ~hi:3.6;
      Report.in_band ~metric:"loss synchronization (all conns hit)"
        ~paper:"every epoch"
        ~value:
          (Option.value ~default:0.
             (Analysis.Epochs.loss_synchronization epochs ~conns:[ 1; 2; 3 ]))
        ~lo:0.75 ~hi:1.0;
      Report.expect ~metric:"window synchronization (conns 1,2)"
        ~paper:"in-phase"
        ~measured:(Analysis.Sync.phase_to_string cwnd_phase_01)
        (cwnd_phase_01 = Analysis.Sync.In_phase);
      Report.expect ~metric:"window synchronization (conns 1,3)"
        ~paper:"in-phase"
        ~measured:(Analysis.Sync.phase_to_string cwnd_phase_02)
        (cwnd_phase_02 = Analysis.Sync.In_phase);
      Report.in_band ~metric:"cwnd oscillation period (s)" ~paper:"~34 s"
        ~value:(Option.value ~default:0. (epoch_period epochs))
        ~lo:15. ~hi:60.;
      Report.in_band ~metric:"queue oscillation period, autocorrelation (s)"
        ~paper:"~34 s"
        ~value:
          (Option.value ~default:0.
             (Analysis.Period.estimate
                (Trace.Queue_trace.series r.q1)
                ~t0:r.t0 ~t1:r.t1 ~dt:0.5 ~max_period:100.))
        ~lo:15. ~hi:60.;
      Report.in_band ~metric:"data clustering coefficient"
        ~paper:"complete clustering (1.0 vs 0.33 interleaved)"
        ~value:(Option.value ~default:0. (data_clustering r r.dep_fwd))
        ~lo:0.85 ~hi:1.0;
      Report.info ~metric:"congestion epochs observed"
        ~paper:"oscillatory cycle"
        ~measured:(string_of_int (List.length epochs));
    ]
  in
  { Report.id = "FIG2"; title = "one-way traffic, 3 connections"; checks }

(* ------------------------------------------------------------------ *)
(* FIG3: ten connections, two-way                                      *)
(* ------------------------------------------------------------------ *)

let fig3 ?(speed = Full) () =
  let r = Runner.run (scenario_fig3 speed) in
  let r60 = Runner.run (scenario_fig3 ~buffer:60 speed) in
  let epochs = Runner.epochs ~gap:2. r in
  let drops = Runner.drops_in_window r in
  let data_frac =
    match drops with
    | [] -> 1.
    | _ ->
      let data =
        List.length
          (List.filter
             (fun (d : Trace.Drop_log.record) -> d.kind = Net.Packet.Data)
             drops)
      in
      float_of_int data /. float_of_int (List.length drops)
  in
  let qphase, qcorr = Runner.queue_phase r in
  let util = Float.max r.util_fwd r.util_bwd in
  let util60 = Float.max r60.util_fwd r60.util_bwd in
  let checks =
    [
      Report.in_band ~metric:"bottleneck utilization (B=30)" ~paper:"~91%"
        ~value:util ~lo:0.80 ~hi:0.98;
      Report.expect ~metric:"utilization with B=60"
        ~paper:"does not increase (drops to ~87%)"
        ~measured:(fmt "%s vs %s" (pct util60) (pct util))
        (util60 <= util +. 0.02);
      Report.in_band ~metric:"fraction of drops that are data packets"
        ~paper:"99.8%" ~value:data_frac ~lo:0.99 ~hi:1.0;
      Report.expect ~metric:"queue synchronization (Q1 vs Q2)"
        ~paper:"out-of-phase"
        ~measured:(fmt "%s (r=%.2f)" (Analysis.Sync.phase_to_string qphase) qcorr)
        (qphase = Analysis.Sync.Out_of_phase);
      Report.in_band ~metric:"drops per congestion epoch"
        ~paper:"~10 (= total acceleration)"
        ~value:(Option.value ~default:0. (Analysis.Epochs.mean_drops epochs))
        ~lo:4. ~hi:22.;
      Report.in_band ~metric:"rapid queue fluctuations (events/s)"
        ~paper:"fluctuations of ~5 pkts within a packet time"
        ~value:(fluctuation r r.q1) ~lo:0.3 ~hi:50.;
      Report.info ~metric:"mean data cluster length"
        ~paper:"partial clustering"
        ~measured:
          (opt_f
             (Analysis.Clustering.mean_run_length
                (Analysis.Clustering.data_only
                   (Trace.Dep_log.in_window r.dep_fwd ~t0:r.t0 ~t1:r.t1))));
      Report.info ~metric:"throughput fairness (Jain index)"
        ~paper:"n/a (5 cites testbed unfairness)"
        ~measured:
          (fmt "%.3f"
             (Analysis.Fairness.jain (Array.map float_of_int r.delivered)));
    ]
  in
  { Report.id = "FIG3"; title = "two-way traffic, 5+5 connections"; checks }

(* ------------------------------------------------------------------ *)
(* FIG4/5: two-way, small pipe: out-of-phase mode                      *)
(* ------------------------------------------------------------------ *)

(* Larger buffers stretch the window increase-decrease cycle (the paper:
   cycle length grows with B), so give big-buffer runs proportionally more
   simulated time before measuring. *)
let scenario_fig45_scaled ~buffer speed =
  let duration, warmup = horizon speed in
  let scale = float_of_int (max 1 (buffer / 20)) in
  Scenario.make ~name:"fig45-buf" ~tau:0.01 ~buffer:(Some buffer)
    ~conns:
      (Scenario.stagger ~step:1.0
         [ Scenario.conn Scenario.Forward; Scenario.conn Scenario.Reverse ])
    ~duration:(duration *. scale) ~warmup:(warmup *. scale) ()

let fig45 ?(speed = Full) () =
  let r = Runner.run (scenario_fig45 speed) in
  let r60 = Runner.run (scenario_fig45_scaled ~buffer:60 speed) in
  let r120 = Runner.run (scenario_fig45_scaled ~buffer:120 speed) in
  let epochs = Runner.epochs r in
  let qphase, qcorr = Runner.queue_phase r in
  let cphase, ccorr = Runner.cwnd_phase r 0 1 in
  let util b = Float.max b.Runner.util_fwd b.Runner.util_bwd in
  let compression = ack_compression_both r in
  let checks =
    [
      Report.expect ~metric:"queue synchronization (Q1 vs Q2)"
        ~paper:"out-of-phase"
        ~measured:(fmt "%s (r=%.2f)" (Analysis.Sync.phase_to_string qphase) qcorr)
        (qphase = Analysis.Sync.Out_of_phase);
      Report.expect ~metric:"window synchronization (cwnd1 vs cwnd2)"
        ~paper:"out-of-phase"
        ~measured:(fmt "%s (r=%.2f)" (Analysis.Sync.phase_to_string cphase) ccorr)
        (cphase = Analysis.Sync.Out_of_phase);
      Report.in_band ~metric:"drops per congestion epoch"
        ~paper:"2 (= total acceleration)"
        ~value:(Option.value ~default:0. (Analysis.Epochs.mean_drops epochs))
        ~lo:1.5 ~hi:2.5;
      Report.in_band ~metric:"epochs where one conn takes all drops"
        ~paper:"always (double drop, other unscathed)"
        ~value:
          (Option.value ~default:0. (Analysis.Epochs.single_loser_fraction epochs))
        ~lo:0.85 ~hi:1.0;
      Report.in_band ~metric:"loser alternation between epochs"
        ~paper:"roles reverse every epoch"
        ~value:(Option.value ~default:0. (Analysis.Epochs.alternation epochs))
        ~lo:0.85 ~hi:1.0;
      Report.in_band ~metric:"bottleneck utilization (B=20)" ~paper:"~70%"
        ~value:(util r) ~lo:0.55 ~hi:0.85;
      Report.expect ~metric:"utilization with B=60 and B=120"
        ~paper:"stays ~70% (no benefit from buffers)"
        ~measured:(fmt "%s, %s" (pct (util r60)) (pct (util r120)))
        (Float.abs (util r60 -. util r) <= 0.12
        && Float.abs (util r120 -. util r) <= 0.12);
      Report.in_band ~metric:"compressed ACK pairs (fraction)"
        ~paper:"ACK clusters drain at ACK tx rate (10x compression)"
        ~value:
          (match compression with
           | Some c -> c.Analysis.Ackcomp.compressed_fraction
           | None -> 0.)
        ~lo:0.05 ~hi:1.0;
      Report.in_band ~metric:"rapid queue fluctuations (events/s)"
        ~paper:"square-wave oscillations"
        ~value:(fluctuation r r.q1) ~lo:0.2 ~hi:50.;
      (let period =
         Analysis.Period.estimate
           (Trace.Queue_trace.series r.q1)
           ~t0:r.t0 ~t1:r.t1 ~dt:0.5 ~max_period:60.
       in
       let lag =
         Analysis.Sync.lag
           (Trace.Queue_trace.series r.q1)
           (Trace.Queue_trace.series r.q2)
           ~t0:r.t0 ~t1:r.t1 ~dt:0.5 ~max_lag:40.
       in
       match (period, lag) with
       | Some p, Some (l, _) when p > 0. ->
         Report.in_band ~metric:"queue lag / cycle length"
           ~paper:"one queue peaks while the other bottoms (lag = half cycle)"
           ~value:(Float.abs l /. p) ~lo:0.3 ~hi:0.7
       | _ ->
         Report.info ~metric:"queue lag / cycle length"
           ~paper:"one queue peaks while the other bottoms"
           ~measured:"not measurable on this window");
      (let acks_dropped =
         List.length
           (List.filter
              (fun (d : Trace.Drop_log.record) -> d.kind = Net.Packet.Ack)
              (Trace.Drop_log.records r.drops))
       in
       Report.expect ~metric:"ACK packets dropped"
         ~paper:"never (an ACK always follows a departure, 4.2)"
         ~measured:(string_of_int acks_dropped)
         (acks_dropped = 0));
      (let floored trace =
         match
           Trace.Series.min_max (Trace.Cwnd_trace.ssthresh trace) ~t0:r.t0
             ~t1:r.t1
         with
         | Some (lo, _) -> lo = 2.
         | None -> false
       in
       Report.expect ~metric:"ssthresh floored at 2 after the double loss"
         ~paper:"the second loss finds cwnd still 1 (footnote 9)"
         ~measured:
           (fmt "conn1 %b, conn2 %b" (floored r.cwnds.(0)) (floored r.cwnds.(1)))
         (floored r.cwnds.(0) && floored r.cwnds.(1)));
    ]
  in
  {
    Report.id = "FIG4/5";
    title = "two-way traffic, small pipe (tau=0.01s): out-of-phase mode";
    checks;
  }

(* ------------------------------------------------------------------ *)
(* FIG6/7: two-way, large pipe: in-phase mode                          *)
(* ------------------------------------------------------------------ *)

let fig67 ?(speed = Full) () =
  let r = Runner.run (scenario_fig67 speed) in
  let epochs = Runner.epochs r in
  let qphase, qcorr = Runner.queue_phase r in
  let cphase, ccorr = Runner.cwnd_phase r 0 1 in
  let both_lose =
    Option.value ~default:0.
      (Analysis.Epochs.loss_synchronization epochs ~conns:[ 1; 2 ])
  in
  let checks =
    [
      Report.expect ~metric:"queue synchronization (Q1 vs Q2)"
        ~paper:"in-phase"
        ~measured:(fmt "%s (r=%.2f)" (Analysis.Sync.phase_to_string qphase) qcorr)
        (qphase = Analysis.Sync.In_phase);
      Report.expect ~metric:"window synchronization (cwnd1 vs cwnd2)"
        ~paper:"in-phase"
        ~measured:(fmt "%s (r=%.2f)" (Analysis.Sync.phase_to_string cphase) ccorr)
        (cphase = Analysis.Sync.In_phase);
      Report.in_band ~metric:"drops per congestion epoch"
        ~paper:"2 (one per connection)"
        ~value:(Option.value ~default:0. (Analysis.Epochs.mean_drops epochs))
        ~lo:1.5 ~hi:2.6;
      Report.in_band ~metric:"epochs where both connections lose"
        ~paper:"every epoch (single drop each)" ~value:both_lose ~lo:0.7 ~hi:1.0;
      Report.in_band ~metric:"bottleneck utilization" ~paper:"~60%"
        ~value:(Float.max r.util_fwd r.util_bwd)
        ~lo:0.45 ~hi:0.78;
      Report.expect ~metric:"both lines idle at times"
        ~paper:"yes (unlike the small-pipe case)"
        ~measured:(fmt "%s / %s" (pct r.util_fwd) (pct r.util_bwd))
        (r.util_fwd < 0.95 && r.util_bwd < 0.95);
    ]
  in
  {
    Report.id = "FIG6/7";
    title = "two-way traffic, large pipe (tau=1s): in-phase mode";
    checks;
  }

(* ------------------------------------------------------------------ *)
(* FIG8/9: fixed windows                                               *)
(* ------------------------------------------------------------------ *)

let fig8 ?(speed = Full) () =
  let r = Runner.run (scenario_fixed ~tau:0.01 ~w1:30 ~w2:25 speed) in
  let q1_max = queue_peak_in_window r r.q1 in
  let q2_max = queue_peak_in_window r r.q2 in
  let compression = ack_compression r r.dep_fwd in
  let checks =
    [
      Report.in_band ~metric:"Q1 maximum (packets)" ~paper:"55 (= w1 + w2)"
        ~value:q1_max ~lo:52. ~hi:56.;
      Report.in_band ~metric:"Q2 maximum (packets)" ~paper:"~23" ~value:q2_max
        ~lo:19. ~hi:27.;
      Report.expect ~metric:"queue maxima differ" ~paper:"different heights"
        ~measured:(fmt "%.0f vs %.0f" q1_max q2_max)
        (q1_max -. q2_max >= 10.);
      Report.in_band ~metric:"underutilized line" ~paper:"86%"
        ~value:(Float.min r.util_fwd r.util_bwd)
        ~lo:0.80 ~hi:0.92;
      Report.in_band ~metric:"other line" ~paper:"fully utilized"
        ~value:(Float.max r.util_fwd r.util_bwd)
        ~lo:0.99 ~hi:1.0;
      Report.in_band ~metric:"ACK spacing vs data tx time" ~paper:"ratio 0.1"
        ~value:
          (match compression with Some c -> c.Analysis.Ackcomp.ratio | None -> 1.)
        ~lo:0.05 ~hi:0.3;
      (let slopes =
         Analysis.Ackcomp.edge_slopes
           (Trace.Queue_trace.series r.q1)
           ~t0:r.t0 ~t1:r.t1 ~min_rise:8.
       in
       Report.in_band ~metric:"square-wave rising edge (pkts/s)"
         ~paper:"bursts hit the queue at the compressed-ACK rate (R_A = 125/s)"
         ~value:(Option.value ~default:0. slopes.Analysis.Ackcomp.rising)
         ~lo:90. ~hi:170.);
      (let slopes =
         Analysis.Ackcomp.edge_slopes
           (Trace.Queue_trace.series r.q1)
           ~t0:r.t0 ~t1:r.t1 ~min_rise:8.
       in
       Report.in_band ~metric:"square-wave falling edge (pkts/s)"
         ~paper:"ACK clusters drain at R_A, not R_D"
         ~value:(Option.value ~default:0. slopes.Analysis.Ackcomp.falling)
         ~lo:(-170.) ~hi:(-90.));
      (let phases =
         Analysis.Chronology.phases
           (Trace.Queue_trace.series r.q1)
           (Trace.Queue_trace.series r.q2)
           ~t0:r.t0 ~t1:r.t1
       in
       Report.in_band ~metric:"chronology: queues move in opposition"
         ~paper:"the 4.2 cycle hands packets between the queues"
         ~value:(Option.value ~default:0. (Analysis.Chronology.opposition phases))
         ~lo:0.95 ~hi:1.0);
      Report.expect ~metric:"packet drops" ~paper:"none (infinite buffers)"
        ~measured:(string_of_int (Trace.Drop_log.total r.drops))
        (Trace.Drop_log.total r.drops = 0);
    ]
  in
  {
    Report.id = "FIG8";
    title = "fixed windows 30/25, small pipe, infinite buffers";
    checks;
  }

let fig9 ?(speed = Full) () =
  let r = Runner.run (scenario_fixed ~tau:1.0 ~w1:30 ~w2:25 speed) in
  let q1_max = queue_peak_in_window r r.q1 in
  let q2_max = queue_peak_in_window r r.q2 in
  let checks =
    [
      Report.in_band ~metric:"Q1 maximum (packets)" ~paper:"~23" ~value:q1_max
        ~lo:19. ~hi:27.;
      Report.in_band ~metric:"Q2 maximum (packets)" ~paper:"~23" ~value:q2_max
        ~lo:19. ~hi:27.;
      Report.expect ~metric:"queue maxima equal" ~paper:"same height"
        ~measured:(fmt "%.0f vs %.0f" q1_max q2_max)
        (Float.abs (q1_max -. q2_max) <= 3.);
      Report.in_band ~metric:"line 1 utilization" ~paper:"81%" ~value:r.util_fwd
        ~lo:0.74 ~hi:0.88;
      Report.in_band ~metric:"line 2 utilization" ~paper:"70%" ~value:r.util_bwd
        ~lo:0.62 ~hi:0.78;
      Report.expect ~metric:"neither line fully utilized"
        ~paper:"both queues empty at times"
        ~measured:(fmt "%s / %s" (pct r.util_fwd) (pct r.util_bwd))
        (r.util_fwd < 0.95 && r.util_bwd < 0.95);
      Report.expect ~metric:"packet drops" ~paper:"none (infinite buffers)"
        ~measured:(string_of_int (Trace.Drop_log.total r.drops))
        (Trace.Drop_log.total r.drops = 0);
    ]
  in
  {
    Report.id = "FIG9";
    title = "fixed windows 30/25, large pipe, infinite buffers";
    checks;
  }

(* ------------------------------------------------------------------ *)
(* TAB-CONJ: the zero-size-ACK phase criterion                         *)
(* ------------------------------------------------------------------ *)

let conjecture_table ?(speed = Full) () =
  (* (w1, w2, tau); pipe = 12.5 * tau packets. *)
  let cases =
    [
      (30, 25, 0.01);  (* 30 > 25 + 0.25: out-of-phase, one full *)
      (30, 25, 1.0);   (* 30 < 25 + 25:   in-phase, neither full *)
      (40, 10, 1.0);   (* 40 > 10 + 25 *)
      (30, 5, 0.5);    (* 30 > 5 + 12.5 *)
      (20, 18, 0.25);  (* 20 < 18 + 6.25 *)
      (12, 12, 0.2);   (* 12 < 12 + 5 *)
    ]
  in
  (* The cases are independent simulations; fan them out to the worker
     pool (workers return plain float pairs, which marshal). *)
  let utils =
    Sweep_pool.map ~jobs:(Sweep_pool.default_jobs ())
      (fun (w1, w2, tau) ->
        let r = Runner.run (scenario_fixed ~ack_size:0 ~tau ~w1 ~w2 speed) in
        (r.util_fwd, r.util_bwd))
      cases
  in
  let check_case (w1, w2, tau) (util1, util2) =
    let scenario = scenario_fixed ~ack_size:0 ~tau ~w1 ~w2 speed in
    let pipe = Scenario.pipe scenario in
    let predicted = Analysis.Conjecture.predict ~w1 ~w2 ~pipe in
    let observed =
      Analysis.Conjecture.observe ~full_threshold:0.985 ~util1 ~util2 ()
    in
    Report.expect
      ~metric:(fmt "w=(%d,%d) P=%.2f" w1 w2 pipe)
      ~paper:(Analysis.Conjecture.prediction_to_string predicted)
      ~measured:
        (fmt "%s (%s / %s)"
           (Analysis.Conjecture.prediction_to_string observed)
           (pct util1) (pct util2))
      (Analysis.Conjecture.verdict predicted ~observed)
  in
  {
    Report.id = "TAB-CONJ";
    title = "zero-size-ACK fixed-window phase criterion (conjecture, 4.3.3)";
    checks = List.map2 check_case cases utils;
  }

(* ------------------------------------------------------------------ *)
(* TAB-UTIL: utilization vs buffer size                                *)
(* ------------------------------------------------------------------ *)

let buffer_table ?(speed = Full) () =
  let duration, warmup = horizon speed in
  let oneway buffer =
    Runner.run
      (Scenario.make ~name:"buf-oneway" ~tau:1.0 ~buffer:(Some buffer)
         ~conns:
           (Scenario.stagger ~step:1.0
              [
                Scenario.conn Scenario.Forward; Scenario.conn Scenario.Forward;
                Scenario.conn Scenario.Forward;
              ])
         ~duration ~warmup ())
  in
  let twoway buffer = Runner.run (scenario_fig45_scaled ~buffer speed) in
  (* One task list across both columns so a single worker pool covers
     all six simulations; workers reduce results to marshalable tuples
     before they cross the pipe. *)
  let rows =
    Sweep_pool.map ~jobs:(Sweep_pool.default_jobs ())
      (fun task ->
        match task with
        | `Oneway b -> `Oneway (b, (oneway b).util_fwd)
        | `Twoway b ->
          let r = twoway b in
          `Twoway
            ( b,
              Float.max r.util_fwd r.util_bwd,
              Option.value ~default:0. (Runner.effective_pipe r) ))
      (List.map (fun b -> `Oneway b) [ 20; 40; 80 ]
      @ List.map (fun b -> `Twoway b) [ 20; 60; 120 ])
  in
  let ow =
    List.filter_map (function `Oneway (b, u) -> Some (b, u) | _ -> None) rows
  in
  let tw =
    List.filter_map
      (function `Twoway (b, u, p) -> Some (b, u, p) | _ -> None)
      rows
  in
  let show rows =
    String.concat ", " (List.map (fun (b, u) -> fmt "B=%d: %s" b (pct u)) rows)
  in
  let ow_utils = List.map snd ow in
  let tw_utils = List.map (fun (_, u, _) -> u) tw in
  let tw_pipes = List.map (fun (_, _, p) -> p) tw in
  let tw = List.map (fun (b, u, _) -> (b, u)) tw in
  let ow_gain = List.nth ow_utils 2 -. List.hd ow_utils in
  let tw_spread =
    List.fold_left Float.max (List.hd tw_utils) tw_utils
    -. List.fold_left Float.min (List.hd tw_utils) tw_utils
  in
  {
    Report.id = "TAB-UTIL";
    title = "utilization vs buffer size: one-way rises, two-way is stuck";
    checks =
      [
        Report.expect ~metric:"one-way (tau=1s, 3 conns)"
          ~paper:"idle time vanishes as B grows (~B^-2)"
          ~measured:(show ow) (ow_gain >= 0.02);
        Report.expect ~metric:"two-way (tau=0.01s, 1+1)"
          ~paper:"utilization stuck near 70% for every B"
          ~measured:(show tw)
          (tw_spread <= 0.12 && List.for_all (fun u -> u < 0.92) tw_utils);
        Report.expect ~metric:"effective pipe (mean ACK queueing, pkts)"
          ~paper:"grows with B in proportion to the cycle (4.3.1)"
          ~measured:
            (String.concat ", "
               (List.map2
                  (fun (b, _) p -> fmt "B=%d: %.1f" b p)
                  tw tw_pipes))
          (match tw_pipes with
           | [ p20; p60; p120 ] -> p60 > p20 +. 1. && p120 > p60 +. 1.
           | _ -> false);
      ];
  }

(* ------------------------------------------------------------------ *)
(* TAB-DELACK: the delayed-ACK option                                  *)
(* ------------------------------------------------------------------ *)

let delack_table ?(speed = Full) () =
  let duration, warmup = horizon speed in
  let run ~delayed_ack ~maxwnd =
    Runner.run
      (Scenario.make ~name:"delack" ~tau:0.01 ~buffer:(Some 20)
         ~conns:
           (Scenario.stagger ~step:1.0
              [
                Scenario.conn ~delayed_ack ~maxwnd Scenario.Forward;
                Scenario.conn ~delayed_ack ~maxwnd Scenario.Reverse;
              ])
         ~duration ~warmup ())
  in
  let cluster r = mixed_cluster_length r r.Runner.dep_fwd in
  let compressed r =
    match ack_compression_both r with
    | Some c -> c.Analysis.Ackcomp.compressed_fraction
    | None -> 0.
  in
  let off_small = run ~delayed_ack:false ~maxwnd:8 in
  let on_small = run ~delayed_ack:true ~maxwnd:8 in
  let on_large = run ~delayed_ack:true ~maxwnd:1000 in
  let acks r =
    Array.fold_left
      (fun acc (_, c) -> acc + Tcp.Receiver.acks_sent (Tcp.Connection.receiver c))
      0 r.Runner.conns
  in
  {
    Report.id = "TAB-DELACK";
    title = "delayed-ACK option (5): partial clusters, compression persists";
    checks =
      [
        Report.expect ~metric:"ACK traffic reduced"
          ~paper:"fewer ACKs (the option's purpose)"
          ~measured:
            (fmt "off: %d ACKs, on: %d ACKs" (acks off_small) (acks on_small))
          (acks on_small < acks off_small);
        Report.expect ~metric:"clusters with maxwnd=8"
          ~paper:"cut into small partial clusters"
          ~measured:
            (fmt "off: %.1f, on: %.1f pkts/cluster" (cluster off_small)
               (cluster on_small))
          (cluster on_small < cluster off_small);
        Report.expect ~metric:"compression with large windows"
          ~paper:"reappears (appreciable partial clusters)"
          ~measured:
            (fmt "compressed fraction small=%.2f large=%.2f"
               (compressed on_small) (compressed on_large))
          (compressed on_large >= Float.min 0.3 (compressed on_small +. 0.05));
        Report.info ~metric:"compression with delayed ACK off"
          ~paper:"baseline (significant)"
          ~measured:(fmt "%.2f" (compressed off_small));
      ];
  }

(* ------------------------------------------------------------------ *)
(* TAB-MHOP: four-switch chain                                         *)
(* ------------------------------------------------------------------ *)

let multihop_table ?(speed = Full) () =
  let spec =
    match speed with
    | Full -> Multihop.default_spec
    | Quick -> { Multihop.default_spec with duration = 250.; warmup = 100. }
  in
  let r = Multihop.run spec in
  let mid = Array.length r.trunk_queues / 2 in
  let q_fwd, _ = r.trunk_queues.(mid) in
  let dep_fwd, _ = r.trunk_deps.(mid) in
  let fluct =
    Analysis.Ackcomp.fluctuation_rate
      (Trace.Queue_trace.series q_fwd)
      ~t0:r.t0 ~t1:r.t1 ~window:(2. *. data_tx) ~threshold:4.
  in
  let compression =
    Analysis.Ackcomp.ack_spacing
      (Trace.Dep_log.in_window dep_fwd ~t0:r.t0 ~t1:r.t1)
      ~data_tx
  in
  let utils =
    Array.to_list r.trunk_utils
    |> List.concat_map (fun (a, b) -> [ a; b ])
  in
  let show_utils = String.concat ", " (List.map pct utils) in
  {
    Report.id = "TAB-MHOP";
    title = "four-switch chain, ~50 connections, 1-3 hop paths (5)";
    checks =
      [
        Report.expect ~metric:"ACK compression on middle trunk"
          ~paper:"present"
          ~measured:
            (match compression with
             | Some c ->
               fmt "ratio %.2f, %.0f%% compressed" c.Analysis.Ackcomp.ratio
                 (100. *. c.Analysis.Ackcomp.compressed_fraction)
             | None -> "no samples")
          (match compression with
           | Some c -> c.Analysis.Ackcomp.compressed_fraction >= 0.2
           | None -> false);
        Report.in_band ~metric:"rapid queue fluctuations (events/s)"
          ~paper:"present" ~value:fluct ~lo:0.2 ~hi:100.;
        Report.expect ~metric:"trunk utilizations"
          ~paper:"significantly underutilized lines" ~measured:show_utils
          (List.exists (fun u -> u < 0.95) utils);
        Report.info ~metric:"total drops"
          ~paper:"loss-driven oscillation"
          ~measured:(string_of_int (Trace.Drop_log.total r.drops));
      ];
  }

(* ------------------------------------------------------------------ *)
(* TAB-ABL: design ablations                                           *)
(* ------------------------------------------------------------------ *)

let ablation_table ?(speed = Full) () =
  let duration, warmup = horizon speed in
  (* (a) modified vs unmodified congestion-avoidance increment. *)
  let run_ca modified_ca =
    Runner.run
      (Scenario.make ~name:"abl-ca" ~tau:1.0 ~buffer:(Some 20)
         ~conns:
           (Scenario.stagger ~step:1.0
              (List.init 3 (fun _ ->
                   Scenario.conn ~algorithm:(Tcp.Cong.Tahoe { modified_ca })
                     Scenario.Forward)))
         ~duration ~warmup ())
  in
  let r_mod = run_ca true in
  let r_orig = run_ca false in
  (* (b) coarse (BSD 500 ms ticks) vs continuous retransmission timers on
     the fig-4 configuration: the synchronization mode must not depend on
     timer quantization. *)
  let run_grain rto_params =
    Runner.run
      (Scenario.make ~name:"abl-grain" ~tau:0.01 ~buffer:(Some 20)
         ~conns:
           (Scenario.stagger ~step:1.0
              [
                Scenario.conn ~rto_params Scenario.Forward;
                Scenario.conn ~rto_params Scenario.Reverse;
              ])
         ~duration ~warmup ())
  in
  let coarse = run_grain Tcp.Rto.default_params in
  let continuous =
    run_grain
      {
        Tcp.Rto.default_params with
        Tcp.Rto.granularity = 0.;
        min_timeout = 0.2;
      }
  in
  let qphase_coarse, _ = Runner.queue_phase coarse in
  let qphase_cont, _ = Runner.queue_phase continuous in
  {
    Report.id = "TAB-ABL";
    title = "ablations: CA increment variant; timer granularity";
    checks =
      [
        Report.expect ~metric:"modified vs original CA increment"
          ~paper:"no qualitative change (2.1)"
          ~measured:
            (fmt "util %s vs %s" (pct r_mod.util_fwd) (pct r_orig.util_fwd))
          (Float.abs (r_mod.util_fwd -. r_orig.util_fwd) <= 0.12);
        Report.expect ~metric:"out-of-phase mode, BSD 500ms timers"
          ~paper:"out-of-phase"
          ~measured:(Analysis.Sync.phase_to_string qphase_coarse)
          (qphase_coarse = Analysis.Sync.Out_of_phase);
        Report.expect ~metric:"out-of-phase mode, continuous timers"
          ~paper:"mode is structural, not a timer artifact"
          ~measured:(Analysis.Sync.phase_to_string qphase_cont)
          (qphase_cont = Analysis.Sync.Out_of_phase);
      ];
  }

(* ------------------------------------------------------------------ *)
(* TAB-RENO: the conjecture across algorithms                          *)
(* ------------------------------------------------------------------ *)

let two_way_scenario ?algorithm ?cc
    ?(pacing = None) ?(gateway = Net.Discipline.Fifo) ?(per_dir = 1)
    ?(buffer = 20) ~tau speed =
  let duration, warmup = horizon speed in
  let conn dir = Scenario.conn ?algorithm ?cc ~pacing dir in
  Scenario.make ~name:"two-way" ~tau ~buffer:(Some buffer) ~gateway
    ~conns:
      (Scenario.stagger ~step:1.0
         (List.init per_dir (fun _ -> conn Scenario.Forward)
         @ List.init per_dir (fun _ -> conn Scenario.Reverse)))
    ~duration ~warmup ()

let reno_table ?(speed = Full) () =
  let reno = Tcp.Cong.Reno { modified_ca = true } in
  let small = Runner.run (two_way_scenario ~algorithm:reno ~tau:0.01 speed) in
  let large = Runner.run (two_way_scenario ~algorithm:reno ~tau:1.0 speed) in
  let q_small, r_small = Runner.queue_phase small in
  let q_large, r_large = Runner.queue_phase large in
  {
    Report.id = "TAB-RENO";
    title = "4.3-Reno under two-way traffic: the phenomena are not Tahoe-specific";
    checks =
      [
        Report.expect ~metric:"synchronization, small pipe (tau=0.01s)"
          ~paper:"conjectured for any nonpaced window algorithm: out-of-phase"
          ~measured:(fmt "%s (r=%.2f)" (Analysis.Sync.phase_to_string q_small) r_small)
          (q_small = Analysis.Sync.Out_of_phase);
        Report.expect ~metric:"synchronization, large pipe (tau=1s)"
          ~paper:"in-phase"
          ~measured:(fmt "%s (r=%.2f)" (Analysis.Sync.phase_to_string q_large) r_large)
          (q_large = Analysis.Sync.In_phase);
        Report.in_band ~metric:"rapid queue fluctuations (events/s)"
          ~paper:"ACK-compression persists" ~value:(fluctuation small small.q1)
          ~lo:0.2 ~hi:50.;
        Report.expect ~metric:"two-way utilization penalty"
          ~paper:"persists (idle time despite large windows)"
          ~measured:
            (fmt "small pipe %s/%s, large pipe %s/%s" (pct small.util_fwd)
               (pct small.util_bwd) (pct large.util_fwd) (pct large.util_bwd))
          (Float.min small.util_fwd small.util_bwd < 0.97
          && Float.min large.util_fwd large.util_bwd < 0.97);
        Report.info ~metric:"Reno vs Tahoe utilization (small pipe)"
          ~paper:"n/a (Reno postdates the paper)"
          ~measured:(fmt "%s / %s" (pct small.util_fwd) (pct small.util_bwd));
      ];
  }

(* ------------------------------------------------------------------ *)
(* TAB-CCZOO: the conjecture across the whole variant zoo              *)
(* ------------------------------------------------------------------ *)

let cczoo_table ?(speed = Full) () =
  (* Every adaptive registry entry through the small-pipe two-way
     configuration (fig-4 shape): the paper's phenomena should not be
     Tahoe-specific.  The oracle rides along as the loss-blind
     calibration point. *)
  let run cc = Runner.run (two_way_scenario ~cc ~tau:0.01 speed) in
  let rows =
    List.map
      (fun name ->
        let r = run (Tcp.Cc.spec name) in
        let phase, corr = Runner.queue_phase r in
        (name, r, phase, corr))
      Tcp.Cc_zoo.adaptive
  in
  let min_util (r : Runner.result) = Float.min r.util_fwd r.util_bwd in
  let util_checks =
    List.map
      (fun (name, r, _, _) ->
        Report.expect
          ~metric:(fmt "%s: two-way utilization penalty" name)
          ~paper:"conjectured for any nonpaced window algorithm"
          ~measured:(fmt "%s / %s" (pct r.Runner.util_fwd) (pct r.Runner.util_bwd))
          (min_util r > 0.05 && min_util r < 0.995))
      rows
  in
  let phase_checks =
    List.filter_map
      (fun (name, _, phase, corr) ->
        let measured =
          fmt "%s (r=%.2f)" (Analysis.Sync.phase_to_string phase) corr
        in
        (* Only the go-back-N machines the paper (and TAB-RENO) analyzed
           are pinned to a mode; NewReno's partial-ACK recovery avoids the
           timeouts that decouple the two flows, and settles in-phase. *)
        if List.mem name [ "tahoe"; "reno" ] then
          Some
            (Report.expect
               ~metric:(fmt "%s: synchronization, small pipe" name)
               ~paper:"out-of-phase (fig 4)" ~measured
               (phase = Analysis.Sync.Out_of_phase))
        else
          Some
            (Report.info ~metric:(fmt "%s: synchronization, small pipe" name)
               ~paper:"n/a (postdates the paper)" ~measured))
      rows
  in
  let fluct_checks =
    List.map
      (fun (name, r, _, _) ->
        Report.info
          ~metric:(fmt "%s: rapid queue fluctuations (events/s)" name)
          ~paper:"ACK-compression signature"
          ~measured:(fmt "%.2f" (fluctuation r r.Runner.q1)))
      rows
  in
  let oracle =
    run (Tcp.Cc.spec ~params:[ ("rate", 12.5) ] "oracle")
  in
  let oracle_check =
    Report.info ~metric:"oracle: rate-pinned calibration utilization"
      ~paper:"loss-blind BDP window"
      ~measured:
        (fmt "%s / %s" (pct oracle.Runner.util_fwd) (pct oracle.Runner.util_bwd))
  in
  {
    Report.id = "TAB-CCZOO";
    title = "the variant zoo under two-way traffic: phenomena are not Tahoe-specific";
    checks = util_checks @ phase_checks @ fluct_checks @ [ oracle_check ];
  }

(* ------------------------------------------------------------------ *)
(* TAB-PACE: pacing destroys clustering, and with it the penalty       *)
(* ------------------------------------------------------------------ *)

let pacing_table ?(speed = Full) () =
  (* Pace at exactly the bottleneck data rate: one packet per 80 ms. *)
  let nonpaced = Runner.run (two_way_scenario ~tau:0.01 speed) in
  let paced =
    Runner.run (two_way_scenario ~pacing:(Some data_tx) ~tau:0.01 speed)
  in
  let cluster r = mixed_cluster_length r r.Runner.dep_fwd in
  let fluct r = fluctuation r r.Runner.q1 in
  let util r = Float.max r.Runner.util_fwd r.Runner.util_bwd in
  {
    Report.id = "TAB-PACE";
    title = "paced vs nonpaced senders (1, footnote 2): clustering is the cause";
    checks =
      [
        Report.expect ~metric:"packet clustering"
          ~paper:"pacing prevents clusters from forming"
          ~measured:
            (fmt "mean cluster %.1f -> %.1f pkts" (cluster nonpaced)
               (cluster paced))
          (cluster paced < 0.5 *. cluster nonpaced && cluster paced < 3.);
        Report.expect ~metric:"rapid queue fluctuations"
          ~paper:"ACK-compression needs clusters; square waves vanish"
          ~measured:
            (fmt "%.2f -> %.2f events/s" (fluct nonpaced) (fluct paced))
          (fluct paced < 0.5 *. fluct nonpaced);
        Report.expect ~metric:"bottleneck utilization"
          ~paper:"the two-way penalty is largely cured"
          ~measured:(fmt "%s -> %s" (pct (util nonpaced)) (pct (util paced)))
          (util paced > util nonpaced +. 0.05);
      ];
  }

(* ------------------------------------------------------------------ *)
(* TAB-GW: gateway disciplines                                         *)
(* ------------------------------------------------------------------ *)

let gateway_table ?(speed = Full) () =
  let run gateway =
    Runner.run (two_way_scenario ~gateway ~per_dir:5 ~buffer:30 ~tau:0.01 speed)
  in
  let fifo = run Net.Discipline.Fifo in
  let rd = run (Net.Discipline.Random_drop { seed = 11 }) in
  let fq = run Net.Discipline.Fair_queue in
  let jain r =
    Analysis.Fairness.jain (Array.map float_of_int r.Runner.delivered)
  in
  let phase r = fst (Runner.queue_phase r) in
  let util r = Float.max r.Runner.util_fwd r.Runner.util_bwd in
  let show r = fmt "util %s, Jain %.3f" (pct (util r)) (jain r) in
  {
    Report.id = "TAB-GW";
    title = "gateway disciplines under two-way traffic (related-work axis, 1)";
    checks =
      [
        Report.expect ~metric:"drop-tail FIFO (the paper's switches)"
          ~paper:"out-of-phase, rapid fluctuations"
          ~measured:(show fifo)
          (phase fifo = Analysis.Sync.Out_of_phase
          && fluctuation fifo fifo.q1 > 0.2);
        Report.expect ~metric:"Random Drop"
          ~paper:"same phenomena (clustering is unaffected)"
          ~measured:(show rd)
          (phase rd = Analysis.Sync.Out_of_phase && fluctuation rd rd.q1 > 0.2);
        Report.expect ~metric:"Fair Queueing"
          ~paper:"phenomena persist; allocation at least as fair"
          ~measured:(show fq)
          (jain fq >= jain fifo -. 0.01);
        Report.info ~metric:"throughput allocation (max/min)"
          ~paper:"Wilder et al. report extreme unfairness on a real testbed"
          ~measured:
            (fmt "fifo %.2f, random-drop %.2f, fq %.2f"
               (Analysis.Fairness.max_min_ratio
                  (Array.map float_of_int fifo.delivered))
               (Analysis.Fairness.max_min_ratio
                  (Array.map float_of_int rd.delivered))
               (Analysis.Fairness.max_min_ratio
                  (Array.map float_of_int fq.delivered)));
      ];
  }

(* ------------------------------------------------------------------ *)
(* TAB-COLLAPSE: the pre-Jacobson baseline                             *)
(* ------------------------------------------------------------------ *)

let collapse_table ?(speed = Full) () =
  let duration, warmup = horizon speed in
  (* "In the original TCP specification, the window used by the sender is
     the receiver advertised window maxwnd regardless of the load in the
     network" (2.1): a fixed window with retransmission but no congestion
     control. *)
  let run algorithm loss_detection =
    let cc = Tcp.Cc.spec_of_algorithm algorithm in
    Runner.run
      (Scenario.make ~name:"collapse" ~tau:1.0 ~buffer:(Some 20)
         ~conns:
           (Scenario.stagger ~step:1.0
              (List.init 2 (fun i ->
                   let dir =
                     if i = 0 then Scenario.Forward else Scenario.Reverse
                   in
                   { (Scenario.conn dir) with cc; loss_detection })))
         ~duration ~warmup ())
  in
  let tahoe = run (Tcp.Cong.Tahoe { modified_ca = true }) true in
  let rfc793 = run (Tcp.Cong.Fixed 40) true in
  let rfc793_wide = run (Tcp.Cong.Fixed 60) true in
  let goodput r =
    float_of_int (Array.fold_left ( + ) 0 r.Runner.delivered)
    /. (r.Runner.t1 -. r.Runner.t0)
  in
  let overhead r =
    let rexmt =
      Array.fold_left
        (fun acc (_, c) -> acc + Tcp.Sender.retransmits (Tcp.Connection.sender c))
        0 r.Runner.conns
    in
    let sent =
      Array.fold_left
        (fun acc (_, c) -> acc + Tcp.Sender.data_sent (Tcp.Connection.sender c))
        0 r.Runner.conns
    in
    float_of_int rexmt /. float_of_int (max 1 (rexmt + sent))
  in
  {
    Report.id = "TAB-COLLAPSE";
    title = "why Jacobson's algorithm matters (1): fixed-window TCP collapses";
    checks =
      [
        Report.expect ~metric:"aggregate goodput"
          ~paper:"congestion control gives a dramatic improvement"
          ~measured:
            (fmt "tahoe %.1f vs fixed-window %.1f pkt/s" (goodput tahoe)
               (goodput rfc793))
          (goodput tahoe > 1.5 *. goodput rfc793);
        Report.expect ~metric:"retransmission overhead"
          ~paper:"uncontrolled windows waste the bottleneck on retransmits"
          ~measured:
            (fmt "tahoe %s vs fixed-window %s" (pct (overhead tahoe))
               (pct (overhead rfc793)))
          (overhead tahoe < 0.1 && overhead rfc793 > 0.3);
        Report.expect ~metric:"bigger windows make it worse"
          ~paper:"collapse deepens with load"
          ~measured:
            (fmt "wnd=40: %.1f pkt/s, wnd=60: %.1f pkt/s (overhead %s -> %s)"
               (goodput rfc793) (goodput rfc793_wide)
               (pct (overhead rfc793))
               (pct (overhead rfc793_wide)))
          (goodput rfc793_wide < 1.2 *. goodput rfc793
          && overhead rfc793_wide >= overhead rfc793 -. 0.05);
      ];
  }

(* ------------------------------------------------------------------ *)
(* TAB-RTT: clustering needs identical round-trip times                *)
(* ------------------------------------------------------------------ *)

let rtt_table ?(speed = Full) () =
  let duration, warmup = horizon speed in
  (* Two one-way connections; the second one's data takes [skew] seconds
     of extra access latency each way. *)
  let run skew =
    let r =
      Runner.run
        (Scenario.make ~name:"rtt-skew" ~tau:1.0 ~buffer:(Some 20)
           ~conns:
             (Scenario.stagger ~step:1.0
                [
                  Scenario.conn Scenario.Forward;
                  Scenario.conn ~rtt_skew:skew Scenario.Forward;
                ])
           ~duration ~warmup ())
    in
    Option.value ~default:0. (data_clustering r r.dep_fwd)
  in
  let equal_rtt = run 0.0 in
  let sub_packet = run (data_tx /. 2.) in
  let super_packet = run 0.5 in
  let baseline = Analysis.Clustering.interleaved_baseline ~n:2 in
  {
    Report.id = "TAB-RTT";
    title = "clustering requires identical round-trip times (3.1, 5)";
    checks =
      [
        Report.in_band ~metric:"identical RTTs: clustering coefficient"
          ~paper:"complete clustering" ~value:equal_rtt ~lo:0.85 ~hi:1.0;
        Report.expect ~metric:"skew below one packet time"
          ~paper:"clustering survives (5)"
          ~measured:(fmt "%.2f vs %.2f" sub_packet equal_rtt)
          (Float.abs (sub_packet -. equal_rtt) <= 0.08);
        Report.expect ~metric:"skew above one packet time"
          ~paper:"no longer perfect"
          ~measured:(fmt "%.2f vs %.2f" super_packet equal_rtt)
          (super_packet < equal_rtt -. 0.12);
        Report.expect ~metric:"partial clustering remains"
          ~paper:"partial clustering may still exist"
          ~measured:(fmt "%.2f vs interleaved %.2f" super_packet baseline)
          (super_packet > baseline +. 0.1);
      ];
  }

(* ------------------------------------------------------------------ *)
(* TAB-FORMULA: the 3.1 closed-form analysis                           *)
(* ------------------------------------------------------------------ *)

let formula_table ?(speed = Full) () =
  let duration, warmup =
    match speed with Quick -> (150., 60.) | Full -> (250., 100.)
  in
  (* One-way fixed windows make the paper's steady-state formulas exact:
     q = MAX[0, sum(wnd) - 2P], and when the pipe is underfilled the
     utilization is sum(wnd) * tx / RTT. *)
  let run ~w1 ~w2 ~tau =
    let scenario =
      Scenario.make ~name:"formula" ~tau ~buffer:None
        ~conns:
          [
            Scenario.fixed_conn ~window:w1 ~start_time:0.3 Scenario.Forward;
            Scenario.fixed_conn ~window:w2 ~start_time:0.9 Scenario.Forward;
          ]
        ~duration ~warmup ()
    in
    (Runner.run scenario, Scenario.pipe scenario)
  in
  let q_check ~w1 ~w2 ~tau =
    let r, pipe = run ~w1 ~w2 ~tau in
    let expected = Float.max 0. (float_of_int (w1 + w2) -. (2. *. pipe)) in
    let measured =
      Option.value ~default:(0., 0.)
        (Trace.Series.min_max (Trace.Queue_trace.series r.q1) ~t0:r.t0 ~t1:r.t1)
    in
    Report.expect
      ~metric:(fmt "queue length, w=(%d,%d) tau=%gs" w1 w2 tau)
      ~paper:(fmt "q = sum(wnd) - 2P = %.2f" expected)
      ~measured:(fmt "%.0f..%.0f" (fst measured) (snd measured))
      (Float.abs (fst measured -. expected) <= 1.5
      && Float.abs (snd measured -. expected) <= 1.5)
  in
  let util_check =
    (* Windows too small for the pipe: the line runs at sum(wnd)*tx/RTT. *)
    let w1 = 10 and w2 = 8 and tau = 1.0 in
    let r, _pipe = run ~w1 ~w2 ~tau in
    let rtt = (2. *. tau) +. data_tx +. 0.008 in
    let expected = float_of_int (w1 + w2) *. data_tx /. rtt in
    Report.expect
      ~metric:(fmt "underfilled pipe, w=(%d,%d)" w1 w2)
      ~paper:(fmt "utilization = sum(wnd)*tx/RTT = %s" (pct expected))
      ~measured:(pct r.util_fwd)
      (Float.abs (r.util_fwd -. expected) <= 0.04)
  in
  let capacity_check =
    (* The adaptive case: windows grow until sum(wnd) = C = B + 2P, then
       each connection's +1 overshoot is dropped, so the peak total window
       is C + nconns. *)
    let r = Runner.run (scenario_fig2 speed) in
    let dt = 0.25 in
    let arrays =
      Array.map
        (fun trace ->
          Trace.Series.resample (Trace.Cwnd_trace.cwnd trace) ~t0:r.t0 ~t1:r.t1
            ~dt)
        r.cwnds
    in
    let n = Array.length arrays.(0) in
    let peak = ref 0. in
    for i = 0 to n - 1 do
      let total =
        Array.fold_left
          (fun acc a -> acc +. Float.of_int (int_of_float a.(i)))
          0. arrays
      in
      if total > !peak then peak := total
    done;
    Report.in_band ~metric:"peak total window (adaptive, fig-2 config)"
      ~paper:"C + acceleration = (B + 2P) + 3 = 48" ~value:!peak ~lo:45.
      ~hi:50.
  in
  {
    Report.id = "TAB-FORMULA";
    title = "the 3.1 closed-form analysis: q = sum(wnd) - 2P; C = B + 2P";
    checks =
      [
        q_check ~w1:20 ~w2:15 ~tau:1.0;
        q_check ~w1:5 ~w2:4 ~tau:0.01;
        q_check ~w1:30 ~w2:25 ~tau:0.5;
        util_check;
        capacity_check;
      ];
  }

let registry =
  [
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig45", fig45);
    ("fig67", fig67);
    ("fig8", fig8);
    ("fig9", fig9);
    ("conjecture", conjecture_table);
    ("buffers", buffer_table);
    ("delack", delack_table);
    ("multihop", multihop_table);
    ("ablation", ablation_table);
    ("reno", reno_table);
    ("cczoo", cczoo_table);
    ("pacing", pacing_table);
    ("gateways", gateway_table);
    ("collapse", collapse_table);
    ("rtt", rtt_table);
    ("formula", formula_table);
  ]

let find name = List.assoc_opt name registry

let all ?(speed = Full) () =
  List.map
    (fun ((_, f) : string * (?speed:speed -> unit -> Report.outcome)) ->
      f ~speed ())
    registry
