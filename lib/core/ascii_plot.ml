(* For each column (time bin) compute the min..max of the step function in
   the bin so fast alternations appear as filled bands, as in the paper. *)
let column_ranges series ~t0 ~t1 ~width =
  let dt = (t1 -. t0) /. float_of_int width in
  Array.init width (fun k ->
      let bin_start = t0 +. (dt *. float_of_int k) in
      let bin_end = bin_start +. dt in
      let carried = Trace.Series.value_at series ~time:bin_start in
      let inside = Trace.Series.window series ~t0:bin_start ~t1:bin_end in
      let values =
        (match carried with Some v -> [ v ] | None -> [])
        @ List.map snd inside
      in
      match values with
      | [] -> None
      | v :: rest ->
        Some
          (List.fold_left Float.min v rest, List.fold_left Float.max v rest))

let observed_max ranges =
  Array.fold_left
    (fun acc r -> match r with None -> acc | Some (_, hi) -> Float.max acc hi)
    0. ranges

let draw_into grid ~height ~y_max ranges mark =
  let scale v =
    if y_max <= 0. then 0
    else
      let row = int_of_float (v /. y_max *. float_of_int (height - 1)) in
      max 0 (min (height - 1) row)
  in
  Array.iteri
    (fun col range ->
      match range with
      | None -> ()
      | Some (lo, hi) ->
        for row = scale lo to scale hi do
          let cell = grid.(row).(col) in
          grid.(row).(col) <-
            (if cell = ' ' then mark else if cell = mark then mark else '#')
        done)
    ranges

let render_grid grid ~width ~height ~y_max ~t0 ~t1 ~header =
  let buf = Buffer.create ((width + 10) * (height + 3)) in
  if header <> "" then begin
    Buffer.add_string buf header;
    Buffer.add_char buf '\n'
  end;
  for row = height - 1 downto 0 do
    let y = y_max *. float_of_int row /. float_of_int (height - 1) in
    Buffer.add_string buf (Printf.sprintf "%6.1f |" y);
    for col = 0 to width - 1 do
      Buffer.add_char buf grid.(row).(col)
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf ("       +" ^ String.make width '-' ^ "\n");
  Buffer.add_string buf
    (Printf.sprintf "        %-*.1f%*.1f (s)" (width - 8) t0 8 t1);
  Buffer.add_char buf '\n';
  Buffer.contents buf

let render ?(width = 72) ?(height = 16) ?y_max ?(label = "") series ~t0 ~t1 =
  if width < 8 || height < 2 then invalid_arg "Ascii_plot.render: too small";
  let ranges = column_ranges series ~t0 ~t1 ~width in
  let y_max =
    match y_max with
    | Some m -> m
    | None -> Float.max 1. (observed_max ranges)
  in
  let grid = Array.make_matrix height width ' ' in
  draw_into grid ~height ~y_max ranges '*';
  render_grid grid ~width ~height ~y_max ~t0 ~t1 ~header:label

let render_pair ?(width = 72) ?(height = 16) ?y_max ?labels a b ~t0 ~t1 =
  if width < 8 || height < 2 then invalid_arg "Ascii_plot.render_pair: too small";
  let ranges_a = column_ranges a ~t0 ~t1 ~width in
  let ranges_b = column_ranges b ~t0 ~t1 ~width in
  let y_max =
    match y_max with
    | Some m -> m
    | None -> Float.max 1. (Float.max (observed_max ranges_a) (observed_max ranges_b))
  in
  let grid = Array.make_matrix height width ' ' in
  draw_into grid ~height ~y_max ranges_a '*';
  draw_into grid ~height ~y_max ranges_b '+';
  let header =
    match labels with
    | Some (la, lb) -> Printf.sprintf "* %s   + %s   # both" la lb
    | None -> ""
  in
  render_grid grid ~width ~height ~y_max ~t0 ~t1 ~header
