(* Validated numeric argument parsing.  [float_of_string] happily
   accepts "nan", "inf" and negative values where the CLI means a
   duration, a rate or a probability; every netsim flag goes through
   [parse_float] with the range it actually requires, so a bad value
   fails loudly at the command line instead of corrupting a run. *)

type check = Positive | Non_negative | Probability

let check_to_string = function
  | Positive -> "a finite value > 0"
  | Non_negative -> "a finite value >= 0"
  | Probability -> "a probability in [0,1]"

let admits check v =
  (* Explicit [is_finite] first: NaN slips through every comparison
     (e.g. [not (nan < 0.)]), so range checks alone cannot reject it. *)
  Float.is_finite v
  &&
  match check with
  | Positive -> v > 0.
  | Non_negative -> v >= 0.
  | Probability -> v >= 0. && v <= 1.

let check ~what c v =
  if admits c v then Ok v
  else
    Error
      (Printf.sprintf "%s must be %s (got %s)" what (check_to_string c)
         (if Float.is_nan v then "nan" else Printf.sprintf "%g" v))

let parse_float ~what c s =
  match float_of_string_opt (String.trim s) with
  | None -> Error (Printf.sprintf "%s: %S is not a number" what s)
  | Some v -> check ~what c v
