(** Paper-vs-measured reporting.

    Every experiment produces an {!outcome}: a list of named checks, each
    carrying the value the paper reports, the value we measured, and — when
    the expectation is quantitative — whether the measurement lands in the
    acceptance band.  Checks with [pass = None] are informational (the
    paper gives no number to compare against). *)

type check = {
  metric : string;
  paper : string;  (** what the paper reports *)
  measured : string;
  pass : bool option;
}

type outcome = { id : string; title : string; checks : check list }

(** An informational check (no acceptance band). *)
val info : metric:string -> paper:string -> measured:string -> check

(** A numeric check passing iff [lo <= value <= hi]. *)
val in_band :
  metric:string -> paper:string -> value:float -> lo:float -> hi:float -> check

(** A boolean check. *)
val expect :
  metric:string -> paper:string -> measured:string -> bool -> check

val all_passed : outcome -> bool
val failed_checks : outcome -> check list

(** Render as an aligned ASCII table. *)
val pp : Format.formatter -> outcome -> unit

val print : outcome -> unit

(** One summary line: "FIG4  12/12 checks  PASS". *)
val summary_line : outcome -> string

(** Render one outcome (or a list) as JSON, for machine consumption:
    [{"id": ..., "title": ..., "passed": bool, "checks": [...]}]. *)
val to_json : outcome -> string

val list_to_json : outcome list -> string
