(* Crash bundles: the semantic layer over [Obs.Bundle].

   A bundle captures everything needed to re-instantiate a failed or
   budget-killed run deterministically: the full scenario value
   (Marshal — Scenario.t is plain data, including CC specs, RTO params,
   discipline kind and fault specs, and carries every seed), plus a
   meta.json describing what happened (kind, reason, exception text and
   backtrace, engine counters, budgets).  [netsim replay] loads the
   bundle, re-runs the scenario and checks the outcome matches. *)

type meta = {
  scenario_name : string;
  kind : string;
  reason : string;
  exn_text : string option;
  backtrace : string option;
  validation : string option;
  events_run : int;
  queue_length : int;
  sim_now : float;
  max_events : int option;
  max_wall : float option;
}

let format_tag = "netsim-bundle-v1"

let kind_exception = "exception"
let kind_validation = "validation"
let kind_event_budget = "event-budget"
let kind_wall_budget = "wall-budget"
let kind_interrupt = "interrupt"

let kind_of_stop (reason : Engine.Sim.stop_reason) =
  match reason with
  | Engine.Sim.Completed -> invalid_arg "Crash.kind_of_stop: Completed"
  | Engine.Sim.Event_budget _ -> kind_event_budget
  | Engine.Sim.Wall_budget _ -> kind_wall_budget
  | Engine.Sim.Stop_requested -> kind_interrupt

(* ------------------------------------------------------------------ *)
(* meta.json rendering / parsing                                       *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str_or_null = function
  | None -> "null"
  | Some s -> "\"" ^ escape s ^ "\""

let int_or_null = function
  | None -> "null"
  | Some i -> string_of_int i

let float_or_null = function
  | None -> "null"
  | Some f -> Obs.Json.float_repr f

let meta_to_json m =
  Printf.sprintf
    "{\"format\":\"%s\",\"scenario\":\"%s\",\"kind\":\"%s\",\
     \"reason\":\"%s\",\"exn\":%s,\"backtrace\":%s,\"validation\":%s,\
     \"events_run\":%d,\"queue_length\":%d,\"sim_now\":%.17g,\
     \"max_events\":%s,\"max_wall\":%s}\n"
    format_tag (escape m.scenario_name) (escape m.kind) (escape m.reason)
    (str_or_null m.exn_text)
    (str_or_null m.backtrace)
    (str_or_null m.validation)
    m.events_run m.queue_length m.sim_now
    (int_or_null m.max_events)
    (float_or_null m.max_wall)

let meta_of_json text =
  match Obs.Json.parse text with
  | Error msg -> Error ("meta.json: " ^ msg)
  | Ok json -> (
    let str k = Option.bind (Obs.Json.member k json) Obs.Json.to_string in
    let num k = Option.bind (Obs.Json.member k json) Obs.Json.to_float in
    match str "format" with
    | Some tag when tag = format_tag -> (
      match (str "scenario", str "kind", str "reason") with
      | Some scenario_name, Some kind, Some reason ->
        Ok
          {
            scenario_name;
            kind;
            reason;
            exn_text = str "exn";
            backtrace = str "backtrace";
            validation = str "validation";
            events_run =
              (match num "events_run" with
               | Some f -> int_of_float f
               | None -> 0);
            queue_length =
              (match num "queue_length" with
               | Some f -> int_of_float f
               | None -> 0);
            sim_now = (match num "sim_now" with Some f -> f | None -> 0.);
            max_events = Option.map int_of_float (num "max_events");
            max_wall = num "max_wall";
          }
      | _ -> Error "meta.json: missing scenario/kind/reason")
    | Some tag -> Error ("meta.json: unknown format " ^ tag)
    | None -> Error "meta.json: missing format tag")

(* ------------------------------------------------------------------ *)
(* Write / load                                                        *)
(* ------------------------------------------------------------------ *)

let bundle_path ~dir (scenario : Scenario.t) =
  Filename.concat dir scenario.name

let write ~dir ~(scenario : Scenario.t) ~sim ~kind ~reason ?exn_text
    ?backtrace ?validation ?flight_text ?metrics_json ?max_events ?max_wall
    () =
  let meta =
    {
      scenario_name = scenario.name;
      kind;
      reason;
      exn_text;
      backtrace;
      validation;
      events_run = Engine.Sim.events_run sim;
      queue_length = Engine.Sim.queue_length sim;
      sim_now = Engine.Sim.now sim;
      max_events;
      max_wall;
    }
  in
  match Marshal.to_string scenario [] with
  | exception e ->
    Error ("scenario not marshalable: " ^ Printexc.to_string e)
  | blob ->
    Obs.Bundle.write
      ~dir:(bundle_path ~dir scenario)
      ~meta_json:(meta_to_json meta) ~scenario_blob:blob ?flight_text
      ?metrics_json ()

let load dir =
  match Obs.Bundle.load ~dir with
  | Error _ as e -> e
  | Ok (meta_json, blob) -> (
    match meta_of_json meta_json with
    | Error _ as e -> e
    | Ok meta -> (
      match (Marshal.from_string blob 0 : Scenario.t) with
      | exception e ->
        Error ("scenario.bin: " ^ Printexc.to_string e)
      | scenario -> Ok (scenario, meta)))
