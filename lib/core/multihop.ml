type spec = {
  num_switches : int;
  connections : int;
  tau : float;
  buffer : int option;
  duration : float;
  warmup : float;
  seed : int;
  trunk_faults : (int * Faults.Spec.t) list;
}

let default_spec =
  {
    num_switches = 4;
    connections = 48;
    tau = 0.01;
    buffer = Some 30;
    duration = 400.;
    warmup = 150.;
    seed = 42;
    trunk_faults = [];
  }

type result = {
  spec : spec;
  chain : Net.Topology.chain;
  conns : Tcp.Connection.t array;
  trunk_queues : (Trace.Queue_trace.t * Trace.Queue_trace.t) array;
  trunk_utils : (float * float) array;
  trunk_deps : (Trace.Dep_log.t * Trace.Dep_log.t) array;
  drops : Trace.Drop_log.t;
  t0 : float;
  t1 : float;
  fault_plans : (int * Faults.Plan.t) list;
}

(* Assign endpoints so path lengths cycle through 1, 2 and 3 trunk hops and
   directions alternate, roughly the traffic pattern described in §5. *)
let endpoints ~num_switches ~index =
  let hops = 1 + (index mod (num_switches - 1)) in
  let starts = num_switches - hops in
  let origin = index / (num_switches - 1) mod starts in
  if index mod 2 = 0 then (origin, origin + hops) else (origin + hops, origin)

let run spec =
  if spec.num_switches < 2 then invalid_arg "Multihop.run: too few switches";
  if spec.duration <= spec.warmup then invalid_arg "Multihop.run: bad window";
  let sim = Engine.Sim.create () in
  let params = Net.Topology.params ~tau:spec.tau ~buffer:spec.buffer () in
  let chain = Net.Topology.chain sim params ~num_switches:spec.num_switches in
  let rng = Engine.Rng.create ~seed:spec.seed in
  let conns =
    Array.init spec.connections (fun i ->
        let src_idx, dst_idx = endpoints ~num_switches:spec.num_switches ~index:i in
        let config =
          Tcp.Config.make ~conn:(i + 1) ~src_host:chain.hosts.(src_idx)
            ~dst_host:chain.hosts.(dst_idx)
            ~start_time:(Engine.Rng.uniform rng ~lo:0. ~hi:10.)
            ()
        in
        Tcp.Connection.create chain.cnet config)
  in
  (* Fault plans attach to the right-going side of the named trunk and
     key their RNG streams off the spec seed (each link id still gets its
     own stream, so plans never interfere). *)
  let fault_plans =
    List.map
      (fun (trunk, fspec) ->
        if trunk < 0 || trunk >= Array.length chain.Net.Topology.trunks then
          invalid_arg
            (Printf.sprintf "Multihop.run: no trunk %d in a %d-switch chain"
               trunk spec.num_switches);
        let fwd, _bwd = chain.Net.Topology.trunks.(trunk) in
        (trunk, Faults.Plan.install chain.cnet fwd ~seed:spec.seed fspec))
      spec.trunk_faults
  in
  let now = Engine.Sim.now sim in
  let trunk_queues =
    Array.map
      (fun (fwd, bwd) ->
        (Trace.Queue_trace.attach fwd ~now, Trace.Queue_trace.attach bwd ~now))
      chain.trunks
  in
  let trunk_deps =
    Array.map
      (fun (fwd, bwd) -> (Trace.Dep_log.attach fwd, Trace.Dep_log.attach bwd))
      chain.trunks
  in
  let drops = Trace.Drop_log.create () in
  List.iter (Trace.Drop_log.watch drops) (Net.Network.links chain.cnet);
  let validation =
    if Runner.env_forces_validation () then
      Some
        (Validate.Harness.attach chain.cnet ~conns:(Array.to_list conns))
    else None
  in
  let meters = ref [||] in
  ignore
    (Engine.Sim.at sim ~time:spec.warmup (fun () ->
         let now = Engine.Sim.now sim in
         meters :=
           Array.map
             (fun (fwd, bwd) ->
               ( Trace.Util_meter.start fwd ~now,
                 Trace.Util_meter.start bwd ~now ))
             chain.trunks)
      : Engine.Sim.handle);
  Engine.Sim.run sim ~until:spec.duration;
  let now = Engine.Sim.now sim in
  (match validation with
   | None -> ()
   | Some harness ->
     let report = Validate.Harness.finalize harness ~now in
     if not (Validate.Report.is_clean report) then begin
       prerr_endline "netsim validation FAILED for multihop run:";
       prerr_endline (Validate.Report.to_string report);
       failwith
         (Printf.sprintf "validation failed for multihop run: %s"
            (Validate.Report.summary report))
     end);
  let trunk_utils =
    Array.map
      (fun (fwd, bwd) ->
        ( Trace.Util_meter.utilization fwd ~now,
          Trace.Util_meter.utilization bwd ~now ))
      !meters
  in
  {
    spec;
    chain;
    conns;
    trunk_queues;
    trunk_utils;
    trunk_deps;
    drops;
    t0 = spec.warmup;
    t1 = spec.duration;
    fault_plans;
  }

let hops result i =
  let src_idx, dst_idx =
    endpoints ~num_switches:result.spec.num_switches ~index:i
  in
  abs (dst_idx - src_idx)
