(** A complete experiment description on the Figure-1 dumbbell: bottleneck
    parameters, the set of connections (with their direction), and the
    measurement window.

    [Forward] connections source data on Host-1 (destination Host-2);
    [Reverse] connections source on Host-2.  The paper's one-way
    configurations use only [Forward] connections; two-way configurations
    use both. *)

type direction = Forward | Reverse

type conn_spec = {
  dir : direction;
  cc : Tcp.Cc.spec;  (** congestion controller ({!Tcp.Cc} registry name) *)
  start_time : float;
  delayed_ack : bool;
  ack_size : int;  (** bytes; 0 for the zero-length-ACK system *)
  loss_detection : bool;
  maxwnd : int;  (** receiver-advertised window; paper default 1000 *)
  rto_params : Tcp.Rto.params;  (** timer behavior; default BSD 500 ms ticks *)
  pacing : float option;
      (** minimum spacing between data packets, s; [None] = nonpaced *)
  rtt_skew : float;  (** extra one-way latency for this sender's data, s *)
  flow_size : int option;  (** packets to transfer; [None] = infinite *)
}

(** Connection with paper defaults (Tahoe, modified CA, immediate ACKs,
    50-byte ACKs, started at [start_time], default 0).  [?cc] picks any
    {!Tcp.Cc} registry entry and wins over the legacy [?algorithm]
    selector. *)
val conn :
  ?algorithm:Tcp.Cong.algorithm ->
  ?cc:Tcp.Cc.spec ->
  ?start_time:float ->
  ?delayed_ack:bool ->
  ?ack_size:int ->
  ?loss_detection:bool ->
  ?maxwnd:int ->
  ?rto_params:Tcp.Rto.params ->
  ?pacing:float option ->
  ?rtt_skew:float ->
  ?flow_size:int option ->
  direction ->
  conn_spec

(** Fixed-window connection: no congestion control, no loss detection
    (used with infinite buffers, Figures 8-9). *)
val fixed_conn :
  ?start_time:float -> ?ack_size:int -> window:int -> direction -> conn_spec

(** Where a fault plan attaches on the dumbbell: the bottleneck link
    carrying forward data (and reverse ACKs), or the one carrying
    reverse data (and forward ACKs). *)
type fault_site = Fwd_bottleneck | Bwd_bottleneck

type t = {
  name : string;
  tau : float;  (** bottleneck propagation delay, s *)
  buffer : int option;  (** bottleneck buffer, packets; [None] = infinite *)
  gateway : Net.Discipline.kind;  (** bottleneck queueing discipline *)
  conns : conn_spec list;
  duration : float;  (** total simulated time, s *)
  warmup : float;  (** measurements cover [warmup, duration) *)
  sample_dt : float;  (** resampling grid for correlation analyses, s *)
  validate : bool;
      (** run the {!Validate.Harness} invariant checkers alongside the
          simulation (default [false]; the [NETSIM_VALIDATE] environment
          variable forces it on) *)
  faults : (fault_site * Faults.Spec.t) list;
      (** fault plans to install on the bottleneck links (at most one
          per site); default none *)
  fault_seed : int;
      (** seed for the fault RNG streams, independent of everything
          else in the scenario; default 1 *)
}

val make :
  name:string ->
  tau:float ->
  buffer:int option ->
  ?gateway:Net.Discipline.kind ->
  conns:conn_spec list ->
  ?duration:float ->
  ?warmup:float ->
  ?sample_dt:float ->
  ?validate:bool ->
  ?faults:(fault_site * Faults.Spec.t) list ->
  ?fault_seed:int ->
  unit ->
  t

(** Paper pipe size [P] for this scenario (packets per direction). *)
val pipe : t -> float

(** Bottleneck transmission time of a data packet (s). *)
val data_tx : t -> float

(** Stagger connection starts: spec [i] starts at [i * step] (plus its own
    [start_time]).  Avoids perfectly tied phases at t = 0. *)
val stagger : step:float -> conn_spec list -> conn_spec list
