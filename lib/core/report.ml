type check = {
  metric : string;
  paper : string;
  measured : string;
  pass : bool option;
}

type outcome = { id : string; title : string; checks : check list }

let info ~metric ~paper ~measured = { metric; paper; measured; pass = None }

let in_band ~metric ~paper ~value ~lo ~hi =
  {
    metric;
    paper;
    measured = Printf.sprintf "%.3g" value;
    pass = Some (value >= lo && value <= hi);
  }

let expect ~metric ~paper ~measured pass =
  { metric; paper; measured; pass = Some pass }

let all_passed outcome =
  List.for_all
    (fun c -> match c.pass with Some false -> false | _ -> true)
    outcome.checks

let failed_checks outcome =
  List.filter (fun c -> c.pass = Some false) outcome.checks

let pad width s =
  if String.length s >= width then s else s ^ String.make (width - String.length s) ' '

let pp ppf outcome =
  let widths =
    List.fold_left
      (fun (a, b, c) check ->
        ( max a (String.length check.metric),
          max b (String.length check.paper),
          max c (String.length check.measured) ))
      (String.length "metric", String.length "paper", String.length "measured")
      outcome.checks
  in
  let w1, w2, w3 = widths in
  Format.fprintf ppf "=== %s: %s ===@." outcome.id outcome.title;
  Format.fprintf ppf "%s  %s  %s  %s@." (pad w1 "metric") (pad w2 "paper")
    (pad w3 "measured") "verdict";
  List.iter
    (fun check ->
      let verdict =
        match check.pass with
        | None -> "-"
        | Some true -> "ok"
        | Some false -> "FAIL"
      in
      Format.fprintf ppf "%s  %s  %s  %s@." (pad w1 check.metric)
        (pad w2 check.paper) (pad w3 check.measured) verdict)
    outcome.checks

let print outcome = Format.printf "%a@." pp outcome

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let check_to_json c =
  Printf.sprintf
    {|{"metric":"%s","paper":"%s","measured":"%s","pass":%s}|}
    (json_escape c.metric) (json_escape c.paper) (json_escape c.measured)
    (match c.pass with
     | None -> "null"
     | Some true -> "true"
     | Some false -> "false")

let to_json outcome =
  Printf.sprintf {|{"id":"%s","title":"%s","passed":%b,"checks":[%s]}|}
    (json_escape outcome.id) (json_escape outcome.title)
    (all_passed outcome)
    (String.concat "," (List.map check_to_json outcome.checks))

let list_to_json outcomes =
  "[" ^ String.concat "," (List.map to_json outcomes) ^ "]"

let summary_line outcome =
  let total = List.length outcome.checks in
  let checked =
    List.length (List.filter (fun c -> c.pass <> None) outcome.checks)
  in
  let passed =
    List.length (List.filter (fun c -> c.pass = Some true) outcome.checks)
  in
  Printf.sprintf "%-10s %d/%d checks passed (%d informational)  %s" outcome.id
    passed checked (total - checked)
    (if all_passed outcome then "PASS" else "FAIL")
