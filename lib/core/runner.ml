(* Watchdog budgets, enforced from inside the event loop via
   [Sim.run_guarded].  [no_budget] (and no [stop] predicate) keeps the
   plain [Sim.run] hot path — zero supervision overhead for unbudgeted
   runs. *)
type budget = { max_events : int option; max_wall : float option }

let no_budget = { max_events = None; max_wall = None }

let budget ?max_events ?max_wall () = { max_events; max_wall }

type result = {
  scenario : Scenario.t;
  dumbbell : Net.Topology.dumbbell;
  conns : (Scenario.conn_spec * Tcp.Connection.t) array;
  q1 : Trace.Queue_trace.t;
  q2 : Trace.Queue_trace.t;
  cwnds : Trace.Cwnd_trace.t array;
  drops : Trace.Drop_log.t;
  dep_fwd : Trace.Dep_log.t;
  dep_bwd : Trace.Dep_log.t;
  soj_fwd : Trace.Sojourn_trace.t;
  soj_bwd : Trace.Sojourn_trace.t;
  util_fwd : float;
  util_bwd : float;
  t0 : float;
  t1 : float;
  delivered : int array;
  validation : Validate.Harness.t option;
  fault_plans : (Scenario.fault_site * Faults.Plan.t) list;
  obs : Obs.Probe.t option;
  stop : Engine.Sim.stop_reason;
  bundle : string option;
}

(* NETSIM_VALIDATE=1 (any value but "" / "0") forces validation on for
   every run, letting the examples and bins be audited without code
   changes. *)
let env_forces_validation () =
  match Sys.getenv_opt "NETSIM_VALIDATE" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let connection_config (d : Net.Topology.dumbbell) ~conn_id
    (spec : Scenario.conn_spec) =
  let src_host, dst_host =
    match spec.dir with
    | Scenario.Forward -> (d.host1, d.host2)
    | Scenario.Reverse -> (d.host2, d.host1)
  in
  Tcp.Config.make ~conn:conn_id ~src_host ~dst_host ~ack_size:spec.ack_size
    ~maxwnd:spec.maxwnd ~cc:spec.cc ~start_time:spec.start_time
    ~delayed_ack:spec.delayed_ack ~loss_detection:spec.loss_detection
    ~rto_params:spec.rto_params ~pacing:spec.pacing ~rtt_skew:spec.rtt_skew
    ~flow_size:spec.flow_size ()

let run ?(obs = Obs.Probe.disabled) ?(budget = no_budget) ?stop ?bundle_dir
    (scenario : Scenario.t) =
  let sim = Engine.Sim.create () in
  let params = Net.Topology.params ~gateway:scenario.gateway ~tau:scenario.tau
      ~buffer:scenario.buffer () in
  let dumbbell = Net.Topology.dumbbell sim params in
  let conns =
    Array.of_list
      (List.mapi
         (fun i spec ->
           let config = connection_config dumbbell ~conn_id:(i + 1) spec in
           (spec, Tcp.Connection.create dumbbell.net config))
         scenario.conns)
  in
  (* Fault plans go on before the validation harness so every checker is
     born knowing the link has a fault hook point; hook order itself does
     not matter (the link announces faults before firing drop hooks). *)
  let fault_plans =
    List.map
      (fun (site, spec) ->
        let link =
          match site with
          | Scenario.Fwd_bottleneck -> dumbbell.Net.Topology.fwd
          | Scenario.Bwd_bottleneck -> dumbbell.Net.Topology.bwd
        in
        (site, Faults.Plan.install dumbbell.net link ~seed:scenario.fault_seed
                 spec))
      scenario.faults
  in
  let validation =
    if scenario.validate || env_forces_validation () then
      Some
        (Validate.Harness.attach dumbbell.net
           ~conns:(Array.to_list (Array.map snd conns)))
    else None
  in
  let obs =
    if Obs.Probe.is_enabled obs then begin
      let probe =
        Obs.Probe.attach obs ~net:dumbbell.net
          ~conns:
            (List.mapi
               (fun i (_spec, c) -> (i + 1, c))
               (Array.to_list conns))
      in
      (match validation with
       | Some harness ->
         Obs.Probe.arm_report probe (Validate.Harness.report harness)
       | None -> ());
      Some probe
    end
    else None
  in
  let now = Engine.Sim.now sim in
  let q1 = Trace.Queue_trace.attach dumbbell.fwd ~now in
  let q2 = Trace.Queue_trace.attach dumbbell.bwd ~now in
  let cwnds =
    Array.map
      (fun (_spec, c) -> Trace.Cwnd_trace.attach (Tcp.Connection.sender c) ~now)
      conns
  in
  let drops = Trace.Drop_log.create () in
  List.iter (Trace.Drop_log.watch drops) (Net.Network.links dumbbell.net);
  let dep_fwd = Trace.Dep_log.attach dumbbell.fwd in
  let dep_bwd = Trace.Dep_log.attach dumbbell.bwd in
  let soj_fwd = Trace.Sojourn_trace.attach dumbbell.fwd in
  let soj_bwd = Trace.Sojourn_trace.attach dumbbell.bwd in
  (* Metering starts at the end of warm-up. *)
  let meters = ref None in
  let delivered_at_warmup = Array.make (Array.length conns) 0 in
  ignore
    (Engine.Sim.at sim ~time:scenario.warmup (fun () ->
         let now = Engine.Sim.now sim in
         meters :=
           Some
             ( Trace.Util_meter.start dumbbell.fwd ~now,
               Trace.Util_meter.start dumbbell.bwd ~now );
         Array.iteri
           (fun i (_spec, c) ->
             delivered_at_warmup.(i) <- Tcp.Connection.delivered c)
           conns)
      : Engine.Sim.handle);
  (* Crash-bundle plumbing: best-effort, first write wins (an exception
     bundle is not overwritten by a later validation bundle). *)
  let bundle = ref None in
  let write_bundle ~kind ~reason ?exn_text ?backtrace ?validation () =
    match bundle_dir with
    | None -> ()
    | Some dir ->
      if !bundle = None then (
        match
          Crash.write ~dir ~scenario ~sim ~kind ~reason ?exn_text ?backtrace
            ?validation
            ?flight_text:
              (Option.bind obs (fun probe ->
                   Obs.Probe.flight_text probe
                     ~reason:("crash bundle: " ^ reason)))
            ?metrics_json:(Option.map Obs.Probe.metrics_json obs)
            ?max_events:budget.max_events ?max_wall:budget.max_wall ()
        with
        | Ok path -> bundle := Some path
        | Error msg ->
          Printf.eprintf "netsim: failed to write crash bundle for %s: %s\n%!"
            scenario.name msg)
  in
  let guarded =
    budget.max_events <> None || budget.max_wall <> None || Option.is_some stop
  in
  let stop_reason =
    try
      if guarded then
        Engine.Sim.run_guarded sim ~until:scenario.duration
          ?max_events:budget.max_events ?max_wall:budget.max_wall
          ~wall_clock:Unix.gettimeofday ?stop ()
      else begin
        Engine.Sim.run sim ~until:scenario.duration;
        Engine.Sim.Completed
      end
    with exn ->
      (* Salvage the postmortem before the exception unwinds the run. *)
      let bt = Printexc.get_raw_backtrace () in
      let exn_text = Printexc.to_string exn in
      (match obs with
       | Some probe ->
         Obs.Probe.dump_flight probe
           ~reason:(Printf.sprintf "Sim.run raised %s" exn_text)
       | None -> ());
      write_bundle ~kind:Crash.kind_exception
        ~reason:("Sim.run raised " ^ exn_text)
        ~exn_text
        ~backtrace:(Printexc.raw_backtrace_to_string bt)
        ();
      (match obs with Some probe -> Obs.Probe.finish probe | None -> ());
      Printexc.raise_with_backtrace exn bt
  in
  let stopped_early = stop_reason <> Engine.Sim.Completed in
  let now = Engine.Sim.now sim in
  let validation_summary = ref None in
  (match validation with
   | None -> ()
   | Some harness ->
     let report = Validate.Harness.finalize harness ~now in
     if not (Validate.Report.is_clean report) then begin
       validation_summary := Some (Validate.Report.summary report);
       (* An invariant violation means the simulation itself cannot be
          trusted; always say so loudly. *)
       prerr_endline
         (Printf.sprintf "netsim validation FAILED for scenario %s:"
            scenario.name);
       prerr_endline (Validate.Report.to_string report)
     end);
  (* Bundle on any bad ending: a watchdog stop (tagged with its reason,
     and with the validation verdict when there is one) or a validation
     violation on a completed run. *)
  if stopped_early then
    write_bundle
      ~kind:(Crash.kind_of_stop stop_reason)
      ~reason:(Engine.Sim.stop_reason_to_string stop_reason)
      ?validation:!validation_summary ()
  else (
    match !validation_summary with
    | Some summary ->
      write_bundle ~kind:Crash.kind_validation
        ~reason:("validation failed: " ^ summary)
        ~validation:summary ()
    | None -> ());
  (match !validation_summary with
   | Some summary when env_forces_validation () && not scenario.validate ->
     failwith
       (Printf.sprintf "validation failed for scenario %s: %s" scenario.name
          summary)
   | _ -> ());
  (match obs with Some probe -> Obs.Probe.finish probe | None -> ());
  let util_fwd, util_bwd =
    match !meters with
    | Some (fwd, bwd) ->
      ( Trace.Util_meter.utilization fwd ~now,
        Trace.Util_meter.utilization bwd ~now )
    | None ->
      (* A run stopped before the warmup event has no measurement
         window; report zeros rather than failing the salvage. *)
      if stopped_early then (0., 0.)
      else failwith "Runner: warmup event never fired"
  in
  let delivered =
    match !meters with
    | None -> Array.make (Array.length conns) 0
    | Some _ ->
      Array.mapi
        (fun i (_spec, c) ->
          Tcp.Connection.delivered c - delivered_at_warmup.(i))
        conns
  in
  {
    scenario;
    dumbbell;
    conns;
    q1;
    q2;
    cwnds;
    drops;
    dep_fwd;
    dep_bwd;
    soj_fwd;
    soj_bwd;
    util_fwd;
    util_bwd;
    t0 = scenario.warmup;
    t1 =
      (if stopped_early then Float.max scenario.warmup now
       else scenario.duration);
    delivered;
    validation;
    fault_plans;
    obs;
    stop = stop_reason;
    bundle = !bundle;
  }

let validation_report r =
  Option.map (fun h -> Validate.Harness.report h) r.validation

let goodput r i = float_of_int r.delivered.(i) /. (r.t1 -. r.t0)

let goodput_dir r dir =
  let total = ref 0. in
  Array.iteri
    (fun i (spec, _c) ->
      if spec.Scenario.dir = dir then total := !total +. goodput r i)
    r.conns;
  !total

let drops_in_window r = Trace.Drop_log.in_window r.drops ~t0:r.t0 ~t1:r.t1

let epochs ?(gap = 5.) r = Analysis.Epochs.detect ~gap (drops_in_window r)

let queue_phase r =
  Analysis.Sync.classify
    (Trace.Queue_trace.series r.q1)
    (Trace.Queue_trace.series r.q2)
    ~t0:r.t0 ~t1:r.t1 ~dt:r.scenario.sample_dt

let cwnd_phase r i j =
  Analysis.Sync.classify
    (Trace.Cwnd_trace.cwnd r.cwnds.(i))
    (Trace.Cwnd_trace.cwnd r.cwnds.(j))
    ~t0:r.t0 ~t1:r.t1 ~dt:r.scenario.sample_dt

let effective_pipe r =
  let data_tx = Scenario.data_tx r.scenario in
  let pipe trace =
    Trace.Sojourn_trace.effective_pipe_packets trace ~data_tx ~t0:r.t0 ~t1:r.t1
  in
  match (pipe r.soj_fwd, pipe r.soj_bwd) with
  | Some a, Some b -> Some (Float.max a b)
  | (Some _ as x), None | None, (Some _ as x) -> x
  | None, None -> None
