(** Validated numeric argument parsing for the CLI.

    [float_of_string] accepts ["nan"], ["inf"] and negative values
    where netsim flags mean durations, rates or probabilities; these
    helpers reject non-finite and out-of-range values with an error
    naming the offending flag. *)

type check =
  | Positive  (** finite and > 0: durations, rates, intervals *)
  | Non_negative  (** finite and >= 0: warmup, skew, jitter, times *)
  | Probability  (** finite and in [0,1]: loss / duplication rates *)

(** Human-readable requirement, e.g. ["a finite value > 0"]. *)
val check_to_string : check -> string

(** Does [v] satisfy the check?  NaN never does. *)
val admits : check -> float -> bool

(** [check ~what c v] is [Ok v] or an error naming [what] and the
    requirement. *)
val check : what:string -> check -> float -> (float, string) result

(** Parse then {!check}; malformed input also names [what]. *)
val parse_float : what:string -> check -> string -> (float, string) result
