type direction = Forward | Reverse

type conn_spec = {
  dir : direction;
  cc : Tcp.Cc.spec;
  start_time : float;
  delayed_ack : bool;
  ack_size : int;
  loss_detection : bool;
  maxwnd : int;
  rto_params : Tcp.Rto.params;
  pacing : float option;
  rtt_skew : float;
  flow_size : int option;
}

let conn ?algorithm ?cc ?(start_time = 0.)
    ?(delayed_ack = false) ?(ack_size = 50) ?(loss_detection = true)
    ?(maxwnd = 1000) ?(rto_params = Tcp.Rto.default_params) ?(pacing = None)
    ?(rtt_skew = 0.) ?(flow_size = None) dir =
  let cc =
    match (cc, algorithm) with
    | Some s, _ -> s
    | None, Some a -> Tcp.Cc.spec_of_algorithm a
    | None, None -> Tcp.Cc.spec "tahoe"
  in
  {
    dir;
    cc;
    start_time;
    delayed_ack;
    ack_size;
    loss_detection;
    maxwnd;
    rto_params;
    pacing;
    rtt_skew;
    flow_size;
  }

let fixed_conn ?(start_time = 0.) ?(ack_size = 50) ~window dir =
  {
    dir;
    cc = Tcp.Cc.spec ~params:[ ("w", float_of_int window) ] "fixed";
    start_time;
    delayed_ack = false;
    ack_size;
    loss_detection = false;
    maxwnd = max 1000 (window + 1);
    rto_params = Tcp.Rto.default_params;
    pacing = None;
    rtt_skew = 0.;
    flow_size = None;
  }

type fault_site = Fwd_bottleneck | Bwd_bottleneck

type t = {
  name : string;
  tau : float;
  buffer : int option;
  gateway : Net.Discipline.kind;
  conns : conn_spec list;
  duration : float;
  warmup : float;
  sample_dt : float;
  validate : bool;
  faults : (fault_site * Faults.Spec.t) list;
  fault_seed : int;
}

let make ~name ~tau ~buffer ?(gateway = Net.Discipline.Fifo) ~conns
    ?(duration = 600.) ?(warmup = 200.) ?(sample_dt = 0.5)
    ?(validate = false) ?(faults = []) ?(fault_seed = 1) () =
  if conns = [] then invalid_arg "Scenario.make: no connections";
  if duration <= warmup then invalid_arg "Scenario.make: duration <= warmup";
  if sample_dt <= 0. then invalid_arg "Scenario.make: sample_dt <= 0";
  let sites = List.map fst faults in
  if List.length (List.sort_uniq compare sites) <> List.length sites then
    invalid_arg "Scenario.make: duplicate fault site";
  { name; tau; buffer; gateway; conns; duration; warmup; sample_dt; validate;
    faults; fault_seed }

let data_packet_size = 500

let pipe t =
  Engine.Units.pipe_size
    ~rate_bps:(Engine.Units.kbps 50.)
    ~delay:t.tau ~packet_bytes:data_packet_size

let data_tx _t =
  Engine.Units.transmission_time ~bytes:data_packet_size
    ~rate_bps:(Engine.Units.kbps 50.)

let stagger ~step specs =
  List.mapi
    (fun i spec ->
      { spec with start_time = spec.start_time +. (float_of_int i *. step) })
    specs
