(** The §5 complex configuration: a chain of switches (the paper cites a
    four-switch topology from [19]) carrying ~50 connections whose path
    lengths are split between 1, 2 and 3 trunk hops, in both directions.
    Used to confirm that ACK-compression and synchronization-mode
    phenomena survive outside the dumbbell. *)

type spec = {
  num_switches : int;
  connections : int;
  tau : float;
  buffer : int option;
  duration : float;
  warmup : float;
  seed : int;  (** start-time jitter, and the fault-plan RNG streams *)
  trunk_faults : (int * Faults.Spec.t) list;
      (** fault plans, one per trunk index (attached to the right-going
          link of that trunk); default none *)
}

val default_spec : spec

type result = {
  spec : spec;
  chain : Net.Topology.chain;
  conns : Tcp.Connection.t array;
  (* Per trunk, per direction: index [i] is the trunk between switches
     [i] and [i+1]; [fst] carries right-going traffic. *)
  trunk_queues : (Trace.Queue_trace.t * Trace.Queue_trace.t) array;
  trunk_utils : (float * float) array;
  trunk_deps : (Trace.Dep_log.t * Trace.Dep_log.t) array;
  drops : Trace.Drop_log.t;
  t0 : float;
  t1 : float;
  fault_plans : (int * Faults.Plan.t) list;
      (** live plans (with injection ledgers), one per [trunk_faults]
          entry *)
}

val run : spec -> result

(** Hop length (in trunks) of connection [i]'s path. *)
val hops : result -> int -> int
