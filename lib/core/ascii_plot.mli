(** Terminal plots of step time series, in the spirit of the paper's
    figures.  Each column covers a time bin; the cells between the bin's
    minimum and maximum values are filled, so the paper's "darkened
    regions" (queue length alternating between adjacent values faster than
    the plot resolution) render the same way they do in print. *)

(** [render series ~t0 ~t1] draws one series.  [height] rows of data plus
    an axis; [width] columns.  [y_max] fixes the scale (defaults to the
    observed maximum). *)
val render :
  ?width:int ->
  ?height:int ->
  ?y_max:float ->
  ?label:string ->
  Trace.Series.t ->
  t0:float ->
  t1:float ->
  string

(** Overlay two series ([a] drawn with ['*'], [b] with ['+'], overlap
    ['#']). *)
val render_pair :
  ?width:int ->
  ?height:int ->
  ?y_max:float ->
  ?labels:string * string ->
  Trace.Series.t ->
  Trace.Series.t ->
  t0:float ->
  t1:float ->
  string
