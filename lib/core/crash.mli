(** Crash bundles: self-contained, replayable postmortems.

    On a [Sim.run] exception, a validation violation or a watchdog kill,
    {!Runner.run} (given a [bundle_dir]) writes a bundle directory via
    {!Obs.Bundle}:

    {v
    <bundle_dir>/<scenario-name>/meta.json      what happened
                                 scenario.bin   the full Scenario.t (Marshal)
                                 flight.txt     flight-recorder ring (if armed)
                                 metrics.json   final metrics snapshot (if any)
    v}

    [Scenario.t] is plain data carrying every seed and spec (CC, RTO,
    faults, discipline), so [scenario.bin] alone re-instantiates the run
    deterministically; [netsim replay <bundle>] does exactly that and
    checks the outcome matches [meta.json].

    Bundle paths are deterministic ([<dir>/<scenario.name>], no
    timestamps); writing the same scenario's bundle twice overwrites. *)

type meta = {
  scenario_name : string;
  kind : string;  (** one of the [kind_*] constants below *)
  reason : string;  (** human-readable one-liner *)
  exn_text : string option;  (** [Printexc.to_string] of the exception *)
  backtrace : string option;
  validation : string option;  (** [Validate.Report.summary] *)
  events_run : int;  (** engine counter at bundle time *)
  queue_length : int;
  sim_now : float;
  max_events : int option;  (** budgets in force, for replay *)
  max_wall : float option;
}

val kind_exception : string
val kind_validation : string
val kind_event_budget : string
val kind_wall_budget : string
val kind_interrupt : string

(** Bundle kind for an early {!Engine.Sim.stop_reason}.
    @raise Invalid_argument on [Completed]. *)
val kind_of_stop : Engine.Sim.stop_reason -> string

(** Deterministic single-line JSON (fixed key order). *)
val meta_to_json : meta -> string

val meta_of_json : string -> (meta, string) result

(** [<dir>/<scenario.name>] — where {!write} puts the bundle. *)
val bundle_path : dir:string -> Scenario.t -> string

(** Write a bundle under [dir].  Best-effort: all failures come back as
    [Error] so a failed postmortem never masks the crash it reports.
    Returns the bundle directory path. *)
val write :
  dir:string ->
  scenario:Scenario.t ->
  sim:Engine.Sim.t ->
  kind:string ->
  reason:string ->
  ?exn_text:string ->
  ?backtrace:string ->
  ?validation:string ->
  ?flight_text:string ->
  ?metrics_json:string ->
  ?max_events:int ->
  ?max_wall:float ->
  unit ->
  (string, string) result

(** Load a bundle directory back into its scenario and meta. *)
val load : string -> (Scenario.t * meta, string) result
