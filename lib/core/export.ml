let with_out path f =
  let oc = open_out path in
  (try f oc
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

let series_csv ~path ?(header = ("time", "value")) series =
  with_out path (fun oc ->
      let a, b = header in
      Printf.fprintf oc "%s,%s\n" a b;
      Trace.Series.iter series ~f:(fun ~time ~value ->
          Printf.fprintf oc "%.6f,%g\n" time value))

let dep_log_csv ~path dep =
  with_out path (fun oc ->
      output_string oc "time,conn,kind,seq\n";
      List.iter
        (fun (r : Trace.Dep_log.record) ->
          Printf.fprintf oc "%.6f,%d,%s,%d\n" r.time r.conn
            (Net.Packet.kind_to_string r.kind)
            r.seq)
        (Trace.Dep_log.records dep))

let drops_csv ~path drops =
  with_out path (fun oc ->
      output_string oc "time,conn,kind,seq,link\n";
      List.iter
        (fun (r : Trace.Drop_log.record) ->
          Printf.fprintf oc "%.6f,%d,%s,%d,%d\n" r.time r.conn
            (Net.Packet.kind_to_string r.kind)
            r.seq r.link)
        (Trace.Drop_log.records drops))

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let run_csv ~dir ~prefix (r : Runner.result) =
  ensure_dir dir;
  let files = ref [] in
  let emit name write =
    let path = Filename.concat dir (prefix ^ "-" ^ name) in
    write path;
    files := path :: !files
  in
  emit "q1.csv" (fun path ->
      series_csv ~path ~header:("time", "queue_len")
        (Trace.Queue_trace.series r.q1));
  emit "q2.csv" (fun path ->
      series_csv ~path ~header:("time", "queue_len")
        (Trace.Queue_trace.series r.q2));
  Array.iteri
    (fun i trace ->
      emit
        (Printf.sprintf "cwnd%d.csv" (i + 1))
        (fun path ->
          series_csv ~path ~header:("time", "cwnd") (Trace.Cwnd_trace.cwnd trace)))
    r.cwnds;
  emit "drops.csv" (fun path -> drops_csv ~path r.drops);
  List.rev !files
