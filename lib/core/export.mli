(** CSV dumps of traces, for replotting the figures with external tools. *)

(** Write a step series as [time,value] rows.
    @raise Sys_error on I/O failure. *)
val series_csv : path:string -> ?header:string * string -> Trace.Series.t -> unit

(** Write a departure log as [time,conn,kind,seq] rows. *)
val dep_log_csv : path:string -> Trace.Dep_log.t -> unit

(** Write a drop log as [time,conn,kind,seq,link] rows. *)
val drops_csv : path:string -> Trace.Drop_log.t -> unit

(** Dump the standard artifacts of a run under [dir] with a [prefix]:
    [<prefix>-q1.csv], [<prefix>-q2.csv], [<prefix>-cwnd<i>.csv],
    [<prefix>-drops.csv].  Creates [dir] if missing.  Returns the file
    names written. *)
val run_csv : dir:string -> prefix:string -> Runner.result -> string list
