(** Builds a {!Scenario} into a live network, runs it, and collects the
    traces and summary metrics every experiment needs. *)

(** Watchdog budgets enforced from inside the event loop (see
    {!Engine.Sim.run_guarded}).  [max_events] bounds the number of events
    executed; [max_wall] bounds wall-clock seconds (measured with
    [Unix.gettimeofday], polled every 1024 events). *)
type budget = { max_events : int option; max_wall : float option }

(** No budgets: the run uses the plain [Sim.run] hot path. *)
val no_budget : budget

val budget : ?max_events:int -> ?max_wall:float -> unit -> budget

type result = {
  scenario : Scenario.t;
  dumbbell : Net.Topology.dumbbell;
  conns : (Scenario.conn_spec * Tcp.Connection.t) array;
      (** in scenario order; connection ids are 1-based indices *)
  q1 : Trace.Queue_trace.t;  (** bottleneck queue at Switch-1 (fwd direction) *)
  q2 : Trace.Queue_trace.t;  (** bottleneck queue at Switch-2 (rev direction) *)
  cwnds : Trace.Cwnd_trace.t array;  (** in scenario order *)
  drops : Trace.Drop_log.t;  (** drops anywhere in the network *)
  dep_fwd : Trace.Dep_log.t;  (** departures from the fwd bottleneck *)
  dep_bwd : Trace.Dep_log.t;
  soj_fwd : Trace.Sojourn_trace.t;  (** per-packet queueing delay, fwd *)
  soj_bwd : Trace.Sojourn_trace.t;
  util_fwd : float;  (** fwd bottleneck utilization over the window *)
  util_bwd : float;
  t0 : float;  (** measurement window start (= warmup) *)
  t1 : float;  (** measurement window end (= duration) *)
  delivered : int array;  (** packets acked per connection within the window *)
  validation : Validate.Harness.t option;
      (** the invariant-checking harness, when the scenario (or the
          [NETSIM_VALIDATE] environment variable) enabled validation *)
  fault_plans : (Scenario.fault_site * Faults.Plan.t) list;
      (** live fault plans (with their injection ledgers), one per entry
          in [scenario.faults] *)
  obs : Obs.Probe.t option;
      (** the attached observability probe, when [run] was given an
          enabled setup *)
  stop : Engine.Sim.stop_reason;
      (** [Completed], or why a watchdog stopped the run early; an
          early-stopped result is partial ([t1] is the stop time and
          metered quantities cover only the elapsed window) *)
  bundle : string option;
      (** path of the crash bundle written for this run, if any *)
}

(** Build and run to completion.  When validation is enabled the
    invariant checkers run inside the simulation; a violated invariant is
    printed to stderr (and, when forced via [NETSIM_VALIDATE] rather than
    the scenario flag, raises [Failure]).

    [obs] (default {!Obs.Probe.disabled}) configures the observability
    probe: metrics, trace sinks, and the flight recorder.  The probe is
    attached before the run, armed on the validation report when there
    is one (first violation dumps the flight ring), and finished (trace
    outputs closed) when the run ends — including when [Sim.run]
    raises, in which case the flight ring is dumped first and the
    exception re-raised.

    [budget] (default {!no_budget}) and [stop] (an externally-settable
    cancel predicate, e.g. a SIGINT flag) switch the run onto
    {!Engine.Sim.run_guarded}: the run then ends either at the horizon
    or at the first exceeded budget / observed stop request, returning a
    partial result tagged with its {!Engine.Sim.stop_reason} instead of
    raising.  A run stopped before warm-up reports zero utilization and
    deliveries.

    [bundle_dir] arms crash bundles: on a [Sim.run] exception, a
    validation violation, or an early watchdog stop, a self-contained
    replayable bundle is written to [bundle_dir/<scenario-name>] (see
    {!Crash}) and its path returned in [result.bundle].  Bundle writes
    are best-effort — a failed write warns on stderr and never masks
    the original failure. *)
val run :
  ?obs:Obs.Probe.setup ->
  ?budget:budget ->
  ?stop:(unit -> bool) ->
  ?bundle_dir:string ->
  Scenario.t ->
  result

(** The finalized validation report, if validation was enabled. *)
val validation_report : result -> Validate.Report.t option

(** Is the [NETSIM_VALIDATE] environment variable set (to anything but
    [""] or ["0"])? *)
val env_forces_validation : unit -> bool

(** Goodput of connection [i] (packets/s) over the measurement window. *)
val goodput : result -> int -> float

(** Aggregate goodput (packets/s) of connections sending in [dir]. *)
val goodput_dir : result -> Scenario.direction -> float

(** Drops within the measurement window, chronological. *)
val drops_in_window : result -> Trace.Drop_log.record list

(** Congestion epochs within the window (gap defaults to 5 s). *)
val epochs : ?gap:float -> result -> Analysis.Epochs.t list

(** Phase classification of the two bottleneck queue series. *)
val queue_phase : result -> Analysis.Sync.phase * float

(** Phase classification of two connections' cwnd series. *)
val cwnd_phase : result -> int -> int -> Analysis.Sync.phase * float

(** Mean ACK queueing delay over the window, expressed in data-packet
    transmission times — the paper's effective-pipe contribution (4.2).
    The maximum of the two directions (ACK clusters ride whichever queue
    is congested).  [None] if no ACKs crossed the bottleneck. *)
val effective_pipe : result -> float option
