(** One entry per table and figure in the paper, each returning a
    {!Report.outcome} of paper-vs-measured checks.

    [Quick] shortens the simulated horizon (used by the test suite);
    [Full] uses paper-scale 600 s runs.  Acceptance bands are deliberately
    generous: the goal is the paper's {e shape} (who wins, what
    synchronizes with what, where utilization saturates), not its exact
    third digits. *)

type speed = Quick | Full

(** {1 Scenario constructors} (exposed for the CLI, figures dumper and
    tests) *)

val scenario_fig2 : speed -> Scenario.t
(** One-way, 3 connections, tau = 1 s, B = 20. *)

val scenario_oneway_small_pipe : speed -> Scenario.t
(** One-way, 3 connections, tau = 0.01 s, B = 20 (the "nearly 100%" case). *)

val scenario_fig3 : ?buffer:int -> speed -> Scenario.t
(** Two-way, 5 + 5 connections, tau = 0.01 s, B = 30 (or [buffer]). *)

val scenario_fig45 : ?buffer:int -> speed -> Scenario.t
(** Two-way, 1 + 1, tau = 0.01 s, B = 20 (or [buffer]). *)

val scenario_fig67 : speed -> Scenario.t
(** Two-way, 1 + 1, tau = 1 s, B = 20. *)

val scenario_fixed :
  ?ack_size:int -> tau:float -> w1:int -> w2:int -> speed -> Scenario.t
(** Fixed windows [w1] (forward) and [w2] (reverse), infinite buffers. *)

(** {1 Experiments} *)

val fig2 : ?speed:speed -> unit -> Report.outcome
val fig3 : ?speed:speed -> unit -> Report.outcome
val fig45 : ?speed:speed -> unit -> Report.outcome
val fig67 : ?speed:speed -> unit -> Report.outcome
val fig8 : ?speed:speed -> unit -> Report.outcome
val fig9 : ?speed:speed -> unit -> Report.outcome

val conjecture_table : ?speed:speed -> unit -> Report.outcome
(** §4.3.3 zero-size-ACK phase criterion, swept over windows and pipes. *)

val buffer_table : ?speed:speed -> unit -> Report.outcome
(** Utilization vs buffer size: one-way rises toward 1, two-way is stuck. *)

val delack_table : ?speed:speed -> unit -> Report.outcome
(** §5 delayed-ACK option: clustering and compression vs window size. *)

val multihop_table : ?speed:speed -> unit -> Report.outcome
(** §5 four-switch chain: the phenomena survive complex topologies. *)

val ablation_table : ?speed:speed -> unit -> Report.outcome
(** Design ablations: modified vs unmodified CA increment; coarse vs
    continuous retransmission timers. *)

val reno_table : ?speed:speed -> unit -> Report.outcome
(** 1's conjecture, part 1: the phenomena are not Tahoe-specific — 4.3-Reno
    fast recovery shows the same synchronization modes and fluctuations. *)

val cczoo_table : ?speed:speed -> unit -> Report.outcome
(** The conjecture across the whole {!Tcp.Cc} zoo: every adaptive variant
    (tahoe, reno, newreno, aimd, compound, ...) through the small-pipe
    two-way configuration, plus the loss-blind oracle as the calibration
    point. *)

val pacing_table : ?speed:speed -> unit -> Report.outcome
(** 1's conjecture, part 2: pacing destroys the clustering that
    ACK-compression requires, and with it the two-way utilization
    penalty. *)

val gateway_table : ?speed:speed -> unit -> Report.outcome
(** Gateways beyond drop-tail FIFO (the related-work axis the paper cites):
    Random Drop and Fair Queueing under two-way traffic. *)

val collapse_table : ?speed:speed -> unit -> Report.outcome
(** The pre-Jacobson baseline (2.1): a fixed advertised window with
    retransmission but no congestion control collapses under load —
    the motivating comparison for the whole line of work. *)

val rtt_table : ?speed:speed -> unit -> Report.outcome
(** 3.1/5: complete clustering depends on identical round-trip times;
    a skew above one packet transmission time leaves only partial
    clustering. *)

val formula_table : ?speed:speed -> unit -> Report.outcome
(** 3.1's closed forms, checked exactly: the fixed-window steady-state
    queue [q = max 0 (sum wnd - 2P)], the underfilled-pipe utilization
    [sum(wnd) * tx / RTT], and the adaptive peak total window
    [C + acceleration]. *)

val all : ?speed:speed -> unit -> Report.outcome list
(** Every experiment above, in paper order. *)

val registry : (string * (?speed:speed -> unit -> Report.outcome)) list
(** Name -> experiment, in paper order (the names the CLI and bench use:
    "fig2" ... "rtt"). *)

val find : string -> (?speed:speed -> unit -> Report.outcome) option
