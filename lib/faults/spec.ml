type loss =
  | Bernoulli of float
  | Gilbert_elliott of {
      p_enter : float;
      p_exit : float;
      loss_in_burst : float;
      loss_outside : float;
    }

type outage = {
  windows : (float * float) list;
  flap : (float * float) option;
}

type jitter = { bound : float; preserve_order : bool }

type t = {
  loss : loss option;
  outage : outage option;
  jitter : jitter option;
  duplicate : float option;
}

let none = { loss = None; outage = None; jitter = None; duplicate = None }

let check_prob what p =
  if not (p >= 0. && p <= 1.) then
    invalid_arg (Printf.sprintf "Faults.Spec: %s must be in [0, 1]" what)

let check_loss = function
  | Bernoulli p -> check_prob "loss probability" p
  | Gilbert_elliott { p_enter; p_exit; loss_in_burst; loss_outside } ->
    check_prob "burst entry probability" p_enter;
    check_prob "burst exit probability" p_exit;
    check_prob "in-burst loss probability" loss_in_burst;
    check_prob "outside-burst loss probability" loss_outside

let check_outage { windows; flap } =
  let rec check_windows prev = function
    | [] -> ()
    | (start, stop) :: rest ->
      if not (start >= prev && stop > start) then
        invalid_arg
          "Faults.Spec: outage windows must be (start, stop) with \
           0 <= start < stop, in ascending non-overlapping order";
      check_windows stop rest
  in
  check_windows 0. windows;
  match flap with
  | Some (mean_up, mean_down) when mean_up <= 0. || mean_down <= 0. ->
    invalid_arg "Faults.Spec: flap means must be positive"
  | _ -> ()

let check_jitter { bound; preserve_order = _ } =
  if bound < 0. then invalid_arg "Faults.Spec: jitter bound must be >= 0"

let make ?loss ?outage ?jitter ?duplicate () =
  Option.iter check_loss loss;
  Option.iter check_outage outage;
  Option.iter check_jitter jitter;
  Option.iter (check_prob "duplication probability") duplicate;
  { loss; outage; jitter; duplicate }

let bernoulli p = make ~loss:(Bernoulli p) ()

let burst ?(loss_outside = 0.) ~p_enter ~p_exit ~loss_in_burst () =
  make ~loss:(Gilbert_elliott { p_enter; p_exit; loss_in_burst; loss_outside })
    ()

let scheduled_outage windows = make ~outage:{ windows; flap = None } ()

let flapping ~mean_up ~mean_down =
  make ~outage:{ windows = []; flap = Some (mean_up, mean_down) } ()

let jitter ?(preserve_order = true) bound =
  make ~jitter:{ bound; preserve_order } ()

let duplicate p = make ~duplicate:p ()

let merge a b =
  let pick what x y =
    match (x, y) with
    | Some _, Some _ ->
      invalid_arg
        (Printf.sprintf "Faults.Spec.merge: both specs define %s" what)
    | (Some _ as s), None | None, s -> s
  in
  {
    loss = pick "a loss model" a.loss b.loss;
    outage = pick "an outage" a.outage b.outage;
    jitter = pick "jitter" a.jitter b.jitter;
    duplicate = pick "duplication" a.duplicate b.duplicate;
  }

let is_noop t =
  (match t.loss with
   | None | Some (Bernoulli 0.) -> true
   | Some (Gilbert_elliott { loss_in_burst; loss_outside; _ }) ->
     loss_in_burst = 0. && loss_outside = 0.
   | Some (Bernoulli _) -> false)
  && (match t.outage with
      | None -> true
      | Some { windows; flap } -> windows = [] && flap = None)
  && (match t.jitter with None | Some { bound = 0.; _ } -> true | Some _ -> false)
  && match t.duplicate with None | Some 0. -> true | Some _ -> false

let to_string t =
  let parts =
    List.filter_map Fun.id
      [
        Option.map
          (function
            | Bernoulli p -> Printf.sprintf "loss=%g" p
            | Gilbert_elliott { p_enter; p_exit; loss_in_burst; loss_outside }
              ->
              Printf.sprintf "burst-loss=%g/%g/%g/%g" p_enter p_exit
                loss_in_burst loss_outside)
          t.loss;
        Option.map
          (fun { windows; flap } ->
            let w =
              List.map
                (fun (a, b) -> Printf.sprintf "[%g,%g)" a b)
                windows
            in
            let f =
              match flap with
              | Some (up, down) -> [ Printf.sprintf "flap=%g/%g" up down ]
              | None -> []
            in
            "outage=" ^ String.concat "" (w @ f))
          t.outage;
        Option.map
          (fun { bound; preserve_order } ->
            Printf.sprintf "jitter=%g%s" bound
              (if preserve_order then "" else "(reorder)"))
          t.jitter;
        Option.map (Printf.sprintf "dup=%g") t.duplicate;
      ]
  in
  match parts with [] -> "none" | parts -> String.concat " " parts
