(** Declarative fault models for one link.

    A spec is pure data: what can go wrong on the link and with what
    parameters.  {!Plan.install} turns a spec into live state (per-link
    RNG streams, Gilbert–Elliott chain state, scheduled outage events)
    attached to a {!Net.Link}.

    Fault kinds:

    - {b loss} — per-packet discard at link ingress: [Bernoulli p], or a
      [Gilbert_elliott] two-state chain (the chain advances one step per
      offered packet; [p_enter]/[p_exit] are the per-packet transition
      probabilities and [loss_in_burst]/[loss_outside] the state-dependent
      loss probabilities), giving bursty correlated loss.
    - {b outage} — intervals during which the link is down: everything in
      flight is lost on the cut and every send while down is discarded.
      [windows] are fixed [(start, stop)] intervals; [flap] adds random
      up/down cycling with exponentially distributed durations of the
      given means.
    - {b jitter} — bounded uniform extra delivery latency in
      [\[0, bound)] added after serialization.  With
      [preserve_order = true] (the default) the sampled delay is extended
      so deliveries stay FIFO; with [false] packets may overtake each
      other in flight.
    - {b duplicate} — per-packet probability that an accepted packet is
      offered to the buffer twice; the copy has a fresh packet id and is
      never re-duplicated. *)

type loss =
  | Bernoulli of float
  | Gilbert_elliott of {
      p_enter : float;
      p_exit : float;
      loss_in_burst : float;
      loss_outside : float;
    }

type outage = {
  windows : (float * float) list;  (** (start, stop) down intervals *)
  flap : (float * float) option;  (** (mean_up, mean_down) seconds *)
}

type jitter = { bound : float; preserve_order : bool }

type t = {
  loss : loss option;
  outage : outage option;
  jitter : jitter option;
  duplicate : float option;  (** per-packet duplication probability *)
}

(** The empty spec: no faults. *)
val none : t

(** Validating constructor.
    @raise Invalid_argument on probabilities outside [\[0, 1]], a negative
    jitter bound, non-positive flap means, or outage windows that are not
    ascending, non-overlapping [(start, stop)] pairs with
    [0 <= start < stop]. *)
val make :
  ?loss:loss ->
  ?outage:outage ->
  ?jitter:jitter ->
  ?duplicate:float ->
  unit ->
  t

(** {2 Shorthands} (all validate like {!make}) *)

val bernoulli : float -> t

val burst :
  ?loss_outside:float ->
  p_enter:float ->
  p_exit:float ->
  loss_in_burst:float ->
  unit ->
  t

val scheduled_outage : (float * float) list -> t
val flapping : mean_up:float -> mean_down:float -> t
val jitter : ?preserve_order:bool -> float -> t
val duplicate : float -> t

(** Combine two specs covering disjoint fault kinds.
    @raise Invalid_argument if both define the same kind. *)
val merge : t -> t -> t

(** [true] if the spec can never affect a packet. *)
val is_noop : t -> bool

val to_string : t -> string
