type counts = {
  mutable losses : int;
  mutable outage_drops : int;
  mutable duplicates : int;
  mutable delayed : int;
  mutable max_delay : float;
  (* Per-connection data-packet accounting, for conservation arguments:
     a sender's delivered count can never exceed
     transmissions + duplicates - fault losses (of its data). *)
  data_losses : (int, int) Hashtbl.t;
  data_duplicates : (int, int) Hashtbl.t;
}

type t = { link : Net.Link.t; spec : Spec.t; seed : int; counts : counts }

(* Independent splitmix64 streams per (seed, link, fault kind): a link's
   fault sequence depends only on the plan seed and its own traffic, and
   the flap timeline on the seed alone — never on other links' plans or
   unrelated scenario edits. *)
let stream ~seed ~link_id ~kind =
  Engine.Rng.create
    ~seed:(seed + ((link_id + 1) * 0x9E3779B9) + (kind * 0x85EBCA6B))

let bump tbl conn =
  Hashtbl.replace tbl conn
    (1 + Option.value ~default:0 (Hashtbl.find_opt tbl conn))

let observe counts _time (event : Net.Link.fault_event) (p : Net.Packet.t) =
  match event with
  | Net.Link.Fault_drop label ->
    if label = "outage" then counts.outage_drops <- counts.outage_drops + 1
    else counts.losses <- counts.losses + 1;
    if p.Net.Packet.kind = Net.Packet.Data then
      bump counts.data_losses p.Net.Packet.conn
  | Net.Link.Fault_duplicate ->
    counts.duplicates <- counts.duplicates + 1;
    if p.Net.Packet.kind = Net.Packet.Data then
      bump counts.data_duplicates p.Net.Packet.conn
  | Net.Link.Fault_delay extra ->
    counts.delayed <- counts.delayed + 1;
    counts.max_delay <- Float.max counts.max_delay extra

let make_ingress spec ~rng =
  let drop_label =
    match spec.Spec.loss with
    | None -> fun () -> None
    | Some (Spec.Bernoulli p) ->
      fun () -> if Engine.Rng.float rng < p then Some "loss" else None
    | Some (Spec.Gilbert_elliott { p_enter; p_exit; loss_in_burst; loss_outside })
      ->
      let in_burst = ref false in
      fun () ->
        (* Advance the chain one step per offered packet, then draw the
           state-dependent loss. *)
        (if !in_burst then begin
           if Engine.Rng.float rng < p_exit then in_burst := false
         end
         else if Engine.Rng.float rng < p_enter then in_burst := true);
        let p_loss = if !in_burst then loss_in_burst else loss_outside in
        if p_loss > 0. && Engine.Rng.float rng < p_loss then
          Some "burst-loss"
        else None
  in
  let duplicate =
    match spec.Spec.duplicate with
    | None -> fun () -> false
    | Some p -> fun () -> Engine.Rng.float rng < p
  in
  fun (_ : Net.Packet.t) : Net.Link.verdict ->
    match drop_label () with
    | Some label -> `Drop label
    | None -> if duplicate () then `Duplicate else `Pass

let make_extra_delay spec ~sim ~prop ~rng =
  match spec.Spec.jitter with
  | None | Some { Spec.bound = 0.; _ } -> fun _ -> 0.
  | Some { Spec.bound; preserve_order } ->
    let last_delivery = ref neg_infinity in
    fun (_ : Net.Packet.t) ->
      let extra = Engine.Rng.uniform rng ~lo:0. ~hi:bound in
      if not preserve_order then extra
      else begin
        (* Stretch the sample so delivery times stay non-decreasing. *)
        let now = Engine.Sim.now sim in
        let at = Float.max (now +. prop +. extra) !last_delivery in
        last_delivery := at;
        at -. now -. prop
      end

let schedule_outages spec ~sim ~link ~rng =
  match spec.Spec.outage with
  | None -> ()
  | Some { Spec.windows; flap } ->
    List.iter
      (fun (start, stop) ->
        ignore
          (Engine.Sim.at sim ~time:start (fun () -> Net.Link.set_down link true)
            : Engine.Sim.handle);
        ignore
          (Engine.Sim.at sim ~time:stop (fun () -> Net.Link.set_down link false)
            : Engine.Sim.handle))
      windows;
    match flap with
    | None -> ()
    | Some (mean_up, mean_down) ->
      (* Flap events self-reschedule forever; run the simulation with
         [Sim.run ~until], not [run_to_completion]. *)
      let rec go_down () =
        ignore
          (Engine.Sim.schedule sim
             ~delay:(Engine.Rng.exponential rng ~mean:mean_up) (fun () ->
               Net.Link.set_down link true;
               go_up ())
            : Engine.Sim.handle)
      and go_up () =
        ignore
          (Engine.Sim.schedule sim
             ~delay:(Engine.Rng.exponential rng ~mean:mean_down) (fun () ->
               Net.Link.set_down link false;
               go_down ())
            : Engine.Sim.handle)
      in
      go_down ()

let install net link ~seed spec =
  if Net.Link.has_faults link then
    invalid_arg
      (Printf.sprintf "Faults.Plan.install: link %s already has a fault plan"
         (Net.Link.name link));
  let sim = Net.Network.sim net in
  let link_id = Net.Link.id link in
  let counts =
    {
      losses = 0;
      outage_drops = 0;
      duplicates = 0;
      delayed = 0;
      max_delay = 0.;
      data_losses = Hashtbl.create 8;
      data_duplicates = Hashtbl.create 8;
    }
  in
  let ingress = make_ingress spec ~rng:(stream ~seed ~link_id ~kind:0) in
  let extra_delay =
    make_extra_delay spec ~sim ~prop:(Net.Link.prop_delay link)
      ~rng:(stream ~seed ~link_id ~kind:1)
  in
  let clone (p : Net.Packet.t) =
    Net.Network.make_packet net ~conn:p.conn ~kind:p.kind ~seq:p.seq
      ~size:p.size ~src:p.src ~dst:p.dst ~retransmit:p.retransmit
  in
  Net.Link.install_faults link ~ingress ~extra_delay ~clone;
  Net.Link.on_fault link (fun time event p -> observe counts time event p);
  schedule_outages spec ~sim ~link ~rng:(stream ~seed ~link_id ~kind:2);
  { link; spec; seed; counts }

let link t = t.link
let spec t = t.spec
let seed t = t.seed
let losses t = t.counts.losses
let outage_drops t = t.counts.outage_drops
let fault_drops t = t.counts.losses + t.counts.outage_drops
let duplicates t = t.counts.duplicates
let delayed t = t.counts.delayed
let max_delay t = t.counts.max_delay

let data_losses_for t ~conn =
  Option.value ~default:0 (Hashtbl.find_opt t.counts.data_losses conn)

let data_duplicates_for t ~conn =
  Option.value ~default:0 (Hashtbl.find_opt t.counts.data_duplicates conn)

let summary t =
  Printf.sprintf
    "link %s [%s]: %d lost, %d outage-dropped, %d duplicated, %d delayed \
     (max +%.4gs)"
    (Net.Link.name t.link)
    (Spec.to_string t.spec)
    t.counts.losses t.counts.outage_drops t.counts.duplicates t.counts.delayed
    t.counts.max_delay
