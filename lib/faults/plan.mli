(** A live fault plan: a {!Spec} instantiated on one {!Net.Link}.

    {!install} wires the spec into the link's fault hook point
    ({!Net.Link.install_faults}), schedules any outage transitions on the
    simulation clock, and starts a ledger of every fault actually
    injected.  Randomness comes from dedicated {!Engine.Rng} splitmix64
    streams keyed by [(seed, link id, fault kind)], so a run is exactly
    reproducible and one link's fault sequence is independent of every
    other link's plan (and, for outage flapping, of the traffic
    entirely).

    The ledger is what lets fault runs stay verifiable: injected drops
    are announced to invariant checkers through the link's fault events
    (so {!Validate.Conservation} still balances and
    {!Validate.Fifo_order} knows the drop was intentional), and the
    per-connection counts bound how much payload each sender can possibly
    have delivered. *)

type t

(** [install net link ~seed spec] attaches [spec] to [link].  Call after
    the topology is built and before the simulation runs.  A spec with a
    [flap] self-reschedules forever: drive the simulation with
    [Sim.run ~until], not [run_to_completion].
    @raise Invalid_argument if the link already has a plan, or (via
    [Sim.at]) if a scheduled outage window starts in the simulated
    past. *)
val install : Net.Network.t -> Net.Link.t -> seed:int -> Spec.t -> t

val link : t -> Net.Link.t
val spec : t -> Spec.t
val seed : t -> int

(** {2 Ledger} — counts of faults actually injected so far *)

(** Packets discarded by the loss model (Bernoulli or Gilbert–Elliott). *)
val losses : t -> int

(** Packets discarded because the link was down (including those flushed
    on a cut). *)
val outage_drops : t -> int

(** [losses + outage_drops]. *)
val fault_drops : t -> int

(** Fault-injected copies offered to the buffer. *)
val duplicates : t -> int

(** Departures that received extra jitter latency. *)
val delayed : t -> int

(** Largest extra latency applied (s). *)
val max_delay : t -> float

(** Data packets of connection [conn] discarded by any fault. *)
val data_losses_for : t -> conn:int -> int

(** Fault-injected copies of connection [conn]'s data packets. *)
val data_duplicates_for : t -> conn:int -> int

(** One-line human-readable ledger. *)
val summary : t -> string
