let check_nonempty name a =
  if Array.length a = 0 then invalid_arg (name ^ ": empty array")

let mean a =
  check_nonempty "Stats.mean" a;
  Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)

let variance a =
  check_nonempty "Stats.variance" a;
  let m = mean a in
  let sum = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. a in
  sum /. float_of_int (Array.length a)

let stddev a = sqrt (variance a)

let pearson xs ys =
  let n = Array.length xs in
  if n = 0 || n <> Array.length ys then
    invalid_arg "Stats.pearson: length mismatch or empty";
  let mx = mean xs and my = mean ys in
  let sxy = ref 0. and sxx = ref 0. and syy = ref 0. in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  if !sxx <= 1e-12 || !syy <= 1e-12 then 0.
  else !sxy /. sqrt (!sxx *. !syy)

let sorted_copy a =
  let b = Array.copy a in
  Array.sort compare b;
  b

let median a =
  check_nonempty "Stats.median" a;
  let b = sorted_copy a in
  let n = Array.length b in
  if n mod 2 = 1 then b.(n / 2) else (b.((n / 2) - 1) +. b.(n / 2)) /. 2.

let percentile a ~p =
  check_nonempty "Stats.percentile" a;
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let b = sorted_copy a in
  let n = Array.length b in
  let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
  b.(max 0 (min (n - 1) (rank - 1)))

let minimum a =
  check_nonempty "Stats.minimum" a;
  Array.fold_left Float.min a.(0) a

let maximum a =
  check_nonempty "Stats.maximum" a;
  Array.fold_left Float.max a.(0) a

let histogram a ~bins ~lo ~hi =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  if hi <= lo then invalid_arg "Stats.histogram: empty range";
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  Array.iter
    (fun x ->
      let bin = int_of_float ((x -. lo) /. width) in
      let bin = max 0 (min (bins - 1) bin) in
      counts.(bin) <- counts.(bin) + 1)
    a;
  counts
