type prediction = Out_of_phase_one_full | In_phase_neither_full | Boundary

let prediction_to_string = function
  | Out_of_phase_one_full -> "out-of-phase, one line full"
  | In_phase_neither_full -> "in-phase, neither line full"
  | Boundary -> "boundary (w1 = w2 + 2P)"

let predict ~w1 ~w2 ~pipe =
  let big = float_of_int (max w1 w2) in
  let small = float_of_int (min w1 w2) in
  let threshold = small +. (2. *. pipe) in
  if big > threshold then Out_of_phase_one_full
  else if big < threshold then In_phase_neither_full
  else Boundary

let observe ?(full_threshold = 0.99) ~util1 ~util2 () =
  let full u = u >= full_threshold in
  match (full util1, full util2) with
  | true, false | false, true -> Out_of_phase_one_full
  | false, false -> In_phase_neither_full
  | true, true -> Boundary

let verdict prediction ~observed =
  match prediction with
  | Boundary -> true
  | Out_of_phase_one_full | In_phase_neither_full -> prediction = observed
