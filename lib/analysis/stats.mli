(** Small numeric toolbox used by the dynamics analyses. *)

val mean : float array -> float
(** @raise Invalid_argument on an empty array. *)

val variance : float array -> float
(** Population variance. @raise Invalid_argument on an empty array. *)

val stddev : float array -> float

val pearson : float array -> float array -> float
(** Pearson correlation coefficient.  Returns [0.] if either input is
    (numerically) constant.  @raise Invalid_argument if lengths differ or
    are zero. *)

val median : float array -> float
(** @raise Invalid_argument on an empty array. *)

val percentile : float array -> p:float -> float
(** Nearest-rank percentile, [p] in [\[0, 100\]].
    @raise Invalid_argument on an empty array or [p] out of range. *)

val minimum : float array -> float
val maximum : float array -> float

val histogram : float array -> bins:int -> lo:float -> hi:float -> int array
(** Counts per bin over [\[lo, hi)]; values outside are clamped into the
    first/last bin.  @raise Invalid_argument if [bins <= 0] or [hi <= lo]. *)
