(** ACK-compression measures (paper §4.2).

    With one-way traffic, ACKs depart the (empty) reverse queue spaced by
    a {e data}-packet transmission time — the ACK clock.  With two-way
    traffic, a cluster of ACKs caught behind data packets drains at the
    {e ACK} transmission rate, i.e. spacing shrinks by the size ratio
    (10x in the paper).  We quantify this from the bottleneck departure
    log and from the queue trace. *)

type spacing = {
  samples : int;  (** consecutive same-connection ACK pairs measured *)
  median_gap : float;  (** seconds *)
  ratio : float;  (** median_gap / data_tx_time; 1 = intact clock, 0.1 = fully compressed *)
  compressed_fraction : float;
      (** fraction of pairs with gap < 0.5 * data tx time *)
}

(** Inter-departure spacing of consecutive ACKs of the same connection.
    [None] if no such pair exists. *)
val ack_spacing :
  Trace.Dep_log.record list -> data_tx:float -> spacing option

(** Rapid queue fluctuations: the number of times the queue length changes
    by at least [threshold] packets within [window] seconds, per second of
    trace.  The paper's square waves score high; one-way traffic scores ~0.
    @raise Invalid_argument if [window <= 0] or [threshold <= 0]. *)
val fluctuation_rate :
  Trace.Series.t -> t0:float -> t1:float -> window:float -> threshold:float ->
  float

type edge_slopes = {
  rising : float option;  (** median slope of rising edges, pkts/s *)
  falling : float option;  (** median slope of falling edges (negative) *)
  rising_count : int;
  falling_count : int;
}

(** Median slopes of the square wave's edges — maximal monotone excursions
    of at least [min_rise] packets.  The §4.2 chronology predicts the
    edges run at [±(R_A - R_D)]: data arrives at the compressed-ACK rate
    while draining at the data rate (and vice versa when an ACK cluster
    reaches the head of the queue).
    @raise Invalid_argument if [min_rise <= 0]. *)
val edge_slopes :
  Trace.Series.t -> t0:float -> t1:float -> min_rise:float -> edge_slopes
