(** Reconstruction of the §4.2 ACK-compression chronology.

    The paper narrates one cycle of the fixed-window square wave in five
    numbered steps: both queues steady; Q1 surges while Q2 collapses (the
    compressed ACK cluster drains); steady again; then the roles swap.
    This module recovers that structure from the two queue traces: each
    instant is classified by the local slope of both queues, adjacent
    instants with the same classification merge into phases, and the
    phase list can be checked against the paper's pattern. *)

type trend = Rising | Falling | Steady

val trend_to_string : trend -> string

type phase = {
  t0 : float;
  t1 : float;
  q1 : trend;
  q2 : trend;
}

val duration : phase -> float

(** [phases q1 q2 ~t0 ~t1 ~dt ~slope_threshold ~min_duration] — segment the
    window into phases.  Slopes are measured over [dt] (default 0.04 s);
    a queue is [Rising]/[Falling] when its slope exceeds
    [slope_threshold] packets/s in magnitude (default 30, well above any
    window-growth drift and well below the ACK-rate edges); phases shorter
    than [min_duration] (default [2 * dt]) are dissolved into their
    neighbors.
    @raise Invalid_argument if [dt <= 0] or [slope_threshold <= 0]. *)
val phases :
  ?dt:float ->
  ?slope_threshold:float ->
  ?min_duration:float ->
  Trace.Series.t ->
  Trace.Series.t ->
  t0:float ->
  t1:float ->
  phase list

(** Among phases where at least one queue moves, the fraction where the
    two queues move in {e opposite} directions — 1.0 when every transfer
    of packets is the §4.2 hand-off between the two queues.  [None] if no
    moving phase exists. *)
val opposition : phase list -> float option

(** Render phases as the paper's numbered chronology. *)
val pp : Format.formatter -> phase list -> unit
