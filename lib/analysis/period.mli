(** Dominant-oscillation-period estimation.

    The paper quotes cycle lengths ("relatively low frequency oscillations
    with a period of roughly 34 seconds"); we estimate them from a step
    series via the autocorrelation function: resample on a grid, remove
    the mean, and return the lag of the first autocorrelation peak that is
    both a local maximum and above [threshold] (default 0.2). *)

(** [estimate series ~t0 ~t1 ~dt ~max_period] returns the period in
    seconds, or [None] when no credible peak exists (aperiodic signal).
    @raise Invalid_argument if [dt <= 0] or [max_period <= 2 * dt]. *)
val estimate :
  ?threshold:float ->
  Trace.Series.t ->
  t0:float ->
  t1:float ->
  dt:float ->
  max_period:float ->
  float option

(** Autocorrelation of [xs] at integer lags [0 .. max_lag], normalized so
    lag 0 is 1.  Exposed for tests.
    @raise Invalid_argument if the signal is shorter than [2 * max_lag]. *)
val autocorrelation : float array -> max_lag:int -> float array
