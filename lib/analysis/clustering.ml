let data_only records =
  List.filter
    (fun (r : Trace.Dep_log.record) -> r.kind = Net.Packet.Data)
    records

let coefficient records =
  let rec count records same total =
    match records with
    | (a : Trace.Dep_log.record) :: (b :: _ as rest) ->
      count rest (if a.conn = b.conn then same + 1 else same) (total + 1)
    | [ _ ] | [] -> (same, total)
  in
  match count records 0 0 with
  | _, 0 -> None
  | same, total -> Some (float_of_int same /. float_of_int total)

let run_lengths records =
  let rec scan records current_conn current_len acc =
    match records with
    | [] -> if current_len > 0 then List.rev (current_len :: acc) else List.rev acc
    | (r : Trace.Dep_log.record) :: rest ->
      if current_len > 0 && r.conn = current_conn then
        scan rest current_conn (current_len + 1) acc
      else
        scan rest r.conn 1
          (if current_len > 0 then current_len :: acc else acc)
  in
  scan records (-1) 0 []

let mean_run_length records =
  match run_lengths records with
  | [] -> None
  | lengths ->
    let total = List.fold_left ( + ) 0 lengths in
    Some (float_of_int total /. float_of_int (List.length lengths))

let interleaved_baseline ~n =
  if n <= 0 then invalid_arg "Clustering.interleaved_baseline: n <= 0";
  if n = 1 then 1. else 1. /. float_of_int n
