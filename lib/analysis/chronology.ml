type trend = Rising | Falling | Steady

let trend_to_string = function
  | Rising -> "rising"
  | Falling -> "falling"
  | Steady -> "steady"

type phase = { t0 : float; t1 : float; q1 : trend; q2 : trend }

let duration p = p.t1 -. p.t0

let classify_slopes series ~t0 ~t1 ~dt ~slope_threshold =
  let xs = Trace.Series.resample series ~t0 ~t1 ~dt in
  let n = Array.length xs in
  Array.init (max 0 (n - 1)) (fun i ->
      let slope = (xs.(i + 1) -. xs.(i)) /. dt in
      if slope > slope_threshold then Rising
      else if slope < -.slope_threshold then Falling
      else Steady)

let phases ?(dt = 0.04) ?(slope_threshold = 30.) ?min_duration q1_series
    q2_series ~t0 ~t1 =
  if dt <= 0. then invalid_arg "Chronology.phases: dt <= 0";
  if slope_threshold <= 0. then
    invalid_arg "Chronology.phases: slope_threshold <= 0";
  let min_duration = Option.value ~default:(2. *. dt) min_duration in
  let a = classify_slopes q1_series ~t0 ~t1 ~dt ~slope_threshold in
  let b = classify_slopes q2_series ~t0 ~t1 ~dt ~slope_threshold in
  let n = min (Array.length a) (Array.length b) in
  (* Merge equal consecutive classifications into raw segments. *)
  let raw = ref [] in
  let seg_start = ref 0 in
  for i = 1 to n do
    let boundary = i = n || a.(i) <> a.(!seg_start) || b.(i) <> b.(!seg_start) in
    if boundary then begin
      raw :=
        {
          t0 = t0 +. (float_of_int !seg_start *. dt);
          t1 = t0 +. (float_of_int i *. dt);
          q1 = a.(!seg_start);
          q2 = b.(!seg_start);
        }
        :: !raw;
      seg_start := i
    end
  done;
  let raw = List.rev !raw in
  (* Dissolve blips shorter than min_duration by merging them into the
     preceding phase (extending its end). *)
  let rec absorb acc = function
    | [] -> List.rev acc
    | p :: rest when duration p < min_duration -> (
      match acc with
      | prev :: acc_rest -> absorb ({ prev with t1 = p.t1 } :: acc_rest) rest
      | [] -> absorb acc rest)
    | p :: rest -> (
      (* If the previous kept phase has the same classification (because a
         blip between them was dissolved), merge. *)
      match acc with
      | prev :: acc_rest when prev.q1 = p.q1 && prev.q2 = p.q2 ->
        absorb ({ prev with t1 = p.t1 } :: acc_rest) rest
      | _ -> absorb (p :: acc) rest)
  in
  absorb [] raw

let moving p = p.q1 <> Steady || p.q2 <> Steady

let opposed p =
  match (p.q1, p.q2) with
  | Rising, Falling | Falling, Rising -> true
  | _ -> false

let opposition phase_list =
  match List.filter moving phase_list with
  | [] -> None
  | moving_phases ->
    let good = List.length (List.filter opposed moving_phases) in
    Some (float_of_int good /. float_of_int (List.length moving_phases))

let pp ppf phase_list =
  List.iteri
    (fun i p ->
      Format.fprintf ppf "%2d. [%7.3f, %7.3f]  Q1 %-7s  Q2 %-7s  (%.0f ms)@."
        (i + 1) p.t0 p.t1 (trend_to_string p.q1) (trend_to_string p.q2)
        (1000. *. duration p))
    phase_list
