(** Synchronization-mode classification (paper §4.3).

    Two signals (congestion windows of opposite-direction connections, or
    the two bottleneck queue lengths) are {e in-phase} when they rise and
    fall together and {e out-of-phase} when one rises while the other
    falls.  We resample both step series on a common grid and use the
    Pearson correlation: strongly positive → in-phase, strongly negative →
    out-of-phase. *)

type phase = In_phase | Out_of_phase | Unclassified

val phase_to_string : phase -> string

(** [classify a b ~t0 ~t1 ~dt ~threshold] correlates the two series over
    the window.  Returns the phase and the raw correlation.
    Default [threshold] is [0.2]. *)
val classify :
  ?threshold:float ->
  Trace.Series.t ->
  Trace.Series.t ->
  t0:float ->
  t1:float ->
  dt:float ->
  phase * float

(** [lag a b ~t0 ~t1 ~dt ~max_lag] — the time shift of [b] (in seconds,
    multiple of [dt]) that maximizes its correlation with [a], searched
    over [\[-max_lag, +max_lag\]].  For out-of-phase oscillations the best
    lag sits near half the cycle; for in-phase ones near zero.  Returns
    [(lag, correlation_at_lag)], or [None] when the window is too short
    for the requested lag.
    @raise Invalid_argument if [dt <= 0] or [max_lag < 0]. *)
val lag :
  Trace.Series.t ->
  Trace.Series.t ->
  t0:float ->
  t1:float ->
  dt:float ->
  max_lag:float ->
  (float * float) option
