(** Packet-clustering measures (paper §3.1).

    In the simple configurations the paper studies, all of a connection's
    data packets pass the bottleneck consecutively ("complete
    clustering").  We quantify this from the bottleneck departure log:

    - the {e clustering coefficient}: the fraction of consecutive data
      departures that belong to the same connection (1 = complete
      clustering for long windows; ~1/n for n interleaved connections);
    - run lengths: sizes of maximal same-connection bursts. *)

(** Consecutive same-connection fraction among the given departures.
    [None] if fewer than two records. *)
val coefficient : Trace.Dep_log.record list -> float option

(** Only data packets from [records]. *)
val data_only : Trace.Dep_log.record list -> Trace.Dep_log.record list

(** Lengths of maximal same-connection runs, in order. *)
val run_lengths : Trace.Dep_log.record list -> int list

(** Mean of {!run_lengths}. [None] on an empty input. *)
val mean_run_length : Trace.Dep_log.record list -> float option

(** Expected coefficient if the [n] connections' packets arrived in a
    uniformly random order: [1/n].  A reporting baseline.
    @raise Invalid_argument if [n <= 0]. *)
val interleaved_baseline : n:int -> float
