let autocorrelation xs ~max_lag =
  let n = Array.length xs in
  if n < 2 * max_lag || max_lag < 1 then
    invalid_arg "Period.autocorrelation: signal too short";
  let mean = Stats.mean xs in
  let centered = Array.map (fun x -> x -. mean) xs in
  let denom = Array.fold_left (fun acc x -> acc +. (x *. x)) 0. centered in
  if denom <= 1e-12 then Array.make (max_lag + 1) 0.
  else
    Array.init (max_lag + 1) (fun lag ->
        let acc = ref 0. in
        for i = 0 to n - 1 - lag do
          acc := !acc +. (centered.(i) *. centered.(i + lag))
        done;
        !acc /. denom)

let estimate ?(threshold = 0.2) series ~t0 ~t1 ~dt ~max_period =
  if dt <= 0. then invalid_arg "Period.estimate: dt <= 0";
  if max_period <= 2. *. dt then invalid_arg "Period.estimate: max_period too small";
  let xs = Trace.Series.resample series ~t0 ~t1 ~dt in
  let max_lag = int_of_float (max_period /. dt) in
  let max_lag = min max_lag (Array.length xs / 2) in
  if max_lag < 2 then None
  else begin
    let acf = autocorrelation xs ~max_lag in
    (* First local maximum above the threshold, skipping the lag-0 peak
       (wait until the ACF has first dipped below the threshold). *)
    let rec find lag dipped =
      if lag >= max_lag then None
      else if not dipped then find (lag + 1) (acf.(lag) < threshold)
      else if
        acf.(lag) >= threshold
        && acf.(lag) >= acf.(lag - 1)
        && acf.(lag) >= (if lag + 1 <= max_lag then acf.(lag + 1) else neg_infinity)
      then Some (float_of_int lag *. dt)
      else find (lag + 1) dipped
    in
    find 1 false
  end
