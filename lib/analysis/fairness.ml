let jain shares =
  if Array.length shares = 0 then invalid_arg "Fairness.jain: empty";
  if Array.exists (fun x -> x < 0.) shares then
    invalid_arg "Fairness.jain: negative share";
  let total = Array.fold_left ( +. ) 0. shares in
  let squares = Array.fold_left (fun acc x -> acc +. (x *. x)) 0. shares in
  if squares <= 0. then 1.  (* all zero: degenerate but not unfair *)
  else total *. total /. (float_of_int (Array.length shares) *. squares)

let max_min_ratio shares =
  if Array.length shares = 0 then invalid_arg "Fairness.max_min_ratio: empty";
  let hi = Array.fold_left Float.max shares.(0) shares in
  let lo = Array.fold_left Float.min shares.(0) shares in
  if lo <= 0. then infinity else hi /. lo
