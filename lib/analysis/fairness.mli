(** Bandwidth-sharing fairness.

    The Wilder-Ramakrishnan-Mankin measurements the paper cites (§5) found
    that ACK-compression causes {e extreme unfairness} under two-way
    traffic; Jain's index quantifies it:
    [J(x) = (sum x)^2 / (n * sum x^2)], which is 1 for a perfectly even
    allocation and [1/n] when a single connection hogs everything. *)

val jain : float array -> float
(** @raise Invalid_argument on an empty array or any negative share. *)

(** Largest share divided by smallest (>= 1); [infinity] when some
    connection got nothing.  @raise Invalid_argument on an empty array. *)
val max_min_ratio : float array -> float
