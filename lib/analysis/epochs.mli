(** Congestion-epoch extraction (paper §2.1, §3.1).

    A congestion epoch is an episode of packet loss; losses separated by
    less than [gap] seconds belong to the same epoch.  The paper's
    "acceleration analysis" predicts that the total number of drops in an
    epoch equals the total window acceleration (one per connection in
    congestion avoidance). *)

type t = {
  start : float;  (** time of first drop *)
  stop : float;  (** time of last drop *)
  drops : Trace.Drop_log.record list;
  by_conn : (int * int) list;  (** (connection, losses), sorted by conn *)
}

(** Group chronologically-sorted drop records into epochs.
    @raise Invalid_argument if [gap <= 0]. *)
val detect : gap:float -> Trace.Drop_log.record list -> t list

val total_drops : t -> int
val conns_hit : t -> int list

(** Losses of [conn] in this epoch (0 if unscathed). *)
val losses_of : t -> conn:int -> int

(** Mean drops per epoch. [None] on an empty list. *)
val mean_drops : t list -> float option

(** Fraction of epochs in which every one of [conns] lost at least one
    packet — the paper's loss-synchronization measure.
    [None] on an empty epoch list. *)
val loss_synchronization : t list -> conns:int list -> float option

(** Fraction of epochs whose drops all belong to a single connection
    (the Figure-4 pattern).  [None] on an empty list. *)
val single_loser_fraction : t list -> float option

(** Does the identity of the (single) losing connection alternate between
    consecutive single-loser epochs?  Returns the fraction of consecutive
    single-loser pairs that alternate; [None] if fewer than two
    single-loser epochs. *)
val alternation : t list -> float option
