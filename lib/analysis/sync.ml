type phase = In_phase | Out_of_phase | Unclassified

let phase_to_string = function
  | In_phase -> "in-phase"
  | Out_of_phase -> "out-of-phase"
  | Unclassified -> "unclassified"

let classify ?(threshold = 0.2) a b ~t0 ~t1 ~dt =
  let xs = Trace.Series.resample a ~t0 ~t1 ~dt in
  let ys = Trace.Series.resample b ~t0 ~t1 ~dt in
  let r = Stats.pearson xs ys in
  let phase =
    if r >= threshold then In_phase
    else if r <= -.threshold then Out_of_phase
    else Unclassified
  in
  (phase, r)

let lag a b ~t0 ~t1 ~dt ~max_lag =
  if dt <= 0. then invalid_arg "Sync.lag: dt <= 0";
  if max_lag < 0. then invalid_arg "Sync.lag: negative max_lag";
  let xs = Trace.Series.resample a ~t0 ~t1 ~dt in
  let ys = Trace.Series.resample b ~t0 ~t1 ~dt in
  let n = Array.length xs in
  let max_shift = int_of_float (max_lag /. dt) in
  if n < (2 * max_shift) + 4 then None
  else begin
    (* Correlate the overlapping portions at every shift. *)
    let best = ref None in
    for shift = -max_shift to max_shift do
      let len = n - abs shift in
      let x_off = max 0 (-shift) and y_off = max 0 shift in
      let xs' = Array.sub xs x_off len in
      let ys' = Array.sub ys y_off len in
      let r = Stats.pearson xs' ys' in
      match !best with
      | Some (_, best_r) when best_r >= r -> ()
      | _ -> best := Some (float_of_int shift *. dt, r)
    done;
    !best
  end
