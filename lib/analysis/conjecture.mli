(** The §4.3.3 conjecture for the fixed-window, zero-size-ACK system.

    For two fixed windows [w1 >= w2] sharing a bottleneck of pipe size
    [P] (packets per direction):

    - [w1 > w2 + 2P]: queues synchronize out-of-phase and only one line
      is fully utilized;
    - [w1 < w2 + 2P]: queues synchronize in-phase and (strictly) neither
      line is fully utilized.

    {!predict} evaluates the criterion; {!verdict} compares a measured
    run against it. *)

type prediction =
  | Out_of_phase_one_full
  | In_phase_neither_full
  | Boundary  (** w1 = w2 + 2P exactly *)

val prediction_to_string : prediction -> string

(** [predict ~w1 ~w2 ~pipe] — windows may be given in either order. *)
val predict : w1:int -> w2:int -> pipe:float -> prediction

(** Classify a measured run by its two line utilizations, the robust
    observable the conjecture couples to the phase ([full_threshold]
    defaults to 0.99): exactly one line full → [Out_of_phase_one_full];
    neither full → [In_phase_neither_full]; both full → [Boundary]. *)
val observe :
  ?full_threshold:float -> util1:float -> util2:float -> unit -> prediction

(** Does the observation match the prediction?  [Boundary] predictions
    accept anything. *)
val verdict : prediction -> observed:prediction -> bool
