type t = {
  start : float;
  stop : float;
  drops : Trace.Drop_log.record list;
  by_conn : (int * int) list;
}

let summarize drops =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (r : Trace.Drop_log.record) ->
      let count = try Hashtbl.find tbl r.conn with Not_found -> 0 in
      Hashtbl.replace tbl r.conn (count + 1))
    drops;
  let by_conn = Hashtbl.fold (fun conn count acc -> (conn, count) :: acc) tbl [] in
  List.sort compare by_conn

let make drops =
  match drops with
  | [] -> invalid_arg "Epochs.make: no drops"
  | first :: _ ->
    let last = List.nth drops (List.length drops - 1) in
    {
      start = first.Trace.Drop_log.time;
      stop = last.Trace.Drop_log.time;
      drops;
      by_conn = summarize drops;
    }

let detect ~gap records =
  if gap <= 0. then invalid_arg "Epochs.detect: gap must be positive";
  let flush current epochs =
    match current with [] -> epochs | drops -> make (List.rev drops) :: epochs
  in
  let rec scan records current last_time epochs =
    match records with
    | [] -> List.rev (flush current epochs)
    | (r : Trace.Drop_log.record) :: rest ->
      if current = [] || r.time -. last_time <= gap then
        scan rest (r :: current) r.time epochs
      else scan rest [ r ] r.time (flush current epochs)
  in
  scan records [] neg_infinity []

let total_drops t = List.length t.drops
let conns_hit t = List.map fst t.by_conn

let losses_of t ~conn =
  match List.assoc_opt conn t.by_conn with Some n -> n | None -> 0

let mean_drops = function
  | [] -> None
  | epochs ->
    let total = List.fold_left (fun acc e -> acc + total_drops e) 0 epochs in
    Some (float_of_int total /. float_of_int (List.length epochs))

let loss_synchronization epochs ~conns =
  match epochs with
  | [] -> None
  | _ ->
    let all_hit e = List.for_all (fun c -> losses_of e ~conn:c > 0) conns in
    let hits = List.length (List.filter all_hit epochs) in
    Some (float_of_int hits /. float_of_int (List.length epochs))

let single_loser epochs = List.filter (fun e -> List.length e.by_conn = 1) epochs

let single_loser_fraction = function
  | [] -> None
  | epochs ->
    Some
      (float_of_int (List.length (single_loser epochs))
      /. float_of_int (List.length epochs))

let alternation epochs =
  let losers =
    List.filter_map
      (fun e -> match e.by_conn with [ (conn, _) ] -> Some conn | _ -> None)
      epochs
  in
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a <> b) :: pairs rest
    | [ _ ] | [] -> []
  in
  match pairs losers with
  | [] -> None
  | flips ->
    let alternating = List.length (List.filter Fun.id flips) in
    Some (float_of_int alternating /. float_of_int (List.length flips))
