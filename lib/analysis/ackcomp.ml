type spacing = {
  samples : int;
  median_gap : float;
  ratio : float;
  compressed_fraction : float;
}

let ack_spacing records ~data_tx =
  let rec gaps records acc =
    match records with
    | (a : Trace.Dep_log.record) :: (b :: _ as rest) ->
      if a.kind = Net.Packet.Ack && b.kind = Net.Packet.Ack && a.conn = b.conn
      then gaps rest ((b.time -. a.time) :: acc)
      else gaps rest acc
    | [ _ ] | [] -> acc
  in
  match gaps records [] with
  | [] -> None
  | gap_list ->
    let gap_array = Array.of_list gap_list in
    let median_gap = Stats.median gap_array in
    let compressed =
      Array.fold_left
        (fun acc g -> if g < 0.5 *. data_tx then acc + 1 else acc)
        0 gap_array
    in
    Some
      {
        samples = Array.length gap_array;
        median_gap;
        ratio = median_gap /. data_tx;
        compressed_fraction =
          float_of_int compressed /. float_of_int (Array.length gap_array);
      }

type edge_slopes = {
  rising : float option;
  falling : float option;
  rising_count : int;
  falling_count : int;
}

let edge_slopes series ~t0 ~t1 ~min_rise =
  if min_rise <= 0. then invalid_arg "Ackcomp.edge_slopes: min_rise <= 0";
  let samples = Array.of_list (Trace.Series.window series ~t0 ~t1) in
  let n = Array.length samples in
  let rising = ref [] and falling = ref [] in
  (* Scan maximal monotone runs; a run contributes an edge when its total
     excursion reaches [min_rise] and it has nonzero duration. *)
  let i = ref 0 in
  while !i < n - 1 do
    let dir = compare (snd samples.(!i + 1)) (snd samples.(!i)) in
    if dir = 0 then incr i
    else begin
      (* strictly monotone: queue samples move by whole packets, and a
         flat stretch belongs to a plateau, not an edge *)
      let monotone a b = if dir > 0 then b > a else b < a in
      let j = ref (!i + 1) in
      while !j < n - 1 && monotone (snd samples.(!j)) (snd samples.(!j + 1)) do
        incr j
      done;
      let t_start, v_start = samples.(!i) in
      let t_end, v_end = samples.(!j) in
      let rise = v_end -. v_start in
      if Float.abs rise >= min_rise && t_end > t_start then begin
        let slope = rise /. (t_end -. t_start) in
        if dir > 0 then rising := slope :: !rising
        else falling := slope :: !falling
      end;
      i := !j
    end
  done;
  let median = function
    | [] -> None
    | slopes -> Some (Stats.median (Array.of_list slopes))
  in
  {
    rising = median !rising;
    falling = median !falling;
    rising_count = List.length !rising;
    falling_count = List.length !falling;
  }

let fluctuation_rate series ~t0 ~t1 ~window ~threshold =
  if window <= 0. then invalid_arg "Ackcomp.fluctuation_rate: window <= 0";
  if threshold <= 0. then invalid_arg "Ackcomp.fluctuation_rate: threshold <= 0";
  let samples = Array.of_list (Trace.Series.window series ~t0 ~t1) in
  let n = Array.length samples in
  let events = ref 0 in
  let i = ref 0 in
  while !i < n - 1 do
    let t_start, v_start = samples.(!i) in
    (* Find the largest excursion within [t_start, t_start + window]. *)
    let j = ref (!i + 1) in
    let hit = ref false in
    while (not !hit) && !j < n && fst samples.(!j) -. t_start <= window do
      let _, v = samples.(!j) in
      if Float.abs (v -. v_start) >= threshold then hit := true else incr j
    done;
    if !hit then begin
      incr events;
      i := !j  (* skip past the excursion so one swing counts once *)
    end
    else incr i
  done;
  if t1 <= t0 then 0. else float_of_int !events /. (t1 -. t0)
