(** Checker: per-link FIFO departure order and occupancy bounds.

    Maintains a shadow queue of packet ids and verifies that (1) packets
    depart a drop-tail link in exactly their enqueue order, (2) reported
    occupancy stays within [0 .. capacity], and (3) drop-tail only rejects
    arrivals, and only when the buffer is full.

    Only meaningful for {!Net.Discipline.Fifo} links; {!attach} returns
    [None] for the other disciplines (eviction and round-robin service are
    legitimately non-FIFO).  The [observe_*] functions are exposed so tests
    can feed a synthetic reordered/violating event stream. *)

type t

val name : string
val create : Report.t -> subject:string -> capacity:int option -> t

(** Feed a link event: [qlen] is the occupancy after the event, as passed
    by the {!Net.Link} hooks. *)
val observe_enqueue : t -> time:float -> Net.Packet.t -> qlen:int -> unit

val observe_drop : t -> time:float -> Net.Packet.t -> unit
val observe_depart : t -> time:float -> Net.Packet.t -> qlen:int -> unit

(** Fault events (lib/faults): a [Fault_drop] sanctions the packet's
    coming drop (and removes it from the shadow queue if an outage
    flushed it while queued), so intentional discards are not reported
    as drop-tail violations.  Duplicates and jitter need no handling:
    copies enqueue normally and jitter only delays post-departure
    propagation. *)
val observe_fault : t -> time:float -> Net.Link.fault_event -> Net.Packet.t -> unit

(** Compare the shadow queue against the link's actual end-of-run
    occupancy. *)
val finalize : t -> time:float -> occupancy:int -> unit

(** Wire the checker into a live link's hooks ([None] unless the link runs
    drop-tail FIFO). *)
val attach : Report.t -> Net.Link.t -> t option
