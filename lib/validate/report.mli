(** Accumulator for invariant violations.

    Checkers report violations here instead of raising, so one defect does
    not mask later ones and a whole run can be diagnosed from a single
    report.  Only the first [max_kept] violations are kept verbatim; the
    total count is always exact. *)

type violation = {
  time : float;  (** simulated time of the violating event *)
  checker : string;  (** checker name, e.g. ["conservation"] *)
  subject : string;  (** what was being checked, e.g. ["link sw1->sw2"] *)
  detail : string;
}

type t

val default_max_kept : int

(** @raise Invalid_argument if [max_kept < 1]. *)
val create : ?max_kept:int -> unit -> t

val add :
  t -> time:float -> checker:string -> subject:string -> detail:string -> unit

(** [on_violation t f] — [f] fires synchronously on every recorded
    violation, kept or not (observers, e.g. a flight recorder, may want
    to react to the first one even when the report is saturated). *)
val on_violation : t -> (violation -> unit) -> unit

(** Exact count of violations recorded, kept or not. *)
val total : t -> int

val is_clean : t -> bool

(** Kept violations in the order they were recorded. *)
val violations : t -> violation list

val pp_violation : Format.formatter -> violation -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** One-line summary: ["clean (0 violations)"] or a count plus the first
    violation. *)
val summary : t -> string
