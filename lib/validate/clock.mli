(** Checker: the simulation clock never moves backwards.

    Observes every executed event's timestamp and reports any regression.
    [observe] is exposed so tests can drive the checker with a synthetic
    (violating) event stream. *)

type t

val name : string
val create : Report.t -> t

(** Feed one executed-event timestamp. *)
val observe : t -> float -> unit

(** Wire the checker into a live simulator via {!Engine.Sim.on_event}. *)
val attach : Report.t -> Engine.Sim.t -> t
