(** Checker: packet conservation.

    Every packet injected at a host must end exactly one way: delivered to
    an endpoint, dropped by a buffer (with the drop observed), or still in
    flight when the run ends.  Duplicate injection, duplicate delivery,
    delivery after a drop, and drops of never-injected packets are all
    violations.  {!finalize} additionally audits that every packet still
    sitting in a link buffer is accounted as in-flight.

    The [observe_*] functions are exposed so tests can feed synthetic
    violating event streams. *)

type t

val name : string
val create : Report.t -> t
val observe_inject : t -> time:float -> Net.Packet.t -> unit
val observe_drop : t -> time:float -> Net.Packet.t -> unit
val observe_deliver : t -> time:float -> Net.Packet.t -> unit

(** Fault events (lib/faults): a [Fault_duplicate] copy is ledgered as a
    fresh injection so the balance still holds under fault injection;
    fault drops arrive through the ordinary drop path. *)
val observe_fault : t -> time:float -> Net.Link.fault_event -> Net.Packet.t -> unit

(** End-of-run audit over the given links' buffer contents. *)
val finalize : t -> time:float -> links:Net.Link.t list -> unit

val injected : t -> int
val delivered : t -> int
val dropped : t -> int

(** [injected - delivered - dropped]. *)
val in_flight : t -> int

(** Wire the checker into a network: injection and delivery hooks plus the
    drop and fault hooks of every link existing at attach time. *)
val attach : Report.t -> Net.Network.t -> t
