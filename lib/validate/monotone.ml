let name = "monotone"

type conn_state = {
  mutable max_ack_sent : int;  (* largest cumulative ACK injected, -1 if none *)
  mutable next_new_seq : int;  (* next never-before-sent data sequence *)
  mutable max_ack_delivered : int;  (* largest ACK handed to the sender *)
}

type t = { report : Report.t; conns : (int, conn_state) Hashtbl.t }

let create report = { report; conns = Hashtbl.create 16 }

let state t conn =
  match Hashtbl.find_opt t.conns conn with
  | Some s -> s
  | None ->
    let s = { max_ack_sent = -1; next_new_seq = 0; max_ack_delivered = 0 } in
    Hashtbl.add t.conns conn s;
    s

let add t ~time ~conn fmt =
  Printf.ksprintf
    (fun detail ->
      Report.add t.report ~time ~checker:name
        ~subject:(Printf.sprintf "conn %d" conn)
        ~detail)
    fmt

let observe_inject t ~time (p : Net.Packet.t) =
  let s = state t p.Net.Packet.conn in
  match p.Net.Packet.kind with
  | Net.Packet.Ack ->
    if p.Net.Packet.seq < s.max_ack_sent then
      add t ~time ~conn:p.Net.Packet.conn
        "cumulative ACK went backwards: %d after %d" p.Net.Packet.seq
        s.max_ack_sent
    else s.max_ack_sent <- p.Net.Packet.seq
  | Net.Packet.Data ->
    if p.Net.Packet.retransmit then begin
      if p.Net.Packet.seq >= s.next_new_seq then
        add t ~time ~conn:p.Net.Packet.conn
          "retransmission of seq %d beyond highest sent %d" p.Net.Packet.seq
          (s.next_new_seq - 1)
    end
    else begin
      if p.Net.Packet.seq <> s.next_new_seq then
        add t ~time ~conn:p.Net.Packet.conn
          "new data sequence not contiguous: sent %d, expected %d"
          p.Net.Packet.seq s.next_new_seq;
      (* Resynchronize so one gap is reported once, not per packet. *)
      s.next_new_seq <- max s.next_new_seq (p.Net.Packet.seq + 1)
    end

let observe_deliver t ~time:_ (p : Net.Packet.t) =
  match p.Net.Packet.kind with
  | Net.Packet.Ack ->
    let s = state t p.Net.Packet.conn in
    if p.Net.Packet.seq > s.max_ack_delivered then
      s.max_ack_delivered <- p.Net.Packet.seq
  | Net.Packet.Data -> ()

(* Largest cumulative ACK actually handed to the sender's host; equals the
   sender's [snd_una] once its endpoint has processed the ACK. *)
let max_ack_delivered t ~conn =
  match Hashtbl.find_opt t.conns conn with
  | Some s -> s.max_ack_delivered
  | None -> 0

let attach report net =
  let t = create report in
  Net.Network.on_inject net (fun time p -> observe_inject t ~time p);
  Net.Network.on_deliver net (fun time p -> observe_deliver t ~time p);
  t
