let name = "conservation"

type status = In_flight | Delivered | Dropped

type t = {
  report : Report.t;
  table : (int, status) Hashtbl.t;  (* packet id -> status *)
  mutable injected : int;
  mutable delivered : int;
  mutable dropped : int;
}

let create report =
  { report; table = Hashtbl.create 4096; injected = 0; delivered = 0;
    dropped = 0 }

let injected t = t.injected
let delivered t = t.delivered
let dropped t = t.dropped
let in_flight t = t.injected - t.delivered - t.dropped

let violation t ~time (p : Net.Packet.t) fmt =
  Printf.ksprintf
    (fun detail ->
      Report.add t.report ~time ~checker:name
        ~subject:
          (Printf.sprintf "packet #%d conn=%d %s seq=%d" p.Net.Packet.id
             p.Net.Packet.conn
             (Net.Packet.kind_to_string p.Net.Packet.kind)
             p.Net.Packet.seq)
        ~detail)
    fmt

let observe_inject t ~time (p : Net.Packet.t) =
  match Hashtbl.find_opt t.table p.Net.Packet.id with
  | Some _ -> violation t ~time p "injected twice (duplicate packet id)"
  | None ->
    Hashtbl.replace t.table p.Net.Packet.id In_flight;
    t.injected <- t.injected + 1

let observe_drop t ~time (p : Net.Packet.t) =
  match Hashtbl.find_opt t.table p.Net.Packet.id with
  | Some In_flight ->
    Hashtbl.replace t.table p.Net.Packet.id Dropped;
    t.dropped <- t.dropped + 1
  | Some Dropped -> violation t ~time p "dropped twice"
  | Some Delivered -> violation t ~time p "dropped after delivery"
  | None -> violation t ~time p "dropped but never injected"

(* A fault-injected duplicate is a new wire entity born inside the
   network: ledger it as injected so its later delivery (or drop)
   balances.  Fault drops need no special casing — the link fires its
   ordinary drop hook for them. *)
let observe_fault t ~time (event : Net.Link.fault_event) (p : Net.Packet.t) =
  match event with
  | Net.Link.Fault_duplicate -> observe_inject t ~time p
  | Net.Link.Fault_drop _ | Net.Link.Fault_delay _ -> ()

let observe_deliver t ~time (p : Net.Packet.t) =
  match Hashtbl.find_opt t.table p.Net.Packet.id with
  | Some In_flight ->
    Hashtbl.replace t.table p.Net.Packet.id Delivered;
    t.delivered <- t.delivered + 1
  | Some Delivered -> violation t ~time p "delivered twice (duplicated)"
  | Some Dropped -> violation t ~time p "delivered after being dropped"
  | None -> violation t ~time p "delivered but never injected"

(* End-of-run audit: every packet still sitting in a link buffer must be
   accounted as in-flight, and the per-status counts must add up. *)
let finalize t ~time ~links =
  List.iter
    (fun link ->
      List.iter
        (fun (p : Net.Packet.t) ->
          match Hashtbl.find_opt t.table p.Net.Packet.id with
          | Some In_flight -> ()
          | Some Delivered ->
            violation t ~time p "queued on link %s but already delivered"
              (Net.Link.name link)
          | Some Dropped ->
            violation t ~time p "queued on link %s but already dropped"
              (Net.Link.name link)
          | None ->
            violation t ~time p "queued on link %s but never injected"
              (Net.Link.name link))
        (Net.Link.contents link))
    links;
  if in_flight t < 0 then
    Report.add t.report ~time ~checker:name ~subject:"network"
      ~detail:
        (Printf.sprintf
           "negative in-flight count: injected %d, delivered %d, dropped %d"
           t.injected t.delivered t.dropped)

let attach report net =
  let t = create report in
  Net.Network.on_inject net (fun time p -> observe_inject t ~time p);
  Net.Network.on_deliver net (fun time p -> observe_deliver t ~time p);
  List.iter
    (fun link ->
      Net.Link.on_drop link (fun time p -> observe_drop t ~time p);
      Net.Link.on_fault link (fun time event p -> observe_fault t ~time event p))
    (Net.Network.links net);
  t
