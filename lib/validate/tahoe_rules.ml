let name = "tahoe"

(* Float tolerance: cwnd arithmetic accumulates 1/wnd steps and the
   congestion module snaps near-integers within 1e-9. *)
let eps = 1e-6

type t = {
  report : Report.t;
  subject : string;
  maxwnd : int;
  modified_ca : bool;
  mutable last : (float * float) option;  (* last observed (cwnd, ssthresh) *)
  mutable pending_loss : bool;  (* a loss fired; next sample is the reset *)
}

let create report ~subject ~maxwnd ~modified_ca =
  { report; subject; maxwnd; modified_ca; last = None; pending_loss = false }

let add t ~time fmt =
  Printf.ksprintf
    (fun detail ->
      Report.add t.report ~time ~checker:name ~subject:t.subject ~detail)
    fmt

let observe_loss t ~time:_ (_reason : Tcp.Sender.loss_reason) =
  (* Tahoe reacts identically to timeout and fast retransmit: the next
     window sample must be the slow-start reset. *)
  t.pending_loss <- true

let check_loss_transition t ~time ~cwnd ~ssthresh =
  if Float.abs (cwnd -. 1.) > eps then
    add t ~time "cwnd after loss is %g, must reset to 1" cwnd;
  match t.last with
  | None -> ()
  | Some (prev_cwnd, _) ->
    let expected =
      Float.max (Float.min (prev_cwnd /. 2.) (float_of_int t.maxwnd)) 2.
    in
    if Float.abs (ssthresh -. expected) > eps then
      add t ~time "ssthresh after loss is %g, must be flight/2 = %g (cwnd was %g)"
        ssthresh expected prev_cwnd

let check_ack_growth t ~time ~cwnd ~ssthresh ~prev_cwnd ~prev_ssthresh =
  if Float.abs (ssthresh -. prev_ssthresh) > eps then
    add t ~time "ssthresh changed without a loss: %g -> %g" prev_ssthresh
      ssthresh;
  let delta = cwnd -. prev_cwnd in
  if delta < -.eps then
    add t ~time "cwnd shrank on ACK: %g -> %g" prev_cwnd cwnd
  else if prev_cwnd < prev_ssthresh then begin
    (* Slow start: at most one packet per ACK. *)
    if delta > 1. +. eps then
      add t ~time "slow-start growth of %g per ACK (cwnd %g), limit is 1" delta
        prev_cwnd
  end
  else begin
    (* Congestion avoidance: at most 1/floor(cwnd) per ACK (the modified
       algorithm divides by the integer window, the original by cwnd
       itself; 1/floor bounds both). *)
    let floor_wnd =
      Float.max 1. (Float.of_int (int_of_float (Float.min prev_cwnd (float_of_int t.maxwnd))))
    in
    if delta > (1. /. floor_wnd) +. eps then
      add t ~time
        "congestion-avoidance growth of %g per ACK (cwnd %g), limit is 1/%g"
        delta prev_cwnd floor_wnd
  end

let observe_cwnd t ~time ~cwnd ~ssthresh =
  if cwnd < 1. -. eps then add t ~time "cwnd %g below 1" cwnd;
  if cwnd > float_of_int t.maxwnd +. eps then
    add t ~time "cwnd %g above the advertised window %d" cwnd t.maxwnd;
  if t.pending_loss then begin
    check_loss_transition t ~time ~cwnd ~ssthresh;
    t.pending_loss <- false
  end
  else begin
    match t.last with
    | None -> ()
    | Some (prev_cwnd, prev_ssthresh) ->
      check_ack_growth t ~time ~cwnd ~ssthresh ~prev_cwnd ~prev_ssthresh
  end;
  t.last <- Some (cwnd, ssthresh)

let attach report conn =
  let sender = Tcp.Connection.sender conn in
  let config = Tcp.Sender.config sender in
  match config.Tcp.Config.cc.Tcp.Cc.name with
  | ("tahoe" | "tahoe-unmodified") as name ->
    let modified_ca = name = "tahoe" in
    let t =
      create report
        ~subject:(Printf.sprintf "conn %d" config.Tcp.Config.conn)
        ~maxwnd:config.Tcp.Config.maxwnd ~modified_ca
    in
    Tcp.Sender.on_loss sender (fun time reason -> observe_loss t ~time reason);
    Tcp.Sender.on_cwnd sender (fun time ~cwnd ~ssthresh ->
        observe_cwnd t ~time ~cwnd ~ssthresh);
    Some t
  | _ ->
    (* Reno's inflation/deflation, fixed windows and the rest of the zoo
       follow different rules; this checker pins the paper's Tahoe state
       machine only. *)
    None
