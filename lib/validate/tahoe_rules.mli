(** Checker: Tahoe congestion-window state machine, as quoted in the
    paper's §2.1.

    Between losses, cwnd may grow by at most 1 per ACK in slow start and
    at most [1/⌊cwnd⌋] per ACK in congestion avoidance, with ssthresh
    unchanged.  After a loss (timeout or Tahoe fast retransmit) the next
    window sample must show [cwnd = 1] and
    [ssthresh = max (min (cwnd/2) maxwnd) 2].  cwnd stays within
    [1 .. maxwnd] throughout.

    The [observe_*] functions are exposed so tests can feed synthetic
    violating trajectories. *)

type t

val name : string

val create :
  Report.t -> subject:string -> maxwnd:int -> modified_ca:bool -> t

(** Note that a loss was detected; the next {!observe_cwnd} sample is
    validated as the post-loss reset. *)
val observe_loss : t -> time:float -> Tcp.Sender.loss_reason -> unit

(** Feed one (cwnd, ssthresh) sample, as fired by {!Tcp.Sender.on_cwnd}. *)
val observe_cwnd : t -> time:float -> cwnd:float -> ssthresh:float -> unit

(** Wire the checker into a connection's sender hooks ([None] unless the
    connection runs Tahoe). *)
val attach : Report.t -> Tcp.Connection.t -> t option
