type violation = {
  time : float;
  checker : string;
  subject : string;
  detail : string;
}

type t = {
  max_kept : int;
  mutable kept : violation list;  (* newest first, capped at max_kept *)
  mutable total : int;
  mutable hooks : (violation -> unit) list;
}

let default_max_kept = 50

let create ?(max_kept = default_max_kept) () =
  if max_kept < 1 then invalid_arg "Report.create: max_kept must be >= 1";
  { max_kept; kept = []; total = 0; hooks = [] }

let on_violation t f = t.hooks <- f :: t.hooks

let add t ~time ~checker ~subject ~detail =
  t.total <- t.total + 1;
  let v = { time; checker; subject; detail } in
  if t.total <= t.max_kept then t.kept <- v :: t.kept;
  match t.hooks with
  | [] -> ()
  | hooks -> List.iter (fun f -> f v) hooks

let total t = t.total
let is_clean t = t.total = 0
let violations t = List.rev t.kept

let pp_violation ppf v =
  Format.fprintf ppf "[t=%.6f] %s (%s): %s" v.time v.checker v.subject v.detail

let pp ppf t =
  if is_clean t then Format.fprintf ppf "validation: clean (0 violations)"
  else begin
    Format.fprintf ppf "validation: %d violation%s" t.total
      (if t.total = 1 then "" else "s");
    if t.total > t.max_kept then
      Format.fprintf ppf " (first %d shown)" t.max_kept;
    List.iter
      (fun v -> Format.fprintf ppf "@\n  %a" pp_violation v)
      (violations t)
  end

let to_string t = Format.asprintf "%a" pp t

let summary t =
  if is_clean t then "clean (0 violations)"
  else
    match violations t with
    | [] -> Printf.sprintf "%d violations" t.total
    | first :: _ ->
      Printf.sprintf "%d violation%s (first: %s at t=%.6f: %s)" t.total
        (if t.total = 1 then "" else "s")
        first.checker first.time first.detail
