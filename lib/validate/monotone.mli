(** Checker: per-connection sequence-number discipline.

    On injection: a connection's cumulative ACK numbers never decrease;
    never-before-sent data is contiguous (each new segment is exactly the
    successor of the previous new one); packets flagged as retransmissions
    stay at or below the highest sequence already sent.

    On delivery it records the largest cumulative ACK handed to the
    sender, which cross-checks the sender's [snd_una] / delivered count.

    The [observe_*] functions are exposed so tests can feed synthetic
    violating event streams. *)

type t

val name : string
val create : Report.t -> t
val observe_inject : t -> time:float -> Net.Packet.t -> unit
val observe_deliver : t -> time:float -> Net.Packet.t -> unit

(** Largest cumulative ACK delivered to the sender's host for [conn]
    (0 if none). *)
val max_ack_delivered : t -> conn:int -> int

(** Wire the checker into a network's inject/deliver hooks. *)
val attach : Report.t -> Net.Network.t -> t
