let name = "clock"

type t = { report : Report.t; mutable last : float }

let create report = { report; last = neg_infinity }

let observe t time =
  if time < t.last then
    Report.add t.report ~time ~checker:name ~subject:"sim"
      ~detail:
        (Printf.sprintf "event clock went backwards: %g after %g" time t.last)
  else if Float.is_nan time then
    Report.add t.report ~time ~checker:name ~subject:"sim"
      ~detail:"event clock is NaN"
  else t.last <- time

let attach report sim =
  let t = create report in
  Engine.Sim.on_event sim (observe t);
  t
