(** The full invariant-checking harness for one simulation run.

    {!attach} wires every checker into a live network and its connections:

    - {!Clock}: simulation clock monotonicity
    - {!Conservation}: no packet duplicated or lost without a drop
    - {!Monotone}: per-connection ACK/sequence discipline
    - {!Fifo_order}: per-link FIFO order and occupancy bounds (drop-tail
      links only)
    - {!Tahoe_rules}: Tahoe window dynamics (Tahoe connections only)

    Attach after the topology and connections are built and before the
    simulation runs; links or connections added later are not watched.
    Call {!finalize} once the run ends to perform the end-of-run audits
    and obtain the report.  Overhead is roughly 20-30% of runtime
    ([dune exec bench/main.exe -- overhead]), so the harness is off by
    default in {!Core.Runner}-driven runs and enabled per scenario. *)

type t

(** [attach net ~conns] creates a report and wires every applicable
    checker.  [max_kept] bounds the violations kept verbatim in the
    report (default {!Report.default_max_kept}). *)
val attach : ?max_kept:int -> Net.Network.t -> conns:Tcp.Connection.t list -> t

(** The (possibly still accumulating) report. *)
val report : t -> Report.t

(** The conservation checker, for its packet counts. *)
val conservation : t -> Conservation.t

(** Largest cumulative ACK delivered to [conn]'s sender (0 if none);
    equals the sender's delivered count once its last ACK is processed. *)
val max_ack_delivered : t -> conn:int -> int

(** Run the end-of-run audits (idempotent) and return the report. *)
val finalize : t -> now:float -> Report.t
