type t = {
  report : Report.t;
  net : Net.Network.t;
  clock : Clock.t;
  conservation : Conservation.t;
  monotone : Monotone.t;
  fifos : (Net.Link.t * Fifo_order.t) list;
  tahoes : Tahoe_rules.t list;
  mutable finalized : bool;
}

let attach ?max_kept net ~conns =
  let report = Report.create ?max_kept () in
  let sim = Net.Network.sim net in
  let clock = Clock.attach report sim in
  let conservation = Conservation.attach report net in
  let monotone = Monotone.attach report net in
  let fifos =
    List.filter_map
      (fun link ->
        match Fifo_order.attach report link with
        | Some checker -> Some (link, checker)
        | None -> None)
      (Net.Network.links net)
  in
  let tahoes = List.filter_map (Tahoe_rules.attach report) conns in
  { report; net; clock; conservation; monotone; fifos; tahoes;
    finalized = false }

let report t = t.report
let conservation t = t.conservation

let max_ack_delivered t ~conn = Monotone.max_ack_delivered t.monotone ~conn

let finalize t ~now =
  if not t.finalized then begin
    t.finalized <- true;
    Conservation.finalize t.conservation ~time:now
      ~links:(Net.Network.links t.net);
    List.iter
      (fun (link, checker) ->
        Fifo_order.finalize checker ~time:now
          ~occupancy:(Net.Link.queue_length link))
      t.fifos
  end;
  t.report
