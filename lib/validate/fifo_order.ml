let name = "fifo"

type t = {
  report : Report.t;
  subject : string;
  capacity : int option;
  model : int Queue.t;  (* packet ids in expected departure order *)
  sanctioned : (int, unit) Hashtbl.t;
      (* ids whose next drop was announced as a fault injection *)
}

let create report ~subject ~capacity =
  {
    report;
    subject;
    capacity;
    model = Queue.create ();
    sanctioned = Hashtbl.create 8;
  }

let add t ~time fmt =
  Printf.ksprintf
    (fun detail ->
      Report.add t.report ~time ~checker:name ~subject:t.subject ~detail)
    fmt

let check_occupancy t ~time ~qlen =
  if qlen < 0 then add t ~time "negative queue occupancy %d" qlen;
  match t.capacity with
  | Some c when qlen > c ->
    add t ~time "occupancy %d exceeds configured buffer %d" qlen c
  | _ -> ()

let observe_enqueue t ~time (p : Net.Packet.t) ~qlen =
  check_occupancy t ~time ~qlen;
  Queue.push p.Net.Packet.id t.model

let remove_from_model t id =
  let keep = Queue.create () in
  Queue.iter (fun x -> if x <> id then Queue.push x keep) t.model;
  Queue.clear t.model;
  Queue.transfer keep t.model

(* A fault injection (lib/faults) may legally discard any packet — an
   arriving one, a queued one flushed by an outage, even one already in
   propagation.  The link announces the fault before firing the ordinary
   drop hook, so we sanction the id here and let {!observe_drop} skip its
   drop-tail reasoning exactly once. *)
let observe_fault t ~time:_ (event : Net.Link.fault_event)
    (p : Net.Packet.t) =
  match event with
  | Net.Link.Fault_drop _ ->
    Hashtbl.replace t.sanctioned p.Net.Packet.id ();
    remove_from_model t p.Net.Packet.id
  | Net.Link.Fault_duplicate | Net.Link.Fault_delay _ -> ()

(* Drop-tail never discards a queued packet: a drop is always the arriving
   packet, and only when the buffer is full.  Fault-injected drops are
   exempt: the link announces them through the fault hook first. *)
let observe_drop t ~time (p : Net.Packet.t) =
  let id = p.Net.Packet.id in
  if Hashtbl.mem t.sanctioned id then Hashtbl.remove t.sanctioned id
  else begin
    if Queue.fold (fun acc x -> acc || x = id) false t.model then
      add t ~time "queued packet #%d discarded (drop-tail must reject arrivals)"
        id;
    match t.capacity with
    | None -> add t ~time "packet #%d dropped by an infinite buffer" id
    | Some c ->
      let occupancy = Queue.length t.model in
      if occupancy < c then
        add t ~time "packet #%d tail-dropped with buffer at %d/%d" id occupancy
          c
  end

let observe_depart t ~time (p : Net.Packet.t) ~qlen =
  check_occupancy t ~time ~qlen;
  match Queue.take_opt t.model with
  | None -> add t ~time "packet #%d departed from an empty queue" p.Net.Packet.id
  | Some expected when expected <> p.Net.Packet.id ->
    add t ~time "FIFO order violated: packet #%d departed before #%d"
      p.Net.Packet.id expected;
    (* Resynchronize so one reordering is reported once, not once per
       subsequent departure: forget the model up to the departed packet. *)
    let rec resync () =
      match Queue.take_opt t.model with
      | Some id when id = p.Net.Packet.id -> ()
      | Some _ -> resync ()
      | None -> ()
    in
    resync ()
  | Some _ -> ()

let finalize t ~time ~occupancy =
  let modelled = Queue.length t.model in
  if modelled <> occupancy then
    add t ~time "end-of-run occupancy %d disagrees with modelled %d" occupancy
      modelled

let attach report link =
  match Net.Link.discipline link with
  | Net.Discipline.Fifo ->
    let t =
      create report
        ~subject:(Printf.sprintf "link %s" (Net.Link.name link))
        ~capacity:(Net.Link.capacity link)
    in
    Net.Link.on_enqueue link (fun time p qlen -> observe_enqueue t ~time p ~qlen);
    Net.Link.on_fault link (fun time event p -> observe_fault t ~time event p);
    Net.Link.on_drop link (fun time p -> observe_drop t ~time p);
    Net.Link.on_depart link (fun time p qlen -> observe_depart t ~time p ~qlen);
    Some t
  | Net.Discipline.Random_drop _ | Net.Discipline.Fair_queue ->
    (* Eviction and round-robin service are legitimately non-FIFO. *)
    None
