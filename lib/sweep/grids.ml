(* The named parameter grids behind `netsim sweep`, `bench sweep`, the
   phase-diagram / mode-atlas examples, and the CI determinism smoke.

   Each grid is a pure function of [quick] — building the points runs no
   simulation — and every point's scenario fully determines its result
   (see {!Driver} on determinism). *)

let fmt = Printf.sprintf

type spec = {
  name : string;
  title : string;
  points : quick:bool -> Driver.point list;
}

(* ------------------------------------------------------------------ *)
(* Fig-8/9: fixed windows 30/25 across bottleneck buffer sizes          *)
(* ------------------------------------------------------------------ *)

(* The paper runs Figures 8-9 with infinite buffers; sweeping the buffer
   maps how the two-way fixed-window cycle degrades once the switch can
   no longer hold the full w1 + w2 burst (Q1 reaches 55 packets in the
   paper's Figure 8).  Finite-buffer points enable loss detection so a
   drop triggers go-back-N retransmission instead of wedging the fixed
   window. *)
let fixed_window_point ~tau ~quick buffer =
  let duration, warmup = if quick then (150., 60.) else (400., 150.) in
  let conn ~window ~start_time dir =
    let spec =
      Core.Scenario.fixed_conn ~window ~ack_size:50 ~start_time dir
    in
    { spec with Core.Scenario.loss_detection = buffer <> None }
  in
  let id =
    match buffer with
    | None -> fmt "fixed-t%g-binf" tau
    | Some b -> fmt "fixed-t%g-b%d" tau b
  in
  let scenario =
    Core.Scenario.make ~name:id ~tau ~buffer
      ~conns:
        [
          conn ~window:30 ~start_time:0.37 Core.Scenario.Forward;
          conn ~window:25 ~start_time:1.91 Core.Scenario.Reverse;
        ]
      ~duration ~warmup ~sample_dt:0.05 ()
  in
  let params =
    ("tau", tau)
    :: ("w1", 30.) :: ("w2", 25.)
    :: (match buffer with None -> [] | Some b -> [ ("buffer", float_of_int b) ])
  in
  Driver.point ~params scenario

let fig8_buffers = [ Some 4; Some 6; Some 8; Some 12; Some 16; Some 24;
                     Some 32; Some 48; Some 64; None ]

let fig8 =
  {
    name = "fig8";
    title = "Fig-8 buffer grid: fixed windows 30/25, tau=0.01s, B=4..inf";
    points =
      (fun ~quick ->
        List.map (fixed_window_point ~tau:0.01 ~quick) fig8_buffers);
  }

let fig9 =
  {
    name = "fig9";
    title = "Fig-9 buffer grid: fixed windows 30/25, tau=1s, B=4..inf";
    points =
      (fun ~quick ->
        List.map (fixed_window_point ~tau:1.0 ~quick) fig8_buffers);
  }

(* ------------------------------------------------------------------ *)
(* 4.3.3 phase diagram: zero-size-ACK fixed windows over (w1, w2)       *)
(* ------------------------------------------------------------------ *)

let phase_diagram_tau = 0.4
let phase_diagram_windows = [ 6; 10; 14; 18; 22; 26; 30 ]

(* Row-major over w1 then w2, which is what the phase-diagram example
   relies on to print its matrix. *)
let phase_diagram_points ~quick =
  let duration, warmup = if quick then (80., 30.) else (150., 60.) in
  List.concat_map
    (fun w1 ->
      List.map
        (fun w2 ->
          let scenario =
            Core.Scenario.make
              ~name:(fmt "pd-%d-%d" w1 w2)
              ~tau:phase_diagram_tau ~buffer:None
              ~conns:
                [
                  Core.Scenario.fixed_conn ~window:w1 ~ack_size:0
                    ~start_time:0.37 Core.Scenario.Forward;
                  Core.Scenario.fixed_conn ~window:w2 ~ack_size:0
                    ~start_time:1.91 Core.Scenario.Reverse;
                ]
              ~duration ~warmup ()
          in
          Driver.point
            ~params:[ ("w1", float_of_int w1); ("w2", float_of_int w2) ]
            scenario)
        phase_diagram_windows)
    phase_diagram_windows

let phase_diagram =
  {
    name = "phase-diagram";
    title = "4.3.3 phase criterion: zero-ACK fixed windows over (w1, w2)";
    points = phase_diagram_points;
  }

(* ------------------------------------------------------------------ *)
(* Mode atlas: adaptive 1+1 two-way traffic over (tau, buffer)          *)
(* ------------------------------------------------------------------ *)

let mode_atlas_taus = [ 0.01; 0.1; 0.25; 0.5; 1.0 ]
let mode_atlas_buffers = [ 10; 20; 40; 80 ]

(* Row-major over buffer then tau (the atlas prints one row per buffer). *)
let mode_atlas_points ~quick =
  let duration, warmup = if quick then (200., 80.) else (400., 150.) in
  List.concat_map
    (fun buffer ->
      List.map
        (fun tau ->
          let scenario =
            Core.Scenario.make
              ~name:(fmt "atlas-%g-%d" tau buffer)
              ~tau ~buffer:(Some buffer)
              ~conns:
                (Core.Scenario.stagger ~step:1.0
                   [
                     Core.Scenario.conn Core.Scenario.Forward;
                     Core.Scenario.conn Core.Scenario.Reverse;
                   ])
              ~duration ~warmup ()
          in
          Driver.point
            ~params:[ ("tau", tau); ("buffer", float_of_int buffer) ]
            scenario)
        mode_atlas_taus)
    mode_atlas_buffers

let mode_atlas =
  {
    name = "mode-atlas";
    title = "synchronization modes: two-way 1+1 over (tau, buffer)";
    points = mode_atlas_points;
  }

(* ------------------------------------------------------------------ *)
(* Utilization vs buffer (the TAB-UTIL axes)                            *)
(* ------------------------------------------------------------------ *)

let buffers_points ~quick =
  let duration, warmup = if quick then (300., 120.) else (600., 200.) in
  let oneway buffer =
    let scenario =
      Core.Scenario.make
        ~name:(fmt "buf-oneway-%d" buffer)
        ~tau:1.0 ~buffer:(Some buffer)
        ~conns:
          (Core.Scenario.stagger ~step:1.0
             (List.init 3 (fun _ -> Core.Scenario.conn Core.Scenario.Forward)))
        ~duration ~warmup ()
    in
    Driver.point
      ~params:[ ("two_way", 0.); ("buffer", float_of_int buffer) ]
      scenario
  in
  let twoway buffer =
    (* Larger buffers stretch the cycle; scale the horizon like
       TAB-UTIL does so the window covers whole cycles. *)
    let scale = float_of_int (max 1 (buffer / 20)) in
    let scenario =
      Core.Scenario.make
        ~name:(fmt "buf-twoway-%d" buffer)
        ~tau:0.01 ~buffer:(Some buffer)
        ~conns:
          (Core.Scenario.stagger ~step:1.0
             [
               Core.Scenario.conn Core.Scenario.Forward;
               Core.Scenario.conn Core.Scenario.Reverse;
             ])
        ~duration:(duration *. scale) ~warmup:(warmup *. scale) ()
    in
    Driver.point
      ~params:[ ("two_way", 1.); ("buffer", float_of_int buffer) ]
      scenario
  in
  List.map oneway [ 20; 40; 80 ] @ List.map twoway [ 20; 60; 120 ]

let buffers =
  {
    name = "buffers";
    title = "utilization vs buffer size: one-way rises, two-way is stuck";
    points = buffers_points;
  }

(* ------------------------------------------------------------------ *)
(* CC zoo: every adaptive variant over the two synchronization regimes  *)
(* ------------------------------------------------------------------ *)

let cc_zoo_taus = [ 0.01; 1.0 ]

(* Row-major over variant then tau (one row per registry entry). *)
let cc_zoo_points ~quick =
  let duration, warmup = if quick then (200., 80.) else (400., 150.) in
  List.concat_map
    (fun name ->
      let cc = Tcp.Cc.spec name in
      List.map
        (fun tau ->
          let scenario =
            Core.Scenario.make
              ~name:(fmt "cc-%s-t%g" name tau)
              ~tau ~buffer:(Some 20)
              ~conns:
                (Core.Scenario.stagger ~step:1.0
                   [
                     Core.Scenario.conn ~cc Core.Scenario.Forward;
                     Core.Scenario.conn ~cc Core.Scenario.Reverse;
                   ])
              ~duration ~warmup ()
          in
          Driver.point ~params:[ ("tau", tau) ] scenario)
        cc_zoo_taus)
    Tcp.Cc_zoo.adaptive

let cc_zoo =
  {
    name = "cc-zoo";
    title = "the CC variant zoo: two-way 1+1 per variant, small and large pipe";
    points = cc_zoo_points;
  }

(* ------------------------------------------------------------------ *)
(* CI smoke: a tiny grid that exercises the parallel path in seconds    *)
(* ------------------------------------------------------------------ *)

let smoke_points ~quick:_ =
  List.concat_map
    (fun tau ->
      List.map
        (fun buffer ->
          let scenario =
            Core.Scenario.make
              ~name:(fmt "smoke-%g-%d" tau buffer)
              ~tau ~buffer:(Some buffer)
              ~conns:
                [
                  Core.Scenario.conn Core.Scenario.Forward;
                  Core.Scenario.conn ~start_time:1. Core.Scenario.Reverse;
                ]
              ~duration:40. ~warmup:10. ()
          in
          Driver.point
            ~params:[ ("tau", tau); ("buffer", float_of_int buffer) ]
            scenario)
        [ 10; 20 ])
    [ 0.01; 1.0 ]

let smoke =
  {
    name = "smoke";
    title = "tiny 2x2 grid for CI determinism checks";
    points = smoke_points;
  }

(* ------------------------------------------------------------------ *)

let all = [ fig8; fig9; phase_diagram; mode_atlas; buffers; cc_zoo; smoke ]

let find name = List.find_opt (fun s -> s.name = name) all
