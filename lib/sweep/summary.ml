type t = {
  id : string;
  params : (string * float) list;
  cc : string;
  util_fwd : float;
  util_bwd : float;
  drops_window : int;
  drops_total : int;
  delivered : int list;
  phase : string;
  phase_corr : float;
  epoch_count : int;
  mean_drops_per_epoch : float option;
  single_loser : float option;
  q1_max : float;
  q2_max : float;
  effective_pipe : float option;
  jain : float;
  fct_p50 : float option;
  fct_p99 : float option;
  metrics : (string * float) list;
}

let queue_max (r : Core.Runner.result) qt =
  match
    Trace.Series.min_max (Trace.Queue_trace.series qt) ~t0:r.t0 ~t1:r.t1
  with
  | Some (_, hi) -> hi
  | None -> 0.

(* Distinct controller specs across the point's connections, first-use
   order ("tahoe" for a homogeneous classic run, "tahoe,fixed:w=30" for a
   mixed one). *)
let cc_of_conns conns =
  let seen = Hashtbl.create 4 in
  let names =
    Array.to_list conns
    |> List.filter_map (fun ((spec : Core.Scenario.conn_spec), _) ->
           let s = Tcp.Cc.spec_to_string spec.cc in
           if Hashtbl.mem seen s then None
           else begin
             Hashtbl.add seen s ();
             Some s
           end)
  in
  String.concat "," names

(* Flow-completion times of the point's sized flows, run through the
   same quantile sketch as [netsim trace stats], in connection order —
   determinism of the sketch makes the columns byte-identical across
   sweep backends and job counts. *)
let fct_quantiles conns =
  let sk = Obs.Sketch.create () in
  Array.iter
    (fun ((spec : Core.Scenario.conn_spec), c) ->
      match Tcp.Sender.completed_at (Tcp.Connection.sender c) with
      | Some t -> Obs.Sketch.add sk (t -. spec.start_time)
      | None -> ())
    conns;
  if Obs.Sketch.is_empty sk then (None, None)
  else (Obs.Sketch.quantile sk 0.5, Obs.Sketch.quantile sk 0.99)

let of_result ~id ?(params = []) (r : Core.Runner.result) =
  let phase, phase_corr = Core.Runner.queue_phase r in
  let epochs = Core.Runner.epochs r in
  let fct_p50, fct_p99 = fct_quantiles r.conns in
  {
    id;
    params;
    cc = cc_of_conns r.conns;
    util_fwd = r.util_fwd;
    util_bwd = r.util_bwd;
    drops_window = List.length (Core.Runner.drops_in_window r);
    drops_total = Trace.Drop_log.total r.drops;
    delivered = Array.to_list r.delivered;
    phase = Analysis.Sync.phase_to_string phase;
    phase_corr;
    epoch_count = List.length epochs;
    mean_drops_per_epoch = Analysis.Epochs.mean_drops epochs;
    single_loser = Analysis.Epochs.single_loser_fraction epochs;
    q1_max = queue_max r r.q1;
    q2_max = queue_max r r.q2;
    effective_pipe = Core.Runner.effective_pipe r;
    jain =
      Analysis.Fairness.jain (Array.map float_of_int r.delivered);
    fct_p50;
    fct_p99;
    metrics =
      (match r.obs with
       | Some probe -> Obs.Probe.final_metrics probe
       | None -> []);
  }

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

(* The sweep acceptance test diffs the bytes of --jobs 1 and --jobs N
   output, so the encoding must be a pure function of the summary values:
   fixed key order, fixed float formatting, no timestamps. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_json f =
  if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else Printf.sprintf "%.9g" f

let opt_float_json = function None -> "null" | Some f -> float_json f

let to_json s =
  let params =
    String.concat ","
      (List.map
         (fun (k, v) -> Printf.sprintf "\"%s\":%s" (escape k) (float_json v))
         s.params)
  in
  let delivered =
    String.concat "," (List.map string_of_int s.delivered)
  in
  let metrics =
    String.concat ","
      (List.map
         (fun (k, v) -> Printf.sprintf "\"%s\":%s" (escape k) (float_json v))
         s.metrics)
  in
  Printf.sprintf
    "{\"id\":\"%s\",\"params\":{%s},\"cc\":\"%s\",\"util_fwd\":%s,\"util_bwd\":%s,\
     \"drops_window\":%d,\"drops_total\":%d,\"delivered\":[%s],\
     \"phase\":\"%s\",\"phase_corr\":%s,\"epochs\":%d,\
     \"mean_drops_per_epoch\":%s,\"single_loser\":%s,\
     \"q1_max\":%s,\"q2_max\":%s,\"effective_pipe\":%s,\
     \"jain\":%s,\"fct_p50\":%s,\"fct_p99\":%s,\
     \"metrics\":{%s}}"
    (escape s.id) params (escape s.cc) (float_json s.util_fwd)
    (float_json s.util_bwd)
    s.drops_window s.drops_total delivered (escape s.phase)
    (float_json s.phase_corr) s.epoch_count
    (opt_float_json s.mean_drops_per_epoch)
    (opt_float_json s.single_loser)
    (float_json s.q1_max) (float_json s.q2_max)
    (opt_float_json s.effective_pipe)
    (float_json s.jain)
    (opt_float_json s.fct_p50)
    (opt_float_json s.fct_p99)
    metrics

let list_to_json summaries =
  "[" ^ String.concat ",\n " (List.map to_json summaries) ^ "]\n"
