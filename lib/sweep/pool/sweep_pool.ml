(* Supervised, deterministic fork/pipe/Marshal worker pool.

   [map ~jobs f xs] computes [List.map f xs], fanning the work out to
   [jobs] forked worker processes.  Results are bit-identical regardless
   of the job count — and regardless of which workers crash — because
   the *assignment* of work to workers never affects a result: task [i]
   is always [f xs.(i)] computed in a process whose heap is a fork-time
   copy of the parent, every per-task RNG in this codebase is seeded
   from the task itself (the scenario), and the parent reassembles
   results by task index, not arrival order.

   Supervision model (see DESIGN.md, "Failure model & supervision"):

   - Each worker streams one length-prefixed Marshal frame back per
     completed point, then a final done marker.  The parent multiplexes
     every worker pipe through [Unix.select], decoding frames
     incrementally, so a completed point is banked the moment its frame
     lands — a worker that dies later loses only its *unfinished*
     points.
   - A crashed worker (non-zero exit, signal), a worker whose stream is
     truncated or undecodable mid-frame, and a worker that stays silent
     past the [deadline] are all detected individually and classified
     (see {!cause}).  Their unfinished point indices are requeued to a
     freshly forked worker, with exponential backoff between attempts.
   - A point whose [f] *raises* is not retried (the computation is
     deterministic, so a retry would raise identically); the exception
     text and backtrace cross the pipe as a frame and surface in
     {!Error}.
   - After [max_retries] respawns, the pool degrades gracefully: the
     still-missing points run sequentially in the parent process, in
     ascending index order.

   Workers are plain [Unix.fork] + a pipe back to the parent (works on
   both OCaml 4.14 and 5.x single-domain programs; no threads/domains
   may be running when [map] forks).  On non-Unix platforms, or with
   [jobs <= 1], the computation simply runs sequentially in-process. *)

let default_jobs () =
  match Sys.getenv_opt "NETSIM_JOBS" with
  | None | Some "" -> 1
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> n
     | _ -> 1)

let cores () =
  (* Best-effort physical parallelism estimate, for benchmark metadata
     only (never affects results). *)
  try
    let ic = open_in "/proc/cpuinfo" in
    let n = ref 0 in
    (try
       while true do
         let line = input_line ic in
         if String.length line >= 9 && String.sub line 0 9 = "processor" then
           incr n
       done
     with End_of_file -> ());
    close_in ic;
    max 1 !n
  with Sys_error _ -> 1

(* ------------------------------------------------------------------ *)
(* Failure taxonomy                                                    *)
(* ------------------------------------------------------------------ *)

type cause =
  | Exited of int
  | Signaled of int
  | Stopped of int
  | Corrupt_stream of string
  | Timed_out of float
  | Spawn_failed of string

type worker_failure = {
  worker : int;
  pid : int;
  attempt : int;
  cause : cause;
  salvaged : int list;
  lost : int list;
}

type point_failure = { point : int; exn_text : string; backtrace : string }

type error = {
  message : string;
  worker_failures : worker_failure list;
  point_failures : point_failure list;
}

exception Error of error

(* Waitpid reports OCaml's own signal numbering (Sys.sigkill = -7 …);
   name the common ones rather than leak the encoding. *)
let signal_name s =
  if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigint then "SIGINT"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigabrt then "SIGABRT"
  else if s = Sys.sigpipe then "SIGPIPE"
  else if s = Sys.sigstop then "SIGSTOP"
  else Printf.sprintf "signal %d (ocaml numbering)" s

let cause_to_string = function
  | Exited c -> Printf.sprintf "exited with code %d" c
  | Signaled s -> Printf.sprintf "killed by %s" (signal_name s)
  | Stopped s -> Printf.sprintf "stopped by %s" (signal_name s)
  | Corrupt_stream msg -> "corrupt result stream (" ^ msg ^ ")"
  | Timed_out d -> Printf.sprintf "produced no output for %.3gs (deadline)" d
  | Spawn_failed msg -> "could not be spawned (" ^ msg ^ ")"

let indices_to_string is =
  "[" ^ String.concat "," (List.map string_of_int is) ^ "]"

let worker_failure_to_string (w : worker_failure) =
  Printf.sprintf
    "worker %d (pid %d, attempt %d) %s; salvaged points %s, lost points %s"
    w.worker w.pid w.attempt (cause_to_string w.cause)
    (indices_to_string w.salvaged)
    (indices_to_string w.lost)

let error_to_string (e : error) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("Sweep_pool: " ^ e.message);
  List.iter
    (fun w -> Buffer.add_string buf ("\n  " ^ worker_failure_to_string w))
    e.worker_failures;
  List.iter
    (fun (p : point_failure) ->
      Buffer.add_string buf
        (Printf.sprintf "\n  point %d raised %s" p.point p.exn_text))
    e.point_failures;
  Buffer.contents buf

let () =
  Printexc.register_printer (function
    | Error e -> Some (error_to_string e)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Chaos hooks (tests / CI only)                                       *)
(* ------------------------------------------------------------------ *)

(* Deterministic failure injection for the supervision machinery itself:
   NETSIM_CHAOS_KILL_AFTER=n      worker SIGKILLs itself after sending n
                                  frames (n=0: before sending anything)
   NETSIM_CHAOS_TRUNCATE_AFTER=n  worker writes a torn frame after n good
                                  ones, then exits 0
   Both apply to first-attempt workers only, so respawned workers succeed
   and the requeue path is exercised — unless NETSIM_CHAOS_ALL_ATTEMPTS=1,
   which makes every forked attempt fail (exercising retry exhaustion and
   the sequential fallback, which runs in the parent and is never subject
   to chaos).  Read per [map] call so tests can toggle via putenv. *)
type chaos = {
  kill_after : int option;
  truncate_after : int option;
  all_attempts : bool;
}

let read_chaos () =
  let geti v = Option.bind (Sys.getenv_opt v) int_of_string_opt in
  {
    kill_after = geti "NETSIM_CHAOS_KILL_AFTER";
    truncate_after = geti "NETSIM_CHAOS_TRUNCATE_AFTER";
    all_attempts =
      (match Sys.getenv_opt "NETSIM_CHAOS_ALL_ATTEMPTS" with
       | Some ("1" | "true") -> true
       | _ -> false);
  }

(* ------------------------------------------------------------------ *)
(* Wire format: 8-byte big-endian length header + Marshal payload      *)
(* ------------------------------------------------------------------ *)

type 'b frame =
  | F_point of int * 'b
  | F_exn of int * string * string  (* index, exception text, backtrace *)
  | F_done

(* A frame bigger than this is necessarily garbage (a summary is a few
   KB); treating it as corruption keeps a bad header from making the
   parent wait forever for data that will never come. *)
let max_frame_bytes = 1 lsl 30

let write_all_bytes fd b off len =
  let rec loop off len =
    if len > 0 then begin
      let n =
        try Unix.write fd b off len
        with Unix.Unix_error (Unix.EINTR, _, _) -> 0
      in
      loop (off + n) (len - n)
    end
  in
  loop off len

let send_frame fd payload =
  let body = Marshal.to_string payload [] in
  let len = String.length body in
  let hdr = Bytes.create 8 in
  Bytes.set_int64_be hdr 0 (Int64.of_int len);
  write_all_bytes fd hdr 0 8;
  write_all_bytes fd (Bytes.unsafe_of_string body) 0 len

(* Incremental frame decoder: bytes accumulate in [buf.(0..len)], and
   complete frames are peeled off the front. *)
type decoder = { mutable buf : Bytes.t; mutable len : int }

let decoder_create () = { buf = Bytes.create 65536; len = 0 }

let decoder_feed d chunk n =
  let need = d.len + n in
  if need > Bytes.length d.buf then begin
    let ncap = max need (2 * Bytes.length d.buf) in
    let nbuf = Bytes.create ncap in
    Bytes.blit d.buf 0 nbuf 0 d.len;
    d.buf <- nbuf
  end;
  Bytes.blit chunk 0 d.buf d.len n;
  d.len <- need

exception Corrupt of string

(* Next complete frame body, [None] if more bytes are needed.
   @raise Corrupt on an impossible length header. *)
let decoder_next d =
  if d.len < 8 then None
  else begin
    let size = Int64.to_int (Bytes.get_int64_be d.buf 0) in
    if size < 0 || size > max_frame_bytes then
      raise (Corrupt (Printf.sprintf "frame header claims %d bytes" size));
    if d.len < 8 + size then None
    else begin
      let body = Bytes.sub_string d.buf 8 size in
      Bytes.blit d.buf (8 + size) d.buf 0 (d.len - 8 - size);
      d.len <- d.len - 8 - size;
      Some body
    end
  end

(* ------------------------------------------------------------------ *)
(* Worker side                                                         *)
(* ------------------------------------------------------------------ *)

let chaos_applies chaos ~attempt = attempt = 0 || chaos.all_attempts

(* Runs in the forked child; never returns. *)
let worker_body ~wr ~f ~tasks ~indices ~attempt ~chaos ~stop =
  let sent = ref 0 in
  let truncate_and_die () =
    (* A torn frame: a header promising 4096 bytes followed by 4. *)
    let hdr = Bytes.create 12 in
    Bytes.set_int64_be hdr 0 4096L;
    write_all_bytes wr hdr 0 12;
    (try Unix.close wr with Unix.Unix_error _ -> ());
    Unix._exit 0
  in
  let chaos_step () =
    if chaos_applies chaos ~attempt then begin
      (match chaos.kill_after with
       | Some n when !sent >= n -> Unix.kill (Unix.getpid ()) Sys.sigkill
       | _ -> ());
      match chaos.truncate_after with
      | Some n when !sent >= n -> truncate_and_die ()
      | _ -> ()
    end
  in
  (try
     chaos_step ();
     List.iter
       (fun i ->
         (* A stop request (e.g. SIGINT shared with the parent) finishes
            the in-flight point and abandons the rest; the parent knows
            not to requeue them. *)
         if not (stop ()) then begin
           let frame =
             match f tasks.(i) with
             | r -> F_point (i, r)
             | exception e ->
               F_exn (i, Printexc.to_string e, Printexc.get_backtrace ())
           in
           (try send_frame wr frame
            with e ->
              (* An unmarshalable result is a per-point failure, not a
                 worker crash. *)
              send_frame wr
                (F_exn
                   ( i,
                     "unmarshalable result: " ^ Printexc.to_string e,
                     "" )));
           incr sent;
           chaos_step ()
         end)
       indices;
     send_frame wr F_done
   with _ -> ());
  (try Unix.close wr with Unix.Unix_error _ -> ());
  (* _exit, not exit: at_exit in a fork child would re-flush the parent's
     channels and run its cleanup a second time. *)
  Unix._exit 0

(* ------------------------------------------------------------------ *)
(* Parent side                                                         *)
(* ------------------------------------------------------------------ *)

type child = {
  slot : int;  (* stable worker index, for reporting *)
  pid : int;
  fd : Unix.file_descr;
  dec : decoder;
  attempt : int;
  mutable assigned : int list;  (* point indices still unaccounted for *)
  mutable salvaged : int list;  (* completed here, newest first *)
  mutable got_done : bool;
  mutable last_heard : float;
  mutable timed_out : float option;
  mutable corrupt : string option;
}

type 'b outcome = {
  results : 'b option array;
  worker_failures : worker_failure list;
  point_failures : point_failure list;
  interrupted : bool;
}

let select_tick = 0.25 (* s; bounds stop-poll and respawn latency *)

let map_collect ?(jobs = 1) ?(max_retries = 2) ?(backoff = 0.05) ?deadline
    ?(on_failure = fun _ -> ()) ?(stop = fun () -> false) f xs =
  let tasks = Array.of_list xs in
  let n = Array.length tasks in
  let results = Array.make n None in
  let point_failures = ref [] in
  let worker_failures = ref [] in
  let interrupted = ref false in
  let poisoned = Hashtbl.create 8 in
  let record_point_failure pf =
    Hashtbl.replace poisoned pf.point ();
    point_failures := pf :: !point_failures
  in
  let run_seq indices =
    List.iter
      (fun i ->
        if stop () then interrupted := true
        else
          match results.(i) with
          | Some _ -> ()
          | None ->
            if not (Hashtbl.mem poisoned i) then (
              match f tasks.(i) with
              | r -> results.(i) <- Some r
              | exception e ->
                record_point_failure
                  {
                    point = i;
                    exn_text = Printexc.to_string e;
                    backtrace = Printexc.get_backtrace ();
                  }))
      indices
  in
  let jobs = min jobs n in
  if jobs <= 1 || Sys.os_type <> "Unix" then begin
    run_seq (List.init n Fun.id);
    {
      results;
      worker_failures = [];
      point_failures = List.rev !point_failures;
      interrupted = !interrupted;
    }
  end
  else begin
    (* Anything buffered before a fork would be flushed once per process;
       push it out first. *)
    flush stdout;
    flush stderr;
    let chaos = read_chaos () in
    let children = ref [] in
    let respawns = ref [] in  (* (due_time, slot, attempt, indices) *)
    let spawn ~slot ~attempt indices =
      let spawn_failed msg =
        let fail =
          {
            worker = slot;
            pid = -1;
            attempt;
            cause = Spawn_failed msg;
            salvaged = [];
            lost = indices;
          }
        in
        worker_failures := fail :: !worker_failures;
        on_failure fail
        (* No process to supervise; the points stay unaccounted for and
           the post-loop scan runs them in-process. *)
      in
      match Unix.pipe () with
      | exception Unix.Unix_error (e, _, _) ->
        spawn_failed (Unix.error_message e)
      | rd, wr -> (
        match Unix.fork () with
        | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close rd with Unix.Unix_error _ -> ());
          (try Unix.close wr with Unix.Unix_error _ -> ());
          spawn_failed (Unix.error_message e)
        | 0 ->
          (try Unix.close rd with Unix.Unix_error _ -> ());
          (* Close inherited read ends of sibling pipes: fd hygiene only
             (pipe EOF depends on write ends, which the parent closed). *)
          List.iter
            (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
            !children;
          worker_body ~wr ~f ~tasks ~indices ~attempt ~chaos ~stop
        | pid ->
          (try Unix.close wr with Unix.Unix_error _ -> ());
          children :=
            {
              slot;
              pid;
              fd = rd;
              dec = decoder_create ();
              attempt;
              assigned = indices;
              salvaged = [];
              got_done = false;
              last_heard = Unix.gettimeofday ();
              timed_out = None;
              corrupt = None;
            }
            :: !children)
    in
    let handle_frame child body =
      match (Marshal.from_string body 0 : _ frame) with
      | F_point (i, r) ->
        results.(i) <- Some r;
        child.assigned <- List.filter (fun j -> j <> i) child.assigned;
        child.salvaged <- i :: child.salvaged
      | F_exn (i, exn_text, backtrace) ->
        record_point_failure { point = i; exn_text; backtrace };
        child.assigned <- List.filter (fun j -> j <> i) child.assigned
      | F_done -> child.got_done <- true
      | exception e -> raise (Corrupt (Printexc.to_string e))
    in
    let finalize child =
      (try Unix.close child.fd with Unix.Unix_error _ -> ());
      let _, status = Unix.waitpid [] child.pid in
      children := List.filter (fun c -> c != child) !children;
      let leftover = child.dec.len in
      let stopping = stop () in
      let clean =
        child.corrupt = None && child.timed_out = None && child.got_done
        && leftover = 0
        && (child.assigned = [] || stopping)
        && status = Unix.WEXITED 0
      in
      if not clean then begin
        let cause =
          match (child.corrupt, child.timed_out) with
          | Some msg, _ -> Corrupt_stream msg
          | None, Some d -> Timed_out d
          | None, None -> (
            match status with
            | Unix.WEXITED 0 ->
              if leftover > 0 then
                Corrupt_stream
                  (Printf.sprintf "EOF mid-frame, %d undecoded byte(s)"
                     leftover)
              else Corrupt_stream "stream ended before the done marker"
            | Unix.WEXITED c -> Exited c
            | Unix.WSIGNALED s -> Signaled s
            | Unix.WSTOPPED s -> Stopped s)
        in
        let lost = List.sort compare child.assigned in
        let fail =
          {
            worker = child.slot;
            pid = child.pid;
            attempt = child.attempt;
            cause;
            salvaged = List.rev child.salvaged;
            lost;
          }
        in
        worker_failures := fail :: !worker_failures;
        on_failure fail;
        if (not stopping) && lost <> [] then begin
          let attempt = child.attempt + 1 in
          (* Past the retry budget the points stay unaccounted for; the
             post-loop scan degrades to in-process execution. *)
          if attempt <= max_retries then begin
            let delay = backoff *. (2. ** float_of_int child.attempt) in
            respawns :=
              (Unix.gettimeofday () +. delay, child.slot, attempt, lost)
              :: !respawns
          end
        end
      end
    in
    let chunk = Bytes.create 65536 in
    let service child =
      match Unix.read child.fd chunk 0 (Bytes.length chunk) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | 0 -> finalize child
      | nread ->
        child.last_heard <- Unix.gettimeofday ();
        if child.corrupt = None then begin
          decoder_feed child.dec chunk nread;
          try
            let continue = ref true in
            while !continue do
              match decoder_next child.dec with
              | Some body -> handle_frame child body
              | None -> continue := false
            done
          with Corrupt msg ->
            (* Stop trusting this stream; kill the worker and let the
               EOF path classify + requeue. *)
            child.corrupt <- Some msg;
            (try Unix.kill child.pid Sys.sigkill
             with Unix.Unix_error _ -> ())
        end
    in
    (* Initial strided assignment, like the unsupervised pool: worker [w]
       owns w, w+jobs, w+2*jobs, ...  Striding (rather than chunking)
       balances grids whose points get systematically slower along one
       axis. *)
    for w = 0 to jobs - 1 do
      let indices = ref [] in
      let i = ref w in
      while !i < n do
        indices := !i :: !indices;
        i := !i + jobs
      done;
      spawn ~slot:w ~attempt:0 (List.rev !indices)
    done;
    (* Supervision loop: drain pipes, reap the dead, respawn the due.
       On a stop request we stop respawning but keep draining — workers
       sharing the stop signal finish their in-flight point and exit, and
       those final frames are worth collecting. *)
    while !children <> [] || ((not (stop ())) && !respawns <> []) do
      let now = Unix.gettimeofday () in
      let due, later = List.partition (fun (t, _, _, _) -> t <= now) !respawns in
      respawns := later;
      if not (stop ()) then
        List.iter (fun (_, slot, attempt, idxs) -> spawn ~slot ~attempt idxs) due
      ;
      if !children = [] then
        (if !respawns <> [] then
           let next = List.fold_left (fun acc (t, _, _, _) -> Float.min acc t)
               infinity !respawns in
           let pause = Float.min select_tick (Float.max 0. (next -. now)) in
           if pause > 0. then ignore (Unix.select [] [] [] pause))
      else begin
        let fds = List.map (fun c -> c.fd) !children in
        (match Unix.select fds [] [] select_tick with
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
         | ready, _, _ ->
           List.iter
             (fun fd ->
               match List.find_opt (fun c -> c.fd = fd) !children with
               | Some child -> service child
               | None -> ())
             ready);
        (* Per-worker inactivity deadline. *)
        match deadline with
        | None -> ()
        | Some d ->
          let now = Unix.gettimeofday () in
          List.iter
            (fun c ->
              if now -. c.last_heard > d && c.timed_out = None then begin
                c.timed_out <- Some d;
                try Unix.kill c.pid Sys.sigkill with Unix.Unix_error _ -> ()
              end)
            !children
      end
    done;
    if stop () then interrupted := true
    else begin
      (* Graceful degradation: any point that never made it back — retry
         budget exhausted, spawn failure — runs in-process, in order. *)
      let missing = ref [] in
      for i = n - 1 downto 0 do
        match results.(i) with
        | Some _ -> ()
        | None -> if not (Hashtbl.mem poisoned i) then missing := i :: !missing
      done;
      run_seq !missing
    end;
    {
      results;
      worker_failures = List.rev !worker_failures;
      point_failures =
        List.sort (fun a b -> compare a.point b.point) !point_failures;
      interrupted = !interrupted;
    }
  end

let map ?jobs ?max_retries ?backoff ?deadline ?on_failure f xs =
  let o = map_collect ?jobs ?max_retries ?backoff ?deadline ?on_failure f xs in
  let missing = ref [] in
  for i = Array.length o.results - 1 downto 0 do
    match o.results.(i) with
    | Some _ -> ()
    | None -> missing := i :: !missing
  done;
  if o.point_failures <> [] || !missing <> [] then
    raise
      (Error
         {
           message =
             (match o.point_failures with
              | [] ->
                Printf.sprintf "no result for point(s) %s"
                  (indices_to_string !missing)
              | pfs ->
                Printf.sprintf "%d point(s) raised" (List.length pfs));
           worker_failures = o.worker_failures;
           point_failures = o.point_failures;
         });
  Array.to_list
    (Array.map (function Some r -> r | None -> assert false) o.results)
