(* Deterministic fork/pipe/Marshal worker pool.

   [map ~jobs f xs] computes [List.map f xs], fanning the work out to
   [jobs] forked worker processes.  Results are bit-identical regardless
   of the job count because the *assignment* of work to workers never
   affects a result: task [i] is always [f xs.(i)] computed in a process
   whose heap is a fork-time copy of the parent, every per-task RNG in
   this codebase is seeded from the task itself (the scenario), and the
   parent reassembles results by task index, not arrival order.

   Workers are plain [Unix.fork] + a pipe back to the parent (works on
   both OCaml 4.14 and 5.x single-domain programs; no threads/domains may
   be running when [map] forks).  On non-Unix platforms, or with
   [jobs <= 1], the computation simply runs sequentially in-process. *)

let default_jobs () =
  match Sys.getenv_opt "NETSIM_JOBS" with
  | None | Some "" -> 1
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> n
     | _ -> 1)

let cores () =
  (* Best-effort physical parallelism estimate, for benchmark metadata
     only (never affects results). *)
  try
    let ic = open_in "/proc/cpuinfo" in
    let n = ref 0 in
    (try
       while true do
         let line = input_line ic in
         if String.length line >= 9 && String.sub line 0 9 = "processor" then
           incr n
       done
     with End_of_file -> ());
    close_in ic;
    max 1 !n
  with Sys_error _ -> 1

(* What a worker ships back: its strided slice of results, or the reason
   it failed.  ['b] must be marshalable (plain data, no closures). *)
type 'b transfer = Results of (int * 'b) list | Worker_error of string

let write_all fd s =
  let len = String.length s in
  let rec loop off =
    if off < len then
      let n = Unix.write_substring fd s off (len - off) in
      loop (off + n)
  in
  loop 0

let read_all fd =
  let buf = Buffer.create 65536 in
  let chunk = Bytes.create 65536 in
  let rec loop () =
    let n = Unix.read fd chunk 0 (Bytes.length chunk) in
    if n > 0 then begin
      Buffer.add_subbytes buf chunk 0 n;
      loop ()
    end
  in
  loop ();
  Buffer.contents buf

let map ?(jobs = 1) f xs =
  let tasks = Array.of_list xs in
  let n = Array.length tasks in
  let jobs = min jobs n in
  if jobs <= 1 || Sys.os_type <> "Unix" then List.map f xs
  else begin
    (* Anything buffered before the fork would be flushed once per
       process; push it out first. *)
    flush stdout;
    flush stderr;
    let spawn w =
      let rd, wr = Unix.pipe () in
      match Unix.fork () with
      | 0 ->
        Unix.close rd;
        (* Worker [w] owns the strided slice w, w+jobs, w+2*jobs, ...
           Striding (rather than chunking) balances grids whose points
           get systematically slower along one axis. *)
        let payload =
          try
            let acc = ref [] in
            let i = ref w in
            while !i < n do
              acc := (!i, f tasks.(!i)) :: !acc;
              i := !i + jobs
            done;
            Results !acc
          with e -> Worker_error (Printexc.to_string e)
        in
        let encoded =
          try Marshal.to_string payload []
          with e ->
            Marshal.to_string
              (Worker_error ("unmarshalable result: " ^ Printexc.to_string e))
              []
        in
        write_all wr encoded;
        Unix.close wr;
        (* _exit, not exit: at_exit in a fork child would re-flush the
           parent's channels and run its cleanup a second time. *)
        Unix._exit 0
      | pid ->
        Unix.close wr;
        (pid, rd)
    in
    let children = List.init jobs spawn in
    let results = Array.make n None in
    let errors = ref [] in
    List.iter
      (fun (pid, rd) ->
        let raw = read_all rd in
        Unix.close rd;
        let _, status = Unix.waitpid [] pid in
        (match status with
         | Unix.WEXITED 0 -> ()
         | Unix.WEXITED c ->
           errors := Printf.sprintf "worker exited with code %d" c :: !errors
         | Unix.WSIGNALED s ->
           errors := Printf.sprintf "worker killed by signal %d" s :: !errors
         | Unix.WSTOPPED _ -> errors := "worker stopped" :: !errors);
        if raw = "" then errors := "worker produced no output" :: !errors
        else
          match (Marshal.from_string raw 0 : _ transfer) with
          | Results rs -> List.iter (fun (i, r) -> results.(i) <- Some r) rs
          | Worker_error msg -> errors := msg :: !errors)
      children;
    (match List.rev !errors with
     | [] -> ()
     | msg :: _ -> failwith ("Sweep_pool.map: worker failed: " ^ msg));
    Array.to_list
      (Array.map
         (function
           | Some r -> r
           | None -> failwith "Sweep_pool.map: worker returned no result")
         results)
  end
