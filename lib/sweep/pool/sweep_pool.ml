(* Deterministic parallel task pool with three runtime-selected
   backends (see DESIGN.md §6j):

     Seq     plain in-process [List.map]
     Fork    supervised fork/pipe/Marshal worker processes (this file)
     Domain  shared-memory OCaml 5 domains ({!Domain_backend}; on 4.14
             the stub reports [available = false] and requests fall
             back to Fork)

   [map ~jobs f xs] computes [List.map f xs] under every backend.
   Results are bit-identical regardless of the backend, the job count —
   and, for Fork, regardless of which workers crash — because the
   *assignment* of work to workers never affects a result: task [i] is
   always [f xs.(i)] (computed in a fork-time copy of the parent heap,
   in a domain sharing it, or in the parent itself), every per-task RNG
   in this codebase is seeded from the task itself (the scenario), and
   results are reassembled by task index, not arrival order.

   Supervision model (see DESIGN.md, "Failure model & supervision"):

   - Each worker streams one length-prefixed Marshal frame back per
     completed point, then a final done marker.  The parent multiplexes
     every worker pipe through [Unix.select], decoding frames
     incrementally, so a completed point is banked the moment its frame
     lands — a worker that dies later loses only its *unfinished*
     points.
   - A crashed worker (non-zero exit, signal), a worker whose stream is
     truncated or undecodable mid-frame, and a worker that stays silent
     past the [deadline] are all detected individually and classified
     (see {!cause}).  Their unfinished point indices are requeued to a
     freshly forked worker, with exponential backoff between attempts.
   - A point whose [f] *raises* is not retried (the computation is
     deterministic, so a retry would raise identically); the exception
     text and backtrace cross the pipe as a frame and surface in
     {!Error}.
   - After [max_retries] respawns, the pool degrades gracefully: the
     still-missing points run sequentially in the parent process, in
     ascending index order.

   Workers are plain [Unix.fork] + a pipe back to the parent (works on
   both OCaml 4.14 and 5.x single-domain programs; no threads/domains
   may be running when [map] forks).  On non-Unix platforms, or with
   [jobs <= 1], the computation simply runs sequentially in-process. *)

let default_jobs () =
  match Sys.getenv_opt "NETSIM_JOBS" with
  | None | Some "" -> 1
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> n
     | _ -> 1)

let cores () =
  (* Best-effort physical parallelism estimate, for benchmark metadata
     only (never affects results). *)
  try
    let ic = open_in "/proc/cpuinfo" in
    let n = ref 0 in
    (try
       while true do
         let line = input_line ic in
         if String.length line >= 9 && String.sub line 0 9 = "processor" then
           incr n
       done
     with End_of_file -> ());
    close_in ic;
    max 1 !n
  with Sys_error _ -> 1

let available_cores () =
  (* Cores this process may actually run on: the popcount of the CPU
     affinity mask (cgroup cpusets, taskset, CI runners), which is what
     bounds real parallelism — [cores ()] reports the hardware.  The
     mask is the "Cpus_allowed:" line of /proc/self/status: comma-
     separated hex words, e.g. "ff" or "ffffffff,00000003".  Falls back
     to [cores ()] when unreadable (non-Linux). *)
  let popcount_hex_digit c =
    match c with
    | '0' -> 0 | '1' | '2' | '4' | '8' -> 1
    | '3' | '5' | '6' | '9' | 'a' | 'A' | 'c' | 'C' -> 2
    | '7' | 'b' | 'B' | 'd' | 'D' | 'e' | 'E' -> 3
    | 'f' | 'F' -> 4
    | _ -> 0
  in
  try
    let ic = open_in "/proc/self/status" in
    let found = ref None in
    (try
       while true do
         let line = input_line ic in
         let prefix = "Cpus_allowed:" in
         let plen = String.length prefix in
         if String.length line > plen && String.sub line 0 plen = prefix then begin
           let bits = ref 0 in
           String.iter
             (fun c -> bits := !bits + popcount_hex_digit c)
             (String.sub line plen (String.length line - plen));
           found := Some !bits
         end
       done
     with End_of_file -> ());
    close_in ic;
    match !found with Some n when n >= 1 -> n | _ -> cores ()
  with Sys_error _ -> cores ()

(* ------------------------------------------------------------------ *)
(* Backend selection                                                   *)
(* ------------------------------------------------------------------ *)

type backend = Seq | Fork | Domain

let backend_to_string = function
  | Seq -> "seq"
  | Fork -> "fork"
  | Domain -> "domain"

let backend_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "seq" | "sequential" -> Ok Seq
  | "fork" -> Ok Fork
  | "domain" | "domains" -> Ok Domain
  | other ->
    Error
      (Printf.sprintf "unknown sweep backend %S (expected seq, fork or domain)"
         other)

let domain_backend_available = Domain_backend.available

let default_backend () =
  match Sys.getenv_opt "NETSIM_SWEEP_BACKEND" with
  | None | Some "" -> if Domain_backend.available then Domain else Fork
  | Some s -> (
    match backend_of_string s with
    | Ok b -> b
    | Error _ -> if Domain_backend.available then Domain else Fork)

(* ------------------------------------------------------------------ *)
(* Failure taxonomy                                                    *)
(* ------------------------------------------------------------------ *)

type cause =
  | Exited of int
  | Signaled of int
  | Stopped of int
  | Corrupt_stream of string
  | Timed_out of float
  | Spawn_failed of string

type worker_failure = {
  worker : int;
  pid : int;
  attempt : int;
  cause : cause;
  salvaged : int list;
  lost : int list;
}

type point_failure = { point : int; exn_text : string; backtrace : string }

type error = {
  message : string;
  worker_failures : worker_failure list;
  point_failures : point_failure list;
}

exception Error of error

(* Waitpid reports OCaml's own signal numbering (Sys.sigkill = -7 …);
   name the common ones rather than leak the encoding. *)
let signal_name s =
  if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigint then "SIGINT"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigabrt then "SIGABRT"
  else if s = Sys.sigpipe then "SIGPIPE"
  else if s = Sys.sigstop then "SIGSTOP"
  else Printf.sprintf "signal %d (ocaml numbering)" s

let cause_to_string = function
  | Exited c -> Printf.sprintf "exited with code %d" c
  | Signaled s -> Printf.sprintf "killed by %s" (signal_name s)
  | Stopped s -> Printf.sprintf "stopped by %s" (signal_name s)
  | Corrupt_stream msg -> "corrupt result stream (" ^ msg ^ ")"
  | Timed_out d -> Printf.sprintf "produced no output for %.3gs (deadline)" d
  | Spawn_failed msg -> "could not be spawned (" ^ msg ^ ")"

let indices_to_string is =
  "[" ^ String.concat "," (List.map string_of_int is) ^ "]"

let worker_failure_to_string (w : worker_failure) =
  Printf.sprintf
    "worker %d (pid %d, attempt %d) %s; salvaged points %s, lost points %s"
    w.worker w.pid w.attempt (cause_to_string w.cause)
    (indices_to_string w.salvaged)
    (indices_to_string w.lost)

let error_to_string (e : error) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("Sweep_pool: " ^ e.message);
  List.iter
    (fun w -> Buffer.add_string buf ("\n  " ^ worker_failure_to_string w))
    e.worker_failures;
  List.iter
    (fun (p : point_failure) ->
      Buffer.add_string buf
        (Printf.sprintf "\n  point %d raised %s" p.point p.exn_text))
    e.point_failures;
  Buffer.contents buf

let () =
  Printexc.register_printer (function
    | Error e -> Some (error_to_string e)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Chaos hooks (tests / CI only)                                       *)
(* ------------------------------------------------------------------ *)

(* Deterministic failure injection for the supervision machinery itself:
   NETSIM_CHAOS_KILL_AFTER=n      worker SIGKILLs itself after sending n
                                  frames (n=0: before sending anything)
   NETSIM_CHAOS_TRUNCATE_AFTER=n  worker writes a torn frame after n good
                                  ones, then exits 0
   Both apply to first-attempt workers only, so respawned workers succeed
   and the requeue path is exercised — unless NETSIM_CHAOS_ALL_ATTEMPTS=1,
   which makes every forked attempt fail (exercising retry exhaustion and
   the sequential fallback, which runs in the parent and is never subject
   to chaos).  Read per [map] call so tests can toggle via putenv. *)
type chaos = {
  kill_after : int option;
  truncate_after : int option;
  all_attempts : bool;
}

let read_chaos () =
  let geti v = Option.bind (Sys.getenv_opt v) int_of_string_opt in
  {
    kill_after = geti "NETSIM_CHAOS_KILL_AFTER";
    truncate_after = geti "NETSIM_CHAOS_TRUNCATE_AFTER";
    all_attempts =
      (match Sys.getenv_opt "NETSIM_CHAOS_ALL_ATTEMPTS" with
       | Some ("1" | "true") -> true
       | _ -> false);
  }

(* ------------------------------------------------------------------ *)
(* Wire format: 8-byte big-endian length header + Marshal payload      *)
(* ------------------------------------------------------------------ *)

type 'b frame =
  | F_point of int * 'b
  | F_batch of (int * 'b) array
      (* several completed points in one Marshal payload: cheap tasks
         are batched so the per-frame Marshal + write + select-wakeup
         cost is amortized (see [batch_max] / [batch_linger]) *)
  | F_exn of int * string * string  (* index, exception text, backtrace *)
  | F_done

(* Batching policy: a completed point is held back until the batch
   reaches [batch_max] points or [batch_linger] seconds have passed
   since the last flush.  Simulation points (≥ milliseconds each) flush
   themselves immediately, keeping the streamed-salvage granularity of
   the supervision model; only micro-tasks coalesce.  Chaos mode forces
   a flush after every point so the NETSIM_CHAOS_* frame counts keep
   their per-point meaning. *)
let batch_max = 256
let batch_linger = 0.002

(* A frame bigger than this is necessarily garbage (a summary is a few
   KB); treating it as corruption keeps a bad header from making the
   parent wait forever for data that will never come. *)
let max_frame_bytes = 1 lsl 30

let write_all_bytes fd b off len =
  let rec loop off len =
    if len > 0 then begin
      let n =
        try Unix.write fd b off len
        with Unix.Unix_error (Unix.EINTR, _, _) -> 0
      in
      loop (off + n) (len - n)
    end
  in
  loop off len

let send_frame fd payload =
  let body = Marshal.to_string payload [] in
  let len = String.length body in
  let hdr = Bytes.create 8 in
  Bytes.set_int64_be hdr 0 (Int64.of_int len);
  write_all_bytes fd hdr 0 8;
  write_all_bytes fd (Bytes.unsafe_of_string body) 0 len

(* Incremental frame decoder: bytes accumulate in [buf.(0..len)], and
   complete frames are peeled off the front. *)
type decoder = { mutable buf : Bytes.t; mutable len : int }

let decoder_create () = { buf = Bytes.create 65536; len = 0 }

let decoder_feed d chunk n =
  let need = d.len + n in
  if need > Bytes.length d.buf then begin
    let ncap = max need (2 * Bytes.length d.buf) in
    let nbuf = Bytes.create ncap in
    Bytes.blit d.buf 0 nbuf 0 d.len;
    d.buf <- nbuf
  end;
  Bytes.blit chunk 0 d.buf d.len n;
  d.len <- need

exception Corrupt of string

(* Next complete frame body, [None] if more bytes are needed.
   @raise Corrupt on an impossible length header. *)
let decoder_next d =
  if d.len < 8 then None
  else begin
    let size = Int64.to_int (Bytes.get_int64_be d.buf 0) in
    if size < 0 || size > max_frame_bytes then
      raise (Corrupt (Printf.sprintf "frame header claims %d bytes" size));
    if d.len < 8 + size then None
    else begin
      let body = Bytes.sub_string d.buf 8 size in
      Bytes.blit d.buf (8 + size) d.buf 0 (d.len - 8 - size);
      d.len <- d.len - 8 - size;
      Some body
    end
  end

(* ------------------------------------------------------------------ *)
(* Worker side                                                         *)
(* ------------------------------------------------------------------ *)

let chaos_applies chaos ~attempt = attempt = 0 || chaos.all_attempts

(* Runs in the forked child; never returns. *)
let worker_body ~wr ~f ~tasks ~indices ~attempt ~chaos ~stop =
  let sent = ref 0 in
  let truncate_and_die () =
    (* A torn frame: a header promising 4096 bytes followed by 4. *)
    let hdr = Bytes.create 12 in
    Bytes.set_int64_be hdr 0 4096L;
    write_all_bytes wr hdr 0 12;
    (try Unix.close wr with Unix.Unix_error _ -> ());
    Unix._exit 0
  in
  let chaos_on =
    chaos_applies chaos ~attempt
    && (chaos.kill_after <> None || chaos.truncate_after <> None)
  in
  let chaos_step () =
    if chaos_applies chaos ~attempt then begin
      (match chaos.kill_after with
       | Some n when !sent >= n -> Unix.kill (Unix.getpid ()) Sys.sigkill
       | _ -> ());
      match chaos.truncate_after with
      | Some n when !sent >= n -> truncate_and_die ()
      | _ -> ()
    end
  in
  (* A result that cannot cross the pipe is a per-point failure, not a
     worker crash. *)
  let send_point i r =
    try send_frame wr (F_point (i, r))
    with e ->
      send_frame wr
        (F_exn (i, "unmarshalable result: " ^ Printexc.to_string e, ""))
  in
  let batch = ref [] in  (* completed (index, result), newest first *)
  let batch_len = ref 0 in
  let last_flush = ref (Unix.gettimeofday ()) in
  let flush_batch () =
    (match !batch with
     | [] -> ()
     | [ (i, r) ] -> send_point i r
     | items -> (
       let arr = Array.of_list (List.rev items) in
       try send_frame wr (F_batch arr)
       with _ ->
         (* Some result in the batch is unmarshalable; send per point so
            only the poisoned one degrades to an exception frame. *)
         Array.iter (fun (i, r) -> send_point i r) arr));
    batch := [];
    batch_len := 0;
    last_flush := Unix.gettimeofday ()
  in
  (try
     chaos_step ();
     List.iter
       (fun i ->
         (* A stop request (e.g. SIGINT shared with the parent) finishes
            the in-flight point and abandons the rest; the parent knows
            not to requeue them. *)
         if not (stop ()) then begin
           (match f tasks.(i) with
            | r ->
              batch := (i, r) :: !batch;
              incr batch_len;
              if
                chaos_on
                || !batch_len >= batch_max
                || Unix.gettimeofday () -. !last_flush >= batch_linger
              then flush_batch ()
            | exception e ->
              flush_batch ();
              send_frame wr
                (F_exn (i, Printexc.to_string e, Printexc.get_backtrace ())));
           incr sent;
           chaos_step ()
         end)
       indices;
     flush_batch ();
     send_frame wr F_done
   with _ -> ());
  (try Unix.close wr with Unix.Unix_error _ -> ());
  (* _exit, not exit: at_exit in a fork child would re-flush the parent's
     channels and run its cleanup a second time. *)
  Unix._exit 0

(* ------------------------------------------------------------------ *)
(* Parent side                                                         *)
(* ------------------------------------------------------------------ *)

type child = {
  slot : int;  (* stable worker index, for reporting *)
  pid : int;
  fd : Unix.file_descr;
  dec : decoder;
  attempt : int;
  mutable assigned : int list;  (* point indices still unaccounted for *)
  mutable salvaged : int list;  (* completed here, newest first *)
  mutable got_done : bool;
  mutable last_heard : float;
  mutable timed_out : float option;
  mutable corrupt : string option;
}

type 'b outcome = {
  results : 'b option array;
  worker_failures : worker_failure list;
  point_failures : point_failure list;
  interrupted : bool;
}

type progress = {
  prog_done : int;
  prog_total : int;
  prog_running : int;
  prog_failures : int;
}

let select_tick = 0.25 (* s; bounds stop-poll and respawn latency *)

let map_collect ?backend ?(jobs = 1) ?(max_retries = 2) ?(backoff = 0.05)
    ?deadline ?(on_failure = fun _ -> ())
    ?(on_progress = fun (_ : progress) -> ()) ?(stop = fun () -> false) f xs =
  let tasks = Array.of_list xs in
  let n = Array.length tasks in
  let results = Array.make n None in
  let point_failures = ref [] in
  let worker_failures = ref [] in
  let interrupted = ref false in
  let poisoned = Hashtbl.create 8 in
  (* Completed-point count for progress reporting; single-writer in the
     Seq and Fork paths (the parent banks every frame), atomic under
     Domain where worker domains report completions directly. *)
  let done_count = Atomic.make 0 in
  let notify ~running () =
    let d = Atomic.get done_count in
    on_progress
      {
        prog_done = d;
        prog_total = n;
        prog_running = running;
        prog_failures = List.length !worker_failures;
      }
  in
  let record_point_failure pf =
    Hashtbl.replace poisoned pf.point ();
    point_failures := pf :: !point_failures
  in
  let run_seq indices =
    List.iter
      (fun i ->
        if stop () then interrupted := true
        else
          match results.(i) with
          | Some _ -> ()
          | None ->
            if not (Hashtbl.mem poisoned i) then begin
              (match f tasks.(i) with
               | r -> results.(i) <- Some r
               | exception e ->
                 record_point_failure
                   {
                     point = i;
                     exn_text = Printexc.to_string e;
                     backtrace = Printexc.get_backtrace ();
                   });
              Atomic.incr done_count;
              notify ~running:0 ()
            end)
      indices
  in
  let jobs = min jobs n in
  (* Resolve the effective backend: [jobs <= 1] is always sequential; a
     Domain request on a domainless build (4.14) degrades to Fork, and
     Fork on a non-Unix host degrades to Seq — never to different
     results, only to a different executor. *)
  let backend =
    match backend with Some b -> b | None -> default_backend ()
  in
  let backend = if jobs <= 1 then Seq else backend in
  let backend =
    match backend with
    | Domain when not Domain_backend.available -> Fork
    | b -> b
  in
  let backend =
    match backend with
    | Fork when Sys.os_type <> "Unix" ->
      if Domain_backend.available then Domain else Seq
    | b -> b
  in
  match backend with
  | Seq ->
    run_seq (List.init n Fun.id);
    {
      results;
      worker_failures = [];
      point_failures = List.rev !point_failures;
      interrupted = !interrupted;
    }
  | Domain ->
    (* Shared-memory domains: no worker processes, so no worker
       failures, no retries, no deadlines — a task exception is a point
       failure exactly as in the sequential path, and a crash takes the
       whole process down (there is no isolation to salvage). *)
    let failures, stopped =
      Domain_backend.run ~jobs ~stop
        ~on_result:(fun _i ->
          (* Fires from worker domains; [done_count] is atomic and the
             user's [on_progress] must be domain-safe (documented). *)
          Atomic.incr done_count;
          notify ~running:(min jobs (n - Atomic.get done_count)) ())
        f tasks results
    in
    List.iter
      (fun (tf : Domain_backend.task_failure) ->
        record_point_failure
          {
            point = tf.index;
            exn_text = tf.exn_text;
            backtrace = tf.backtrace;
          })
      failures;
    if stopped then interrupted := true;
    {
      results;
      worker_failures = [];
      point_failures = List.rev !point_failures;
      interrupted = !interrupted;
    }
  | Fork -> begin
    (* Anything buffered before a fork would be flushed once per process;
       push it out first. *)
    flush stdout;
    flush stderr;
    let chaos = read_chaos () in
    let children = ref [] in
    let respawns = ref [] in  (* (due_time, slot, attempt, indices) *)
    let spawn ~slot ~attempt indices =
      let spawn_failed msg =
        let fail =
          {
            worker = slot;
            pid = -1;
            attempt;
            cause = Spawn_failed msg;
            salvaged = [];
            lost = indices;
          }
        in
        worker_failures := fail :: !worker_failures;
        on_failure fail
        (* No process to supervise; the points stay unaccounted for and
           the post-loop scan runs them in-process. *)
      in
      match Unix.pipe () with
      | exception Unix.Unix_error (e, _, _) ->
        spawn_failed (Unix.error_message e)
      | rd, wr -> (
        match Unix.fork () with
        | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close rd with Unix.Unix_error _ -> ());
          (try Unix.close wr with Unix.Unix_error _ -> ());
          spawn_failed (Unix.error_message e)
        | 0 ->
          (try Unix.close rd with Unix.Unix_error _ -> ());
          (* Close inherited read ends of sibling pipes: fd hygiene only
             (pipe EOF depends on write ends, which the parent closed). *)
          List.iter
            (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
            !children;
          worker_body ~wr ~f ~tasks ~indices ~attempt ~chaos ~stop
        | pid ->
          (try Unix.close wr with Unix.Unix_error _ -> ());
          children :=
            {
              slot;
              pid;
              fd = rd;
              dec = decoder_create ();
              attempt;
              assigned = indices;
              salvaged = [];
              got_done = false;
              last_heard = Unix.gettimeofday ();
              timed_out = None;
              corrupt = None;
            }
            :: !children)
    in
    let handle_frame child body =
      match (Marshal.from_string body 0 : _ frame) with
      | F_point (i, r) ->
        results.(i) <- Some r;
        child.assigned <- List.filter (fun j -> j <> i) child.assigned;
        child.salvaged <- i :: child.salvaged;
        Atomic.incr done_count;
        notify ~running:(List.length !children) ()
      | F_batch items ->
        Array.iter
          (fun (i, r) ->
            results.(i) <- Some r;
            child.salvaged <- i :: child.salvaged)
          items;
        child.assigned <-
          List.filter
            (fun j -> not (Array.exists (fun (i, _) -> i = j) items))
            child.assigned;
        for _ = 1 to Array.length items do Atomic.incr done_count done;
        notify ~running:(List.length !children) ()
      | F_exn (i, exn_text, backtrace) ->
        record_point_failure { point = i; exn_text; backtrace };
        child.assigned <- List.filter (fun j -> j <> i) child.assigned;
        Atomic.incr done_count;
        notify ~running:(List.length !children) ()
      | F_done -> child.got_done <- true
      | exception e -> raise (Corrupt (Printexc.to_string e))
    in
    let finalize child =
      (try Unix.close child.fd with Unix.Unix_error _ -> ());
      let _, status = Unix.waitpid [] child.pid in
      children := List.filter (fun c -> c != child) !children;
      let leftover = child.dec.len in
      let stopping = stop () in
      let clean =
        child.corrupt = None && child.timed_out = None && child.got_done
        && leftover = 0
        && (child.assigned = [] || stopping)
        && status = Unix.WEXITED 0
      in
      if not clean then begin
        let cause =
          match (child.corrupt, child.timed_out) with
          | Some msg, _ -> Corrupt_stream msg
          | None, Some d -> Timed_out d
          | None, None -> (
            match status with
            | Unix.WEXITED 0 ->
              if leftover > 0 then
                Corrupt_stream
                  (Printf.sprintf "EOF mid-frame, %d undecoded byte(s)"
                     leftover)
              else Corrupt_stream "stream ended before the done marker"
            | Unix.WEXITED c -> Exited c
            | Unix.WSIGNALED s -> Signaled s
            | Unix.WSTOPPED s -> Stopped s)
        in
        let lost = List.sort compare child.assigned in
        let fail =
          {
            worker = child.slot;
            pid = child.pid;
            attempt = child.attempt;
            cause;
            salvaged = List.rev child.salvaged;
            lost;
          }
        in
        worker_failures := fail :: !worker_failures;
        on_failure fail;
        if (not stopping) && lost <> [] then begin
          let attempt = child.attempt + 1 in
          (* Past the retry budget the points stay unaccounted for; the
             post-loop scan degrades to in-process execution. *)
          if attempt <= max_retries then begin
            let delay = backoff *. (2. ** float_of_int child.attempt) in
            respawns :=
              (Unix.gettimeofday () +. delay, child.slot, attempt, lost)
              :: !respawns
          end
        end
      end
    in
    let chunk = Bytes.create 65536 in
    let service child =
      match Unix.read child.fd chunk 0 (Bytes.length chunk) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | 0 -> finalize child
      | nread ->
        child.last_heard <- Unix.gettimeofday ();
        if child.corrupt = None then begin
          decoder_feed child.dec chunk nread;
          try
            let continue = ref true in
            while !continue do
              match decoder_next child.dec with
              | Some body -> handle_frame child body
              | None -> continue := false
            done
          with Corrupt msg ->
            (* Stop trusting this stream; kill the worker and let the
               EOF path classify + requeue. *)
            child.corrupt <- Some msg;
            (try Unix.kill child.pid Sys.sigkill
             with Unix.Unix_error _ -> ())
        end
    in
    (* Initial strided assignment, like the unsupervised pool: worker [w]
       owns w, w+jobs, w+2*jobs, ...  Striding (rather than chunking)
       balances grids whose points get systematically slower along one
       axis. *)
    for w = 0 to jobs - 1 do
      let indices = ref [] in
      let i = ref w in
      while !i < n do
        indices := !i :: !indices;
        i := !i + jobs
      done;
      spawn ~slot:w ~attempt:0 (List.rev !indices)
    done;
    (* Supervision loop: drain pipes, reap the dead, respawn the due.
       On a stop request we stop respawning but keep draining — workers
       sharing the stop signal finish their in-flight point and exit, and
       those final frames are worth collecting. *)
    while !children <> [] || ((not (stop ())) && !respawns <> []) do
      let now = Unix.gettimeofday () in
      let due, later = List.partition (fun (t, _, _, _) -> t <= now) !respawns in
      respawns := later;
      if not (stop ()) then
        List.iter (fun (_, slot, attempt, idxs) -> spawn ~slot ~attempt idxs) due
      ;
      if !children = [] then
        (if !respawns <> [] then
           let next = List.fold_left (fun acc (t, _, _, _) -> Float.min acc t)
               infinity !respawns in
           let pause = Float.min select_tick (Float.max 0. (next -. now)) in
           if pause > 0. then ignore (Unix.select [] [] [] pause))
      else begin
        let fds = List.map (fun c -> c.fd) !children in
        (match Unix.select fds [] [] select_tick with
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
         | ready, _, _ ->
           List.iter
             (fun fd ->
               match List.find_opt (fun c -> c.fd = fd) !children with
               | Some child -> service child
               | None -> ())
             ready);
        (* Per-worker inactivity deadline. *)
        match deadline with
        | None -> ()
        | Some d ->
          let now = Unix.gettimeofday () in
          List.iter
            (fun c ->
              if now -. c.last_heard > d && c.timed_out = None then begin
                c.timed_out <- Some d;
                try Unix.kill c.pid Sys.sigkill with Unix.Unix_error _ -> ()
              end)
            !children
      end
    done;
    if stop () then interrupted := true
    else begin
      (* Graceful degradation: any point that never made it back — retry
         budget exhausted, spawn failure — runs in-process, in order. *)
      let missing = ref [] in
      for i = n - 1 downto 0 do
        match results.(i) with
        | Some _ -> ()
        | None -> if not (Hashtbl.mem poisoned i) then missing := i :: !missing
      done;
      run_seq !missing
    end;
    {
      results;
      worker_failures = List.rev !worker_failures;
      point_failures =
        List.sort (fun a b -> compare a.point b.point) !point_failures;
      interrupted = !interrupted;
    }
  end

let map ?backend ?jobs ?max_retries ?backoff ?deadline ?on_failure f xs =
  let o =
    map_collect ?backend ?jobs ?max_retries ?backoff ?deadline ?on_failure f xs
  in
  let missing = ref [] in
  for i = Array.length o.results - 1 downto 0 do
    match o.results.(i) with
    | Some _ -> ()
    | None -> missing := i :: !missing
  done;
  if o.point_failures <> [] || !missing <> [] then
    raise
      (Error
         {
           message =
             (match o.point_failures with
              | [] ->
                Printf.sprintf "no result for point(s) %s"
                  (indices_to_string !missing)
              | pfs ->
                Printf.sprintf "%d point(s) raised" (List.length pfs));
           worker_failures = o.worker_failures;
           point_failures = o.point_failures;
         });
  Array.to_list
    (Array.map (function Some r -> r | None -> assert false) o.results)
