(** Shared-memory parallel execution of a task array on OCaml 5
    domains — the in-process backend behind {!Sweep_pool} (see
    DESIGN.md §6j).

    This module has two build-time implementations selected by the dune
    rules in [lib/sweep/pool/dune]: on OCaml >= 5.0 a real domain pool,
    on 4.14 a stub with [available = false] whose [run] never executes
    ({!Sweep_pool} routes such requests to the fork backend instead).

    The real implementation spawns [jobs - 1] domains and uses the
    calling domain as the last worker.  Workers pull task indices from a
    shared atomic counter in small contiguous chunks (amortizing
    contention without hurting balance) and write each result into a
    caller-provided slot array at the task's own index, so completion
    order — and the number of domains — is invisible in the output:
    byte-identical results for any [jobs], the same guarantee the fork
    backend gives.

    Because all workers share one heap, [f] must not mutate global
    state.  Everything a sweep point touches in this codebase is either
    per-task (scenario-seeded RNGs, per-sim free-lists, per-probe
    metrics registries) or initialized before any domain can exist (the
    [Tcp.Cc] registry, populated at module-load time); the
    [test_domain_safety] suite pins this by diffing domain-parallel
    output against sequential bytes. *)

val available : bool
(** [true] iff this build has real domain support (OCaml >= 5.0). *)

(** A task whose [f] raised; [index] is the task's position. *)
type task_failure = { index : int; exn_text : string; backtrace : string }

val run :
  jobs:int ->
  stop:(unit -> bool) ->
  on_result:(int -> unit) ->
  ('a -> 'b) ->
  'a array ->
  'b option array ->
  task_failure list * bool
(** [run ~jobs ~stop ~on_result f tasks results] computes [f tasks.(i)]
    for every [i], writing successes into [results.(i)] in place.
    Returns the task failures in ascending index order, and whether a
    cooperative stop was observed ([stop] polled between tasks; on
    [true] the in-flight tasks finish, the rest are left [None]).

    [stop] is called from worker domains and must therefore be
    domain-safe; a monotonic [bool ref] flipped by a signal handler —
    what [netsim] uses — is fine.  [on_result] fires once per finished
    task (success or raise), also from worker domains, and must be
    domain-safe too; pass [ignore] when unused.

    The caller guarantees [jobs >= 2], [Array.length results =
    Array.length tasks], and [available = true]; the 4.14 stub raises
    [Failure] if reached. *)
