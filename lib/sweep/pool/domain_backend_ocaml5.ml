(* Real domain pool (OCaml >= 5.0).  Copied to domain_backend.ml by the
   dune rule when the compiler supports domains; domain_backend_ocaml4.ml
   is the 4.14 stub.  Keep both in sync with domain_backend.mli. *)

let available = true

type task_failure = { index : int; exn_text : string; backtrace : string }

(* Chunked index pulling: each fetch_and_add claims [chunk] consecutive
   indices.  Simulation grids are small (tens to hundreds of points) and
   per-point cost varies a lot, so chunks stay small — balance matters
   more than counter traffic there; huge arrays of trivial tasks get
   bigger chunks so the atomic is off the per-task path.  The cap bounds
   tail imbalance when task costs drift along the array. *)
let chunk_for ~n ~jobs = min 1024 (max 1 (n / (jobs * 16)))

let run ~jobs ~stop ~on_result f tasks results =
  let n = Array.length tasks in
  let next = Atomic.make 0 in
  let stopped = Atomic.make false in
  let chunk = chunk_for ~n ~jobs in
  (* The user's [stop] closure is polled from every worker; the first
     observer also raises the shared atomic flag so domains whose next
     poll is cheap (the atomic) shut down promptly. *)
  let should_stop () =
    Atomic.get stopped
    || (stop () && (Atomic.set stopped true; true))
  in
  let worker () =
    let failures = ref [] in
    let continue = ref true in
    while !continue do
      if should_stop () then continue := false
      else begin
        let start = Atomic.fetch_and_add next chunk in
        if start >= n then continue := false
        else
          for i = start to min n (start + chunk) - 1 do
            if not (should_stop ()) then begin
              (match f tasks.(i) with
               | r -> results.(i) <- Some r
               | exception e ->
                 failures :=
                   {
                     index = i;
                     exn_text = Printexc.to_string e;
                     backtrace = Printexc.get_backtrace ();
                   }
                   :: !failures);
              (* Fires from this worker domain; the callback contract
                 requires domain-safety. *)
              on_result i
            end
          done
      end
    done;
    !failures
  in
  (* The calling domain is worker [jobs - 1]: it participates instead of
     idling in a poll loop, so trivial grids pay no wake-up latency and a
     signal arriving while it computes is handled at its next safepoint
     like on any other domain. *)
  let others = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
  let mine = worker () in
  let failures =
    Array.fold_left (fun acc d -> Domain.join d @ acc) mine others
  in
  let sorted =
    List.sort (fun a b -> compare a.index b.index) failures
  in
  (sorted, Atomic.get stopped || stop ())
