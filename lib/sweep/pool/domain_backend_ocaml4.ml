(* OCaml 4.14 stub: no domains.  Copied to domain_backend.ml by the dune
   rule on compilers before 5.0.  [Sweep_pool] checks [available] before
   dispatching here and routes domain requests to the fork backend, so
   [run] is unreachable; it raises rather than silently degrading in
   case a future caller forgets the check. *)

let available = false

type task_failure = { index : int; exn_text : string; backtrace : string }

let run ~jobs:_ ~stop:_ ~on_result:_ _f _tasks _results =
  failwith "Domain_backend.run: domains require OCaml >= 5.0"

(* Mention the type so the 4.14 build doesn't flag it unused. *)
let _ = fun (x : task_failure) -> x.index
