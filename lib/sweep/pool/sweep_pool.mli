(** Deterministic parallel task pool — the execution layer of the
    scenario-sweep subsystem ({!Sweep}) — with three runtime-selected
    {!backend}s: plain sequential, supervised fork/pipe/Marshal worker
    processes, and (on OCaml 5) shared-memory domains.

    {2 Determinism}

    [map ~jobs f xs] returns exactly [List.map f xs] for any [jobs],
    any {!backend} — and, under the fork backend, any worker kill
    pattern: task [i] is always computed as [f xs.(i)] (in a fork-time
    copy of the parent heap, in a domain sharing it, or in the parent
    itself), and results are reassembled by task index.  As long as
    [f] itself is deterministic (every RNG in this repo is seeded from
    its scenario, never from the process, domain or worker), the
    results are bit-identical regardless of the backend, the job count
    or which workers crashed along the way.

    {2 Backends}

    - {!Seq}: in-process [List.map]; always used when [jobs <= 1].
    - {!Fork}: the supervised worker-process pool described below.
      Worker crashes, hangs and stream corruption are survived; the
      per-point [Marshal] + pipe cost is amortized by batching cheap
      results into chunked frames.
    - {!Domain}: a fixed set of OCaml 5 domains pulling task indices
      from a shared atomic counter and writing results into a pre-sized
      slot array ({!Domain_backend}) — real multicore parallelism with
      no serialization at all.  [f] must not touch global mutable state
      (see DESIGN.md §6j for the shared-heap safety checklist);
      [max_retries] / [deadline] / [on_failure] are inert here (there
      are no worker processes to crash or respawn).  On 4.14 builds
      the stub backend is unavailable and requests degrade to {!Fork}.

    The default is {!Domain} where available, else {!Fork}; the
    [NETSIM_SWEEP_BACKEND] environment variable ([seq] | [fork] |
    [domain]) overrides it, and the [?backend] argument overrides both.

    {2 Supervision (fork backend)}

    Workers stream one length-prefixed [Marshal] frame back per
    completed task; the parent multiplexes the pipes through
    [Unix.select], so a worker that dies loses only its unfinished
    tasks.  Crashed (exit/signal), hung (per-worker [deadline]) and
    corrupt-stream (truncated or undecodable frame) workers are
    detected individually; their unfinished task indices are requeued
    to respawned workers with exponential backoff ([backoff],
    [backoff*2], ...), and after [max_retries] respawns the pool
    degrades to running just the missing tasks sequentially in-process.
    A task whose [f] {e raises} is never retried — the computation is
    deterministic — and surfaces in {!Error} with its exception text
    and backtrace.

    For testing the supervision machinery itself, the
    [NETSIM_CHAOS_KILL_AFTER] / [NETSIM_CHAOS_TRUNCATE_AFTER] /
    [NETSIM_CHAOS_ALL_ATTEMPTS] environment variables make workers
    deterministically self-destruct (see DESIGN.md, "Failure model &
    supervision"). *)

(** How tasks are executed; see the module comment. *)
type backend = Seq | Fork | Domain

val backend_to_string : backend -> string

(** Parses ["seq"], ["fork"] or ["domain"] (case-insensitive);
    [Error msg] names the alternatives otherwise. *)
val backend_of_string : string -> (backend, string) result

(** [true] iff this build can run the {!Domain} backend (OCaml >= 5.0);
    when [false], {!Domain} requests degrade to {!Fork}. *)
val domain_backend_available : bool

(** The backend used when [?backend] is omitted: [NETSIM_SWEEP_BACKEND]
    if set to a valid name, else {!Domain} where available, else
    {!Fork}. *)
val default_backend : unit -> backend

(** Why a worker process failed. *)
type cause =
  | Exited of int  (** exited with a non-zero code *)
  | Signaled of int  (** killed by a signal (e.g. SIGKILL = 9) *)
  | Stopped of int
  | Corrupt_stream of string
      (** truncated or undecodable frame; EOF mid-frame *)
  | Timed_out of float  (** silent past the per-worker deadline (s) *)
  | Spawn_failed of string  (** [pipe]/[fork] failed; never forked *)

type worker_failure = {
  worker : int;  (** stable worker slot (0-based) *)
  pid : int;  (** [-1] when the worker never forked *)
  attempt : int;  (** 0 = initial spawn, 1.. = respawns *)
  cause : cause;
  salvaged : int list;  (** task indices completed before the failure *)
  lost : int list;  (** unfinished task indices (requeued), ascending *)
}

(** A task whose [f] raised (in a worker or in the sequential
    fallback). *)
type point_failure = { point : int; exn_text : string; backtrace : string }

type error = {
  message : string;
  worker_failures : worker_failure list;  (** chronological *)
  point_failures : point_failure list;  (** ascending by task index *)
}

(** Raised by {!map} when any task is unaccounted for or raised; a
    printer is registered, so [Printexc.to_string] renders the full
    per-worker / per-point detail. *)
exception Error of error

val cause_to_string : cause -> string
val worker_failure_to_string : worker_failure -> string
val error_to_string : error -> string

(** [map ~jobs f xs] is [List.map f xs], computed by up to [jobs]
    supervised worker processes (strided assignment: worker [w] starts
    with tasks [w, w+jobs, ...]).

    ['b] must be marshalable plain data — no closures, no custom
    blocks.  Runs sequentially in-process when [jobs <= 1], when there
    is at most one task, or on non-Unix platforms.  Do not call with
    other threads or domains running (fork).

    - [max_retries] (default 2): respawns granted per lost task before
      the sequential fallback takes over.
    - [backoff] (default 0.05 s): delay before the first respawn;
      doubles per attempt.
    - [deadline]: kill a worker silent for this many wall seconds
      (default: wait forever).
    - [on_failure]: called on every classified worker failure, e.g. to
      log to stderr.  Must not write to stdout in deterministic-output
      contexts.

    @raise Error when a task raised or remained unaccounted for. *)
val map :
  ?backend:backend ->
  ?jobs:int ->
  ?max_retries:int ->
  ?backoff:float ->
  ?deadline:float ->
  ?on_failure:(worker_failure -> unit) ->
  ('a -> 'b) ->
  'a list ->
  'b list

(** A live progress snapshot, delivered to [on_progress] after every
    completed point. *)
type progress = {
  prog_done : int;  (** points accounted for (completed or raised) *)
  prog_total : int;
  prog_running : int;  (** live workers (approximate under Domain) *)
  prog_failures : int;  (** worker failures so far (fork backend) *)
}

(** Everything {!map} learned, without raising. *)
type 'b outcome = {
  results : 'b option array;
      (** by task index; [None] = interrupted before completion or the
          task raised (see [point_failures]) *)
  worker_failures : worker_failure list;
  point_failures : point_failure list;
  interrupted : bool;  (** the [stop] predicate fired *)
}

(** Like {!map}, but returns partial results instead of raising, and
    honours a cooperative [stop] predicate: when it flips to [true] the
    pool stops assigning work (workers sharing the flag — e.g. via an
    inherited signal handler — finish their in-flight task, whose
    result is still collected) and returns with [interrupted = true].
    The sequential fallback also polls [stop] between tasks.

    Under the {!Domain} backend [stop] is polled from worker domains
    and must be domain-safe (a monotonic [bool ref] flipped by a signal
    handler is fine); in-flight points finish and are kept, exactly as
    with forked workers.

    [on_progress] fires after every accounted point (completed or
    raised).  Under {!Seq} and {!Fork} it runs in the calling process;
    under {!Domain} it fires from worker domains and must be
    domain-safe (guard shared state with a [Mutex]).  It must not
    write to stdout in deterministic-output contexts — progress
    belongs on stderr. *)
val map_collect :
  ?backend:backend ->
  ?jobs:int ->
  ?max_retries:int ->
  ?backoff:float ->
  ?deadline:float ->
  ?on_failure:(worker_failure -> unit) ->
  ?on_progress:(progress -> unit) ->
  ?stop:(unit -> bool) ->
  ('a -> 'b) ->
  'a list ->
  'b outcome

(** Job count from the [NETSIM_JOBS] environment variable; [1] when the
    variable is unset, empty or not a positive integer. *)
val default_jobs : unit -> int

(** Best-effort CPU count (from [/proc/cpuinfo]; [1] when unreadable).
    Benchmark metadata only — never affects results. *)
val cores : unit -> int

(** CPU count this process may actually use — the popcount of the
    affinity mask in [/proc/self/status] ([Cpus_allowed]), which cgroup
    cpusets, [taskset] and CI runners shrink below {!cores}.  Falls
    back to {!cores} when unreadable.  Benchmark metadata only. *)
val available_cores : unit -> int
