(** Deterministic fork/pipe/Marshal worker pool — the process-level layer
    of the scenario-sweep subsystem ({!Sweep}).

    {2 Determinism}

    [map ~jobs f xs] returns exactly [List.map f xs] for any [jobs]: task
    [i] is always computed as [f xs.(i)] in a fork-time copy of the
    parent heap, and the parent reassembles results by task index.  As
    long as [f] itself is deterministic (every RNG in this repo is seeded
    from its scenario, never from the process or worker), the results are
    bit-identical regardless of the job count. *)

(** [map ~jobs f xs] is [List.map f xs], computed by [jobs] forked worker
    processes (strided assignment: worker [w] handles tasks
    [w, w+jobs, ...]).

    ['b] must be marshalable plain data — no closures, no custom blocks.
    Runs sequentially in-process when [jobs <= 1], when there is at most
    one task, or on non-Unix platforms.  Do not call with other threads
    or domains running (fork).

    @raise Failure if a worker dies or raises; the first worker error is
    reported. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** Job count from the [NETSIM_JOBS] environment variable; [1] when the
    variable is unset, empty or not a positive integer. *)
val default_jobs : unit -> int

(** Best-effort CPU count (from [/proc/cpuinfo]; [1] when unreadable).
    Benchmark metadata only — never affects results. *)
val cores : unit -> int
