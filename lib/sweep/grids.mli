(** Named parameter grids for [netsim sweep], the benchmark harness and
    the example programs.

    A grid is a pure recipe: [points ~quick] only builds scenarios, it
    runs nothing.  Feed the result to {!Driver.run}. *)

type spec = {
  name : string;  (** CLI name, e.g. ["fig8"] *)
  title : string;  (** one-line description for [--list] *)
  points : quick:bool -> Driver.point list;
      (** [quick:true] shrinks the simulated horizon for smoke tests *)
}

(** Fig-8 regime (tau = 10 ms) fixed-window pair swept across bottleneck
    buffer sizes, ending with the paper's infinite buffer. *)
val fig8 : spec

(** Same grid at tau = 1 s (the Fig-9 regime). *)
val fig9 : spec

(** Section 4.3.3 phase criterion over the (w1, w2) window plane.
    Points are row-major over [phase_diagram_windows] (w1 outer, w2
    inner). *)
val phase_diagram : spec

val phase_diagram_windows : int list
val phase_diagram_tau : float

(** Synchronization-mode atlas for adaptive 1+1 traffic over
    (tau, buffer).  Points are row-major over [mode_atlas_buffers]
    (outer) and [mode_atlas_taus] (inner). *)
val mode_atlas : spec

val mode_atlas_taus : float list
val mode_atlas_buffers : int list

(** Utilization vs buffer size, one-way and two-way columns. *)
val buffers : spec

(** Tiny 2x2 grid for CI determinism smoke checks. *)
val smoke : spec

val all : spec list
val find : string -> spec option
