(** Runs a grid of scenarios — possibly across a pool of worker
    processes — and collects one {!Summary.t} per point.

    {2 Determinism under parallelism}

    Results are bit-identical for any [jobs] value: a point's simulation
    depends only on its scenario (every RNG is seeded from scenario
    configuration — the fault seed, the discipline seed — never from the
    worker process, wall clock or job count), and {!Sweep_pool.map}
    reassembles summaries by point index, not completion order.  The
    supervision layer preserves this: crashed or hung workers are
    respawned and their unfinished points retried (or, past the retry
    budget, run sequentially in-process), so the output stays
    byte-identical under any worker kill pattern. *)

type point = {
  id : string;  (** label in tables and JSON (defaults to scenario name) *)
  params : (string * float) list;  (** grid coordinates, carried to JSON *)
  scenario : Core.Scenario.t;
}

val point :
  ?id:string -> ?params:(string * float) list -> Core.Scenario.t -> point

(** Run one point in-process.  [budget] and [bundle_dir] are passed to
    {!Core.Runner.run}: a budgeted point yields a partial summary when a
    watchdog fires, and [bundle_dir] arms crash bundles for the point. *)
val run_point :
  ?budget:Core.Runner.budget -> ?bundle_dir:string -> point -> Summary.t

(** Run every point; summaries are returned in point order.  [backend]
    selects the executor (default {!Sweep_pool.default_backend}: domains
    on OCaml 5, forked workers on 4.14, [NETSIM_SWEEP_BACKEND]
    overrides); output is byte-identical for every backend.  [jobs]
    defaults to {!Sweep_pool.default_jobs} (the [NETSIM_JOBS] variable,
    else 1).  [max_retries], [deadline] and [on_failure] configure the
    supervised fork pool (see {!Sweep_pool.map}; inert under the domain
    backend); [budget] / [bundle_dir] are applied per point.
    @raise Sweep_pool.Error when points remain missing or failed after
    every retry and the sequential fallback. *)
val run :
  ?backend:Sweep_pool.backend ->
  ?jobs:int ->
  ?max_retries:int ->
  ?backoff:float ->
  ?deadline:float ->
  ?on_failure:(Sweep_pool.worker_failure -> unit) ->
  ?budget:Core.Runner.budget ->
  ?bundle_dir:string ->
  point list ->
  Summary.t list

(** Like {!run} but never raises on point failures: returns the full
    {!Sweep_pool.outcome} (per-point results, worker/point failure
    ledgers, interrupt flag).  [stop] is polled between points and by
    the pool's supervision loop — when it returns [true] the sweep
    drains in-flight points and returns a partial outcome with
    [interrupted = true].  [on_progress] fires after every accounted
    point (see {!Sweep_pool.map_collect}: domain-safe, stderr only). *)
val run_collect :
  ?backend:Sweep_pool.backend ->
  ?jobs:int ->
  ?max_retries:int ->
  ?backoff:float ->
  ?deadline:float ->
  ?on_failure:(Sweep_pool.worker_failure -> unit) ->
  ?on_progress:(Sweep_pool.progress -> unit) ->
  ?stop:(unit -> bool) ->
  ?budget:Core.Runner.budget ->
  ?bundle_dir:string ->
  point list ->
  Summary.t Sweep_pool.outcome

(** {!Summary.list_to_json}. *)
val to_json : Summary.t list -> string

(** Human-readable fixed-width table on stdout. *)
val print_table : Summary.t list -> unit
