(** Runs a grid of scenarios — possibly across a pool of worker
    processes — and collects one {!Summary.t} per point.

    {2 Determinism under parallelism}

    Results are bit-identical for any [jobs] value: a point's simulation
    depends only on its scenario (every RNG is seeded from scenario
    configuration — the fault seed, the discipline seed — never from the
    worker process, wall clock or job count), and {!Sweep_pool.map}
    reassembles summaries by point index, not completion order. *)

type point = {
  id : string;  (** label in tables and JSON (defaults to scenario name) *)
  params : (string * float) list;  (** grid coordinates, carried to JSON *)
  scenario : Core.Scenario.t;
}

val point :
  ?id:string -> ?params:(string * float) list -> Core.Scenario.t -> point

(** Run one point in-process. *)
val run_point : point -> Summary.t

(** Run every point; summaries are returned in point order.  [jobs]
    defaults to {!Sweep_pool.default_jobs} (the [NETSIM_JOBS] variable,
    else 1).
    @raise Failure if a worker process fails. *)
val run : ?jobs:int -> point list -> Summary.t list

(** {!Summary.list_to_json}. *)
val to_json : Summary.t list -> string

(** Human-readable fixed-width table on stdout. *)
val print_table : Summary.t list -> unit
