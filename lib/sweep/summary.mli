(** The per-point result of a scenario sweep: the scalar metrics the
    paper's sweeps map across parameter grids, extracted from a
    {!Core.Runner.result}.

    Summaries are plain marshalable data (no traces, no closures), so
    they can cross the {!Sweep_pool} worker pipe. *)

type t = {
  id : string;  (** scenario name, unique within a sweep *)
  params : (string * float) list;  (** grid coordinates of this point *)
  cc : string;
      (** distinct congestion-controller specs across the point's
          connections, comma-joined in first-use order *)
  util_fwd : float;
  util_bwd : float;
  drops_window : int;  (** drops inside the measurement window *)
  drops_total : int;
  delivered : int list;  (** packets acked per connection in the window *)
  phase : string;  (** queue synchronization: in-phase / out-of-phase / ? *)
  phase_corr : float;
  epoch_count : int;
  mean_drops_per_epoch : float option;
  single_loser : float option;
      (** fraction of epochs in which one connection takes every drop *)
  q1_max : float;  (** peak bottleneck queue, fwd, in the window *)
  q2_max : float;
  effective_pipe : float option;
      (** mean ACK queueing delay in data-packet transmission times *)
  jain : float;
      (** Jain's fairness index over per-connection delivered packets *)
  fct_p50 : float option;
      (** median flow-completion time across the point's sized flows
          (via {!Obs.Sketch}; [None] when no flow completed) *)
  fct_p99 : float option;
  metrics : (string * float) list;
      (** final {!Obs.Metrics} snapshot of the point's run, in
          registration order ([[]] when the run carried no registry) *)
}

val of_result : id:string -> ?params:(string * float) list ->
  Core.Runner.result -> t

(** Deterministic JSON object: fixed key order, fixed float formatting
    ([%.9g]; NaN and infinities become [null]) — equal summaries encode
    to equal bytes, which is what the [--jobs N] vs [--jobs 1] identity
    check diffs. *)
val to_json : t -> string

(** JSON array of {!to_json} objects, newline-separated, trailing
    newline. *)
val list_to_json : t list -> string
