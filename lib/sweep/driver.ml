type point = {
  id : string;
  params : (string * float) list;
  scenario : Core.Scenario.t;
}

let point ?id ?(params = []) scenario =
  let id =
    match id with Some i -> i | None -> scenario.Core.Scenario.name
  in
  { id; params; scenario }

(* Sweep points always carry a metrics registry (counters and gauges are
   cheap); the snapshot rides the summary across the worker pipe as plain
   data.  Tracing stays off — sinks are closures and could not cross the
   pipe anyway. *)
let run_point ?budget ?bundle_dir p =
  Summary.of_result ~id:p.id ~params:p.params
    (Core.Runner.run ~obs:(Obs.Probe.setup ()) ?budget ?bundle_dir p.scenario)

let run ?backend ?jobs ?max_retries ?backoff ?deadline ?on_failure ?budget
    ?bundle_dir points =
  let jobs = match jobs with Some j -> j | None -> Sweep_pool.default_jobs () in
  Sweep_pool.map ?backend ~jobs ?max_retries ?backoff ?deadline ?on_failure
    (run_point ?budget ?bundle_dir)
    points

let run_collect ?backend ?jobs ?max_retries ?backoff ?deadline ?on_failure
    ?on_progress ?stop ?budget ?bundle_dir points =
  let jobs = match jobs with Some j -> j | None -> Sweep_pool.default_jobs () in
  Sweep_pool.map_collect ?backend ~jobs ?max_retries ?backoff ?deadline
    ?on_failure ?on_progress ?stop
    (run_point ?budget ?bundle_dir)
    points

let to_json = Summary.list_to_json

let print_table summaries =
  Printf.printf "%-18s %9s %9s %7s %14s %7s %7s\n" "point" "util-fwd"
    "util-bwd" "drops" "phase" "q1-max" "q2-max";
  List.iter
    (fun (s : Summary.t) ->
      Printf.printf "%-18s %8.1f%% %8.1f%% %7d %14s %7.0f %7.0f\n" s.id
        (100. *. s.util_fwd) (100. *. s.util_bwd) s.drops_window s.phase
        s.q1_max s.q2_max)
    summaries
