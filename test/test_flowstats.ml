(* lib/obs Flowstats: the per-flow accounting registry.

   Two layers of guarantees:

     - unit: the registry is free-listed (slots are reused after
       release), and the accounting mirrors the sender's Karn
       discipline — retransmissions and losses clear the RTT timer, an
       ACK samples only when it covers the timed sequence;

     - golden: on a two-way fig-4-style run, the online registry (fed
       from Probe hooks) and an offline registry (fed from the decoded
       binary trace of the same run) produce byte-identical JSON, and
       both agree with the sender's own counters. *)

let get = function
  | Some v -> v
  | None -> Alcotest.fail "expected Some"

(* ---------------- registry mechanics ---------------- *)

let test_register_release_reuse () =
  let t = Obs.Flowstats.create () in
  Alcotest.check_raises "negative conn rejected"
    (Invalid_argument "Flowstats.register: negative conn id") (fun () ->
      Obs.Flowstats.register t ~conn:(-1) ~start_time:0. ~flow_size:None);
  List.iter
    (fun c -> Obs.Flowstats.register t ~conn:c ~start_time:0. ~flow_size:None)
    [ 3; 1; 2 ];
  Alcotest.(check int) "three live flows" 3 (Obs.Flowstats.flow_count t);
  Alcotest.(check (list int)) "iteration is in conn order, not registration"
    [ 1; 2; 3 ]
    (List.map (fun s -> s.Obs.Flowstats.s_conn) (Obs.Flowstats.all t));
  Obs.Flowstats.release t ~conn:2;
  Obs.Flowstats.release t ~conn:99 (* unknown: ignored *);
  Alcotest.(check int) "release frees the slot" 2 (Obs.Flowstats.flow_count t);
  Alcotest.(check bool) "released conn gone" true
    (Obs.Flowstats.stats t ~conn:2 = None);
  (* The freed slot is reused: registering a fourth conn must not grow
     past the high-water mark of three. *)
  Obs.Flowstats.register t ~conn:7 ~start_time:2. ~flow_size:(Some 5);
  Alcotest.(check int) "slot reused" 3 (Obs.Flowstats.flow_count t);
  Alcotest.(check (list int)) "order after reuse" [ 1; 3; 7 ]
    (List.map (fun s -> s.Obs.Flowstats.s_conn) (Obs.Flowstats.all t))

let test_reregistration_keeps_counters () =
  (* A conn-meta record arriving after a bare conn-def refreshes the
     metadata without losing accumulated counts. *)
  let t = Obs.Flowstats.create () in
  Obs.Flowstats.register t ~conn:1 ~start_time:0. ~flow_size:None;
  Obs.Flowstats.record_data_delivered t ~conn:1 ~bytes:1000;
  Obs.Flowstats.register t ~conn:1 ~start_time:2.5 ~flow_size:(Some 10);
  let s = get (Obs.Flowstats.stats t ~conn:1) in
  Alcotest.(check int) "still one flow" 1 (Obs.Flowstats.flow_count t);
  Alcotest.(check (float 0.)) "metadata refreshed" 2.5
    s.Obs.Flowstats.s_start_time;
  Alcotest.(check (option int)) "size refreshed" (Some 10)
    s.Obs.Flowstats.s_flow_size;
  Alcotest.(check int) "counters kept" 1000 s.Obs.Flowstats.s_delivered_bytes

let test_unregistered_events_ignored () =
  let t = Obs.Flowstats.create () in
  Obs.Flowstats.record_send t ~time:1. ~conn:9 ~seq:0 ~retransmit:false;
  Obs.Flowstats.record_data_delivered t ~conn:9 ~bytes:500;
  Obs.Flowstats.record_loss t ~conn:9;
  Alcotest.(check int) "nothing registered" 0 (Obs.Flowstats.flow_count t)

(* ---------------- the Karn mirror ---------------- *)

let test_karn_discipline () =
  let t = Obs.Flowstats.create () in
  Obs.Flowstats.register t ~conn:1 ~start_time:0. ~flow_size:None;
  (* First transmission starts the timer; a second one while timing does
     not retime. *)
  Obs.Flowstats.record_send t ~time:1.0 ~conn:1 ~seq:0 ~retransmit:false;
  Obs.Flowstats.record_send t ~time:1.1 ~conn:1 ~seq:1 ~retransmit:false;
  (* ackno 1 covers seq 0: sample = 1.5 - 1.0, from the first send. *)
  Obs.Flowstats.record_ack_delivered t ~time:1.5 ~conn:1 ~ackno:1;
  let s = get (Obs.Flowstats.stats t ~conn:1) in
  Alcotest.(check int) "one sample" 1 s.Obs.Flowstats.s_rtt_samples;
  Alcotest.(check (option (float 1e-12))) "sampled from the timed send"
    (Some 0.5) s.Obs.Flowstats.s_rtt_min;
  (* Karn: a retransmission clears the timer, so the covering ACK that
     follows must NOT sample. *)
  Obs.Flowstats.record_send t ~time:2.0 ~conn:1 ~seq:2 ~retransmit:false;
  Obs.Flowstats.record_send t ~time:2.5 ~conn:1 ~seq:2 ~retransmit:true;
  Obs.Flowstats.record_ack_delivered t ~time:3.0 ~conn:1 ~ackno:3;
  let s = get (Obs.Flowstats.stats t ~conn:1) in
  Alcotest.(check int) "retransmit counted" 1 s.Obs.Flowstats.s_retransmits;
  Alcotest.(check int) "no sample over a retransmitted seq" 1
    s.Obs.Flowstats.s_rtt_samples;
  (* A loss signal also clears the timer. *)
  Obs.Flowstats.record_send t ~time:4.0 ~conn:1 ~seq:3 ~retransmit:false;
  Obs.Flowstats.record_loss t ~conn:1;
  Obs.Flowstats.record_ack_delivered t ~time:5.0 ~conn:1 ~ackno:4;
  let s = get (Obs.Flowstats.stats t ~conn:1) in
  Alcotest.(check int) "loss counted" 1 s.Obs.Flowstats.s_loss_events;
  Alcotest.(check int) "no sample after loss cleared the timer" 1
    s.Obs.Flowstats.s_rtt_samples;
  (* An ACK that does not advance snd_una is a duplicate: ignored. *)
  Obs.Flowstats.record_send t ~time:6.0 ~conn:1 ~seq:4 ~retransmit:false;
  Obs.Flowstats.record_ack_delivered t ~time:6.2 ~conn:1 ~ackno:4;
  let s = get (Obs.Flowstats.stats t ~conn:1) in
  Alcotest.(check int) "duplicate ack ignored" 1 s.Obs.Flowstats.s_rtt_samples;
  (* The next covering ACK samples against the still-armed timer. *)
  Obs.Flowstats.record_ack_delivered t ~time:6.5 ~conn:1 ~ackno:5;
  let s = get (Obs.Flowstats.stats t ~conn:1) in
  Alcotest.(check int) "second sample" 2 s.Obs.Flowstats.s_rtt_samples;
  Alcotest.(check (option (float 1e-12))) "0.5 s again" (Some 0.5)
    s.Obs.Flowstats.s_rtt_max;
  Alcotest.(check int) "cumulative ack tally" 5 s.Obs.Flowstats.s_acked_pkts;
  Alcotest.(check int) "first transmissions tallied" 5
    s.Obs.Flowstats.s_data_sends

let test_sized_flow_completion () =
  let t = Obs.Flowstats.create () in
  Obs.Flowstats.register t ~conn:1 ~start_time:2. ~flow_size:(Some 3);
  List.iter
    (fun _ -> Obs.Flowstats.record_data_delivered t ~conn:1 ~bytes:1000)
    [ (); (); () ];
  Obs.Flowstats.record_ack_delivered t ~time:4. ~conn:1 ~ackno:2;
  Alcotest.(check (option (float 0.))) "not complete before the last ack" None
    (get (Obs.Flowstats.stats t ~conn:1)).Obs.Flowstats.s_fct;
  Obs.Flowstats.record_ack_delivered t ~time:6. ~conn:1 ~ackno:3;
  Obs.Flowstats.record_ack_delivered t ~time:8. ~conn:1 ~ackno:4;
  let s = get (Obs.Flowstats.stats t ~conn:1) in
  Alcotest.(check (option (float 1e-12))) "fct = completion - start"
    (Some 4.) s.Obs.Flowstats.s_fct;
  Alcotest.(check (option (float 1e-9))) "throughput = bytes / fct"
    (Some 750.) s.Obs.Flowstats.s_throughput

let test_feed_matches_direct_calls () =
  (* The offline fold is nothing but a dispatcher: folding handcrafted
     trace records must leave the registry byte-identical to calling the
     record_* functions directly. *)
  let pkt ?(retransmit = false) ~kind ~seq ~size conn =
    { Obs.Btrace.id = 0; conn; kind; seq; retransmit; size }
  in
  let items =
    [
      Obs.Btrace.Def_conn 1;
      Obs.Btrace.Def_conn_meta
        { conn = 1; start_time = 0.5; flow_size = Some 2 };
      Obs.Btrace.Event
        (1.0, Obs.Btrace.Send { conn = 1; pkt = pkt ~kind:Net.Packet.Data ~seq:0 ~size:1000 1 });
      Obs.Btrace.Event
        (1.2, Obs.Btrace.Deliver (pkt ~kind:Net.Packet.Data ~seq:0 ~size:1000 1));
      Obs.Btrace.Event
        (1.4, Obs.Btrace.Deliver (pkt ~kind:Net.Packet.Ack ~seq:1 ~size:50 1));
      Obs.Btrace.Event
        (2.0, Obs.Btrace.Cwnd { conn = 1; cwnd = 3.; ssthresh = 8. });
      Obs.Btrace.Event (2.1, Obs.Btrace.Loss { conn = 1; reason = "timeout" });
      Obs.Btrace.Event
        ( 2.2,
          Obs.Btrace.Send
            { conn = 1; pkt = pkt ~retransmit:true ~kind:Net.Packet.Data ~seq:1 ~size:1000 1 } );
      Obs.Btrace.Event
        (2.6, Obs.Btrace.Deliver (pkt ~kind:Net.Packet.Data ~seq:1 ~size:1000 1));
      Obs.Btrace.Event
        (2.8, Obs.Btrace.Deliver (pkt ~kind:Net.Packet.Ack ~seq:2 ~size:50 1));
    ]
  in
  let folded = Obs.Flowstats.create () in
  List.iter (Obs.Flowstats.feed folded) items;
  let direct = Obs.Flowstats.create () in
  Obs.Flowstats.register direct ~conn:1 ~start_time:0.5 ~flow_size:(Some 2);
  Obs.Flowstats.record_send direct ~time:1.0 ~conn:1 ~seq:0 ~retransmit:false;
  Obs.Flowstats.record_data_delivered direct ~conn:1 ~bytes:1000;
  Obs.Flowstats.record_ack_delivered direct ~time:1.4 ~conn:1 ~ackno:1;
  Obs.Flowstats.record_cwnd direct ~conn:1 ~cwnd:3.;
  Obs.Flowstats.record_loss direct ~conn:1;
  Obs.Flowstats.record_send direct ~time:2.2 ~conn:1 ~seq:1 ~retransmit:true;
  Obs.Flowstats.record_data_delivered direct ~conn:1 ~bytes:1000;
  Obs.Flowstats.record_ack_delivered direct ~time:2.8 ~conn:1 ~ackno:2;
  Alcotest.(check string) "fold = direct calls, byte for byte"
    (Obs.Flowstats.to_json direct)
    (Obs.Flowstats.to_json folded);
  let s = get (Obs.Flowstats.stats folded ~conn:1) in
  Alcotest.(check (option (float 1e-12))) "sized flow completed at 2.8"
    (Some 2.3) s.Obs.Flowstats.s_fct

(* ---------------- golden: online = offline on a real run ---------------- *)

let golden_scenario ?flow_size () =
  Core.Scenario.make ~name:"flowstats-golden" ~tau:0.01 ~buffer:(Some 20)
    ~conns:
      [
        Core.Scenario.conn ?flow_size Core.Scenario.Forward;
        Core.Scenario.conn ~start_time:1. Core.Scenario.Reverse;
      ]
    ~duration:20. ~warmup:1. ()

let run_traced scenario =
  let binary = Buffer.create (1 lsl 16) in
  let setup =
    Obs.Probe.setup ~flowstats:true ~btrace:(Buffer.add_string binary) ()
  in
  let r = Core.Runner.run ~obs:setup scenario in
  let probe = get r.Core.Runner.obs in
  let fs = get (Obs.Probe.flowstats probe) in
  (r, fs, Buffer.contents binary)

let test_online_offline_identity () =
  let r, fs, binary = run_traced (golden_scenario ()) in
  let online = Obs.Flowstats.to_json fs in
  (* Replay the run's own binary trace through a fresh registry. *)
  let trace =
    match Obs.Btrace.read binary with
    | Ok ({ Obs.Btrace.torn = None; _ } as f) -> f
    | Ok _ -> Alcotest.fail "flushed trace reports a torn tail"
    | Error msg -> Alcotest.failf "binary trace unreadable: %s" msg
  in
  let offline = Obs.Flowstats.create () in
  List.iter (Obs.Flowstats.feed offline) trace.Obs.Btrace.items;
  Alcotest.(check string) "online = offline, byte for byte" online
    (Obs.Flowstats.to_json offline);
  (* Both sides must also agree with the sender's own bookkeeping. *)
  Array.iteri
    (fun i ((_ : Core.Scenario.conn_spec), c) ->
      let sender = Tcp.Connection.sender c in
      let s = get (Obs.Flowstats.stats fs ~conn:(i + 1)) in
      Alcotest.(check int)
        (Printf.sprintf "conn %d retransmits match the sender" (i + 1))
        (Tcp.Sender.retransmits sender)
        s.Obs.Flowstats.s_retransmits;
      Alcotest.(check bool)
        (Printf.sprintf "conn %d sampled RTTs" (i + 1))
        true
        (s.Obs.Flowstats.s_rtt_samples > 0))
    r.Core.Runner.conns;
  (* Two-way traffic delivers meaningfully on both flows, so Jain's
     index is defined and the infinite sources report no FCT. *)
  let jain = get (Obs.Flowstats.jain fs) in
  Alcotest.(check bool) "jain in (0, 1]" true (jain > 0. && jain <= 1.);
  Alcotest.(check (option (float 0.))) "no FCT for infinite sources" None
    (Obs.Flowstats.fct_quantile fs 0.5)

let test_sized_flow_fct_matches_sender () =
  let r, fs, _ = run_traced (golden_scenario ~flow_size:(Some 50) ()) in
  let spec, c = r.Core.Runner.conns.(0) in
  let completed = get (Tcp.Sender.completed_at (Tcp.Connection.sender c)) in
  let s = get (Obs.Flowstats.stats fs ~conn:1) in
  Alcotest.(check (option (float 0.))) "fct = sender completion - start"
    (Some (completed -. spec.Core.Scenario.start_time))
    s.Obs.Flowstats.s_fct;
  Alcotest.(check bool) "cross-flow fct quantile defined" true
    (Obs.Flowstats.fct_quantile fs 0.99 <> None)

let suite =
  ( "flowstats",
    [
      Alcotest.test_case "registry: register, release, slot reuse" `Quick
        test_register_release_reuse;
      Alcotest.test_case "registry: re-registration keeps counters" `Quick
        test_reregistration_keeps_counters;
      Alcotest.test_case "registry: unregistered events ignored" `Quick
        test_unregistered_events_ignored;
      Alcotest.test_case "accounting: Karn RTT discipline" `Quick
        test_karn_discipline;
      Alcotest.test_case "accounting: sized-flow completion" `Quick
        test_sized_flow_completion;
      Alcotest.test_case "offline: feed equals direct record_* calls" `Quick
        test_feed_matches_direct_calls;
      Alcotest.test_case "golden: online and offline JSON byte-identical"
        `Quick test_online_offline_identity;
      Alcotest.test_case "golden: sized-flow FCT matches the sender" `Quick
        test_sized_flow_fct_matches_sender;
    ] )
