(* Domain-backend coverage: the OCaml 5 shared-memory executor must be
   observationally identical to the sequential and fork backends — same
   values, same order, same JSON bytes for any job count — and must
   honour cooperative stop and SIGINT with a clean partial outcome.

   Ordering matters twice over.  Once a domain has been spawned, the
   OCaml 5 runtime forbids Unix.fork for the rest of the process, so
   (a) test_main.ml registers this suite after Test_sweep, whose
   fork-backend tests must already have run, and (b) within this suite
   the tests that fork — the netsim SIGINT subprocess test and the
   fork-backend reference runs of the byte-identity test — come first,
   before the first Domain.spawn.

   On 4.14 builds Domain requests degrade to the fork backend, so the
   backend-agnostic tests still run and still hold; the tests whose
   mechanics are domain-specific (shared-heap stop flags, in-process
   signals) are registered only when the domain backend exists. *)

let dom = Sweep_pool.Domain

(* ---------------- netsim SIGINT: exit 130, partial table ----------------
   Forks netsim, so this must be the first test in the suite. *)

(* Under `dune runtest` the cwd is _build/default/test; under
   `dune exec test/test_main.exe` it is the workspace root. *)
let netsim =
  List.find_opt Sys.file_exists
    [
      Filename.concat (Filename.concat ".." "bin") "netsim.exe";
      "_build/default/bin/netsim.exe";
    ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i =
    i + n <= h && (String.sub haystack i n = needle || go (i + 1))
  in
  go 0

(* One attempt: spawn a sweep, SIGINT it after [delay] seconds.
   [`Exit_130 stdout] is success; [`Too_late] means the sweep finished
   before the signal (retry with a shorter delay); [`Too_early] means
   the signal landed before the handler was installed and killed the
   process (retry with a longer delay). *)
let sigint_attempt ~netsim ~delay =
  let out = Filename.temp_file "netsim-sigint" ".out" in
  Fun.protect ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
  @@ fun () ->
  let fd_out = Unix.openfile out [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let fd_err = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process netsim
      [| netsim; "sweep"; "phase-diagram"; "--backend"; "domain";
         "--jobs"; "2" |]
      Unix.stdin fd_out fd_err
  in
  Unix.close fd_out;
  Unix.close fd_err;
  Unix.sleepf delay;
  match Unix.waitpid [ Unix.WNOHANG ] pid with
  | p, _ when p = pid -> `Too_late
  | _ ->
    Unix.kill pid Sys.sigint;
    (match Unix.waitpid [] pid with
     | _, Unix.WEXITED 130 -> `Exit_130 (read_file out)
     | _, Unix.WEXITED c -> `Exit c
     | _, Unix.WSIGNALED s when s = Sys.sigint -> `Too_early
     | _, Unix.WSIGNALED s -> `Signaled s
     | _, Unix.WSTOPPED _ -> `Exit (-1))

let test_cli_sigint_exit_130 () =
  let netsim =
    match netsim with
    | Some p when Sys.os_type = "Unix" -> p
    | _ -> Alcotest.skip ()
  in
  (* The grid takes a fraction of a second, so the right delay depends
     on the machine: walk a ladder of delays instead of guessing one. *)
  let rec try_delays = function
    | [] ->
      Alcotest.fail
        "could not land SIGINT mid-sweep at any delay (machine too \
         fast/slow?)"
    | delay :: rest -> (
      match sigint_attempt ~netsim ~delay with
      | `Exit_130 stdout ->
        Alcotest.(check bool)
          "partial table printed (header reaches stdout)" true
          (contains stdout "point");
        Alcotest.(check bool)
          "interrupted summary line printed" true
          (contains stdout "interrupted:")
      | `Too_late | `Too_early -> try_delays rest
      | `Exit c ->
        Alcotest.fail (Printf.sprintf "expected exit 130, got exit %d" c)
      | `Signaled s ->
        Alcotest.fail (Printf.sprintf "expected exit 130, got signal %d" s))
  in
  try_delays [ 0.15; 0.05; 0.25; 0.02; 0.4; 0.1; 0.05; 0.02 ]

(* ---------------- Byte-identity across backends and job counts --------
   The tentpole guarantee: {seq, fork, domain} x jobs {1, 2, 4} all
   produce byte-identical sweep JSON.  Fork runs precede domain runs
   (fork-after-domain is forbidden, see header). *)

let test_backend_bytes_identical () =
  let points = Sweep.Grids.smoke.points ~quick:true in
  let json backend jobs =
    Sweep.Driver.to_json (Sweep.Driver.run ~backend ~jobs points)
  in
  let reference = json Sweep_pool.Seq 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "fork jobs=%d matches sequential bytes" jobs)
        reference
        (json Sweep_pool.Fork jobs))
    [ 1; 2; 4 ];
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "domain jobs=%d matches sequential bytes" jobs)
        reference (json dom jobs))
    [ 1; 2; 4 ]

(* ---------------- Pool semantics under the domain backend ------------- *)

let test_domain_matches_map () =
  let f x = ((3 * x) + 1, x * x) in
  List.iter
    (fun (n, jobs) ->
      let xs = List.init n (fun i -> i) in
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "n=%d jobs=%d equals in-process map" n jobs)
        (List.map f xs)
        (Sweep_pool.map ~backend:dom ~jobs f xs))
    (* 2000 tasks at jobs=4 exercises chunked index pulling (chunk > 1);
       the small cases exercise the chunk = 1 floor and the tail. *)
    [ (17, 3); (2000, 4); (5, 8); (1, 4) ];
  Alcotest.(check (list int))
    "empty input" []
    (Sweep_pool.map ~backend:dom ~jobs:4 (fun x -> x) [])

let test_domain_task_exception () =
  let f x = if x = 3 then failwith "boom" else x in
  (match Sweep_pool.map ~backend:dom ~jobs:2 f [ 1; 2; 3; 4 ] with
   | _ -> Alcotest.fail "expected Sweep_pool.Error"
   | exception Sweep_pool.Error e ->
     Alcotest.(check int) "one failed point" 1 (List.length e.point_failures);
     let pf = List.hd e.point_failures in
     Alcotest.(check int) "failing point index" 2 pf.Sweep_pool.point;
     Alcotest.(check string) "exception text carried across domains"
       "Failure(\"boom\")" pf.Sweep_pool.exn_text;
     Alcotest.(check (list Alcotest.reject))
       "a raising task is not a worker failure" [] e.worker_failures);
  (* map_collect keeps the surviving results. *)
  let o = Sweep_pool.map_collect ~backend:dom ~jobs:2 f [ 1; 2; 3; 4 ] in
  Alcotest.(check bool) "not interrupted" false o.interrupted;
  Alcotest.(check (array (option int)))
    "non-raising points all present"
    [| Some 1; Some 2; None; Some 4 |]
    o.results

(* Cooperative stop: flip the flag after the first completed task; the
   worker domains observe it through the shared heap and skip the rest
   of the grid, returning a clean partial outcome. *)
let test_domain_stop_partial () =
  let seen = Atomic.make 0 in
  let o =
    Sweep_pool.map_collect ~backend:dom ~jobs:2
      ~stop:(fun () -> Atomic.get seen > 0)
      (fun x ->
        Atomic.incr seen;
        x * 2)
      (List.init 64 (fun i -> i))
  in
  Alcotest.(check bool) "interrupted" true o.interrupted;
  let completed = ref 0 in
  Array.iteri
    (fun i -> function
      | Some r ->
        incr completed;
        Alcotest.(check int)
          (Printf.sprintf "completed point %d is correct" i)
          (2 * i) r
      | None -> ())
    o.results;
  Alcotest.(check bool) "partial: stop landed before the end" true
    (!completed < 64);
  Alcotest.(check (list Alcotest.reject)) "no spurious point failures" []
    o.point_failures;
  Alcotest.(check (list Alcotest.reject)) "no spurious worker failures" []
    o.worker_failures

(* SIGINT in-process: the first task raises the signal against the whole
   process; the handler (a monotonic ref flip, as installed by netsim)
   may run on any domain, and every worker's next stop poll observes it.
   In-flight tasks finish and are kept. *)
let test_domain_sigint_stop () =
  let hit = ref false in
  let old =
    Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> hit := true))
  in
  Fun.protect ~finally:(fun () -> Sys.set_signal Sys.sigint old)
  @@ fun () ->
  let fired = Atomic.make false in
  let o =
    Sweep_pool.map_collect ~backend:dom ~jobs:2
      ~stop:(fun () -> !hit)
      (fun x ->
        if not (Atomic.exchange fired true) then begin
          Unix.kill (Unix.getpid ()) Sys.sigint;
          (* Allocate until the handler has run somewhere: signal
             delivery happens at poll points, so spin on an allocation
             (bounded — a second is an eternity for a pending signal). *)
          let t0 = Unix.gettimeofday () in
          while (not !hit) && Unix.gettimeofday () -. t0 < 1.0 do
            ignore (Sys.opaque_identity (ref 0))
          done
        end;
        x + 100)
      (List.init 64 (fun i -> i))
  in
  Alcotest.(check bool) "interrupted by the signal" true o.interrupted;
  Array.iteri
    (fun i -> function
      | Some r ->
        Alcotest.(check int)
          (Printf.sprintf "in-flight point %d kept and correct" i)
          (i + 100) r
      | None -> ())
    o.results;
  Alcotest.(check (list Alcotest.reject)) "no spurious point failures" []
    o.point_failures

(* ---------------- Random grids ----------------
   The qcheck property: for random task grids and job counts, the
   domain pool is exactly List.map — order, values, length. *)

let prop_domain_matches_map =
  QCheck.Test.make ~name:"domain pool equals List.map on random grids"
    ~count:40
    QCheck.(pair (small_list small_int) (int_range 1 6))
    (fun (xs, jobs) ->
      let f x = ((5 * x) - 7, string_of_int x) in
      Sweep_pool.map ~backend:dom ~jobs f xs = List.map f xs)

let suite =
  ( "domain-safety",
    [
      Alcotest.test_case "netsim sweep SIGINT exits 130" `Slow
        test_cli_sigint_exit_130;
      Alcotest.test_case "byte-identical across backends x jobs" `Slow
        test_backend_bytes_identical;
      Alcotest.test_case "domain pool matches map" `Quick
        test_domain_matches_map;
      Alcotest.test_case "domain task exception" `Quick
        test_domain_task_exception;
    ]
    @ (if Sweep_pool.domain_backend_available then
         [
           Alcotest.test_case "domain cooperative stop" `Quick
             test_domain_stop_partial;
           Alcotest.test_case "domain SIGINT stop" `Quick
             test_domain_sigint_stop;
         ]
       else [])
    @ [ QCheck_alcotest.to_alcotest prop_domain_matches_map ] )
