(* Reno fast recovery, paced sending, and the new analyses
   (Period, Fairness). *)

open Tcp

(* --- Reno window machine --------------------------------------------- *)

let reno () = Cong.create ~algorithm:(Cong.Reno { modified_ca = true }) ~maxwnd:1000

let test_reno_fast_recovery_inflation () =
  let c = reno () in
  for _ = 1 to 19 do Cong.on_ack c done;
  (* cwnd = 20 in slow start *)
  Cong.on_fast_retransmit c;
  Alcotest.(check (float 1e-9)) "ssthresh = cwnd/2" 10. (Cong.ssthresh c);
  Alcotest.(check (float 1e-9)) "cwnd inflated to ssthresh+3" 13. (Cong.cwnd c);
  Alcotest.(check bool) "in recovery" true (Cong.in_recovery c);
  Cong.on_dup_ack c;
  Cong.on_dup_ack c;
  Alcotest.(check (float 1e-9)) "inflates per dup" 15. (Cong.cwnd c);
  Cong.on_recovery_exit c;
  Alcotest.(check (float 1e-9)) "deflates to ssthresh" 10. (Cong.cwnd c);
  Alcotest.(check bool) "recovery over" false (Cong.in_recovery c)

let test_reno_timeout_still_collapses () =
  let c = reno () in
  for _ = 1 to 19 do Cong.on_ack c done;
  Cong.on_fast_retransmit c;
  Cong.on_timeout c;
  Alcotest.(check (float 1e-9)) "cwnd 1 after timeout" 1. (Cong.cwnd c);
  Alcotest.(check bool) "timeout exits recovery" false (Cong.in_recovery c)

let test_tahoe_has_no_recovery_state () =
  let c = Cong.create ~algorithm:(Cong.Tahoe { modified_ca = true }) ~maxwnd:100 in
  for _ = 1 to 9 do Cong.on_ack c done;
  Cong.on_fast_retransmit c;
  Alcotest.(check (float 1e-9)) "tahoe collapses on fast rexmt" 1. (Cong.cwnd c);
  Alcotest.(check bool) "never in recovery" false (Cong.in_recovery c);
  Cong.on_dup_ack c;
  Alcotest.(check (float 1e-9)) "dup acks don't inflate tahoe" 1. (Cong.cwnd c)

let test_algorithm_to_string () =
  Alcotest.(check string) "tahoe" "tahoe"
    (Cong.algorithm_to_string (Cong.Tahoe { modified_ca = true }));
  Alcotest.(check string) "reno" "reno"
    (Cong.algorithm_to_string (Cong.Reno { modified_ca = true }));
  Alcotest.(check string) "fixed" "fixed-30" (Cong.algorithm_to_string (Cong.Fixed 30))

(* --- Reno end to end --------------------------------------------------- *)

let test_reno_connection_recovers () =
  let sim = Engine.Sim.create () in
  let d =
    Net.Topology.dumbbell sim (Net.Topology.params ~tau:0.01 ~buffer:(Some 10) ())
  in
  let conn =
    Connection.create d.net
      (Config.make ~conn:1 ~src_host:d.host1 ~dst_host:d.host2
         ~algorithm:(Cong.Reno { modified_ca = true }) ())
  in
  Engine.Sim.run sim ~until:120.;
  Alcotest.(check bool) "losses happened" true (Net.Link.total_drops d.fwd > 0);
  Alcotest.(check bool) "reno delivered plenty" true
    (Connection.delivered conn > 1000);
  let sender = Connection.sender conn in
  let gap = Receiver.rcv_nxt (Connection.receiver conn) - Sender.snd_una sender in
  Alcotest.(check bool) "sender within an ack-flight of the receiver" true
    (gap >= 0 && gap <= 4)

(* --- Paced sender ------------------------------------------------------ *)

let test_paced_spacing () =
  (* A paced sender must never inject two data packets closer than the
     pacing interval, no matter how many ACKs arrive at once. *)
  let sim = Engine.Sim.create () in
  let d =
    Net.Topology.dumbbell sim (Net.Topology.params ~tau:0.01 ~buffer:None ())
  in
  let interval = 0.08 in
  let conn =
    Connection.create d.net
      (Config.make ~conn:1 ~src_host:d.host1 ~dst_host:d.host2
         ~pacing:(Some interval) ())
  in
  let sends = ref [] in
  Sender.on_send (Connection.sender conn) (fun time _ -> sends := time :: !sends);
  Engine.Sim.run sim ~until:60.;
  let times = List.rev !sends in
  let rec check_gaps = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool)
        (Printf.sprintf "gap %.4f >= interval" (b -. a))
        true
        (b -. a >= interval -. 1e-9);
      check_gaps rest
    | [ _ ] | [] -> ()
  in
  check_gaps times;
  Alcotest.(check bool) "still made progress" true
    (Connection.delivered conn > 300)

let test_paced_still_reliable () =
  let sim = Engine.Sim.create () in
  let d =
    Net.Topology.dumbbell sim (Net.Topology.params ~tau:0.01 ~buffer:(Some 5) ())
  in
  let conn =
    Connection.create d.net
      (Config.make ~conn:1 ~src_host:d.host1 ~dst_host:d.host2
         ~pacing:(Some 0.05) ())
  in
  Engine.Sim.run sim ~until:120.;
  let gap =
    Receiver.rcv_nxt (Connection.receiver conn)
    - Sender.snd_una (Connection.sender conn)
  in
  Alcotest.(check bool) "no holes at the receiver" true (gap >= 0 && gap <= 4);
  Alcotest.(check bool) "progress under drops" true
    (Connection.delivered conn > 500)

let test_bad_pacing_rejected () =
  let raised =
    try
      ignore
        (Config.make ~conn:1 ~src_host:0 ~dst_host:1 ~pacing:(Some 0.) ()
          : Config.t);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "zero interval rejected" true raised

(* --- Period estimation -------------------------------------------------- *)

let test_period_of_square_wave () =
  let s = Trace.Series.create () in
  (* period 10 s: 5 s high, 5 s low *)
  for i = 0 to 199 do
    Trace.Series.add s ~time:(float_of_int i)
      ~value:(if i mod 10 < 5 then 10. else 0.)
  done;
  match
    Analysis.Period.estimate s ~t0:0. ~t1:200. ~dt:0.5 ~max_period:50.
  with
  | Some p -> Alcotest.(check (float 0.6)) "period 10s" 10. p
  | None -> Alcotest.fail "no period found"

let test_period_of_flat_signal () =
  let s = Trace.Series.of_list [ (0., 5.); (100., 5.) ] in
  Alcotest.(check bool) "flat signal has no period" true
    (Analysis.Period.estimate s ~t0:0. ~t1:100. ~dt:0.5 ~max_period:30. = None)

let test_autocorrelation_basics () =
  let xs = Array.init 100 (fun i -> sin (float_of_int i /. 5.)) in
  let acf = Analysis.Period.autocorrelation xs ~max_lag:40 in
  Alcotest.(check (float 1e-9)) "lag 0 is 1" 1. acf.(0);
  Array.iter
    (fun r -> Alcotest.(check bool) "normalized" true (r >= -1.01 && r <= 1.01))
    acf

(* --- Fairness ----------------------------------------------------------- *)

let test_jain_even () =
  Alcotest.(check (float 1e-9)) "even split" 1.
    (Analysis.Fairness.jain [| 5.; 5.; 5.; 5. |])

let test_jain_hog () =
  Alcotest.(check (float 1e-9)) "one hog of n" 0.25
    (Analysis.Fairness.jain [| 12.; 0.; 0.; 0. |])

let test_jain_bounds () =
  let shares = [| 3.; 1.; 7.; 2. |] in
  let j = Analysis.Fairness.jain shares in
  Alcotest.(check bool) "within (1/n, 1)" true (j > 0.25 && j < 1.)

let test_max_min () =
  Alcotest.(check (float 1e-9)) "ratio" 4. (Analysis.Fairness.max_min_ratio [| 2.; 8. |]);
  Alcotest.(check bool) "starved -> infinity" true
    (Analysis.Fairness.max_min_ratio [| 0.; 8. |] = infinity)

let prop_jain_range =
  QCheck.Test.make ~name:"jain index within [1/n, 1]" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 20) (float_bound_inclusive 100.))
    (fun xs ->
      let shares = Array.of_list xs in
      let j = Analysis.Fairness.jain shares in
      j >= (1. /. float_of_int (Array.length shares)) -. 1e-9 && j <= 1. +. 1e-9)

let suite =
  ( "variants (reno, pacing, period, fairness)",
    [
      Alcotest.test_case "reno fast recovery" `Quick
        test_reno_fast_recovery_inflation;
      Alcotest.test_case "reno timeout collapse" `Quick
        test_reno_timeout_still_collapses;
      Alcotest.test_case "tahoe has no recovery" `Quick
        test_tahoe_has_no_recovery_state;
      Alcotest.test_case "algorithm names" `Quick test_algorithm_to_string;
      Alcotest.test_case "reno end-to-end" `Quick test_reno_connection_recovers;
      Alcotest.test_case "paced spacing invariant" `Quick test_paced_spacing;
      Alcotest.test_case "paced reliability" `Quick test_paced_still_reliable;
      Alcotest.test_case "bad pacing rejected" `Quick test_bad_pacing_rejected;
      Alcotest.test_case "period of square wave" `Quick test_period_of_square_wave;
      Alcotest.test_case "period of flat signal" `Quick test_period_of_flat_signal;
      Alcotest.test_case "autocorrelation basics" `Quick
        test_autocorrelation_basics;
      Alcotest.test_case "jain even" `Quick test_jain_even;
      Alcotest.test_case "jain hog" `Quick test_jain_hog;
      Alcotest.test_case "jain bounds" `Quick test_jain_bounds;
      Alcotest.test_case "max/min ratio" `Quick test_max_min;
      QCheck_alcotest.to_alcotest prop_jain_range;
    ] )
