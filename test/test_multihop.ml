let small_spec =
  {
    Core.Multihop.num_switches = 4;
    connections = 12;
    tau = 0.01;
    buffer = Some 30;
    duration = 60.;
    warmup = 20.;
    seed = 7;
    trunk_faults = [];
  }

let test_structure () =
  let r = Core.Multihop.run small_spec in
  Alcotest.(check int) "trunk count" 3 (Array.length r.trunk_queues);
  Alcotest.(check int) "utils per trunk" 3 (Array.length r.trunk_utils);
  Alcotest.(check int) "all connections built" 12 (Array.length r.conns)

let test_hop_distribution () =
  let r = Core.Multihop.run small_spec in
  let hops = List.init 12 (Core.Multihop.hops r) in
  List.iter
    (fun h -> Alcotest.(check bool) "hops in 1..3" true (h >= 1 && h <= 3))
    hops;
  (* the classes cycle, so each of 1,2,3 appears equally often *)
  let count k = List.length (List.filter (( = ) k) hops) in
  Alcotest.(check int) "1-hop count" 4 (count 1);
  Alcotest.(check int) "2-hop count" 4 (count 2);
  Alcotest.(check int) "3-hop count" 4 (count 3)

let test_traffic_flows () =
  let r = Core.Multihop.run small_spec in
  Array.iter
    (fun c ->
      Alcotest.(check bool) "every connection progressed" true
        (Tcp.Connection.delivered c > 0))
    r.conns;
  Array.iter
    (fun (u1, u2) ->
      Alcotest.(check bool) "utils within [0,1]" true
        (u1 >= 0. && u1 <= 1. && u2 >= 0. && u2 <= 1.))
    r.trunk_utils

let test_determinism () =
  let run () =
    let r = Core.Multihop.run small_spec in
    Array.map Tcp.Connection.delivered r.conns
  in
  Alcotest.(check bool) "same seed, same outcome" true (run () = run ())

let test_gateway_variants () =
  (* The chain runs under every gateway discipline without violating the
     basic invariants. *)
  List.iter
    (fun buffer_kind ->
      let spec = { small_spec with Core.Multihop.buffer = buffer_kind } in
      let r = Core.Multihop.run spec in
      Array.iter
        (fun c ->
          Alcotest.(check bool) "progress" true (Tcp.Connection.delivered c > 0))
        r.conns)
    [ Some 10; Some 30; None ]

let test_bad_spec () =
  let raises f = try ignore (f () : Core.Multihop.result); false
    with Invalid_argument _ -> true in
  Alcotest.(check bool) "too few switches" true
    (raises (fun () ->
         Core.Multihop.run { small_spec with Core.Multihop.num_switches = 1 }));
  Alcotest.(check bool) "bad window" true
    (raises (fun () ->
         Core.Multihop.run { small_spec with Core.Multihop.warmup = 60. }))

let suite =
  ( "multihop",
    [
      Alcotest.test_case "structure" `Quick test_structure;
      Alcotest.test_case "hop distribution" `Quick test_hop_distribution;
      Alcotest.test_case "traffic flows" `Quick test_traffic_flows;
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "gateway variants" `Quick test_gateway_variants;
      Alcotest.test_case "bad spec" `Quick test_bad_spec;
    ] )
