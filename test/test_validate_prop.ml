(* Property: ANY scenario the generator can express runs with a clean
   invariant report, and the harness's on-the-wire ACK accounting agrees
   exactly with each sender's delivered count.  This is the strongest
   whole-system statement in the suite: every checker (clock,
   conservation, FIFO, sequence discipline, Tahoe rules) holds across a
   random slice of the parameter space the paper explores. *)

open QCheck

type spec = {
  tau : float;
  buffer : int option;
  n_fwd : int;
  n_rev : int;
  maxwnd : int;
  delayed_ack : bool;
  stagger : float;
}

let spec_gen =
  let open Gen in
  let* tau = oneofl [ 0.01; 0.1; 0.5; 1.0 ] in
  let* buffer = oneof [ return None; map (fun b -> Some b) (int_range 3 30) ] in
  let* n_fwd = int_range 1 3 in
  let* n_rev = int_range 0 2 in
  let* maxwnd = int_range 8 32 in
  let* delayed_ack = bool in
  let* stagger = float_range 0. 5. in
  return { tau; buffer; n_fwd; n_rev; maxwnd; delayed_ack; stagger }

let spec_print s =
  Printf.sprintf
    "{tau=%g; buffer=%s; fwd=%d; rev=%d; maxwnd=%d; delack=%b; stagger=%g}"
    s.tau
    (match s.buffer with None -> "inf" | Some b -> string_of_int b)
    s.n_fwd s.n_rev s.maxwnd s.delayed_ack s.stagger

let scenario_of_spec
    { tau; buffer; n_fwd; n_rev; maxwnd; delayed_ack; stagger = step } =
  let open Core.Scenario in
  let conns dir n = List.init n (fun _ -> conn ~maxwnd ~delayed_ack dir) in
  make ~name:"random" ~tau ~buffer
    ~conns:(stagger ~step (conns Forward n_fwd @ conns Reverse n_rev))
    ~duration:60. ~warmup:20. ~validate:true ()

let prop_random_scenarios_clean =
  Test.make ~name:"random scenarios run clean under all checkers" ~count:60
    (QCheck.make ~print:spec_print spec_gen)
    (fun s ->
      let r = Core.Runner.run (scenario_of_spec s) in
      let h =
        match r.Core.Runner.validation with
        | Some h -> h
        | None -> Test.fail_report "validation harness missing"
      in
      let report = Validate.Harness.report h in
      if not (Validate.Report.is_clean report) then
        Test.fail_report (Validate.Report.to_string report);
      (* Cross-check: what each sender believes it delivered is exactly
         the largest cumulative ACK the network handed back to it. *)
      Array.iteri
        (fun i (_, conn) ->
          let sender_view = Tcp.Connection.delivered conn in
          let wire_view = Validate.Harness.max_ack_delivered h ~conn:(i + 1) in
          if sender_view <> wire_view then
            Test.fail_reportf
              "conn %d: sender delivered %d but largest ACK on the wire is %d"
              (i + 1) sender_view wire_view)
        r.Core.Runner.conns;
      (* And the conservation ledger balances. *)
      let c = Validate.Harness.conservation h in
      Validate.Conservation.injected c
      = Validate.Conservation.delivered c
        + Validate.Conservation.dropped c
        + Validate.Conservation.in_flight c)

let suite =
  ("validate-prop", [ QCheck_alcotest.to_alcotest prop_random_scenarios_clean ])
