(* Coverage of the less-traveled corners: JSON reports, CSV logs,
   evicting disciplines through a live link, plot scaling, and the
   experiment registry. *)

open Engine
open Net

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* --- Report JSON -------------------------------------------------------- *)

let test_report_json () =
  let outcome =
    {
      Core.Report.id = "X1";
      title = "quotes \" and \\ backslashes";
      checks =
        [
          Core.Report.expect ~metric:"m" ~paper:"p" ~measured:"v" true;
          Core.Report.info ~metric:"i" ~paper:"q" ~measured:"w";
        ];
    }
  in
  let json = Core.Report.to_json outcome in
  Alcotest.(check bool) "escapes quotes" true (contains json {|quotes \"|});
  Alcotest.(check bool) "escapes backslash" true (contains json {|\\ backslashes|});
  Alcotest.(check bool) "pass true" true (contains json {|"pass":true|});
  Alcotest.(check bool) "info is null" true (contains json {|"pass":null|});
  Alcotest.(check bool) "outcome passed" true (contains json {|"passed":true|});
  let arr = Core.Report.list_to_json [ outcome; outcome ] in
  Alcotest.(check bool) "array brackets" true
    (arr.[0] = '[' && arr.[String.length arr - 1] = ']')

(* --- Export CSV variants ------------------------------------------------ *)

let read_lines path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  List.rev !lines

let rig () =
  let sim = Sim.create () in
  let link =
    Link.create sim ~id:3 ~name:"rig" ~src:0 ~dst:1 ~bandwidth:50_000.
      ~prop_delay:0. ~buffer:(Some 1)
  in
  Link.set_deliver link (fun _ -> ());
  let packet ?(kind = Packet.Data) seq =
    {
      Packet.id = seq;
      conn = 1;
      kind;
      seq;
      size = 500;
      src = 0;
      dst = 1;
      born = 0.;
      retransmit = false;
    }
  in
  (sim, link, packet)

let test_export_dep_log () =
  let sim, link, packet = rig () in
  let dep = Trace.Dep_log.attach link in
  ignore (Link.send link (packet 0) : [ `Ok | `Dropped ]);
  Sim.run sim ~until:1.;
  let path = Filename.concat (Filename.get_temp_dir_name ()) "dep-test.csv" in
  Core.Export.dep_log_csv ~path dep;
  let lines = read_lines path in
  Alcotest.(check int) "header + 1 record" 2 (List.length lines);
  Alcotest.(check string) "header" "time,conn,kind,seq" (List.hd lines);
  Alcotest.(check bool) "record fields" true
    (contains (List.nth lines 1) "1,data,0");
  Sys.remove path

let test_export_drops () =
  let sim, link, packet = rig () in
  let drops = Trace.Drop_log.create () in
  Trace.Drop_log.watch drops link;
  ignore (Link.send link (packet 0) : [ `Ok | `Dropped ]);
  ignore (Link.send link (packet 1) : [ `Ok | `Dropped ]);
  Sim.run sim ~until:1.;
  let path = Filename.concat (Filename.get_temp_dir_name ()) "drops-test.csv" in
  Core.Export.drops_csv ~path drops;
  let lines = read_lines path in
  Alcotest.(check int) "header + 1 drop" 2 (List.length lines);
  Alcotest.(check bool) "drop record" true (contains (List.nth lines 1) "data,1,3");
  Sys.remove path

(* --- Evicting disciplines through a live link --------------------------- *)

let test_link_with_random_drop () =
  let sim = Sim.create () in
  let link =
    Link.create ~discipline:(Discipline.Random_drop { seed = 2 }) sim ~id:0
      ~name:"rd" ~src:0 ~dst:1 ~bandwidth:1e6 ~prop_delay:0. ~buffer:(Some 3)
  in
  let delivered = ref 0 in
  Link.set_deliver link (fun _ -> incr delivered);
  Alcotest.(check bool) "kind accessor" true
    (Link.discipline link = Discipline.Random_drop { seed = 2 });
  let packet seq =
    {
      Packet.id = seq;
      conn = 1;
      kind = Packet.Data;
      seq;
      size = 500;
      src = 0;
      dst = 1;
      born = 0.;
      retransmit = false;
    }
  in
  for seq = 0 to 49 do
    ignore (Link.send link (packet seq) : [ `Ok | `Dropped ])
  done;
  Sim.run sim ~until:10.;
  let c = Link.counters link in
  (* accepted arrivals = delivered; arrivals split between enq and drops,
     with evictions counted in both enq (arrival) and drop (victim) *)
  Alcotest.(check int) "everything accounted" 50
    (c.Link.enq_data + c.Link.drop_data - (c.Link.enq_data - c.Link.dep_data));
  Alcotest.(check int) "accepted = delivered" c.Link.dep_data !delivered;
  Alcotest.(check bool) "drops happened" true (c.Link.drop_data > 0);
  Alcotest.(check int) "queue drained" 0 (Link.queue_length link)

let test_link_with_fair_queue () =
  let sim = Sim.create () in
  let link =
    Link.create ~discipline:Discipline.Fair_queue sim ~id:0 ~name:"fq" ~src:0
      ~dst:1 ~bandwidth:1e9 ~prop_delay:0. ~buffer:None
  in
  let order = ref [] in
  Link.set_deliver link (fun p -> order := p.Packet.conn :: !order);
  let packet conn seq =
    {
      Packet.id = (conn * 1000) + seq;
      conn;
      kind = Packet.Data;
      seq;
      size = 500;
      src = 0;
      dst = 1;
      born = 0.;
      retransmit = false;
    }
  in
  (* conn 1 dumps a burst; conn 2's packets must not wait behind all of it *)
  for seq = 0 to 3 do
    ignore (Link.send link (packet 1 seq) : [ `Ok | `Dropped ])
  done;
  for seq = 0 to 3 do
    ignore (Link.send link (packet 2 seq) : [ `Ok | `Dropped ])
  done;
  Sim.run sim ~until:1.;
  (* conn 1's first packet went straight into service; the remaining 3+4
     are served round-robin, conn 2's surplus trailing *)
  Alcotest.(check (list int)) "round robin service"
    [ 1; 1; 2; 1; 2; 1; 2; 2 ]
    (List.rev !order)

(* --- Ascii plot scaling -------------------------------------------------- *)

let test_plot_y_max_override () =
  let s = Trace.Series.of_list [ (0., 5.) ] in
  let text = Core.Ascii_plot.render ~width:20 ~height:6 ~y_max:50. s ~t0:0. ~t1:10. in
  Alcotest.(check bool) "scale shows 50" true (contains text "50.0");
  (* the value 5 sits in the bottom fifth of a 50-high plot *)
  let lines = String.split_on_char '\n' text in
  let top_row = List.hd lines in
  Alcotest.(check bool) "top row empty" false (String.contains top_row '*')

let test_plot_empty_window () =
  (* A series starting after the window: no marks, no crash. *)
  let s = Trace.Series.of_list [ (100., 5.) ] in
  let text = Core.Ascii_plot.render ~width:20 ~height:6 s ~t0:0. ~t1:10. in
  Alcotest.(check bool) "renders without marks" false (String.contains text '*')

(* --- Experiment registry -------------------------------------------------- *)

let test_registry_complete () =
  Alcotest.(check int) "eighteen experiments" 18
    (List.length Core.Experiments.registry);
  List.iter
    (fun name ->
      Alcotest.(check bool) ("find " ^ name) true
        (Core.Experiments.find name <> None))
    [ "fig2"; "fig3"; "fig45"; "fig67"; "fig8"; "fig9"; "conjecture";
      "buffers"; "delack"; "multihop"; "ablation"; "reno"; "cczoo"; "pacing";
      "gateways"; "collapse"; "rtt"; "formula" ];
  Alcotest.(check bool) "unknown name" true (Core.Experiments.find "nope" = None)

(* --- Runner gateway wiring ------------------------------------------------ *)

let test_runner_gateway_wiring () =
  let scenario =
    Core.Scenario.make ~name:"gw" ~tau:0.01 ~buffer:(Some 20)
      ~gateway:Net.Discipline.Fair_queue
      ~conns:[ Core.Scenario.conn Core.Scenario.Forward ]
      ~duration:30. ~warmup:10. ()
  in
  let r = Core.Runner.run scenario in
  Alcotest.(check bool) "bottleneck runs the requested discipline" true
    (Link.discipline r.dumbbell.Net.Topology.fwd = Discipline.Fair_queue);
  Alcotest.(check bool) "traffic flowed" true (r.delivered.(0) > 0)

let suite =
  ( "coverage",
    [
      Alcotest.test_case "report json" `Quick test_report_json;
      Alcotest.test_case "export dep log" `Quick test_export_dep_log;
      Alcotest.test_case "export drops" `Quick test_export_drops;
      Alcotest.test_case "link with random drop" `Quick
        test_link_with_random_drop;
      Alcotest.test_case "link with fair queue" `Quick test_link_with_fair_queue;
      Alcotest.test_case "plot y_max override" `Quick test_plot_y_max_override;
      Alcotest.test_case "plot empty window" `Quick test_plot_empty_window;
      Alcotest.test_case "experiment registry" `Quick test_registry_complete;
      Alcotest.test_case "runner gateway wiring" `Quick
        test_runner_gateway_wiring;
    ] )
