(* Robustness layer: run watchdogs ([Sim.run_guarded] budgets and stop
   requests, surfaced through [Runner.run]), crash bundles (write / load
   / deterministic replay), and the flush-and-close guarantee for trace
   sinks.  The sweep-pool supervision tests live in test_sweep.ml. *)

(* Schedule [count] events, each scheduling the next — a cascade long
   enough to cross several 1024-event guard windows. *)
let cascade sim ~dt ~count =
  let n = ref 0 in
  let rec step () =
    incr n;
    if !n < count then
      ignore (Engine.Sim.schedule sim ~delay:dt step : Engine.Sim.handle)
  in
  ignore (Engine.Sim.schedule sim ~delay:dt step : Engine.Sim.handle)

let stop_reason =
  Alcotest.testable
    (fun ppf r -> Format.pp_print_string ppf (Engine.Sim.stop_reason_to_string r))
    (fun a b -> a = b)

(* ---------------- Sim.run_guarded ---------------- *)

let test_guarded_completes () =
  let sim = Engine.Sim.create () in
  cascade sim ~dt:0.5 ~count:10;
  Alcotest.check stop_reason "no budget completes" Engine.Sim.Completed
    (Engine.Sim.run_guarded sim ~until:100. ());
  Alcotest.(check int) "all events ran" 10 (Engine.Sim.events_run sim);
  Alcotest.(check (float 0.)) "clock lands on the horizon" 100.
    (Engine.Sim.now sim)

let test_guarded_event_budget_and_resume () =
  let sim = Engine.Sim.create () in
  cascade sim ~dt:0.001 ~count:5000;
  (match Engine.Sim.run_guarded sim ~until:1e9 ~max_events:100 () with
   | Engine.Sim.Event_budget 100 -> ()
   | r ->
     Alcotest.failf "expected Event_budget 100, got %s"
       (Engine.Sim.stop_reason_to_string r));
  Alcotest.(check int) "exactly 100 events executed" 100
    (Engine.Sim.events_run sim);
  Alcotest.(check bool) "clock stays at the last event" true
    (Engine.Sim.now sim < 1e9);
  (* The partial state is resumable: finishing without a budget runs the
     rest of the cascade. *)
  Alcotest.check stop_reason "resume completes" Engine.Sim.Completed
    (Engine.Sim.run_guarded sim ~until:1e9 ());
  Alcotest.(check int) "cascade finished on resume" 5000
    (Engine.Sim.events_run sim)

let test_guarded_wall_budget_cadence () =
  let sim = Engine.Sim.create () in
  cascade sim ~dt:0.001 ~count:3000;
  (* Fake wall clock: +1 ms per reading.  Checks happen at ran = 0,
     1024, 2048, …; with a 1.5 ms budget the first reading (1 ms) passes
     and the second (2 ms) trips, so exactly 1024 events execute. *)
  let t = ref 0. in
  let wall_clock () =
    t := !t +. 0.001;
    !t
  in
  (match
     Engine.Sim.run_guarded sim ~until:1e9 ~max_wall:0.0015 ~wall_clock ()
   with
   | Engine.Sim.Wall_budget _ -> ()
   | r ->
     Alcotest.failf "expected Wall_budget, got %s"
       (Engine.Sim.stop_reason_to_string r));
  Alcotest.(check int) "stopped at the second guard window" 1024
    (Engine.Sim.events_run sim)

let test_guarded_stop_request () =
  let sim = Engine.Sim.create () in
  cascade sim ~dt:0.5 ~count:10;
  Alcotest.check stop_reason "stop honoured before the first event"
    Engine.Sim.Stop_requested
    (Engine.Sim.run_guarded sim ~until:100. ~stop:(fun () -> true) ());
  Alcotest.(check int) "no events executed" 0 (Engine.Sim.events_run sim)

let test_guarded_bad_horizon () =
  let sim = Engine.Sim.create () in
  cascade sim ~dt:1. ~count:3;
  ignore (Engine.Sim.run_guarded sim ~until:10. () : Engine.Sim.stop_reason);
  (match Engine.Sim.run_guarded sim ~until:5. () with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "horizon before current time accepted");
  match Engine.Sim.run_guarded sim ~until:Float.nan () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "NaN horizon accepted"

(* ---------------- Runner budgets ---------------- *)

let scenario ?(name = "robustness") ?(validate = false) () =
  Core.Scenario.make ~name ~tau:0.01 ~buffer:(Some 20)
    ~conns:
      [
        Core.Scenario.conn Core.Scenario.Forward;
        Core.Scenario.conn ~start_time:1. Core.Scenario.Reverse;
      ]
    ~duration:30. ~warmup:5. ~validate ()

let test_runner_event_budget () =
  let r =
    Core.Runner.run
      ~budget:(Core.Runner.budget ~max_events:2000 ())
      (scenario ())
  in
  (match r.Core.Runner.stop with
   | Engine.Sim.Event_budget 2000 -> ()
   | s ->
     Alcotest.failf "expected Event_budget 2000, got %s"
       (Engine.Sim.stop_reason_to_string s));
  Alcotest.(check bool) "partial window ends before the horizon" true
    (r.Core.Runner.t1 < 30.);
  Alcotest.(check bool) "no bundle without --bundle-dir" true
    (r.Core.Runner.bundle = None)

let test_runner_stop_before_warmup () =
  let r = Core.Runner.run ~stop:(fun () -> true) (scenario ()) in
  Alcotest.check stop_reason "stop requested" Engine.Sim.Stop_requested
    r.Core.Runner.stop;
  Alcotest.(check (float 0.)) "zero forward utilization" 0.
    r.Core.Runner.util_fwd;
  Alcotest.(check (float 0.)) "zero backward utilization" 0.
    r.Core.Runner.util_bwd;
  Array.iter
    (fun d -> Alcotest.(check int) "nothing delivered" 0 d)
    r.Core.Runner.delivered;
  Alcotest.(check (float 0.)) "window degenerates to warmup" 5.
    r.Core.Runner.t1

let test_runner_unbudgeted_result_unchanged () =
  (* The guarded loop must be invisible: a budget too large to trip
     yields the same summary bytes as the plain hot path. *)
  let s = scenario () in
  let plain = Sweep.Summary.to_json (Sweep.Summary.of_result ~id:"x" (Core.Runner.run s)) in
  let guarded =
    Sweep.Summary.to_json
      (Sweep.Summary.of_result ~id:"x"
         (Core.Runner.run ~budget:(Core.Runner.budget ~max_events:max_int ()) s))
  in
  Alcotest.(check string) "guarded run byte-identical" plain guarded

(* ---------------- crash bundles ---------------- *)

let rec remove_tree path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter
        (fun entry -> remove_tree (Filename.concat path entry))
        (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let test_meta_json_roundtrip () =
  let meta =
    {
      Core.Crash.scenario_name = "weird \"name\"\nwith newline";
      kind = Core.Crash.kind_exception;
      reason = "Sim.run raised Failure(\"boom\")";
      exn_text = Some "Failure(\"boom\")";
      backtrace = Some "Raised at Foo.bar in file \"foo.ml\", line 1\nCalled from Baz.qux";
      validation = None;
      events_run = 12345;
      queue_length = 7;
      sim_now = 17.25;
      max_events = Some 99999;
      max_wall = None;
    }
  in
  match Core.Crash.meta_of_json (Core.Crash.meta_to_json meta) with
  | Error msg -> Alcotest.fail ("roundtrip failed: " ^ msg)
  | Ok m ->
    Alcotest.(check string) "name" meta.scenario_name m.Core.Crash.scenario_name;
    Alcotest.(check (option string)) "exn" meta.exn_text m.exn_text;
    Alcotest.(check (option string)) "backtrace" meta.backtrace m.backtrace;
    Alcotest.(check int) "events_run" meta.events_run m.events_run;
    Alcotest.(check (float 0.)) "sim_now" meta.sim_now m.sim_now;
    Alcotest.(check (option int)) "max_events" meta.max_events m.max_events;
    Alcotest.(check (option (float 0.))) "max_wall" meta.max_wall m.max_wall

let test_bundle_write_load_replay () =
  let dir = "robustness-bundles" in
  remove_tree dir;
  Fun.protect ~finally:(fun () -> remove_tree dir) @@ fun () ->
  let s = scenario ~name:"budgeted" () in
  let r =
    Core.Runner.run
      ~budget:(Core.Runner.budget ~max_events:3000 ())
      ~bundle_dir:dir s
  in
  let path =
    match r.Core.Runner.bundle with
    | Some p -> p
    | None -> Alcotest.fail "budget stop wrote no bundle"
  in
  Alcotest.(check string) "deterministic bundle path"
    (Filename.concat dir "budgeted")
    path;
  match Core.Crash.load path with
  | Error msg -> Alcotest.fail ("load failed: " ^ msg)
  | Ok (s2, meta) ->
    Alcotest.(check string) "scenario survives Marshal" "budgeted"
      s2.Core.Scenario.name;
    Alcotest.(check string) "kind" Core.Crash.kind_event_budget
      meta.Core.Crash.kind;
    Alcotest.(check int) "events recorded" 3000 meta.Core.Crash.events_run;
    (* Replay: pinning the budget to the recorded event count reproduces
       the stop at the same point in simulated time. *)
    let r2 =
      Core.Runner.run
        ~budget:(Core.Runner.budget ~max_events:meta.Core.Crash.events_run ())
        s2
    in
    (match r2.Core.Runner.stop with
     | Engine.Sim.Event_budget n ->
       Alcotest.(check int) "replay stops at the same event count" 3000 n
     | st ->
       Alcotest.failf "replay stopped with %s"
         (Engine.Sim.stop_reason_to_string st));
    Alcotest.(check (float 0.)) "replay reaches the same simulated time"
      r.Core.Runner.t1 r2.Core.Runner.t1

let test_exception_bundle_fields () =
  let dir = "robustness-bundles-exn" in
  remove_tree dir;
  Fun.protect ~finally:(fun () -> remove_tree dir) @@ fun () ->
  let sim = Engine.Sim.create () in
  match
    Core.Crash.write ~dir ~scenario:(scenario ~name:"crashed" ()) ~sim
      ~kind:Core.Crash.kind_exception ~reason:"Sim.run raised Failure(\"boom\")"
      ~exn_text:"Failure(\"boom\")" ~backtrace:"Raised at ..." ()
  with
  | Error msg -> Alcotest.fail ("write failed: " ^ msg)
  | Ok path -> (
    match Core.Crash.load path with
    | Error msg -> Alcotest.fail ("load failed: " ^ msg)
    | Ok (_s, meta) ->
      Alcotest.(check string) "kind" Core.Crash.kind_exception
        meta.Core.Crash.kind;
      Alcotest.(check (option string)) "exception text"
        (Some "Failure(\"boom\")") meta.Core.Crash.exn_text;
      Alcotest.(check (option string)) "backtrace" (Some "Raised at ...")
        meta.Core.Crash.backtrace)

(* ---------------- flush-and-close on exception paths ---------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_with_file_sink_flushes_on_raise () =
  let path = "robustness-torn-trace.bin" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  (* Emit far more than one segment holds, then crash without flushing:
     every filled segment must reach the file whole, and the reader must
     recover every record the sink ever saw.  The tiny segment forces
     many sink handoffs so the crash lands between (or inside) records. *)
  (match
     Obs.Tracer.with_file_sink path (fun sink ->
         let w = Obs.Btrace.writer ~segment:256 sink in
         for i = 1 to 500 do
           Obs.Btrace.event w ~time:(float_of_int i)
             (Obs.Event.Cwnd
                { conn = 1; cwnd = float_of_int i; ssthresh = 1. })
         done;
         failwith "mid-run crash")
   with
  | () -> Alcotest.fail "expected the crash to propagate"
  | exception Failure _ -> ());
  match Obs.Btrace.read (read_file path) with
  | Error msg -> Alcotest.fail ("trace unreadable: " ^ msg)
  | Ok { Obs.Btrace.items; _ } ->
    let n = List.length items in
    Alcotest.(check bool)
      (Printf.sprintf "most records survived the crash (got %d)" n)
      true
      (n > 400 && n <= 500);
    (* What survived is an exact prefix: cwnd values 1..n in order. *)
    List.iteri
      (fun i item ->
        match item with
        | Obs.Btrace.Event (t, Obs.Btrace.Cwnd { cwnd; _ }) ->
          Alcotest.(check (float 0.))
            "recovered records form the emitted prefix"
            (float_of_int (i + 1))
            cwnd;
          Alcotest.(check (float 0.)) "times intact" cwnd t
        | _ -> Alcotest.fail "unexpected record kind")
      items

let test_traced_run_crash_leaves_parseable_prefix () =
  let path = "robustness-run-trace.bin" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  (match
     Obs.Tracer.with_file_sink path (fun sink ->
         let setup = Obs.Probe.setup ~btrace:sink () in
         let _r = Core.Runner.run ~obs:setup (scenario ()) in
         failwith "crash after the traced run")
   with
  | () -> Alcotest.fail "expected the crash to propagate"
  | exception Failure _ -> ());
  (* The runner finished the probe before the crash, so the file decodes
     completely and its JSONL export validates. *)
  match Obs.Btrace.read (read_file path) with
  | Error msg -> Alcotest.fail ("trace unreadable: " ^ msg)
  | Ok { Obs.Btrace.items; torn; _ } ->
    Alcotest.(check (option string)) "no torn tail after Probe.finish" None
      torn;
    let buf = Buffer.create 4096 in
    Obs.Btrace.export_jsonl items (Buffer.add_string buf);
    (match Obs.Json.validate_jsonl ~key:"t" (Buffer.contents buf) with
     | Ok n ->
       Alcotest.(check bool) "trace non-empty and parseable" true (n > 0)
     | Error msg -> Alcotest.fail ("exported trace: " ^ msg))

let suite =
  ( "robustness",
    [
      Alcotest.test_case "guarded run completes" `Quick test_guarded_completes;
      Alcotest.test_case "event budget stops and resumes" `Quick
        test_guarded_event_budget_and_resume;
      Alcotest.test_case "wall budget poll cadence" `Quick
        test_guarded_wall_budget_cadence;
      Alcotest.test_case "stop request" `Quick test_guarded_stop_request;
      Alcotest.test_case "bad horizons rejected" `Quick
        test_guarded_bad_horizon;
      Alcotest.test_case "runner event budget" `Quick test_runner_event_budget;
      Alcotest.test_case "runner stop before warmup" `Quick
        test_runner_stop_before_warmup;
      Alcotest.test_case "untripped budget is invisible" `Quick
        test_runner_unbudgeted_result_unchanged;
      Alcotest.test_case "meta json roundtrip" `Quick test_meta_json_roundtrip;
      Alcotest.test_case "bundle write, load, replay" `Quick
        test_bundle_write_load_replay;
      Alcotest.test_case "exception bundle fields" `Quick
        test_exception_bundle_fields;
      Alcotest.test_case "file sink flushes on raise" `Quick
        test_with_file_sink_flushes_on_raise;
      Alcotest.test_case "crashed traced run parseable" `Quick
        test_traced_run_crash_leaves_parseable_prefix;
    ] )
