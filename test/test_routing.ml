open Engine
open Net

let test_dumbbell_routes () =
  let sim = Sim.create () in
  let p = Topology.params ~tau:0.01 ~buffer:(Some 20) () in
  let d = Topology.dumbbell sim p in
  Alcotest.(check (option int)) "h1 -> h2 hops" (Some 3)
    (Routing.path_length d.net ~src:d.host1 ~dst:d.host2);
  Alcotest.(check (option int)) "h2 -> h1 hops" (Some 3)
    (Routing.path_length d.net ~src:d.host2 ~dst:d.host1);
  match Routing.path d.net ~src:d.host1 ~dst:d.host2 with
  | Some nodes ->
    Alcotest.(check (list int)) "node sequence"
      [ d.host1; d.switch1; d.switch2; d.host2 ]
      nodes
  | None -> Alcotest.fail "no path"

let test_chain_routes () =
  let sim = Sim.create () in
  let p = Topology.params ~tau:0.01 ~buffer:(Some 20) () in
  let c = Topology.chain sim p ~num_switches:4 in
  (* host i to host j crosses |i-j| trunks plus the two host links. *)
  Alcotest.(check (option int)) "adjacent hosts" (Some 3)
    (Routing.path_length c.cnet ~src:c.hosts.(0) ~dst:c.hosts.(1));
  Alcotest.(check (option int)) "across the chain" (Some 5)
    (Routing.path_length c.cnet ~src:c.hosts.(0) ~dst:c.hosts.(3));
  Alcotest.(check (option int)) "reverse" (Some 5)
    (Routing.path_length c.cnet ~src:c.hosts.(3) ~dst:c.hosts.(0))

let test_route_through_bottleneck () =
  let sim = Sim.create () in
  let p = Topology.params ~tau:0.01 ~buffer:(Some 20) () in
  let d = Topology.dumbbell sim p in
  match Network.route d.net ~node:d.switch1 ~dst:d.host2 with
  | Some link ->
    Alcotest.(check int) "switch1 routes to host2 over the bottleneck"
      (Link.id d.fwd) (Link.id link)
  | None -> Alcotest.fail "missing route"

let test_no_route_to_nowhere () =
  (* A host with no links at all is unreachable. *)
  let sim = Sim.create () in
  let net = Network.create sim in
  let h1 = Network.add_host net ~name:"h1" ~proc_delay:0. in
  let h2 = Network.add_host net ~name:"h2" ~proc_delay:0. in
  Routing.compute net;
  Alcotest.(check (option int)) "unreachable" None
    (Routing.path_length net ~src:h1 ~dst:h2)

let suite =
  ( "routing",
    [
      Alcotest.test_case "dumbbell routes" `Quick test_dumbbell_routes;
      Alcotest.test_case "chain routes" `Quick test_chain_routes;
      Alcotest.test_case "route through bottleneck" `Quick
        test_route_through_bottleneck;
      Alcotest.test_case "no route" `Quick test_no_route_to_nowhere;
    ] )
