(* lib/sweep + lib/sweep/pool: the parallel fan-out must be invisible in
   the results — same values, same order, same bytes — for any backend,
   any job count, and for any pattern of worker deaths (the fork
   supervision layer salvages, retries and finally falls back to
   in-process execution).  The supervision-specific tests pin
   [~backend:Fork]: chaos knobs, deadlines and respawns only exist
   there.  Domain-backend coverage lives in test_domain_safety.ml. *)

(* The pool reads the NETSIM_CHAOS_* knobs per map call, so tests can
   inject worker faults with putenv.  Always reset to "" (putenv cannot
   unset), which the pool treats as absent. *)
let with_env pairs f =
  Fun.protect
    ~finally:(fun () -> List.iter (fun (k, _) -> Unix.putenv k "") pairs)
    (fun () ->
      List.iter (fun (k, v) -> Unix.putenv k v) pairs;
      f ())

(* ---------------- Sweep_pool ---------------- *)

(* Seq and Fork only: on OCaml 5 the runtime permanently forbids
   Unix.fork once any domain has ever been spawned in the process, so
   every fork-backend test in this binary must run before the first
   domain-backend test.  This suite therefore stays domain-free; the
   Domain equivalents of these checks live in test_domain_safety.ml,
   registered after this suite in test_main.ml. *)
let backends = [ ("seq", Sweep_pool.Seq); ("fork", Sweep_pool.Fork) ]

let test_pool_matches_sequential () =
  let xs = List.init 17 (fun i -> i) in
  let f x = (x, x * x) in
  List.iter
    (fun (label, backend) ->
      Alcotest.(check (list (pair int int)))
        (label ^ " jobs=3 equals in-process map")
        (List.map f xs)
        (Sweep_pool.map ~backend ~jobs:3 f xs))
    backends

let test_pool_edge_sizes () =
  List.iter
    (fun (label, backend) ->
      Alcotest.(check (list int))
        (label ^ ": empty input") []
        (Sweep_pool.map ~backend ~jobs:4 (fun x -> x) []);
      Alcotest.(check (list int))
        (label ^ ": fewer items than jobs")
        [ 2; 4 ]
        (Sweep_pool.map ~backend ~jobs:8 (fun x -> 2 * x) [ 1; 2 ]);
      Alcotest.(check (list int))
        (label ^ ": jobs=1 stays in-process")
        [ 7 ]
        (Sweep_pool.map ~backend ~jobs:1 (fun x -> 7 * x) [ 1 ]))
    backends

let test_pool_worker_error () =
  List.iter
    (fun (label, backend) ->
      match
        Sweep_pool.map ~backend ~jobs:2
          (fun x -> if x = 3 then failwith "boom" else x)
          [ 1; 2; 3; 4 ]
      with
      | _ -> Alcotest.fail (label ^ ": expected Sweep_pool.Error")
      | exception Sweep_pool.Error e ->
        Alcotest.(check int)
          (label ^ ": one failed point")
          1
          (List.length e.point_failures);
        let pf = List.hd e.point_failures in
        Alcotest.(check int)
          (label ^ ": failing point index")
          2 pf.Sweep_pool.point;
        Alcotest.(check string)
          (label ^ ": exception text carried back")
          "Failure(\"boom\")" pf.Sweep_pool.exn_text;
        Alcotest.(check (list Alcotest.reject))
          (label ^ ": a raising task is not a worker failure")
          [] e.worker_failures)
    backends

(* A SIGKILLed worker loses only its unfinished points: everything it
   already streamed back is salvaged, the rest is retried elsewhere. *)
let test_pool_chaos_kill_salvages () =
  with_env [ ("NETSIM_CHAOS_KILL_AFTER", "2") ] @@ fun () ->
  let xs = List.init 12 (fun i -> i) in
  let failures = ref [] in
  let got =
    Sweep_pool.map ~backend:Sweep_pool.Fork ~jobs:3 ~backoff:0.01
      ~on_failure:(fun f -> failures := f :: !failures)
      (fun x -> x * x) xs
  in
  Alcotest.(check (list int))
    "results survive every worker being killed"
    (List.map (fun x -> x * x) xs)
    got;
  Alcotest.(check int) "all three workers reported" 3 (List.length !failures);
  List.iter
    (fun (f : Sweep_pool.worker_failure) ->
      (match f.cause with
       | Sweep_pool.Signaled s when s = Sys.sigkill -> ()
       | c ->
         Alcotest.fail ("unexpected cause: " ^ Sweep_pool.cause_to_string c));
      Alcotest.(check int) "two frames salvaged before the kill" 2
        (List.length f.salvaged);
      Alcotest.(check bool) "lost points identified" true (f.lost <> []))
    !failures

(* A torn frame (EOF mid-payload) is classified per worker as a corrupt
   stream, with the affected points requeued. *)
let test_pool_chaos_truncation_classified () =
  with_env [ ("NETSIM_CHAOS_TRUNCATE_AFTER", "1") ] @@ fun () ->
  let xs = List.init 6 (fun i -> i) in
  let outcome =
    Sweep_pool.map_collect ~backend:Sweep_pool.Fork ~jobs:2 ~backoff:0.01 (fun x -> x + 10)
      xs
  in
  Alcotest.(check bool) "not interrupted" false outcome.interrupted;
  Array.iteri
    (fun i r ->
      Alcotest.(check (option int))
        (Printf.sprintf "point %d recovered" i)
        (Some (i + 10)) r)
    outcome.results;
  Alcotest.(check int) "both workers reported" 2
    (List.length outcome.worker_failures);
  List.iter
    (fun (f : Sweep_pool.worker_failure) ->
      match f.cause with
      | Sweep_pool.Corrupt_stream _ ->
        Alcotest.(check int) "one frame salvaged before the tear" 1
          (List.length f.salvaged);
        Alcotest.(check bool) "lost points identified" true (f.lost <> [])
      | c ->
        Alcotest.fail ("unexpected cause: " ^ Sweep_pool.cause_to_string c))
    outcome.worker_failures

(* When every respawn dies too, the retry budget runs out and the pool
   degrades to in-process sequential execution of the missing points. *)
let test_pool_retry_exhaustion_falls_back () =
  with_env
    [ ("NETSIM_CHAOS_KILL_AFTER", "0"); ("NETSIM_CHAOS_ALL_ATTEMPTS", "1") ]
  @@ fun () ->
  let xs = [ 1; 2; 3; 4; 5 ] in
  let failures = ref 0 in
  let got =
    Sweep_pool.map ~backend:Sweep_pool.Fork ~jobs:2 ~max_retries:1 ~backoff:0.01
      ~on_failure:(fun _ -> incr failures)
      (fun x -> 3 * x)
      xs
  in
  Alcotest.(check (list int)) "sequential fallback completes the sweep"
    (List.map (fun x -> 3 * x) xs)
    got;
  Alcotest.(check bool) "initial attempts and retries all failed" true
    (!failures >= 2)

(* Hung workers (no output before the deadline) are killed and their
   points recovered like any other failure. *)
let test_pool_deadline_kills_hung_worker () =
  let causes = ref [] in
  let outcome =
    Sweep_pool.map_collect ~backend:Sweep_pool.Fork ~jobs:2 ~max_retries:0
      ~deadline:0.05
      ~on_failure:(fun f -> causes := f.Sweep_pool.cause :: !causes)
      (fun x ->
        Unix.sleepf 0.5;
        x)
      [ 0; 1 ]
  in
  Alcotest.(check bool) "deadline kills reported" true
    (List.exists
       (function Sweep_pool.Timed_out _ -> true | _ -> false)
       !causes);
  Array.iteri
    (fun i r ->
      Alcotest.(check (option int))
        (Printf.sprintf "point %d recovered in-process" i)
        (Some i) r)
    outcome.results

(* Cooperative stop: map_collect returns a partial outcome flagged
   interrupted instead of finishing the grid. *)
let test_pool_stop_interrupts () =
  let outcome =
    Sweep_pool.map_collect ~backend:Sweep_pool.Fork ~jobs:2
      ~stop:(fun () -> true)
      (fun x -> x)
      (List.init 8 (fun i -> i))
  in
  Alcotest.(check bool) "interrupted" true outcome.interrupted;
  Alcotest.(check (list Alcotest.reject)) "no spurious point failures" []
    outcome.point_failures;
  Alcotest.(check (list Alcotest.reject)) "no spurious worker failures" []
    outcome.worker_failures

(* The headline robustness property: for random kill points and job
   counts, a sweep with SIGKILLed workers returns exactly the
   sequential result. *)
let prop_chaos_determinism =
  QCheck.Test.make ~name:"randomly killed workers never change results"
    ~count:12
    QCheck.(pair (int_range 0 4) (int_range 2 4))
    (fun (kill_after, jobs) ->
      with_env [ ("NETSIM_CHAOS_KILL_AFTER", string_of_int kill_after) ]
      @@ fun () ->
      let xs = List.init 11 (fun i -> i) in
      let f x = (x, (2 * x) + 1) in
      Sweep_pool.map ~backend:Sweep_pool.Fork ~jobs ~backoff:0.01 f xs
      = List.map f xs)

(* ---------------- Driver determinism ---------------- *)

let test_driver_jobs_identical () =
  let points = Sweep.Grids.smoke.points ~quick:true in
  let j1 = Sweep.Driver.to_json (Sweep.Driver.run ~jobs:1 points) in
  let j2 =
    Sweep.Driver.to_json
      (Sweep.Driver.run ~backend:Sweep_pool.Fork ~jobs:2 points)
  in
  Alcotest.(check string) "jobs 1 vs 2 byte-identical JSON" j1 j2;
  let j2_chaos =
    with_env [ ("NETSIM_CHAOS_KILL_AFTER", "1") ] (fun () ->
        Sweep.Driver.to_json (Sweep.Driver.run ~backend:Sweep_pool.Fork ~jobs:2 ~backoff:0.01 points))
  in
  Alcotest.(check string) "jobs 2 with killed workers byte-identical" j1
    j2_chaos

(* ---------------- Summary JSON ---------------- *)

let test_json_special_floats () =
  let s =
    {
      Sweep.Summary.id = "x\"y";
      params = [ ("a", 1.5) ];
      cc = "tahoe";
      util_fwd = Float.nan;
      util_bwd = Float.infinity;
      drops_window = 0;
      drops_total = 0;
      delivered = [ 1; 2 ];
      phase = "in-phase";
      phase_corr = 0.25;
      epoch_count = 0;
      mean_drops_per_epoch = None;
      single_loser = Some 0.5;
      q1_max = 0.;
      q2_max = 0.;
      effective_pipe = None;
      jain = 0.9;
      fct_p50 = None;
      fct_p99 = None;
      metrics = [ ("net.injected", 3.) ];
    }
  in
  let json = Sweep.Summary.to_json s in
  let contains needle =
    let n = String.length needle and h = String.length json in
    let rec go i = i + n <= h && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "NaN encodes as null" true
    (contains "\"util_fwd\":null");
  Alcotest.(check bool) "infinity encodes as null" true
    (contains "\"util_bwd\":null");
  Alcotest.(check bool) "quote escaped in id" true (contains "x\\\"y");
  Alcotest.(check bool) "None option is null" true
    (contains "\"effective_pipe\":null");
  Alcotest.(check bool) "jain encoded" true (contains "\"jain\":0.9");
  Alcotest.(check bool) "fct columns null without completions" true
    (contains "\"fct_p50\":null,\"fct_p99\":null")

(* ---------------- Grids registry ---------------- *)

let test_grids_registry () =
  Alcotest.(check bool) "registry non-empty" true (Sweep.Grids.all <> []);
  List.iter
    (fun (g : Sweep.Grids.spec) ->
      (match Sweep.Grids.find g.name with
       | Some found ->
         Alcotest.(check string) ("find " ^ g.name) g.name found.name
       | None -> Alcotest.fail ("find " ^ g.name ^ " returned None"));
      let pts = g.points ~quick:true in
      Alcotest.(check bool) (g.name ^ " has points") true (pts <> []);
      let ids = List.map (fun (p : Sweep.Driver.point) -> p.id) pts in
      Alcotest.(check int)
        (g.name ^ " ids unique")
        (List.length ids)
        (List.length (List.sort_uniq compare ids)))
    Sweep.Grids.all;
  Alcotest.(check bool) "unknown grid" true (Sweep.Grids.find "nope" = None)

let suite =
  ( "sweep",
    [
      Alcotest.test_case "pool matches sequential" `Quick
        test_pool_matches_sequential;
      Alcotest.test_case "pool edge sizes" `Quick test_pool_edge_sizes;
      Alcotest.test_case "pool worker error" `Quick test_pool_worker_error;
      Alcotest.test_case "pool chaos kill salvages" `Quick
        test_pool_chaos_kill_salvages;
      Alcotest.test_case "pool truncation classified" `Quick
        test_pool_chaos_truncation_classified;
      Alcotest.test_case "pool retry exhaustion falls back" `Quick
        test_pool_retry_exhaustion_falls_back;
      Alcotest.test_case "pool deadline kills hung worker" `Quick
        test_pool_deadline_kills_hung_worker;
      Alcotest.test_case "pool cooperative stop" `Quick
        test_pool_stop_interrupts;
      QCheck_alcotest.to_alcotest prop_chaos_determinism;
      Alcotest.test_case "driver jobs 1 vs 2 identical" `Quick
        test_driver_jobs_identical;
      Alcotest.test_case "json special floats" `Quick test_json_special_floats;
      Alcotest.test_case "grids registry" `Quick test_grids_registry;
    ] )
