(* lib/sweep + lib/sweep/pool: the parallel fan-out must be invisible in
   the results — same values, same order, same bytes — for any job
   count. *)

(* ---------------- Sweep_pool ---------------- *)

let test_pool_matches_sequential () =
  let xs = List.init 17 (fun i -> i) in
  let f x = (x, x * x) in
  Alcotest.(check (list (pair int int)))
    "jobs=3 equals in-process map" (List.map f xs)
    (Sweep_pool.map ~jobs:3 f xs)

let test_pool_edge_sizes () =
  Alcotest.(check (list int))
    "empty input" []
    (Sweep_pool.map ~jobs:4 (fun x -> x) []);
  Alcotest.(check (list int))
    "fewer items than jobs" [ 2; 4 ]
    (Sweep_pool.map ~jobs:8 (fun x -> 2 * x) [ 1; 2 ]);
  Alcotest.(check (list int))
    "jobs=1 stays in-process" [ 7 ]
    (Sweep_pool.map ~jobs:1 (fun x -> 7 * x) [ 1 ])

let test_pool_worker_error () =
  match
    Sweep_pool.map ~jobs:2
      (fun x -> if x = 3 then failwith "boom" else x)
      [ 1; 2; 3; 4 ]
  with
  | _ -> Alcotest.fail "expected the worker failure to propagate"
  | exception Failure msg ->
    let has_prefix =
      String.length msg >= 15 && String.sub msg 0 15 = "Sweep_pool.map:"
    in
    Alcotest.(check bool) ("failure propagated: " ^ msg) true has_prefix

(* ---------------- Driver determinism ---------------- *)

let test_driver_jobs_identical () =
  let points = Sweep.Grids.smoke.points ~quick:true in
  let j1 = Sweep.Driver.to_json (Sweep.Driver.run ~jobs:1 points) in
  let j2 = Sweep.Driver.to_json (Sweep.Driver.run ~jobs:2 points) in
  Alcotest.(check string) "jobs 1 vs 2 byte-identical JSON" j1 j2

(* ---------------- Summary JSON ---------------- *)

let test_json_special_floats () =
  let s =
    {
      Sweep.Summary.id = "x\"y";
      params = [ ("a", 1.5) ];
      cc = "tahoe";
      util_fwd = Float.nan;
      util_bwd = Float.infinity;
      drops_window = 0;
      drops_total = 0;
      delivered = [ 1; 2 ];
      phase = "in-phase";
      phase_corr = 0.25;
      epoch_count = 0;
      mean_drops_per_epoch = None;
      single_loser = Some 0.5;
      q1_max = 0.;
      q2_max = 0.;
      effective_pipe = None;
      metrics = [ ("net.injected", 3.) ];
    }
  in
  let json = Sweep.Summary.to_json s in
  let contains needle =
    let n = String.length needle and h = String.length json in
    let rec go i = i + n <= h && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "NaN encodes as null" true
    (contains "\"util_fwd\":null");
  Alcotest.(check bool) "infinity encodes as null" true
    (contains "\"util_bwd\":null");
  Alcotest.(check bool) "quote escaped in id" true (contains "x\\\"y");
  Alcotest.(check bool) "None option is null" true
    (contains "\"effective_pipe\":null")

(* ---------------- Grids registry ---------------- *)

let test_grids_registry () =
  Alcotest.(check bool) "registry non-empty" true (Sweep.Grids.all <> []);
  List.iter
    (fun (g : Sweep.Grids.spec) ->
      (match Sweep.Grids.find g.name with
       | Some found ->
         Alcotest.(check string) ("find " ^ g.name) g.name found.name
       | None -> Alcotest.fail ("find " ^ g.name ^ " returned None"));
      let pts = g.points ~quick:true in
      Alcotest.(check bool) (g.name ^ " has points") true (pts <> []);
      let ids = List.map (fun (p : Sweep.Driver.point) -> p.id) pts in
      Alcotest.(check int)
        (g.name ^ " ids unique")
        (List.length ids)
        (List.length (List.sort_uniq compare ids)))
    Sweep.Grids.all;
  Alcotest.(check bool) "unknown grid" true (Sweep.Grids.find "nope" = None)

let suite =
  ( "sweep",
    [
      Alcotest.test_case "pool matches sequential" `Quick
        test_pool_matches_sequential;
      Alcotest.test_case "pool edge sizes" `Quick test_pool_edge_sizes;
      Alcotest.test_case "pool worker error" `Quick test_pool_worker_error;
      Alcotest.test_case "driver jobs 1 vs 2 identical" `Quick
        test_driver_jobs_identical;
      Alcotest.test_case "json special floats" `Quick test_json_special_floats;
      Alcotest.test_case "grids registry" `Quick test_grids_registry;
    ] )
