(* Cross-variant conformance battery: one parameterized suite run over
   EVERY entry in the Cc registry, so a new zoo variant inherits the
   whole battery just by registering itself.

   The invariants are the ones the sender and the validate harness rely
   on: the usable window stays in [1, maxwnd], ssthresh never drops
   below 2, a loss never leaves the (settled) window larger than before,
   slow-start exit is monotone under pure ACK growth, and no event
   sequence raises. *)

open Tcp

let () = Cc_zoo.ensure_registered ()
let all_names = Cc.names ()

(* ---------------- random event sequences ---------------- *)

type event = Ack | Dup_ack | Loss_fast | Loss_timeout | Rtt of float | Send

let gen_event =
  QCheck.Gen.(
    frequency
      [
        (6, return Ack);
        (2, return Dup_ack);
        (1, return Loss_fast);
        (1, return Loss_timeout);
        (2, map (fun r -> Rtt r) (float_range 0.01 2.));
        (2, return Send);
      ])

let pp_event = function
  | Ack -> "ack"
  | Dup_ack -> "dup"
  | Loss_fast -> "fast-rexmt"
  | Loss_timeout -> "timeout"
  | Rtt r -> Printf.sprintf "rtt %.3f" r
  | Send -> "send"

let arb_events =
  QCheck.make
    ~print:(fun l -> String.concat "," (List.map pp_event l))
    QCheck.Gen.(list_size (int_range 0 80) gen_event)

(* Drive one event the way the sender would: ACKs advance a cumulative
   counter, losses pass the current highest-sent. *)
let apply c ~ackno ~highest event =
  match event with
  | Ack ->
    incr ackno;
    if !ackno > !highest then highest := !ackno;
    ignore (Cc.on_ack c ~ackno:!ackno ~newly:1 : bool)
  | Dup_ack -> Cc.on_dup_ack c
  | Loss_fast -> Cc.on_loss c Cc.Fast_retransmit ~highest_sent:!highest
  | Loss_timeout -> Cc.on_loss c Cc.Timeout ~highest_sent:!highest
  | Rtt rtt -> Cc.on_rtt_sample c ~rtt
  | Send ->
    incr highest;
    Cc.on_send c ~seq:!highest ~retransmit:false

let healthy name c ~maxwnd =
  let w = Cc.window c in
  if w < 1 then QCheck.Test.fail_reportf "%s: window %d < 1" name w;
  if w > maxwnd then
    QCheck.Test.fail_reportf "%s: window %d > maxwnd %d" name w maxwnd;
  if Cc.ssthresh c < 2. then
    QCheck.Test.fail_reportf "%s: ssthresh %g < 2" name (Cc.ssthresh c);
  if Float.is_nan (Cc.cwnd c) then
    QCheck.Test.fail_reportf "%s: cwnd is NaN" name;
  true

(* A controller still in recovery after a loss settles once an ACK
   covers everything sent (recovery completes); only then is the
   window comparable to its pre-loss value. *)
let settle c ~ackno ~highest =
  let guard = ref 0 in
  while Cc.in_recovery c && !guard < 10 do
    incr guard;
    ackno := !highest + 1;
    highest := max !highest !ackno;
    ignore (Cc.on_ack c ~ackno:!ackno ~newly:1 : bool)
  done

(* ---------------- per-entry tests ---------------- *)

let test_instantiates name () =
  List.iter
    (fun maxwnd ->
      let c = Cc.make (Cc.spec name) ~maxwnd in
      Alcotest.(check string) "registry name round-trips" name (Cc.name c);
      Alcotest.(check int) "maxwnd recorded" maxwnd (Cc.maxwnd c);
      ignore (healthy name c ~maxwnd : bool))
    [ 2; 8; 1000 ]

let test_rejects_unknown_param name () =
  Alcotest.check_raises "unknown parameter key rejected"
    (Invalid_argument
       (Printf.sprintf "%s: unknown parameter %S (allowed: %s)" name
          "no-such-param"
          (match name with
           | "aimd" -> "a, b"
           | "compound" -> "gamma, dalpha, zeta"
           | "oracle" -> "rate, w0"
           | "fixed" -> "w"
           | _ -> "none")))
    (fun () ->
      ignore
        (Cc.make
           (Cc.spec ~params:[ ("no-such-param", 1.) ] name)
           ~maxwnd:100
          : Cc.t))

let prop_window_bounds name =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: bounds hold under random events" name)
    ~count:100 arb_events
    (fun events ->
      List.for_all
        (fun maxwnd ->
          let c = Cc.make (Cc.spec name) ~maxwnd in
          let ackno = ref 0 and highest = ref 0 in
          List.for_all
            (fun e ->
              apply c ~ackno ~highest e;
              healthy name c ~maxwnd)
            events)
        [ 2; 7; 1000 ])

let prop_timeout_never_grows name =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: timeout never increases the window" name)
    ~count:100 arb_events
    (fun events ->
      let maxwnd = 50 in
      let c = Cc.make (Cc.spec name) ~maxwnd in
      let ackno = ref 0 and highest = ref 0 in
      List.iter (apply c ~ackno ~highest) events;
      let before = Cc.window c in
      Cc.on_loss c Cc.Timeout ~highest_sent:!highest;
      let after = Cc.window c in
      if after > before then
        QCheck.Test.fail_reportf "%s: window %d -> %d across a timeout" name
          before after;
      true)

let prop_loss_settles_no_higher name =
  (* Fast retransmit may transiently inflate (Reno's +3), but once
     recovery completes the window must not exceed its pre-loss value —
     modulo the BSD floor: ssthresh is clamped up to 2, so a window of 1
     may legitimately settle at 2. *)
  QCheck.Test.make
    ~name:
      (Printf.sprintf "%s: fast-retransmit loss settles no higher" name)
    ~count:100 arb_events
    (fun events ->
      let maxwnd = 50 in
      let c = Cc.make (Cc.spec name) ~maxwnd in
      let ackno = ref 0 and highest = ref 0 in
      List.iter (apply c ~ackno ~highest) events;
      settle c ~ackno ~highest;
      let before = Cc.window c in
      Cc.on_loss c Cc.Fast_retransmit ~highest_sent:!highest;
      settle c ~ackno ~highest;
      let after = Cc.window c in
      if after > max before 2 then
        QCheck.Test.fail_reportf
          "%s: window %d settled at %d after a fast-retransmit loss" name
          before after;
      true)

let prop_slow_start_exit_monotone name =
  (* Under pure ACK growth, once a controller has left slow start it must
     not re-enter it (re-entry requires a loss).  Controllers that never
     leave (fixed never reaches ssthresh) pass vacuously. *)
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: slow-start exit is monotone" name)
    ~count:50
    QCheck.(int_range 2 60)
    (fun maxwnd ->
      let c = Cc.make (Cc.spec name) ~maxwnd in
      let ackno = ref 0 and exited = ref false in
      for _ = 1 to 3 * maxwnd do
        incr ackno;
        ignore (Cc.on_ack c ~ackno:!ackno ~newly:1 : bool);
        if not (Cc.in_slow_start c) then exited := true
        else if !exited then
          QCheck.Test.fail_reportf "%s: re-entered slow start on an ACK" name
      done;
      true)

let test_reset_restores name () =
  let c = Cc.make (Cc.spec name) ~maxwnd:40 in
  let w0 = Cc.window c and cw0 = Cc.cwnd c and ss0 = Cc.ssthresh c in
  let ackno = ref 0 and highest = ref 0 in
  List.iter
    (apply c ~ackno ~highest)
    [ Ack; Ack; Ack; Rtt 0.3; Send; Loss_fast; Dup_ack; Ack; Loss_timeout;
      Ack; Ack ];
  Cc.reset c;
  Alcotest.(check int) "window restored" w0 (Cc.window c);
  Alcotest.(check (float 0.)) "cwnd restored" cw0 (Cc.cwnd c);
  Alcotest.(check (float 0.)) "ssthresh restored" ss0 (Cc.ssthresh c);
  Alcotest.(check bool) "not recovering" false (Cc.in_recovery c)

let battery name =
  [
    Alcotest.test_case
      (Printf.sprintf "%s: instantiates with defaults" name)
      `Quick (test_instantiates name);
    Alcotest.test_case
      (Printf.sprintf "%s: rejects unknown parameters" name)
      `Quick (test_rejects_unknown_param name);
    Alcotest.test_case
      (Printf.sprintf "%s: reset restores the initial state" name)
      `Quick (test_reset_restores name);
    QCheck_alcotest.to_alcotest (prop_window_bounds name);
    QCheck_alcotest.to_alcotest (prop_timeout_never_grows name);
    QCheck_alcotest.to_alcotest (prop_loss_settles_no_higher name);
    QCheck_alcotest.to_alcotest (prop_slow_start_exit_monotone name);
  ]

(* ---------------- registry + spec parsing ---------------- *)

let test_registry_populated () =
  Alcotest.(check bool)
    (Printf.sprintf "at least 6 variants (got %d)" (List.length all_names))
    true
    (List.length all_names >= 6);
  List.iter
    (fun required ->
      Alcotest.(check bool) ("registered: " ^ required) true
        (List.mem required all_names))
    [ "tahoe"; "tahoe-unmodified"; "reno"; "newreno"; "aimd"; "compound";
      "oracle"; "fixed" ];
  List.iter
    (fun (id, describe) ->
      Alcotest.(check bool) (id ^ " has a description") true (describe <> ""))
    (Cc.zoo ());
  (* adaptive is a subset of the registry, minus the non-adaptive pair *)
  List.iter
    (fun name ->
      Alcotest.(check bool) ("adaptive is registered: " ^ name) true
        (List.mem name all_names))
    Cc_zoo.adaptive;
  Alcotest.(check bool) "fixed is not adaptive" false
    (List.mem "fixed" Cc_zoo.adaptive);
  Alcotest.(check bool) "oracle is not adaptive" false
    (List.mem "oracle" Cc_zoo.adaptive)

let test_registry_rejects () =
  (match Cc.find "tahoe" with
   | Some m ->
     Alcotest.check_raises "duplicate registration"
       (Invalid_argument "Cc.register: duplicate entry \"tahoe\"") (fun () ->
         Cc.register m)
   | None -> Alcotest.fail "tahoe not registered");
  let raised =
    try
      ignore (Cc.make (Cc.spec "no-such-cc") ~maxwnd:100 : Cc.t);
      false
    with Invalid_argument msg ->
      (* the error must list the registered names for discoverability *)
      let contains needle =
        let n = String.length needle and h = String.length msg in
        let rec go i =
          i + n <= h && (String.sub msg i n = needle || go (i + 1))
        in
        go 0
      in
      contains "no-such-cc" && contains "newreno"
  in
  Alcotest.(check bool) "unknown name raises with the registry listing" true
    raised;
  Alcotest.check_raises "maxwnd < 2"
    (Invalid_argument "Cc.instantiate: maxwnd must be >= 2") (fun () ->
      ignore (Cc.make (Cc.spec "tahoe") ~maxwnd:1 : Cc.t))

let spec_testable =
  Alcotest.testable
    (fun ppf s -> Format.pp_print_string ppf (Cc.spec_to_string s))
    (fun a b ->
      a.Cc.name = b.Cc.name
      && List.length a.params = List.length b.params
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> k1 = k2 && Float.equal v1 v2)
           a.params b.params)

let test_spec_parsing () =
  let ok s = Result.get_ok (Cc.spec_of_string s) in
  Alcotest.check spec_testable "bare name" (Cc.spec "newreno") (ok "newreno");
  Alcotest.check spec_testable "params"
    (Cc.spec ~params:[ ("a", 1.); ("b", 0.7) ] "aimd")
    (ok "aimd:a=1,b=0.7");
  Alcotest.check spec_testable "whitespace tolerated"
    (Cc.spec ~params:[ ("w", 30.) ] "fixed")
    (ok " fixed : w = 30 ");
  Alcotest.(check string) "round-trip" "aimd:a=1,b=0.7"
    (Cc.spec_to_string (ok "aimd:a=1,b=0.7"));
  List.iter
    (fun bad ->
      match Cc.spec_of_string bad with
      | Error _ -> ()
      | Ok s ->
        Alcotest.failf "parsed %S as %s" bad (Cc.spec_to_string s))
    [ ""; ":a=1"; "aimd:a"; "aimd:a=x"; "aimd:=1"; "aimd:a=1,,b=2" ]

let test_spec_of_algorithm () =
  let check algo expect =
    Alcotest.(check string) expect expect
      (Cc.spec_to_string (Cc.spec_of_algorithm algo))
  in
  check (Cong.Tahoe { modified_ca = true }) "tahoe";
  check (Cong.Tahoe { modified_ca = false }) "tahoe-unmodified";
  check (Cong.Reno { modified_ca = true }) "reno";
  check (Cong.Reno { modified_ca = false }) "reno-unmodified";
  check (Cong.Fixed 30) "fixed:w=30";
  (* every mapped spec resolves in the registry *)
  List.iter
    (fun algo ->
      ignore
        (Cc.make (Cc.spec_of_algorithm algo) ~maxwnd:100 : Cc.t))
    [
      Cong.Tahoe { modified_ca = true };
      Cong.Tahoe { modified_ca = false };
      Cong.Reno { modified_ca = true };
      Cong.Reno { modified_ca = false };
      Cong.Fixed 30;
    ]

let test_duplicate_param_rejected () =
  Alcotest.check_raises "duplicate key"
    (Invalid_argument "aimd: duplicate parameter") (fun () ->
      ignore
        (Cc.make (Cc.spec ~params:[ ("a", 1.); ("a", 2.) ] "aimd") ~maxwnd:10
          : Cc.t))

let test_bad_param_values () =
  let rejects name params =
    let raised =
      try
        ignore (Cc.make (Cc.spec ~params name) ~maxwnd:100 : Cc.t);
        false
      with Invalid_argument _ -> true
    in
    Alcotest.(check bool)
      (Printf.sprintf "%s rejects %s" name
         (String.concat ","
            (List.map (fun (k, v) -> Printf.sprintf "%s=%g" k v) params)))
      true raised
  in
  rejects "aimd" [ ("a", 0.) ];
  rejects "aimd" [ ("b", 1.) ];
  rejects "aimd" [ ("b", 0.) ];
  rejects "compound" [ ("gamma", -1.) ];
  rejects "oracle" [ ("rate", 0.) ];
  rejects "oracle" [ ("w0", 0.) ];
  rejects "fixed" [ ("w", 0.) ]

let test_newreno_partial_ack () =
  (* Only NewReno answers true (retransmit the hole) to a partial ACK;
     every other entry always answers false. *)
  let drive name =
    let c = Cc.make (Cc.spec name) ~maxwnd:100 in
    let ackno = ref 0 in
    for _ = 1 to 9 do
      incr ackno;
      ignore (Cc.on_ack c ~ackno:!ackno ~newly:1 : bool)
    done;
    Cc.on_loss c Cc.Fast_retransmit ~highest_sent:30;
    (* partial: ackno below the recovery point 30 *)
    let partial = Cc.on_ack c ~ackno:15 ~newly:5 in
    let still = Cc.in_recovery c in
    (* full: ackno beyond the recovery point *)
    let full = Cc.on_ack c ~ackno:31 ~newly:16 in
    (partial, still, full, Cc.in_recovery c)
  in
  let partial, still, full, out = drive "newreno" in
  Alcotest.(check (list bool))
    "newreno: partial ACK retransmits and stays in recovery"
    [ true; true; false; false ]
    [ partial; still; full; out ];
  List.iter
    (fun name ->
      let partial, _, full, _ = drive name in
      Alcotest.(check (pair bool bool))
        (name ^ ": never asks for a hole retransmission") (false, false)
        (partial, full))
    (List.filter (fun n -> n <> "newreno") all_names)

let suite =
  ( "cc conformance",
    List.concat_map battery all_names
    @ [
        Alcotest.test_case "registry: populated zoo" `Quick
          test_registry_populated;
        Alcotest.test_case "registry: duplicate/unknown rejected" `Quick
          test_registry_rejects;
        Alcotest.test_case "spec parsing" `Quick test_spec_parsing;
        Alcotest.test_case "spec of legacy algorithm" `Quick
          test_spec_of_algorithm;
        Alcotest.test_case "duplicate parameter rejected" `Quick
          test_duplicate_param_rejected;
        Alcotest.test_case "out-of-range parameters rejected" `Quick
          test_bad_param_values;
        Alcotest.test_case "partial-ACK contract" `Quick
          test_newreno_partial_ack;
      ] )
