(* Binary trace format (lib/obs/btrace.ml): encode/decode round trips
   every event kind bit-exactly, the reader rejects non-traces, and —
   the crash-safety property — any prefix of a valid stream decodes to
   an exact prefix of its records, with a torn tail reported instead of
   an error. *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let item_to_string = function
  | Obs.Btrace.Def_link l ->
    Printf.sprintf "def_link %d %S %h" l.Obs.Btrace.link_id
      l.Obs.Btrace.link_name l.Obs.Btrace.bandwidth
  | Obs.Btrace.Def_conn c -> Printf.sprintf "def_conn %d" c
  | Obs.Btrace.Def_conn_meta { conn; start_time; flow_size } ->
    Printf.sprintf "def_conn_meta %d %h %s" conn start_time
      (match flow_size with None -> "inf" | Some n -> string_of_int n)
  | Obs.Btrace.Event (t, ev) ->
    Printf.sprintf "%h %s" t (Obs.Btrace.jsonl_line ~time:t ev)

let item : Obs.Btrace.item Alcotest.testable =
  Alcotest.testable
    (fun ppf i -> Format.pp_print_string ppf (item_to_string i))
    (* Polymorphic equality is exact here: plain records of ints,
       strings, bools and (finite, bit-identical) floats. *)
    (fun a b -> a = b)

(* A tiny real network: btrace encodes live packets and links, so the
   fixture needs genuine [Net] values, not mocks. *)
let fixture () =
  let sim = Engine.Sim.create () in
  let net = Net.Network.create sim in
  let h1 = Net.Network.add_host net ~name:"h1" ~proc_delay:1e-4 in
  let h2 = Net.Network.add_host net ~name:"h2" ~proc_delay:1e-4 in
  let fwd, bwd =
    Net.Network.add_duplex net ~src:h1 ~dst:h2 ~bandwidth:1e6 ~prop_delay:0.01
      ~buffer:(Some 10)
  in
  let pkt ?(kind = Net.Packet.Data) ?(retransmit = false) seq =
    Net.Network.make_packet net ~conn:1 ~kind ~seq ~size:500 ~src:h1 ~dst:h2
      ~retransmit
  in
  (net, fwd, bwd, pkt)

(* Encode one of everything (awkward times included: 0.1 +. 0.2 needs 17
   digits, 1e-9 exercises a large negative exponent jump) and return the
   byte stream plus the expected decoded items. *)
let encode_all () =
  let _net, fwd, bwd, pkt = fixture () in
  let p0 = pkt 0 in
  let p1 = pkt ~retransmit:true 1 in
  let ack = pkt ~kind:Net.Packet.Ack 2 in
  let events =
    [
      (0., Obs.Event.Inject p0);
      (1e-9, Obs.Event.Enqueue { link = fwd; pkt = p0; qlen = 3 });
      (0.1, Obs.Event.Depart { link = fwd; pkt = p0; qlen = 2 });
      (0.1 +. 0.2, Obs.Event.Drop { link = fwd; pkt = p1 });
      (0.5, Obs.Event.Fault { link = bwd; label = "blackout"; pkt = ack });
      (0.5, Obs.Event.Deliver p0);
      (2.25, Obs.Event.Send { conn = 1; pkt = p1 });
      (3., Obs.Event.Cwnd { conn = 1; cwnd = 2.5; ssthresh = 11.25 });
      (3., Obs.Event.Loss { conn = 1; reason = "timeout" });
      (4., Obs.Event.Loss { conn = 1; reason = "dup_ack" });
      (5.5, Obs.Event.Ack_tx { conn = 1; ackno = 7; delayed = true; dup = false });
    ]
  in
  let buf = Buffer.create 1024 in
  let w = Obs.Btrace.writer ~segment:160 (Buffer.add_string buf) in
  Obs.Btrace.declare_link w fwd;
  Obs.Btrace.declare_link w bwd;
  Obs.Btrace.declare_conn w 1;
  Obs.Btrace.declare_conn_meta w 2 ~start_time:(0.1 +. 0.2)
    ~flow_size:(Some 100);
  Obs.Btrace.declare_conn_meta w 3 ~start_time:0. ~flow_size:None;
  List.iter (fun (time, ev) -> Obs.Btrace.event w ~time ev) events;
  Obs.Btrace.flush w;
  let link_of l = Obs.Btrace.plain_link l in
  let expected =
    Obs.Btrace.Def_link (Obs.Btrace.plain_link fwd)
    :: Obs.Btrace.Def_link (Obs.Btrace.plain_link bwd)
    :: Obs.Btrace.Def_conn 1
    :: Obs.Btrace.Def_conn_meta
         { conn = 2; start_time = 0.1 +. 0.2; flow_size = Some 100 }
    :: Obs.Btrace.Def_conn_meta { conn = 3; start_time = 0.; flow_size = None }
    :: List.map
         (fun (t, ev) -> Obs.Btrace.Event (t, Obs.Btrace.plain_ev ~link_of ev))
         events
  in
  (Buffer.contents buf, expected)

let test_roundtrip () =
  let data, expected = encode_all () in
  Alcotest.(check string) "magic leads the stream" Obs.Btrace.magic
    (String.sub data 0 4);
  match Obs.Btrace.read data with
  | Error msg -> Alcotest.failf "decode failed: %s" msg
  | Ok { Obs.Btrace.file_version; items; torn } ->
    Alcotest.(check int) "version" Obs.Btrace.version file_version;
    Alcotest.(check (option string)) "no torn tail" None torn;
    Alcotest.(check (list item)) "every record round-trips" expected items

let test_reject_non_traces () =
  (match Obs.Btrace.read "" with
   | Error msg ->
     Alcotest.(check bool) "empty names the magic" true (contains msg "magic")
   | Ok _ -> Alcotest.fail "empty string accepted");
  (match Obs.Btrace.read "{\"t\":0,\"ev\":\"inject\"}\n" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "JSONL accepted as binary");
  match Obs.Btrace.read (Obs.Btrace.magic ^ "\xff") with
  | Error msg ->
    Alcotest.(check bool) "unknown version named" true (contains msg "version")
  | Ok _ -> Alcotest.fail "unknown version accepted"

(* Crash-safety: cut the stream at EVERY byte boundary.  Each prefix
   must decode to an exact prefix of the full record list — never an
   error, never a corrupted record — and a cut that lands mid-record
   must say so. *)
let test_every_truncation_recovers () =
  let data, expected = encode_all () in
  let full = Array.of_list expected in
  let saw_torn = ref 0 in
  for len = 5 to String.length data - 1 do
    match Obs.Btrace.read (String.sub data 0 len) with
    | Error msg -> Alcotest.failf "prefix of %d bytes unreadable: %s" len msg
    | Ok { Obs.Btrace.items; torn; _ } ->
      (match torn with
       | Some msg ->
         incr saw_torn;
         Alcotest.(check bool)
           (Printf.sprintf "torn note locates the cut (len %d)" len)
           true
           (contains msg "torn record at byte")
       | None -> ());
      List.iteri
        (fun i got ->
          if i >= Array.length full || got <> full.(i) then
            Alcotest.failf
              "prefix of %d bytes decoded a record not in the original: %s"
              len (item_to_string got))
        items;
      (* String-defs are records too, so a prefix may hold fewer
         exported items than bytes suggest — but never more. *)
      Alcotest.(check bool) "no invented records" true
        (List.length items <= Array.length full)
  done;
  Alcotest.(check bool) "some cuts landed mid-record" true (!saw_torn > 0)

let test_truncation_keeps_complete_records () =
  let data, expected = encode_all () in
  (* Drop one byte: exactly the final record is lost, everything before
     it survives complete. *)
  match Obs.Btrace.read (String.sub data 0 (String.length data - 1)) with
  | Error msg -> Alcotest.failf "truncated trace unreadable: %s" msg
  | Ok { Obs.Btrace.items; torn; _ } ->
    Alcotest.(check int) "all but the cut record recovered"
      (List.length expected - 1)
      (List.length items);
    (match torn with
     | Some msg ->
       (* The recovered count in the note also includes string-def
          records, which never surface as items; just pin the shape. *)
       Alcotest.(check bool) "note counts recovered records" true
         (contains msg "complete records recovered")
     | None -> Alcotest.fail "mid-record cut not reported")

let test_export_jsonl_matches_line_renderer () =
  let data, _ = encode_all () in
  match Obs.Btrace.read data with
  | Error msg -> Alcotest.failf "decode failed: %s" msg
  | Ok { Obs.Btrace.items; _ } ->
    let buf = Buffer.create 1024 in
    Obs.Btrace.export_jsonl items (Buffer.add_string buf);
    let expected =
      List.filter_map
        (function
          | Obs.Btrace.Event (t, ev) -> Some (Obs.Btrace.jsonl_line ~time:t ev)
          | _ -> None)
        items
    in
    Alcotest.(check (list string))
      "export is the line renderer over events"
      expected
      (String.split_on_char '\n' (Buffer.contents buf)
      |> List.filter (fun l -> l <> ""));
    (* Bit-awkward floats keep their exact spelling through the binary
       hop: 0.1 +. 0.2 is not 0.3. *)
    Alcotest.(check bool) "17-digit time preserved" true
      (contains (Buffer.contents buf) "{\"t\":0.30000000000000004,")

(* Version-1 streams (no conn-meta records) stay readable: handcraft a
   minimal v1 file — header with version byte 1, one conn-def record —
   and check the reader takes it as-is. *)
let test_reads_v1_streams () =
  let data = Obs.Btrace.magic ^ "\x01" ^ "\x02\x01" in
  match Obs.Btrace.read data with
  | Error msg -> Alcotest.failf "v1 stream rejected: %s" msg
  | Ok { Obs.Btrace.file_version; items; torn } ->
    Alcotest.(check int) "version 1" 1 file_version;
    Alcotest.(check (option string)) "no torn tail" None torn;
    Alcotest.(check (list item)) "conn-def decoded" [ Obs.Btrace.Def_conn 1 ]
      items

let test_validate_clean () =
  let data, _ = encode_all () in
  match Obs.Btrace.validate data with
  | Error msg -> Alcotest.failf "clean trace failed validation: %s" msg
  | Ok a ->
    Alcotest.(check int) "version" Obs.Btrace.version a.Obs.Btrace.audit_version;
    Alcotest.(check int) "events" 11 a.Obs.Btrace.audit_events;
    Alcotest.(check int) "links" 2 a.Obs.Btrace.audit_links;
    Alcotest.(check int) "conns" 3 a.Obs.Btrace.audit_conns;
    Alcotest.(check (option string)) "not torn" None a.Obs.Btrace.audit_torn;
    Alcotest.(check (list string)) "no errors" [] a.Obs.Btrace.audit_errors

let test_validate_flags_undeclared_conn () =
  let _net, _fwd, _bwd, _pkt = fixture () in
  let buf = Buffer.create 256 in
  let w = Obs.Btrace.writer (Buffer.add_string buf) in
  Obs.Btrace.declare_conn w 1;
  Obs.Btrace.event w ~time:1.
    (Obs.Event.Cwnd { conn = 1; cwnd = 2.; ssthresh = 8. });
  Obs.Btrace.event w ~time:2.
    (Obs.Event.Loss { conn = 7; reason = "timeout" });
  Obs.Btrace.flush w;
  match Obs.Btrace.validate (Buffer.contents buf) with
  | Error msg -> Alcotest.failf "trace unreadable: %s" msg
  | Ok a ->
    Alcotest.(check int) "one error" 1 (List.length a.Obs.Btrace.audit_errors);
    Alcotest.(check bool) "names the dangling conn" true
      (contains (List.hd a.Obs.Btrace.audit_errors) "undeclared conn 7")

let test_validate_flags_backwards_time () =
  let _net, _fwd, _bwd, _pkt = fixture () in
  let buf = Buffer.create 256 in
  let w = Obs.Btrace.writer (Buffer.add_string buf) in
  Obs.Btrace.declare_conn w 1;
  Obs.Btrace.event w ~time:5.
    (Obs.Event.Cwnd { conn = 1; cwnd = 2.; ssthresh = 8. });
  Obs.Btrace.event w ~time:1.
    (Obs.Event.Cwnd { conn = 1; cwnd = 3.; ssthresh = 8. });
  Obs.Btrace.flush w;
  match Obs.Btrace.validate (Buffer.contents buf) with
  | Error msg -> Alcotest.failf "trace unreadable: %s" msg
  | Ok a ->
    Alcotest.(check int) "one error" 1 (List.length a.Obs.Btrace.audit_errors);
    Alcotest.(check bool) "names the regression" true
      (contains (List.hd a.Obs.Btrace.audit_errors) "time goes backwards")

(* A plain truncation (cut between events) is a note, not an error: the
   prefix is perfectly usable. *)
let test_validate_tolerates_plain_truncation () =
  let data, _ = encode_all () in
  match Obs.Btrace.validate (String.sub data 0 (String.length data - 1)) with
  | Error msg -> Alcotest.failf "truncated trace failed validation: %s" msg
  | Ok a ->
    Alcotest.(check bool) "torn note present" true
      (a.Obs.Btrace.audit_torn <> None);
    Alcotest.(check (list string)) "no errors" [] a.Obs.Btrace.audit_errors

let suite =
  ( "btrace",
    [
      Alcotest.test_case "all event kinds round-trip bit-exactly" `Quick
        test_roundtrip;
      Alcotest.test_case "non-traces rejected with a reason" `Quick
        test_reject_non_traces;
      Alcotest.test_case "every truncation yields a clean prefix" `Quick
        test_every_truncation_recovers;
      Alcotest.test_case "one lost byte loses one record" `Quick
        test_truncation_keeps_complete_records;
      Alcotest.test_case "jsonl export matches the line renderer" `Quick
        test_export_jsonl_matches_line_renderer;
      Alcotest.test_case "version-1 streams stay readable" `Quick
        test_reads_v1_streams;
      Alcotest.test_case "validate passes a clean trace" `Quick
        test_validate_clean;
      Alcotest.test_case "validate flags undeclared conn refs" `Quick
        test_validate_flags_undeclared_conn;
      Alcotest.test_case "validate flags backwards time" `Quick
        test_validate_flags_backwards_time;
      Alcotest.test_case "validate tolerates plain truncation" `Quick
        test_validate_tolerates_plain_truncation;
    ] )
