(* Golden event trace: the full JSONL trace of a short, deterministic
   one-way run on the long-wire dumbbell (the quickstart scenario cut to
   12 simulated seconds so the file stays reviewable).

   The run records the compact binary trace and the JSONL is produced by
   the offline exporter — exactly the [netsim trace export] pipeline —
   so this golden pins both the event stream and the binary round trip.

   The output is diffed against the committed [trace_golden.jsonl] by the
   [runtest] alias.  Any change to packet timing, hook ordering, the
   binary encoding or the JSONL rendering shows up as a diff; an
   intentional change is accepted with

     dune promote test/golden/trace_golden.jsonl *)

let () =
  let scenario =
    Core.Scenario.make ~name:"golden-trace" ~tau:1.0 ~buffer:(Some 20)
      ~conns:[ Core.Scenario.conn Core.Scenario.Forward ]
      ~duration:12. ~warmup:2. ~validate:true ()
  in
  let buf = Buffer.create (1 lsl 16) in
  let r =
    Core.Runner.run
      ~obs:(Obs.Probe.setup ~metrics:false ~btrace:(Buffer.add_string buf) ())
      scenario
  in
  (match Core.Runner.validation_report r with
   | Some report when not (Validate.Report.is_clean report) ->
     prerr_endline (Validate.Report.to_string report);
     failwith "golden trace scenario violated an invariant"
   | _ -> ());
  match Obs.Btrace.read (Buffer.contents buf) with
  | Error msg -> failwith ("golden binary trace unreadable: " ^ msg)
  | Ok { Obs.Btrace.torn = Some msg; _ } ->
    failwith ("golden binary trace has a torn tail: " ^ msg)
  | Ok { Obs.Btrace.items; _ } -> Obs.Btrace.export_jsonl items print_string
