(* Golden-trace generator: runs the canonical one-way and two-way
   scenarios (validation on) and prints a digest of each — drop count,
   both utilizations, final congestion windows, and an MD5 checksum over
   the full bottleneck queue series.

   The output is diffed against the committed [golden.digest] by the
   [runtest] alias; an intentional behaviour change is accepted with

     dune promote test/golden/golden.digest

   after eyeballing the new numbers against the paper's. *)

let series_checksum s =
  let buf = Buffer.create 4096 in
  Trace.Series.iter s ~f:(fun ~time ~value ->
      Buffer.add_string buf (Printf.sprintf "%.9g:%.9g;" time value));
  Digest.to_hex (Digest.string (Buffer.contents buf))

let digest (scenario : Core.Scenario.t) =
  let r = Core.Runner.run scenario in
  (match Core.Runner.validation_report r with
  | Some report when not (Validate.Report.is_clean report) ->
    (* A golden scenario must also be invariant-clean; bail loudly so the
       digest never silently encodes a buggy run. *)
    prerr_endline (Validate.Report.to_string report);
    failwith "golden scenario violated an invariant"
  | _ -> ());
  Printf.printf "[%s]\n" scenario.Core.Scenario.name;
  Printf.printf "drops = %d\n" (Trace.Drop_log.total r.Core.Runner.drops);
  Printf.printf "util_fwd = %.6f\n" r.Core.Runner.util_fwd;
  Printf.printf "util_bwd = %.6f\n" r.Core.Runner.util_bwd;
  Array.iteri
    (fun i (_, conn) ->
      Printf.printf "cwnd_%d = %.6f\n" (i + 1)
        (Tcp.Sender.cwnd (Tcp.Connection.sender conn)))
    r.Core.Runner.conns;
  Printf.printf "queue_fwd_md5 = %s\n"
    (series_checksum (Trace.Queue_trace.series r.Core.Runner.q1));
  Printf.printf "queue_bwd_md5 = %s\n"
    (series_checksum (Trace.Queue_trace.series r.Core.Runner.q2));
  print_newline ()

let () =
  let open Core.Scenario in
  (* The paper's baseline: one connection over the long-wire dumbbell. *)
  digest
    (make ~name:"one-way" ~tau:1.0 ~buffer:(Some 20)
       ~conns:[ conn Forward ]
       ~duration:120. ~warmup:40. ~validate:true ());
  (* Two-way traffic on the short wire: the regime where ACK compression
     and out-of-phase queues appear (Figures 4-7). *)
  digest
    (make ~name:"two-way" ~tau:0.01 ~buffer:(Some 20)
       ~conns:(stagger ~step:2. [ conn Forward; conn Reverse ])
       ~duration:120. ~warmup:40. ~validate:true ())
