open Engine
open Net

(* host1 -- sw -- host2, generous links *)
let tiny () =
  let sim = Sim.create () in
  let net = Network.create sim in
  let sw = Network.add_switch net ~name:"sw" in
  let h1 = Network.add_host net ~name:"h1" ~proc_delay:0.0001 in
  let h2 = Network.add_host net ~name:"h2" ~proc_delay:0.0001 in
  ignore
    (Network.add_duplex net ~src:h1 ~dst:sw ~bandwidth:1e6 ~prop_delay:0.001
       ~buffer:None
      : Link.t * Link.t);
  ignore
    (Network.add_duplex net ~src:h2 ~dst:sw ~bandwidth:1e6 ~prop_delay:0.001
       ~buffer:None
      : Link.t * Link.t);
  Routing.compute net;
  (sim, net, h1, h2, sw)

let test_end_to_end_dispatch () =
  let sim, net, h1, h2, _ = tiny () in
  let got = ref None in
  Network.register_endpoint net ~host:h2 ~conn:1 (fun p ->
      got := Some (p.Packet.seq, Sim.now sim));
  Network.register_endpoint net ~host:h1 ~conn:1 (fun _ -> ());
  let p =
    Network.make_packet net ~conn:1 ~kind:Packet.Data ~seq:42 ~size:500 ~src:h1
      ~dst:h2 ~retransmit:false
  in
  Network.send_from_host net ~host:h1 p;
  Sim.run sim ~until:1.;
  match !got with
  | Some (seq, t) ->
    Alcotest.(check int) "payload routed" 42 seq;
    (* two links (tx 4ms each at 1Mbps? 500B*8/1e6 = 4ms) + 2 props + proc *)
    Alcotest.(check bool) "arrival after proc delay" true (t > 0.009)
  | None -> Alcotest.fail "packet not delivered"

let test_proc_delay_applied () =
  let sim = Sim.create () in
  let net = Network.create sim in
  let sw = Network.add_switch net ~name:"sw" in
  let h1 = Network.add_host net ~name:"h1" ~proc_delay:0. in
  let h2 = Network.add_host net ~name:"h2" ~proc_delay:0.5 in
  ignore
    (Network.add_duplex net ~src:h1 ~dst:sw ~bandwidth:1e9 ~prop_delay:0.
       ~buffer:None
      : Link.t * Link.t);
  ignore
    (Network.add_duplex net ~src:h2 ~dst:sw ~bandwidth:1e9 ~prop_delay:0.
       ~buffer:None
      : Link.t * Link.t);
  Routing.compute net;
  let arrival = ref None in
  Network.register_endpoint net ~host:h2 ~conn:1 (fun _ ->
      arrival := Some (Sim.now sim));
  let p =
    Network.make_packet net ~conn:1 ~kind:Packet.Data ~seq:0 ~size:100 ~src:h1
      ~dst:h2 ~retransmit:false
  in
  Network.send_from_host net ~host:h1 p;
  Sim.run sim ~until:2.;
  match !arrival with
  | Some t -> Alcotest.(check bool) "0.5s host processing" true (t >= 0.5)
  | None -> Alcotest.fail "not delivered"

let test_missing_endpoint_fails () =
  let sim, net, h1, h2, _ = tiny () in
  let p =
    Network.make_packet net ~conn:9 ~kind:Packet.Data ~seq:0 ~size:10 ~src:h1
      ~dst:h2 ~retransmit:false
  in
  Network.send_from_host net ~host:h1 p;
  let raised = try Sim.run sim ~until:1.; false with Failure _ -> true in
  Alcotest.(check bool) "unknown conn raises" true raised

let test_fresh_packet_ids () =
  let _, net, h1, h2, _ = tiny () in
  let mk () =
    Network.make_packet net ~conn:1 ~kind:Packet.Ack ~seq:0 ~size:50 ~src:h1
      ~dst:h2 ~retransmit:false
  in
  let a = mk () and b = mk () in
  Alcotest.(check bool) "unique ids" true (a.Packet.id <> b.Packet.id)

let test_node_accessors () =
  let _, net, h1, _, sw = tiny () in
  Alcotest.(check int) "node count" 3 (Network.node_count net);
  Alcotest.(check string) "host name" "h1" (Network.node_name net h1);
  Alcotest.(check bool) "host kind" true (Network.node_kind net h1 = Network.Host);
  Alcotest.(check bool) "switch kind" true
    (Network.node_kind net sw = Network.Switch);
  Alcotest.(check int) "links" 4 (List.length (Network.links net));
  Alcotest.(check int) "switch degree" 2 (List.length (Network.out_links net sw))

let test_register_on_switch_rejected () =
  let _, net, _, _, sw = tiny () in
  let raised =
    try
      Network.register_endpoint net ~host:sw ~conn:1 (fun _ -> ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "switches have no endpoints" true raised

let suite =
  ( "network",
    [
      Alcotest.test_case "end-to-end dispatch" `Quick test_end_to_end_dispatch;
      Alcotest.test_case "proc delay applied" `Quick test_proc_delay_applied;
      Alcotest.test_case "missing endpoint fails" `Quick
        test_missing_endpoint_fails;
      Alcotest.test_case "fresh packet ids" `Quick test_fresh_packet_ids;
      Alcotest.test_case "node accessors" `Quick test_node_accessors;
      Alcotest.test_case "register on switch rejected" `Quick
        test_register_on_switch_rejected;
    ] )
