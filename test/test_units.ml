open Engine

let feq = Alcotest.(check (float 1e-9))

let test_paper_tx_times () =
  (* The paper's key constants: 500 B data @ 50 Kbps = 80 ms; 50 B ACK =
     8 ms; host link 500 B @ 10 Mbps = 0.4 ms. *)
  feq "data tx" 0.08 (Units.transmission_time ~bytes:500 ~rate_bps:(Units.kbps 50.));
  feq "ack tx" 0.008 (Units.transmission_time ~bytes:50 ~rate_bps:(Units.kbps 50.));
  feq "host link tx" 0.0004
    (Units.transmission_time ~bytes:500 ~rate_bps:(Units.mbps 10.))

let test_paper_pipe_sizes () =
  (* P = mu*tau/M: 0.125 packets at tau=0.01s, 12.5 at tau=1s. *)
  feq "small pipe" 0.125
    (Units.pipe_size ~rate_bps:(Units.kbps 50.) ~delay:0.01 ~packet_bytes:500);
  feq "large pipe" 12.5
    (Units.pipe_size ~rate_bps:(Units.kbps 50.) ~delay:1.0 ~packet_bytes:500)

let test_conversions () =
  feq "kbps" 50_000. (Units.kbps 50.);
  feq "mbps" 10_000_000. (Units.mbps 10.);
  feq "ms" 0.0001 (Units.ms 0.1);
  feq "usec" 1e-6 (Units.usec 1.);
  feq "bits of bytes" 4000. (Units.bits_of_bytes 500)

let test_bad_rate () =
  Alcotest.check_raises "zero rate"
    (Invalid_argument "Units.transmission_time: rate <= 0") (fun () ->
      ignore (Units.transmission_time ~bytes:1 ~rate_bps:0. : float))

let test_pp_time () =
  let show t = Format.asprintf "%a" Units.pp_time t in
  Alcotest.(check string) "seconds" "1.500s" (show 1.5);
  Alcotest.(check string) "millis" "80.000ms" (show 0.08);
  Alcotest.(check string) "micros" "100.0us" (show 0.0001)

let suite =
  ( "units",
    [
      Alcotest.test_case "paper tx times" `Quick test_paper_tx_times;
      Alcotest.test_case "paper pipe sizes" `Quick test_paper_pipe_sizes;
      Alcotest.test_case "conversions" `Quick test_conversions;
      Alcotest.test_case "bad rate" `Quick test_bad_rate;
      Alcotest.test_case "pp_time" `Quick test_pp_time;
    ] )
