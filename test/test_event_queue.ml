open Engine

let check_pop queue expected () =
  let rec drain acc =
    match Event_queue.pop queue with
    | None -> List.rev acc
    | Some (_, x) -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "pop order" expected (drain [])

let test_ordering () =
  let q = Event_queue.create () in
  Event_queue.add q ~time:3. 3;
  Event_queue.add q ~time:1. 1;
  Event_queue.add q ~time:2. 2;
  check_pop q [ 1; 2; 3 ] ()

let test_fifo_ties () =
  (* Same timestamp: insertion order must be preserved. *)
  let q = Event_queue.create () in
  List.iter (fun x -> Event_queue.add q ~time:5. x) [ 10; 20; 30; 40 ];
  check_pop q [ 10; 20; 30; 40 ] ()

let test_interleaved_ties () =
  let q = Event_queue.create () in
  Event_queue.add q ~time:2. 21;
  Event_queue.add q ~time:1. 11;
  Event_queue.add q ~time:2. 22;
  Event_queue.add q ~time:1. 12;
  check_pop q [ 11; 12; 21; 22 ] ()

let test_peek () =
  let q = Event_queue.create () in
  Alcotest.(check bool) "empty peek" true (Event_queue.peek q = None);
  Event_queue.add q ~time:7. 'a';
  Event_queue.add q ~time:3. 'b';
  (match Event_queue.peek q with
   | Some (t, x) ->
     Alcotest.(check (float 0.)) "peek time" 3. t;
     Alcotest.(check char) "peek payload" 'b' x
   | None -> Alcotest.fail "expected an event");
  Alcotest.(check int) "peek does not remove" 2 (Event_queue.length q)

let test_length_and_clear () =
  let q = Event_queue.create () in
  Alcotest.(check bool) "fresh is empty" true (Event_queue.is_empty q);
  for i = 1 to 100 do
    Event_queue.add q ~time:(float_of_int (100 - i)) i
  done;
  Alcotest.(check int) "length" 100 (Event_queue.length q);
  Event_queue.clear q;
  Alcotest.(check bool) "cleared" true (Event_queue.is_empty q);
  Alcotest.(check bool) "pop after clear" true (Event_queue.pop q = None)

let test_iter () =
  let q = Event_queue.create () in
  List.iter (fun x -> Event_queue.add q ~time:(float_of_int x) x) [ 5; 1; 3 ];
  let sum = ref 0 in
  Event_queue.iter q ~f:(fun ~time:_ x -> sum := !sum + x);
  Alcotest.(check int) "iter visits all" 9 !sum

let test_nan_rejected () =
  let q = Event_queue.create () in
  Alcotest.check_raises "NaN time" (Invalid_argument "Event_queue.add: NaN time")
    (fun () -> Event_queue.add q ~time:Float.nan 0)

let test_growth () =
  (* Force several capacity doublings. *)
  let q = Event_queue.create () in
  for i = 0 to 999 do
    Event_queue.add q ~time:(float_of_int (i mod 97)) i
  done;
  Alcotest.(check int) "all inserted" 1000 (Event_queue.length q);
  let rec drain prev n =
    match Event_queue.pop q with
    | None -> n
    | Some (t, _) ->
      Alcotest.(check bool) "non-decreasing" true (t >= prev);
      drain t (n + 1)
  in
  Alcotest.(check int) "all popped" 1000 (drain neg_infinity 0)

let prop_sorted =
  QCheck.Test.make ~name:"pops are sorted by time"
    ~count:200
    QCheck.(list (pair (float_bound_inclusive 1000.) small_int))
    (fun events ->
      let q = Event_queue.create () in
      List.iter (fun (t, x) -> Event_queue.add q ~time:t x) events;
      let rec drain prev =
        match Event_queue.pop q with
        | None -> true
        | Some (t, _) -> t >= prev && drain t
      in
      drain neg_infinity)

let prop_conserves_elements =
  QCheck.Test.make ~name:"every added element is popped exactly once"
    ~count:200
    QCheck.(list (pair (float_bound_inclusive 100.) small_int))
    (fun events ->
      let q = Event_queue.create () in
      List.iter (fun (t, x) -> Event_queue.add q ~time:t x) events;
      let rec drain acc =
        match Event_queue.pop q with
        | None -> acc
        | Some (_, x) -> drain (x :: acc)
      in
      let popped = List.sort compare (drain []) in
      let added = List.sort compare (List.map snd events) in
      popped = added)

(* Stability: among entries sharing a timestamp, pop order is insertion
   order.  Payloads are insertion indices, so within each time bucket the
   popped indices must be increasing. *)
let prop_stable_ties =
  QCheck.Test.make ~name:"same-time events pop in insertion order" ~count:300
    (* few distinct times -> many ties *)
    QCheck.(list (int_bound 5))
    (fun times ->
      let q = Event_queue.create () in
      List.iteri
        (fun i time -> Event_queue.add q ~time:(float_of_int time) i)
        times;
      let rec drain acc =
        match Event_queue.pop q with
        | None -> List.rev acc
        | Some (t, i) -> drain ((t, i) :: acc)
      in
      let popped = drain [] in
      let rec stable = function
        | (t1, i1) :: ((t2, i2) :: _ as rest) ->
          (t1 < t2 || (t1 = t2 && i1 < i2)) && stable rest
        | _ -> true
      in
      stable popped)

(* ------------------------------------------------------------------ *)
(* Space leaks: vacated heap slots must not keep payloads alive         *)
(* ------------------------------------------------------------------ *)

(* Build the payload and pop it inside helper functions so no stack root
   outlives the operation; after that, only a leaked heap slot could keep
   the payload from being collected. *)
let add_finalised q collected =
  let payload = Bytes.make 16 'x' in
  Gc.finalise (fun _ -> incr collected) payload;
  Event_queue.add q ~time:1. payload

let pop_and_drop q = ignore (Event_queue.pop q : (float * Bytes.t) option)

let test_pop_releases_payload () =
  let q = Event_queue.create () in
  let collected = ref 0 in
  (* two entries: the first pop exercises the swap-down path, the second
     the emptying path — both used to leave the payload in a stale slot *)
  add_finalised q collected;
  add_finalised q collected;
  pop_and_drop q;
  pop_and_drop q;
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check int) "popped payloads collected" 2 !collected

let test_clear_releases_payloads () =
  let q = Event_queue.create () in
  let collected = ref 0 in
  for _ = 1 to 10 do
    add_finalised q collected
  done;
  Event_queue.clear q;
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check int) "cleared payloads collected" 10 !collected

(* ------------------------------------------------------------------ *)
(* Model-based: random Add/Pop/Clear programs vs a sorted-list reference *)
(* ------------------------------------------------------------------ *)

(* Opcodes 0-6 add (weighted so queues stay non-trivial), 7-8 pop,
   9 clears.  Few distinct times force same-time FIFO ties through the
   model, which orders by (time, insertion seq). *)
let prop_model =
  QCheck.Test.make ~name:"model: add/pop/clear vs sorted-list reference"
    ~count:300
    QCheck.(list (pair (int_bound 9) (int_bound 5)))
    (fun ops ->
      let q = Event_queue.create () in
      let model = ref [] in
      let seq = ref 0 in
      let ok = ref true in
      List.iter
        (fun (op, time) ->
          (if op <= 6 then begin
             let payload = !seq in
             Event_queue.add q ~time:(float_of_int time) payload;
             model :=
               List.merge
                 (fun (t1, s1, _) (t2, s2, _) -> compare (t1, s1) (t2, s2))
                 !model
                 [ (float_of_int time, !seq, payload) ];
             incr seq
           end
           else if op <= 8 then
             match (Event_queue.pop q, !model) with
             | None, [] -> ()
             | Some (t, x), (mt, _, mx) :: rest ->
               if t = mt && x = mx then model := rest else ok := false
             | _ -> ok := false
           else begin
             Event_queue.clear q;
             model := []
           end);
          if Event_queue.length q <> List.length !model then ok := false)
        ops;
      !ok)

let suite =
  ( "event_queue",
    [
      Alcotest.test_case "ordering" `Quick test_ordering;
      Alcotest.test_case "fifo ties" `Quick test_fifo_ties;
      Alcotest.test_case "interleaved ties" `Quick test_interleaved_ties;
      Alcotest.test_case "peek" `Quick test_peek;
      Alcotest.test_case "length and clear" `Quick test_length_and_clear;
      Alcotest.test_case "iter" `Quick test_iter;
      Alcotest.test_case "nan rejected" `Quick test_nan_rejected;
      Alcotest.test_case "growth" `Quick test_growth;
      Alcotest.test_case "pop releases payload" `Quick
        test_pop_releases_payload;
      Alcotest.test_case "clear releases payloads" `Quick
        test_clear_releases_payloads;
      QCheck_alcotest.to_alcotest prop_sorted;
      QCheck_alcotest.to_alcotest prop_conserves_elements;
      QCheck_alcotest.to_alcotest prop_stable_ties;
      QCheck_alcotest.to_alcotest prop_model;
    ] )
