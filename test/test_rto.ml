open Tcp

let continuous =
  { Rto.default_params with Rto.granularity = 0.; min_timeout = 0.001 }

let test_initial_timeout () =
  let r = Rto.create Rto.default_params in
  Alcotest.(check (float 0.)) "before any sample" 3. (Rto.timeout r);
  Alcotest.(check bool) "no srtt yet" true (Rto.srtt r = None);
  Alcotest.(check int) "no samples" 0 (Rto.samples r)

let test_first_sample () =
  let r = Rto.create continuous in
  Rto.sample r 1.0;
  Alcotest.(check (option (float 1e-9))) "srtt = sample" (Some 1.0) (Rto.srtt r);
  Alcotest.(check (option (float 1e-9))) "rttvar = sample/2" (Some 0.5)
    (Rto.rttvar r);
  (* srtt + 4*rttvar = 3.0 *)
  Alcotest.(check (float 1e-9)) "timeout" 3.0 (Rto.timeout r)

let test_ewma_update () =
  let r = Rto.create continuous in
  Rto.sample r 1.0;
  Rto.sample r 2.0;
  (* err = 1: srtt = 1 + 1/8 = 1.125; rttvar = 0.5 + (1 - 0.5)/4 = 0.625 *)
  Alcotest.(check (option (float 1e-9))) "srtt" (Some 1.125) (Rto.srtt r);
  Alcotest.(check (option (float 1e-9))) "rttvar" (Some 0.625) (Rto.rttvar r)

let test_tick_rounding () =
  (* BSD 500 ms granularity: timeouts are multiples of the tick, >= 1 s. *)
  let r = Rto.create Rto.default_params in
  Rto.sample r 0.9;
  let t = Rto.timeout r in
  Alcotest.(check bool) "multiple of tick" true
    (Float.abs (Float.rem t 0.5) < 1e-9 || Float.abs (Float.rem t 0.5 -. 0.5) < 1e-9);
  Alcotest.(check bool) "at least the minimum" true (t >= 1.0)

let test_min_clamp () =
  let r = Rto.create Rto.default_params in
  Rto.sample r 0.001;
  Alcotest.(check (float 1e-9)) "clamped to min" 1.0 (Rto.timeout r)

let test_max_clamp () =
  let r = Rto.create Rto.default_params in
  Rto.sample r 1000.;
  Alcotest.(check (float 1e-9)) "clamped to max" 64. (Rto.timeout r)

let test_backoff () =
  let r = Rto.create Rto.default_params in
  Rto.sample r 1.0;
  let base = Rto.timeout r in
  Rto.backoff r;
  Alcotest.(check (float 1e-9)) "doubled" (2. *. base) (Rto.timeout r);
  Rto.backoff r;
  Alcotest.(check (float 1e-9)) "doubled again" (4. *. base) (Rto.timeout r);
  Rto.reset_backoff r;
  Alcotest.(check (float 1e-9)) "reset" base (Rto.timeout r)

let test_backoff_cap () =
  let r = Rto.create Rto.default_params in
  Rto.sample r 1.0;
  for _ = 1 to 20 do Rto.backoff r done;
  Alcotest.(check bool) "capped at max_timeout" true (Rto.timeout r <= 64.);
  Alcotest.(check int) "backoff count capped" 6 (Rto.backoff_count r)

let test_huge_sample () =
  (* A huge RTT used to overflow [int_of_float] inside the tick rounding,
     producing a garbage (negative) timeout that the clamp then collapsed
     to [min_timeout].  It must saturate at [max_timeout] instead. *)
  let r = Rto.create Rto.default_params in
  Rto.sample r 1e18;
  Alcotest.(check (float 1e-9)) "saturates at max" 64. (Rto.timeout r);
  (* With no upper clamp the rounded value must stay finite, positive and
     no smaller than the raw estimate (rounding is always upward). *)
  let unclamped =
    { Rto.default_params with Rto.max_timeout = infinity; min_timeout = 1. }
  in
  let r = Rto.create unclamped in
  Rto.sample r 1e18;
  let t = Rto.timeout r in
  let raw = 1e18 +. (4. *. 5e17) in
  Alcotest.(check bool) "finite" true (Float.is_finite t);
  Alcotest.(check bool) "no smaller than raw estimate" true (t >= raw)

let test_bad_sample () =
  let r = Rto.create Rto.default_params in
  Alcotest.check_raises "negative rtt" (Invalid_argument "Rto.sample: bad RTT")
    (fun () -> Rto.sample r (-1.))

let prop_timeout_bounded =
  QCheck.Test.make ~name:"timeout always within [min, max]" ~count:200
    QCheck.(list (float_bound_inclusive 100.))
    (fun samples ->
      let r = Rto.create Rto.default_params in
      List.iter (fun s -> Rto.sample r s) samples;
      let t = Rto.timeout r in
      t >= 1.0 && t <= 64.)

let prop_srtt_tracks =
  (* Constant RTTs converge srtt to that constant. *)
  QCheck.Test.make ~name:"srtt converges on constant input" ~count:50
    QCheck.(float_range 0.01 10.)
    (fun rtt ->
      let r = Rto.create continuous in
      for _ = 1 to 200 do Rto.sample r rtt done;
      match Rto.srtt r with
      | Some s -> Float.abs (s -. rtt) < 0.01 *. rtt +. 1e-9
      | None -> false)

let suite =
  ( "rto",
    [
      Alcotest.test_case "initial timeout" `Quick test_initial_timeout;
      Alcotest.test_case "first sample" `Quick test_first_sample;
      Alcotest.test_case "ewma update" `Quick test_ewma_update;
      Alcotest.test_case "tick rounding" `Quick test_tick_rounding;
      Alcotest.test_case "min clamp" `Quick test_min_clamp;
      Alcotest.test_case "max clamp" `Quick test_max_clamp;
      Alcotest.test_case "backoff" `Quick test_backoff;
      Alcotest.test_case "backoff cap" `Quick test_backoff_cap;
      Alcotest.test_case "huge sample saturates" `Quick test_huge_sample;
      Alcotest.test_case "bad sample" `Quick test_bad_sample;
      QCheck_alcotest.to_alcotest prop_timeout_bounded;
      QCheck_alcotest.to_alcotest prop_srtt_tracks;
    ] )
