open Engine

let test_determinism () =
  let a = Rng.create ~seed:42 in
  let b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check (float 0.)) "same stream" (Rng.float a) (Rng.float b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:1 in
  let b = Rng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.float a <> Rng.float b then differs := true
  done;
  Alcotest.(check bool) "different seeds diverge" true !differs

let test_int_bounds () =
  let rng = Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let x = Rng.int rng ~bound:13 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 13)
  done

let test_int_bad_bound () =
  let rng = Rng.create ~seed:7 in
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng ~bound:0 : int))

let test_uniform () =
  let rng = Rng.create ~seed:9 in
  for _ = 1 to 1000 do
    let x = Rng.uniform rng ~lo:(-2.) ~hi:5. in
    Alcotest.(check bool) "in range" true (x >= -2. && x < 5.)
  done

let test_exponential () =
  let rng = Rng.create ~seed:11 in
  let n = 20_000 in
  let total = ref 0. in
  for _ = 1 to n do
    let x = Rng.exponential rng ~mean:3. in
    Alcotest.(check bool) "non-negative" true (x >= 0.);
    total := !total +. x
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool) "mean ~ 3" true (Float.abs (mean -. 3.) < 0.15)

let test_split_independence () =
  let parent = Rng.create ~seed:5 in
  let child = Rng.split parent in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.float parent <> Rng.float child then differs := true
  done;
  Alcotest.(check bool) "split stream differs" true !differs

let prop_float_unit_interval =
  QCheck.Test.make ~name:"float is in [0,1)" ~count:100 QCheck.small_int
    (fun seed ->
      let rng = Rng.create ~seed in
      let ok = ref true in
      for _ = 1 to 100 do
        let x = Rng.float rng in
        if not (x >= 0. && x < 1.) then ok := false
      done;
      !ok)

let suite =
  ( "rng",
    [
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
      Alcotest.test_case "int bounds" `Quick test_int_bounds;
      Alcotest.test_case "int bad bound" `Quick test_int_bad_bound;
      Alcotest.test_case "uniform" `Quick test_uniform;
      Alcotest.test_case "exponential" `Quick test_exponential;
      Alcotest.test_case "split independence" `Quick test_split_independence;
      QCheck_alcotest.to_alcotest prop_float_unit_interval;
    ] )
