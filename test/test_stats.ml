open Analysis

let feq = Alcotest.(check (float 1e-9))

let test_mean_variance () =
  feq "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |]);
  feq "variance" 1.25 (Stats.variance [| 1.; 2.; 3.; 4. |]);
  feq "stddev" (sqrt 1.25) (Stats.stddev [| 1.; 2.; 3.; 4. |]);
  feq "constant variance" 0. (Stats.variance [| 7.; 7.; 7. |])

let test_median () =
  feq "odd" 3. (Stats.median [| 5.; 1.; 3. |]);
  feq "even" 2.5 (Stats.median [| 4.; 1.; 2.; 3. |]);
  feq "single" 9. (Stats.median [| 9. |])

let test_percentile () =
  let a = Array.init 100 (fun i -> float_of_int (i + 1)) in
  feq "p50" 50. (Stats.percentile a ~p:50.);
  feq "p90" 90. (Stats.percentile a ~p:90.);
  feq "p0 -> min" 1. (Stats.percentile a ~p:0.);
  feq "p100 -> max" 100. (Stats.percentile a ~p:100.)

let test_pearson () =
  let x = [| 1.; 2.; 3.; 4.; 5. |] in
  let y = Array.map (fun v -> (2. *. v) +. 1.) x in
  feq "perfect positive" 1. (Stats.pearson x y);
  let z = Array.map (fun v -> -.v) x in
  feq "perfect negative" (-1.) (Stats.pearson x z);
  feq "constant input" 0. (Stats.pearson x [| 3.; 3.; 3.; 3.; 3. |])

let test_min_max () =
  feq "min" (-2.) (Stats.minimum [| 3.; -2.; 7. |]);
  feq "max" 7. (Stats.maximum [| 3.; -2.; 7. |])

let test_histogram () =
  let counts = Stats.histogram [| 0.1; 0.2; 0.6; 0.9; 1.5; -3. |] ~bins:2 ~lo:0. ~hi:1. in
  (* [0, .5): 0.1, 0.2, -3 (clamped); [.5, 1): 0.6, 0.9, 1.5 (clamped) *)
  Alcotest.(check (array int)) "bins" [| 3; 3 |] counts

let test_empty_rejected () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "mean" true (raises (fun () -> Stats.mean [||]));
  Alcotest.(check bool) "median" true (raises (fun () -> Stats.median [||]));
  Alcotest.(check bool) "pearson length" true
    (raises (fun () -> Stats.pearson [| 1. |] [| 1.; 2. |]))

let prop_pearson_bounded =
  QCheck.Test.make ~name:"pearson in [-1, 1]" ~count:200
    QCheck.(
      list_of_size (Gen.int_range 2 30)
        (pair (float_bound_inclusive 10.) (float_bound_inclusive 10.)))
    (fun pairs ->
      let xs = Array.of_list (List.map fst pairs) in
      let ys = Array.of_list (List.map snd pairs) in
      let r = Stats.pearson xs ys in
      r >= -1.0000001 && r <= 1.0000001)

(* Pearson correlation is invariant under positive affine maps of either
   argument: r(a*x + b, y) = r(x, y) for a > 0. *)
let prop_pearson_affine_invariant =
  QCheck.Test.make ~name:"pearson invariant under positive affine scaling"
    ~count:200
    QCheck.(
      triple
        (list_of_size (Gen.int_range 2 30)
           (pair (float_bound_inclusive 10.) (float_bound_inclusive 10.)))
        (float_range 0.1 50.)
        (float_bound_inclusive 100.))
    (fun (pairs, scale, offset) ->
      let xs = Array.of_list (List.map fst pairs) in
      let ys = Array.of_list (List.map snd pairs) in
      (* Near-constant inputs sit on pearson's degenerate-variance cutoff,
         where scaling can flip the 0 fallback; the identity only holds
         away from it. *)
      QCheck.assume
        (Stats.variance xs > 1e-6 && Stats.variance ys > 1e-6);
      let xs' = Array.map (fun v -> (scale *. v) +. offset) xs in
      Float.abs (Stats.pearson xs' ys -. Stats.pearson xs ys) < 1e-6)

let prop_median_bounded =
  QCheck.Test.make ~name:"median within [min, max]" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (float_bound_inclusive 100.))
    (fun xs ->
      let a = Array.of_list xs in
      let m = Stats.median a in
      m >= Stats.minimum a && m <= Stats.maximum a)

let suite =
  ( "stats",
    [
      Alcotest.test_case "mean/variance" `Quick test_mean_variance;
      Alcotest.test_case "median" `Quick test_median;
      Alcotest.test_case "percentile" `Quick test_percentile;
      Alcotest.test_case "pearson" `Quick test_pearson;
      Alcotest.test_case "min/max" `Quick test_min_max;
      Alcotest.test_case "histogram" `Quick test_histogram;
      Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
      QCheck_alcotest.to_alcotest prop_pearson_bounded;
      QCheck_alcotest.to_alcotest prop_pearson_affine_invariant;
      QCheck_alcotest.to_alcotest prop_median_bounded;
    ] )
