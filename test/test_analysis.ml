open Analysis

(* --- Sync ------------------------------------------------------------ *)

let sine ?(phase = 0.) ?(period = 10.) ~t0 ~t1 ~dt () =
  let s = Trace.Series.create () in
  let t = ref t0 in
  while !t < t1 do
    Trace.Series.add s ~time:!t
      ~value:(sin (((2. *. Float.pi *. !t) /. period) +. phase));
    t := !t +. dt
  done;
  s

let test_sync_in_phase () =
  let a = sine ~t0:0. ~t1:100. ~dt:0.1 () in
  let b = sine ~t0:0. ~t1:100. ~dt:0.1 () in
  let phase, r = Sync.classify a b ~t0:0. ~t1:100. ~dt:0.5 in
  Alcotest.(check bool) "in phase" true (phase = Sync.In_phase);
  Alcotest.(check bool) "strong correlation" true (r > 0.9)

let test_sync_out_of_phase () =
  let a = sine ~t0:0. ~t1:100. ~dt:0.1 () in
  let b = sine ~phase:Float.pi ~t0:0. ~t1:100. ~dt:0.1 () in
  let phase, r = Sync.classify a b ~t0:0. ~t1:100. ~dt:0.5 in
  Alcotest.(check bool) "out of phase" true (phase = Sync.Out_of_phase);
  Alcotest.(check bool) "strong anticorrelation" true (r < -0.9)

(* Phase classification is a statement about the *shape* of the two
   signals, so it must not depend on their units: scaling both series by
   a positive factor leaves the phase and the correlation unchanged. *)
let prop_sync_scale_invariant =
  QCheck.Test.make ~name:"classify invariant under positive series scaling"
    ~count:100
    QCheck.(
      pair
        (pair
           (list_of_size (Gen.int_range 4 40) (float_bound_inclusive 20.))
           (list_of_size (Gen.int_range 4 40) (float_bound_inclusive 20.)))
        (float_range 0.05 40.))
    (fun ((vs_a, vs_b), scale) ->
      let series vs k =
        let s = Trace.Series.create () in
        List.iteri
          (fun i v -> Trace.Series.add s ~time:(float_of_int i) ~value:(k *. v))
          vs;
        s
      in
      let t1 = float_of_int (max (List.length vs_a) (List.length vs_b)) in
      let classify k =
        Sync.classify (series vs_a k) (series vs_b k) ~t0:0. ~t1 ~dt:0.5
      in
      (* Near-constant signals sit on the correlation's degenerate-variance
         cutoff, where scaling can flip the fallback branch. *)
      let grid vs =
        Trace.Series.resample (series vs 1.) ~t0:0. ~t1 ~dt:0.5
      in
      QCheck.assume
        (Stats.variance (grid vs_a) > 1e-6 && Stats.variance (grid vs_b) > 1e-6);
      let phase, r = classify 1. in
      let phase', r' = classify scale in
      phase = phase' && Float.abs (r -. r') < 1e-6)

let test_sync_unclassified () =
  let a = sine ~t0:0. ~t1:100. ~dt:0.1 () in
  let b = Trace.Series.of_list [ (0., 5.) ] in
  let phase, _ = Sync.classify a b ~t0:0. ~t1:100. ~dt:0.5 in
  Alcotest.(check string) "constant is unclassifiable" "unclassified"
    (Sync.phase_to_string phase)

(* --- Clustering ------------------------------------------------------ *)

let dep ?(kind = Net.Packet.Data) conn time =
  { Trace.Dep_log.time; conn; kind; seq = 0 }

let test_clustering_complete () =
  let records = List.init 10 (fun i -> dep 1 (float_of_int i)) in
  Alcotest.(check (option (float 1e-9))) "single conn" (Some 1.)
    (Clustering.coefficient records)

let test_clustering_interleaved () =
  let records = List.init 10 (fun i -> dep (1 + (i mod 2)) (float_of_int i)) in
  Alcotest.(check (option (float 1e-9))) "alternating" (Some 0.)
    (Clustering.coefficient records)

let test_clustering_edge () =
  Alcotest.(check (option (float 0.))) "empty" None (Clustering.coefficient []);
  Alcotest.(check (option (float 0.))) "singleton" None
    (Clustering.coefficient [ dep 1 0. ])

let test_run_lengths () =
  let records =
    [ dep 1 0.; dep 1 1.; dep 2 2.; dep 1 3.; dep 1 4.; dep 1 5. ]
  in
  Alcotest.(check (list int)) "runs" [ 2; 1; 3 ] (Clustering.run_lengths records);
  Alcotest.(check (option (float 1e-9))) "mean run" (Some 2.)
    (Clustering.mean_run_length records)

let test_data_only () =
  let records = [ dep 1 0.; dep ~kind:Net.Packet.Ack 2 1.; dep 1 2. ] in
  Alcotest.(check int) "acks filtered" 2
    (List.length (Clustering.data_only records))

let test_interleaved_baseline () =
  Alcotest.(check (float 1e-9)) "1/n" 0.25 (Clustering.interleaved_baseline ~n:4);
  Alcotest.(check (float 1e-9)) "n=1" 1. (Clustering.interleaved_baseline ~n:1)

let prop_runs_sum =
  QCheck.Test.make ~name:"run lengths partition the record list" ~count:200
    QCheck.(list (int_range 1 3))
    (fun conns ->
      let records = List.mapi (fun i c -> dep c (float_of_int i)) conns in
      List.fold_left ( + ) 0 (Clustering.run_lengths records)
      = List.length records)

(* --- Ackcomp --------------------------------------------------------- *)

let test_ack_spacing_compressed () =
  (* ACK cluster leaving at 8 ms spacing vs an 80 ms data tx time. *)
  let records =
    List.init 11 (fun i -> dep ~kind:Net.Packet.Ack 1 (0.008 *. float_of_int i))
  in
  match Ackcomp.ack_spacing records ~data_tx:0.08 with
  | Some sp ->
    Alcotest.(check (float 1e-9)) "median gap" 0.008 sp.Ackcomp.median_gap;
    Alcotest.(check (float 1e-9)) "ratio 0.1" 0.1 sp.Ackcomp.ratio;
    Alcotest.(check (float 1e-9)) "all compressed" 1. sp.Ackcomp.compressed_fraction;
    Alcotest.(check int) "samples" 10 sp.Ackcomp.samples
  | None -> Alcotest.fail "expected spacing"

let test_ack_spacing_clocked () =
  (* Intact ACK clock: gaps equal the data tx time. *)
  let records =
    List.init 11 (fun i -> dep ~kind:Net.Packet.Ack 1 (0.08 *. float_of_int i))
  in
  match Ackcomp.ack_spacing records ~data_tx:0.08 with
  | Some sp ->
    Alcotest.(check (float 1e-9)) "ratio 1" 1. sp.Ackcomp.ratio;
    Alcotest.(check (float 1e-9)) "none compressed" 0. sp.Ackcomp.compressed_fraction
  | None -> Alcotest.fail "expected spacing"

let test_ack_spacing_requires_pairs () =
  (* Data between ACKs, or different connections: no same-conn pair. *)
  let records = [ dep ~kind:Net.Packet.Ack 1 0.; dep 1 0.01;
                  dep ~kind:Net.Packet.Ack 2 0.02 ] in
  Alcotest.(check bool) "no pairs" true
    (Ackcomp.ack_spacing records ~data_tx:0.08 = None)

let test_fluctuation_rate () =
  (* A square wave jumping by 10 every 0.5 s: every swing is an event. *)
  let s = Trace.Series.create () in
  for i = 0 to 99 do
    Trace.Series.add s ~time:(0.5 *. float_of_int i)
      ~value:(if i mod 2 = 0 then 0. else 10.)
  done;
  let rate = Ackcomp.fluctuation_rate s ~t0:0. ~t1:50. ~window:0.6 ~threshold:5. in
  Alcotest.(check bool) "high rate" true (rate > 1.5);
  (* A flat series scores zero. *)
  let flat = Trace.Series.of_list [ (0., 3.); (50., 3.) ] in
  Alcotest.(check (float 1e-9)) "flat scores zero" 0.
    (Ackcomp.fluctuation_rate flat ~t0:0. ~t1:50. ~window:0.6 ~threshold:5.)

let test_fluctuation_slow_ramp () =
  (* A slow ramp never moves 5 packets within the window: no events. *)
  let s = Trace.Series.create () in
  for i = 0 to 499 do
    Trace.Series.add s ~time:(0.1 *. float_of_int i) ~value:(0.02 *. float_of_int i)
  done;
  Alcotest.(check (float 1e-9)) "ramp scores zero" 0.
    (Ackcomp.fluctuation_rate s ~t0:0. ~t1:50. ~window:0.5 ~threshold:5.)

let test_edge_slopes () =
  (* A sawtooth: rises 10 packets in 0.1 s (slope 100), falls 10 in 0.05 s
     (slope -200), repeated. *)
  let s = Trace.Series.create () in
  for cycle = 0 to 19 do
    let base = 0.2 *. float_of_int cycle in
    for k = 0 to 9 do
      Trace.Series.add s
        ~time:(base +. (0.01 *. float_of_int k))
        ~value:(float_of_int (k + 1))
    done;
    for k = 0 to 9 do
      Trace.Series.add s
        ~time:(base +. 0.1 +. (0.005 *. float_of_int k))
        ~value:(float_of_int (9 - k))
    done;
    (* hold at the floor so the next rise starts 10 ms before its first
       sample, not at the end of this fall *)
    Trace.Series.add s ~time:(base +. 0.19) ~value:0.
  done;
  let slopes = Ackcomp.edge_slopes s ~t0:0. ~t1:4. ~min_rise:5. in
  (match slopes.Ackcomp.rising with
   | Some v -> Alcotest.(check bool) "rising ~100" true (v > 90. && v < 115.)
   | None -> Alcotest.fail "no rising edges");
  (match slopes.Ackcomp.falling with
   | Some v -> Alcotest.(check bool) "falling ~-200" true (v < -180. && v > -230.)
   | None -> Alcotest.fail "no falling edges");
  Alcotest.(check bool) "many edges" true
    (slopes.Ackcomp.rising_count > 10 && slopes.Ackcomp.falling_count > 10)

let test_edge_slopes_flat () =
  let s = Trace.Series.of_list [ (0., 3.); (10., 3.) ] in
  let slopes = Ackcomp.edge_slopes s ~t0:0. ~t1:10. ~min_rise:2. in
  Alcotest.(check bool) "flat has no edges" true
    (slopes.Ackcomp.rising = None && slopes.Ackcomp.falling = None)

let test_sync_lag () =
  (* b trails a by a quarter period (2.5 s of a 10 s sine). *)
  let a = sine ~t0:0. ~t1:200. ~dt:0.1 () in
  let b = sine ~phase:(-.(Float.pi /. 2.)) ~t0:0. ~t1:200. ~dt:0.1 () in
  match Sync.lag a b ~t0:0. ~t1:200. ~dt:0.25 ~max_lag:8. with
  | Some (lag, r) ->
    Alcotest.(check bool) "lag ~2.5s" true (Float.abs (Float.abs lag -. 2.5) < 0.5);
    Alcotest.(check bool) "strong correlation at best lag" true (r > 0.9)
  | None -> Alcotest.fail "expected a lag"

let test_sync_lag_zero_for_in_phase () =
  let a = sine ~t0:0. ~t1:200. ~dt:0.1 () in
  let b = sine ~t0:0. ~t1:200. ~dt:0.1 () in
  match Sync.lag a b ~t0:0. ~t1:200. ~dt:0.25 ~max_lag:8. with
  | Some (lag, _) -> Alcotest.(check (float 0.3)) "no shift" 0. lag
  | None -> Alcotest.fail "expected a lag"

let test_sync_lag_window_too_short () =
  let a = sine ~t0:0. ~t1:5. ~dt:0.1 () in
  Alcotest.(check bool) "too short" true
    (Sync.lag a a ~t0:0. ~t1:5. ~dt:0.5 ~max_lag:10. = None)

(* --- Chronology -------------------------------------------------------- *)

let square_pair () =
  (* Q1 and Q2 as opposed square waves: Q1 rises fast while Q2 falls,
     plateaus in between, then the roles swap.  Period 2 s. *)
  let q1 = Trace.Series.create () and q2 = Trace.Series.create () in
  for cycle = 0 to 19 do
    let base = 2. *. float_of_int cycle in
    (* plateau: Q1 low, Q2 high *)
    Trace.Series.add q1 ~time:base ~value:5.;
    Trace.Series.add q2 ~time:base ~value:25.;
    (* swing over 0.2 s *)
    for k = 0 to 9 do
      let t = base +. 0.8 +. (0.02 *. float_of_int k) in
      Trace.Series.add q1 ~time:t ~value:(5. +. (2. *. float_of_int (k + 1)));
      Trace.Series.add q2 ~time:t ~value:(25. -. (2. *. float_of_int (k + 1)))
    done;
    (* plateau: Q1 high, Q2 low *)
    Trace.Series.add q1 ~time:(base +. 1.) ~value:25.;
    Trace.Series.add q2 ~time:(base +. 1.) ~value:5.;
    (* swing back *)
    for k = 0 to 9 do
      let t = base +. 1.8 +. (0.02 *. float_of_int k) in
      Trace.Series.add q1 ~time:t ~value:(25. -. (2. *. float_of_int (k + 1)));
      Trace.Series.add q2 ~time:t ~value:(5. +. (2. *. float_of_int (k + 1)))
    done
  done;
  (q1, q2)

let test_chronology_phases () =
  let q1, q2 = square_pair () in
  let phases = Chronology.phases q1 q2 ~t0:0. ~t1:10. in
  Alcotest.(check bool) "several phases" true (List.length phases >= 8);
  (* the moving phases strictly alternate between (rise,fall) and
     (fall,rise) *)
  let moving =
    List.filter
      (fun p -> p.Chronology.q1 <> Chronology.Steady)
      phases
  in
  Alcotest.(check bool) "moving phases found" true (List.length moving >= 4);
  Alcotest.(check (option (float 1e-9))) "perfect opposition" (Some 1.)
    (Chronology.opposition phases)

let test_chronology_steady_only () =
  let flat = Trace.Series.of_list [ (0., 4.); (10., 4.) ] in
  let phases = Chronology.phases flat flat ~t0:0. ~t1:10. in
  Alcotest.(check bool) "one steady phase" true
    (List.for_all (fun p -> p.Chronology.q1 = Chronology.Steady) phases);
  Alcotest.(check (option (float 0.))) "no opposition measurable" None
    (Chronology.opposition phases)

let test_chronology_same_direction () =
  (* both queues rising together: zero opposition *)
  let mk () =
    let s = Trace.Series.create () in
    for k = 0 to 99 do
      Trace.Series.add s ~time:(0.02 *. float_of_int k) ~value:(float_of_int k)
    done;
    s
  in
  let phases = Chronology.phases (mk ()) (mk ()) ~t0:0. ~t1:2. in
  Alcotest.(check (option (float 1e-9))) "no opposition" (Some 0.)
    (Chronology.opposition phases)

let test_chronology_pp () =
  let q1, q2 = square_pair () in
  let phases = Chronology.phases q1 q2 ~t0:0. ~t1:4. in
  let text = Format.asprintf "%a" Chronology.pp phases in
  Alcotest.(check bool) "mentions rising" true
    (String.length text > 0
    && (let rec find i =
          i + 6 <= String.length text
          && (String.sub text i 6 = "rising" || find (i + 1))
        in
        find 0))

(* --- Conjecture ------------------------------------------------------ *)

let test_predict () =
  Alcotest.(check string) "clear out-of-phase" "out-of-phase, one line full"
    (Conjecture.prediction_to_string (Conjecture.predict ~w1:30 ~w2:5 ~pipe:5.));
  Alcotest.(check string) "clear in-phase" "in-phase, neither line full"
    (Conjecture.prediction_to_string (Conjecture.predict ~w1:30 ~w2:25 ~pipe:12.5));
  Alcotest.(check string) "boundary" "boundary (w1 = w2 + 2P)"
    (Conjecture.prediction_to_string (Conjecture.predict ~w1:30 ~w2:20 ~pipe:5.));
  (* argument order must not matter *)
  Alcotest.(check bool) "symmetric" true
    (Conjecture.predict ~w1:5 ~w2:30 ~pipe:5.
    = Conjecture.predict ~w1:30 ~w2:5 ~pipe:5.)

let test_observe () =
  Alcotest.(check bool) "one full" true
    (Conjecture.observe ~util1:1.0 ~util2:0.7 () = Conjecture.Out_of_phase_one_full);
  Alcotest.(check bool) "neither full" true
    (Conjecture.observe ~util1:0.8 ~util2:0.7 () = Conjecture.In_phase_neither_full);
  Alcotest.(check bool) "both full" true
    (Conjecture.observe ~util1:1.0 ~util2:0.995 () = Conjecture.Boundary)

let test_verdict () =
  Alcotest.(check bool) "match" true
    (Conjecture.verdict Conjecture.Out_of_phase_one_full
       ~observed:Conjecture.Out_of_phase_one_full);
  Alcotest.(check bool) "mismatch" false
    (Conjecture.verdict Conjecture.Out_of_phase_one_full
       ~observed:Conjecture.In_phase_neither_full);
  Alcotest.(check bool) "boundary accepts anything" true
    (Conjecture.verdict Conjecture.Boundary
       ~observed:Conjecture.In_phase_neither_full)

let suite =
  ( "analysis",
    [
      Alcotest.test_case "sync in-phase" `Quick test_sync_in_phase;
      Alcotest.test_case "sync out-of-phase" `Quick test_sync_out_of_phase;
      Alcotest.test_case "sync unclassified" `Quick test_sync_unclassified;
      QCheck_alcotest.to_alcotest prop_sync_scale_invariant;
      Alcotest.test_case "clustering complete" `Quick test_clustering_complete;
      Alcotest.test_case "clustering interleaved" `Quick
        test_clustering_interleaved;
      Alcotest.test_case "clustering edge cases" `Quick test_clustering_edge;
      Alcotest.test_case "run lengths" `Quick test_run_lengths;
      Alcotest.test_case "data only" `Quick test_data_only;
      Alcotest.test_case "interleaved baseline" `Quick test_interleaved_baseline;
      QCheck_alcotest.to_alcotest prop_runs_sum;
      Alcotest.test_case "ack spacing compressed" `Quick
        test_ack_spacing_compressed;
      Alcotest.test_case "ack spacing clocked" `Quick test_ack_spacing_clocked;
      Alcotest.test_case "ack spacing needs pairs" `Quick
        test_ack_spacing_requires_pairs;
      Alcotest.test_case "fluctuation rate" `Quick test_fluctuation_rate;
      Alcotest.test_case "fluctuation slow ramp" `Quick
        test_fluctuation_slow_ramp;
      Alcotest.test_case "edge slopes" `Quick test_edge_slopes;
      Alcotest.test_case "edge slopes flat" `Quick test_edge_slopes_flat;
      Alcotest.test_case "sync lag" `Quick test_sync_lag;
      Alcotest.test_case "sync lag in-phase" `Quick test_sync_lag_zero_for_in_phase;
      Alcotest.test_case "sync lag short window" `Quick
        test_sync_lag_window_too_short;
      Alcotest.test_case "chronology phases" `Quick test_chronology_phases;
      Alcotest.test_case "chronology steady" `Quick test_chronology_steady_only;
      Alcotest.test_case "chronology same direction" `Quick
        test_chronology_same_direction;
      Alcotest.test_case "chronology pp" `Quick test_chronology_pp;
      Alcotest.test_case "conjecture predict" `Quick test_predict;
      Alcotest.test_case "conjecture observe" `Quick test_observe;
      Alcotest.test_case "conjecture verdict" `Quick test_verdict;
    ] )
