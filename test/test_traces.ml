open Engine
open Net

(* A one-link rig with hand-fed packets. *)
let rig ?(buffer = Some 3) () =
  let sim = Sim.create () in
  let link =
    Link.create sim ~id:7 ~name:"rig" ~src:0 ~dst:1 ~bandwidth:50_000.
      ~prop_delay:0. ~buffer
  in
  Link.set_deliver link (fun _ -> ());
  let packet ?(conn = 1) ?(kind = Packet.Data) seq =
    {
      Packet.id = seq;
      conn;
      kind;
      seq;
      size = (match kind with Packet.Data -> 500 | Packet.Ack -> 50);
      src = 0;
      dst = 1;
      born = Sim.now sim;
      retransmit = false;
    }
  in
  (sim, link, packet)

let test_queue_trace () =
  let sim, link, packet = rig () in
  let qt = Trace.Queue_trace.attach link ~now:0. in
  ignore (Link.send link (packet 0) : [ `Ok | `Dropped ]);
  ignore (Link.send link (packet 1) : [ `Ok | `Dropped ]);
  Sim.run sim ~until:1.;
  let values = List.map snd (Trace.Series.to_list (Trace.Queue_trace.series qt)) in
  (* initial 0, enq->1, enq->2, dep->1, dep->0 *)
  Alcotest.(check (list (float 0.))) "occupancy history" [ 0.; 1.; 2.; 1.; 0. ]
    values;
  Alcotest.(check int) "peak" 2 (Trace.Queue_trace.peak qt);
  Alcotest.(check int) "link accessor" 7 (Link.id (Trace.Queue_trace.link qt))

let test_util_meter () =
  let sim, link, packet = rig ~buffer:None () in
  ignore (Link.send link (packet 0) : [ `Ok | `Dropped ]);
  (* one 80 ms transmission, metered from t=0 *)
  let meter = Trace.Util_meter.start link ~now:0. in
  Sim.run sim ~until:0.8;
  Alcotest.(check (float 1e-9)) "busy seconds" 0.08
    (Trace.Util_meter.busy_time meter ~now:0.8);
  Alcotest.(check (float 1e-9)) "utilization 10%" 0.1
    (Trace.Util_meter.utilization meter ~now:0.8)

let test_util_meter_window () =
  (* The meter must not count busy time before its start. *)
  let sim, link, packet = rig ~buffer:None () in
  ignore (Link.send link (packet 0) : [ `Ok | `Dropped ]);
  Sim.run sim ~until:1.;
  let meter = Trace.Util_meter.start link ~now:1. in
  Sim.run sim ~until:2.;
  Alcotest.(check (float 1e-9)) "no pre-start busy time" 0.
    (Trace.Util_meter.busy_time meter ~now:2.)

let test_util_meter_zero_width () =
  (* A zero-width window is a legal (empty) measurement, not an error:
     recorders sample metrics at the instant a meter is started. *)
  let sim, link, packet = rig ~buffer:None () in
  ignore (Link.send link (packet 0) : [ `Ok | `Dropped ]);
  Sim.run sim ~until:1.;
  let meter = Trace.Util_meter.start link ~now:1. in
  Alcotest.(check (float 0.)) "zero-width busy time" 0.
    (Trace.Util_meter.busy_time meter ~now:1.);
  Alcotest.(check (float 0.)) "zero-width utilization" 0.
    (Trace.Util_meter.utilization meter ~now:1.);
  Alcotest.check_raises "negative window still rejected"
    (Invalid_argument "Util_meter: negative measurement window") (fun () ->
      ignore (Trace.Util_meter.busy_time meter ~now:0.5 : float))

let test_drop_log () =
  let sim, link, packet = rig ~buffer:(Some 1) () in
  let log = Trace.Drop_log.create () in
  Trace.Drop_log.watch log link;
  ignore (Link.send link (packet 0) : [ `Ok | `Dropped ]);
  ignore (Link.send link (packet ~kind:Packet.Ack 1) : [ `Ok | `Dropped ]);
  ignore (Link.send link (packet 2) : [ `Ok | `Dropped ]);
  Sim.run sim ~until:1.;
  Alcotest.(check int) "two drops" 2 (Trace.Drop_log.total log);
  Alcotest.(check int) "one data drop" 1 (Trace.Drop_log.data_drops log);
  Alcotest.(check int) "one ack drop" 1 (Trace.Drop_log.ack_drops log);
  match Trace.Drop_log.records log with
  | [ first; second ] ->
    Alcotest.(check int) "first dropped seq" 1 first.Trace.Drop_log.seq;
    Alcotest.(check int) "second dropped seq" 2 second.Trace.Drop_log.seq;
    Alcotest.(check int) "link recorded" 7 first.Trace.Drop_log.link
  | _ -> Alcotest.fail "expected two records"

let test_drop_log_window () =
  let sim, link, packet = rig ~buffer:(Some 1) () in
  let log = Trace.Drop_log.create () in
  Trace.Drop_log.watch log link;
  ignore (Link.send link (packet 0) : [ `Ok | `Dropped ]);
  ignore (Link.send link (packet 1) : [ `Ok | `Dropped ]);
  (* dropped at t=0 *)
  Sim.run sim ~until:1.;
  Alcotest.(check int) "inside window" 1
    (List.length (Trace.Drop_log.in_window log ~t0:0. ~t1:0.5));
  Alcotest.(check int) "outside window" 0
    (List.length (Trace.Drop_log.in_window log ~t0:0.5 ~t1:1.))

let test_dep_log () =
  let sim, link, packet = rig ~buffer:None () in
  let dep = Trace.Dep_log.attach link in
  ignore (Link.send link (packet ~conn:1 0) : [ `Ok | `Dropped ]);
  ignore (Link.send link (packet ~conn:2 ~kind:Packet.Ack 5) : [ `Ok | `Dropped ]);
  Sim.run sim ~until:1.;
  (match Trace.Dep_log.records dep with
   | [ a; b ] ->
     Alcotest.(check int) "first out conn" 1 a.Trace.Dep_log.conn;
     Alcotest.(check (float 1e-9)) "first out at tx time" 0.08 a.Trace.Dep_log.time;
     Alcotest.(check bool) "second is the ack" true (b.Trace.Dep_log.kind = Packet.Ack);
     Alcotest.(check (float 1e-9)) "ack 8ms later" 0.088 b.Trace.Dep_log.time
   | _ -> Alcotest.fail "expected two departures");
  Alcotest.(check int) "total" 2 (Trace.Dep_log.total dep)

(* Pin the half-open [t0, t1) window semantics of every log: a record
   exactly at t0 is included, a record exactly at t1 is excluded. *)

let test_dep_log_window_boundaries () =
  let sim, link, packet = rig ~buffer:None () in
  let dep = Trace.Dep_log.attach link in
  ignore (Link.send link (packet 0) : [ `Ok | `Dropped ]);
  ignore (Link.send link (packet 1) : [ `Ok | `Dropped ]);
  Sim.run sim ~until:1.;
  (* departures at exactly 0.08 and 0.16 (two 80 ms serializations) *)
  let seqs ~t0 ~t1 =
    List.map
      (fun r -> r.Trace.Dep_log.seq)
      (Trace.Dep_log.in_window dep ~t0 ~t1)
  in
  Alcotest.(check (list int)) "record at t0 included" [ 0; 1 ]
    (seqs ~t0:0.08 ~t1:1.);
  Alcotest.(check (list int)) "record at t1 excluded" [ 0 ]
    (seqs ~t0:0.08 ~t1:0.16);
  Alcotest.(check (list int)) "zero-width window empty" []
    (seqs ~t0:0.08 ~t1:0.08)

let test_drop_log_window_boundaries () =
  let sim, link, packet = rig ~buffer:(Some 1) () in
  let log = Trace.Drop_log.create () in
  Trace.Drop_log.watch log link;
  ignore (Link.send link (packet 0) : [ `Ok | `Dropped ]);
  ignore (Link.send link (packet 1) : [ `Ok | `Dropped ]);
  (* drop recorded at exactly t=0 *)
  Sim.run sim ~until:1.;
  Alcotest.(check int) "record at t0 included" 1
    (List.length (Trace.Drop_log.in_window log ~t0:0. ~t1:0.5));
  Alcotest.(check int) "record at t1 excluded" 0
    (List.length (Trace.Drop_log.in_window log ~t0:(-1.) ~t1:0.));
  Alcotest.(check int) "zero-width window empty" 0
    (List.length (Trace.Drop_log.in_window log ~t0:0. ~t1:0.))

let test_sojourn_window_boundaries () =
  let sim, link, packet = rig ~buffer:None () in
  let soj = Trace.Sojourn_trace.attach link in
  ignore (Link.send link (packet 0) : [ `Ok | `Dropped ]);
  ignore (Link.send link (packet 1) : [ `Ok | `Dropped ]);
  Sim.run sim ~until:1.;
  (* departures (= record times) at exactly 0.08 and 0.16 *)
  let times ~t0 ~t1 =
    List.map
      (fun r -> r.Trace.Sojourn_trace.time)
      (Trace.Sojourn_trace.in_window soj ~t0 ~t1)
  in
  Alcotest.(check (list (float 1e-9))) "record at t0 included" [ 0.08; 0.16 ]
    (times ~t0:0.08 ~t1:1.);
  Alcotest.(check (list (float 1e-9))) "record at t1 excluded" [ 0.08 ]
    (times ~t0:0.08 ~t1:0.16);
  Alcotest.(check (list (float 1e-9))) "zero-width window empty" []
    (times ~t0:0.16 ~t1:0.16)

let test_cwnd_trace () =
  let sim = Sim.create () in
  let d = Topology.dumbbell sim (Topology.params ~tau:0.01 ~buffer:(Some 20) ()) in
  let config = Tcp.Config.make ~conn:1 ~src_host:d.host1 ~dst_host:d.host2 () in
  let conn = Tcp.Connection.create d.net config in
  let trace = Trace.Cwnd_trace.attach (Tcp.Connection.sender conn) ~now:0. in
  Sim.run sim ~until:10.;
  Alcotest.(check int) "conn id" 1 (Trace.Cwnd_trace.conn trace);
  Alcotest.(check bool) "cwnd samples recorded" true
    (Trace.Series.length (Trace.Cwnd_trace.cwnd trace) > 5);
  Alcotest.(check bool) "ssthresh recorded too" true
    (Trace.Series.length (Trace.Cwnd_trace.ssthresh trace) > 1);
  (* the trace follows the live value *)
  match Trace.Series.value_at (Trace.Cwnd_trace.cwnd trace) ~time:10. with
  | Some v ->
    Alcotest.(check (float 1e-6)) "last sample = live cwnd"
      (Tcp.Connection.cwnd conn) v
  | None -> Alcotest.fail "no samples"

let suite =
  ( "traces",
    [
      Alcotest.test_case "queue trace" `Quick test_queue_trace;
      Alcotest.test_case "util meter" `Quick test_util_meter;
      Alcotest.test_case "util meter window" `Quick test_util_meter_window;
      Alcotest.test_case "util meter zero-width window" `Quick
        test_util_meter_zero_width;
      Alcotest.test_case "drop log" `Quick test_drop_log;
      Alcotest.test_case "drop log window" `Quick test_drop_log_window;
      Alcotest.test_case "dep log" `Quick test_dep_log;
      Alcotest.test_case "dep log window boundaries" `Quick
        test_dep_log_window_boundaries;
      Alcotest.test_case "drop log window boundaries" `Quick
        test_drop_log_window_boundaries;
      Alcotest.test_case "sojourn window boundaries" `Quick
        test_sojourn_window_boundaries;
      Alcotest.test_case "cwnd trace" `Quick test_cwnd_trace;
    ] )
