(* Golden regression tests.

   The simulator is deterministic, so canonical scenarios must reproduce
   these exact numbers on every machine.  If a deliberate model change
   alters them, update the constants — the point is that it cannot happen
   silently. *)

let run scenario = Core.Runner.run scenario

let test_oneway_golden () =
  let r =
    run
      (Core.Scenario.make ~name:"golden-oneway" ~tau:1.0 ~buffer:(Some 20)
         ~conns:[ Core.Scenario.conn Core.Scenario.Forward ]
         ~duration:120. ~warmup:40. ())
  in
  let _, conn = r.conns.(0) in
  (* pin the exact trajectory *)
  Alcotest.(check int) "packets delivered end-to-end" 770
    (Tcp.Connection.delivered conn);
  Alcotest.(check int) "total drops" 46 (Trace.Drop_log.total r.drops);
  Alcotest.(check int) "window-restricted delivery" 656 r.delivered.(0)

let test_twoway_golden () =
  let r =
    run
      (Core.Scenario.make ~name:"golden-twoway" ~tau:0.01 ~buffer:(Some 20)
         ~conns:
           (Core.Scenario.stagger ~step:1.0
              [
                Core.Scenario.conn Core.Scenario.Forward;
                Core.Scenario.conn Core.Scenario.Reverse;
              ])
         ~duration:120. ~warmup:40. ())
  in
  let total = r.delivered.(0) + r.delivered.(1) in
  Alcotest.(check int) "aggregate delivery" 1231 total;
  Alcotest.(check int) "total drops" 66 (Trace.Drop_log.total r.drops)

let test_fixed_golden () =
  let r =
    run (Core.Experiments.scenario_fixed ~tau:0.01 ~w1:30 ~w2:25
           Core.Experiments.Quick)
  in
  Alcotest.(check int) "conn1 delivered" 1380 r.delivered.(0);
  Alcotest.(check int) "conn2 delivered" 1150 r.delivered.(1);
  Alcotest.(check int) "no drops" 0 (Trace.Drop_log.total r.drops)

let suite =
  ( "regression (golden values)",
    [
      Alcotest.test_case "one-way trajectory" `Quick test_oneway_golden;
      Alcotest.test_case "two-way trajectory" `Quick test_twoway_golden;
      Alcotest.test_case "fixed-window trajectory" `Quick test_fixed_golden;
    ] )
