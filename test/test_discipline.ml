open Net

let packet ?(conn = 1) ?(kind = Packet.Data) seq =
  {
    Packet.id = seq;
    conn;
    kind;
    seq;
    size = 500;
    src = 0;
    dst = 1;
    born = 0.;
    retransmit = false;
  }

let seqs_of d =
  List.map (fun p -> p.Packet.seq) (Discipline.contents d)

let drain d =
  let rec go acc =
    match Discipline.dequeue d with
    | None -> List.rev acc
    | Some p -> go (p.Packet.seq :: acc)
  in
  go []

(* --- FIFO ------------------------------------------------------------ *)

let test_fifo_order_and_droptail () =
  let d = Discipline.create Discipline.Fifo ~capacity:(Some 3) in
  Alcotest.(check bool) "a" true (Discipline.enqueue d (packet 0) ~in_service:0 = Discipline.Accepted);
  Alcotest.(check bool) "b" true (Discipline.enqueue d (packet 1) ~in_service:0 = Discipline.Accepted);
  (* an in-service packet counts against the buffer *)
  Alcotest.(check bool) "c rejected (2 stored + 1 in service)" true
    (Discipline.enqueue d (packet 2) ~in_service:1 = Discipline.Rejected);
  Alcotest.(check bool) "c fits without in-service" true
    (Discipline.enqueue d (packet 2) ~in_service:0 = Discipline.Accepted);
  Alcotest.(check (list int)) "fifo order" [ 0; 1; 2 ] (drain d)

(* --- Random drop ------------------------------------------------------ *)

let test_random_drop_always_drops_something () =
  let d =
    Discipline.create (Discipline.Random_drop { seed = 3 }) ~capacity:(Some 4)
  in
  for i = 0 to 3 do
    ignore (Discipline.enqueue d (packet i) ~in_service:0 : Discipline.outcome)
  done;
  (* buffer full: each arrival must cost exactly one packet, somewhere *)
  let arrivals = 50 in
  let rejected = ref 0 and evicted = ref 0 in
  for i = 4 to 3 + arrivals do
    match Discipline.enqueue d (packet i) ~in_service:0 with
    | Discipline.Accepted -> Alcotest.fail "accepted into a full buffer"
    | Discipline.Rejected -> incr rejected
    | Discipline.Evicted _ -> incr evicted
  done;
  Alcotest.(check int) "every overflow resolved" arrivals (!rejected + !evicted);
  Alcotest.(check int) "occupancy constant" 4 (Discipline.length d);
  (* with 50 arrivals and a uniform 1/5 chance of rejecting the arrival,
     both outcomes must occur *)
  Alcotest.(check bool) "sometimes rejects the arrival" true (!rejected > 0);
  Alcotest.(check bool) "sometimes evicts a queued packet" true (!evicted > 0)

let test_random_drop_service_order_fifo () =
  let d =
    Discipline.create (Discipline.Random_drop { seed = 5 }) ~capacity:(Some 10)
  in
  for i = 0 to 5 do
    ignore (Discipline.enqueue d (packet i) ~in_service:0 : Discipline.outcome)
  done;
  Alcotest.(check (list int)) "no overflow: plain FIFO" [ 0; 1; 2; 3; 4; 5 ]
    (drain d)

let test_random_drop_deterministic () =
  let run () =
    let d =
      Discipline.create (Discipline.Random_drop { seed = 9 }) ~capacity:(Some 3)
    in
    let log = ref [] in
    for i = 0 to 20 do
      match Discipline.enqueue d (packet i) ~in_service:0 with
      | Discipline.Accepted -> log := `A :: !log
      | Discipline.Rejected -> log := `R :: !log
      | Discipline.Evicted p -> log := `E p.Packet.seq :: !log
    done;
    !log
  in
  Alcotest.(check bool) "same seed same outcome" true (run () = run ())

(* --- Fair queueing ---------------------------------------------------- *)

let test_fq_round_robin () =
  let d = Discipline.create Discipline.Fair_queue ~capacity:None in
  (* conn 1 floods; conn 2 sends a little *)
  List.iter
    (fun (conn, seq) ->
      ignore (Discipline.enqueue d (packet ~conn seq) ~in_service:0
          : Discipline.outcome))
    [ (1, 10); (1, 11); (1, 12); (2, 20); (2, 21) ];
  Alcotest.(check (list int)) "alternating service" [ 10; 20; 11; 21; 12 ]
    (drain d)

let test_fq_drops_from_longest () =
  let d = Discipline.create Discipline.Fair_queue ~capacity:(Some 4) in
  List.iter
    (fun (conn, seq) ->
      ignore (Discipline.enqueue d (packet ~conn seq) ~in_service:0
          : Discipline.outcome))
    [ (1, 10); (1, 11); (1, 12); (2, 20) ];
  (* conn 2's arrival must evict from conn 1 (the hog), not be rejected *)
  (match Discipline.enqueue d (packet ~conn:2 21) ~in_service:0 with
   | Discipline.Evicted victim ->
     Alcotest.(check int) "victim from the hog" 1 victim.Packet.conn;
     Alcotest.(check int) "tail of the hog's queue" 12 victim.Packet.seq
   | _ -> Alcotest.fail "expected an eviction");
  (* the hog's own arrival into a full buffer is simply rejected *)
  (match Discipline.enqueue d (packet ~conn:1 13) ~in_service:0 with
   | Discipline.Rejected -> ()
   | _ -> Alcotest.fail "hog should be rejected");
  Alcotest.(check int) "occupancy" 4 (Discipline.length d)

let test_fq_class_refill () =
  (* A class emptied and refilled must not be served twice in a round. *)
  let d = Discipline.create Discipline.Fair_queue ~capacity:None in
  ignore (Discipline.enqueue d (packet ~conn:1 0) ~in_service:0 : Discipline.outcome);
  Alcotest.(check (list int)) "drain" [ 0 ] (drain d);
  ignore (Discipline.enqueue d (packet ~conn:1 1) ~in_service:0 : Discipline.outcome);
  ignore (Discipline.enqueue d (packet ~conn:2 2) ~in_service:0 : Discipline.outcome);
  Alcotest.(check (list int)) "clean rotation" [ 1; 2 ] (drain d)

let test_kind_to_string () =
  Alcotest.(check string) "fifo" "fifo" (Discipline.kind_to_string Discipline.Fifo);
  Alcotest.(check string) "rd" "random-drop"
    (Discipline.kind_to_string (Discipline.Random_drop { seed = 1 }));
  Alcotest.(check string) "fq" "fair-queue"
    (Discipline.kind_to_string Discipline.Fair_queue)

let prop_fq_conservation =
  QCheck.Test.make ~name:"fair queue conserves packets" ~count:200
    QCheck.(list (pair (int_range 1 4) small_nat))
    (fun arrivals ->
      let d = Discipline.create Discipline.Fair_queue ~capacity:(Some 5) in
      let stored = ref 0 in
      List.iteri
        (fun i (conn, _) ->
          match Discipline.enqueue d (packet ~conn i) ~in_service:0 with
          | Discipline.Accepted -> incr stored
          | Discipline.Rejected -> ()
          | Discipline.Evicted _ -> ()  (* +1 stored, -1 evicted *))
        arrivals;
      let drained = List.length (drain d) in
      drained = !stored && Discipline.length d = 0)

let prop_fq_interleaves =
  (* With two equally loaded classes, service strictly alternates. *)
  QCheck.Test.make ~name:"fair queue alternates equal loads" ~count:100
    QCheck.(int_range 1 20)
    (fun n ->
      let d = Discipline.create Discipline.Fair_queue ~capacity:None in
      for i = 0 to n - 1 do
        ignore (Discipline.enqueue d (packet ~conn:1 i) ~in_service:0
            : Discipline.outcome);
        ignore (Discipline.enqueue d (packet ~conn:2 (100 + i)) ~in_service:0
            : Discipline.outcome)
      done;
      let rec alternates last = function
        | [] -> true
        | p :: rest -> p <> last && alternates p rest
      in
      let conns =
        let rec go acc =
          match Discipline.dequeue d with
          | None -> List.rev acc
          | Some p -> go (p.Packet.conn :: acc)
        in
        go []
      in
      alternates 0 conns)

let suite =
  ( "discipline",
    [
      Alcotest.test_case "fifo order and drop-tail" `Quick
        test_fifo_order_and_droptail;
      Alcotest.test_case "random drop resolves overflow" `Quick
        test_random_drop_always_drops_something;
      Alcotest.test_case "random drop serves FIFO" `Quick
        test_random_drop_service_order_fifo;
      Alcotest.test_case "random drop deterministic" `Quick
        test_random_drop_deterministic;
      Alcotest.test_case "fq round robin" `Quick test_fq_round_robin;
      Alcotest.test_case "fq drops from longest" `Quick test_fq_drops_from_longest;
      Alcotest.test_case "fq class refill" `Quick test_fq_class_refill;
      Alcotest.test_case "kind to string" `Quick test_kind_to_string;
      QCheck_alcotest.to_alcotest prop_fq_conservation;
      QCheck_alcotest.to_alcotest prop_fq_interleaves;
    ] )
