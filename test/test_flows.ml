(* Sized flows, sojourn traces, and randomized whole-system robustness. *)

open Engine
open Net
open Tcp

let dumbbell ?(tau = 0.01) ?(buffer = Some 20) () =
  let sim = Sim.create () in
  let d = Topology.dumbbell sim (Topology.params ~tau ~buffer ()) in
  (sim, d)

(* --- Sized flows ------------------------------------------------------ *)

let test_flow_completes () =
  let sim, d = dumbbell () in
  let conn =
    Connection.create d.net
      (Config.make ~conn:1 ~src_host:d.host1 ~dst_host:d.host2
         ~flow_size:(Some 100) ())
  in
  let completions = ref [] in
  Sender.on_complete (Connection.sender conn) (fun time ->
      completions := time :: !completions);
  Sim.run sim ~until:120.;
  let sender = Connection.sender conn in
  Alcotest.(check bool) "completed" true (Sender.completed sender);
  Alcotest.(check int) "exactly the flow delivered" 100
    (Connection.delivered conn);
  Alcotest.(check int) "hook fired once" 1 (List.length !completions);
  Alcotest.(check int) "no data beyond the flow" 100 (Sender.data_sent sender);
  (* 100 packets at 12.5 pkt/s bottleneck: at least 8 s, well under 120 *)
  (match Sender.completed_at sender with
   | Some t -> Alcotest.(check bool) "completion time sane" true (t > 8. && t < 60.)
   | None -> Alcotest.fail "no completion time")

let test_flow_completes_despite_losses () =
  let sim, d = dumbbell ~buffer:(Some 4) () in
  let conn =
    Connection.create d.net
      (Config.make ~conn:1 ~src_host:d.host1 ~dst_host:d.host2
         ~flow_size:(Some 200) ())
  in
  Sim.run sim ~until:300.;
  Alcotest.(check bool) "losses occurred" true (Link.total_drops d.fwd > 0);
  Alcotest.(check bool) "still completed" true
    (Sender.completed (Connection.sender conn));
  Alcotest.(check int) "all packets delivered in order" 200
    (Receiver.rcv_nxt (Connection.receiver conn))

let test_flow_sender_goes_quiet () =
  let sim, d = dumbbell () in
  let conn =
    Connection.create d.net
      (Config.make ~conn:1 ~src_host:d.host1 ~dst_host:d.host2
         ~flow_size:(Some 20) ())
  in
  Sim.run sim ~until:60.;
  let events_at_60 = Sim.events_run sim in
  Sim.run sim ~until:120.;
  Alcotest.(check bool) "flow done" true (Sender.completed (Connection.sender conn));
  Alcotest.(check int) "no further activity after completion" events_at_60
    (Sim.events_run sim)

let test_infinite_flow_never_completes () =
  let sim, d = dumbbell () in
  let conn =
    Connection.create d.net
      (Config.make ~conn:1 ~src_host:d.host1 ~dst_host:d.host2 ())
  in
  Sim.run sim ~until:60.;
  Alcotest.(check bool) "infinite source" false
    (Sender.completed (Connection.sender conn))

let test_bad_flow_size () =
  let raised =
    try
      ignore
        (Config.make ~conn:1 ~src_host:0 ~dst_host:1 ~flow_size:(Some 0) ()
          : Config.t);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "zero flow rejected" true raised

(* --- Sojourn trace ----------------------------------------------------- *)

let test_sojourn_values () =
  let sim = Sim.create () in
  let link =
    Link.create sim ~id:0 ~name:"s" ~src:0 ~dst:1 ~bandwidth:50_000.
      ~prop_delay:0. ~buffer:None
  in
  Link.set_deliver link (fun _ -> ());
  let trace = Trace.Sojourn_trace.attach link in
  let packet seq =
    {
      Packet.id = seq;
      conn = 1;
      kind = Packet.Data;
      seq;
      size = 500;
      src = 0;
      dst = 1;
      born = 0.;
      retransmit = false;
    }
  in
  ignore (Link.send link (packet 0) : [ `Ok | `Dropped ]);
  ignore (Link.send link (packet 1) : [ `Ok | `Dropped ]);
  Sim.run sim ~until:1.;
  (match Trace.Sojourn_trace.records trace with
   | [ a; b ] ->
     (* first: serialization only (80 ms); second: waits behind it *)
     Alcotest.(check (float 1e-9)) "head sojourn" 0.08 a.Trace.Sojourn_trace.sojourn;
     Alcotest.(check (float 1e-9)) "queued sojourn" 0.16 b.Trace.Sojourn_trace.sojourn
   | _ -> Alcotest.fail "expected two records");
  Alcotest.(check (option (float 1e-9))) "mean data sojourn" (Some 0.12)
    (Trace.Sojourn_trace.mean_sojourn trace ~kind:Packet.Data ~t0:0. ~t1:1.);
  Alcotest.(check bool) "no acks crossed" true
    (Trace.Sojourn_trace.mean_sojourn trace ~kind:Packet.Ack ~t0:0. ~t1:1. = None)

let test_effective_pipe_from_acks () =
  let sim = Sim.create () in
  let link =
    Link.create sim ~id:0 ~name:"s" ~src:0 ~dst:1 ~bandwidth:50_000.
      ~prop_delay:0. ~buffer:None
  in
  Link.set_deliver link (fun _ -> ());
  let trace = Trace.Sojourn_trace.attach link in
  let data =
    {
      Packet.id = 0;
      conn = 1;
      kind = Packet.Data;
      seq = 0;
      size = 500;
      src = 0;
      dst = 1;
      born = 0.;
      retransmit = false;
    }
  in
  let ack = { data with Packet.id = 1; kind = Packet.Ack; size = 50 } in
  ignore (Link.send link data : [ `Ok | `Dropped ]);
  ignore (Link.send link ack : [ `Ok | `Dropped ]);
  Sim.run sim ~until:1.;
  (* the ACK waited a full data transmission + its own 8 ms *)
  match
    Trace.Sojourn_trace.effective_pipe_packets trace ~data_tx:0.08 ~t0:0. ~t1:1.
  with
  | Some pipe -> Alcotest.(check (float 1e-6)) "1.1 data slots" 1.1 pipe
  | None -> Alcotest.fail "expected an ack sojourn"

let test_runner_effective_pipe () =
  (* Two-way traffic queues ACKs; one-way barely does. *)
  let run conns =
    Core.Runner.run
      (Core.Scenario.make ~name:"ep" ~tau:0.01 ~buffer:(Some 20) ~conns
         ~duration:120. ~warmup:40. ())
  in
  let oneway = run [ Core.Scenario.conn Core.Scenario.Forward ] in
  let twoway =
    run
      [
        Core.Scenario.conn Core.Scenario.Forward;
        Core.Scenario.conn ~start_time:1. Core.Scenario.Reverse;
      ]
  in
  match (Core.Runner.effective_pipe oneway, Core.Runner.effective_pipe twoway) with
  | Some one, Some two ->
    Alcotest.(check bool) "one-way acks barely queue" true (one < 0.6);
    Alcotest.(check bool) "two-way acks queue substantially" true (two > 1.)
  | _ -> Alcotest.fail "expected effective pipes"

(* --- Randomized whole-system robustness -------------------------------- *)

let prop_random_scenarios_hold_invariants =
  (* Any small scenario must preserve the core invariants: sender/receiver
     agreement, link conservation, sane utilization. *)
  let gen =
    QCheck.Gen.(
      let* tau = oneofl [ 0.01; 0.1; 1.0 ] in
      let* buffer = int_range 4 40 in
      let* fwd = int_range 1 3 in
      let* rev = int_range 0 2 in
      let* reno = bool in
      let* delack = bool in
      return (tau, buffer, fwd, rev, reno, delack))
  in
  QCheck.Test.make ~name:"random scenarios keep system invariants" ~count:25
    (QCheck.make gen) (fun (tau, buffer, fwd, rev, reno, delack) ->
      let algorithm =
        if reno then Cong.Reno { modified_ca = true }
        else Cong.Tahoe { modified_ca = true }
      in
      let conn dir = Core.Scenario.conn ~algorithm ~delayed_ack:delack dir in
      let scenario =
        Core.Scenario.make ~name:"random" ~tau ~buffer:(Some buffer)
          ~conns:
            (Core.Scenario.stagger ~step:0.9
               (List.init fwd (fun _ -> conn Core.Scenario.Forward)
               @ List.init rev (fun _ -> conn Core.Scenario.Reverse)))
          ~duration:80. ~warmup:30. ()
      in
      let r = Core.Runner.run scenario in
      let utils_ok =
        r.util_fwd >= 0. && r.util_fwd <= 1.0 +. 1e-9
        && r.util_bwd >= 0.
        && r.util_bwd <= 1.0 +. 1e-9
      in
      (* The receiver may be (boundedly) ahead of the sender: ACKs still in
         flight, or lost to a tiny reverse buffer.  It can never be behind. *)
      let agreement_ok =
        Array.for_all
          (fun (_spec, c) ->
            let snd = Sender.snd_una (Connection.sender c) in
            let rcv = Receiver.rcv_nxt (Connection.receiver c) in
            rcv >= snd && rcv - snd <= 64)
          r.conns
      in
      let conservation_ok =
        List.for_all
          (fun link ->
            let c = Link.counters link in
            c.Link.enq_data + c.Link.enq_ack
            = c.Link.dep_data + c.Link.dep_ack + Link.queue_length link)
          (Network.links r.dumbbell.Net.Topology.net)
      in
      let progress_ok =
        Array.for_all (fun (_spec, c) -> Connection.delivered c > 0) r.conns
      in
      utils_ok && agreement_ok && conservation_ok && progress_ok)

let suite =
  ( "flows and sojourn",
    [
      Alcotest.test_case "sized flow completes" `Quick test_flow_completes;
      Alcotest.test_case "flow completes despite losses" `Quick
        test_flow_completes_despite_losses;
      Alcotest.test_case "sender goes quiet" `Quick test_flow_sender_goes_quiet;
      Alcotest.test_case "infinite flow never completes" `Quick
        test_infinite_flow_never_completes;
      Alcotest.test_case "bad flow size" `Quick test_bad_flow_size;
      Alcotest.test_case "sojourn values" `Quick test_sojourn_values;
      Alcotest.test_case "effective pipe from acks" `Quick
        test_effective_pipe_from_acks;
      Alcotest.test_case "runner effective pipe" `Quick
        test_runner_effective_pipe;
      QCheck_alcotest.to_alcotest prop_random_scenarios_hold_invariants;
    ] )
