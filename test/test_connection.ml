open Engine
open Net
open Tcp

(* Full end-to-end connections over the paper's dumbbell. *)
let dumbbell ?(tau = 0.01) ?(buffer = Some 20) () =
  let sim = Sim.create () in
  let d = Topology.dumbbell sim (Topology.params ~tau ~buffer ()) in
  (sim, d)

let test_reliable_in_order_delivery () =
  let sim, d = dumbbell () in
  let config = Config.make ~conn:1 ~src_host:d.host1 ~dst_host:d.host2 () in
  let conn = Connection.create d.net config in
  Sim.run sim ~until:60.;
  let receiver = Connection.receiver conn in
  (* The receiver's cumulative counter only advances on in-order data, so
     rcv_nxt = number of packets delivered reliably and in order. *)
  Alcotest.(check bool) "many packets delivered" true
    (Receiver.rcv_nxt receiver > 300);
  (* the receiver can only be ahead by ACKs still in flight *)
  let gap = Receiver.rcv_nxt receiver - Sender.snd_una (Connection.sender conn) in
  Alcotest.(check bool) "sender within an ack-flight of the receiver" true
    (gap >= 0 && gap <= 4)

let test_throughput_near_capacity () =
  let sim, d = dumbbell ~tau:0.01 () in
  let config = Config.make ~conn:1 ~src_host:d.host1 ~dst_host:d.host2 () in
  let conn = Connection.create d.net config in
  Sim.run sim ~until:100.;
  let delivered_50 = Connection.delivered conn in
  Sim.run sim ~until:200.;
  let rate =
    float_of_int (Connection.delivered conn - delivered_50) /. 100.
  in
  (* Bottleneck capacity is 12.5 packets/s; one connection with a tiny
     pipe should stay close to it. *)
  Alcotest.(check bool) "goodput near 12.5 pkt/s" true
    (rate > 11. && rate <= 12.6)

let test_losses_recovered () =
  let sim, d = dumbbell ~tau:1.0 ~buffer:(Some 5) () in
  (* A small buffer forces plenty of drops. *)
  let config = Config.make ~conn:1 ~src_host:d.host1 ~dst_host:d.host2 () in
  let conn = Connection.create d.net config in
  let drops = ref 0 in
  Link.on_drop d.fwd (fun _ _ -> incr drops);
  Sim.run sim ~until:300.;
  Alcotest.(check bool) "drops happened" true (!drops > 3);
  Alcotest.(check bool) "and were all recovered" true
    (Connection.delivered conn > 1000)

let test_two_way_pair () =
  let sim, d = dumbbell ~tau:0.01 () in
  let c1 =
    Connection.create d.net
      (Config.make ~conn:1 ~src_host:d.host1 ~dst_host:d.host2 ())
  in
  let c2 =
    Connection.create d.net
      (Config.make ~conn:2 ~src_host:d.host2 ~dst_host:d.host1
         ~start_time:1.0 ())
  in
  Sim.run sim ~until:120.;
  Alcotest.(check bool) "conn1 progressed" true (Connection.delivered c1 > 100);
  Alcotest.(check bool) "conn2 progressed" true (Connection.delivered c2 > 100)

let test_determinism () =
  let run () =
    let sim, d = dumbbell ~tau:0.01 () in
    let _c1 =
      Connection.create d.net
        (Config.make ~conn:1 ~src_host:d.host1 ~dst_host:d.host2 ())
    in
    let _c2 =
      Connection.create d.net
        (Config.make ~conn:2 ~src_host:d.host2 ~dst_host:d.host1
           ~start_time:1.0 ())
    in
    let drops = ref [] in
    List.iter
      (fun link ->
        Link.on_drop link (fun t p -> drops := (t, p.Packet.conn, p.Packet.seq) :: !drops))
      (Network.links d.net);
    Sim.run sim ~until:150.;
    (!drops, Sim.events_run sim)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical drop traces" true (fst a = fst b);
  Alcotest.(check int) "identical event counts" (snd a) (snd b)

let test_fixed_window_steady_state () =
  let sim, d = dumbbell ~tau:0.01 ~buffer:None () in
  let conn =
    Connection.create d.net
      (Config.make ~conn:1 ~src_host:d.host1 ~dst_host:d.host2
         ~algorithm:(Cong.Fixed 10) ~loss_detection:false ())
  in
  Sim.run sim ~until:100.;
  let sender = Connection.sender conn in
  Alcotest.(check int) "window never moves" 10 (Tcp.Cc.window (Sender.cc sender));
  Alcotest.(check int) "exactly a window outstanding" 10
    (Sender.outstanding sender);
  Alcotest.(check int) "no retransmissions" 0 (Sender.retransmits sender)

let test_conservation () =
  (* Link-level conservation on the bottleneck after a loss-heavy run:
     everything enqueued either departed or is still queued. *)
  let sim, d = dumbbell ~tau:0.01 ~buffer:(Some 5) () in
  let _c1 =
    Connection.create d.net
      (Config.make ~conn:1 ~src_host:d.host1 ~dst_host:d.host2 ())
  in
  let _c2 =
    Connection.create d.net
      (Config.make ~conn:2 ~src_host:d.host2 ~dst_host:d.host1
         ~start_time:0.5 ())
  in
  Sim.run sim ~until:200.;
  List.iter
    (fun link ->
      let c = Link.counters link in
      Alcotest.(check int)
        ("conservation on " ^ Link.name link)
        (c.Link.enq_data + c.Link.enq_ack)
        (c.Link.dep_data + c.Link.dep_ack + Link.queue_length link))
    (Network.links d.net)

let test_goodput_helper () =
  let sim, d = dumbbell () in
  let conn =
    Connection.create d.net
      (Config.make ~conn:1 ~src_host:d.host1 ~dst_host:d.host2 ())
  in
  Sim.run sim ~until:50.;
  let at_50 = Connection.delivered conn in
  Sim.run sim ~until:150.;
  let g = Connection.goodput conn ~t0:50. ~t1:150. ~delivered_at_t0:at_50 in
  Alcotest.(check bool) "positive goodput" true (g > 0.);
  Alcotest.check_raises "empty interval rejected"
    (Invalid_argument "Connection.goodput: empty interval") (fun () ->
      ignore (Connection.goodput conn ~t0:1. ~t1:1. ~delivered_at_t0:0 : float))

let suite =
  ( "connection",
    [
      Alcotest.test_case "reliable in-order delivery" `Quick
        test_reliable_in_order_delivery;
      Alcotest.test_case "throughput near capacity" `Quick
        test_throughput_near_capacity;
      Alcotest.test_case "losses recovered" `Quick test_losses_recovered;
      Alcotest.test_case "two-way pair" `Quick test_two_way_pair;
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "fixed window steady state" `Quick
        test_fixed_window_steady_state;
      Alcotest.test_case "conservation" `Quick test_conservation;
      Alcotest.test_case "goodput helper" `Quick test_goodput_helper;
    ] )
