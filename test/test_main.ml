let () =
  Alcotest.run "tahoe-two-way-traffic"
    [
      Test_event_queue.suite;
      Test_sim.suite;
      Test_rng.suite;
      Test_units.suite;
      Test_link.suite;
      Test_network.suite;
      Test_routing.suite;
      Test_discipline.suite;
      Test_cong.suite;
      Test_cc_conformance.suite;
      Test_cc_differential.suite;
      Test_rto.suite;
      Test_receiver.suite;
      Test_sender.suite;
      Test_connection.suite;
      Test_series.suite;
      Test_traces.suite;
      Test_stats.suite;
      Test_epochs.suite;
      Test_analysis.suite;
      Test_core_modules.suite;
      Test_runner.suite;
      Test_multihop.suite;
      Test_variants.suite;
      Test_flows.suite;
      Test_regression.suite;
      Test_validate.suite;
      Test_validate_prop.suite;
      Test_faults.suite;
      Test_coverage.suite;
      Test_sweep.suite;
      Test_robustness.suite;
      Test_obs.suite;
      Test_btrace.suite;
      Test_sketch.suite;
      Test_flowstats.suite;
      Test_args.suite;
      Test_experiments.suite;
      (* Last: spawns domains, and the OCaml 5 runtime forbids
         Unix.fork in a process that has ever had more than one
         domain — every fork-based test must precede this suite. *)
      Test_domain_safety.suite;
    ]
