(* lib/obs: metrics registry, structured tracer, flight recorder, and the
   probe that wires them into a run.

   The two integration statements that matter most:
     - the binary trace of a run decodes cleanly, its JSONL export is
       valid (parseable, monotone timestamps) and its event counts agree
       exactly with the metrics counters incremented by the same hooks;
     - attaching the full probe does not change simulation results
       (byte-identical traces), checked over random scenarios.

   The binary encoding itself (roundtrip, torn tails) is covered in
   test_btrace.ml. *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let count_occurrences haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i acc =
    if i + n > h then acc
    else if String.sub haystack i n = needle then go (i + n) (acc + 1)
    else go (i + 1) acc
  in
  if n = 0 then 0 else go 0 0

(* ---------------- metrics ---------------- *)

let test_metrics_basic () =
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter reg "events" in
  let g = Obs.Metrics.gauge reg "depth" in
  Obs.Metrics.gauge_fn reg "derived" (fun () -> 42.5);
  Obs.Metrics.incr c;
  Obs.Metrics.incr c;
  Obs.Metrics.add c 3;
  Obs.Metrics.set g 7.25;
  Alcotest.(check int) "counter value" 5 (Obs.Metrics.counter_value c);
  Alcotest.(check (float 0.)) "gauge value" 7.25 (Obs.Metrics.gauge_value g);
  Alcotest.(check int) "size" 3 (Obs.Metrics.size reg);
  Alcotest.(check (list (pair string (float 0.))))
    "snapshot in registration order"
    [ ("events", 5.); ("depth", 7.25); ("derived", 42.5) ]
    (Obs.Metrics.snapshot reg);
  Alcotest.(check (option (float 0.)))
    "find" (Some 7.25)
    (Obs.Metrics.find reg "depth");
  Alcotest.(check (option (float 0.))) "find missing" None
    (Obs.Metrics.find reg "nope")

let test_metrics_duplicate_name () =
  let reg = Obs.Metrics.create () in
  ignore (Obs.Metrics.counter reg "x" : Obs.Metrics.counter);
  Alcotest.check_raises "duplicate registration rejected"
    (Invalid_argument "Metrics: duplicate metric \"x\"") (fun () ->
      ignore (Obs.Metrics.gauge reg "x" : Obs.Metrics.gauge))

let test_metrics_histogram () =
  let reg = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram reg "q" ~bounds:[| 1.; 4.; 16. |] in
  List.iter (Obs.Metrics.observe h) [ 0.; 1.; 2.; 5.; 100. ];
  Alcotest.(check (list (pair string (float 0.))))
    "cumulative buckets"
    [
      ("q.le_1", 2.); ("q.le_4", 3.); ("q.le_16", 4.); ("q.le_inf", 5.);
      ("q.count", 5.);
    ]
    (Obs.Metrics.snapshot reg);
  Alcotest.check_raises "empty bounds rejected"
    (Invalid_argument "Metrics.histogram: empty bounds") (fun () ->
      ignore (Obs.Metrics.histogram reg "e" ~bounds:[||] : Obs.Metrics.histogram));
  Alcotest.check_raises "non-increasing bounds rejected"
    (Invalid_argument "Metrics.histogram: bounds must be strictly increasing")
    (fun () ->
      ignore
        (Obs.Metrics.histogram reg "d" ~bounds:[| 1.; 1. |]
          : Obs.Metrics.histogram))

let test_metrics_json () =
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter reg "n" in
  Obs.Metrics.add c 7;
  Obs.Metrics.gauge_fn reg "frac" (fun () -> 0.125);
  let json = Obs.Metrics.to_json reg in
  (match Obs.Json.parse json with
   | Error msg -> Alcotest.failf "metrics JSON does not parse: %s" msg
   | Ok v ->
     Alcotest.(check (option (float 0.)))
       "integral field" (Some 7.)
       (Option.bind (Obs.Json.member "n" v) Obs.Json.to_float);
     Alcotest.(check (option (float 0.)))
       "fractional field" (Some 0.125)
       (Option.bind (Obs.Json.member "frac" v) Obs.Json.to_float));
  Alcotest.(check bool) "integral printed without fraction" true
    (contains json "\"n\":7,")

let test_metrics_recorder () =
  let sim = Engine.Sim.create () in
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter reg "ticks" in
  Alcotest.check_raises "dt must be positive"
    (Invalid_argument "Metrics.record: dt must be positive") (fun () ->
      ignore (Obs.Metrics.record reg sim ~dt:0. : Obs.Metrics.recorder));
  let rec_ = Obs.Metrics.record reg sim ~dt:1. in
  (* bump the counter at t = 0.5 and 1.5: samples at 0,1,2 see 0,1,2 *)
  ignore (Engine.Sim.at sim ~time:0.5 (fun () -> Obs.Metrics.incr c)
      : Engine.Sim.handle);
  ignore (Engine.Sim.at sim ~time:1.5 (fun () -> Obs.Metrics.incr c)
      : Engine.Sim.handle);
  Engine.Sim.run sim ~until:2.0;
  match Obs.Metrics.recorder_series rec_ with
  | [ ("ticks", s) ] ->
    Alcotest.(check (list (pair (float 0.) (float 0.))))
      "sampled at 0,1,2"
      [ (0., 0.); (1., 1.); (2., 2.) ]
      (Trace.Series.to_list s)
  | other ->
    Alcotest.failf "expected one recorded series, got %d" (List.length other)

(* ---------------- flight recorder ---------------- *)

let test_flight_ring () =
  Alcotest.check_raises "capacity must be >= 1"
    (Invalid_argument "Flight.create: capacity must be >= 1") (fun () ->
      ignore (Obs.Flight.create ~capacity:0 : string Obs.Flight.t));
  let f = Obs.Flight.create ~capacity:3 in
  Alcotest.(check int) "empty length" 0 (Obs.Flight.length f);
  List.iter (Obs.Flight.record f) [ "a"; "b"; "c"; "d"; "e" ];
  Alcotest.(check int) "capped length" 3 (Obs.Flight.length f);
  Alcotest.(check int) "total counts overwritten" 5 (Obs.Flight.total f);
  Alcotest.(check (list string))
    "last three, oldest first" [ "c"; "d"; "e" ]
    (Obs.Flight.entries f);
  let buf = Buffer.create 256 in
  Obs.Flight.dump f ~reason:"test" ~render:Fun.id (Buffer.add_string buf);
  let out = Buffer.contents buf in
  Alcotest.(check bool) "banner" true
    (contains out "=== flight recorder: test (last 3 of 5 events) ===");
  Alcotest.(check bool) "entries present" true (contains out "c\nd\ne\n");
  Alcotest.(check bool) "footer" true
    (contains out "=== end flight recorder ===")

let test_flight_total_saturates () =
  (* Regression: [total] used to grow without bound and was once used
     modulo capacity for slot selection; the invariant now is that the
     ring keeps working at the int boundary and [total] saturates at
     [max_int] instead of wrapping negative. *)
  let f = Obs.Flight.create ~capacity:3 in
  List.iter (Obs.Flight.record f) [ "a"; "b"; "c" ];
  Obs.Flight.force_total f (max_int - 1);
  Obs.Flight.record f "d";
  Alcotest.(check int) "total reaches max_int" max_int (Obs.Flight.total f);
  Obs.Flight.record f "e";
  Obs.Flight.record f "f";
  Alcotest.(check bool) "total never wraps negative" true
    (Obs.Flight.total f > 0);
  Alcotest.(check int) "total saturates at max_int" max_int
    (Obs.Flight.total f);
  Alcotest.(check int) "length still capped" 3 (Obs.Flight.length f);
  Alcotest.(check (list string))
    "ring order survives saturation" [ "d"; "e"; "f" ]
    (Obs.Flight.entries f);
  Alcotest.check_raises "force_total below held entries rejected"
    (Invalid_argument "Flight.force_total: below filled") (fun () ->
      Obs.Flight.force_total f 1)

(* ---------------- json ---------------- *)

let test_json_parse () =
  (match Obs.Json.parse {|{"a":[1,2.5,-3e2],"b":"x\"\n","c":null,"d":true}|}
   with
   | Error msg -> Alcotest.failf "parse failed: %s" msg
   | Ok v ->
     Alcotest.(check (option string))
       "escaped string" (Some "x\"\n")
       (Option.bind (Obs.Json.member "b" v) Obs.Json.to_string);
     (match Obs.Json.member "a" v with
      | Some (Obs.Json.List [ _; Obs.Json.Num x; Obs.Json.Num y ]) ->
        Alcotest.(check (float 0.)) "float elt" 2.5 x;
        Alcotest.(check (float 0.)) "exponent elt" (-300.) y
      | _ -> Alcotest.fail "array member missing"));
  (match Obs.Json.parse "{} garbage" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "trailing garbage accepted");
  match Obs.Json.parse "{\"a\":}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed object accepted"

let test_validate_jsonl () =
  (match Obs.Json.validate_jsonl "{\"t\":1}\n{\"t\":1}\n{\"t\":2.5}\n" with
   | Ok n -> Alcotest.(check int) "line count" 3 n
   | Error msg -> Alcotest.failf "valid stream rejected: %s" msg);
  (match Obs.Json.validate_jsonl "{\"t\":1}\n{\"t\":0.5}\n" with
   | Error msg ->
     Alcotest.(check bool) "names the offending line" true
       (contains msg "line 2")
   | Ok _ -> Alcotest.fail "non-monotone stream accepted");
  (match Obs.Json.validate_jsonl "{\"t\":1}\nnot json\n" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "garbage line accepted");
  match Obs.Json.validate_jsonl "[1,2]\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-object line accepted"

let test_float_repr_spellings () =
  (* Shortest spelling that round-trips: values representable in 9
     significant digits keep the short historical form, awkward ones
     get exactly as many digits as they need — never a lossy "0.3". *)
  Alcotest.(check string) "short decimal stays short" "0.1"
    (Obs.Json.float_repr 0.1);
  Alcotest.(check string) "integral" "7" (Obs.Json.float_repr 7.);
  Alcotest.(check string) "negative zero" "-0" (Obs.Json.float_repr (-0.));
  Alcotest.(check string) "exponent form" "1e+22" (Obs.Json.float_repr 1e22);
  Alcotest.(check string) "0.1 +. 0.2 needs 17 digits"
    "0.30000000000000004"
    (Obs.Json.float_repr (0.1 +. 0.2));
  Alcotest.(check string) "1/3 round-trips" "0.33333333333333331"
    (Obs.Json.float_repr (1. /. 3.))

let prop_float_repr_roundtrip =
  let arb =
    QCheck.make
      ~print:(Printf.sprintf "%h")
      (QCheck.Gen.map Int64.float_of_bits QCheck.Gen.int64)
  in
  QCheck.Test.make ~name:"float_repr round-trips every finite float"
    ~count:2000 arb (fun f ->
      QCheck.assume (Float.is_finite f);
      Int64.bits_of_float (float_of_string (Obs.Json.float_repr f))
      = Int64.bits_of_float f)

(* ---------------- probe integration ---------------- *)

let two_way_scenario ?(validate = false) () =
  Core.Scenario.make ~name:"obs-test" ~tau:0.01 ~buffer:(Some 20)
    ~conns:
      [
        Core.Scenario.conn Core.Scenario.Forward;
        Core.Scenario.conn ~start_time:1. Core.Scenario.Reverse;
      ]
    ~duration:20. ~warmup:1. ~validate ()

let test_runner_without_obs () =
  let r = Core.Runner.run (two_way_scenario ()) in
  Alcotest.(check bool) "no probe by default" true (r.Core.Runner.obs = None)

let test_trace_matches_counters () =
  let binary = Buffer.create (1 lsl 16) in
  let setup = Obs.Probe.setup ~btrace:(Buffer.add_string binary) () in
  let r = Core.Runner.run ~obs:setup (two_way_scenario ~validate:true ()) in
  let probe =
    match r.Core.Runner.obs with
    | Some p -> p
    | None -> Alcotest.fail "probe missing from result"
  in
  (match Core.Runner.validation_report r with
   | Some report when not (Validate.Report.is_clean report) ->
     Alcotest.failf "traced run not clean: %s" (Validate.Report.summary report)
   | _ -> ());
  (* The runner finished the probe, so the whole stream decodes with no
     torn tail; JSONL and chrome are rendered offline from the records. *)
  let items =
    match Obs.Btrace.read (Buffer.contents binary) with
    | Error msg -> Alcotest.failf "binary trace unreadable: %s" msg
    | Ok { Obs.Btrace.torn = Some msg; _ } ->
      Alcotest.failf "flushed trace reports a torn tail: %s" msg
    | Ok f -> f.Obs.Btrace.items
  in
  let jsonl = Buffer.create (1 lsl 16) in
  Obs.Btrace.export_jsonl items (Buffer.add_string jsonl);
  let chrome = Buffer.create (1 lsl 16) in
  Obs.Btrace.export_chrome items (Buffer.add_string chrome);
  let text = Buffer.contents jsonl in
  (* Every line parses; timestamps never go backwards; the line count is
     exactly the number of events the tracer claims to have emitted. *)
  (match Obs.Json.validate_jsonl text with
   | Ok lines ->
     Alcotest.(check int) "JSONL line count = events emitted"
       (Obs.Probe.events_traced probe) lines
   | Error msg -> Alcotest.failf "JSONL trace invalid: %s" msg);
  (* The counters and the trace are fed by the same hooks: counts agree. *)
  let metric name =
    match Obs.Probe.final_metrics probe |> List.assoc_opt name with
    | Some v -> int_of_float v
    | None -> Alcotest.failf "metric %s missing" name
  in
  let ev name = count_occurrences text (Printf.sprintf "\"ev\":\"%s\"" name) in
  Alcotest.(check int) "inject events = net.injected counter"
    (metric "net.injected") (ev "inject");
  Alcotest.(check int) "deliver events = net.delivered counter"
    (metric "net.delivered") (ev "deliver");
  let per_link field =
    List.fold_left
      (fun acc link -> acc + metric ("link." ^ Net.Link.name link ^ field))
      0
      (Net.Network.links r.Core.Runner.dumbbell.Net.Topology.net)
  in
  Alcotest.(check int) "enqueue events = sum of link enq counters"
    (per_link ".enq") (ev "enqueue");
  Alcotest.(check int) "drop events = sum of link drop counters"
    (per_link ".drop") (ev "drop");
  Alcotest.(check int) "depart events = sum of link dep counters"
    (per_link ".dep") (ev "depart");
  Alcotest.(check int) "ack_tx events = sum of conn ack counters"
    (metric "conn.1.acks" + metric "conn.2.acks")
    (ev "ack_tx");
  Alcotest.(check bool) "dispatched events metric is live" true
    (metric "sim.events" > 0);
  (* The Chrome rendering of the same run is one valid JSON value. *)
  match Obs.Json.parse (Buffer.contents chrome) with
  | Error msg -> Alcotest.failf "chrome trace invalid: %s" msg
  | Ok v ->
    (match Obs.Json.member "traceEvents" v with
     | Some (Obs.Json.List records) ->
       Alcotest.(check bool) "chrome has records" true
         (List.length records > Obs.Probe.events_traced probe / 2)
     | _ -> Alcotest.fail "chrome traceEvents missing")

let test_flight_dump_on_violation () =
  let sim = Engine.Sim.create () in
  let net = Net.Network.create sim in
  let h1 = Net.Network.add_host net ~name:"h1" ~proc_delay:1e-4 in
  let h2 = Net.Network.add_host net ~name:"h2" ~proc_delay:1e-4 in
  let fwd, bwd =
    Net.Network.add_duplex net ~src:h1 ~dst:h2 ~bandwidth:1e6 ~prop_delay:0.01
      ~buffer:(Some 10)
  in
  Net.Network.set_route net ~node:h1 ~dst:h2 ~link:fwd;
  Net.Network.set_route net ~node:h2 ~dst:h1 ~link:bwd;
  Net.Network.register_endpoint net ~host:h2 ~conn:1 (fun _ -> ());
  let report = Validate.Report.create () in
  ignore (Validate.Conservation.attach report net : Validate.Conservation.t);
  let dump = Buffer.create 1024 in
  let setup =
    Obs.Probe.setup ~metrics:false ~flight:8
      ~flight_sink:(Buffer.add_string dump) ()
  in
  let probe = Obs.Probe.attach setup ~net ~conns:[] in
  Obs.Probe.arm_report probe report;
  (* A legitimate packet first, so the ring has history to dump. *)
  let legit =
    Net.Network.make_packet net ~conn:1 ~kind:Net.Packet.Data ~seq:0 ~size:500
      ~src:h1 ~dst:h2 ~retransmit:false
  in
  Net.Network.send_from_host net ~host:h1 legit;
  (* Then a packet that reaches the endpoint without ever being injected:
     conservation must flag the delivery, which must dump the ring. *)
  let rogue =
    Net.Network.make_packet net ~conn:1 ~kind:Net.Packet.Data ~seq:99 ~size:500
      ~src:h1 ~dst:h2 ~retransmit:false
  in
  (match Net.Link.send fwd rogue with
   | `Ok -> ()
   | `Dropped -> Alcotest.fail "rogue packet not accepted");
  Engine.Sim.run_to_completion sim;
  Alcotest.(check bool) "a violation was recorded" true
    (not (Validate.Report.is_clean report));
  let out = Buffer.contents dump in
  Alcotest.(check bool) "flight dump banner names the checker" true
    (contains out "=== flight recorder: validate: conservation");
  Alcotest.(check bool) "dump carries trace events" true
    (contains out "\"ev\":\"enqueue\"");
  Alcotest.(check int) "dumped exactly once" 1
    (count_occurrences out "=== flight recorder:")

(* ---------------- observation changes nothing ---------------- *)

open QCheck

type spec = {
  tau : float;
  buffer : int option;
  n_fwd : int;
  n_rev : int;
  maxwnd : int;
  delayed_ack : bool;
}

let spec_gen =
  let open Gen in
  let* tau = oneofl [ 0.01; 0.1; 1.0 ] in
  let* buffer = oneof [ return None; map (fun b -> Some b) (int_range 3 30) ] in
  let* n_fwd = int_range 1 2 in
  let* n_rev = int_range 0 2 in
  let* maxwnd = int_range 8 32 in
  let* delayed_ack = bool in
  return { tau; buffer; n_fwd; n_rev; maxwnd; delayed_ack }

let spec_print s =
  Printf.sprintf "{tau=%g; buffer=%s; fwd=%d; rev=%d; maxwnd=%d; delack=%b}"
    s.tau
    (match s.buffer with None -> "inf" | Some b -> string_of_int b)
    s.n_fwd s.n_rev s.maxwnd s.delayed_ack

let scenario_of_spec { tau; buffer; n_fwd; n_rev; maxwnd; delayed_ack } =
  let open Core.Scenario in
  let conns dir n = List.init n (fun _ -> conn ~maxwnd ~delayed_ack dir) in
  make ~name:"obs-prop" ~tau ~buffer
    ~conns:(stagger ~step:1.5 (conns Forward n_fwd @ conns Reverse n_rev))
    ~duration:40. ~warmup:10. ()

let series_bytes s =
  let buf = Buffer.create 4096 in
  Trace.Series.iter s ~f:(fun ~time ~value ->
      Buffer.add_string buf (Printf.sprintf "%.17g:%.17g;" time value));
  Buffer.contents buf

let result_fingerprint (r : Core.Runner.result) =
  String.concat "|"
    (Printf.sprintf "%.17g:%.17g" r.util_fwd r.util_bwd
     :: (Array.to_list r.delivered |> List.map string_of_int)
    @ [
        string_of_int (Trace.Drop_log.total r.drops);
        series_bytes (Trace.Queue_trace.series r.q1);
        series_bytes (Trace.Queue_trace.series r.q2);
      ]
    @ (Array.to_list r.cwnds
      |> List.map (fun t -> series_bytes (Trace.Cwnd_trace.cwnd t))))

let prop_observation_transparent =
  Test.make ~name:"full probe never changes simulation results" ~count:25
    (QCheck.make ~print:spec_print spec_gen)
    (fun s ->
      let scenario = scenario_of_spec s in
      let bare = Core.Runner.run scenario in
      let sink (_ : string) = () in
      let observed =
        Core.Runner.run
          ~obs:
            (Obs.Probe.setup ~series_dt:1.0 ~btrace:sink ~flight:128
               ~flowstats:true ())
          scenario
      in
      let a = result_fingerprint bare and b = result_fingerprint observed in
      if a <> b then
        Test.fail_reportf "traced run diverged from bare run on %s"
          (spec_print s);
      true)

let suite =
  ( "obs",
    [
      Alcotest.test_case "metrics: counters, gauges, snapshot order" `Quick
        test_metrics_basic;
      Alcotest.test_case "metrics: duplicate names rejected" `Quick
        test_metrics_duplicate_name;
      Alcotest.test_case "metrics: histogram buckets" `Quick
        test_metrics_histogram;
      Alcotest.test_case "metrics: deterministic JSON" `Quick test_metrics_json;
      Alcotest.test_case "metrics: periodic recorder" `Quick
        test_metrics_recorder;
      Alcotest.test_case "flight: bounded ring and dump format" `Quick
        test_flight_ring;
      Alcotest.test_case "flight: total saturates at max_int" `Quick
        test_flight_total_saturates;
      Alcotest.test_case "json: parser round-trips traces" `Quick
        test_json_parse;
      Alcotest.test_case "json: JSONL validation" `Quick test_validate_jsonl;
      Alcotest.test_case "json: shortest round-trip float spellings" `Quick
        test_float_repr_spellings;
      QCheck_alcotest.to_alcotest prop_float_repr_roundtrip;
      Alcotest.test_case "runner: no probe unless requested" `Quick
        test_runner_without_obs;
      Alcotest.test_case "probe: trace counts match metrics counters" `Quick
        test_trace_matches_counters;
      Alcotest.test_case "probe: flight recorder dumps on violation" `Quick
        test_flight_dump_on_violation;
      QCheck_alcotest.to_alcotest prop_observation_transparent;
    ] )
