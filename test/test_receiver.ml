open Engine
open Net
open Tcp

(* Two hosts joined by one switch over effectively instant links, so a test
   can drive the receiver synchronously and collect its ACKs. *)
let harness ?(delayed_ack = false) () =
  let sim = Sim.create () in
  let net = Network.create sim in
  let sw = Network.add_switch net ~name:"sw" in
  let h1 = Network.add_host net ~name:"h1" ~proc_delay:0. in
  let h2 = Network.add_host net ~name:"h2" ~proc_delay:0. in
  ignore
    (Network.add_duplex net ~src:h1 ~dst:sw ~bandwidth:1e9 ~prop_delay:1e-6
       ~buffer:None
      : Link.t * Link.t);
  ignore
    (Network.add_duplex net ~src:h2 ~dst:sw ~bandwidth:1e9 ~prop_delay:1e-6
       ~buffer:None
      : Link.t * Link.t);
  Routing.compute net;
  let config =
    Config.make ~conn:1 ~src_host:h1 ~dst_host:h2 ~delayed_ack
      ~delack_timeout:0.2 ()
  in
  let receiver = Receiver.create net config in
  let acks = ref [] in
  Network.register_endpoint net ~host:h1 ~conn:1 (fun p ->
      acks := p.Packet.seq :: !acks);
  let data seq =
    {
      Packet.id = seq;
      conn = 1;
      kind = Packet.Data;
      seq;
      size = 500;
      src = h1;
      dst = h2;
      born = Sim.now sim;
      retransmit = false;
    }
  in
  let collected () =
    Sim.run sim ~until:(Sim.now sim +. 1.);
    List.rev !acks
  in
  (sim, receiver, data, collected)

let test_in_order_acks () =
  let _, receiver, data, collected = harness () in
  List.iter (fun s -> Receiver.on_data receiver (data s)) [ 0; 1; 2 ];
  Alcotest.(check (list int)) "cumulative acks" [ 1; 2; 3 ] (collected ());
  Alcotest.(check int) "rcv_nxt" 3 (Receiver.rcv_nxt receiver);
  Alcotest.(check int) "no dups" 0 (Receiver.dup_acks_sent receiver)

let test_out_of_order_dup_acks () =
  let _, receiver, data, collected = harness () in
  Receiver.on_data receiver (data 0);
  (* 1 is lost; 2, 3, 4 arrive: three duplicate ACKs of 1 *)
  List.iter (fun s -> Receiver.on_data receiver (data s)) [ 2; 3; 4 ];
  Alcotest.(check (list int)) "dup acks" [ 1; 1; 1; 1 ] (collected ());
  Alcotest.(check int) "dup acks counted" 3 (Receiver.dup_acks_sent receiver);
  Alcotest.(check int) "buffered above hole" 3 (Receiver.buffered receiver);
  Alcotest.(check int) "out of order counted" 3 (Receiver.out_of_order receiver)

let test_hole_fill_jumps () =
  let _, receiver, data, collected = harness () in
  Receiver.on_data receiver (data 0);
  List.iter (fun s -> Receiver.on_data receiver (data s)) [ 2; 3; 4 ];
  (* the retransmission fills the hole: cumulative ACK jumps to 5 *)
  Receiver.on_data receiver (data 1);
  let acks = collected () in
  Alcotest.(check int) "last ack jumps" 5 (List.nth acks (List.length acks - 1));
  Alcotest.(check int) "nothing buffered" 0 (Receiver.buffered receiver)

let test_duplicate_data () =
  let _, receiver, data, collected = harness () in
  Receiver.on_data receiver (data 0);
  Receiver.on_data receiver (data 0);
  Alcotest.(check (list int)) "dup ack for old data" [ 1; 1 ] (collected ());
  Alcotest.(check int) "duplicate counted" 1 (Receiver.duplicates receiver)

let test_delayed_ack_combining () =
  let _, receiver, data, collected = harness ~delayed_ack:true () in
  (* First packet: ACK withheld.  Second: one combined ACK. *)
  Receiver.on_data receiver (data 0);
  Receiver.on_data receiver (data 1);
  Alcotest.(check (list int)) "one ACK covers two packets" [ 2 ] (collected ())

let test_delayed_ack_timer () =
  let sim, receiver, data, _ = harness ~delayed_ack:true () in
  Receiver.on_data receiver (data 0);
  (* No second packet: the conservative timer must release the ACK. *)
  Sim.run sim ~until:1.;
  Alcotest.(check int) "ack eventually sent" 1 (Receiver.acks_sent receiver)

let test_delayed_ack_out_of_order_immediate () =
  let _, receiver, data, collected = harness ~delayed_ack:true () in
  Receiver.on_data receiver (data 0);
  (* out-of-order arrival flushes + acks immediately, even with the option *)
  Receiver.on_data receiver (data 2);
  Alcotest.(check bool) "immediate dup ack" true (List.mem 1 (collected ()))

let prop_rcv_nxt_monotone =
  QCheck.Test.make ~name:"rcv_nxt is monotone under any arrival order"
    ~count:100
    QCheck.(list (int_range 0 20))
    (fun seqs ->
      let _, receiver, data, _ = harness () in
      let ok = ref true in
      List.iter
        (fun s ->
          let before = Receiver.rcv_nxt receiver in
          Receiver.on_data receiver (data s);
          if Receiver.rcv_nxt receiver < before then ok := false)
        seqs;
      !ok)

let prop_cumulative_correct =
  (* After any permutation of 0..n-1 arrives, rcv_nxt = n. *)
  QCheck.Test.make ~name:"cumulative delivery after a full permutation"
    ~count:100
    QCheck.(int_range 1 30)
    (fun n ->
      let _, receiver, data, _ = harness () in
      let seqs = List.init n (fun i -> (((i * 7) + 3) mod n, i)) in
      let shuffled = List.sort compare seqs |> List.map snd in
      List.iter (fun s -> Receiver.on_data receiver (data s)) shuffled;
      Receiver.rcv_nxt receiver = n)

let prop_buffered_bounded =
  (* Whatever arrives, the hold-back buffer only contains packets above
     rcv_nxt, and acks always carry rcv_nxt. *)
  QCheck.Test.make ~name:"receiver buffer stays above the cumulative point"
    ~count:100
    QCheck.(list (int_range 0 25))
    (fun seqs ->
      let _, receiver, data, _ = harness () in
      List.iter (fun s -> Receiver.on_data receiver (data s)) seqs;
      let rcv = Receiver.rcv_nxt receiver in
      let distinct =
        List.sort_uniq compare (List.filter (fun s -> s >= rcv) seqs)
      in
      Receiver.buffered receiver <= List.length distinct
      && rcv <= List.length (List.sort_uniq compare seqs))

let suite =
  ( "receiver",
    [
      Alcotest.test_case "in-order acks" `Quick test_in_order_acks;
      Alcotest.test_case "out-of-order dup acks" `Quick
        test_out_of_order_dup_acks;
      Alcotest.test_case "hole fill jumps" `Quick test_hole_fill_jumps;
      Alcotest.test_case "duplicate data" `Quick test_duplicate_data;
      Alcotest.test_case "delayed ack combining" `Quick
        test_delayed_ack_combining;
      Alcotest.test_case "delayed ack timer" `Quick test_delayed_ack_timer;
      Alcotest.test_case "delayed ack ooo immediate" `Quick
        test_delayed_ack_out_of_order_immediate;
      QCheck_alcotest.to_alcotest prop_rcv_nxt_monotone;
      QCheck_alcotest.to_alcotest prop_cumulative_correct;
      QCheck_alcotest.to_alcotest prop_buffered_bounded;
    ] )
