(* lib/obs Sketch: streaming log-bucket quantile sketch.

   The statement that matters is the accuracy contract: for positive
   samples, every reported quantile is within the advertised relative
   error [alpha] of the exact sample quantile — the sorted sample at
   0-based index [floor (q * (n - 1))], the same rank convention the
   sketch uses — on uniform, heavy-tailed and adversarial-spike streams
   alike, while q = 0 / q = 1 are exactly the observed min / max.
   Everything else (validation, underflow bucket, merge determinism) is
   covered by unit tests. *)

let exact_quantile sorted q =
  let n = Array.length sorted in
  if q <= 0. then sorted.(0)
  else if q >= 1. then sorted.(n - 1)
  else sorted.(int_of_float (q *. float_of_int (n - 1)))

let probe_qs = [ 0.; 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1. ]

(* ---------------- units ---------------- *)

let test_create_validation () =
  Alcotest.check_raises "alpha = 0 rejected"
    (Invalid_argument "Sketch.create: alpha must be in (0, 1)") (fun () ->
      ignore (Obs.Sketch.create ~alpha:0. () : Obs.Sketch.t));
  Alcotest.check_raises "alpha = 1 rejected"
    (Invalid_argument "Sketch.create: alpha must be in (0, 1)") (fun () ->
      ignore (Obs.Sketch.create ~alpha:1. () : Obs.Sketch.t));
  Alcotest.check_raises "max_buckets < 2 rejected"
    (Invalid_argument "Sketch.create: max_buckets < 2") (fun () ->
      ignore (Obs.Sketch.create ~max_buckets:1 () : Obs.Sketch.t))

let test_empty_and_basics () =
  let sk = Obs.Sketch.create () in
  Alcotest.(check bool) "empty" true (Obs.Sketch.is_empty sk);
  Alcotest.(check (option (float 0.))) "quantile of empty" None
    (Obs.Sketch.quantile sk 0.5);
  Alcotest.(check (option (float 0.))) "min of empty" None (Obs.Sketch.min sk);
  Alcotest.check_raises "nan sample rejected"
    (Invalid_argument "Sketch.add: nan") (fun () ->
      Obs.Sketch.add sk Float.nan);
  Alcotest.check_raises "q outside [0,1] rejected"
    (Invalid_argument "Sketch.quantile: q outside [0, 1]") (fun () ->
      ignore (Obs.Sketch.quantile sk 1.5 : float option));
  List.iter (Obs.Sketch.add sk) [ 3.; 1.; 2. ];
  Alcotest.(check int) "count" 3 (Obs.Sketch.count sk);
  Alcotest.(check (float 1e-12)) "sum" 6. (Obs.Sketch.sum sk);
  Alcotest.(check (option (float 1e-12))) "mean" (Some 2.)
    (Obs.Sketch.mean sk);
  Alcotest.(check (option (float 0.))) "q=0 is the exact min" (Some 1.)
    (Obs.Sketch.quantile sk 0.);
  Alcotest.(check (option (float 0.))) "q=1 is the exact max" (Some 3.)
    (Obs.Sketch.quantile sk 1.)

let test_underflow_bucket () =
  (* Zero and negatives cannot ride the log mapping: they land in the
     underflow bucket and are estimated by the observed minimum. *)
  let sk = Obs.Sketch.create () in
  List.iter (Obs.Sketch.add sk) [ 0.; -5.; 3.; 4. ];
  Alcotest.(check (option (float 0.))) "min is exact" (Some (-5.))
    (Obs.Sketch.min sk);
  Alcotest.(check (option (float 0.))) "low quantile = observed min"
    (Some (-5.))
    (Obs.Sketch.quantile sk 0.25);
  Alcotest.(check (option (float 0.))) "max is exact" (Some 4.)
    (Obs.Sketch.quantile sk 1.)

let test_merge_matches_single_sketch () =
  (* Count-addition merging: merging two sketches gives bit-identical
     estimates to one sketch fed everything — the property the
     cross-flow RTT aggregate in Flowstats relies on. *)
  let a = [ 0.01; 0.5; 0.5; 12.; 300. ]
  and b = [ 0.2; 7.; 7.; 7.; 1e4; -1. ] in
  let sa = Obs.Sketch.create () and sb = Obs.Sketch.create () in
  let whole = Obs.Sketch.create () in
  List.iter (Obs.Sketch.add sa) a;
  List.iter (Obs.Sketch.add sb) b;
  List.iter (Obs.Sketch.add whole) (a @ b);
  Obs.Sketch.merge ~into:sa sb;
  Alcotest.(check int) "merged count" (Obs.Sketch.count whole)
    (Obs.Sketch.count sa);
  List.iter
    (fun q ->
      match (Obs.Sketch.quantile whole q, Obs.Sketch.quantile sa q) with
      | Some w, Some m ->
        Alcotest.(check bool)
          (Printf.sprintf "q=%g bit-identical" q)
          true
          (Int64.bits_of_float w = Int64.bits_of_float m)
      | _ -> Alcotest.fail "quantile missing after merge")
    probe_qs;
  let other = Obs.Sketch.create ~alpha:0.05 () in
  Alcotest.check_raises "alpha mismatch rejected"
    (Invalid_argument "Sketch.merge: sketches built with different alpha")
    (fun () -> Obs.Sketch.merge ~into:sa other)

let test_collapse_reported () =
  (* A tiny bucket cap forces low-tail collapsing; the sketch must say
     so, and the top quantiles must stay inside the bound. *)
  let sk = Obs.Sketch.create ~max_buckets:4 () in
  let samples = List.init 64 (fun i -> 1.5 ** float_of_int i) in
  List.iter (Obs.Sketch.add sk) samples;
  Alcotest.(check bool) "collapse reported" true (Obs.Sketch.collapsed sk);
  let sorted = Array.of_list samples in
  Array.sort Float.compare sorted;
  let exact = exact_quantile sorted 0.99 in
  (match Obs.Sketch.quantile sk 0.99 with
   | Some est ->
     Alcotest.(check bool) "p99 keeps the bound under collapse" true
       (Float.abs (est -. exact)
        <= ((Obs.Sketch.default_alpha *. 1.001) +. 1e-12) *. exact)
   | None -> Alcotest.fail "p99 missing")

(* ---------------- the error-bound property ---------------- *)

let check_bound samples =
  let alpha = Obs.Sketch.default_alpha in
  let sk = Obs.Sketch.create ~alpha () in
  List.iter (Obs.Sketch.add sk) samples;
  let sorted = Array.of_list samples in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  (* 1.001 slack absorbs float rounding in the log/exp mapping. *)
  let tol = (alpha *. 1.001) +. 1e-12 in
  List.for_all
    (fun q ->
      match Obs.Sketch.quantile sk q with
      | None -> false
      | Some est ->
        if q = 0. then est = sorted.(0)
        else if q = 1. then est = sorted.(n - 1)
        else
          let exact = exact_quantile sorted q in
          Float.abs (est -. exact) <= tol *. Float.abs exact)
    probe_qs

let print_samples l =
  "[" ^ String.concat "; " (List.map (Printf.sprintf "%h") l) ^ "]"

let stream_arb gen = QCheck.make ~print:print_samples gen

let prop_uniform =
  QCheck.Test.make
    ~name:"sketch keeps the alpha bound on uniform streams" ~count:200
    (stream_arb QCheck.Gen.(list_size (int_range 1 400) (float_range 0.1 100.)))
    check_bound

let prop_heavy_tail =
  (* u^-2 of uniform u: a Pareto-style tail spanning 1 .. 10^6. *)
  QCheck.Test.make
    ~name:"sketch keeps the alpha bound on heavy-tailed streams" ~count:200
    (stream_arb
       QCheck.Gen.(
         list_size (int_range 1 400)
           (map (fun u -> u ** -2.) (float_range 1e-3 1.))))
    check_bound

let prop_adversarial_spike =
  (* A tight cluster punctured by 9-decade spikes: the worst case for a
     fixed-resolution histogram, easy for a log-bucket sketch. *)
  QCheck.Test.make
    ~name:"sketch keeps the alpha bound on adversarial-spike streams"
    ~count:200
    (stream_arb
       QCheck.Gen.(
         list_size (int_range 1 400)
           (oneof [ float_range 0.5 1.5; float_range 1e6 1e9 ])))
    check_bound

let suite =
  ( "sketch",
    [
      Alcotest.test_case "create: parameter validation" `Quick
        test_create_validation;
      Alcotest.test_case "empty sketch, exact min/max, nan rejection" `Quick
        test_empty_and_basics;
      Alcotest.test_case "underflow bucket holds zero and negatives" `Quick
        test_underflow_bucket;
      Alcotest.test_case "merge is bit-identical to a single sketch" `Quick
        test_merge_matches_single_sketch;
      Alcotest.test_case "bucket-cap collapse is reported, p99 survives"
        `Quick test_collapse_reported;
      QCheck_alcotest.to_alcotest prop_uniform;
      QCheck_alcotest.to_alcotest prop_heavy_tail;
      QCheck_alcotest.to_alcotest prop_adversarial_spike;
    ] )
