open Engine
open Net

(* ---------------- the Link fault hook point, with hand closures ------- *)

let make_link ?(bandwidth = 50_000.) ?(prop_delay = 0.01) ~buffer sim =
  Link.create sim ~id:0 ~name:"test" ~src:0 ~dst:1 ~bandwidth ~prop_delay
    ~buffer

let packet ?(id = 0) ?(conn = 1) ?(kind = Packet.Data) ?(seq = 0) ?(size = 500)
    () =
  {
    Packet.id;
    conn;
    kind;
    seq;
    size;
    src = 0;
    dst = 1;
    born = 0.;
    retransmit = false;
  }

let no_faults_by_default () =
  let sim = Sim.create () in
  let link = make_link ~buffer:None sim in
  Alcotest.(check bool) "fresh link has no plan" false (Link.has_faults link);
  Alcotest.(check bool) "fresh link is up" false (Link.is_down link);
  Alcotest.check_raises "set_down without a plan"
    (Invalid_argument "Link.set_down: no fault plan installed") (fun () ->
      Link.set_down link true)

let install ?(ingress = fun _ -> `Pass) ?(extra_delay = fun _ -> 0.)
    ?(clone = fun p -> p) link =
  Link.install_faults link ~ingress ~extra_delay ~clone

let test_ingress_drop () =
  let sim = Sim.create () in
  let link = make_link ~buffer:None sim in
  let delivered = ref 0 in
  Link.set_deliver link (fun _ -> incr delivered);
  install link ~ingress:(fun _ -> `Drop "loss");
  let faults = ref [] in
  Link.on_fault link (fun _t ev p -> faults := (ev, p.Packet.id) :: !faults);
  let drops = ref [] in
  Link.on_drop link (fun _t p -> drops := p.Packet.id :: !drops);
  let outcome = Link.send link (packet ~id:7 ()) in
  Sim.run sim ~until:1.;
  Alcotest.(check bool) "send reports the drop" true (outcome = `Dropped);
  Alcotest.(check int) "nothing delivered" 0 !delivered;
  Alcotest.(check int) "drop counter" 1 (Link.total_drops link);
  Alcotest.(check bool) "fault event announced" true
    (!faults = [ (Link.Fault_drop "loss", 7) ]);
  Alcotest.(check (list int)) "ordinary drop hook also fired" [ 7 ] !drops

let test_duplicate () =
  let sim = Sim.create () in
  let link = make_link ~prop_delay:0. ~buffer:None sim in
  let delivered = ref [] in
  Link.set_deliver link (fun p -> delivered := p.Packet.id :: !delivered);
  (* Duplicate exactly the first offered packet; the copy gets id 100. *)
  let first = ref true in
  install link
    ~ingress:(fun _ ->
      if !first then begin
        first := false;
        `Duplicate
      end
      else `Pass)
    ~clone:(fun p -> { p with Packet.id = 100 });
  let dup_events = ref [] in
  Link.on_fault link (fun _t ev p ->
      if ev = Link.Fault_duplicate then dup_events := p.Packet.id :: !dup_events);
  ignore (Link.send link (packet ~id:1 ()) : [ `Ok | `Dropped ]);
  Sim.run sim ~until:1.;
  Alcotest.(check (list int)) "original then copy delivered" [ 1; 100 ]
    (List.rev !delivered);
  Alcotest.(check (list int)) "copy announced as a fault" [ 100 ] !dup_events

let test_outage_flush_and_reject () =
  let sim = Sim.create () in
  let link = make_link ~prop_delay:0.5 ~buffer:(Some 5) sim in
  let delivered = ref [] in
  Link.set_deliver link (fun p -> delivered := p.Packet.id :: !delivered);
  install link;
  let outage_drops = ref [] in
  Link.on_fault link (fun _t ev p ->
      if ev = Link.Fault_drop "outage" then
        outage_drops := p.Packet.id :: !outage_drops);
  (* Three packets at t=0: id 0 serializes (tx 80 ms) and is propagating
     by the cut at t=0.1; ids 1-2 are still queued (1 in service). *)
  List.iter
    (fun id -> ignore (Link.send link (packet ~id ()) : [ `Ok | `Dropped ]))
    [ 0; 1; 2 ];
  ignore
    (Sim.at sim ~time:0.1 (fun () ->
         Link.set_down link true;
         Alcotest.(check bool) "down after cut" true (Link.is_down link);
         Alcotest.(check bool) "send while down rejected" true
           (Link.send link (packet ~id:9 ()) = `Dropped))
      : Sim.handle);
  ignore (Sim.at sim ~time:0.2 (fun () -> Link.set_down link false) : Sim.handle);
  ignore
    (Sim.at sim ~time:0.3 (fun () ->
         ignore (Link.send link (packet ~id:3 ()) : [ `Ok | `Dropped ]))
      : Sim.handle);
  Sim.run sim ~until:2.;
  (* The cut flushes in-service id 1, queued id 2, and kills propagating
     id 0; id 9 is rejected while down; id 3 flows after recovery. *)
  Alcotest.(check (list int)) "only the post-recovery packet arrives" [ 3 ]
    (List.rev !delivered);
  Alcotest.(check (list int)) "everything else lost to the outage"
    [ 0; 1; 2; 9 ]
    (List.sort compare !outage_drops);
  Alcotest.(check int) "drop counter matches" 4 (Link.total_drops link)

let test_jitter_delay_event () =
  let sim = Sim.create () in
  let link = make_link ~prop_delay:0.01 ~buffer:None sim in
  let arrival = ref None in
  Link.set_deliver link (fun _ -> arrival := Some (Sim.now sim));
  install link ~extra_delay:(fun _ -> 0.05);
  let delays = ref [] in
  Link.on_fault link (fun _t ev _p ->
      match ev with Link.Fault_delay d -> delays := d :: !delays | _ -> ());
  ignore (Link.send link (packet ()) : [ `Ok | `Dropped ]);
  Sim.run sim ~until:1.;
  (* tx 0.08 + prop 0.01 + jitter 0.05 *)
  Alcotest.(check (option (float 1e-9))) "delayed arrival" (Some 0.14) !arrival;
  Alcotest.(check (list (float 1e-9))) "delay announced" [ 0.05 ] !delays

(* ---------------- scenario-level: determinism and validation ---------- *)

let faulty_scenario ?(fault_seed = 11) ?(spec = Faults.Spec.none) () =
  Core.Scenario.make ~name:"faulty" ~tau:0.01 ~buffer:(Some 20)
    ~conns:
      [
        Core.Scenario.conn ~start_time:0.37 Core.Scenario.Forward;
        Core.Scenario.conn ~start_time:1.91 Core.Scenario.Reverse;
      ]
    ~duration:120. ~warmup:40. ~validate:true
    ~faults:[ (Core.Scenario.Fwd_bottleneck, spec) ]
    ~fault_seed ()

let plan_of (r : Core.Runner.result) = snd (List.hd r.fault_plans)

let assert_clean (r : Core.Runner.result) =
  match Core.Runner.validation_report r with
  | None -> Alcotest.fail "validation harness missing"
  | Some report ->
    if not (Validate.Report.is_clean report) then
      Alcotest.fail (Validate.Report.to_string report)

let test_bernoulli_reproducible () =
  let spec = Faults.Spec.bernoulli 0.03 in
  let run () = Core.Runner.run (faulty_scenario ~spec ()) in
  let a = run () and b = run () in
  let p_a = plan_of a and p_b = plan_of b in
  Alcotest.(check bool) "losses happened" true (Faults.Plan.losses p_a > 0);
  Alcotest.(check int) "same losses" (Faults.Plan.losses p_a)
    (Faults.Plan.losses p_b);
  Alcotest.(check (array int)) "same deliveries" a.delivered b.delivered;
  (* Bit-level: the whole queue trajectory repeats. *)
  Alcotest.(check (list (pair (float 0.) (float 0.)))) "same queue series"
    (Trace.Series.to_list (Trace.Queue_trace.series a.q1))
    (Trace.Series.to_list (Trace.Queue_trace.series b.q1));
  assert_clean a

let test_seed_changes_faults () =
  let spec = Faults.Spec.bernoulli 0.03 in
  let a = Core.Runner.run (faulty_scenario ~spec ~fault_seed:1 ()) in
  let b = Core.Runner.run (faulty_scenario ~spec ~fault_seed:2 ()) in
  Alcotest.(check bool) "different seeds, different trajectories" true
    (Trace.Series.to_list (Trace.Queue_trace.series a.q1)
    <> Trace.Series.to_list (Trace.Queue_trace.series b.q1))

let test_combined_faults_validate_clean () =
  (* Loss + duplication + order-preserving jitter, all at once, under the
     full checker harness. *)
  let spec =
    Faults.Spec.make
      ~loss:(Faults.Spec.Bernoulli 0.02)
      ~jitter:{ Faults.Spec.bound = 0.01; preserve_order = true }
      ~duplicate:0.02 ()
  in
  let r = Core.Runner.run (faulty_scenario ~spec ()) in
  let p = plan_of r in
  Alcotest.(check bool) "losses" true (Faults.Plan.losses p > 0);
  Alcotest.(check bool) "duplicates" true (Faults.Plan.duplicates p > 0);
  Alcotest.(check bool) "delays" true (Faults.Plan.delayed p > 0);
  Alcotest.(check bool) "jitter bounded" true (Faults.Plan.max_delay p < 0.01);
  assert_clean r

let test_burst_loss_validate_clean () =
  let spec =
    Faults.Spec.burst ~p_enter:0.005 ~p_exit:0.1 ~loss_in_burst:0.6 ()
  in
  let r = Core.Runner.run (faulty_scenario ~spec ()) in
  Alcotest.(check bool) "burst losses" true (Faults.Plan.losses (plan_of r) > 0);
  assert_clean r

let test_reordering_jitter_validate_clean () =
  let spec = Faults.Spec.jitter ~preserve_order:false 0.05 in
  let r = Core.Runner.run (faulty_scenario ~spec ()) in
  Alcotest.(check bool) "delays" true (Faults.Plan.delayed (plan_of r) > 0);
  assert_clean r

let test_outage_validate_clean () =
  let spec = Faults.Spec.scheduled_outage [ (60., 70.) ] in
  let r = Core.Runner.run (faulty_scenario ~spec ()) in
  Alcotest.(check bool) "outage drops" true
    (Faults.Plan.outage_drops (plan_of r) > 0);
  assert_clean r

(* ---------------- satellite: end-to-end timeout recovery -------------- *)

let test_timeout_recovery () =
  let sim = Sim.create () in
  let d = Net.Topology.dumbbell sim (Net.Topology.params ~tau:0.01 ~buffer:(Some 20) ()) in
  let conn =
    Tcp.Connection.create d.net
      (Tcp.Config.make ~conn:1 ~src_host:d.host1 ~dst_host:d.host2 ())
  in
  let harness = Validate.Harness.attach d.net ~conns:[ conn ] in
  ignore
    (Faults.Plan.install d.net d.fwd ~seed:3
       (Faults.Spec.scheduled_outage [ (30., 45.) ])
      : Faults.Plan.t);
  let sender = Tcp.Connection.sender conn in
  let max_backoff = ref 0 in
  let min_cwnd = ref infinity in
  Tcp.Sender.on_loss sender (fun time _reason ->
      if time >= 30. then begin
        max_backoff :=
          max !max_backoff (Tcp.Rto.backoff_count (Tcp.Sender.rto sender));
        min_cwnd := Float.min !min_cwnd (Tcp.Sender.cwnd sender)
      end);
  let delivered_mid = ref 0 in
  ignore
    (Sim.at sim ~time:45. (fun () ->
         delivered_mid := Tcp.Connection.delivered conn)
      : Sim.handle);
  Sim.run sim ~until:90.;
  Alcotest.(check bool) "retransmitted" true (Tcp.Sender.retransmits sender > 0);
  Alcotest.(check bool) "repeated timeouts" true (Tcp.Sender.timeouts sender >= 2);
  Alcotest.(check bool) "exponential backoff climbed" true (!max_backoff >= 2);
  Alcotest.(check (float 1e-9)) "window collapsed to one" 1.0 !min_cwnd;
  (* Recovery: the first post-outage ACK resets the backoff (Rto.reset_backoff)
     and slow start reopens the window past one packet. *)
  Alcotest.(check int) "backoff reset by recovery" 0
    (Tcp.Rto.backoff_count (Tcp.Sender.rto sender));
  Alcotest.(check bool) "window reopened" true (Tcp.Sender.cwnd sender > 1.);
  Alcotest.(check bool) "progress resumed after the outage" true
    (Tcp.Connection.delivered conn > !delivered_mid);
  let report = Validate.Harness.finalize harness ~now:(Sim.now sim) in
  if not (Validate.Report.is_clean report) then
    Alcotest.fail (Validate.Report.to_string report)

(* ---------------- satellite: random fault plans stay conservative ----- *)

type fspec = {
  tau : float;
  buffer : int;
  n_fwd : int;
  n_rev : int;
  loss : Faults.Spec.loss option;
  dup : float option;
  jit : Faults.Spec.jitter option;
  outage : Faults.Spec.outage option;
  seed : int;
}

let fspec_gen =
  let open QCheck.Gen in
  let* tau = oneofl [ 0.01; 0.1 ] in
  let* buffer = int_range 5 30 in
  let* n_fwd = int_range 1 2 in
  let* n_rev = int_range 0 1 in
  let* loss =
    oneof
      [
        return None;
        map (fun p -> Some (Faults.Spec.Bernoulli p)) (float_bound_inclusive 0.15);
        return
          (Some
             (Faults.Spec.Gilbert_elliott
                {
                  p_enter = 0.01;
                  p_exit = 0.2;
                  loss_in_burst = 0.5;
                  loss_outside = 0.;
                }));
      ]
  in
  let* dup = oneof [ return None; map Option.some (float_bound_inclusive 0.1) ] in
  let* jit =
    oneof
      [
        return None;
        map
          (fun (bound, preserve_order) ->
            Some { Faults.Spec.bound; preserve_order })
          (pair (float_bound_inclusive 0.05) bool);
      ]
  in
  let* outage =
    oneofl
      [
        None;
        Some { Faults.Spec.windows = [ (20., 25.) ]; flap = None };
        Some { Faults.Spec.windows = []; flap = Some (8., 1.) };
      ]
  in
  let* seed = int_range 0 1000 in
  return { tau; buffer; n_fwd; n_rev; loss; dup; jit; outage; seed }

let fspec_print s =
  Printf.sprintf "{tau=%g; buffer=%d; fwd=%d; rev=%d; faults=%s; seed=%d}" s.tau
    s.buffer s.n_fwd s.n_rev
    (Faults.Spec.to_string
       { loss = s.loss; outage = s.outage; jitter = s.jit; duplicate = s.dup })
    s.seed

let prop_faulty_runs_conservative =
  QCheck.Test.make ~name:"random fault plans: clean checkers, bounded delivery"
    ~count:25
    (QCheck.make ~print:fspec_print fspec_gen)
    (fun s ->
      let sim = Sim.create () in
      let d =
        Net.Topology.dumbbell sim
          (Net.Topology.params ~tau:s.tau ~buffer:(Some s.buffer) ())
      in
      let conns =
        List.init (s.n_fwd + s.n_rev) (fun i ->
            let fwd = i < s.n_fwd in
            Tcp.Connection.create d.net
              (Tcp.Config.make ~conn:(i + 1)
                 ~src_host:(if fwd then d.host1 else d.host2)
                 ~dst_host:(if fwd then d.host2 else d.host1)
                 ~start_time:(0.3 +. (float_of_int i *. 1.1))
                 ()))
      in
      let harness = Validate.Harness.attach d.net ~conns in
      let spec =
        Faults.Spec.make ?loss:s.loss ?outage:s.outage ?jitter:s.jit
          ?duplicate:s.dup ()
      in
      let plan = Faults.Plan.install d.net d.fwd ~seed:s.seed spec in
      (* Count each connection's data deliveries on the wire ourselves. *)
      let wire = Hashtbl.create 8 in
      Net.Network.on_deliver d.net (fun _t p ->
          if p.Packet.kind = Packet.Data then
            Hashtbl.replace wire p.Packet.conn
              (1 + Option.value ~default:0 (Hashtbl.find_opt wire p.Packet.conn)));
      Sim.run sim ~until:60.;
      let report = Validate.Harness.finalize harness ~now:(Sim.now sim) in
      if not (Validate.Report.is_clean report) then
        QCheck.Test.fail_report (Validate.Report.to_string report);
      List.iteri
        (fun i conn ->
          let id = i + 1 in
          let sender = Tcp.Connection.sender conn in
          let sent =
            Tcp.Sender.data_sent sender + Tcp.Sender.retransmits sender
          in
          let delivered = Option.value ~default:0 (Hashtbl.find_opt wire id) in
          let bound =
            sent
            + Faults.Plan.data_duplicates_for plan ~conn:id
            - Faults.Plan.data_losses_for plan ~conn:id
          in
          if delivered > bound then
            QCheck.Test.fail_reportf
              "conn %d delivered %d > %d transmissions %+d dups %+d losses" id
              delivered bound sent
              (Faults.Plan.data_duplicates_for plan ~conn:id)
              (- Faults.Plan.data_losses_for plan ~conn:id))
        conns;
      true)

(* ---------------- spec validation ---------------- *)

let test_spec_validation () =
  let bad msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  bad "Faults.Spec: loss probability must be in [0, 1]" (fun () ->
      ignore (Faults.Spec.bernoulli 1.5 : Faults.Spec.t));
  let window_msg =
    "Faults.Spec: outage windows must be (start, stop) with 0 <= start < \
     stop, in ascending non-overlapping order"
  in
  bad window_msg (fun () ->
      ignore
        (Faults.Spec.scheduled_outage [ (10., 20.); (15., 25.) ]
          : Faults.Spec.t));
  bad window_msg (fun () ->
      ignore (Faults.Spec.scheduled_outage [ (10., 10.) ] : Faults.Spec.t));
  bad "Faults.Spec: jitter bound must be >= 0" (fun () ->
      ignore (Faults.Spec.jitter (-0.1) : Faults.Spec.t));
  Alcotest.(check bool) "none is a no-op" true (Faults.Spec.is_noop Faults.Spec.none);
  Alcotest.(check bool) "merge combines kinds" true
    (not
       (Faults.Spec.is_noop
          (Faults.Spec.merge (Faults.Spec.bernoulli 0.1)
             (Faults.Spec.duplicate 0.1))))

let test_double_install_rejected () =
  let sim = Sim.create () in
  let d =
    Net.Topology.dumbbell sim (Net.Topology.params ~tau:0.01 ~buffer:(Some 20) ())
  in
  ignore
    (Faults.Plan.install d.net d.fwd ~seed:1 (Faults.Spec.bernoulli 0.1)
      : Faults.Plan.t);
  Alcotest.check_raises "second plan on the same link"
    (Invalid_argument
       "Faults.Plan.install: link sw1->sw2 already has a fault plan")
    (fun () ->
      ignore
        (Faults.Plan.install d.net d.fwd ~seed:2 (Faults.Spec.bernoulli 0.1)
          : Faults.Plan.t))

let suite =
  ( "faults",
    [
      Alcotest.test_case "no faults by default" `Quick no_faults_by_default;
      Alcotest.test_case "ingress drop" `Quick test_ingress_drop;
      Alcotest.test_case "duplicate" `Quick test_duplicate;
      Alcotest.test_case "outage flush and reject" `Quick
        test_outage_flush_and_reject;
      Alcotest.test_case "jitter delay event" `Quick test_jitter_delay_event;
      Alcotest.test_case "bernoulli reproducible" `Quick
        test_bernoulli_reproducible;
      Alcotest.test_case "seed changes faults" `Quick test_seed_changes_faults;
      Alcotest.test_case "combined faults validate clean" `Quick
        test_combined_faults_validate_clean;
      Alcotest.test_case "burst loss validates clean" `Quick
        test_burst_loss_validate_clean;
      Alcotest.test_case "reordering jitter validates clean" `Quick
        test_reordering_jitter_validate_clean;
      Alcotest.test_case "outage validates clean" `Quick
        test_outage_validate_clean;
      Alcotest.test_case "timeout recovery" `Quick test_timeout_recovery;
      Alcotest.test_case "spec validation" `Quick test_spec_validation;
      Alcotest.test_case "double install rejected" `Quick
        test_double_install_rejected;
      QCheck_alcotest.to_alcotest prop_faulty_runs_conservative;
    ] )
