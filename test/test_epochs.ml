open Analysis

let drop ?(conn = 1) ?(kind = Net.Packet.Data) ?(seq = 0) ?(link = 0) time =
  { Trace.Drop_log.time; conn; kind; seq; link }

let test_gap_grouping () =
  let records = [ drop 0.; drop 0.5; drop 10.; drop 10.2; drop 30. ] in
  let epochs = Epochs.detect ~gap:5. records in
  Alcotest.(check int) "three epochs" 3 (List.length epochs);
  Alcotest.(check (list int)) "sizes" [ 2; 2; 1 ]
    (List.map Epochs.total_drops epochs)

let test_epoch_bounds () =
  let epochs = Epochs.detect ~gap:5. [ drop 1.; drop 2.; drop 3. ] in
  match epochs with
  | [ e ] ->
    Alcotest.(check (float 0.)) "start" 1. e.Epochs.start;
    Alcotest.(check (float 0.)) "stop" 3. e.Epochs.stop
  | _ -> Alcotest.fail "expected one epoch"

let test_by_conn () =
  let epochs =
    Epochs.detect ~gap:5. [ drop ~conn:1 0.; drop ~conn:1 0.1; drop ~conn:2 0.2 ]
  in
  match epochs with
  | [ e ] ->
    Alcotest.(check (list (pair int int))) "per-conn counts" [ (1, 2); (2, 1) ]
      e.Epochs.by_conn;
    Alcotest.(check int) "losses_of conn 1" 2 (Epochs.losses_of e ~conn:1);
    Alcotest.(check int) "losses_of unscathed" 0 (Epochs.losses_of e ~conn:3);
    Alcotest.(check (list int)) "conns hit" [ 1; 2 ] (Epochs.conns_hit e)
  | _ -> Alcotest.fail "expected one epoch"

let test_mean_drops () =
  let epochs = Epochs.detect ~gap:1. [ drop 0.; drop 0.1; drop 10. ] in
  Alcotest.(check (option (float 1e-9))) "mean" (Some 1.5)
    (Epochs.mean_drops epochs);
  Alcotest.(check (option (float 0.))) "empty" None (Epochs.mean_drops [])

let test_loss_synchronization () =
  let epochs =
    Epochs.detect ~gap:1.
      [
        drop ~conn:1 0.; drop ~conn:2 0.1;  (* both hit *)
        drop ~conn:1 10.;                   (* only conn 1 *)
      ]
  in
  Alcotest.(check (option (float 1e-9))) "half synchronized" (Some 0.5)
    (Epochs.loss_synchronization epochs ~conns:[ 1; 2 ])

let test_single_loser_alternation () =
  let epochs =
    Epochs.detect ~gap:1.
      [
        drop ~conn:1 0.; drop ~conn:1 0.1;
        drop ~conn:2 10.; drop ~conn:2 10.1;
        drop ~conn:1 20.; drop ~conn:1 20.1;
      ]
  in
  Alcotest.(check (option (float 1e-9))) "all single-loser" (Some 1.)
    (Epochs.single_loser_fraction epochs);
  Alcotest.(check (option (float 1e-9))) "perfect alternation" (Some 1.)
    (Epochs.alternation epochs)

let test_alternation_broken () =
  let epochs =
    Epochs.detect ~gap:1.
      [ drop ~conn:1 0.; drop ~conn:1 10.; drop ~conn:2 20. ]
  in
  Alcotest.(check (option (float 1e-9))) "half alternating" (Some 0.5)
    (Epochs.alternation epochs)

let test_alternation_insufficient () =
  Alcotest.(check (option (float 0.))) "no epochs" None (Epochs.alternation []);
  let one = Epochs.detect ~gap:1. [ drop 0. ] in
  Alcotest.(check (option (float 0.))) "one epoch" None (Epochs.alternation one)

let test_bad_gap () =
  Alcotest.check_raises "non-positive gap"
    (Invalid_argument "Epochs.detect: gap must be positive") (fun () ->
      ignore (Epochs.detect ~gap:0. [] : Epochs.t list))

let prop_drops_conserved =
  QCheck.Test.make ~name:"epochs partition the drop list" ~count:200
    QCheck.(pair (float_range 0.1 5.) (list (float_bound_inclusive 100.)))
    (fun (gap, times) ->
      let times = List.sort compare times in
      let records = List.map (fun t -> drop t) times in
      let epochs = Epochs.detect ~gap records in
      List.fold_left (fun acc e -> acc + Epochs.total_drops e) 0 epochs
      = List.length records)

let prop_intra_epoch_gaps =
  QCheck.Test.make ~name:"consecutive drops within an epoch are <= gap apart"
    ~count:200
    QCheck.(pair (float_range 0.1 5.) (list (float_bound_inclusive 100.)))
    (fun (gap, times) ->
      let times = List.sort compare times in
      let records = List.map (fun t -> drop t) times in
      let epochs = Epochs.detect ~gap records in
      List.for_all
        (fun e ->
          let rec ok = function
            | (a : Trace.Drop_log.record) :: (b :: _ as rest) ->
              b.time -. a.time <= gap +. 1e-9 && ok rest
            | [ _ ] | [] -> true
          in
          ok e.Epochs.drops)
        epochs)

let suite =
  ( "epochs",
    [
      Alcotest.test_case "gap grouping" `Quick test_gap_grouping;
      Alcotest.test_case "epoch bounds" `Quick test_epoch_bounds;
      Alcotest.test_case "by conn" `Quick test_by_conn;
      Alcotest.test_case "mean drops" `Quick test_mean_drops;
      Alcotest.test_case "loss synchronization" `Quick test_loss_synchronization;
      Alcotest.test_case "single loser + alternation" `Quick
        test_single_loser_alternation;
      Alcotest.test_case "alternation broken" `Quick test_alternation_broken;
      Alcotest.test_case "alternation insufficient" `Quick
        test_alternation_insufficient;
      Alcotest.test_case "bad gap" `Quick test_bad_gap;
      QCheck_alcotest.to_alcotest prop_drops_conserved;
      QCheck_alcotest.to_alcotest prop_intra_epoch_gaps;
    ] )
