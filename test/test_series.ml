open Trace

let series samples = Series.of_list samples

let test_add_get () =
  let s = series [ (0., 1.); (1., 2.); (2., 3.) ] in
  Alcotest.(check int) "length" 3 (Series.length s);
  Alcotest.(check (pair (float 0.) (float 0.))) "get" (1., 2.) (Series.get s 1);
  Alcotest.(check bool) "nonempty" false (Series.is_empty s)

let test_time_monotonic () =
  let s = Series.create () in
  Series.add s ~time:5. ~value:1.;
  Alcotest.check_raises "backwards time"
    (Invalid_argument "Series.add: time went backwards") (fun () ->
      Series.add s ~time:4. ~value:2.)

let test_equal_times_allowed () =
  let s = Series.create () in
  Series.add s ~time:1. ~value:1.;
  Series.add s ~time:1. ~value:2.;
  Alcotest.(check int) "both kept" 2 (Series.length s);
  Alcotest.(check (option (float 0.))) "last wins for value_at" (Some 2.)
    (Series.value_at s ~time:1.)

let test_value_at () =
  let s = series [ (1., 10.); (3., 30.); (5., 50.) ] in
  Alcotest.(check (option (float 0.))) "before first" None
    (Series.value_at s ~time:0.5);
  Alcotest.(check (option (float 0.))) "exact" (Some 10.)
    (Series.value_at s ~time:1.);
  Alcotest.(check (option (float 0.))) "between" (Some 10.)
    (Series.value_at s ~time:2.9);
  Alcotest.(check (option (float 0.))) "after last" (Some 50.)
    (Series.value_at s ~time:100.)

let test_resample () =
  let s = series [ (0., 1.); (2., 2.); (4., 3.) ] in
  let xs = Series.resample s ~t0:0. ~t1:6. ~dt:1. in
  Alcotest.(check (array (float 0.))) "step resample"
    [| 1.; 1.; 2.; 2.; 3.; 3. |] xs

let test_resample_before_start () =
  let s = series [ (10., 7.) ] in
  let xs = Series.resample s ~t0:0. ~t1:2. ~dt:1. in
  Alcotest.(check (array (float 0.))) "first value backfills" [| 7.; 7. |] xs

let test_min_max () =
  let s = series [ (0., 5.); (1., 1.); (2., 9.); (3., 4.) ] in
  Alcotest.(check (option (pair (float 0.) (float 0.)))) "window extremes"
    (Some (1., 9.))
    (Series.min_max s ~t0:0.5 ~t1:2.5);
  (* the value carried into the window counts *)
  Alcotest.(check (option (pair (float 0.) (float 0.)))) "carried value"
    (Some (4., 4.))
    (Series.min_max s ~t0:10. ~t1:20.)

let test_mean_constant () =
  let s = series [ (0., 3.) ] in
  Alcotest.(check (option (float 1e-9))) "constant mean" (Some 3.)
    (Series.mean s ~t0:0. ~t1:10.)

let test_mean_step () =
  (* 0 for [0,5), 10 for [5,10): mean over [0,10) is 5. *)
  let s = series [ (0., 0.); (5., 10.) ] in
  Alcotest.(check (option (float 1e-9))) "time-weighted mean" (Some 5.)
    (Series.mean s ~t0:0. ~t1:10.);
  Alcotest.(check (option (float 1e-9))) "sub-window" (Some 10.)
    (Series.mean s ~t0:5. ~t1:10.)

let test_window () =
  let s = series [ (0., 1.); (1., 2.); (2., 3.); (3., 4.) ] in
  Alcotest.(check (list (pair (float 0.) (float 0.)))) "half-open window"
    [ (1., 2.); (2., 3.) ]
    (Series.window s ~t0:1. ~t1:3.)

let test_iter_to_list () =
  let samples = [ (0., 1.); (1., 4.); (2., 9.) ] in
  let s = series samples in
  Alcotest.(check (list (pair (float 0.) (float 0.)))) "round trip" samples
    (Series.to_list s);
  let count = ref 0 in
  Series.iter s ~f:(fun ~time:_ ~value:_ -> incr count);
  Alcotest.(check int) "iter count" 3 !count

let test_errors () =
  let s = series [ (0., 1.) ] in
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "empty resample" true
    (raises (fun () ->
         ignore (Series.resample (Series.create ()) ~t0:0. ~t1:1. ~dt:0.1
             : float array)));
  Alcotest.(check bool) "bad dt" true
    (raises (fun () -> ignore (Series.resample s ~t0:0. ~t1:1. ~dt:0. : float array)));
  Alcotest.(check bool) "bad index" true
    (raises (fun () -> ignore (Series.get s 5 : float * float)))

let prop_value_at_matches_scan =
  QCheck.Test.make ~name:"value_at agrees with a linear scan" ~count:200
    QCheck.(pair (list (float_bound_inclusive 100.)) (float_bound_inclusive 110.))
    (fun (times, probe) ->
      let times = List.sort compare times in
      let samples = List.mapi (fun i t -> (t, float_of_int i)) times in
      let s = series samples in
      let expected =
        List.fold_left
          (fun acc (t, v) -> if t <= probe then Some v else acc)
          None samples
      in
      Series.value_at s ~time:probe = expected)

(* The merge-sweep resample must be bit-identical to evaluating value_at
   at every grid point (the implementation it replaced).  Duplicate
   sample times are allowed, so generate them too. *)
let prop_resample_matches_value_at =
  QCheck.Test.make ~name:"resample == value_at at every grid point" ~count:300
    QCheck.(
      quad
        (list_of_size (Gen.int_range 1 30) (int_bound 40))
        (int_bound 20) (* t0, quarters *)
        (Gen.int_range 1 60 |> make) (* span, quarters *)
        (Gen.int_range 1 8 |> make) (* dt, quarters *))
    (fun (steps, t0q, spanq, dtq) ->
      (* quarter-integer times force exact grid/sample coincidences *)
      let times = List.sort compare (List.map (fun n -> float_of_int n /. 4.) steps) in
      let samples = List.mapi (fun i t -> (t, float_of_int i)) times in
      let s = series samples in
      let t0 = float_of_int t0q /. 4. in
      let dt = float_of_int dtq /. 4. in
      let t1 = t0 +. (float_of_int spanq /. 4.) in
      let xs = Series.resample s ~t0 ~t1 ~dt in
      let ok = ref true in
      Array.iteri
        (fun k x ->
          let time = t0 +. (dt *. float_of_int k) in
          let expected =
            match Series.value_at s ~time with
            | None -> snd (List.hd samples)
            | Some v -> v
          in
          if x <> expected then ok := false)
        xs;
      !ok)

let test_resample_duplicate_times () =
  (* With several samples at one instant, the last one wins, exactly as
     value_at resolves it. *)
  let s = series [ (0., 1.); (2., 2.); (2., 5.); (2., 7.); (4., 3.) ] in
  let xs = Series.resample s ~t0:0. ~t1:6. ~dt:1. in
  Alcotest.(check (array (float 0.))) "last sample at a tie wins"
    [| 1.; 1.; 7.; 7.; 3.; 3. |] xs

let test_resample_dense_grid () =
  (* Grid much finer than the samples: the sweep must hold position. *)
  let s = series [ (0., 1.); (1., 2.) ] in
  let xs = Series.resample s ~t0:0. ~t1:2. ~dt:0.25 in
  Alcotest.(check (array (float 0.))) "fine grid"
    [| 1.; 1.; 1.; 1.; 2.; 2.; 2.; 2. |] xs

let prop_mean_bounded =
  QCheck.Test.make ~name:"mean lies within [min, max]" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 20) (float_bound_inclusive 50.))
    (fun values ->
      let samples = List.mapi (fun i v -> (float_of_int i, v)) values in
      let s = series samples in
      let n = float_of_int (List.length values) in
      match
        ( Series.mean s ~t0:0. ~t1:n,
          Series.min_max s ~t0:0. ~t1:n )
      with
      | Some m, Some (lo, hi) -> m >= lo -. 1e-9 && m <= hi +. 1e-9
      | _ -> false)

let suite =
  ( "series",
    [
      Alcotest.test_case "add/get" `Quick test_add_get;
      Alcotest.test_case "time monotonic" `Quick test_time_monotonic;
      Alcotest.test_case "equal times" `Quick test_equal_times_allowed;
      Alcotest.test_case "value_at" `Quick test_value_at;
      Alcotest.test_case "resample" `Quick test_resample;
      Alcotest.test_case "resample before start" `Quick
        test_resample_before_start;
      Alcotest.test_case "resample duplicate times" `Quick
        test_resample_duplicate_times;
      Alcotest.test_case "resample dense grid" `Quick test_resample_dense_grid;
      Alcotest.test_case "min_max" `Quick test_min_max;
      Alcotest.test_case "mean constant" `Quick test_mean_constant;
      Alcotest.test_case "mean step" `Quick test_mean_step;
      Alcotest.test_case "window" `Quick test_window;
      Alcotest.test_case "iter/to_list" `Quick test_iter_to_list;
      Alcotest.test_case "errors" `Quick test_errors;
      QCheck_alcotest.to_alcotest prop_value_at_matches_scan;
      QCheck_alcotest.to_alcotest prop_resample_matches_value_at;
      QCheck_alcotest.to_alcotest prop_mean_bounded;
    ] )
