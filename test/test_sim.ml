open Engine

let test_schedule_order () =
  let sim = Sim.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Sim.schedule sim ~delay:2. (note "c") : Sim.handle);
  ignore (Sim.schedule sim ~delay:1. (note "a") : Sim.handle);
  ignore (Sim.schedule sim ~delay:1.5 (note "b") : Sim.handle);
  Sim.run sim ~until:10.;
  Alcotest.(check (list string)) "execution order" [ "a"; "b"; "c" ]
    (List.rev !log);
  Alcotest.(check (float 0.)) "clock at horizon" 10. (Sim.now sim)

let test_same_time_order () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Sim.schedule sim ~delay:1. (fun () -> log := i :: !log) : Sim.handle)
  done;
  Sim.run sim ~until:2.;
  Alcotest.(check (list int)) "same-instant FIFO" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let h = Sim.schedule sim ~delay:1. (fun () -> fired := true) in
  Alcotest.(check bool) "pending before" true (Sim.pending h);
  Sim.cancel h;
  Alcotest.(check bool) "pending after cancel" false (Sim.pending h);
  Sim.run sim ~until:5.;
  Alcotest.(check bool) "cancelled event did not fire" false !fired;
  (* double-cancel is a no-op *)
  Sim.cancel h

let test_nested_scheduling () =
  let sim = Sim.create () in
  let times = ref [] in
  let rec ping n () =
    times := Sim.now sim :: !times;
    if n > 0 then ignore (Sim.schedule sim ~delay:1. (ping (n - 1)) : Sim.handle)
  in
  ignore (Sim.schedule sim ~delay:1. (ping 3) : Sim.handle);
  Sim.run sim ~until:10.;
  Alcotest.(check (list (float 1e-9))) "cascade times" [ 1.; 2.; 3.; 4. ]
    (List.rev !times)

let test_run_until_stops () =
  let sim = Sim.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    ignore (Sim.schedule sim ~delay:1. tick : Sim.handle)
  in
  ignore (Sim.schedule sim ~delay:1. tick : Sim.handle);
  Sim.run sim ~until:5.5;
  Alcotest.(check int) "events within horizon" 5 !count;
  Sim.run sim ~until:7.5;
  Alcotest.(check int) "resumes from horizon" 7 !count

let test_zero_delay () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore
    (Sim.schedule sim ~delay:0. (fun () ->
         log := "outer" :: !log;
         ignore
           (Sim.schedule sim ~delay:0. (fun () -> log := "inner" :: !log)
             : Sim.handle))
      : Sim.handle);
  Sim.run sim ~until:1.;
  Alcotest.(check (list string)) "zero delay ordering" [ "outer"; "inner" ]
    (List.rev !log)

(* The exact Invalid_argument messages are part of the interface: schedule
   and at (and run) each distinguish NaN from out-of-range and name the
   offending value.  Pinned so they cannot drift apart again. *)
let test_negative_delay_rejected () =
  let sim = Sim.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Sim.schedule: negative delay -1") (fun () ->
      ignore (Sim.schedule sim ~delay:(-1.) (fun () -> ()) : Sim.handle))

let test_nan_rejected () =
  let sim = Sim.create () in
  Alcotest.check_raises "NaN delay" (Invalid_argument "Sim.schedule: NaN delay")
    (fun () ->
      ignore (Sim.schedule sim ~delay:Float.nan (fun () -> ()) : Sim.handle));
  Alcotest.check_raises "NaN time" (Invalid_argument "Sim.at: NaN time")
    (fun () ->
      ignore (Sim.at sim ~time:Float.nan (fun () -> ()) : Sim.handle));
  Alcotest.check_raises "NaN horizon" (Invalid_argument "Sim.run: NaN horizon")
    (fun () -> Sim.run sim ~until:Float.nan)

let test_at_past_rejected () =
  let sim = Sim.create () in
  ignore (Sim.schedule sim ~delay:5. (fun () -> ()) : Sim.handle);
  Sim.run sim ~until:5.;
  Alcotest.check_raises "past time rejected"
    (Invalid_argument "Sim.at: time 1 is before current time 5") (fun () ->
      ignore (Sim.at sim ~time:1. (fun () -> ()) : Sim.handle))

let test_run_past_horizon_rejected () =
  let sim = Sim.create () in
  Sim.run sim ~until:5.;
  Alcotest.check_raises "past horizon rejected"
    (Invalid_argument "Sim.run: horizon 3 is before current time 5") (fun () ->
      Sim.run sim ~until:3.)

let test_run_horizon_semantics () =
  let sim = Sim.create () in
  let fired = ref false in
  (* An event exactly at the horizon runs, and the clock lands on it. *)
  ignore (Sim.schedule sim ~delay:7. (fun () -> fired := true) : Sim.handle);
  Sim.run sim ~until:7.;
  Alcotest.(check bool) "event at horizon fires" true !fired;
  Alcotest.(check (float 0.)) "clock is exactly the horizon" 7. (Sim.now sim);
  (* Re-running to the same horizon is a no-op. *)
  Sim.run sim ~until:7.;
  Alcotest.(check (float 0.)) "idempotent" 7. (Sim.now sim);
  (* With only future events, the clock still lands on the horizon. *)
  ignore (Sim.schedule sim ~delay:100. (fun () -> ()) : Sim.handle);
  Sim.run sim ~until:10.;
  Alcotest.(check (float 0.)) "horizon without events" 10. (Sim.now sim)

let test_events_run () =
  let sim = Sim.create () in
  for _ = 1 to 4 do
    ignore (Sim.schedule sim ~delay:1. (fun () -> ()) : Sim.handle)
  done;
  let h = Sim.schedule sim ~delay:1. (fun () -> ()) in
  Sim.cancel h;
  Sim.run_to_completion sim;
  Alcotest.(check int) "cancelled events not counted" 4 (Sim.events_run sim)

let test_step () =
  let sim = Sim.create () in
  let count = ref 0 in
  for _ = 1 to 3 do
    ignore (Sim.schedule sim ~delay:1. (fun () -> incr count) : Sim.handle)
  done;
  Alcotest.(check bool) "step runs one" true (Sim.step sim ~until:10.);
  Alcotest.(check int) "one event" 1 !count;
  Alcotest.(check bool) "step again" true (Sim.step sim ~until:10.);
  ignore (Sim.step sim ~until:10. : bool);
  Alcotest.(check bool) "exhausted" false (Sim.step sim ~until:10.)

let test_on_event_observer () =
  let sim = Sim.create () in
  let seen = ref [] in
  Sim.on_event sim (fun time -> seen := time :: !seen);
  ignore (Sim.schedule sim ~delay:1. (fun () -> ()) : Sim.handle);
  let h = Sim.schedule sim ~delay:2. (fun () -> ()) in
  ignore (Sim.schedule sim ~delay:3. (fun () -> ()) : Sim.handle);
  Sim.cancel h;
  Sim.run sim ~until:10.;
  Alcotest.(check (list (float 1e-9)))
    "observer sees non-cancelled events in order" [ 1.; 3. ]
    (List.rev !seen)

(* Cancel semantics under random schedules: exactly the non-cancelled
   events fire, each once, and no handle stays pending after a drain. *)
let prop_cancel_semantics =
  QCheck.Test.make ~name:"cancel semantics under random schedules" ~count:200
    QCheck.(list (pair (float_bound_inclusive 50.) bool))
    (fun events ->
      let sim = Sim.create () in
      let fired = Array.make (List.length events) 0 in
      let handles =
        List.mapi
          (fun i (delay, _) ->
            Sim.schedule sim ~delay (fun () -> fired.(i) <- fired.(i) + 1))
          events
      in
      List.iteri
        (fun i (_, cancelled) ->
          if cancelled then Sim.cancel (List.nth handles i))
        events;
      Sim.run_to_completion sim;
      List.for_all2
        (fun h ((_, cancelled), count) ->
          (not (Sim.pending h)) && count = (if cancelled then 0 else 1))
        handles
        (List.combine events (Array.to_list fired)))

(* Observers fire in registration order (they used to run reversed,
   which broke any validate-then-trace hook pairing). *)
let test_observer_order () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.on_event sim (fun _ -> log := 1 :: !log);
  Sim.on_event sim (fun _ -> log := 2 :: !log);
  Sim.on_event sim (fun _ -> log := 3 :: !log);
  ignore (Sim.schedule sim ~delay:1. (fun () -> ()) : Sim.handle);
  Sim.run_to_completion sim;
  Alcotest.(check (list int)) "registration order" [ 1; 2; 3 ] (List.rev !log)

(* A cancel-heavy workload must not accumulate dead handles until their
   scheduled times: compaction keeps the queue bounded even though every
   cancelled event lies 1000 s in the future. *)
let test_cancel_compaction () =
  let sim = Sim.create () in
  for _ = 1 to 10_000 do
    Sim.cancel (Sim.schedule sim ~delay:1000. (fun () -> ()))
  done;
  Alcotest.(check bool)
    (Printf.sprintf "queue stays bounded (len %d)" (Sim.queue_length sim))
    true
    (Sim.queue_length sim <= 128);
  Sim.run_to_completion sim;
  Alcotest.(check int) "no cancelled event ran" 0 (Sim.events_run sim)

(* The compaction invariant under arbitrary cancel patterns: at any
   point the queue holds at most 2x the live events plus the compaction
   threshold. *)
let prop_cancel_bounded =
  QCheck.Test.make ~name:"cancel keeps queue length within 2*live + 64"
    ~count:200
    QCheck.(list bool)
    (fun cancels ->
      let sim = Sim.create () in
      let live = ref 0 in
      List.for_all
        (fun cancel ->
          let h = Sim.schedule sim ~delay:100. (fun () -> ()) in
          if cancel then Sim.cancel h else incr live;
          Sim.queue_length sim <= (2 * !live) + 64)
        cancels)

(* ------------------------------------------------------------------ *)
(* Reusable timers (Sim.Timer)                                         *)
(* ------------------------------------------------------------------ *)

let test_timer_basics () =
  let sim = Sim.create () in
  let fires = ref [] in
  let tm = Sim.Timer.create sim (fun () -> fires := Sim.now sim :: !fires) in
  Alcotest.(check bool) "fresh timer not pending" false (Sim.Timer.pending tm);
  Sim.Timer.set tm ~delay:2.;
  Alcotest.(check bool) "armed" true (Sim.Timer.pending tm);
  (* Re-arming moves the deadline: only the final setting fires. *)
  Sim.Timer.set tm ~delay:5.;
  Sim.run sim ~until:3.;
  Alcotest.(check (list (float 0.))) "old deadline gone" [] !fires;
  Sim.run sim ~until:10.;
  Alcotest.(check (list (float 1e-9))) "fires at re-armed time" [ 5. ] !fires;
  Alcotest.(check bool) "disarmed after firing" false (Sim.Timer.pending tm);
  (* The same timer is reusable after firing, and set_at takes an
     absolute time. *)
  Sim.Timer.set_at tm ~time:12.;
  Sim.Timer.cancel tm;
  Alcotest.(check bool) "cancel disarms" false (Sim.Timer.pending tm);
  Sim.Timer.cancel tm;  (* double-cancel is a no-op *)
  Sim.Timer.set tm ~delay:4.;
  Sim.run_to_completion sim;
  Alcotest.(check (list (float 1e-9))) "reused after cancel" [ 14.; 5. ] !fires

let test_timer_same_time_fifo () =
  (* A timer armed at the same instant as plain scheduled events keeps
     its insertion rank: arming consumes one sequence number exactly
     like Sim.schedule. *)
  let sim = Sim.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Sim.schedule sim ~delay:1. (note "a") : Sim.handle);
  let tm = Sim.Timer.create sim (note "b") in
  Sim.Timer.set tm ~delay:1.;
  ignore (Sim.schedule sim ~delay:1. (note "c") : Sim.handle);
  Sim.run_to_completion sim;
  Alcotest.(check (list string)) "insertion order at a tie" [ "a"; "b"; "c" ]
    (List.rev !log)

(* The retransmission-timer workload: every "ACK" pushes the deadline
   out, so the timer is re-armed thousands of times but fires once.  The
   queue must stay at the live-event count (one ack chain + one timer) —
   re-arming in place must not leave debris behind. *)
let test_timer_rearm_storm () =
  let sim = Sim.create () in
  let fires = ref [] in
  let tm = Sim.Timer.create sim (fun () -> fires := Sim.now sim :: !fires) in
  let acks = 10_000 in
  let max_len = ref 0 in
  let rec ack n () =
    Sim.Timer.set tm ~delay:3.;
    max_len := max !max_len (Sim.queue_length sim);
    if n > 0 then
      ignore (Sim.schedule sim ~delay:0.001 (ack (n - 1)) : Sim.handle)
  in
  ignore (Sim.schedule sim ~delay:0.001 (ack (acks - 1)) : Sim.handle);
  Sim.run_to_completion sim;
  let last_ack_time = 0.001 *. float_of_int acks in
  Alcotest.(check (list (float 1e-6)))
    "single firing, 3s after the last re-arm"
    [ last_ack_time +. 3. ]
    !fires;
  Alcotest.(check bool)
    (Printf.sprintf "queue stayed at live size (max %d)" !max_len)
    true (!max_len <= 2);
  Alcotest.(check int) "acks + one timer firing" (acks + 1)
    (Sim.events_run sim)

let test_timer_set_action () =
  let sim = Sim.create () in
  let log = ref [] in
  let tm = Sim.Timer.create sim (fun () -> log := "old" :: !log) in
  Sim.Timer.set tm ~delay:1.;
  Sim.Timer.set_action tm (fun () -> log := "new" :: !log);
  Sim.run_to_completion sim;
  Alcotest.(check (list string)) "replaced action fires" [ "new" ] !log

let test_timer_errors () =
  let sim = Sim.create () in
  let tm = Sim.Timer.create sim (fun () -> ()) in
  Alcotest.check_raises "NaN delay"
    (Invalid_argument "Sim.Timer.set: NaN delay") (fun () ->
      Sim.Timer.set tm ~delay:Float.nan);
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Sim.Timer.set: negative delay -1") (fun () ->
      Sim.Timer.set tm ~delay:(-1.));
  Alcotest.check_raises "NaN time"
    (Invalid_argument "Sim.Timer.set_at: NaN time") (fun () ->
      Sim.Timer.set_at tm ~time:Float.nan);
  Sim.run sim ~until:5.;
  Alcotest.check_raises "past time"
    (Invalid_argument "Sim.Timer.set_at: time 1 is before current time 5")
    (fun () -> Sim.Timer.set_at tm ~time:1.)

(* Observational equivalence: a Timer driven by arbitrary set/cancel/
   advance interleavings behaves exactly like the closure-based
   cancel-then-reschedule pattern it replaces — same fire times, same
   order (including same-instant ties against other traffic), same
   pending answers.  Delays are drawn from a half-integer grid so that
   ties actually occur. *)
let prop_timer_equivalence =
  let n_timers = 4 in
  let op =
    QCheck.(
      map
        (fun (tag, i, steps) ->
          let d = float_of_int steps /. 2. in
          (tag mod 3, i mod n_timers, d))
        (triple (int_bound 2) (int_bound (n_timers - 1)) (int_bound 10)))
  in
  QCheck.Test.make ~name:"Timer.set/cancel == cancel+reschedule" ~count:300
    (QCheck.list op)
    (fun ops ->
      let simA = Sim.create () and simB = Sim.create () in
      let logA = ref [] and logB = ref [] in
      let timers =
        Array.init n_timers (fun i ->
            Sim.Timer.create simA (fun () ->
                logA := (i, Sim.now simA) :: !logA))
      in
      let href = Array.make n_timers None in
      List.iter
        (fun (tag, i, d) ->
          match tag with
          | 0 ->
            (* arm / re-arm *)
            Sim.Timer.set timers.(i) ~delay:d;
            (match href.(i) with Some h -> Sim.cancel h | None -> ());
            href.(i) <-
              Some
                (Sim.schedule simB ~delay:d (fun () ->
                     logB := (i, Sim.now simB) :: !logB))
          | 1 ->
            Sim.Timer.cancel timers.(i);
            (match href.(i) with Some h -> Sim.cancel h | None -> ())
          | _ ->
            (* advance both clocks together *)
            Sim.run simA ~until:(Sim.now simA +. d);
            Sim.run simB ~until:(Sim.now simB +. d))
        ops;
      let pending_agree =
        Array.to_list
          (Array.mapi
             (fun i tm ->
               Sim.Timer.pending tm
               = (match href.(i) with
                  | Some h -> Sim.pending h
                  | None -> false))
             timers)
        |> List.for_all Fun.id
      in
      Sim.run_to_completion simA;
      Sim.run_to_completion simB;
      pending_agree && !logA = !logB
      && Sim.events_run simA = Sim.events_run simB)

let suite =
  ( "sim",
    [
      Alcotest.test_case "schedule order" `Quick test_schedule_order;
      Alcotest.test_case "same-time FIFO" `Quick test_same_time_order;
      Alcotest.test_case "cancel" `Quick test_cancel;
      Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
      Alcotest.test_case "run until horizon" `Quick test_run_until_stops;
      Alcotest.test_case "zero delay" `Quick test_zero_delay;
      Alcotest.test_case "negative delay rejected" `Quick
        test_negative_delay_rejected;
      Alcotest.test_case "NaN rejected with distinct messages" `Quick
        test_nan_rejected;
      Alcotest.test_case "at past rejected" `Quick test_at_past_rejected;
      Alcotest.test_case "run past horizon rejected" `Quick
        test_run_past_horizon_rejected;
      Alcotest.test_case "run horizon semantics" `Quick
        test_run_horizon_semantics;
      Alcotest.test_case "on_event observer" `Quick test_on_event_observer;
      Alcotest.test_case "events_run counts" `Quick test_events_run;
      Alcotest.test_case "step" `Quick test_step;
      Alcotest.test_case "observer order" `Quick test_observer_order;
      Alcotest.test_case "cancel compaction" `Quick test_cancel_compaction;
      Alcotest.test_case "timer basics" `Quick test_timer_basics;
      Alcotest.test_case "timer same-time FIFO" `Quick
        test_timer_same_time_fifo;
      Alcotest.test_case "timer re-arm storm" `Quick test_timer_rearm_storm;
      Alcotest.test_case "timer set_action" `Quick test_timer_set_action;
      Alcotest.test_case "timer error messages" `Quick test_timer_errors;
      QCheck_alcotest.to_alcotest prop_cancel_semantics;
      QCheck_alcotest.to_alcotest prop_cancel_bounded;
      QCheck_alcotest.to_alcotest prop_timer_equivalence;
    ] )
