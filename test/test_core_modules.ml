(* Scenario, Report, Ascii_plot, Export, Topology params. *)

let test_scenario_validation () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "no conns" true
    (raises (fun () ->
         Core.Scenario.make ~name:"x" ~tau:1. ~buffer:None ~conns:[] ()));
  Alcotest.(check bool) "duration <= warmup" true
    (raises (fun () ->
         Core.Scenario.make ~name:"x" ~tau:1. ~buffer:None
           ~conns:[ Core.Scenario.conn Core.Scenario.Forward ]
           ~duration:10. ~warmup:10. ()))

let test_scenario_pipe () =
  let s tau =
    Core.Scenario.make ~name:"x" ~tau ~buffer:None
      ~conns:[ Core.Scenario.conn Core.Scenario.Forward ]
      ()
  in
  Alcotest.(check (float 1e-9)) "small pipe" 0.125 (Core.Scenario.pipe (s 0.01));
  Alcotest.(check (float 1e-9)) "large pipe" 12.5 (Core.Scenario.pipe (s 1.0));
  Alcotest.(check (float 1e-9)) "data tx" 0.08 (Core.Scenario.data_tx (s 1.0))

let test_scenario_stagger () =
  let specs =
    Core.Scenario.stagger ~step:2.
      [
        Core.Scenario.conn Core.Scenario.Forward;
        Core.Scenario.conn Core.Scenario.Reverse;
        Core.Scenario.conn ~start_time:1. Core.Scenario.Forward;
      ]
  in
  Alcotest.(check (list (float 1e-9))) "start times" [ 0.; 2.; 5. ]
    (List.map (fun c -> c.Core.Scenario.start_time) specs)

let test_fixed_conn_spec () =
  let c = Core.Scenario.fixed_conn ~window:30 Core.Scenario.Reverse in
  Alcotest.(check bool) "no loss detection" false c.Core.Scenario.loss_detection;
  (match c.Core.Scenario.cc with
   | { Tcp.Cc.name = "fixed"; params = [ ("w", 30.) ] } -> ()
   | s -> Alcotest.failf "expected fixed:w=30, got %s" (Tcp.Cc.spec_to_string s));
  Alcotest.(check bool) "reverse" true (c.Core.Scenario.dir = Core.Scenario.Reverse)

let test_report_checks () =
  let pass = Core.Report.in_band ~metric:"m" ~paper:"p" ~value:0.5 ~lo:0. ~hi:1. in
  let fail = Core.Report.in_band ~metric:"m" ~paper:"p" ~value:2. ~lo:0. ~hi:1. in
  let inf = Core.Report.info ~metric:"m" ~paper:"p" ~measured:"x" in
  Alcotest.(check bool) "pass" true (pass.Core.Report.pass = Some true);
  Alcotest.(check bool) "fail" true (fail.Core.Report.pass = Some false);
  Alcotest.(check bool) "info" true (inf.Core.Report.pass = None);
  let outcome = { Core.Report.id = "T"; title = "t"; checks = [ pass; inf ] } in
  Alcotest.(check bool) "all passed ignores info" true
    (Core.Report.all_passed outcome);
  let outcome_bad = { outcome with Core.Report.checks = [ pass; fail ] } in
  Alcotest.(check bool) "failure detected" false
    (Core.Report.all_passed outcome_bad);
  Alcotest.(check int) "failed list" 1
    (List.length (Core.Report.failed_checks outcome_bad));
  Alcotest.(check bool) "summary mentions verdict" true
    (String.length (Core.Report.summary_line outcome) > 0)

let test_report_render () =
  let outcome =
    {
      Core.Report.id = "X";
      title = "demo";
      checks =
        [ Core.Report.expect ~metric:"a" ~paper:"b" ~measured:"c" true ];
    }
  in
  let text = Format.asprintf "%a" Core.Report.pp outcome in
  Alcotest.(check bool) "has header" true
    (String.length text > 0
    && String.sub text 0 7 = "=== X: ");
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "verdict printed" true (contains text "ok")

let test_ascii_plot_dimensions () =
  let s = Trace.Series.of_list [ (0., 0.); (5., 10.); (10., 5.) ] in
  let text = Core.Ascii_plot.render ~width:40 ~height:8 s ~t0:0. ~t1:10. in
  let lines = String.split_on_char '\n' text in
  (* 8 data rows + axis + time labels + trailing newline *)
  Alcotest.(check bool) "row count" true (List.length lines >= 10);
  Alcotest.(check bool) "has marks" true (String.contains text '*')

let test_ascii_plot_pair_overlap () =
  let a = Trace.Series.of_list [ (0., 5.) ] in
  let b = Trace.Series.of_list [ (0., 5.) ] in
  let text =
    Core.Ascii_plot.render_pair ~width:20 ~height:5 ~labels:("a", "b") a b
      ~t0:0. ~t1:10.
  in
  Alcotest.(check bool) "overlap marked" true (String.contains text '#')

let test_ascii_plot_errors () =
  let s = Trace.Series.of_list [ (0., 1.) ] in
  let raises f = try ignore (f () : string); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "too small" true
    (raises (fun () -> Core.Ascii_plot.render ~width:2 ~height:1 s ~t0:0. ~t1:1.))

let test_export_csv () =
  let dir = Filename.temp_file "repro" "" in
  Sys.remove dir;
  let s = Trace.Series.of_list [ (0., 1.); (1., 2.) ] in
  let path = Filename.concat (Filename.get_temp_dir_name ()) "series-test.csv" in
  Core.Export.series_csv ~path s;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Alcotest.(check int) "header + 2 rows" 3 (List.length !lines);
  Alcotest.(check string) "header" "time,value"
    (List.nth (List.rev !lines) 0);
  Sys.remove path

let test_export_run () =
  let scenario =
    Core.Scenario.make ~name:"exp" ~tau:0.01 ~buffer:(Some 20)
      ~conns:[ Core.Scenario.conn Core.Scenario.Forward ]
      ~duration:20. ~warmup:5. ()
  in
  let r = Core.Runner.run scenario in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "repro-export" in
  let files = Core.Export.run_csv ~dir ~prefix:"t" r in
  (* q1, q2, one cwnd, drops *)
  Alcotest.(check int) "file count" 4 (List.length files);
  List.iter (fun f -> Alcotest.(check bool) f true (Sys.file_exists f)) files;
  List.iter Sys.remove files

let test_topology_params () =
  let p = Net.Topology.params ~tau:0.5 ~buffer:(Some 7) () in
  Alcotest.(check (float 1e-9)) "bottleneck bw" 50_000. p.Net.Topology.bottleneck_bw;
  Alcotest.(check (float 1e-9)) "tau" 0.5 p.Net.Topology.tau;
  Alcotest.(check (option int)) "buffer" (Some 7) p.Net.Topology.buffer;
  Alcotest.(check (float 1e-9)) "host proc" 0.0001 p.Net.Topology.proc_delay

let test_dumbbell_structure () =
  let sim = Engine.Sim.create () in
  let d = Net.Topology.dumbbell sim (Net.Topology.params ~tau:0.1 ~buffer:(Some 20) ()) in
  Alcotest.(check int) "4 nodes" 4 (Net.Network.node_count d.Net.Topology.net);
  (* 2 bottleneck + 2x2 host links *)
  Alcotest.(check int) "6 simplex links" 6
    (List.length (Net.Network.links d.Net.Topology.net));
  Alcotest.(check (float 1e-9)) "bottleneck prop" 0.1
    (Net.Link.prop_delay d.Net.Topology.fwd);
  Alcotest.(check bool) "fwd joins the switches" true
    (Net.Link.src d.Net.Topology.fwd = d.Net.Topology.switch1
    && Net.Link.dst d.Net.Topology.fwd = d.Net.Topology.switch2)

let test_chain_structure () =
  let sim = Engine.Sim.create () in
  let c =
    Net.Topology.chain sim (Net.Topology.params ~tau:0.01 ~buffer:(Some 30) ())
      ~num_switches:4
  in
  Alcotest.(check int) "hosts" 4 (Array.length c.Net.Topology.hosts);
  Alcotest.(check int) "trunks" 3 (Array.length c.Net.Topology.trunks);
  (* 3 duplex trunks + 4 duplex host links = 14 simplex links *)
  Alcotest.(check int) "links" 14 (List.length (Net.Network.links c.Net.Topology.cnet))

let suite =
  ( "core",
    [
      Alcotest.test_case "scenario validation" `Quick test_scenario_validation;
      Alcotest.test_case "scenario pipe" `Quick test_scenario_pipe;
      Alcotest.test_case "scenario stagger" `Quick test_scenario_stagger;
      Alcotest.test_case "fixed conn spec" `Quick test_fixed_conn_spec;
      Alcotest.test_case "report checks" `Quick test_report_checks;
      Alcotest.test_case "report render" `Quick test_report_render;
      Alcotest.test_case "ascii plot dimensions" `Quick
        test_ascii_plot_dimensions;
      Alcotest.test_case "ascii plot overlap" `Quick test_ascii_plot_pair_overlap;
      Alcotest.test_case "ascii plot errors" `Quick test_ascii_plot_errors;
      Alcotest.test_case "export csv" `Quick test_export_csv;
      Alcotest.test_case "export run" `Quick test_export_run;
      Alcotest.test_case "topology params" `Quick test_topology_params;
      Alcotest.test_case "dumbbell structure" `Quick test_dumbbell_structure;
      Alcotest.test_case "chain structure" `Quick test_chain_structure;
    ] )
