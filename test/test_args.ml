(* Validated CLI numeric parsing (lib/core/args.ml): [float_of_string]
   accepts "nan", "inf" and negatives where netsim flags mean durations,
   rates or probabilities.  Every numeric flag in bin/netsim.ml routes
   through [Args.parse_float]; this suite pins the check semantics and
   walks the flag table so a new flag added without validation shows up
   as a missing row here. *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let admits = Core.Args.admits

let test_admits_positive () =
  Alcotest.(check bool) "1e-9" true (admits Core.Args.Positive 1e-9);
  Alcotest.(check bool) "600" true (admits Core.Args.Positive 600.);
  Alcotest.(check bool) "zero" false (admits Core.Args.Positive 0.);
  Alcotest.(check bool) "negative" false (admits Core.Args.Positive (-1.));
  Alcotest.(check bool) "nan" false (admits Core.Args.Positive Float.nan);
  Alcotest.(check bool) "inf" false (admits Core.Args.Positive Float.infinity);
  Alcotest.(check bool) "-inf" false
    (admits Core.Args.Positive Float.neg_infinity)

let test_admits_non_negative () =
  Alcotest.(check bool) "zero" true (admits Core.Args.Non_negative 0.);
  Alcotest.(check bool) "positive" true (admits Core.Args.Non_negative 0.5);
  Alcotest.(check bool) "negative" false (admits Core.Args.Non_negative (-0.5));
  Alcotest.(check bool) "nan" false (admits Core.Args.Non_negative Float.nan);
  Alcotest.(check bool) "inf" false
    (admits Core.Args.Non_negative Float.infinity)

let test_admits_probability () =
  Alcotest.(check bool) "zero" true (admits Core.Args.Probability 0.);
  Alcotest.(check bool) "one" true (admits Core.Args.Probability 1.);
  Alcotest.(check bool) "half" true (admits Core.Args.Probability 0.5);
  Alcotest.(check bool) "above one" false (admits Core.Args.Probability 1.5);
  Alcotest.(check bool) "negative" false (admits Core.Args.Probability (-0.1));
  Alcotest.(check bool) "nan" false (admits Core.Args.Probability Float.nan);
  Alcotest.(check bool) "inf" false
    (admits Core.Args.Probability Float.infinity)

let test_error_messages () =
  (match Core.Args.parse_float ~what:"--loss" Core.Args.Probability "nan" with
   | Ok _ -> Alcotest.fail "nan accepted"
   | Error msg ->
     Alcotest.(check bool) "names the flag" true (contains msg "--loss");
     Alcotest.(check bool) "says nan" true (contains msg "nan");
     Alcotest.(check bool) "states the requirement" true
       (contains msg "probability in [0,1]"));
  (match Core.Args.parse_float ~what:"--duration" Core.Args.Positive "-3" with
   | Ok _ -> Alcotest.fail "negative duration accepted"
   | Error msg ->
     Alcotest.(check bool) "names the flag" true (contains msg "--duration");
     Alcotest.(check bool) "shows the value" true (contains msg "-3"));
  (match Core.Args.parse_float ~what:"--tau" Core.Args.Positive "abc" with
   | Ok _ -> Alcotest.fail "garbage accepted"
   | Error msg ->
     Alcotest.(check bool) "malformed input names the flag" true
       (contains msg "--tau"));
  match Core.Args.parse_float ~what:"--warmup" Core.Args.Non_negative " 2.5 " with
  | Ok v -> Alcotest.(check (float 0.)) "whitespace trimmed" 2.5 v
  | Error msg -> Alcotest.failf "trimmed input rejected: %s" msg

(* One row per numeric flag in bin/netsim.ml, with the check that flag
   declares.  Every row must reject the classic float_of_string
   footguns and accept a representative sane value. *)
let flag_table =
  [
    ("--duration", Core.Args.Positive, "600");
    ("--warmup", Core.Args.Non_negative, "200");
    ("--tau", Core.Args.Positive, "0.01");
    ("--skew", Core.Args.Non_negative, "0");
    ("--pacing", Core.Args.Positive, "0.05");
    ("--metrics-dt", Core.Args.Positive, "1");
    ("--max-wall", Core.Args.Positive, "30");
    ("--worker-timeout", Core.Args.Positive, "60");
    ("--loss", Core.Args.Probability, "0.01");
    ("--dup", Core.Args.Probability, "0.001");
    ("--jitter", Core.Args.Non_negative, "0.002");
    ("--burst-loss", Core.Args.Probability, "0.3");
    ("--outage", Core.Args.Non_negative, "5");
  ]

let test_per_flag_rejection () =
  List.iter
    (fun (flag, check, good) ->
      (match Core.Args.parse_float ~what:flag check good with
       | Ok _ -> ()
       | Error msg -> Alcotest.failf "%s rejects its own default: %s" flag msg);
      List.iter
        (fun bad ->
          match Core.Args.parse_float ~what:flag check bad with
          | Ok v -> Alcotest.failf "%s accepted %s (as %g)" flag bad v
          | Error msg ->
            Alcotest.(check bool)
              (Printf.sprintf "%s error names the flag for %s" flag bad)
              true (contains msg flag))
        [ "nan"; "inf"; "-inf"; "-1"; "x" ])
    flag_table

let suite =
  ( "args",
    [
      Alcotest.test_case "positive check" `Quick test_admits_positive;
      Alcotest.test_case "non-negative check" `Quick test_admits_non_negative;
      Alcotest.test_case "probability check" `Quick test_admits_probability;
      Alcotest.test_case "errors name flag, value, requirement" `Quick
        test_error_messages;
      Alcotest.test_case "every numeric flag rejects nan/inf/negative" `Quick
        test_per_flag_rejection;
    ] )
