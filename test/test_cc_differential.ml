(* Differential tests for the Cc port.

   The classic registry entries (tahoe and reno families, fixed) are a
   re-statement of the seed Cong machine, not a wrapper around it — so
   these tests drive both machines through the same random event
   sequences and demand bit-identical state after every step.  A whole
   scenario must likewise not care whether it was configured through the
   legacy [?algorithm] selector or a [Cc] spec.  Finally, the AIMD
   entry earns its place in the zoo with the classic convergence
   property: two AIMD flows sharing a bottleneck drift toward fair
   shares. *)

open Tcp

let () = Cc_zoo.ensure_registered ()

(* ---------------- stepwise machine equivalence ---------------- *)

type event = Ack | Dup_ack | Loss_fast | Loss_timeout | Reset

let gen_event =
  QCheck.Gen.(
    frequency
      [
        (8, return Ack);
        (3, return Dup_ack);
        (2, return Loss_fast);
        (1, return Loss_timeout);
        (1, return Reset);
      ])

let pp_event = function
  | Ack -> "ack"
  | Dup_ack -> "dup"
  | Loss_fast -> "fast-rexmt"
  | Loss_timeout -> "timeout"
  | Reset -> "reset"

let arb_events =
  QCheck.make
    ~print:(fun l -> String.concat "," (List.map pp_event l))
    QCheck.Gen.(list_size (int_range 1 120) gen_event)

(* Drive both machines the way Sender does: an ACK of new data goes to
   [on_recovery_exit] when a recovery is in progress, [on_ack]
   otherwise.  The Cc side folds that dispatch into one hook. *)
let apply_both cong cc ~ackno ~highest event =
  match event with
  | Ack ->
    incr ackno;
    if !ackno > !highest then highest := !ackno;
    if Cong.in_recovery cong then Cong.on_recovery_exit cong
    else Cong.on_ack cong;
    if Cc.on_ack cc ~ackno:!ackno ~newly:1 then
      QCheck.Test.fail_reportf
        "%s asked for a hole retransmission (classic entries never do)"
        (Cc.name cc)
  | Dup_ack ->
    Cong.on_dup_ack cong;
    Cc.on_dup_ack cc
  | Loss_fast ->
    Cong.on_fast_retransmit cong;
    Cc.on_loss cc Cc.Fast_retransmit ~highest_sent:!highest
  | Loss_timeout ->
    Cong.on_timeout cong;
    Cc.on_loss cc Cc.Timeout ~highest_sent:!highest
  | Reset ->
    Cong.reset cong;
    Cc.reset cc

let same_state ~ctx cong cc =
  let check name got expected =
    if not (Float.equal got expected) then
      QCheck.Test.fail_reportf "%s: Cc %s = %.17g, Cong = %.17g" ctx name got
        expected
  in
  check "cwnd" (Cc.cwnd cc) (Cong.cwnd cong);
  check "ssthresh" (Cc.ssthresh cc) (Cong.ssthresh cong);
  if Cc.window cc <> Cong.wnd cong then
    QCheck.Test.fail_reportf "%s: Cc window = %d, Cong wnd = %d" ctx
      (Cc.window cc) (Cong.wnd cong);
  if Cc.in_slow_start cc <> Cong.in_slow_start cong then
    QCheck.Test.fail_reportf "%s: in_slow_start disagrees" ctx;
  if Cc.in_recovery cc <> Cong.in_recovery cong then
    QCheck.Test.fail_reportf "%s: in_recovery disagrees" ctx

let equivalence_pairs =
  [
    (Cc.spec "tahoe", Cong.Tahoe { modified_ca = true });
    (Cc.spec "tahoe-unmodified", Cong.Tahoe { modified_ca = false });
    (Cc.spec "reno", Cong.Reno { modified_ca = true });
    (Cc.spec "reno-unmodified", Cong.Reno { modified_ca = false });
    (Cc.spec ~params:[ ("w", 8.) ] "fixed", Cong.Fixed 8);
    (Cc.spec ~params:[ ("w", 50.) ] "fixed", Cong.Fixed 50);
  ]

let prop_stepwise_equivalence (spec, algorithm) =
  let label = Cc.spec_to_string spec in
  QCheck.Test.make
    ~name:(Printf.sprintf "%s tracks Cong.%s step for step" label
             (Cong.algorithm_to_string algorithm))
    ~count:200 arb_events
    (fun events ->
      List.for_all
        (fun maxwnd ->
          let cong = Cong.create ~algorithm ~maxwnd in
          let cc = Cc.make spec ~maxwnd in
          let ackno = ref 0 and highest = ref 0 in
          same_state ~ctx:(label ^ " initial") cong cc;
          List.iteri
            (fun i e ->
              apply_both cong cc ~ackno ~highest e;
              same_state
                ~ctx:(Printf.sprintf "%s after step %d (%s)" label i
                        (pp_event e))
                cong cc)
            events;
          true)
        [ 2; 9; 1000 ])

(* ---------------- Reno fast-recovery pins through Cc ---------------- *)

(* The numbers test_variants.ml pins on the seed Cong Reno machine,
   reproduced through the interface. *)
let test_reno_pins_via_cc () =
  let c = Cc.make (Cc.spec "reno") ~maxwnd:1000 in
  let ackno = ref 0 in
  let ack () =
    incr ackno;
    ignore (Cc.on_ack c ~ackno:!ackno ~newly:1 : bool)
  in
  for _ = 1 to 19 do ack () done;
  Alcotest.(check (float 0.)) "slow start reached 20" 20. (Cc.cwnd c);
  Cc.on_loss c Cc.Fast_retransmit ~highest_sent:40;
  Alcotest.(check (float 0.)) "ssthresh halved" 10. (Cc.ssthresh c);
  Alcotest.(check (float 0.)) "cwnd inflated to ssthresh+3" 13. (Cc.cwnd c);
  Alcotest.(check bool) "in recovery" true (Cc.in_recovery c);
  Cc.on_dup_ack c;
  Cc.on_dup_ack c;
  Alcotest.(check (float 0.)) "each dup inflates by one" 15. (Cc.cwnd c);
  ack ();
  Alcotest.(check (float 0.)) "new ACK deflates to ssthresh" 10. (Cc.cwnd c);
  Alcotest.(check bool) "recovery over" false (Cc.in_recovery c);
  Cc.on_loss c Cc.Timeout ~highest_sent:45;
  Alcotest.(check (float 0.)) "timeout collapses to 1" 1. (Cc.cwnd c);
  Alcotest.(check (float 0.)) "timeout halves ssthresh" 5. (Cc.ssthresh c)

(* ---------------- whole-scenario equivalence ---------------- *)

(* The same two-way run configured through the legacy ?algorithm
   selector and through an explicit Cc spec must be identical down to
   the queue trace: the spec plumbing (Scenario.conn, Config.make,
   Runner) may not perturb the simulation. *)
let scenario_with conn_of_dir =
  Core.Scenario.make ~name:"diff" ~tau:0.01 ~buffer:(Some 20)
    ~conns:
      (Core.Scenario.stagger ~step:1.
         [ conn_of_dir Core.Scenario.Forward; conn_of_dir Core.Scenario.Reverse ])
    ~duration:60. ~warmup:10. ()

let test_scenario_algorithm_vs_cc () =
  let legacy =
    scenario_with (fun dir ->
        Core.Scenario.conn ~algorithm:(Cong.Reno { modified_ca = true }) dir)
  in
  let speced =
    scenario_with (fun dir -> Core.Scenario.conn ~cc:(Cc.spec "reno") dir)
  in
  let r1 = Core.Runner.run legacy and r2 = Core.Runner.run speced in
  Alcotest.(check (array int))
    "delivered identical"
    r1.Core.Runner.delivered r2.Core.Runner.delivered;
  Alcotest.(check int) "drops identical"
    (Trace.Drop_log.total r1.Core.Runner.drops)
    (Trace.Drop_log.total r2.Core.Runner.drops);
  let series (r : Core.Runner.result) i =
    Array.to_list
      (Trace.Series.resample
         (Trace.Cwnd_trace.cwnd r.Core.Runner.cwnds.(i))
         ~t0:r.Core.Runner.t0 ~t1:r.Core.Runner.t1 ~dt:1.)
  in
  Alcotest.(check (list (float 0.))) "fwd cwnd trace identical"
    (series r1 0) (series r2 0);
  Alcotest.(check (list (float 0.))) "rev cwnd trace identical"
    (series r1 1) (series r2 1)

(* ---------------- AIMD convergence ---------------- *)

(* Two AIMD flows with the same (a, b) sharing the forward bottleneck,
   the second starting late enough that the first owns the whole pipe:
   the Chiu-Jain argument says repeated shared decreases pull the window
   shares together.  Jain's index of the mean cwnds must end high, and
   a genuinely unfair start must have improved.

   The bottleneck runs the random-drop gateway: under pure drop-tail the
   two deterministic sawtooths can lock into the paper's phase effect —
   at a few resonant staggers the late joiner keeps catching every drop
   and fairness sticks near 0.6, which is a finding about FIFO gateways,
   not about AIMD.  Randomizing the victim restores the textbook
   dynamics the property is about.

   Thresholds are calibrated against an exhaustive offline sweep of the
   whole generator domain (3 x 3 x 16 combinations): worst final
   fairness 0.873, and every start below 0.8 improved. *)
let jain x y =
  let s = x +. y in
  if s = 0. then 1. else s *. s /. (2. *. ((x *. x) +. (y *. y)))

let mean a = Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)

let prop_aimd_converges =
  QCheck.Test.make ~name:"two AIMD flows converge toward fair shares"
    ~count:4
    QCheck.(
      make
        ~print:(fun (a, b, stagger) ->
          Printf.sprintf "a=%g b=%g stagger=%d" a b stagger)
        Gen.(
          triple (oneofl [ 0.5; 1.; 2. ]) (oneofl [ 0.3; 0.5; 0.7 ])
            (int_range 10 25)))
    (fun (a, b, stagger) ->
      let cc = Cc.spec ~params:[ ("a", a); ("b", b) ] "aimd" in
      let scenario =
        Core.Scenario.make
          ~name:(Printf.sprintf "aimd-fair-%g-%g-%d" a b stagger)
          ~tau:0.01 ~buffer:(Some 20)
          ~gateway:(Net.Discipline.Random_drop { seed = 11 })
          ~conns:
            [
              Core.Scenario.conn ~cc Core.Scenario.Forward;
              Core.Scenario.conn ~cc ~start_time:(float_of_int stagger)
                Core.Scenario.Forward;
            ]
          ~duration:300. ~warmup:0. ()
      in
      let r = Core.Runner.run scenario in
      let resample i =
        Trace.Series.resample
          (Trace.Cwnd_trace.cwnd r.Core.Runner.cwnds.(i))
          ~t0:(float_of_int stagger) ~t1:300. ~dt:0.5
      in
      let w1 = resample 0 and w2 = resample 1 in
      let n = Array.length w1 in
      (* early: the 10 s right after the late flow joins; late: the
         last 50 s of the run *)
      let early = jain (mean (Array.sub w1 0 20)) (mean (Array.sub w2 0 20)) in
      let late =
        jain
          (mean (Array.sub w1 (n - 100) 100))
          (mean (Array.sub w2 (n - 100) 100))
      in
      if late < 0.8 then
        QCheck.Test.fail_reportf
          "late fairness %.3f < 0.8 (early %.3f, a=%g b=%g stagger=%d)" late
          early a b stagger;
      if early < 0.8 && late <= early then
        QCheck.Test.fail_reportf
          "unfair start never converged: early %.3f -> late %.3f (a=%g b=%g \
           stagger=%d)"
          early late a b stagger;
      true)

let suite =
  ( "cc differential",
    List.map
      (fun p -> QCheck_alcotest.to_alcotest (prop_stepwise_equivalence p))
      equivalence_pairs
    @ [
        Alcotest.test_case "Reno fast-recovery pins via Cc" `Quick
          test_reno_pins_via_cc;
        Alcotest.test_case "scenario: ?algorithm vs ?cc identical" `Quick
          test_scenario_algorithm_vs_cc;
        QCheck_alcotest.to_alcotest prop_aimd_converges;
      ] )
