open Engine
open Net

(* 50 Kbps link: 500-byte packets serialize in 80 ms, 50-byte in 8 ms. *)
let make_link ?(bandwidth = 50_000.) ?(prop_delay = 0.01) ~buffer sim =
  Link.create sim ~id:0 ~name:"test" ~src:0 ~dst:1 ~bandwidth ~prop_delay
    ~buffer

let packet ?(id = 0) ?(conn = 1) ?(kind = Packet.Data) ?(seq = 0) ?(size = 500)
    () =
  {
    Packet.id;
    conn;
    kind;
    seq;
    size;
    src = 0;
    dst = 1;
    born = 0.;
    retransmit = false;
  }

let test_delivery_timing () =
  let sim = Sim.create () in
  let link = make_link ~prop_delay:0.01 ~buffer:None sim in
  let arrival = ref None in
  Link.set_deliver link (fun _ -> arrival := Some (Sim.now sim));
  ignore (Link.send link (packet ()) : [ `Ok | `Dropped ]);
  Sim.run sim ~until:1.;
  (* tx 0.08 + prop 0.01 *)
  Alcotest.(check (option (float 1e-9))) "arrival time" (Some 0.09) !arrival

let test_serialization () =
  (* Two back-to-back packets: second arrives one tx time after the first. *)
  let sim = Sim.create () in
  let link = make_link ~prop_delay:0. ~buffer:None sim in
  let arrivals = ref [] in
  Link.set_deliver link (fun p -> arrivals := (p.Packet.seq, Sim.now sim) :: !arrivals);
  ignore (Link.send link (packet ~seq:0 ()) : [ `Ok | `Dropped ]);
  ignore (Link.send link (packet ~seq:1 ()) : [ `Ok | `Dropped ]);
  Sim.run sim ~until:1.;
  Alcotest.(check (list (pair int (float 1e-9))))
    "arrivals"
    [ (0, 0.08); (1, 0.16) ]
    (List.rev !arrivals)

let test_mixed_sizes () =
  (* A data packet followed by an ACK: the ACK leaves 8 ms later. *)
  let sim = Sim.create () in
  let link = make_link ~prop_delay:0. ~buffer:None sim in
  let arrivals = ref [] in
  Link.set_deliver link (fun p -> arrivals := (p.Packet.kind, Sim.now sim) :: !arrivals);
  ignore (Link.send link (packet ~kind:Packet.Data ~size:500 ()) : [ `Ok | `Dropped ]);
  ignore (Link.send link (packet ~kind:Packet.Ack ~size:50 ()) : [ `Ok | `Dropped ]);
  Sim.run sim ~until:1.;
  match List.rev !arrivals with
  | [ (Packet.Data, t1); (Packet.Ack, t2) ] ->
    Alcotest.(check (float 1e-9)) "data at" 0.08 t1;
    Alcotest.(check (float 1e-9)) "ack 8ms later" 0.088 t2
  | _ -> Alcotest.fail "expected two arrivals"

let test_drop_tail_capacity () =
  (* Buffer of 2 includes the packet in service (paper: C = B + 2P). *)
  let sim = Sim.create () in
  let link = make_link ~prop_delay:0. ~buffer:(Some 2) sim in
  Link.set_deliver link (fun _ -> ());
  Alcotest.(check bool) "1 ok" true (Link.send link (packet ~seq:0 ()) = `Ok);
  Alcotest.(check bool) "2 ok" true (Link.send link (packet ~seq:1 ()) = `Ok);
  Alcotest.(check bool) "3 dropped" true
    (Link.send link (packet ~seq:2 ()) = `Dropped);
  Alcotest.(check int) "queue includes in-service" 2 (Link.queue_length link);
  Alcotest.(check int) "drop counter" 1 (Link.total_drops link);
  Sim.run sim ~until:1.;
  Alcotest.(check int) "drained" 0 (Link.queue_length link)

let test_busy_time () =
  let sim = Sim.create () in
  let link = make_link ~prop_delay:0. ~buffer:None sim in
  Link.set_deliver link (fun _ -> ());
  ignore (Link.send link (packet ()) : [ `Ok | `Dropped ]);
  ignore (Link.send link (packet ()) : [ `Ok | `Dropped ]);
  Sim.run sim ~until:10.;
  Alcotest.(check (float 1e-9)) "busy two tx times" 0.16
    (Link.busy_time link ~now:10.);
  (* a third packet: busy time is measured mid-transmission too *)
  ignore (Link.send link (packet ()) : [ `Ok | `Dropped ]);
  Sim.run sim ~until:10.04;
  Alcotest.(check (float 1e-9)) "mid-transmission" 0.2
    (Link.busy_time link ~now:10.04)

let test_counters_by_kind () =
  let sim = Sim.create () in
  let link = make_link ~prop_delay:0. ~buffer:(Some 1) sim in
  Link.set_deliver link (fun _ -> ());
  ignore (Link.send link (packet ~kind:Packet.Data ()) : [ `Ok | `Dropped ]);
  ignore (Link.send link (packet ~kind:Packet.Ack ~size:50 ()) : [ `Ok | `Dropped ]);
  let c = Link.counters link in
  Alcotest.(check int) "data enq" 1 c.Link.enq_data;
  Alcotest.(check int) "ack dropped" 1 c.Link.drop_ack;
  Sim.run sim ~until:1.;
  Alcotest.(check int) "data departed" 1 c.Link.dep_data;
  Alcotest.(check int) "bytes" 500 c.Link.dep_bytes

let test_hooks () =
  let sim = Sim.create () in
  let link = make_link ~prop_delay:0. ~buffer:(Some 1) sim in
  Link.set_deliver link (fun _ -> ());
  let enq = ref [] and dep = ref [] and dropped = ref 0 in
  Link.on_enqueue link (fun _t _p qlen -> enq := qlen :: !enq);
  Link.on_depart link (fun _t _p qlen -> dep := qlen :: !dep);
  Link.on_drop link (fun _t _p -> incr dropped);
  ignore (Link.send link (packet ()) : [ `Ok | `Dropped ]);
  ignore (Link.send link (packet ()) : [ `Ok | `Dropped ]);
  Sim.run sim ~until:1.;
  Alcotest.(check (list int)) "enqueue qlens" [ 1 ] (List.rev !enq);
  Alcotest.(check (list int)) "depart qlens" [ 0 ] (List.rev !dep);
  Alcotest.(check int) "drop hook" 1 !dropped

let test_contents () =
  let sim = Sim.create () in
  let link = make_link ~prop_delay:0. ~buffer:None sim in
  Link.set_deliver link (fun _ -> ());
  ignore (Link.send link (packet ~seq:7 ()) : [ `Ok | `Dropped ]);
  ignore (Link.send link (packet ~seq:8 ()) : [ `Ok | `Dropped ]);
  let seqs = List.map (fun p -> p.Packet.seq) (Link.contents link) in
  Alcotest.(check (list int)) "head first" [ 7; 8 ] seqs

let test_tx_time () =
  let sim = Sim.create () in
  let link = make_link sim ~buffer:None in
  Alcotest.(check (float 1e-12)) "data" 0.08 (Link.tx_time link ~bytes:500);
  Alcotest.(check (float 1e-12)) "ack" 0.008 (Link.tx_time link ~bytes:50)

let test_create_validation () =
  let sim = Sim.create () in
  let check_bad msg buffer =
    Alcotest.check_raises msg (Invalid_argument msg) (fun () ->
        ignore (make_link sim ~buffer : Link.t))
  in
  check_bad "Link.create: buffer must be positive" (Some 0);
  check_bad "Link.create: buffer must be positive" (Some (-3));
  (* A positive or infinite buffer is fine. *)
  ignore (make_link sim ~buffer:(Some 1) : Link.t);
  ignore (make_link sim ~buffer:None : Link.t)

let prop_conservation =
  (* enqueued = departed + still queued, for any arrival pattern *)
  QCheck.Test.make ~name:"link packet conservation" ~count:100
    QCheck.(list (int_range 0 80))
    (fun delays_ms ->
      let sim = Sim.create () in
      let link = make_link ~prop_delay:0.001 ~buffer:(Some 5) sim in
      let delivered = ref 0 in
      Link.set_deliver link (fun _ -> incr delivered);
      List.iteri
        (fun i ms ->
          ignore
            (Sim.schedule sim ~delay:(float_of_int (ms * i) /. 1000.) (fun () ->
                 ignore (Link.send link (packet ~seq:i ()) : [ `Ok | `Dropped ]))
              : Sim.handle))
        delays_ms;
      Sim.run_to_completion sim;
      let c = Link.counters link in
      c.Link.enq_data = c.Link.dep_data
      && !delivered = c.Link.dep_data
      && c.Link.enq_data + c.Link.drop_data = List.length delays_ms
      && Link.queue_length link = 0)

let suite =
  ( "link",
    [
      Alcotest.test_case "delivery timing" `Quick test_delivery_timing;
      Alcotest.test_case "serialization" `Quick test_serialization;
      Alcotest.test_case "mixed sizes" `Quick test_mixed_sizes;
      Alcotest.test_case "drop-tail capacity" `Quick test_drop_tail_capacity;
      Alcotest.test_case "busy time" `Quick test_busy_time;
      Alcotest.test_case "counters by kind" `Quick test_counters_by_kind;
      Alcotest.test_case "hooks" `Quick test_hooks;
      Alcotest.test_case "contents" `Quick test_contents;
      Alcotest.test_case "tx time" `Quick test_tx_time;
      Alcotest.test_case "create validation" `Quick test_create_validation;
      QCheck_alcotest.to_alcotest prop_conservation;
    ] )
