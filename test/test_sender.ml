open Engine
open Net
open Tcp

(* Drive a sender directly: capture its data packets at the destination
   host and inject hand-crafted ACKs. *)
let harness ?(rto_params = Rto.default_params) () =
  let sim = Sim.create () in
  let net = Network.create sim in
  let sw = Network.add_switch net ~name:"sw" in
  let h1 = Network.add_host net ~name:"h1" ~proc_delay:0. in
  let h2 = Network.add_host net ~name:"h2" ~proc_delay:0. in
  ignore
    (Network.add_duplex net ~src:h1 ~dst:sw ~bandwidth:1e9 ~prop_delay:1e-6
       ~buffer:None
      : Link.t * Link.t);
  ignore
    (Network.add_duplex net ~src:h2 ~dst:sw ~bandwidth:1e9 ~prop_delay:1e-6
       ~buffer:None
      : Link.t * Link.t);
  Routing.compute net;
  let config = Config.make ~conn:1 ~src_host:h1 ~dst_host:h2 ~rto_params () in
  let sender = Sender.create net config in
  let received = ref [] in
  Network.register_endpoint net ~host:h2 ~conn:1 (fun p ->
      received := (p.Packet.seq, p.Packet.retransmit) :: !received);
  let flush () = Sim.run sim ~until:(Sim.now sim +. 0.01) in
  let ack ackno =
    Sender.on_ack sender
      {
        Packet.id = 0;
        conn = 1;
        kind = Packet.Ack;
        seq = ackno;
        size = 50;
        src = h2;
        dst = h1;
        born = Sim.now sim;
        retransmit = false;
      };
    flush ()
  in
  (sim, sender, ack, flush, received)

(* [received] is newest-first; rev_map restores arrival order. *)
let seqs received = List.rev_map fst !received

let test_initial_window () =
  let _, sender, _, flush, received = harness () in
  Sender.start sender;
  flush ();
  Alcotest.(check (list int)) "slow start sends one packet" [ 0 ] (seqs received);
  Alcotest.(check int) "snd_nxt" 1 (Sender.snd_nxt sender);
  Alcotest.(check int) "outstanding" 1 (Sender.outstanding sender)

let test_slow_start_growth () =
  let _, sender, ack, flush, received = harness () in
  Sender.start sender;
  flush ();
  ack 1;
  (* cwnd 2: sends 1, 2 *)
  Alcotest.(check (list int)) "two new packets" [ 0; 1; 2 ] (seqs received);
  ack 2;
  ack 3;
  (* each ack grows cwnd by 1 and slides the window *)
  Alcotest.(check int) "cwnd" 4 (Tcp.Cc.window (Sender.cc sender));
  Alcotest.(check int) "outstanding equals window" 4 (Sender.outstanding sender)

let test_fast_retransmit_at_three_dups () =
  let _, sender, ack, flush, received = harness () in
  Sender.start sender;
  flush ();
  (* grow to a window of several packets *)
  ack 1;
  ack 2;
  ack 3;
  received := [];
  ack 3;
  (* dup 1 *)
  ack 3;
  (* dup 2 *)
  Alcotest.(check (list int)) "no retransmit below threshold" [] (seqs received);
  ack 3;
  (* dup 3: fast retransmit of exactly the missing packet *)
  (match !received with
   | [ (seq, retransmit) ] ->
     Alcotest.(check int) "retransmits the hole" 3 seq;
     Alcotest.(check bool) "marked retransmission" true retransmit
   | other ->
     Alcotest.failf "expected exactly one retransmission, got %d"
       (List.length other));
  Alcotest.(check int) "fast retransmit counted" 1
    (Sender.fast_retransmits sender);
  Alcotest.(check (float 0.)) "cwnd collapsed" 1. (Sender.cwnd sender);
  received := [];
  ack 3;
  (* a 4th duplicate must NOT trigger another retransmission *)
  Alcotest.(check (list int)) "no livelock retrigger" [] (seqs received)

let test_recovery_after_fast_retransmit () =
  let _, sender, ack, flush, received = harness () in
  Sender.start sender;
  flush ();
  ack 1;
  ack 2;
  ack 3;
  (* window is 4: packets 3,4,5,6 outstanding *)
  ack 3;
  ack 3;
  ack 3;
  received := [];
  (* the retransmission fills the hole; receiver had 4,5,6 buffered *)
  ack 7;
  (* snd_nxt must jump past everything already sent; only new data goes out *)
  Alcotest.(check bool) "only new sequence numbers" true
    (List.for_all (fun s -> s >= 7) (seqs received));
  Alcotest.(check int) "snd_una advanced" 7 (Sender.snd_una sender)

let test_timeout_go_back_n () =
  let sim, sender, _, flush, received = harness () in
  Sender.start sender;
  flush ();
  received := [];
  (* No ACK ever comes: the retransmission timer fires and resends seq 0. *)
  Sim.run sim ~until:10.;
  Alcotest.(check bool) "timeout occurred" true (Sender.timeouts sender >= 1);
  Alcotest.(check bool) "seq 0 retransmitted" true
    (List.exists (fun (s, r) -> s = 0 && r) !received)

let test_rto_backoff_on_repeated_timeouts () =
  let sim, sender, _, flush, _ = harness () in
  Sender.start sender;
  flush ();
  (* run long enough for several timeouts *)
  Sim.run sim ~until:30.;
  Alcotest.(check bool) "several timeouts" true (Sender.timeouts sender >= 2);
  Alcotest.(check bool) "backoff grew" true
    (Rto.backoff_count (Sender.rto sender) >= 2)

let test_karn_no_sample_across_retransmit () =
  let sim, sender, ack, flush, _ = harness () in
  Sender.start sender;
  flush ();
  (* force a timeout, then ack the retransmission quickly: no RTT sample
     may be taken from it *)
  Sim.run sim ~until:4.;
  Alcotest.(check bool) "timed out" true (Sender.timeouts sender >= 1);
  let samples_before = Rto.samples (Sender.rto sender) in
  ack 1;
  Alcotest.(check int) "no sample from retransmitted segment" samples_before
    (Rto.samples (Sender.rto sender))

let test_rtt_sampling_on_clean_exchange () =
  let _, sender, ack, flush, _ = harness () in
  Sender.start sender;
  flush ();
  ack 1;
  Alcotest.(check bool) "first clean ACK gives a sample" true
    (Rto.samples (Sender.rto sender) >= 1)

let test_stale_ack_ignored () =
  let _, sender, ack, flush, _ = harness () in
  Sender.start sender;
  flush ();
  ack 1;
  ack 2;
  let una = Sender.snd_una sender in
  ack 1;
  (* stale: below snd_una *)
  Alcotest.(check int) "stale ack ignored" una (Sender.snd_una sender)

let test_cwnd_hook_fires () =
  let _, sender, ack, flush, _ = harness () in
  let events = ref 0 in
  Sender.on_cwnd sender (fun _ ~cwnd:_ ~ssthresh:_ -> incr events);
  Sender.start sender;
  flush ();
  ack 1;
  ack 2;
  Alcotest.(check int) "one event per window change" 2 !events

let test_loss_hook_reason () =
  let _, sender, ack, flush, _ = harness () in
  let reasons = ref [] in
  Sender.on_loss sender (fun _ reason -> reasons := reason :: !reasons);
  Sender.start sender;
  flush ();
  ack 1;
  ack 2;
  ack 3;
  ack 3;
  ack 3;
  ack 3;
  Alcotest.(check bool) "dup-ack loss reported" true
    (List.mem Sender.Dup_ack !reasons)

let prop_adversarial_acks =
  (* Any ACK sequence — stale, duplicate, far-future — must leave the
     sender's invariants intact. *)
  QCheck.Test.make ~name:"sender survives adversarial ACK sequences" ~count:100
    QCheck.(list (int_range 0 60))
    (fun acks ->
      let _, sender, ack, flush, _ = harness () in
      Sender.start sender;
      flush ();
      List.iter ack acks;
      Sender.snd_una sender <= Sender.snd_nxt sender
      && Sender.outstanding sender >= 0
      && Sender.cwnd sender >= 1.
      && Sender.ssthresh sender >= 2.)

let suite =
  ( "sender",
    [
      Alcotest.test_case "initial window" `Quick test_initial_window;
      Alcotest.test_case "slow start growth" `Quick test_slow_start_growth;
      Alcotest.test_case "fast retransmit at 3 dups" `Quick
        test_fast_retransmit_at_three_dups;
      Alcotest.test_case "recovery after fast retransmit" `Quick
        test_recovery_after_fast_retransmit;
      Alcotest.test_case "timeout go-back-N" `Quick test_timeout_go_back_n;
      Alcotest.test_case "rto backoff" `Quick test_rto_backoff_on_repeated_timeouts;
      Alcotest.test_case "karn rule" `Quick test_karn_no_sample_across_retransmit;
      Alcotest.test_case "rtt sampling" `Quick test_rtt_sampling_on_clean_exchange;
      Alcotest.test_case "stale ack ignored" `Quick test_stale_ack_ignored;
      Alcotest.test_case "cwnd hook" `Quick test_cwnd_hook_fires;
      Alcotest.test_case "loss hook reason" `Quick test_loss_hook_reason;
      QCheck_alcotest.to_alcotest prop_adversarial_acks;
    ] )
