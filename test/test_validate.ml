(* The invariant checkers themselves are tested two ways: each checker is
   fed a synthetic *violating* event stream through its [observe_*]
   functions (a checker that cannot fail would prove nothing), and the
   full harness is attached to real runs of the examples/ scenario set,
   which must come out clean. *)

let pkt ?(kind = Net.Packet.Data) ?(retransmit = false) ?(conn = 1) ~id ~seq ()
    =
  {
    Net.Packet.id;
    conn;
    kind;
    seq;
    size = 1024;
    src = 0;
    dst = 3;
    born = 0.;
    retransmit;
  }

let check_total msg expected report =
  Alcotest.(check int) msg expected (Validate.Report.total report)

let first_detail report =
  match Validate.Report.violations report with
  | v :: _ -> v.Validate.Report.detail
  | [] -> Alcotest.fail "expected at least one violation"

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let check_detail msg needle report =
  let detail = first_detail report in
  Alcotest.(check bool)
    (Printf.sprintf "%s (got %S)" msg detail)
    true
    (contains ~needle detail)

(* --- Report ----------------------------------------------------------- *)

let test_report_cap () =
  let r = Validate.Report.create ~max_kept:2 () in
  Alcotest.(check bool) "fresh is clean" true (Validate.Report.is_clean r);
  for i = 1 to 5 do
    Validate.Report.add r ~time:(float_of_int i) ~checker:"c" ~subject:"s"
      ~detail:(Printf.sprintf "v%d" i)
  done;
  check_total "total is exact beyond the cap" 5 r;
  Alcotest.(check int) "kept is capped" 2
    (List.length (Validate.Report.violations r));
  Alcotest.(check string) "kept in arrival order" "v1" (first_detail r);
  Alcotest.(check bool) "dirty" false (Validate.Report.is_clean r);
  Alcotest.(check bool) "summary mentions count" true
    (contains ~needle:"5 violations" (Validate.Report.summary r))

let test_report_rejects_bad_cap () =
  Alcotest.check_raises "max_kept 0"
    (Invalid_argument "Report.create: max_kept must be >= 1") (fun () ->
      ignore (Validate.Report.create ~max_kept:0 () : Validate.Report.t))

(* --- Clock ------------------------------------------------------------ *)

let test_clock_backwards () =
  let r = Validate.Report.create () in
  let c = Validate.Clock.create r in
  Validate.Clock.observe c 1.0;
  Validate.Clock.observe c 2.0;
  check_total "forward clock is clean" 0 r;
  Validate.Clock.observe c 1.5;
  check_total "backwards clock caught" 1 r;
  check_detail "names the regression" "backwards" r;
  Validate.Clock.observe c Float.nan;
  check_total "NaN clock caught" 2 r

let test_clock_attached () =
  (* Through the real Sim hook: a normal run stays clean. *)
  let r = Validate.Report.create () in
  let sim = Engine.Sim.create () in
  let (_ : Validate.Clock.t) = Validate.Clock.attach r sim in
  for i = 1 to 10 do
    ignore
      (Engine.Sim.schedule sim ~delay:(float_of_int i) (fun () -> ())
        : Engine.Sim.handle)
  done;
  Engine.Sim.run_to_completion sim;
  check_total "real event stream is clean" 0 r

(* --- Conservation ----------------------------------------------------- *)

let test_conservation_clean () =
  let r = Validate.Report.create () in
  let c = Validate.Conservation.create r in
  Validate.Conservation.observe_inject c ~time:0. (pkt ~id:1 ~seq:0 ());
  Validate.Conservation.observe_inject c ~time:0. (pkt ~id:2 ~seq:1 ());
  Validate.Conservation.observe_inject c ~time:0. (pkt ~id:3 ~seq:2 ());
  Validate.Conservation.observe_deliver c ~time:1. (pkt ~id:1 ~seq:0 ());
  Validate.Conservation.observe_drop c ~time:1. (pkt ~id:2 ~seq:1 ());
  Validate.Conservation.finalize c ~time:2. ~links:[];
  check_total "inject/deliver/drop is clean" 0 r;
  Alcotest.(check int) "injected" 3 (Validate.Conservation.injected c);
  Alcotest.(check int) "delivered" 1 (Validate.Conservation.delivered c);
  Alcotest.(check int) "dropped" 1 (Validate.Conservation.dropped c);
  Alcotest.(check int) "in flight" 1 (Validate.Conservation.in_flight c)

let test_conservation_violations () =
  let r = Validate.Report.create () in
  let c = Validate.Conservation.create r in
  let p = pkt ~id:7 ~seq:0 () in
  Validate.Conservation.observe_inject c ~time:0. p;
  Validate.Conservation.observe_inject c ~time:0. p;
  check_total "duplicate injection" 1 r;
  check_detail "names duplication" "injected twice" r;
  Validate.Conservation.observe_deliver c ~time:1. p;
  Validate.Conservation.observe_deliver c ~time:1. p;
  check_total "duplicate delivery" 2 r;
  Validate.Conservation.observe_drop c ~time:2. p;
  check_total "drop after delivery" 3 r;
  Validate.Conservation.observe_drop c ~time:3. (pkt ~id:99 ~seq:4 ());
  check_total "drop of a never-injected packet" 4 r;
  Validate.Conservation.observe_deliver c ~time:4. (pkt ~id:98 ~seq:4 ());
  check_total "delivery of a never-injected packet" 5 r

let test_conservation_drop_then_deliver () =
  (* A packet that was dropped must never reach an endpoint. *)
  let r = Validate.Report.create () in
  let c = Validate.Conservation.create r in
  let p = pkt ~id:11 ~seq:3 () in
  Validate.Conservation.observe_inject c ~time:0. p;
  Validate.Conservation.observe_drop c ~time:1. p;
  Validate.Conservation.observe_deliver c ~time:2. p;
  check_total "delivered after drop" 1 r;
  check_detail "names the drop" "after being dropped" r;
  Validate.Conservation.observe_drop c ~time:3. p;
  check_total "dropped twice" 2 r

(* --- FIFO order / occupancy ------------------------------------------- *)

let test_fifo_reorder () =
  let r = Validate.Report.create () in
  let f = Validate.Fifo_order.create r ~subject:"link test" ~capacity:(Some 5) in
  Validate.Fifo_order.observe_enqueue f ~time:0. (pkt ~id:1 ~seq:0 ()) ~qlen:1;
  Validate.Fifo_order.observe_enqueue f ~time:0. (pkt ~id:2 ~seq:1 ()) ~qlen:2;
  Validate.Fifo_order.observe_enqueue f ~time:0. (pkt ~id:3 ~seq:2 ()) ~qlen:3;
  Validate.Fifo_order.observe_depart f ~time:1. (pkt ~id:2 ~seq:1 ()) ~qlen:2;
  check_total "out-of-order departure caught" 1 r;
  check_detail "names the order" "FIFO order violated" r;
  (* The model resynchronized past the overtaken packet: the rest of the
     stream is judged on its own. *)
  Validate.Fifo_order.observe_depart f ~time:2. (pkt ~id:3 ~seq:2 ()) ~qlen:1;
  Validate.Fifo_order.finalize f ~time:3. ~occupancy:0;
  check_total "one reordering reported once" 1 r

let test_fifo_occupancy_bounds () =
  let r = Validate.Report.create () in
  let f = Validate.Fifo_order.create r ~subject:"link test" ~capacity:(Some 3) in
  Validate.Fifo_order.observe_enqueue f ~time:0. (pkt ~id:1 ~seq:0 ()) ~qlen:7;
  check_total "occupancy above buffer caught" 1 r;
  check_detail "names the bound" "exceeds configured buffer" r;
  Validate.Fifo_order.observe_depart f ~time:1. (pkt ~id:1 ~seq:0 ())
    ~qlen:(-1);
  check_total "negative occupancy caught" 2 r

let test_fifo_drop_rules () =
  let r = Validate.Report.create () in
  let f = Validate.Fifo_order.create r ~subject:"link test" ~capacity:(Some 2) in
  Validate.Fifo_order.observe_enqueue f ~time:0. (pkt ~id:1 ~seq:0 ()) ~qlen:1;
  (* Dropping with a non-full buffer is not drop-tail behaviour. *)
  Validate.Fifo_order.observe_drop f ~time:1. (pkt ~id:9 ~seq:5 ());
  check_total "drop below capacity caught" 1 r;
  check_detail "names the occupancy" "tail-dropped with buffer at 1/2" r;
  (* Discarding an already-queued packet is eviction, not drop-tail. *)
  Validate.Fifo_order.observe_enqueue f ~time:2. (pkt ~id:2 ~seq:1 ()) ~qlen:2;
  Validate.Fifo_order.observe_drop f ~time:3. (pkt ~id:1 ~seq:0 ());
  check_total "eviction caught" 2 r;
  (* An infinite buffer never drops. *)
  let inf = Validate.Fifo_order.create r ~subject:"link inf" ~capacity:None in
  Validate.Fifo_order.observe_drop inf ~time:4. (pkt ~id:3 ~seq:2 ());
  check_total "infinite-buffer drop caught" 3 r

let test_fifo_finalize_mismatch () =
  let r = Validate.Report.create () in
  let f = Validate.Fifo_order.create r ~subject:"link test" ~capacity:(Some 5) in
  Validate.Fifo_order.observe_enqueue f ~time:0. (pkt ~id:1 ~seq:0 ()) ~qlen:1;
  Validate.Fifo_order.finalize f ~time:1. ~occupancy:0;
  check_total "end-of-run occupancy mismatch caught" 1 r

(* --- Monotone sequence discipline ------------------------------------- *)

let ack ~seq = pkt ~kind:Net.Packet.Ack ~id:0 ~seq

let test_monotone_ack_regression () =
  let r = Validate.Report.create () in
  let m = Validate.Monotone.create r in
  Validate.Monotone.observe_inject m ~time:0. (ack ~seq:5 ());
  Validate.Monotone.observe_inject m ~time:1. (ack ~seq:5 ());
  check_total "repeated cumulative ACK is legal" 0 r;
  Validate.Monotone.observe_inject m ~time:2. (ack ~seq:3 ());
  check_total "ACK regression caught" 1 r;
  check_detail "names the regression" "ACK went backwards" r

let test_monotone_data_contiguity () =
  let r = Validate.Report.create () in
  let m = Validate.Monotone.create r in
  Validate.Monotone.observe_inject m ~time:0. (pkt ~id:1 ~seq:0 ());
  Validate.Monotone.observe_inject m ~time:1. (pkt ~id:2 ~seq:1 ());
  check_total "contiguous new data is clean" 0 r;
  Validate.Monotone.observe_inject m ~time:2. (pkt ~id:3 ~seq:5 ());
  check_total "sequence gap caught" 1 r;
  check_detail "names the gap" "not contiguous" r;
  (* Resynchronized: the stream continues from the gap without
     re-reporting every subsequent packet. *)
  Validate.Monotone.observe_inject m ~time:3. (pkt ~id:4 ~seq:6 ());
  check_total "one gap reported once" 1 r

let test_monotone_retransmit_bound () =
  let r = Validate.Report.create () in
  let m = Validate.Monotone.create r in
  Validate.Monotone.observe_inject m ~time:0. (pkt ~id:1 ~seq:0 ());
  Validate.Monotone.observe_inject m ~time:1. (pkt ~id:2 ~seq:1 ());
  Validate.Monotone.observe_inject m ~time:2.
    (pkt ~retransmit:true ~id:3 ~seq:0 ());
  check_total "legal retransmission is clean" 0 r;
  Validate.Monotone.observe_inject m ~time:3.
    (pkt ~retransmit:true ~id:4 ~seq:7 ());
  check_total "retransmit beyond highest sent caught" 1 r;
  check_detail "names the bound" "beyond highest sent" r

let test_monotone_tracks_delivered_acks () =
  let r = Validate.Report.create () in
  let m = Validate.Monotone.create r in
  Alcotest.(check int) "no ACK yet" 0
    (Validate.Monotone.max_ack_delivered m ~conn:1);
  Validate.Monotone.observe_deliver m ~time:0. (ack ~seq:4 ());
  Validate.Monotone.observe_deliver m ~time:1. (ack ~seq:2 ());
  Alcotest.(check int) "largest delivered ACK" 4
    (Validate.Monotone.max_ack_delivered m ~conn:1);
  check_total "delivery tracking adds no violations" 0 r

(* --- Tahoe window rules ------------------------------------------------ *)

let tahoe_checker r =
  Validate.Tahoe_rules.create r ~subject:"conn 1" ~maxwnd:20 ~modified_ca:false

let test_tahoe_clean_trajectory () =
  let r = Validate.Report.create () in
  let t = tahoe_checker r in
  (* Slow start: +1 per ACK up to ssthresh... *)
  Validate.Tahoe_rules.observe_cwnd t ~time:0. ~cwnd:8. ~ssthresh:10.;
  Validate.Tahoe_rules.observe_cwnd t ~time:1. ~cwnd:9. ~ssthresh:10.;
  Validate.Tahoe_rules.observe_cwnd t ~time:2. ~cwnd:10. ~ssthresh:10.;
  (* ...then congestion avoidance above ssthresh... *)
  Validate.Tahoe_rules.observe_cwnd t ~time:3. ~cwnd:10.1 ~ssthresh:10.;
  (* ...then a timeout resets to 1 with ssthresh = flight/2. *)
  Validate.Tahoe_rules.observe_loss t ~time:5. Tcp.Sender.Timeout;
  Validate.Tahoe_rules.observe_cwnd t ~time:5. ~cwnd:1. ~ssthresh:5.05;
  check_total "textbook Tahoe trajectory is clean" 0 r

let test_tahoe_slow_start_burst () =
  let r = Validate.Report.create () in
  let t = tahoe_checker r in
  Validate.Tahoe_rules.observe_cwnd t ~time:0. ~cwnd:2. ~ssthresh:10.;
  Validate.Tahoe_rules.observe_cwnd t ~time:1. ~cwnd:4. ~ssthresh:10.;
  check_total "slow-start growth above 1/ACK caught" 1 r;
  check_detail "names the limit" "limit is 1" r

let test_tahoe_ca_burst () =
  let r = Validate.Report.create () in
  let t = tahoe_checker r in
  Validate.Tahoe_rules.observe_cwnd t ~time:0. ~cwnd:10. ~ssthresh:5.;
  Validate.Tahoe_rules.observe_cwnd t ~time:1. ~cwnd:11. ~ssthresh:5.;
  check_total "congestion-avoidance growth above 1/⌊cwnd⌋ caught" 1 r;
  check_detail "names the limit" "limit is 1/10" r;
  (* The legal step is clean. *)
  Validate.Tahoe_rules.observe_cwnd t ~time:2. ~cwnd:(11. +. (1. /. 11.))
    ~ssthresh:5.;
  check_total "legal CA step" 1 r

let test_tahoe_missing_reset () =
  let r = Validate.Report.create () in
  let t = tahoe_checker r in
  Validate.Tahoe_rules.observe_cwnd t ~time:0. ~cwnd:8. ~ssthresh:4.;
  Validate.Tahoe_rules.observe_loss t ~time:1. Tcp.Sender.Timeout;
  Validate.Tahoe_rules.observe_cwnd t ~time:1. ~cwnd:8. ~ssthresh:4.;
  check_total "missing post-loss reset caught" 1 r;
  check_detail "names the reset" "must reset to 1" r

let test_tahoe_wrong_ssthresh () =
  let r = Validate.Report.create () in
  let t = tahoe_checker r in
  Validate.Tahoe_rules.observe_cwnd t ~time:0. ~cwnd:12. ~ssthresh:6.;
  Validate.Tahoe_rules.observe_loss t ~time:1. Tcp.Sender.Dup_ack;
  Validate.Tahoe_rules.observe_cwnd t ~time:1. ~cwnd:1. ~ssthresh:12.;
  check_total "wrong post-loss ssthresh caught" 1 r;
  check_detail "names flight/2" "flight/2" r

let test_tahoe_ssthresh_drift () =
  let r = Validate.Report.create () in
  let t = tahoe_checker r in
  Validate.Tahoe_rules.observe_cwnd t ~time:0. ~cwnd:10. ~ssthresh:5.;
  Validate.Tahoe_rules.observe_cwnd t ~time:1. ~cwnd:10.05 ~ssthresh:8.;
  check_total "ssthresh change without a loss caught" 1 r;
  check_detail "names the drift" "without a loss" r

let test_tahoe_window_bounds () =
  let r = Validate.Report.create () in
  let t = tahoe_checker r in
  Validate.Tahoe_rules.observe_cwnd t ~time:0. ~cwnd:25. ~ssthresh:10.;
  check_total "cwnd above maxwnd caught" 1 r;
  check_detail "names the advertised window" "above the advertised window" r;
  let t2 = tahoe_checker r in
  Validate.Tahoe_rules.observe_cwnd t2 ~time:1. ~cwnd:0.5 ~ssthresh:10.;
  check_total "cwnd below 1 caught" 2 r

let test_tahoe_shrink_without_loss () =
  let r = Validate.Report.create () in
  let t = tahoe_checker r in
  Validate.Tahoe_rules.observe_cwnd t ~time:0. ~cwnd:10. ~ssthresh:5.;
  Validate.Tahoe_rules.observe_cwnd t ~time:1. ~cwnd:9. ~ssthresh:5.;
  check_total "cwnd shrink without a loss caught" 1 r;
  check_detail "names the shrink" "shrank" r

(* --- Full harness over the examples/ scenario set ---------------------- *)

(* Each entry mirrors one of the shipped example programs / paper figures.
   With validation enabled in the scenario, every checker runs inside the
   simulation and the run must come out clean. *)
let example_scenarios () =
  let open Core.Scenario in
  [
    (* examples/quickstart.ml: one connection, tau = 1 s, buffer 20. *)
    make ~name:"quickstart" ~tau:1.0 ~buffer:(Some 20)
      ~conns:[ conn Forward ]
      ~duration:200. ~warmup:60. ~validate:true ();
    (* examples/two_way_dynamics.ml: bidirectional, short wire. *)
    make ~name:"two-way-short" ~tau:0.01 ~buffer:(Some 20)
      ~conns:(stagger ~step:2. [ conn Forward; conn Reverse ])
      ~duration:120. ~warmup:40. ~validate:true ();
    (* examples/two_way_dynamics.ml: bidirectional, long wire. *)
    make ~name:"two-way-long" ~tau:1.0 ~buffer:(Some 20)
      ~conns:(stagger ~step:2. [ conn Forward; conn Reverse ])
      ~duration:150. ~warmup:50. ~validate:true ();
    (* examples/ack_compression.ml territory: delayed ACKs both ways. *)
    make ~name:"delack" ~tau:0.1 ~buffer:(Some 15)
      ~conns:
        (stagger ~step:3.
           [ conn ~delayed_ack:true Forward; conn ~delayed_ack:true Reverse ])
      ~duration:120. ~warmup:40. ~validate:true ();
    (* examples/buffer_sizing.ml territory: infinite buffer. *)
    make ~name:"infinite-buffer" ~tau:0.1 ~buffer:None
      ~conns:[ conn ~maxwnd:30 Forward; conn ~maxwnd:25 Reverse ]
      ~duration:100. ~warmup:30. ~validate:true ();
    (* Alternative gateway disciplines (checker subset adapts). *)
    make ~name:"random-drop" ~tau:0.1 ~buffer:(Some 20)
      ~gateway:(Net.Discipline.Random_drop { seed = 42 })
      ~conns:(stagger ~step:2. [ conn Forward; conn Reverse ])
      ~duration:100. ~warmup:30. ~validate:true ();
    make ~name:"fair-queue" ~tau:0.1 ~buffer:(Some 20)
      ~gateway:Net.Discipline.Fair_queue
      ~conns:(stagger ~step:2. [ conn Forward; conn Reverse ])
      ~duration:100. ~warmup:30. ~validate:true ();
  ]

let test_examples_clean () =
  List.iter
    (fun scenario ->
      let r = Core.Runner.run scenario in
      match Core.Runner.validation_report r with
      | None -> Alcotest.fail "validation was enabled but produced no report"
      | Some report ->
        Alcotest.(check string)
          (Printf.sprintf "%s runs clean" scenario.Core.Scenario.name)
          "clean (0 violations)"
          (Validate.Report.summary report))
    (example_scenarios ())

let test_harness_cross_checks () =
  (* The harness's delivered-ACK view must agree exactly with each
     sender's own account of progress. *)
  let scenario =
    Core.Scenario.make ~name:"cross-check" ~tau:0.01 ~buffer:(Some 20)
      ~conns:
        (Core.Scenario.stagger ~step:2.
           Core.Scenario.[ conn Forward; conn Reverse ])
      ~duration:100. ~warmup:30. ~validate:true ()
  in
  let r = Core.Runner.run scenario in
  let h =
    match r.Core.Runner.validation with
    | Some h -> h
    | None -> Alcotest.fail "harness missing"
  in
  Array.iteri
    (fun i (_, conn) ->
      Alcotest.(check int)
        (Printf.sprintf "conn %d delivered = max ACK seen on the wire" (i + 1))
        (Tcp.Connection.delivered conn)
        (Validate.Harness.max_ack_delivered h ~conn:(i + 1)))
    r.Core.Runner.conns;
  (* And the conservation ledger must balance. *)
  let c = Validate.Harness.conservation h in
  Alcotest.(check int) "ledger balances"
    (Validate.Conservation.injected c)
    (Validate.Conservation.delivered c
    + Validate.Conservation.dropped c
    + Validate.Conservation.in_flight c)

let suite =
  ( "validate",
    [
      Alcotest.test_case "report cap and totals" `Quick test_report_cap;
      Alcotest.test_case "report rejects bad cap" `Quick
        test_report_rejects_bad_cap;
      Alcotest.test_case "clock backwards" `Quick test_clock_backwards;
      Alcotest.test_case "clock attached to sim" `Quick test_clock_attached;
      Alcotest.test_case "conservation clean" `Quick test_conservation_clean;
      Alcotest.test_case "conservation violations" `Quick
        test_conservation_violations;
      Alcotest.test_case "conservation drop then deliver" `Quick
        test_conservation_drop_then_deliver;
      Alcotest.test_case "fifo reorder" `Quick test_fifo_reorder;
      Alcotest.test_case "fifo occupancy bounds" `Quick
        test_fifo_occupancy_bounds;
      Alcotest.test_case "fifo drop rules" `Quick test_fifo_drop_rules;
      Alcotest.test_case "fifo finalize mismatch" `Quick
        test_fifo_finalize_mismatch;
      Alcotest.test_case "monotone ack regression" `Quick
        test_monotone_ack_regression;
      Alcotest.test_case "monotone data contiguity" `Quick
        test_monotone_data_contiguity;
      Alcotest.test_case "monotone retransmit bound" `Quick
        test_monotone_retransmit_bound;
      Alcotest.test_case "monotone delivered acks" `Quick
        test_monotone_tracks_delivered_acks;
      Alcotest.test_case "tahoe clean trajectory" `Quick
        test_tahoe_clean_trajectory;
      Alcotest.test_case "tahoe slow-start burst" `Quick
        test_tahoe_slow_start_burst;
      Alcotest.test_case "tahoe CA burst" `Quick test_tahoe_ca_burst;
      Alcotest.test_case "tahoe missing reset" `Quick test_tahoe_missing_reset;
      Alcotest.test_case "tahoe wrong ssthresh" `Quick test_tahoe_wrong_ssthresh;
      Alcotest.test_case "tahoe ssthresh drift" `Quick
        test_tahoe_ssthresh_drift;
      Alcotest.test_case "tahoe window bounds" `Quick test_tahoe_window_bounds;
      Alcotest.test_case "tahoe shrink" `Quick test_tahoe_shrink_without_loss;
      Alcotest.test_case "examples run clean" `Slow test_examples_clean;
      Alcotest.test_case "harness cross-checks" `Quick
        test_harness_cross_checks;
    ] )
