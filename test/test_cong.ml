open Tcp

let tahoe ?(modified_ca = true) ?(maxwnd = 1000) () =
  Cong.create ~algorithm:(Cong.Tahoe { modified_ca }) ~maxwnd

let test_initial_state () =
  let c = tahoe () in
  Alcotest.(check (float 0.)) "cwnd starts at 1" 1. (Cong.cwnd c);
  Alcotest.(check (float 0.)) "ssthresh starts at maxwnd" 1000. (Cong.ssthresh c);
  Alcotest.(check int) "wnd" 1 (Cong.wnd c);
  Alcotest.(check bool) "slow start" true (Cong.in_slow_start c)

let test_slow_start_exponential () =
  (* One ACK per outstanding packet: cwnd doubles per epoch. *)
  let c = tahoe () in
  let acks_per_epoch = ref 1 in
  for _epoch = 1 to 5 do
    for _ = 1 to !acks_per_epoch do Cong.on_ack c done;
    acks_per_epoch := Cong.wnd c
  done;
  Alcotest.(check int) "cwnd after 5 doubling epochs" 32 (Cong.wnd c)

let test_congestion_avoidance_modified () =
  (* Above ssthresh, floor(cwnd) grows by exactly one per window's worth
     of ACKs (the paper's modified increment). *)
  let c = tahoe ~modified_ca:true () in
  Cong.on_ack c;  (* 2 *)
  Cong.on_timeout c; (* ssthresh = 2, cwnd = 1 *)
  Cong.on_ack c;  (* slow start: 2 = ssthresh *)
  Alcotest.(check int) "at threshold" 2 (Cong.wnd c);
  (* now in CA: 2 ACKs (one window) must lift wnd to exactly 3 *)
  Cong.on_ack c;
  Cong.on_ack c;
  Alcotest.(check int) "one window of acks -> +1" 3 (Cong.wnd c);
  (* 3 more ACKs -> 4 *)
  Cong.on_ack c;
  Cong.on_ack c;
  Cong.on_ack c;
  Alcotest.(check int) "next window -> +1 again" 4 (Cong.wnd c)

let test_congestion_avoidance_unmodified () =
  (* The original increment 1/cwnd shows the anomaly: after one window of
     ACKs, floor(cwnd) may not have increased. *)
  let c = tahoe ~modified_ca:false () in
  Cong.on_ack c;
  Cong.on_timeout c;
  Cong.on_ack c;
  (* in CA at cwnd = 2.0; two ACKs of 1/cwnd each give < 3.0 *)
  Cong.on_ack c;
  Cong.on_ack c;
  Alcotest.(check bool) "still below 3" true (Cong.cwnd c < 3.);
  Alcotest.(check int) "floor still 2 (the anomaly)" 2 (Cong.wnd c)

let test_loss_halves () =
  let c = tahoe () in
  for _ = 1 to 39 do Cong.on_ack c done;
  (* cwnd = 40, slow start *)
  Alcotest.(check (float 1e-9)) "grown" 40. (Cong.cwnd c);
  Cong.on_timeout c;
  Alcotest.(check (float 1e-9)) "ssthresh = cwnd/2" 20. (Cong.ssthresh c);
  Alcotest.(check (float 1e-9)) "cwnd reset" 1. (Cong.cwnd c)

let test_double_loss_floor () =
  (* The paper's footnote 9: a second loss with cwnd still 1 drives
     ssthresh to its minimum of 2. *)
  let c = tahoe () in
  for _ = 1 to 30 do Cong.on_ack c done;
  Cong.on_timeout c;
  Cong.on_timeout c;
  Alcotest.(check (float 0.)) "ssthresh floored at 2" 2. (Cong.ssthresh c);
  Alcotest.(check (float 0.)) "cwnd 1" 1. (Cong.cwnd c)

let test_maxwnd_cap () =
  let c = tahoe ~maxwnd:8 () in
  for _ = 1 to 50 do Cong.on_ack c done;
  Alcotest.(check bool) "cwnd capped" true (Cong.cwnd c <= 8.);
  Alcotest.(check int) "wnd capped" 8 (Cong.wnd c)

let test_fixed_window () =
  let c = Cong.create ~algorithm:(Cong.Fixed 30) ~maxwnd:1000 in
  Alcotest.(check int) "fixed wnd" 30 (Cong.wnd c);
  Cong.on_ack c;
  Cong.on_timeout c;
  Alcotest.(check int) "immutable" 30 (Cong.wnd c)

let test_wnd_boundaries () =
  (* Pin the usable-window clamp at its edges. *)
  (* A fixed window larger than the advertised maximum must not overrun
     the receiver (this was once a real bug: Fixed ignored maxwnd). *)
  let c = Cong.create ~algorithm:(Cong.Fixed 50) ~maxwnd:10 in
  Alcotest.(check int) "fixed window clamped to maxwnd" 10 (Cong.wnd c);
  let c = Cong.create ~algorithm:(Cong.Fixed 1) ~maxwnd:2 in
  Alcotest.(check int) "fixed window below maxwnd untouched" 1 (Cong.wnd c);
  (* cwnd exactly at maxwnd: wnd is maxwnd itself, not maxwnd - 1. *)
  let c = tahoe ~maxwnd:8 () in
  for _ = 1 to 20 do Cong.on_ack c done;
  Alcotest.(check (float 0.)) "cwnd capped exactly" 8. (Cong.cwnd c);
  Alcotest.(check int) "wnd = maxwnd at the cap" 8 (Cong.wnd c);
  (* cwnd at its floor of 1: wnd never reports 0. *)
  let c = tahoe () in
  Cong.on_timeout c;
  Alcotest.(check (float 0.)) "cwnd floor" 1. (Cong.cwnd c);
  Alcotest.(check int) "wnd floor is 1" 1 (Cong.wnd c);
  (* fractional cwnd truncates: one CA step past an integer stays put *)
  let c = tahoe () in
  Cong.on_ack c;
  Cong.on_timeout c;
  Cong.on_ack c;  (* cwnd = 2 = ssthresh, CA from here *)
  Cong.on_ack c;  (* cwnd = 2.5 *)
  Alcotest.(check int) "floor of 2.5 is 2" 2 (Cong.wnd c)

let test_reset () =
  let c = tahoe () in
  for _ = 1 to 10 do Cong.on_ack c done;
  Cong.on_timeout c;
  Cong.reset c;
  Alcotest.(check (float 0.)) "cwnd back to 1" 1. (Cong.cwnd c);
  Alcotest.(check (float 0.)) "ssthresh back to maxwnd" 1000. (Cong.ssthresh c)

let test_bad_args () =
  let raised f = try ignore (f () : Cong.t); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "maxwnd < 2" true
    (raised (fun () -> Cong.create ~algorithm:(Cong.Fixed 1) ~maxwnd:1));
  Alcotest.(check bool) "fixed window < 1" true
    (raised (fun () -> Cong.create ~algorithm:(Cong.Fixed 0) ~maxwnd:10))

let prop_acceleration =
  (* Paper 2.1: with the modified algorithm, in congestion avoidance
     floor(cwnd) increases by exactly 1 per epoch, for any starting
     ssthresh. *)
  QCheck.Test.make ~name:"CA acceleration is 1 per epoch" ~count:100
    QCheck.(int_range 2 40)
    (fun start ->
      let c = Cong.create ~algorithm:(Cong.Tahoe { modified_ca = true })
          ~maxwnd:1000 in
      (* climb to `start` in slow start, then force CA via a loss at 2*start *)
      for _ = 1 to (2 * start) - 1 do Cong.on_ack c done;
      Cong.on_timeout c;
      (* slow start to ssthresh = start *)
      while Cong.in_slow_start c do Cong.on_ack c done;
      let w0 = Cong.wnd c in
      for _ = 1 to w0 do Cong.on_ack c done;
      Cong.wnd c = w0 + 1)

let prop_loss_never_below_two =
  QCheck.Test.make ~name:"ssthresh never below 2" ~count:100
    QCheck.(list bool)
    (fun choices ->
      let c = Cong.create ~algorithm:(Cong.Tahoe { modified_ca = true })
          ~maxwnd:1000 in
      List.iter (fun ack -> if ack then Cong.on_ack c else Cong.on_timeout c) choices;
      Cong.ssthresh c >= 2.)

let suite =
  ( "cong",
    [
      Alcotest.test_case "initial state" `Quick test_initial_state;
      Alcotest.test_case "slow start doubling" `Quick test_slow_start_exponential;
      Alcotest.test_case "CA modified increment" `Quick
        test_congestion_avoidance_modified;
      Alcotest.test_case "CA original anomaly" `Quick
        test_congestion_avoidance_unmodified;
      Alcotest.test_case "loss halves window" `Quick test_loss_halves;
      Alcotest.test_case "double loss floors ssthresh" `Quick
        test_double_loss_floor;
      Alcotest.test_case "maxwnd cap" `Quick test_maxwnd_cap;
      Alcotest.test_case "fixed window" `Quick test_fixed_window;
      Alcotest.test_case "wnd boundaries" `Quick test_wnd_boundaries;
      Alcotest.test_case "reset" `Quick test_reset;
      Alcotest.test_case "bad args" `Quick test_bad_args;
      QCheck_alcotest.to_alcotest prop_acceleration;
      QCheck_alcotest.to_alcotest prop_loss_never_below_two;
    ] )
