(* The dumbbell runner end-to-end, on short horizons. *)

let short ?(tau = 0.01) ?(buffer = Some 20) conns =
  Core.Scenario.make ~name:"runner-test" ~tau ~buffer ~conns ~duration:60.
    ~warmup:20. ()

let test_single_connection_metrics () =
  let r = Core.Runner.run (short [ Core.Scenario.conn Core.Scenario.Forward ]) in
  Alcotest.(check bool) "utilization sane" true
    (r.util_fwd > 0.5 && r.util_fwd <= 1.0);
  Alcotest.(check bool) "reverse carries only acks" true (r.util_bwd < 0.2);
  Alcotest.(check bool) "goodput positive" true (Core.Runner.goodput r 0 > 5.);
  Alcotest.(check int) "one cwnd trace" 1 (Array.length r.cwnds);
  Alcotest.(check (float 0.)) "window start" 20. r.t0;
  Alcotest.(check (float 0.)) "window end" 60. r.t1

let test_direction_wiring () =
  let r =
    Core.Runner.run
      (short
         [
           Core.Scenario.conn Core.Scenario.Forward;
           Core.Scenario.conn ~start_time:1. Core.Scenario.Reverse;
         ])
  in
  let spec1, c1 = r.conns.(0) in
  let spec2, c2 = r.conns.(1) in
  Alcotest.(check bool) "spec order kept" true
    (spec1.Core.Scenario.dir = Core.Scenario.Forward
    && spec2.Core.Scenario.dir = Core.Scenario.Reverse);
  let cfg1 = Tcp.Connection.config c1 and cfg2 = Tcp.Connection.config c2 in
  Alcotest.(check int) "fwd sources on host1" r.dumbbell.Net.Topology.host1
    cfg1.Tcp.Config.src_host;
  Alcotest.(check int) "rev sources on host2" r.dumbbell.Net.Topology.host2
    cfg2.Tcp.Config.src_host;
  Alcotest.(check int) "conn ids are 1-based" 1 cfg1.Tcp.Config.conn;
  Alcotest.(check int) "second id" 2 cfg2.Tcp.Config.conn

let test_goodput_dir () =
  let r =
    Core.Runner.run
      (short
         [
           Core.Scenario.conn Core.Scenario.Forward;
           Core.Scenario.conn ~start_time:1. Core.Scenario.Reverse;
         ])
  in
  let fwd = Core.Runner.goodput_dir r Core.Scenario.Forward in
  let rev = Core.Runner.goodput_dir r Core.Scenario.Reverse in
  Alcotest.(check (float 1e-9)) "fwd = conn 0" (Core.Runner.goodput r 0) fwd;
  Alcotest.(check (float 1e-9)) "rev = conn 1" (Core.Runner.goodput r 1) rev

let test_delivered_counts_window_only () =
  let r = Core.Runner.run (short [ Core.Scenario.conn Core.Scenario.Forward ]) in
  let _, conn = r.conns.(0) in
  Alcotest.(check bool) "window excludes warmup traffic" true
    (r.delivered.(0) < Tcp.Connection.delivered conn);
  Alcotest.(check bool) "window nonempty" true (r.delivered.(0) > 0)

let test_queue_traces_attached () =
  let r = Core.Runner.run (short [ Core.Scenario.conn Core.Scenario.Forward ]) in
  Alcotest.(check bool) "q1 saw traffic" true
    (Trace.Series.length (Trace.Queue_trace.series r.q1) > 10);
  Alcotest.(check bool) "q2 saw the acks" true
    (Trace.Series.length (Trace.Queue_trace.series r.q2) > 10);
  Alcotest.(check bool) "departures logged" true (Trace.Dep_log.total r.dep_fwd > 10)

let test_epochs_and_phase_helpers () =
  let r =
    Core.Runner.run
      (short ~tau:0.01
         [
           Core.Scenario.conn Core.Scenario.Forward;
           Core.Scenario.conn ~start_time:1. Core.Scenario.Reverse;
         ])
  in
  let epochs = Core.Runner.epochs r in
  Alcotest.(check bool) "some epochs" true (List.length epochs >= 1);
  let _phase, corr = Core.Runner.queue_phase r in
  Alcotest.(check bool) "correlation in range" true (corr >= -1. && corr <= 1.);
  let _cphase, ccorr = Core.Runner.cwnd_phase r 0 1 in
  Alcotest.(check bool) "cwnd correlation in range" true
    (ccorr >= -1. && ccorr <= 1.)

let suite =
  ( "runner",
    [
      Alcotest.test_case "single connection metrics" `Quick
        test_single_connection_metrics;
      Alcotest.test_case "direction wiring" `Quick test_direction_wiring;
      Alcotest.test_case "goodput by direction" `Quick test_goodput_dir;
      Alcotest.test_case "window-restricted delivery" `Quick
        test_delivered_counts_window_only;
      Alcotest.test_case "traces attached" `Quick test_queue_traces_attached;
      Alcotest.test_case "epoch and phase helpers" `Quick
        test_epochs_and_phase_helpers;
    ] )
