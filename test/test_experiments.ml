(* The reproduction itself: every paper experiment must pass its
   acceptance bands at Quick speed.  These are the slowest tests in the
   suite (a few seconds of wall clock in total). *)

let speed = Core.Experiments.Quick

let check_outcome outcome () =
  List.iter
    (fun (c : Core.Report.check) ->
      match c.pass with
      | Some false ->
        Alcotest.failf "%s: %s — paper: %s, measured: %s" outcome.Core.Report.id
          c.metric c.paper c.measured
      | Some true | None -> ())
    outcome.Core.Report.checks

let case name (f : ?speed:Core.Experiments.speed -> unit -> Core.Report.outcome)
    =
  Alcotest.test_case name `Slow (fun () -> check_outcome (f ~speed ()) ())

let test_scenarios_build () =
  let scenarios =
    [
      Core.Experiments.scenario_fig2 speed;
      Core.Experiments.scenario_oneway_small_pipe speed;
      Core.Experiments.scenario_fig3 speed;
      Core.Experiments.scenario_fig45 speed;
      Core.Experiments.scenario_fig67 speed;
      Core.Experiments.scenario_fixed ~tau:0.01 ~w1:30 ~w2:25 speed;
    ]
  in
  List.iter
    (fun s ->
      Alcotest.(check bool)
        ("valid horizon: " ^ s.Core.Scenario.name)
        true
        (s.Core.Scenario.duration > s.Core.Scenario.warmup))
    scenarios

let suite =
  ( "experiments (paper reproduction)",
    [
      Alcotest.test_case "scenario constructors" `Quick test_scenarios_build;
      case "FIG2: one-way baseline" Core.Experiments.fig2;
      case "FIG3: ten connections" Core.Experiments.fig3;
      case "FIG4/5: out-of-phase mode" Core.Experiments.fig45;
      case "FIG6/7: in-phase mode" Core.Experiments.fig67;
      case "FIG8: fixed windows, small pipe" Core.Experiments.fig8;
      case "FIG9: fixed windows, large pipe" Core.Experiments.fig9;
      case "TAB-CONJ: zero-ACK criterion" Core.Experiments.conjecture_table;
      case "TAB-UTIL: buffers don't help two-way" Core.Experiments.buffer_table;
      case "TAB-DELACK: delayed ACKs" Core.Experiments.delack_table;
      case "TAB-MHOP: four-switch chain" Core.Experiments.multihop_table;
      case "TAB-ABL: ablations" Core.Experiments.ablation_table;
      case "TAB-RENO: Reno shows the same modes" Core.Experiments.reno_table;
      case "TAB-CCZOO: the whole variant zoo" Core.Experiments.cczoo_table;
      case "TAB-PACE: pacing removes the phenomena" Core.Experiments.pacing_table;
      case "TAB-GW: gateway disciplines" Core.Experiments.gateway_table;
      case "TAB-COLLAPSE: fixed-window TCP collapses"
        Core.Experiments.collapse_table;
      case "TAB-RTT: clustering needs identical RTTs" Core.Experiments.rtt_table;
      case "TAB-FORMULA: the closed-form analysis" Core.Experiments.formula_table;
    ] )
