(* bench/main.exe — regenerates every table and figure of the paper and
   micro-benchmarks the simulator substrate.

     dune exec bench/main.exe                   full run (everything)
     dune exec bench/main.exe -- fig45          one experiment table
     dune exec bench/main.exe -- micro          only the bechamel benchmarks
     dune exec bench/main.exe -- micro --json   ... and write BENCH_micro.json
     dune exec bench/main.exe -- sweep          pool scaling per backend;
                                                BENCH_sweep.json
     dune exec bench/main.exe -- sweep --check BENCH_sweep.json
                                                regression guard (25% band)
     dune exec bench/main.exe -- engine         hot-path ns/event + words/event
     dune exec bench/main.exe -- engine --json  ... and write BENCH_engine.json
     dune exec bench/main.exe -- engine --check BENCH_engine.json
                                                regression guard (25% band)
     dune exec bench/main.exe -- cc             per-CC-variant wall clock

   Sections:
     1. paper reproduction — one paper-vs-measured table per figure/table
        of the evaluation (FIG2..FIG9, TAB-CONJ, TAB-UTIL, TAB-DELACK,
        TAB-MHOP, TAB-ABL)
     2. figure gallery — ASCII renderings of the queue/cwnd series the
        paper plots
     3. micro — bechamel measurements of the substrate  *)

let banner title =
  let line = String.make 74 '=' in
  Printf.printf "\n%s\n== %s\n%s\n" line title line

(* ------------------------------------------------------------------ *)
(* 1. Paper reproduction                                               *)
(* ------------------------------------------------------------------ *)


let run_experiments names =
  banner "PAPER REPRODUCTION: tables and figures, paper vs. measured";
  let selected : (?speed:Core.Experiments.speed -> unit -> Core.Report.outcome) list
      =
    match names with
    | [] -> List.map snd Core.Experiments.registry
    | names ->
      List.map
        (fun n ->
          match Core.Experiments.find n with
          | Some f -> f
          | None -> failwith ("unknown experiment: " ^ n))
        names
  in
  let outcomes =
    List.map
      (fun (f : ?speed:Core.Experiments.speed -> unit -> Core.Report.outcome) ->
        f ~speed:Core.Experiments.Full ())
      selected
  in
  List.iter Core.Report.print outcomes;
  print_endline "summary:";
  List.iter (fun o -> print_endline ("  " ^ Core.Report.summary_line o)) outcomes;
  outcomes

(* ------------------------------------------------------------------ *)
(* 2. Figure gallery                                                   *)
(* ------------------------------------------------------------------ *)

let plot_run title (r : Core.Runner.result) ~span =
  Printf.printf "\n--- %s ---\n" title;
  let t1 = r.t1 in
  let t0 = Float.max r.t0 (t1 -. span) in
  Printf.printf "queue at switch 1 (packets), [%.0f, %.0f] s:\n" t0 t1;
  print_string
    (Core.Ascii_plot.render ~width:96 ~height:13
       (Trace.Queue_trace.series r.q1) ~t0 ~t1);
  Printf.printf "queue at switch 2 (packets):\n";
  print_string
    (Core.Ascii_plot.render ~width:96 ~height:13
       (Trace.Queue_trace.series r.q2) ~t0 ~t1);
  if Array.length r.cwnds >= 2 then begin
    Printf.printf "congestion windows over the full window:\n";
    print_string
      (Core.Ascii_plot.render_pair ~width:96 ~height:13
         ~labels:("cwnd-1", "cwnd-2")
         (Trace.Cwnd_trace.cwnd r.cwnds.(0))
         (Trace.Cwnd_trace.cwnd r.cwnds.(1))
         ~t0:r.t0 ~t1:r.t1)
  end
  else if Array.length r.cwnds = 1 then begin
    Printf.printf "congestion window over the full window:\n";
    print_string
      (Core.Ascii_plot.render ~width:96 ~height:13
         (Trace.Cwnd_trace.cwnd r.cwnds.(0))
         ~t0:r.t0 ~t1:r.t1)
  end

let run_gallery () =
  banner "FIGURE GALLERY: the series the paper plots";
  let speed = Core.Experiments.Full in
  plot_run "Figure 2: one-way, 3 connections, tau=1s"
    (Core.Runner.run (Core.Experiments.scenario_fig2 speed))
    ~span:120.;
  plot_run "Figure 3: two-way, 5+5 connections, tau=0.01s"
    (Core.Runner.run (Core.Experiments.scenario_fig3 speed))
    ~span:30.;
  plot_run "Figures 4-5: two-way, 1+1, tau=0.01s (out-of-phase)"
    (Core.Runner.run (Core.Experiments.scenario_fig45 speed))
    ~span:30.;
  plot_run "Figures 6-7: two-way, 1+1, tau=1s (in-phase)"
    (Core.Runner.run (Core.Experiments.scenario_fig67 speed))
    ~span:120.;
  plot_run "Figure 8: fixed windows 30/25, tau=0.01s"
    (Core.Runner.run (Core.Experiments.scenario_fixed ~tau:0.01 ~w1:30 ~w2:25 speed))
    ~span:20.;
  plot_run "Figure 9: fixed windows 30/25, tau=1s"
    (Core.Runner.run (Core.Experiments.scenario_fixed ~tau:1.0 ~w1:30 ~w2:25 speed))
    ~span:20.

(* ------------------------------------------------------------------ *)
(* 3. Micro-benchmarks (bechamel)                                      *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

let bench_event_queue =
  Test.make ~name:"event_queue: add+pop 1k"
    (Staged.stage (fun () ->
         let q = Engine.Event_queue.create () in
         for i = 0 to 999 do
           Engine.Event_queue.add q ~time:(float_of_int ((i * 7919) mod 1000)) i
         done;
         while not (Engine.Event_queue.is_empty q) do
           ignore (Engine.Event_queue.pop q : (float * int) option)
         done))

let bench_sim_cascade =
  Test.make ~name:"sim: 1k chained events"
    (Staged.stage (fun () ->
         let sim = Engine.Sim.create () in
         let rec tick n () =
           if n > 0 then
             ignore (Engine.Sim.schedule sim ~delay:0.001 (tick (n - 1))
                 : Engine.Sim.handle)
         in
         ignore (Engine.Sim.schedule sim ~delay:0.001 (tick 999)
             : Engine.Sim.handle);
         Engine.Sim.run_to_completion sim))

let bench_cong =
  Test.make ~name:"tahoe window: 1k acks"
    (Staged.stage (fun () ->
         let c =
           Tcp.Cong.create
             ~algorithm:(Tcp.Cong.Tahoe { modified_ca = true })
             ~maxwnd:1000
         in
         for i = 1 to 1000 do
           if i mod 97 = 0 then Tcp.Cong.on_timeout c else Tcp.Cong.on_ack c
         done))

let bench_cc =
  (* The same event mix as the Cong micro above, but through the packed
     Cc interface — the difference is the cost of the closure-record
     dispatch the pluggable-controller refactor added. *)
  Test.make ~name:"cc dispatch: 1k acks (newreno)"
    (Staged.stage (fun () ->
         Tcp.Cc_zoo.ensure_registered ();
         let c = Tcp.Cc.make (Tcp.Cc.spec "newreno") ~maxwnd:1000 in
         let ackno = ref 0 in
         for i = 1 to 1000 do
           incr ackno;
           if i mod 97 = 0 then
             Tcp.Cc.on_loss c Tcp.Cc.Timeout ~highest_sent:!ackno
           else ignore (Tcp.Cc.on_ack c ~ackno:!ackno ~newly:1 : bool)
         done))

let bench_rto =
  Test.make ~name:"rto estimator: 1k samples"
    (Staged.stage (fun () ->
         let r = Tcp.Rto.create Tcp.Rto.default_params in
         for i = 1 to 1000 do
           Tcp.Rto.sample r (0.1 +. (0.001 *. float_of_int (i mod 50)))
         done))

let bench_end_to_end =
  Test.make ~name:"simulate 10s of fig-4 scenario"
    (Staged.stage (fun () ->
         let scenario =
           Core.Scenario.make ~name:"bench" ~tau:0.01 ~buffer:(Some 20)
             ~conns:
               [
                 Core.Scenario.conn Core.Scenario.Forward;
                 Core.Scenario.conn ~start_time:1. Core.Scenario.Reverse;
               ]
             ~duration:10. ~warmup:1. ()
         in
         ignore (Core.Runner.run scenario : Core.Runner.result)))

let bench_end_to_end_validated =
  Test.make ~name:"simulate 10s of fig-4, validation on"
    (Staged.stage (fun () ->
         let scenario =
           Core.Scenario.make ~name:"bench-validated" ~tau:0.01
             ~buffer:(Some 20)
             ~conns:
               [
                 Core.Scenario.conn Core.Scenario.Forward;
                 Core.Scenario.conn ~start_time:1. Core.Scenario.Reverse;
               ]
             ~duration:10. ~warmup:1. ~validate:true ()
         in
         ignore (Core.Runner.run scenario : Core.Runner.result)))

let bench_series =
  Test.make ~name:"series: resample 10k samples"
    (Staged.stage
       (let s = Trace.Series.create () in
        for i = 0 to 9_999 do
          Trace.Series.add s ~time:(float_of_int i)
            ~value:(float_of_int (i mod 23))
        done;
        fun () ->
          ignore (Trace.Series.resample s ~t0:0. ~t1:10_000. ~dt:1. : float array)))

(* Returns (name, nanoseconds-per-run option) pairs, sorted by name, so
   the caller can render a table or machine-readable JSON. *)
let measure_micro () =
  let tests =
    [
      bench_event_queue;
      bench_sim_cascade;
      bench_cong;
      bench_cc;
      bench_rto;
      bench_end_to_end;
      bench_end_to_end_validated;
      bench_series;
    ]
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let rows = ref [] in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (t :: _) -> Some t
            | _ -> None
          in
          rows := (name, ns) :: !rows)
        results)
    tests;
  List.sort (fun (a, _) (b, _) -> compare a b) !rows

let json_escape s =
  String.concat ""
    (List.map
       (function
         | '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let run_micro ~json () =
  banner "MICRO-BENCHMARKS (bechamel): simulator substrate";
  let rows = measure_micro () in
  Printf.printf "%-36s %14s\n" "benchmark" "time/run";
  List.iter
    (fun (name, ns) ->
      let pretty =
        match ns with
        | None -> "n/a"
        | Some t ->
          if t > 1e6 then Printf.sprintf "%.2f ms" (t /. 1e6)
          else if t > 1e3 then Printf.sprintf "%.2f us" (t /. 1e3)
          else Printf.sprintf "%.0f ns" t
      in
      Printf.printf "%-36s %14s\n" name pretty)
    rows;
  if json then begin
    let file = "BENCH_micro.json" in
    let oc = open_out file in
    output_string oc "{\n";
    List.iteri
      (fun i (name, ns) ->
        Printf.fprintf oc "  \"%s\": %s%s\n" (json_escape name)
          (match ns with
           | Some t -> Printf.sprintf "%.1f" t
           | None -> "null")
          (if i = List.length rows - 1 then "" else ","))
      rows;
    output_string oc "}\n";
    close_out oc;
    Printf.printf "wrote %s (nanoseconds per run)\n" file
  end

(* ------------------------------------------------------------------ *)
(* Engine hot path: ns/event and minor-words/event regression guard    *)
(* ------------------------------------------------------------------ *)

(* Profiles the event hot path on a 100 sim-second fig-4-style two-way
   run: wall time per event (best of [reps]) and minor-heap words per
   event (a single Gc.minor_words delta — allocation is deterministic,
   so one run suffices).  [--json] commits the numbers to
   BENCH_engine.json; [--check FILE] re-measures and fails if either
   metric exceeds the committed baseline by more than 25%. *)

let engine_scenario () =
  Core.Scenario.make ~name:"engine-bench" ~tau:0.01 ~buffer:(Some 20)
    ~conns:
      [
        Core.Scenario.conn Core.Scenario.Forward;
        Core.Scenario.conn ~start_time:1. Core.Scenario.Reverse;
      ]
    ~duration:100. ~warmup:1. ()

type engine_profile = {
  ep_events : int;
  ep_ns_per_event : float;
  ep_minor_words_per_event : float;
}

let measure_engine () =
  let scenario = engine_scenario () in
  let run () = Core.Runner.run scenario in
  let r = run () in  (* warm caches and the minor heap *)
  let events =
    Engine.Sim.events_run
      (Net.Network.sim r.Core.Runner.dumbbell.Net.Topology.net)
  in
  let w0 = Gc.minor_words () in
  ignore (run () : Core.Runner.result);
  let words = Gc.minor_words () -. w0 in
  let reps = 5 in
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    ignore (run () : Core.Runner.result);
    best := Float.min !best (Unix.gettimeofday () -. t0)
  done;
  {
    ep_events = events;
    ep_ns_per_event = 1e9 *. !best /. float_of_int events;
    ep_minor_words_per_event = words /. float_of_int events;
  }

let write_engine_json file (p : engine_profile) =
  let oc = open_out file in
  Printf.fprintf oc
    "{\n  \"scenario\": \"fig4-two-way-100s\",\n  \"events\": %d,\n\
    \  \"ns_per_event\": %.1f,\n  \"minor_words_per_event\": %.3f\n}\n"
    p.ep_events p.ep_ns_per_event p.ep_minor_words_per_event;
  close_out oc;
  Printf.printf "wrote %s\n" file

let print_engine_profile (p : engine_profile) =
  Printf.printf "events per run:         %d\n" p.ep_events;
  Printf.printf "time per event:         %.1f ns\n" p.ep_ns_per_event;
  Printf.printf "minor words per event:  %.3f\n" p.ep_minor_words_per_event

(* Minimal JSON number extraction, enough for the flat baseline files
   this binary writes itself (no JSON library in the toolchain). *)
let json_number_field file key =
  let ic = open_in file in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let needle = Printf.sprintf "\"%s\"" key in
  let n = String.length s and m = String.length needle in
  let rec find i =
    if i + m > n then
      failwith (Printf.sprintf "%s: no field %s" file needle)
    else if String.sub s i m = needle then i + m
    else find (i + 1)
  in
  let j = find 0 in
  Scanf.sscanf (String.sub s j (n - j)) " : %f" (fun v -> v)

let run_engine ~json () =
  banner "ENGINE HOT PATH: ns/event and minor-words/event";
  let p = measure_engine () in
  print_engine_profile p;
  if json then write_engine_json "BENCH_engine.json" p;
  0

let run_engine_check baseline_file =
  banner "ENGINE HOT PATH: regression check against committed baseline";
  let base_ns = json_number_field baseline_file "ns_per_event" in
  let base_words = json_number_field baseline_file "minor_words_per_event" in
  let p = measure_engine () in
  print_engine_profile p;
  write_engine_json "BENCH_engine.current.json" p;
  let tolerance = 0.25 in
  let check name measured base =
    (* Wall time is noisy on shared CI runners; allocation is exact.  The
       same 25% band covers both: words/event regressions from a stray
       per-event closure are far larger than 25%. *)
    let limit = base *. (1. +. tolerance) in
    let ok = measured <= limit in
    Printf.printf "%-24s %10.3f  (baseline %.3f, limit %.3f)  %s\n" name
      measured base limit
      (if ok then "ok" else "REGRESSION");
    ok
  in
  let ns_ok = check "ns/event" p.ep_ns_per_event base_ns in
  let words_ok =
    check "minor words/event" p.ep_minor_words_per_event base_words
  in
  if ns_ok && words_ok then 0 else 1

(* ------------------------------------------------------------------ *)
(* Sweep scaling: the pool's backends at jobs 1 / 2 / 4                *)
(* ------------------------------------------------------------------ *)

(* Times the full Fig-8 buffer grid through Sweep.Driver under every
   backend this build has (fork everywhere, domains on OCaml 5) at
   several job counts, checks that each combination produces JSON
   byte-identical to the sequential run, and measures each backend's
   raw per-point dispatch cost on trivial tasks.

   Measurement order is load-bearing: OCaml 5 forbids Unix.fork in a
   process that has ever spawned a domain, so every fork-backend
   measurement runs before the first domain-backend one.

   BENCH_sweep.json is always written; [--check FILE] re-measures and
   fails if the in-process dispatch cost or the jobs=1 wall clock
   regresses more than 25% past the committed baseline.  Those two are
   the metrics a code change moves on any machine; the multi-job rows
   also depend on the runner's core count, so they are recorded (with
   [cores_available] and [parallel_ok] alongside, for scripts reading
   the speedups) but not gated. *)

type sweep_profile = {
  sp_points : int;
  sp_reps : int;
  sp_jobs1_seconds : float;
  sp_runs : (string * int * float) list;  (* backend, jobs, best seconds *)
  sp_inprocess_dispatch_us : float;
  sp_fork_dispatch_us : float;
  sp_domain_dispatch_us : float option;
  sp_byte_identical : bool;
}

let sweep_grid = Sweep.Grids.fig8

let measure_sweep () =
  let points = sweep_grid.points ~quick:false in
  let reps = 3 in
  let time backend jobs =
    ignore (Sweep.Driver.run ~backend ~jobs points : Sweep.Summary.t list);
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      ignore (Sweep.Driver.run ~backend ~jobs points : Sweep.Summary.t list);
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let json backend jobs =
    Sweep.Driver.to_json (Sweep.Driver.run ~backend ~jobs points)
  in
  (* Raw dispatch: trivial tasks make the per-point overhead visible.
     Fork pays a Marshal frame and a trip through the select loop —
     amortized by batching cheap results into chunked frames — while
     domains pay one atomic fetch per index chunk. *)
  let dispatch_tasks = List.init 512 (fun i -> i) in
  let dispatch backend jobs =
    ignore
      (Sweep_pool.map ~backend ~jobs (fun x -> x) dispatch_tasks : int list);
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      ignore
        (Sweep_pool.map ~backend ~jobs (fun x -> x) dispatch_tasks : int list);
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    1e6 *. !best /. float_of_int (List.length dispatch_tasks)
  in
  (* Sequential reference first ... *)
  let jobs1 = time Sweep_pool.Seq 1 in
  let reference = json Sweep_pool.Seq 1 in
  let inprocess_us = dispatch Sweep_pool.Seq 1 in
  (* ... then every fork measurement ... *)
  let fork_runs =
    List.map (fun j -> ("fork", j, time Sweep_pool.Fork j)) [ 2; 4 ]
  in
  let fork_identical =
    List.for_all (fun j -> json Sweep_pool.Fork j = reference) [ 2; 4 ]
  in
  let fork_us = dispatch Sweep_pool.Fork 2 in
  (* ... and only now domains: no fork beyond this point. *)
  let domain_runs, domain_identical, domain_us =
    if Sweep_pool.domain_backend_available then
      ( List.map (fun j -> ("domain", j, time Sweep_pool.Domain j)) [ 2; 4 ],
        List.for_all (fun j -> json Sweep_pool.Domain j = reference) [ 2; 4 ],
        Some (dispatch Sweep_pool.Domain 2) )
    else ([], true, None)
  in
  {
    sp_points = List.length points;
    sp_reps = reps;
    sp_jobs1_seconds = jobs1;
    sp_runs = fork_runs @ domain_runs;
    sp_inprocess_dispatch_us = inprocess_us;
    sp_fork_dispatch_us = fork_us;
    sp_domain_dispatch_us = domain_us;
    sp_byte_identical = fork_identical && domain_identical;
  }

(* Speedup rows above the usable core count measure scheduling overhead,
   not parallelism; say so next to them rather than leaving a puzzling
   sub-1x figure in the report. *)
let sweep_note (p : sweep_profile) =
  let avail = Sweep_pool.available_cores () in
  let max_jobs = List.fold_left (fun m (_, j, _) -> max m j) 1 p.sp_runs in
  if max_jobs > avail then
    Some
      (Printf.sprintf
         "job counts up to %d exceed the %d usable core(s); speedups beyond \
          jobs=%d measure scheduling overhead, not parallelism"
         max_jobs avail avail)
  else None

let print_sweep_profile (p : sweep_profile) =
  Printf.printf
    "grid: %s (%d points), best of %d runs, %d core(s) (%d usable)\n"
    sweep_grid.name p.sp_points p.sp_reps (Sweep_pool.cores ())
    (Sweep_pool.available_cores ());
  Printf.printf "%-8s jobs=1: %8.3f s\n" "seq" p.sp_jobs1_seconds;
  List.iter
    (fun (b, j, t) ->
      Printf.printf "%-8s jobs=%d: %8.3f s  (speedup %.2fx)\n" b j t
        (p.sp_jobs1_seconds /. t))
    p.sp_runs;
  (match sweep_note p with
   | Some s -> Printf.printf "note: %s\n" s
   | None -> ());
  Printf.printf "output byte-identical across backends and job counts: %b\n"
    p.sp_byte_identical;
  Printf.printf
    "dispatch (trivial tasks): in-process %.3f us/point, fork %.2f us/point%s\n"
    p.sp_inprocess_dispatch_us p.sp_fork_dispatch_us
    (match p.sp_domain_dispatch_us with
     | Some d -> Printf.sprintf ", domain %.3f us/point" d
     | None -> "")

let write_sweep_json file (p : sweep_profile) =
  let oc = open_out file in
  Printf.fprintf oc
    "{\n  \"grid\": \"%s\",\n  \"cores\": %d,\n  \"cores_available\": %d,\n\
    \  \"parallel_ok\": %b,\n  \"points\": %d,\n  \"reps\": %d,\n\
    %s  \"jobs1_seconds\": %.4f,\n  \"runs\": [\n%s\n  ],\n\
    \  \"inprocess_dispatch_us_per_point\": %.4f,\n\
    \  \"supervised_dispatch_us_per_point\": %.3f,\n\
    \  \"domain_dispatch_us_per_point\": %s,\n\
    \  \"byte_identical\": %b\n}\n"
    sweep_grid.name (Sweep_pool.cores ())
    (Sweep_pool.available_cores ())
    (Sweep_pool.available_cores () >= 2)
    p.sp_points p.sp_reps
    (match sweep_note p with
     | Some s -> Printf.sprintf "  \"note\": \"%s\",\n" (json_escape s)
     | None -> "")
    p.sp_jobs1_seconds
    (String.concat ",\n"
       (List.map
          (fun (b, j, t) ->
            Printf.sprintf
              "    {\"backend\": \"%s\", \"jobs\": %d, \"seconds\": %.4f, \
               \"speedup\": %.3f}"
              b j t (p.sp_jobs1_seconds /. t))
          p.sp_runs))
    p.sp_inprocess_dispatch_us p.sp_fork_dispatch_us
    (match p.sp_domain_dispatch_us with
     | Some d -> Printf.sprintf "%.4f" d
     | None -> "null")
    p.sp_byte_identical;
  close_out oc;
  Printf.printf "wrote %s\n" file

let run_sweep_bench () =
  banner "SWEEP SCALING: fig8 grid through the pool backends";
  let p = measure_sweep () in
  print_sweep_profile p;
  write_sweep_json "BENCH_sweep.json" p;
  if p.sp_byte_identical then 0 else 1

let run_sweep_check baseline_file =
  banner "SWEEP POOL: regression check against committed baseline";
  let base_dispatch =
    json_number_field baseline_file "inprocess_dispatch_us_per_point"
  in
  let base_jobs1 = json_number_field baseline_file "jobs1_seconds" in
  let p = measure_sweep () in
  print_sweep_profile p;
  write_sweep_json "BENCH_sweep.current.json" p;
  let tolerance = 0.25 in
  let check name measured base =
    let limit = base *. (1. +. tolerance) in
    let ok = measured <= limit in
    Printf.printf "%-28s %10.4f  (baseline %.4f, limit %.4f)  %s\n" name
      measured base limit
      (if ok then "ok" else "REGRESSION");
    ok
  in
  let dispatch_ok =
    check "in-process dispatch us/pt" p.sp_inprocess_dispatch_us base_dispatch
  in
  let jobs1_ok = check "jobs=1 wall seconds" p.sp_jobs1_seconds base_jobs1 in
  if not p.sp_byte_identical then
    print_endline "byte-identity across backends: FAILED";
  if dispatch_ok && jobs1_ok && p.sp_byte_identical then 0 else 1

(* ------------------------------------------------------------------ *)
(* 4. Validation overhead                                              *)
(* ------------------------------------------------------------------ *)

(* Wall-clock cost of running the lib/validate checkers inside a
   simulation, measured on a 300 sim-second two-way run.  The numbers
   quoted in DESIGN.md come from this subcommand. *)
let run_overhead () =
  banner "VALIDATION OVERHEAD: lib/validate checkers on vs. off";
  let scenario ~validate =
    Core.Scenario.make ~name:"overhead" ~tau:0.01 ~buffer:(Some 20)
      ~conns:
        [
          Core.Scenario.conn Core.Scenario.Forward;
          Core.Scenario.conn ~start_time:1. Core.Scenario.Reverse;
        ]
      ~duration:300. ~warmup:10. ~validate ()
  in
  let time ~validate =
    let reps = 5 in
    (* warm once, then take the best of [reps] to shed GC noise *)
    ignore (Core.Runner.run (scenario ~validate) : Core.Runner.result);
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      ignore (Core.Runner.run (scenario ~validate) : Core.Runner.result);
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let off = time ~validate:false in
  let on = time ~validate:true in
  Printf.printf "validation off: %8.2f ms\n" (1000. *. off);
  Printf.printf "validation on:  %8.2f ms\n" (1000. *. on);
  Printf.printf "overhead:       %8.1f %%\n" (100. *. ((on /. off) -. 1.))

(* ------------------------------------------------------------------ *)
(* 5. Fault-injection overhead                                         *)
(* ------------------------------------------------------------------ *)

(* Cost of the lib/faults hook point.  Three configurations of the same
   300 sim-second two-way run:
     none     — no plan installed: the link must keep its fast path
                (a single option check per send/departure)
     zero     — a plan installed whose models never fire (loss=0, dup=0,
                jitter=0): per-packet RNG draws and in-propagation
                tracking, but no injected faults
     lossy    — 2% Bernoulli loss actually injected
   "none" vs the seed's fault-free runtime is the acceptance criterion:
   installing nothing must cost nothing measurable. *)
let run_faults_overhead () =
  banner "FAULT-INJECTION OVERHEAD: lib/faults hook point";
  let scenario ~faults =
    Core.Scenario.make ~name:"faults-overhead" ~tau:0.01 ~buffer:(Some 20)
      ~conns:
        [
          Core.Scenario.conn Core.Scenario.Forward;
          Core.Scenario.conn ~start_time:1. Core.Scenario.Reverse;
        ]
      ~duration:300. ~warmup:10. ?faults ()
  in
  let time ~faults =
    let reps = 5 in
    ignore (Core.Runner.run (scenario ~faults) : Core.Runner.result);
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      ignore (Core.Runner.run (scenario ~faults) : Core.Runner.result);
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let plan spec = Some [ (Core.Scenario.Fwd_bottleneck, spec) ] in
  let none = time ~faults:None in
  let zero =
    time
      ~faults:
        (plan
           (Faults.Spec.make ~loss:(Faults.Spec.Bernoulli 0.)
              ~jitter:{ Faults.Spec.bound = 0.; preserve_order = true }
              ~duplicate:0. ()))
  in
  let lossy = time ~faults:(plan (Faults.Spec.bernoulli 0.02)) in
  Printf.printf "no plan installed:   %8.2f ms\n" (1000. *. none);
  Printf.printf "zero-rate plan:      %8.2f ms  (%+.1f %%)\n" (1000. *. zero)
    (100. *. ((zero /. none) -. 1.));
  Printf.printf "2%% bernoulli loss:   %8.2f ms  (%+.1f %%)\n" (1000. *. lossy)
    (100. *. ((lossy /. none) -. 1.))

(* ------------------------------------------------------------------ *)
(* 5b. CC variant zoo timing                                            *)
(* ------------------------------------------------------------------ *)

(* Wall-clock per registered congestion-control variant on the same
   two-way 100 sim-second configuration the engine bench uses: a cheap
   way to spot a zoo entry whose hooks blow up the hot path. *)
let run_cc_bench () =
  banner "CC VARIANT ZOO: wall-clock per variant, two-way 100 sim-seconds";
  Tcp.Cc_zoo.ensure_registered ();
  let scenario cc =
    Core.Scenario.make ~name:"cc-bench" ~tau:0.01 ~buffer:(Some 20)
      ~conns:
        [
          Core.Scenario.conn ~cc Core.Scenario.Forward;
          Core.Scenario.conn ~cc ~start_time:1. Core.Scenario.Reverse;
        ]
      ~duration:100. ~warmup:1. ()
  in
  Printf.printf "%-18s %12s %12s\n" "variant" "time/run" "events";
  List.iter
    (fun name ->
      let sc = scenario (Tcp.Cc.spec name) in
      let r = Core.Runner.run sc in  (* warm *)
      let events =
        Engine.Sim.events_run
          (Net.Network.sim r.Core.Runner.dumbbell.Net.Topology.net)
      in
      let reps = 3 in
      let best = ref infinity in
      for _ = 1 to reps do
        let t0 = Unix.gettimeofday () in
        ignore (Core.Runner.run sc : Core.Runner.result);
        best := Float.min !best (Unix.gettimeofday () -. t0)
      done;
      Printf.printf "%-18s %9.2f ms %12d\n" name (1000. *. !best) events)
    (Tcp.Cc.names ());
  0

(* ------------------------------------------------------------------ *)
(* 6. Observability overhead                                           *)
(* ------------------------------------------------------------------ *)

(* Cost of the lib/obs probe on the engine-bench run, in five
   configurations:
     off       — Probe.disabled: no hooks installed at all; must match
                 the bare runtime (the zero-overhead-when-absent claim)
     metrics   — counters/gauges/histograms registered on every link and
                 connection; the per-event cost is an int store
     flowstats — metrics plus the per-flow accounting registry (the
                 --flowstats-out path: Karn-mirrored RTT sampling, cwnd
                 extrema, delivered/retransmit counters)
     series    — metrics plus the 1 Hz recorder sampling every metric
                 into step series off preallocated rows (--metrics-out)
     trace     — full binary tracing (the --trace-out path: Btrace
                 writer, no flight ring) into a sink that drops the
                 bytes, so the number measures encoding, not disk
   [--json] commits the numbers to BENCH_obs.json; [--check FILE] gates
   each overhead percentage at the committed figure plus 25 percentage
   points (ratios of wall-clock runs are too noisy for a relative band),
   holds fully-traced runs under the 2x absolute target the binary
   format was built for, and holds flowstats under 1.10x the metrics-only
   run of the same process (a same-run ratio, immune to baseline
   drift). *)

(* Fully-traced runs must stay under 2x the untraced runtime (i.e.
   +100% overhead) no matter what the committed baseline says. *)
let trace_overhead_limit_pct = 100.

(* Per-flow accounting must stay within 10% of the metrics-only runtime
   measured in the same process. *)
let flowstats_vs_metrics_limit = 1.10

type obs_profile = {
  op_off_ms : float;
  op_metrics_ms : float;
  op_flowstats_ms : float;
  op_series_ms : float;
  op_trace_ms : float;
  op_metrics_pct : float;
  op_flowstats_pct : float;
  op_series_pct : float;
  op_trace_pct : float;
  op_events_traced : int;
}

let measure_obs () =
  let scenario = engine_scenario () in
  let drop (_ : string) = () in
  let trace_setup () = Obs.Probe.setup ~metrics:false ~btrace:drop () in
  let configs =
    [|
      (fun () -> Obs.Probe.disabled);
      (fun () -> Obs.Probe.setup ());
      (fun () -> Obs.Probe.setup ~flowstats:true ());
      (fun () -> Obs.Probe.setup ~series_dt:1.0 ());
      trace_setup;
    |]
  in
  (* Interleave the configurations round-robin and keep each one's best
     rep: a transient load spike then degrades one rep of every config
     instead of poisoning a single config's whole measurement, which is
     what makes overhead ratios of one-shot wall-clock runs unusable. *)
  let best = Array.make (Array.length configs) infinity in
  Array.iter
    (fun obs ->
      ignore (Core.Runner.run ~obs:(obs ()) scenario : Core.Runner.result))
    configs;
  for _rep = 1 to 7 do
    Array.iteri
      (fun i obs ->
        let t0 = Unix.gettimeofday () in
        ignore (Core.Runner.run ~obs:(obs ()) scenario : Core.Runner.result);
        best.(i) <- Float.min best.(i) (Unix.gettimeofday () -. t0))
      configs
  done;
  let off = best.(0) in
  let metrics = best.(1) in
  let flowstats = best.(2) in
  let series = best.(3) in
  let trace = best.(4) in
  let events_traced =
    let r = Core.Runner.run ~obs:(trace_setup ()) scenario in
    match r.Core.Runner.obs with
    | Some probe -> Obs.Probe.events_traced probe
    | None -> 0
  in
  let pct x = 100. *. ((x /. off) -. 1.) in
  {
    op_off_ms = 1000. *. off;
    op_metrics_ms = 1000. *. metrics;
    op_flowstats_ms = 1000. *. flowstats;
    op_series_ms = 1000. *. series;
    op_trace_ms = 1000. *. trace;
    op_metrics_pct = pct metrics;
    op_flowstats_pct = pct flowstats;
    op_series_pct = pct series;
    op_trace_pct = pct trace;
    op_events_traced = events_traced;
  }

let print_obs_profile (p : obs_profile) =
  Printf.printf "obs off:        %8.2f ms\n" p.op_off_ms;
  Printf.printf "metrics on:     %8.2f ms  (%+.1f %%)\n" p.op_metrics_ms
    p.op_metrics_pct;
  Printf.printf "+flowstats:     %8.2f ms  (%+.1f %%)\n" p.op_flowstats_ms
    p.op_flowstats_pct;
  Printf.printf "metrics+series: %8.2f ms  (%+.1f %%)\n" p.op_series_ms
    p.op_series_pct;
  Printf.printf "full tracing:   %8.2f ms  (%+.1f %%, %d events, binary)\n"
    p.op_trace_ms p.op_trace_pct p.op_events_traced

let write_obs_json file (p : obs_profile) =
  let oc = open_out file in
  Printf.fprintf oc
    "{\n  \"scenario\": \"fig4-two-way-100s\",\n\
    \  \"off_ms\": %.2f,\n  \"metrics_ms\": %.2f,\n\
    \  \"flowstats_ms\": %.2f,\n  \"series_ms\": %.2f,\n\
    \  \"trace_ms\": %.2f,\n\
    \  \"metrics_overhead_pct\": %.1f,\n\
    \  \"flowstats_overhead_pct\": %.1f,\n\
    \  \"series_overhead_pct\": %.1f,\n\
    \  \"trace_overhead_pct\": %.1f,\n\
    \  \"events_traced\": %d\n}\n"
    p.op_off_ms p.op_metrics_ms p.op_flowstats_ms p.op_series_ms p.op_trace_ms
    p.op_metrics_pct p.op_flowstats_pct p.op_series_pct p.op_trace_pct
    p.op_events_traced;
  close_out oc;
  Printf.printf "wrote %s\n" file

let run_obs ~json () =
  banner "OBSERVABILITY OVERHEAD: lib/obs probe off / metrics / tracing";
  let p = measure_obs () in
  print_obs_profile p;
  if json then write_obs_json "BENCH_obs.json" p;
  0

let run_obs_check baseline_file =
  banner "OBSERVABILITY OVERHEAD: check against committed baseline";
  let base_metrics = json_number_field baseline_file "metrics_overhead_pct" in
  let base_flowstats =
    json_number_field baseline_file "flowstats_overhead_pct"
  in
  let base_trace = json_number_field baseline_file "trace_overhead_pct" in
  let p = measure_obs () in
  print_obs_profile p;
  write_obs_json "BENCH_obs.current.json" p;
  let check ?cap name measured base =
    (* 25% of the baseline plus 25 percentage points: the relative part
       scales with noisy baselines, the absolute part keeps near-zero
       baselines checkable.  [cap] additionally pins an absolute ceiling
       regardless of what was committed. *)
    let band = (base *. 1.25) +. 25. in
    let limit = match cap with Some c -> Float.min band c | None -> band in
    let ok = measured <= limit in
    Printf.printf "%-24s %+9.1f %%  (baseline %+.1f, limit %+.1f)  %s\n" name
      measured base limit
      (if ok then "ok" else "REGRESSION");
    ok
  in
  let metrics_ok = check "metrics overhead" p.op_metrics_pct base_metrics in
  let flowstats_ok =
    check "flowstats overhead" p.op_flowstats_pct base_flowstats
  in
  (* Same-run ratio: flowstats vs the metrics-only best of this very
     process, so machine speed and baseline drift cancel out. *)
  let ratio = p.op_flowstats_ms /. p.op_metrics_ms in
  let ratio_ok = ratio <= flowstats_vs_metrics_limit in
  Printf.printf "%-24s %9.3fx  (limit %.2fx of metrics-only)  %s\n"
    "flowstats/metrics" ratio flowstats_vs_metrics_limit
    (if ratio_ok then "ok" else "REGRESSION");
  let trace_ok =
    check ~cap:trace_overhead_limit_pct "trace overhead" p.op_trace_pct
      base_trace
  in
  if metrics_ok && flowstats_ok && ratio_ok && trace_ok then 0 else 1

(* ------------------------------------------------------------------ *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let t0 = Sys.time () in
  let exit_code =
    match args with
    | [ "micro" ] ->
      run_micro ~json:false ();
      0
    | [ "micro"; "--json" ] ->
      run_micro ~json:true ();
      0
    | [ "sweep" ] -> run_sweep_bench ()
    | [ "sweep"; "--check"; baseline ] -> run_sweep_check baseline
    | [ "engine" ] -> run_engine ~json:false ()
    | [ "engine"; "--json" ] -> run_engine ~json:true ()
    | [ "engine"; "--check"; baseline ] -> run_engine_check baseline
    | [ "obs" ] -> run_obs ~json:false ()
    | [ "obs"; "--json" ] -> run_obs ~json:true ()
    | [ "obs"; "--check"; baseline ] -> run_obs_check baseline
    | [ "gallery" ] ->
      run_gallery ();
      0
    | [ "overhead" ] ->
      run_overhead ();
      0
    | [ "faults-overhead" ] ->
      run_faults_overhead ();
      0
    | [ "cc" ] -> run_cc_bench ()
    | [] ->
      let outcomes = run_experiments [] in
      run_gallery ();
      run_micro ~json:false ();
      banner "DONE";
      let all_pass = List.for_all Core.Report.all_passed outcomes in
      Printf.printf "paper reproduction: %s\n"
        (if all_pass then "ALL CHECKS PASSED" else "SOME CHECKS FAILED");
      if all_pass then 0 else 1
    | names ->
      let outcomes = run_experiments names in
      if List.for_all Core.Report.all_passed outcomes then 0 else 1
  in
  Printf.printf "total cpu time: %.1fs\n" (Sys.time () -. t0);
  exit exit_code
