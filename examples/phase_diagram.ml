(* The synchronization-mode phase diagram (paper 4.3.3).

   For the zero-size-ACK fixed-window system the paper conjectures a sharp
   boundary: windows (w1, w2) sharing a bottleneck of pipe size P are
   out-of-phase with exactly one line full when |w1 - w2| > 2P, and
   in-phase with neither line full when |w1 - w2| < 2P.

   This example runs the Sweep.Grids.phase_diagram grid — the 49 cells are
   independent simulations, so they fan out across the worker pool — and
   prints the measured phase map; the conjectured boundary runs along the
   diagonals w1 = w2 +/- 2P.

   Run with:  dune exec examples/phase_diagram.exe -- --jobs 4   (~10 s) *)

let jobs_of_argv () =
  let rec go = function
    | "--jobs" :: n :: _ -> int_of_string n
    | _ :: rest -> go rest
    | [] -> Sweep_pool.default_jobs ()
  in
  go (Array.to_list Sys.argv)

let observe (s : Sweep.Summary.t) =
  Analysis.Conjecture.observe ~full_threshold:0.985 ~util1:s.util_fwd
    ~util2:s.util_bwd ()

let () =
  let windows = Sweep.Grids.phase_diagram_windows in
  let pipe =
    Engine.Units.pipe_size
      ~rate_bps:(Engine.Units.kbps 50.)
      ~delay:Sweep.Grids.phase_diagram_tau ~packet_bytes:500
  in
  let points = Sweep.Grids.phase_diagram.points ~quick:false in
  let summaries = Sweep.Driver.run ~jobs:(jobs_of_argv ()) points in
  (* The grid is row-major over w1 then w2; consume it cell by cell. *)
  let cells = ref summaries in
  let next () =
    match !cells with
    | [] -> failwith "phase_diagram: grid shorter than expected"
    | s :: rest ->
      cells := rest;
      s
  in
  Printf.printf
    "Measured phase map, zero-size ACKs, P = %.1f packets.\n\
     O = out-of-phase (one line full), I = in-phase (neither full),\n\
     B = both full.  Conjectured boundary: |w1 - w2| = 2P = %.0f.\n\n"
    pipe (2. *. pipe);
  Printf.printf "          w2 ->";
  List.iter (fun w2 -> Printf.printf "%4d" w2) windows;
  print_newline ();
  List.iter
    (fun w1 ->
      Printf.printf "  w1 = %2d      " w1;
      List.iter
        (fun w2 ->
          let observed = observe (next ()) in
          let mark =
            match observed with
            | Analysis.Conjecture.Out_of_phase_one_full -> 'O'
            | Analysis.Conjecture.In_phase_neither_full -> 'I'
            | Analysis.Conjecture.Boundary -> 'B'
          in
          let predicted = Analysis.Conjecture.predict ~w1 ~w2 ~pipe in
          let agree = Analysis.Conjecture.verdict predicted ~observed in
          Printf.printf "  %c%c" mark (if agree then ' ' else '!'))
        windows;
      print_newline ())
    windows;
  print_newline ();
  print_endline
    "(a '!' marks disagreement with the conjecture; the paper expects the";
  print_endline
    " criterion to be exact for zero-size ACKs away from the boundary)"
