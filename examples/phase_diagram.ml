(* The synchronization-mode phase diagram (paper 4.3.3).

   For the zero-size-ACK fixed-window system the paper conjectures a sharp
   boundary: windows (w1, w2) sharing a bottleneck of pipe size P are
   out-of-phase with exactly one line full when |w1 - w2| > 2P, and
   in-phase with neither line full when |w1 - w2| < 2P.

   This example sweeps the (w1, w2) plane at a fixed P and prints the
   measured phase map; the conjectured boundary runs along the diagonals
   w1 = w2 +/- 2P.

   Run with:  dune exec examples/phase_diagram.exe   (~10 s) *)

let pipe_tau = 0.4  (* P = 12.5 * 0.4 = 5 packets: boundary at |w1-w2| = 10 *)

let classify w1 w2 =
  let scenario =
    Core.Scenario.make
      ~name:(Printf.sprintf "pd-%d-%d" w1 w2)
      ~tau:pipe_tau ~buffer:None
      ~conns:
        [
          Core.Scenario.fixed_conn ~window:w1 ~ack_size:0 ~start_time:0.37
            Core.Scenario.Forward;
          Core.Scenario.fixed_conn ~window:w2 ~ack_size:0 ~start_time:1.91
            Core.Scenario.Reverse;
        ]
      ~duration:150. ~warmup:60. ()
  in
  let r = Core.Runner.run scenario in
  Analysis.Conjecture.observe ~full_threshold:0.985 ~util1:r.util_fwd
    ~util2:r.util_bwd ()

let () =
  let windows = [ 6; 10; 14; 18; 22; 26; 30 ] in
  let pipe =
    Engine.Units.pipe_size
      ~rate_bps:(Engine.Units.kbps 50.)
      ~delay:pipe_tau ~packet_bytes:500
  in
  Printf.printf
    "Measured phase map, zero-size ACKs, P = %.1f packets.\n\
     O = out-of-phase (one line full), I = in-phase (neither full),\n\
     B = both full.  Conjectured boundary: |w1 - w2| = 2P = %.0f.\n\n"
    pipe (2. *. pipe);
  Printf.printf "          w2 ->";
  List.iter (fun w2 -> Printf.printf "%4d" w2) windows;
  print_newline ();
  List.iter
    (fun w1 ->
      Printf.printf "  w1 = %2d      " w1;
      List.iter
        (fun w2 ->
          let observed = classify w1 w2 in
          let mark =
            match observed with
            | Analysis.Conjecture.Out_of_phase_one_full -> 'O'
            | Analysis.Conjecture.In_phase_neither_full -> 'I'
            | Analysis.Conjecture.Boundary -> 'B'
          in
          let predicted = Analysis.Conjecture.predict ~w1 ~w2 ~pipe in
          let agree = Analysis.Conjecture.verdict predicted ~observed in
          Printf.printf "  %c%c" mark (if agree then ' ' else '!'))
        windows;
      print_newline ())
    windows;
  print_newline ();
  print_endline
    "(a '!' marks disagreement with the conjecture; the paper expects the";
  print_endline
    " criterion to be exact for zero-size ACKs away from the boundary)"
