(* ACK-compression, isolated (paper 4.2, Figures 8-9).

   Congestion control is disentangled from two-way queueing by fixing the
   windows (30 and 25 packets) and making the buffers infinite.  A cluster
   of ACKs caught behind data drains at the ACK transmission rate — 10x
   faster than the data rate that produced it — so the ACK clock breaks
   and the queues swing in constant-amplitude square waves.

   Run with:  dune exec examples/ack_compression.exe *)

let () =
  let scenario =
    Core.Experiments.scenario_fixed ~tau:0.01 ~w1:30 ~w2:25
      Core.Experiments.Full
  in
  let r = Core.Runner.run scenario in
  Printf.printf
    "fixed windows 30/25, tau=0.01s (P=%.3g), infinite buffers\n\n"
    (Core.Scenario.pipe scenario);

  (* The broken ACK clock, measured: consecutive ACKs of one connection
     should be spaced by a data transmission time (80 ms) if the clock
     held; compression squeezes them to the ACK transmission time (8 ms). *)
  let data_tx = Core.Scenario.data_tx scenario in
  (match
     Analysis.Ackcomp.ack_spacing
       (Trace.Dep_log.in_window r.dep_fwd ~t0:r.t0 ~t1:r.t1)
       ~data_tx
   with
   | Some sp ->
     Printf.printf
       "ACK spacing at the bottleneck: median %.1f ms vs %.0f ms data tx \
        (ratio %.2f; %.0f%% of ACK pairs compressed, %d samples)\n"
       (1000. *. sp.Analysis.Ackcomp.median_gap)
       (1000. *. data_tx) sp.Analysis.Ackcomp.ratio
       (100. *. sp.Analysis.Ackcomp.compressed_fraction)
       sp.Analysis.Ackcomp.samples
   | None -> print_endline "no consecutive ACK pairs observed");

  (* The queue consequences: Q1 absorbs every packet of both connections
     (peak = w1 + w2 = 55) while Q2 peaks at ~23, and the line behind the
     smaller queue idles ~14% of the time even though both windows dwarf
     the pipe. *)
  let peak qt =
    match
      Trace.Series.min_max (Trace.Queue_trace.series qt) ~t0:r.t0 ~t1:r.t1
    with
    | Some (lo, hi) -> (lo, hi)
    | None -> (0., 0.)
  in
  let q1_lo, q1_hi = peak r.q1 and q2_lo, q2_hi = peak r.q2 in
  Printf.printf "Q1 swings %.0f..%.0f packets; Q2 swings %.0f..%.0f\n" q1_lo
    q1_hi q2_lo q2_hi;
  Printf.printf "line utilizations: %.1f%% and %.1f%%\n\n" (100. *. r.util_fwd)
    (100. *. r.util_bwd);

  print_endline "one cycle of the square wave (2.5 s of queue history):";
  let t1 = r.t1 in
  let t0 = t1 -. 2.5 in
  print_endline "queue at switch 1:";
  print_string
    (Core.Ascii_plot.render ~width:76 ~height:12 ~y_max:60.
       (Trace.Queue_trace.series r.q1)
       ~t0 ~t1);
  print_endline "queue at switch 2:";
  print_string
    (Core.Ascii_plot.render ~width:76 ~height:12 ~y_max:60.
       (Trace.Queue_trace.series r.q2)
       ~t0 ~t1);

  (* The chronology of 4.2, stepped through on the departure log: runs of
     same-connection packets show the clusters that make compression
     possible in the first place. *)
  print_endline "departure clusters on the switch-1 bottleneck (last 2.5 s):";
  let records = Trace.Dep_log.in_window r.dep_fwd ~t0 ~t1 in
  let runs = Analysis.Clustering.run_lengths records in
  Printf.printf "  cluster sizes: %s\n"
    (String.concat ", " (List.map string_of_int runs));
  (match Analysis.Clustering.coefficient records with
   | Some c ->
     Printf.printf "  clustering coefficient %.2f (1.0 = complete clustering)\n" c
   | None -> ());

  (* And the five-step chronology itself, recovered from the traces: the
     paper's numbered narrative of one cycle (4.2). *)
  print_newline ();
  print_endline "the 4.2 chronology, reconstructed (one cycle):";
  let phases =
    Analysis.Chronology.phases
      (Trace.Queue_trace.series r.q1)
      (Trace.Queue_trace.series r.q2)
      ~t0 ~t1
  in
  Format.printf "%a" Analysis.Chronology.pp phases;
  match Analysis.Chronology.opposition phases with
  | Some f ->
    Printf.printf
      "every burst one queue absorbs is the other queue's drained ACK \
       cluster: opposition %.2f\n"
      f
  | None -> ()
