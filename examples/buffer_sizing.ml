(* "Increasing buffers is a reliable way to increase throughput" — the
   rule of thumb the paper demolishes (3.2, 4.3.1).

   With one-way traffic, link idle time vanishes as the switch buffer
   grows (asymptotically like B^-2).  With two-way traffic in the
   out-of-phase mode, the idle time is set by the EFFECTIVE pipe — which
   grows with the other connection's window, i.e. with the buffer — so
   utilization is stuck near 70% no matter how much memory the switch has.

   Run with:  dune exec examples/buffer_sizing.exe *)

let one_way buffer =
  let scenario =
    Core.Scenario.make ~name:"oneway" ~tau:1.0 ~buffer:(Some buffer)
      ~conns:
        (Core.Scenario.stagger ~step:1.0
           (List.init 3 (fun _ -> Core.Scenario.conn Core.Scenario.Forward)))
      ~duration:600. ~warmup:200. ()
  in
  (Core.Runner.run scenario).util_fwd

let two_way buffer =
  (* Longer horizons for bigger buffers: the window increase-decrease
     cycle stretches with B. *)
  let scale = float_of_int (max 1 (buffer / 20)) in
  let scenario =
    Core.Scenario.make ~name:"twoway" ~tau:0.01 ~buffer:(Some buffer)
      ~conns:
        (Core.Scenario.stagger ~step:1.0
           [
             Core.Scenario.conn Core.Scenario.Forward;
             Core.Scenario.conn Core.Scenario.Reverse;
           ])
      ~duration:(600. *. scale) ~warmup:(200. *. scale) ()
  in
  let r = Core.Runner.run scenario in
  Float.max r.util_fwd r.util_bwd

let () =
  let buffers = [ 20; 40; 60; 120 ] in
  print_endline "buffer  one-way util   two-way util";
  print_endline "(pkts)  (tau=1s)       (tau=0.01s)";
  List.iter
    (fun b ->
      Printf.printf "%5d   %5.1f%%         %5.1f%%\n" b
        (100. *. one_way b)
        (100. *. two_way b))
    buffers;
  print_newline ();
  print_endline
    "One-way utilization climbs toward 100% with buffer size; two-way is";
  print_endline
    "pinned: every extra buffered ACK inflates the effective pipe the other";
  print_endline "connection must fill, so the extra memory buys nothing."
