(* Fault recovery: what TCP Tahoe does when the path actually breaks.

   Part 1 wires a dumbbell by hand so we can watch the sender's internals
   live: a 20-second outage cuts the forward bottleneck, every packet in
   flight is lost, the retransmission timer backs off exponentially
   (cwnd pinned at 1), and when the link returns the connection slow-starts
   back to full utilization.

   Part 2 reruns the paper's Figure 4-5 two-way scenario with a bursty
   (Gilbert-Elliott) loss episode on the forward bottleneck and compares
   the queue-phase classification against the clean run.

   Run with:  dune exec examples/fault_recovery.exe
   (the invariant checkers are always attached; the run fails loudly if a
   fault breaks packet conservation or FIFO accounting)               *)

let check name ok =
  Printf.printf "  [%s] %s\n" (if ok then "ok" else "FAIL") name;
  ok

let () =
  (* ---------- Part 1: outage, backoff, recovery ---------- *)
  let outage_start = 60. and outage_stop = 80. and horizon = 180. in
  let sim = Engine.Sim.create () in
  let params = Net.Topology.params ~tau:0.01 ~buffer:(Some 20) () in
  let d = Net.Topology.dumbbell sim params in
  let conn =
    Tcp.Connection.create d.net
      (Tcp.Config.make ~conn:1 ~src_host:d.host1 ~dst_host:d.host2 ())
  in
  let harness = Validate.Harness.attach d.net ~conns:[ conn ] in
  let plan =
    Faults.Plan.install d.net d.fwd ~seed:7
      (Faults.Spec.scheduled_outage [ (outage_start, outage_stop) ])
  in
  let sender = Tcp.Connection.sender conn in
  (* Watch the sender live: deepest timer backoff reached, and the
     smallest congestion window seen while the link was down. *)
  let max_backoff = ref 0 in
  Tcp.Sender.on_loss sender (fun _time _reason ->
      max_backoff := max !max_backoff (Tcp.Rto.backoff_count (Tcp.Sender.rto sender)));
  let min_cwnd_in_outage = ref infinity in
  Tcp.Sender.on_cwnd sender (fun time ~cwnd ~ssthresh:_ ->
      if time >= outage_start && time <= outage_stop then
        min_cwnd_in_outage := Float.min !min_cwnd_in_outage cwnd);
  let cwnd_trace = Trace.Cwnd_trace.attach sender ~now:0. in
  (* Meter utilization only after the connection has had time to recover
     from the outage. *)
  let recovery_meter = ref None in
  ignore
    (Engine.Sim.at sim ~time:120. (fun () ->
         recovery_meter :=
           Some (Trace.Util_meter.start d.fwd ~now:(Engine.Sim.now sim)))
      : Engine.Sim.handle);
  Engine.Sim.run sim ~until:horizon;

  print_endline "part 1: 20 s outage on the forward bottleneck";
  Printf.printf "  %s\n" (Faults.Plan.summary plan);
  Printf.printf "  timeouts %d, retransmits %d, deepest RTO backoff %d\n"
    (Tcp.Sender.timeouts sender)
    (Tcp.Sender.retransmits sender)
    !max_backoff;
  let recovery_util =
    match !recovery_meter with
    | Some m -> Trace.Util_meter.utilization m ~now:(Engine.Sim.now sim)
    | None -> 0.
  in
  Printf.printf "  post-outage utilization (t in [120,180)): %.1f%%\n"
    (100. *. recovery_util);
  print_newline ();
  print_endline "  congestion window across the outage (packets):";
  print_string
    (Core.Ascii_plot.render ~width:76 ~height:12
       (Trace.Cwnd_trace.cwnd cwnd_trace)
       ~t0:40. ~t1:140.);
  print_newline ();

  let report = Validate.Harness.finalize harness ~now:(Engine.Sim.now sim) in
  (* Evaluate each check before folding: a list literal would print them
     in reverse (right-to-left construction) and [for_all] would stop at
     the first failure. *)
  let c1 =
    check "outage dropped packets in flight" (Faults.Plan.outage_drops plan > 0)
  in
  let c2 = check "RTO backed off at least twice" (!max_backoff >= 2) in
  let c3 =
    check "cwnd collapsed to 1 during the outage"
      (!min_cwnd_in_outage <= 1.0 +. 1e-9)
  in
  let c4 =
    check "backoff cleared after recovery"
      (Tcp.Rto.backoff_count (Tcp.Sender.rto sender) = 0)
  in
  let c5 =
    check "recovered to >= 90% bottleneck utilization" (recovery_util >= 0.9)
  in
  let c6 = check "invariant checkers clean" (Validate.Report.is_clean report) in
  let part1_ok = c1 && c2 && c3 && c4 && c5 && c6 in
  if not (Validate.Report.is_clean report) then
    prerr_endline (Validate.Report.to_string report);
  print_newline ();

  (* ---------- Part 2: loss burst vs two-way queue phase ---------- *)
  let fig45 ?faults name =
    Core.Scenario.make ~name ~tau:0.01 ~buffer:(Some 20)
      ~conns:
        [
          Core.Scenario.conn ~start_time:0.37 Core.Scenario.Forward;
          Core.Scenario.conn ~start_time:1.91 Core.Scenario.Reverse;
        ]
      ~duration:400. ~warmup:150. ~validate:true ?faults ~fault_seed:5 ()
  in
  let burst =
    Faults.Spec.burst ~p_enter:0.002 ~p_exit:0.05 ~loss_in_burst:0.5 ()
  in
  let clean = Core.Runner.run (fig45 "fig45-clean") in
  let faulty =
    Core.Runner.run
      (fig45 "fig45-burst" ~faults:[ (Core.Scenario.Fwd_bottleneck, burst) ])
  in
  print_endline "part 2: two-way traffic with a bursty loss episode";
  List.iter
    (fun (_site, p) -> Printf.printf "  %s\n" (Faults.Plan.summary p))
    faulty.fault_plans;
  let describe label (r : Core.Runner.result) =
    let phase, corr = Core.Runner.queue_phase r in
    Printf.printf
      "  %-8s queue phase %s (r=%+.2f), util fwd %.1f%%, drops %d\n" label
      (Analysis.Sync.phase_to_string phase)
      corr
      (100. *. r.util_fwd)
      (List.length (Core.Runner.drops_in_window r))
  in
  describe "clean:" clean;
  describe "burst:" faulty;
  let clean_report r =
    match Core.Runner.validation_report r with
    | Some rep -> Validate.Report.is_clean rep
    | None -> false
  in
  let c7 =
    check "burst plan injected losses"
      (List.exists (fun (_s, p) -> Faults.Plan.losses p > 0) faulty.fault_plans)
  in
  let c8 = check "clean run validates" (clean_report clean) in
  let c9 = check "burst run validates" (clean_report faulty) in
  let part2_ok = c7 && c8 && c9 in
  if not (part1_ok && part2_ok) then exit 1
