(* An atlas of synchronization modes (paper 4.3.3, closing paragraphs).

   "Upon varying the buffer size or the pipe size P ... one usually sees
   one of the two cases described above.  However, we have also observed
   behavior which does not fit neatly into our in-phase/out-of-phase
   taxonomy."

   This example runs the Sweep.Grids.mode_atlas grid — buffer size x
   propagation delay for the two-way 1+1 configuration, fanned out across
   the worker pool — and classifies each cell by its queue phase and
   per-epoch loss pattern, mapping where each mode lives.

   Legend:
     O-  out-of-phase, single-loser epochs (the Figure 4 mode)
     I=  in-phase, both connections lose each epoch (the Figure 6 mode)
     O=, I-, ??  the paper's "less common" mixtures

   Run with:  dune exec examples/mode_atlas.exe -- --jobs 4   (~10 s) *)

let jobs_of_argv () =
  let rec go = function
    | "--jobs" :: n :: _ -> int_of_string n
    | _ :: rest -> go rest
    | [] -> Sweep_pool.default_jobs ()
  in
  go (Array.to_list Sys.argv)

let classify (s : Sweep.Summary.t) =
  let phase_mark =
    match s.phase with
    | "out-of-phase" -> 'O'
    | "in-phase" -> 'I'
    | _ -> '?'
  in
  let single = Option.value ~default:0. s.single_loser in
  let loss_mark =
    if s.epoch_count = 0 then '.'
    else if single >= 0.8 then '-'  (* one connection takes the losses *)
    else if single <= 0.2 then '='  (* losses shared *)
    else '~'  (* mixed: the paper's "less common" patterns *)
  in
  let util = 100. *. Float.max s.util_fwd s.util_bwd in
  (phase_mark, loss_mark, util)

let () =
  let taus = Sweep.Grids.mode_atlas_taus in
  let buffers = Sweep.Grids.mode_atlas_buffers in
  let points = Sweep.Grids.mode_atlas.points ~quick:false in
  let summaries = Sweep.Driver.run ~jobs:(jobs_of_argv ()) points in
  (* Row-major over buffer then tau, matching the printed rows. *)
  let cells = ref summaries in
  let next () =
    match !cells with
    | [] -> failwith "mode_atlas: grid shorter than expected"
    | s :: rest ->
      cells := rest;
      s
  in
  print_endline "Synchronization-mode atlas: two-way 1+1 traffic.";
  print_endline
    "cell = <phase><losses> util%   (O out-of-phase, I in-phase; - single\n\
     loser, = shared losses, ~ mixed; the paper: out-of-phase for small\n\
     pipe / big buffers, in-phase for large pipe / small buffers)";
  print_newline ();
  Printf.printf "%14s" "buffer \\ tau";
  List.iter (fun tau -> Printf.printf "%12s" (Printf.sprintf "%gs" tau)) taus;
  print_newline ();
  List.iter
    (fun buffer ->
      Printf.printf "%14d" buffer;
      List.iter
        (fun _tau ->
          let phase, losses, util = classify (next ()) in
          Printf.printf "%12s"
            (Printf.sprintf "%c%c %.0f%%" phase losses util))
        taus;
      print_newline ())
    buffers;
  print_newline ();
  print_endline
    "Pipe sizes: tau=0.01s -> P=0.125 pkts ... tau=1s -> P=12.5 pkts."
