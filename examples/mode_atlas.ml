(* An atlas of synchronization modes (paper 4.3.3, closing paragraphs).

   "Upon varying the buffer size or the pipe size P ... one usually sees
   one of the two cases described above.  However, we have also observed
   behavior which does not fit neatly into our in-phase/out-of-phase
   taxonomy."

   This example sweeps buffer size x propagation delay for the two-way
   1+1 configuration and classifies each run by its queue phase and
   per-epoch loss pattern, mapping where each mode lives.

   Legend:
     O-  out-of-phase, single-loser epochs (the Figure 4 mode)
     I=  in-phase, both connections lose each epoch (the Figure 6 mode)
     O=, I-, ??  the paper's "less common" mixtures

   Run with:  dune exec examples/mode_atlas.exe   (~10 s) *)

let classify ~tau ~buffer =
  let scenario =
    Core.Scenario.make
      ~name:(Printf.sprintf "atlas-%g-%d" tau buffer)
      ~tau ~buffer:(Some buffer)
      ~conns:
        (Core.Scenario.stagger ~step:1.0
           [
             Core.Scenario.conn Core.Scenario.Forward;
             Core.Scenario.conn Core.Scenario.Reverse;
           ])
      ~duration:400. ~warmup:150. ()
  in
  let r = Core.Runner.run scenario in
  let phase, _ = Core.Runner.queue_phase r in
  let epochs = Core.Runner.epochs r in
  let single =
    Option.value ~default:0. (Analysis.Epochs.single_loser_fraction epochs)
  in
  let phase_mark =
    match phase with
    | Analysis.Sync.Out_of_phase -> 'O'
    | Analysis.Sync.In_phase -> 'I'
    | Analysis.Sync.Unclassified -> '?'
  in
  let loss_mark =
    if epochs = [] then '.'
    else if single >= 0.8 then '-'  (* one connection takes the losses *)
    else if single <= 0.2 then '='  (* losses shared *)
    else '~'  (* mixed: the paper's "less common" patterns *)
  in
  let util = 100. *. Float.max r.util_fwd r.util_bwd in
  (phase_mark, loss_mark, util)

let () =
  let taus = [ 0.01; 0.1; 0.25; 0.5; 1.0 ] in
  let buffers = [ 10; 20; 40; 80 ] in
  print_endline "Synchronization-mode atlas: two-way 1+1 traffic.";
  print_endline
    "cell = <phase><losses> util%   (O out-of-phase, I in-phase; - single\n\
     loser, = shared losses, ~ mixed; the paper: out-of-phase for small\n\
     pipe / big buffers, in-phase for large pipe / small buffers)";
  print_newline ();
  Printf.printf "%14s" "buffer \\ tau";
  List.iter (fun tau -> Printf.printf "%12s" (Printf.sprintf "%gs" tau)) taus;
  print_newline ();
  List.iter
    (fun buffer ->
      Printf.printf "%14d" buffer;
      List.iter
        (fun tau ->
          let phase, losses, util = classify ~tau ~buffer in
          Printf.printf "%12s"
            (Printf.sprintf "%c%c %.0f%%" phase losses util))
        taus;
      print_newline ())
    buffers;
  print_newline ();
  print_endline
    "Pipe sizes: tau=0.01s -> P=0.125 pkts ... tau=1s -> P=12.5 pkts."
