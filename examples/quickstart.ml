(* Quickstart: simulate one TCP Tahoe connection over the paper's dumbbell
   (Figure 1) and look at what the library gives you back.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* A scenario = bottleneck parameters + connections + measurement window.
     One connection sending Host-1 -> Host-2, one-second propagation delay
     (pipe of 12.5 packets), a 20-packet drop-tail buffer. *)
  let scenario =
    Core.Scenario.make ~name:"quickstart" ~tau:1.0 ~buffer:(Some 20)
      ~conns:[ Core.Scenario.conn Core.Scenario.Forward ]
      ~duration:300. ~warmup:100. ()
  in
  Printf.printf "pipe size P = %.3g packets, data tx time = %.0f ms\n"
    (Core.Scenario.pipe scenario)
    (1000. *. Core.Scenario.data_tx scenario);

  (* Build the network, attach every trace, run to completion. *)
  let r = Core.Runner.run scenario in

  (* Throughput and utilization over the post-warm-up window. *)
  Printf.printf "bottleneck utilization: %.1f%%\n" (100. *. r.util_fwd);
  Printf.printf "goodput: %.2f packets/s (bottleneck capacity is 12.5)\n"
    (Core.Runner.goodput r 0);

  (* The sender's internals are inspectable. *)
  let _, conn = r.conns.(0) in
  let sender = Tcp.Connection.sender conn in
  Printf.printf "cwnd %.1f, ssthresh %.1f, %d retransmits, %d timeouts\n"
    (Tcp.Sender.cwnd sender)
    (Tcp.Sender.ssthresh sender)
    (Tcp.Sender.retransmits sender)
    (Tcp.Sender.timeouts sender);

  (* Losses come in congestion epochs: cwnd climbs until the buffer
     overflows, one packet is lost, cwnd collapses, repeat. *)
  let epochs = Core.Runner.epochs r in
  Printf.printf "congestion epochs in window: %d\n" (List.length epochs);
  List.iteri
    (fun i e ->
      Printf.printf "  epoch %d at t=%.1fs: %d drop(s)\n" (i + 1)
        e.Analysis.Epochs.start
        (Analysis.Epochs.total_drops e))
    epochs;

  (* And the classic sawtooth, as the paper plots it. *)
  print_newline ();
  print_endline "congestion window (packets):";
  print_string
    (Core.Ascii_plot.render ~width:76 ~height:12
       (Trace.Cwnd_trace.cwnd r.cwnds.(0))
       ~t0:r.t0 ~t1:r.t1);
  print_newline ();
  print_endline "queue at switch 1 (packets):";
  print_string
    (Core.Ascii_plot.render ~width:76 ~height:12
       (Trace.Queue_trace.series r.q1)
       ~t0:r.t0 ~t1:r.t1)
