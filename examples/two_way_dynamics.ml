(* Two-way traffic dynamics: the paper's headline experiment (Figures 4-7).

   One TCP connection in each direction over the same bottleneck.  The
   ACKs of each connection share a queue with the other connection's data,
   and two new phenomena appear: ACK-compression (square-wave queue
   oscillations) and, depending on the pipe size, in-phase or out-of-phase
   window synchronization.

   Run with:  dune exec examples/two_way_dynamics.exe *)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

let describe tau =
  let scenario =
    Core.Scenario.make
      ~name:(Printf.sprintf "two-way tau=%g" tau)
      ~tau ~buffer:(Some 20)
      ~conns:
        (Core.Scenario.stagger ~step:1.0
           [
             Core.Scenario.conn Core.Scenario.Forward;
             Core.Scenario.conn Core.Scenario.Reverse;
           ])
      ~duration:600. ~warmup:200. ()
  in
  let r = Core.Runner.run scenario in
  section
    (Printf.sprintf "tau = %g s (pipe P = %.3g packets)" tau
       (Core.Scenario.pipe scenario));
  let qphase, qcorr = Core.Runner.queue_phase r in
  let cphase, ccorr = Core.Runner.cwnd_phase r 0 1 in
  Printf.printf "queues:  %s (correlation %.2f)\n"
    (Analysis.Sync.phase_to_string qphase) qcorr;
  Printf.printf "windows: %s (correlation %.2f)\n"
    (Analysis.Sync.phase_to_string cphase) ccorr;
  Printf.printf "utilization: %.1f%% / %.1f%% (one-way traffic would reach ~%d%%)\n"
    (100. *. r.util_fwd) (100. *. r.util_bwd)
    (if tau < 0.1 then 100 else 90);
  let epochs = Core.Runner.epochs r in
  Printf.printf "congestion epochs: %d, %.2f drops each\n" (List.length epochs)
    (Option.value ~default:0. (Analysis.Epochs.mean_drops epochs));
  (match Analysis.Epochs.single_loser_fraction epochs with
   | Some f when f > 0.5 ->
     Printf.printf
       "loss pattern: one connection takes BOTH drops (%.0f%% of epochs), \
        roles alternating %.0f%% of the time\n"
       (100. *. f)
       (100. *. Option.value ~default:0. (Analysis.Epochs.alternation epochs))
   | _ ->
     Printf.printf "loss pattern: the two connections lose one packet each\n");
  print_newline ();
  print_endline "congestion windows (the synchronization mode, Figures 5/7):";
  print_string
    (Core.Ascii_plot.render_pair ~width:76 ~height:14
       ~labels:("cwnd conn-1", "cwnd conn-2")
       (Trace.Cwnd_trace.cwnd r.cwnds.(0))
       (Trace.Cwnd_trace.cwnd r.cwnds.(1))
       ~t0:r.t0 ~t1:r.t1);
  print_newline ();
  print_endline "bottleneck queues over 30 s (ACK-compression square waves):";
  print_string
    (Core.Ascii_plot.render_pair ~width:76 ~height:14 ~labels:("Q1", "Q2")
       (Trace.Queue_trace.series r.q1)
       (Trace.Queue_trace.series r.q2)
       ~t0:(r.t1 -. 30.) ~t1:r.t1)

let () =
  print_endline
    "Two-way TCP traffic on a 50 Kbps bottleneck, one connection per direction.";
  describe 0.01;  (* small pipe: out-of-phase mode, Figures 4-5 *)
  describe 1.0    (* large pipe: in-phase mode, Figures 6-7 *)
